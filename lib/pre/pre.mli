(** Partial redundancy elimination with edge placement — the engine behind
    the paper's "partial" optimization level.

    The Drechsler–Stadel edge-placement formulation in its unidirectional
    earliest/later form (equivalent to lazy code motion), run over the
    expression universe of [Epre_analysis.Expr_universe] and iterated to a fixed
    point so composite expressions move as chains; each round ends with an
    available-expression deletion sweep, which also subsumes global CSE.

    Insertions land on (pre-split) edges; deletions never lengthen an
    execution path — the property Section 2 highlights. *)

open Epre_ir

type stats = {
  mutable inserted : int;  (** computations placed on edges *)
  mutable deleted : int;  (** evaluations removed by the LCM system *)
  mutable cse_deleted : int;  (** evaluations removed by the per-round sweep *)
  mutable rounds : int;
}

(** Rebuild the evaluation of an expression key targeting [dst]; shared
    with [Pre_classic]. *)
val instr_of_key : Epre_analysis.Expr_universe.key -> dst:Instr.reg -> Instr.t

(** Run to a fixed point (bounded). [include_loads] (default true) lets
    loads participate, killed by stores and calls. Requires non-SSA code
    under the Section 2.2 naming discipline — run [Epre_opt.Naming] first
    on untrusted input. *)
val run : ?include_loads:bool -> Routine.t -> stats
