(** Classic Morel–Renvoise partial redundancy elimination, kept as an
    ablation baseline next to the edge-placement engine in [Pre].

    This is the 1979 formulation the paper's Section 2 recounts: the
    bidirectional "placement possible" system

    {v
      PPIN(i)  = ANTIN(i) ∧ (ANTLOC(i) ∨ (TRANSP(i) ∧ PPOUT(i)))
                          ∧ ∏ over preds p of (PPOUT(p) ∨ AVOUT(p))
      PPOUT(i) = ∏ over succs s of PPIN(s)
    v}

    solved to its greatest fixpoint, with insertions at block ends

    {v INSERT(i) = PPOUT(i) ∧ ¬AVOUT(i) ∧ (¬PPIN(i) ∨ ¬TRANSP(i)) v}

    and deletions [DELETE(i) = ANTLOC(i) ∧ PPIN(i)]. Without edge
    placement it can be blocked where a critical edge is the only legal
    insertion point — one of the reasons the paper's implementation uses
    the Drechsler–Stadel variant, and measurable with
    [bench/main.exe ablation]. Like [Pre.run], the pass iterates rounds so
    composite expressions move as chains, with an availability sweep per
    round. *)

open Epre_util
open Epre_ir
open Epre_analysis
open Epre_opt

type stats = {
  mutable inserted : int;
  mutable deleted : int;
  mutable cse_deleted : int;
  mutable rounds : int;
}

let mr_round ?(include_loads = true) (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let fl = Expr_flow.build ~include_loads r in
  let uni = fl.Expr_flow.uni in
  let width = fl.Expr_flow.width in
  if width = 0 then (0, 0)
  else begin
    let antloc = fl.Expr_flow.local.Expr_universe.antloc in
    let kill = fl.Expr_flow.local.Expr_universe.kill in
    let avail = Expr_flow.availability fl in
    let ant = Expr_flow.anticipability fl in
    let avout = avail.Dataflow.outs in
    let antin = ant.Dataflow.ins in
    let order = Order.compute cfg in
    let preds = Cfg.preds cfg in
    let entry = Cfg.entry cfg in
    let nblocks = Cfg.num_blocks cfg in
    (* Optimistic initialization; the entry's PPIN and the exits' PPOUT are
       pinned empty. *)
    let ppin = Array.init nblocks (fun _ -> Bitset.full width) in
    let ppout = Array.init nblocks (fun _ -> Bitset.full width) in
    let transp_not id =
      kill.(id)  (* ¬TRANSP = KILL *)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Cfg.iter_blocks
        (fun b ->
          let id = b.Block.id in
          if Order.is_reachable order id then begin
            (* PPOUT *)
            let new_out =
              match Cfg.succs cfg id with
              | [] -> Bitset.create width
              | s :: rest ->
                let acc = Bitset.copy ppin.(s) in
                List.iter (fun s' -> Bitset.inter_into ~dst:acc ppin.(s')) rest;
                acc
            in
            if not (Bitset.equal new_out ppout.(id)) then begin
              Bitset.assign ~dst:ppout.(id) new_out;
              changed := true
            end;
            (* PPIN *)
            let new_in =
              if id = entry then Bitset.create width
              else begin
                (* ANTLOC ∨ (TRANSP ∧ PPOUT) *)
                let inner = Bitset.copy ppout.(id) in
                Bitset.diff_into ~dst:inner (transp_not id);
                Bitset.union_into ~dst:inner antloc.(id);
                (* ∧ ANTIN *)
                Bitset.inter_into ~dst:inner antin.(id);
                (* ∧ over preds (PPOUT(p) ∨ AVOUT(p)) *)
                List.iter
                  (fun p ->
                    if Order.is_reachable order p then begin
                      let edge = Bitset.copy ppout.(p) in
                      Bitset.union_into ~dst:edge avout.(p);
                      Bitset.inter_into ~dst:inner edge
                    end)
                  preds.(id);
                inner
              end
            in
            if not (Bitset.equal new_in ppin.(id)) then begin
              Bitset.assign ~dst:ppin.(id) new_in;
              changed := true
            end
          end)
        cfg
    done;
    (* Transformation: insert at the end of i when
       PPOUT(i) ∧ ¬AVOUT(i) ∧ (¬PPIN(i) ∨ ¬TRANSP(i)); delete the
       locally-anticipable evaluations where PPIN holds. *)
    let exprs = Expr_universe.exprs uni in
    let inserted = ref 0 in
    Cfg.iter_blocks
      (fun b ->
        let id = b.Block.id in
        if Order.is_reachable order id then begin
          let ins = Bitset.copy ppin.(id) in
          Bitset.diff_into ~dst:ins (transp_not id);
          let all = Bitset.full width in
          Bitset.diff_into ~dst:all ins;
          (* all = ¬PPIN ∨ ¬TRANSP *)
          let set = Bitset.copy ppout.(id) in
          Bitset.diff_into ~dst:set avout.(id);
          Bitset.inter_into ~dst:set all;
          if not (Bitset.is_empty set) then begin
            let instrs =
              List.map
                (fun idx ->
                  let e = exprs.(idx) in
                  Pre.instr_of_key e.Expr_universe.key ~dst:e.Expr_universe.name)
                (Bitset.elements set)
            in
            inserted := !inserted + List.length instrs;
            List.iter (fun i -> Block.append b i) instrs
          end
        end)
      cfg;
    let deleted = ref 0 in
    Cfg.iter_blocks
      (fun b ->
        let id = b.Block.id in
        if Order.is_reachable order id then begin
          let del = Bitset.copy antloc.(id) in
          Bitset.inter_into ~dst:del ppin.(id);
          if not (Bitset.is_empty del) then begin
            let killed = Bitset.create width in
            b.Block.instrs <-
              List.filter
                (fun i ->
                  let drop =
                    match Expr_universe.key_of i, Instr.def i with
                    | Some _, Some dst -> begin
                      match Expr_universe.expr_of_name uni dst with
                      | Some e ->
                        let idx = e.Expr_universe.index in
                        Bitset.mem del idx && not (Bitset.mem killed idx)
                      | None -> false
                    end
                    | _ -> false
                  in
                  if not drop then begin
                    let reg_kills, mem_kills = Expr_universe.kills_of_instr uni i in
                    List.iter (Bitset.add killed) reg_kills;
                    List.iter (Bitset.add killed) mem_kills
                  end
                  else incr deleted;
                  not drop)
                b.Block.instrs
          end
        end)
      cfg;
    (!inserted, !deleted)
  end

let max_rounds = 16

let run ?(include_loads = true) (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Pre_classic.run: requires non-SSA code";
  let stats = { inserted = 0; deleted = 0; cse_deleted = 0; rounds = 0 } in
  let rec go n =
    if n < max_rounds then begin
      let ins, del = mr_round ~include_loads r in
      let cse = Cse_avail.run r in
      stats.inserted <- stats.inserted + ins;
      stats.deleted <- stats.deleted + del;
      stats.cse_deleted <- stats.cse_deleted + cse;
      stats.rounds <- stats.rounds + 1;
      if ins + del + cse > 0 then go (n + 1)
    end
  in
  go 0;
  stats
