(** Partial redundancy elimination with edge placement.

    The engine behind the paper's "partial" optimization level. We use the
    Drechsler–Stadel style edge-placement formulation in its unidirectional
    earliest/later form (equivalent to Knoop–Rüthing–Steffen lazy code
    motion; Drechsler and Stadel themselves recast their simplification this
    way) over the expression universe of [Epre_analysis.Expr_universe]:

    - availability (forward, intersection) and anticipability (backward,
      intersection) from the usual ANTLOC/COMP/KILL local sets;
    - [EARLIEST(i,j) = ANTIN(j) ∧ ¬AVOUT(i) ∧ (KILL(i) ∨ ¬ANTOUT(i))] on
      edges, with a virtual edge into the entry so expressions anticipated
      at routine entry have a legal insertion point;
    - [LATER]/[LATERIN] push insertions down to the latest point that still
      covers every deletion (lazy placement: minimal register pressure, and
      — the property Section 2 highlights — no execution path ever gets
      longer);
    - [INSERT(i,j) = LATER(i,j) ∧ ¬LATERIN(j)], placed on the (pre-split)
      edge; [DELETE(j) = ANTLOC(j) ∧ ¬LATERIN(j)].

    A single data-flow round moves only expressions whose operands are not
    redefined by a dominating subexpression evaluation in the same block —
    i.e. depth-one expressions. Under the Section 2.2 naming discipline a
    composite expression becomes movable exactly when its subexpressions
    have moved, so [run] iterates rounds (each followed by an
    available-expression deletion sweep, which also subsumes global CSE) to
    a fixed point. This is the classic behaviour of Morel–Renvoise style
    PRE on three-address code. *)

open Epre_util
open Epre_ir
open Epre_analysis
open Epre_opt

type stats = {
  mutable inserted : int;
  mutable deleted : int;
  mutable cse_deleted : int;
  mutable rounds : int;
}

let instr_of_key (key : Expr_universe.key) ~dst =
  match key with
  | Expr_universe.KConst value -> Instr.Const { dst; value }
  | Expr_universe.KUnop (op, src) -> Instr.Unop { op; dst; src }
  | Expr_universe.KBinop (op, a, b) -> Instr.Binop { op; dst; a; b }
  | Expr_universe.KLoad addr -> Instr.Load { dst; addr }

(* One LCM round; returns (inserted, deleted). *)
let lcm_round ?(include_loads = true) (r : Routine.t) =
  ignore (Epre_ssa.Critical_edges.split_all r);
  let cfg = r.Routine.cfg in
  let fl = Expr_flow.build ~include_loads r in
  let uni = fl.Expr_flow.uni in
  let width = fl.Expr_flow.width in
  if width = 0 then (0, 0)
  else begin
    let antloc = fl.Expr_flow.local.Expr_universe.antloc in
    let order = Order.compute cfg in
    let preds = Cfg.preds cfg in
    let entry = Cfg.entry cfg in
    (* The earliest/later placement, shared with the redundancy auditor
       (see [Expr_flow.lcm_placement] for the equations). *)
    let { Expr_flow.laterin; later; later_virtual } =
      Expr_flow.lcm_placement fl
    in
    (* --- Transformation --- *)
    let exprs = Expr_universe.exprs uni in
    let inserted = ref 0 in
    let insert_instrs idx =
      let e = exprs.(idx) in
      instr_of_key e.Expr_universe.key ~dst:e.Expr_universe.name
    in
    (* Insertions on real edges. *)
    let edges =
      Cfg.fold_blocks
        (fun acc b ->
          if Order.is_reachable order b.Block.id then
            List.fold_left (fun acc s -> (b.Block.id, s) :: acc) acc (Block.succs b)
          else acc)
        [] cfg
    in
    List.iter
      (fun (i, j) ->
        let ins = later i j in
        Bitset.diff_into ~dst:ins laterin.(j);
        if not (Bitset.is_empty ins) then begin
          let instrs = List.map insert_instrs (Bitset.elements ins) in
          inserted := !inserted + List.length instrs;
          if List.length (Cfg.succs cfg i) = 1 then
            List.iter (fun instr -> Block.append (Cfg.block cfg i) instr) instrs
          else begin
            (* The edge was split if critical, so j has a single pred. *)
            assert (List.length preds.(j) = 1);
            let jb = Cfg.block cfg j in
            jb.Block.instrs <- instrs @ jb.Block.instrs
          end
        end)
      edges;
    (* Insertion "before the entry" lands at the top of the entry block. *)
    let entry_ins = Bitset.copy later_virtual in
    Bitset.diff_into ~dst:entry_ins laterin.(entry);
    if not (Bitset.is_empty entry_ins) then begin
      let instrs = List.map insert_instrs (Bitset.elements entry_ins) in
      inserted := !inserted + List.length instrs;
      let eb = Cfg.block cfg entry in
      eb.Block.instrs <- instrs @ eb.Block.instrs
    end;
    (* Deletions: every evaluation of e before the first kill of e in a
       DELETE block — they all produce the value now available in e's
       name. *)
    let deleted = ref 0 in
    Cfg.iter_blocks
      (fun b ->
        let id = b.Block.id in
        if Order.is_reachable order id then begin
          let del = Bitset.copy antloc.(id) in
          Bitset.diff_into ~dst:del laterin.(id);
          if not (Bitset.is_empty del) then begin
            let killed = Bitset.create width in
            b.Block.instrs <-
              List.filter
                (fun i ->
                  let drop =
                    match Expr_universe.key_of i, Instr.def i with
                    | Some _, Some dst -> begin
                      match Expr_universe.expr_of_name uni dst with
                      | Some e ->
                        let idx = e.Expr_universe.index in
                        Bitset.mem del idx && not (Bitset.mem killed idx)
                      | None -> false
                    end
                    | _ -> false
                  in
                  if not drop then begin
                    let reg_kills, mem_kills = Expr_universe.kills_of_instr uni i in
                    List.iter (Bitset.add killed) reg_kills;
                    List.iter (Bitset.add killed) mem_kills
                  end
                  else incr deleted;
                  drop = false)
                b.Block.instrs
          end
        end)
      cfg;
    (!inserted, !deleted)
  end

let max_rounds = 16

(** Run PRE to a fixed point. [include_loads] controls whether memory loads
    participate (killed by stores and calls); the paper's array-heavy suite
    needs them. *)
let run ?(include_loads = true) (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Pre.run: requires non-SSA code";
  let stats = { inserted = 0; deleted = 0; cse_deleted = 0; rounds = 0 } in
  let rec go n =
    if n < max_rounds then begin
      let ins, del = lcm_round ~include_loads r in
      let cse = Cse_avail.run r in
      stats.inserted <- stats.inserted + ins;
      stats.deleted <- stats.deleted + del;
      stats.cse_deleted <- stats.cse_deleted + cse;
      stats.rounds <- stats.rounds + 1;
      if ins + del + cse > 0 then go (n + 1)
    end
  in
  go 0;
  stats
