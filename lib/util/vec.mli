(** Growable arrays.

    A thin dynamic-array abstraction used for CFG block tables and other
    index-addressed, append-mostly structures inside the optimizer. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
(** [set v i x] stores [x] at index [i]. [i] must be [< length v]. *)

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val clear : 'a t -> unit
(** [clear v] drops every element; capacity is retained. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val copy : 'a t -> 'a t

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool
