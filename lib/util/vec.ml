type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let clear v = v.len <- 0

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list xs =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let copy v = { data = Array.copy v.data; len = v.len }

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0
