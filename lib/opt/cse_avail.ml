(** Classic global common-subexpression elimination over available
    expressions — method 2 of the paper's Section 5.3 hierarchy.

    An expression available on every path into a block (the intersection
    forward problem) need not be re-evaluated until killed: under the naming
    discipline its name still holds the value, so the evaluation is simply
    deleted. Catches the if-then-else join redundancy that dominator-based
    CSE misses, but — unlike PRE — nothing that is only *partially*
    redundant. *)

open Epre_util
open Epre_ir
open Epre_analysis

let run (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Cse_avail.run: requires non-SSA code";
  let fl = Expr_flow.build r in
  let uni = fl.Expr_flow.uni in
  let width = fl.Expr_flow.width in
  if width = 0 then 0
  else begin
    let avail = Expr_flow.availability fl in
    let deleted = ref 0 in
    Cfg.iter_blocks
      (fun b ->
        let current = Bitset.copy avail.Dataflow.ins.(b.Block.id) in
        b.Block.instrs <-
          List.filter
            (fun i ->
              let keep =
                match Expr_universe.key_of i, Instr.def i with
                | Some _, Some dst -> begin
                  match Expr_universe.expr_of_name uni dst with
                  | Some e ->
                    if Bitset.mem current e.Expr_universe.index then begin
                      incr deleted;
                      false
                    end
                    else begin
                      Bitset.add current e.Expr_universe.index;
                      true
                    end
                  | None -> true
                end
                | _ -> true
              in
              if keep then begin
                let reg_kills, mem_kills = Expr_universe.kills_of_instr uni i in
                List.iter (Bitset.remove current) reg_kills;
                List.iter (Bitset.remove current) mem_kills
              end;
              keep)
            b.Block.instrs)
      r.Routine.cfg;
    !deleted
  end
