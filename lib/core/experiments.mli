(** Regeneration of the paper's experimental study (Section 4) and the
    Section 5.3 hierarchy. Absolute numbers differ from the paper's
    (different suite and back end — DESIGN.md); the claims under test are
    the shapes. Rendered tables are what [bench/main.exe] and the [eprec]
    table subcommands print; EXPERIMENTS.md records paper-vs-measured. *)

type table1_row = {
  name : string;
  baseline : int;
  partial : int;
  reassociation : int;
  distribution : int;
}

val table1_row : Epre_workloads.Workloads.t -> table1_row

val table1 : ?workloads:Epre_workloads.Workloads.t list -> unit -> table1_row list

(** Percentage improvement of [now] over [prev]. *)
val improvement : prev:int -> now:int -> float

(** Table 1 with the paper's percentage columns, sorted by the [new]
    column. *)
val render_table1 : table1_row list -> string

type table2_row = { name : string; before : int; after : int }

(** Code growth factor, Table 2's third column. *)
val expansion_factor : table2_row -> float

val table2_row : Epre_workloads.Workloads.t -> table2_row

val table2 : ?workloads:Epre_workloads.Workloads.t list -> unit -> table2_row list

val render_table2 : table2_row list -> string

type hierarchy_row = {
  name : string;
  dom_cse : int;
  avail_cse : int;
  pre : int;
  dom_cse_residual : int;
      (** static effectiveness score of the variant: evaluation sites the
        redundancy auditor still classifies fully or partially redundant
        after it ran (0 = nothing left on the table) *)
  avail_cse_residual : int;
  pre_residual : int;
}

val hierarchy_row : Epre_workloads.Workloads.t -> hierarchy_row

val hierarchy :
  ?workloads:Epre_workloads.Workloads.t list -> unit -> hierarchy_row list

(** Dynamic counts with each variant's residual score in parentheses. *)
val render_hierarchy : hierarchy_row list -> string
