(** The pass registry: every optimizer pass under its command-line name,
    powering [eprec --passes] and mirroring the paper's
    passes-as-Unix-filters architecture. *)

open Epre_ir

type pass = {
  name : string;
  description : string;
  run : Routine.t -> unit;
}

val all : pass list

val find : string -> pass option

(** True for the [chaos:*] fault-injection entries, which corrupt IR on
    purpose (they exist to exercise [Epre_harness.Harness]). *)
val is_chaos : pass -> bool

(** A registry pass as the harness sees it. *)
val to_named : pass -> Epre_harness.Harness.named_pass

(** Resolve a comma-separated sequence; [Error name] on the first unknown
    pass. *)
val parse_sequence : string -> (pass list, string) result

(** Run passes over every routine, validating after each.
    @raise Routine.Ill_formed if a pass breaks the IR. *)
val run_sequence : pass list -> Program.t -> unit
