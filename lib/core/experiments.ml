(** Regeneration of the paper's experimental study (Section 4).

    - [table1]: dynamic ILOC operation counts per workload at the four
      optimization levels, with the percentage columns of Table 1
      ([partial] vs baseline, [reassociation] vs partial, [distribution] vs
      reassociation, plus the [new] and [total] summaries);
    - [table2]: static operation counts before/after forward propagation
      and the resulting code growth factor, as in Table 2;
    - [hierarchy]: the Section 5.3 comparison of dominator-based CSE,
      available-expression CSE and PRE, all run after reassociation and
      value numbering.

    Absolute numbers differ from the paper's (different suite, different
    back end — see DESIGN.md); the claims under test are the *shapes*:
    PRE wins broadly, reassociation + GVN adds further improvement with
    occasional small losses, and the three redundancy eliminators form a
    hierarchy. *)

open Epre_ir
open Epre_workloads

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)

type table1_row = {
  name : string;
  baseline : int;
  partial : int;
  reassociation : int;
  distribution : int;
}

let dynamic_count (p : Program.t) =
  let _, _, total = Workloads.execute p in
  total

let run_level prog level =
  let p, _stats = Pipeline.optimized_copy ~level prog in
  dynamic_count p

(* Table regeneration is traced: one "experiment" span per table and per
   row, so a --trace-out of `eprec table1` (or the bench baseline) shows
   where regeneration time goes. *)
let experiment_span name f =
  Epre_telemetry.Telemetry.Span.with_ ~kind:"experiment" ~name f

let table1_row (w : Workloads.t) =
  experiment_span ("table1:" ^ w.Workloads.name) (fun () ->
      let prog = Workloads.compile w in
      {
        name = w.Workloads.name;
        baseline = run_level prog Pipeline.Baseline;
        partial = run_level prog Pipeline.Partial;
        reassociation = run_level prog Pipeline.Reassociation;
        distribution = run_level prog Pipeline.Distribution;
      })

let table1 ?(workloads = Workloads.all) () =
  experiment_span "table1" (fun () -> List.map table1_row workloads)

(* Improvement of [now] over [prev], in percent; the paper prints nothing
   for no change, "0%" and "-0%" for tiny changes. *)
let improvement ~prev ~now =
  if prev <= 0 then 0.0 else 100.0 *. float_of_int (prev - now) /. float_of_int prev

let percent_cell ~prev ~now =
  if prev = now then ""
  else begin
    let p = improvement ~prev ~now in
    if Float.abs p < 0.5 then (if p >= 0.0 then "0%" else "-0%")
    else Printf.sprintf "%.0f%%" p
  end

let render_table1 rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %12s %12s %5s %13s %5s %12s %5s %6s %6s\n" "routine"
       "baseline" "partial" "" "reassociation" "" "distribution" "" "new" "total");
  let sorted =
    List.sort
      (fun a b ->
        compare
          (improvement ~prev:b.partial ~now:b.distribution)
          (improvement ~prev:a.partial ~now:a.distribution))
      rows
  in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %12d %12d %5s %13d %5s %12d %5s %6s %6s\n" r.name
           r.baseline r.partial
           (percent_cell ~prev:r.baseline ~now:r.partial)
           r.reassociation
           (percent_cell ~prev:r.partial ~now:r.reassociation)
           r.distribution
           (percent_cell ~prev:r.reassociation ~now:r.distribution)
           (percent_cell ~prev:r.partial ~now:r.distribution)
           (percent_cell ~prev:r.baseline ~now:r.distribution)))
    sorted;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)

type table2_row = { name : string; before : int; after : int }

let expansion_factor r =
  if r.before = 0 then 1.0 else float_of_int r.after /. float_of_int r.before

(* Forward propagation's code growth, measured per program as the paper
   measures it per routine: static ILOC operations entering reassociation
   vs. after forward propagation (distribution off — the growth comes from
   propagation itself). *)
let table2_row (w : Workloads.t) =
  experiment_span ("table2:" ^ w.Workloads.name) @@ fun () ->
  let prog = Workloads.compile w in
  let stats =
    List.map
      (fun r ->
        Epre_reassoc.Reassociate.run
          ~config:(Pipeline.reassoc_config ~distribute:false)
          r)
      (Program.routines prog)
  in
  let before =
    List.fold_left (fun acc s -> acc + s.Epre_reassoc.Reassociate.before_ops) 0 stats
  in
  let after =
    List.fold_left (fun acc s -> acc + s.Epre_reassoc.Reassociate.after_ops) 0 stats
  in
  { name = w.Workloads.name; before; after }

let table2 ?(workloads = Workloads.all) () =
  experiment_span "table2" (fun () -> List.map table2_row workloads)

let render_table2 rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %10s %10s %10s\n" "routine" "before" "after" "expansion");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %10d %10d %10.3f\n" r.name r.before r.after
           (expansion_factor r)))
    (List.sort (fun a b -> compare a.name b.name) rows);
  let tb = List.fold_left (fun acc r -> acc + r.before) 0 rows in
  let ta = List.fold_left (fun acc r -> acc + r.after) 0 rows in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %10d %10d %10.3f\n" "totals" tb ta
       (if tb = 0 then 1.0 else float_of_int ta /. float_of_int tb));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Section 5.3: the redundancy-elimination hierarchy                   *)

type hierarchy_row = {
  name : string;
  dom_cse : int;  (** method 1: dominator-based *)
  avail_cse : int;  (** method 2: available expressions *)
  pre : int;  (** method 3: partial redundancy elimination *)
  dom_cse_residual : int;  (** static effectiveness: redundant sites left *)
  avail_cse_residual : int;
  pre_residual : int;
}

type cse_method = Dom_cse | Avail_cse | Full_pre

(* Static effectiveness of an engine variant: evaluation sites the
   redundancy auditor still classifies fully or partially redundant
   after the variant ran — 0 means nothing left on the table. *)
let residual_count (p : Program.t) =
  List.fold_left
    (fun acc (r : Routine.t) ->
      acc + Epre_analysis.Audit.residual (Epre_analysis.Audit.run r))
    0 (Program.routines p)

(* Reassociation + GVN (encode value equivalence into names, as Section 5.3
   assumes), then one of the three eliminators, then the baseline cleanup
   sequence. *)
let run_hierarchy_level prog m =
  let p = Program.copy prog in
  List.iter
    (fun r ->
      ignore
        (Epre_reassoc.Reassociate.run ~config:(Pipeline.reassoc_config ~distribute:false) r);
      ignore (Epre_gvn.Gvn.run r);
      (match m with
      | Dom_cse -> ignore (Epre_opt.Cse_dom.run r)
      | Avail_cse ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_opt.Cse_avail.run r)
      | Full_pre ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r));
      ignore (Epre_opt.Constprop.run r);
      ignore (Epre_opt.Peephole.run r);
      ignore (Epre_opt.Dce.run r);
      ignore (Epre_opt.Coalesce.run r);
      ignore (Epre_opt.Clean.run r);
      Routine.validate r)
    (Program.routines p);
  (dynamic_count p, residual_count p)

let hierarchy_row (w : Workloads.t) =
  experiment_span ("hierarchy:" ^ w.Workloads.name) (fun () ->
      let prog = Workloads.compile w in
      let dom_cse, dom_cse_residual = run_hierarchy_level prog Dom_cse in
      let avail_cse, avail_cse_residual = run_hierarchy_level prog Avail_cse in
      let pre, pre_residual = run_hierarchy_level prog Full_pre in
      {
        name = w.Workloads.name;
        dom_cse;
        avail_cse;
        pre;
        dom_cse_residual;
        avail_cse_residual;
        pre_residual;
      })

let hierarchy ?(workloads = Workloads.all) () =
  experiment_span "hierarchy" (fun () -> List.map hierarchy_row workloads)

(* Dynamic operation counts, and in parentheses the static effectiveness
   score: redundant evaluation sites the auditor still sees ("left"). *)
let render_hierarchy rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %19s %19s %19s\n" "routine" "dominator" "available"
       "pre");
  List.iter
    (fun r ->
      let cell count residual =
        Printf.sprintf "%d (%d left)" count residual
      in
      Buffer.add_string buf
        (Printf.sprintf "%-12s %19s %19s %19s\n" r.name
           (cell r.dom_cse r.dom_cse_residual)
           (cell r.avail_cse r.avail_cse_residual)
           (cell r.pre r.pre_residual)))
    (List.sort (fun a b -> compare a.name b.name) rows);
  Buffer.contents buf
