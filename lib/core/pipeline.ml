(** The optimizer pipelines of the paper's experimental study (Section 4).

    Four optimization levels, each a strict extension of the previous:

    - [Baseline]: global constant propagation, global peephole optimization,
      global dead code elimination, coalescing, and empty-block removal;
    - [Partial]: PRE first (over the front end's naming discipline,
      re-normalized for safety), then the baseline sequence;
    - [Reassociation]: global reassociation (without distribution) and
      global value numbering before PRE and the rest;
    - [Distribution]: reassociation including distribution of
      multiplication over addition.

    Every pass consumes and produces ILOC, exactly like the Unix-filter
    passes of the paper's optimizer; passes that need SSA build and destroy
    it internally.

    A level's sequence can run two ways: bare ([optimize]), where a failing
    pass aborts the run exactly like one broken filter poisons the paper's
    pipeline; or supervised ([optimize_supervised]), where each pass runs
    against an [Epre_harness] checkpoint and is rolled back on failure. *)

open Epre_ir

type level = Baseline | Partial | Reassociation | Distribution

let all_levels = [ Baseline; Partial; Reassociation; Distribution ]

let level_to_string = function
  | Baseline -> "baseline"
  | Partial -> "partial"
  | Reassociation -> "reassociation"
  | Distribution -> "distribution"

let level_of_string = function
  | "baseline" -> Some Baseline
  | "partial" -> Some Partial
  | "reassociation" | "reassoc" -> Some Reassociation
  | "distribution" | "distribute" -> Some Distribution
  | _ -> None

type routine_stats = {
  routine : string;
  reassoc : Epre_reassoc.Reassociate.stats option;
  gvn : Epre_gvn.Gvn.stats option;
  pre : Epre_pre.Pre.stats option;
  exprs_renamed : int;
  constants_folded : int;
  peephole_rewrites : int;
  dce_removed : int;
  copies_coalesced : int;
}

(* [dump] observes the routine after each named stage, for IR tracing (the
   running example of Figures 2-10 uses it). *)
type hooks = { dump : string -> Routine.t -> unit }

let no_hooks = { dump = (fun _ _ -> ()) }

let reassoc_config ~distribute =
  { Epre_reassoc.Expr_tree.default_config with Epre_reassoc.Expr_tree.distribute }

(* Mutable per-routine statistics, filled in by the pass closures as the
   sequence runs (so the same pass list works routine-major and
   supervised/pass-major). *)
type acc = {
  mutable s_reassoc : Epre_reassoc.Reassociate.stats option;
  mutable s_gvn : Epre_gvn.Gvn.stats option;
  mutable s_pre : Epre_pre.Pre.stats option;
  mutable s_renamed : int;
  mutable s_constants : int;
  mutable s_peephole : int;
  mutable s_dce : int;
  mutable s_coalesce : int;
}

let fresh_acc () =
  { s_reassoc = None; s_gvn = None; s_pre = None; s_renamed = 0; s_constants = 0;
    s_peephole = 0; s_dce = 0; s_coalesce = 0 }

let stats_of_acc ~routine a =
  { routine; reassoc = a.s_reassoc; gvn = a.s_gvn; pre = a.s_pre;
    exprs_renamed = a.s_renamed; constants_folded = a.s_constants;
    peephole_rewrites = a.s_peephole; dce_removed = a.s_dce;
    copies_coalesced = a.s_coalesce }

(* A level's sequence as named harness passes; [acc_for] locates the stats
   sink for the routine being transformed. *)
let level_passes_into ~level ~acc_for =
  let p pass_name f = { Epre_harness.Harness.pass_name; run = (fun r -> f (acc_for r) r) } in
  let front =
    match level with
    | Baseline -> []
    | Partial ->
      [ p "naming" (fun a r -> a.s_renamed <- a.s_renamed + Epre_opt.Naming.run r);
        p "pre" (fun a r -> a.s_pre <- Some (Epre_pre.Pre.run r)) ]
    | Reassociation | Distribution ->
      let distribute = level = Distribution in
      [ p "reassociation"
          (fun a r ->
            a.s_reassoc <-
              Some (Epre_reassoc.Reassociate.run ~config:(reassoc_config ~distribute) r));
        p "gvn" (fun a r -> a.s_gvn <- Some (Epre_gvn.Gvn.run r));
        p "pre" (fun a r -> a.s_pre <- Some (Epre_pre.Pre.run r)) ]
  in
  let has_pre = front <> [] in
  front
  @ [ p "constprop" (fun a r -> a.s_constants <- a.s_constants + Epre_opt.Constprop.run r);
      p "peephole"
        (fun a r ->
          a.s_peephole <-
            a.s_peephole
            + Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r);
      p "dce" (fun a r -> a.s_dce <- a.s_dce + Epre_opt.Dce.run r);
      p "coalesce" (fun a r -> a.s_coalesce <- a.s_coalesce + Epre_opt.Coalesce.run r) ]
  (* Coalescing merges copy webs, which can turn distinct evaluations
     into literally identical expressions — fresh PRE opportunities the
     main round could not see. A late cleanup round collects them, so
     the PRE levels actually deliver the paper's "no removable
     redundancy survives" contract (the redundancy auditor's A002
     checks exactly this). *)
  @ (if has_pre then
       [ p "pre"
           (fun a r ->
             let s2 = Epre_pre.Pre.run r in
             a.s_pre <-
               Some
                 (match a.s_pre with
                 | None -> s2
                 | Some s1 ->
                   Epre_pre.Pre.
                     {
                       inserted = s1.inserted + s2.inserted;
                       deleted = s1.deleted + s2.deleted;
                       cse_deleted = s1.cse_deleted + s2.cse_deleted;
                       rounds = s1.rounds + s2.rounds;
                     }));
         p "dce" (fun a r -> a.s_dce <- a.s_dce + Epre_opt.Dce.run r) ]
     else [])
  @ [ p "clean" (fun _ r -> ignore (Epre_opt.Clean.run r)) ]

let level_passes ~level =
  let shared = fresh_acc () in
  level_passes_into ~level ~acc_for:(fun _ -> shared)

let level_stages ~level =
  List.map (fun p -> p.Epre_harness.Harness.pass_name) (level_passes ~level)

(* The next rung down the degradation ladder: each level is a strict
   extension of the previous, so stepping down only removes passes. *)
let lower = function
  | Distribution -> Some Reassociation
  | Reassociation -> Some Partial
  | Partial -> Some Baseline
  | Baseline -> None

(* Funnel the per-routine record into the generic counters registry, so
   the CLI's --metrics=json, CI and the bench baseline read pipeline
   results and pass-private counters through one interface. *)
let record_metrics (s : routine_stats) =
  let add name v = Epre_telemetry.Metrics.add ~routine:s.routine ~name v in
  add "naming.exprs_renamed" s.exprs_renamed;
  add "constprop.constants_folded" s.constants_folded;
  add "peephole.rewrites" s.peephole_rewrites;
  add "dce.removed" s.dce_removed;
  add "coalesce.copies" s.copies_coalesced;
  (match s.pre with
  | Some p ->
    add "pre.inserted" p.Epre_pre.Pre.inserted;
    add "pre.deleted" p.Epre_pre.Pre.deleted;
    add "pre.cse_deleted" p.Epre_pre.Pre.cse_deleted;
    add "pre.rounds" p.Epre_pre.Pre.rounds
  | None -> ());
  (match s.gvn with
  | Some g ->
    add "gvn.classes_merged" g.Epre_gvn.Gvn.classes_merged;
    add "gvn.renamed" g.Epre_gvn.Gvn.renamed
  | None -> ());
  match s.reassoc with
  | Some re ->
    add "reassoc.before_ops" re.Epre_reassoc.Reassociate.before_ops;
    add "reassoc.after_ops" re.Epre_reassoc.Reassociate.after_ops
  | None -> ()

let stats_to_json (s : routine_stats) =
  let module J = Epre_telemetry.Tjson in
  let opt f = function Some x -> f x | None -> J.Null in
  J.Obj
    [
      ("type", J.Str "routine_stats");
      ("routine", J.Str s.routine);
      ("exprs_renamed", J.Int s.exprs_renamed);
      ("constants_folded", J.Int s.constants_folded);
      ("peephole_rewrites", J.Int s.peephole_rewrites);
      ("dce_removed", J.Int s.dce_removed);
      ("copies_coalesced", J.Int s.copies_coalesced);
      ( "pre",
        opt
          (fun (p : Epre_pre.Pre.stats) ->
            J.Obj
              [
                ("inserted", J.Int p.Epre_pre.Pre.inserted);
                ("deleted", J.Int p.Epre_pre.Pre.deleted);
                ("cse_deleted", J.Int p.Epre_pre.Pre.cse_deleted);
                ("rounds", J.Int p.Epre_pre.Pre.rounds);
              ])
          s.pre );
      ( "gvn",
        opt
          (fun (g : Epre_gvn.Gvn.stats) ->
            J.Obj
              [
                ("classes_merged", J.Int g.Epre_gvn.Gvn.classes_merged);
                ("renamed", J.Int g.Epre_gvn.Gvn.renamed);
              ])
          s.gvn );
      ( "reassoc",
        opt
          (fun (re : Epre_reassoc.Reassociate.stats) ->
            J.Obj
              [
                ("before_ops", J.Int re.Epre_reassoc.Reassociate.before_ops);
                ("after_ops", J.Int re.Epre_reassoc.Reassociate.after_ops);
              ])
          s.reassoc );
    ]

let stats_jsonl stats =
  String.concat "\n"
    (List.map (fun s -> Epre_telemetry.Tjson.to_string (stats_to_json s)) stats)

(* Inverse of [stats_to_json], for the compile-service result cache: a
   cached routine replays its recorded statistics instead of re-running
   the pipeline. Strict on shape — any missing or mistyped field is
   [None], and the cache treats the entry as poisoned. *)
let stats_of_json (j : Epre_telemetry.Tjson.t) =
  let module J = Epre_telemetry.Tjson in
  let int k o = match J.member k o with Some (J.Int n) -> Some n | _ -> None in
  let str k o = match J.member k o with Some (J.Str s) -> Some s | _ -> None in
  (* A sub-record that is JSON [null] decodes to [Some None]; a present
     object decodes through [f]; anything else poisons the entry. *)
  let opt_sub k f o =
    match J.member k o with
    | Some J.Null -> Some None
    | Some (J.Obj _ as sub) -> Option.map Option.some (f sub)
    | _ -> None
  in
  let ( let* ) = Option.bind in
  match j with
  | J.Obj _ when str "type" j = Some "routine_stats" ->
    let* routine = str "routine" j in
    let* exprs_renamed = int "exprs_renamed" j in
    let* constants_folded = int "constants_folded" j in
    let* peephole_rewrites = int "peephole_rewrites" j in
    let* dce_removed = int "dce_removed" j in
    let* copies_coalesced = int "copies_coalesced" j in
    let* pre =
      opt_sub "pre"
        (fun o ->
          let* inserted = int "inserted" o in
          let* deleted = int "deleted" o in
          let* cse_deleted = int "cse_deleted" o in
          let* rounds = int "rounds" o in
          Some { Epre_pre.Pre.inserted; deleted; cse_deleted; rounds })
        j
    in
    let* gvn =
      opt_sub "gvn"
        (fun o ->
          let* classes_merged = int "classes_merged" o in
          let* renamed = int "renamed" o in
          Some { Epre_gvn.Gvn.classes_merged; renamed })
        j
    in
    let* reassoc =
      opt_sub "reassoc"
        (fun o ->
          let* before_ops = int "before_ops" o in
          let* after_ops = int "after_ops" o in
          Some { Epre_reassoc.Reassociate.before_ops; after_ops })
        j
    in
    Some
      { routine; reassoc; gvn; pre; exprs_renamed; constants_folded;
        peephole_rewrites; dce_removed; copies_coalesced }
  | _ -> None

(* The cache-key half that names the transformation: the level and its
   exact stage sequence. A PR that adds, removes or reorders a stage
   changes the fingerprint, so stale cached results can never be replayed
   against a different pipeline. *)
let fingerprint ~level =
  let stages =
    List.map (fun p -> p.Epre_harness.Harness.pass_name) (level_passes ~level)
  in
  Printf.sprintf "epre-pipeline-v1|%s|%s" (level_to_string level)
    (String.concat "," stages)

let optimize_routine ?(hooks = no_hooks) ?(poll = fun () -> ())
    ?(wrap = fun passes -> passes) ~level (r : Routine.t) =
  let acc = fresh_acc () in
  let passes = wrap (level_passes_into ~level ~acc_for:(fun _ -> acc)) in
  Epre_telemetry.Telemetry.Span.with_ ~kind:"routine" ~routine:r
    ~name:r.Routine.name (fun () ->
      List.iter
        (fun np ->
          (* Cancellation point: [poll] may raise (deadline enforcement in
             the compile service) — only between passes, never mid-pass,
             so the routine is always left in a pass boundary state. *)
          poll ();
          let pass_t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
          Epre_telemetry.Telemetry.Span.with_ ~kind:"pass" ~routine:r
            ~name:np.Epre_harness.Harness.pass_name (fun () ->
              np.Epre_harness.Harness.run r);
          Epre_telemetry.Histogram.observe_since
            ~name:("pass." ^ np.Epre_harness.Harness.pass_name) pass_t0;
          hooks.dump np.Epre_harness.Harness.pass_name r)
        passes;
      Routine.validate r);
  let stats = stats_of_acc ~routine:r.Routine.name acc in
  record_metrics stats;
  stats

(** Optimize a whole program in place; returns per-routine statistics. *)
let optimize ?hooks ~level (p : Program.t) =
  Epre_telemetry.Telemetry.Span.with_ ~kind:"pipeline"
    ~name:(level_to_string level) (fun () ->
      List.map (optimize_routine ?hooks ~level) (Program.routines p))

(** Convenience: copy, optimize the copy, return it with the stats. *)
let optimized_copy ?hooks ~level (p : Program.t) =
  let p' = Program.copy p in
  let stats = optimize ?hooks ~level p' in
  (p', stats)

(* Splice [np] into [passes] at [at] (clamped to the sequence bounds). *)
let splice passes ~at np =
  let n = List.length passes in
  let at = max 0 (min at n) in
  let rec go i = function
    | rest when i = at -> np :: rest
    | [] -> [ np ]
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 passes

(* Supervise one routine's full pass sequence against [context] — a
   program that contains [r] (live) alongside a consistent view of the
   other routines. The compile-service pool runs one of these per worker:
   [context] supplies the call-graph signatures the Ir tier's typechecker
   wants, while only [r] is transformed. *)
let optimize_supervised_routine ?dump ?(inject = []) ?(record = true) ~config
    ~level ~context (r : Routine.t) =
  let acc = fresh_acc () in
  let passes =
    List.fold_left
      (fun ps (at, np) -> splice ps ~at np)
      (level_passes_into ~level ~acc_for:(fun _ -> acc))
      inject
  in
  let records =
    Epre_harness.Harness.supervise ?dump ~only:[ r.Routine.name ] config
      ~passes context
  in
  let stats = stats_of_acc ~routine:r.Routine.name acc in
  if record then record_metrics stats;
  (stats, records)

(** Optimize under harness supervision: each (pass, routine) application
    checkpoints, validates at the configured tier, and rolls back on
    failure, continuing with the rest of the sequence. [inject] splices
    extra passes (chaos faults, experimental passes) into the level's
    sequence at the given positions. Statistics written by a pass that was
    subsequently rolled back do survive in [routine_stats] — the records
    are the source of truth for what is actually in effect. *)
let optimize_supervised ?(hooks = no_hooks) ?(inject = []) ~config ~level
    (p : Program.t) =
  let accs = Hashtbl.create 7 in
  let acc_for (r : Routine.t) =
    match Hashtbl.find_opt accs r.Routine.name with
    | Some a -> a
    | None ->
      let a = fresh_acc () in
      Hashtbl.add accs r.Routine.name a;
      a
  in
  let passes =
    List.fold_left
      (fun ps (at, np) -> splice ps ~at np)
      (level_passes_into ~level ~acc_for)
      inject
  in
  let records =
    (* Per-(pass, routine) spans come from the harness itself. *)
    Epre_telemetry.Telemetry.Span.with_ ~kind:"pipeline"
      ~name:(level_to_string level ^ "/supervised") (fun () ->
        Epre_harness.Harness.supervise ~dump:hooks.dump config ~passes p)
  in
  let stats =
    List.map
      (fun (r : Routine.t) -> stats_of_acc ~routine:r.Routine.name (acc_for r))
      (Program.routines p)
  in
  List.iter record_metrics stats;
  (stats, records)
