(** The optimizer pipelines of the paper's experimental study (Section 4).

    Four levels, each a strict extension of the previous:
    - [Baseline]: constant propagation, peephole, DCE, coalescing,
      empty-block removal;
    - [Partial]: naming normalization and PRE, then the baseline sequence;
    - [Reassociation]: global reassociation (no distribution) and GVN
      before PRE and the rest;
    - [Distribution]: reassociation including distribution of [*] over
      [+].

    Every pass consumes and produces ILOC, like the Unix-filter passes of
    the paper's optimizer; passes that need SSA build and destroy it
    internally.

    A level's sequence runs either bare ([optimize] — one broken pass
    aborts the run) or supervised ([optimize_supervised] — each pass is
    checkpointed, validated, and rolled back on failure; see
    [Epre_harness.Harness]).

    Both entry points are traced: when a telemetry recorder is installed
    ([Epre_telemetry.Telemetry]), each run opens a ["pipeline"] span and
    one ["pass"] span per (routine, stage), and the per-routine statistics
    are mirrored into the [Epre_telemetry.Metrics] counters registry
    (names like ["constprop.constants_folded"]; the registry is live even
    without a recorder). *)

open Epre_ir

type level = Baseline | Partial | Reassociation | Distribution

val all_levels : level list

val level_to_string : level -> string

val level_of_string : string -> level option

type routine_stats = {
  routine : string;
  reassoc : Epre_reassoc.Reassociate.stats option;
  gvn : Epre_gvn.Gvn.stats option;
  pre : Epre_pre.Pre.stats option;
  exprs_renamed : int;
      (** evaluation sites rewritten by [Naming] (Partial level only) *)
  constants_folded : int;
  peephole_rewrites : int;
  dce_removed : int;
  copies_coalesced : int;
}

(** One-line-per-routine JSON records of [routine_stats]
    ([{"type":"routine_stats","routine":...,...}]), encoded with
    [Epre_telemetry.Tjson] — the `--metrics=json` / CI format. *)
val stats_to_json : routine_stats -> Epre_telemetry.Tjson.t

val stats_jsonl : routine_stats list -> string

(** Strict inverse of [stats_to_json]; [None] on any missing or mistyped
    field. The compile-service cache ([Epre_service.Cache]) replays
    recorded statistics through this instead of re-running the pipeline. *)
val stats_of_json : Epre_telemetry.Tjson.t -> routine_stats option

(** Mirror a routine's statistics into the [Epre_telemetry.Metrics]
    counters registry — what [optimize] does after each routine. Exposed
    so a cache hit replays the same counter increments a recompile would
    have produced. *)
val record_metrics : routine_stats -> unit

(** Names the transformation a level performs: the level and its exact
    stage sequence, versioned. One half of the compile-service cache key
    (the other is the routine's canonical ILOC text) — any change to a
    level's pipeline changes its fingerprint and invalidates cached
    results. *)
val fingerprint : level:level -> string

(** [dump] observes the routine after each named stage (IR tracing; the
    Figures 2-10 walkthrough uses it). Stage names: ["naming"],
    ["reassociation"], ["gvn"], ["pre"], ["constprop"], ["peephole"],
    ["dce"], ["coalesce"], ["clean"]. *)
type hooks = { dump : string -> Routine.t -> unit }

val no_hooks : hooks

val reassoc_config : distribute:bool -> Epre_reassoc.Expr_tree.config

(** A level's pass sequence under its stage names, for the harness,
    bisection, and chaos-injection experiments. Statistics are discarded;
    use [optimize]/[optimize_supervised] to collect them. *)
val level_passes : level:level -> Epre_harness.Harness.named_pass list

(** Just the stage names of a level's sequence, in pass order — what the
    compile service's circuit breakers match opened passes against. *)
val level_stages : level:level -> string list

(** The next rung down the degradation ladder ([Distribution] →
    [Reassociation] → [Partial] → [Baseline] → [None]). Each level is a
    strict extension of the one below, so stepping down only removes
    passes — the compile service re-attempts failing jobs down this
    chain. *)
val lower : level -> level option

(** Insert a pass at a 0-based position (clamped to the sequence). *)
val splice :
  Epre_harness.Harness.named_pass list ->
  at:int ->
  Epre_harness.Harness.named_pass ->
  Epre_harness.Harness.named_pass list

(** Optimize one routine in place. [poll] is called before every pass and
    may raise to abandon the remaining passes (the compile service's
    deadline enforcement): the routine is then left at a pass boundary,
    never mid-transformation. [wrap] transforms the level's pass list
    before it runs (default: identity) — the compile service uses it to
    excise breaker-opened passes and to attribute per-pass failures;
    wrapped passes must keep their [pass_name]s for spans and histograms
    to stay meaningful. *)
val optimize_routine :
  ?hooks:hooks ->
  ?poll:(unit -> unit) ->
  ?wrap:
    (Epre_harness.Harness.named_pass list -> Epre_harness.Harness.named_pass list) ->
  level:level ->
  Routine.t ->
  routine_stats

(** Optimize a whole program in place; per-routine statistics. *)
val optimize : ?hooks:hooks -> level:level -> Program.t -> routine_stats list

(** Copy, optimize the copy, return it with the stats. *)
val optimized_copy :
  ?hooks:hooks -> level:level -> Program.t -> Program.t * routine_stats list

(** Optimize in place under harness supervision: every (pass, routine)
    application runs against a checkpoint, is validated at the tier in
    [config], and is rolled back on failure while the rest of the sequence
    continues. [inject] splices extra passes — typically
    [Epre_harness.Chaos] faults — into the sequence at the given 0-based
    positions (clamped). Returns the per-routine statistics and the
    per-application outcome records in execution order.
    @raise Epre_harness.Harness.Supervision_failed on the first rollback
    when [config.keep_going] is false. *)
val optimize_supervised :
  ?hooks:hooks ->
  ?inject:(int * Epre_harness.Harness.named_pass) list ->
  config:Epre_harness.Harness.config ->
  level:level ->
  Program.t ->
  routine_stats list * Epre_harness.Harness.record list

(** Supervise one routine's full pass sequence. [context] must contain
    [r] itself plus a consistent (read-only) view of the other routines —
    the Ir validation tier typechecks call-graph signatures against it,
    and the Exec tier's translation validation interprets it (so for a
    frozen per-worker context, the reference observation matches the
    serial run's). Returns the routine's stats and its per-pass records
    in pass order. This is the per-worker unit of [Epre_service]'s
    parallel supervised optimization. [dump name r] fires after every
    pass application, post-rollback — the service captures per-pass
    snapshot trails through it to reconstruct serial fail-fast state.
    [inject] splices extra passes exactly like [optimize_supervised]'s.
    [record] (default true) mirrors the stats into the metrics registry;
    the service defers that to preserve serial metric ordering. *)
val optimize_supervised_routine :
  ?dump:(string -> Routine.t -> unit) ->
  ?inject:(int * Epre_harness.Harness.named_pass) list ->
  ?record:bool ->
  config:Epre_harness.Harness.config ->
  level:level ->
  context:Program.t ->
  Routine.t ->
  routine_stats * Epre_harness.Harness.record list
