(** The pass registry: every optimizer pass under its command-line name.

    The paper's optimizer "is structured as a sequence of passes, where
    each pass is a Unix filter that consumes and produces ILOC ... its
    flexibility makes it ideal for experimentation". This registry is our
    equivalent: `eprec compile --passes reassociate,gvn,pre,...` composes
    arbitrary sequences, and the experiment harness uses the same names. *)

open Epre_ir

type pass = {
  name : string;
  description : string;
  run : Routine.t -> unit;
}

let all =
  [
    { name = "naming";
      description = "re-establish the Section 2.2 expression-naming discipline";
      run = (fun r -> ignore (Epre_opt.Naming.run r)) };
    { name = "pre";
      description = "partial redundancy elimination (edge placement)";
      run = (fun r -> ignore (Epre_pre.Pre.run r)) };
    { name = "pre-classic";
      description = "Morel-Renvoise PRE (block-end placement; ablation)";
      run = (fun r -> ignore (Epre_pre.Pre_classic.run r)) };
    { name = "reassociate";
      description = "global reassociation, no distribution (Section 3.1)";
      run =
        (fun r ->
          ignore
            (Epre_reassoc.Reassociate.run
               ~config:(Pipeline.reassoc_config ~distribute:false) r)) };
    { name = "distribute";
      description = "global reassociation with distribution of * over +";
      run =
        (fun r ->
          ignore
            (Epre_reassoc.Reassociate.run
               ~config:(Pipeline.reassoc_config ~distribute:true) r)) };
    { name = "gvn";
      description = "partition-based global value numbering (Section 3.2)";
      run = (fun r -> ignore (Epre_gvn.Gvn.run r)) };
    { name = "constprop";
      description = "sparse conditional constant propagation";
      run = (fun r -> ignore (Epre_opt.Constprop.run r)) };
    { name = "peephole";
      description = "global peephole optimization";
      run = (fun r -> ignore (Epre_opt.Peephole.run r)) };
    { name = "peephole-shift";
      description = "peephole including mul-to-shift rewriting (Section 5.2)";
      run =
        (fun r ->
          ignore
            (Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r)) };
    { name = "dce";
      description = "dead code elimination";
      run = (fun r -> ignore (Epre_opt.Dce.run r)) };
    { name = "adce";
      description = "aggressive DCE via control dependence (Cytron 7.1; extension)";
      run = (fun r -> ignore (Epre_opt.Adce.run r)) };
    { name = "coalesce";
      description = "Chaitin-style copy coalescing";
      run = (fun r -> ignore (Epre_opt.Coalesce.run r)) };
    { name = "clean";
      description = "CFG cleanup (empty-block removal)";
      run = (fun r -> ignore (Epre_opt.Clean.run r)) };
    { name = "cse-dom";
      description = "dominator-based CSE (Section 5.3 method 1)";
      run = (fun r -> ignore (Epre_opt.Cse_dom.run r)) };
    { name = "cse-avail";
      description = "available-expression CSE (Section 5.3 method 2)";
      run = (fun r -> ignore (Epre_opt.Cse_avail.run r)) };
    { name = "dvnt";
      description = "dominator-tree hash value numbering (extension)";
      run = (fun r -> ignore (Epre_opt.Dvnt.run r)) };
    { name = "strength";
      description = "operator strength reduction (extension)";
      run = (fun r -> ignore (Epre_opt.Strength.run r)) };
    { name = "ssa-roundtrip";
      description = "build and destroy pruned SSA (diagnostic)";
      run = (fun r -> ignore (Epre_ssa.Ssa.destroy (Epre_ssa.Ssa.build r))) };
  ]
  (* Fault-injection passes: corrupt the IR on purpose, to exercise the
     supervision harness. Seeded via [Epre_harness.Chaos.default_seed]. *)
  @ List.map
      (fun k ->
        { name = Epre_harness.Chaos.name k;
          description = Epre_harness.Chaos.description k;
          run = (fun r -> Epre_harness.Chaos.run k r) })
      Epre_harness.Chaos.all_kinds

let is_chaos p = String.length p.name >= 6 && String.sub p.name 0 6 = "chaos:"

(** A registry pass as the harness sees it. *)
let to_named p = { Epre_harness.Harness.pass_name = p.name; run = p.run }

let find name = List.find_opt (fun p -> p.name = name) all

(** Resolve a comma-separated sequence; [Error name] on the first unknown
    pass. *)
let parse_sequence spec =
  let names =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> begin
      match find n with
      | Some p -> go (p :: acc) rest
      | None -> Error n
    end
  in
  go [] names

(** Run passes over every routine of a program, validating after each. *)
let run_sequence passes (p : Program.t) =
  List.iter
    (fun pass ->
      List.iter
        (fun r ->
          pass.run r;
          Routine.validate r)
        (Program.routines p))
    passes
