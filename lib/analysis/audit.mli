(** The redundancy auditor: a static check of the paper's effectiveness
    claim.

    After reassociation + GVN + PRE, no redundant evaluation should
    survive that code motion could have removed, and no path should
    execute more evaluations than before. The auditor measures exactly
    that, per routine, from the [Expr_flow] systems:

    - every expression evaluation site is classified — {b full}ly
      redundant (available on every path at the site: a deletion CSE
      missed), {b partial}ly redundant (partially available and not
      available: a deletion a safe edge placement could enable),
      {b value}-redundant (a congruent register, by the conservative
      non-SSA value numbering of [Valnum], already holds the value), or
      clean;
    - every site gets a {b down-safety} verdict: an evaluation is
      speculative when its result is not read on every path from the site
      (the backward must-use system) — a correct lazy placement never
      increases the number of speculative sites;
    - register pressure ([Pressure]) and expression lifetimes are
      estimated, and per-expression {b path evaluation counts} (longest
      acyclic path, per syntactic shape) are compared against a baseline.

    Findings carry the stable rule ids [A001]–[A007]; [Epre_verify]
    registers them in its catalog and converts reports to diagnostics.
    Rule semantics:

    - [A001] (error, only with [expect_pre]): fully redundant evaluation
      survives;
    - [A002] (error, only with [expect_pre]): partially redundant
      evaluation survives that one more LCM round (the engine's own
      [Expr_flow.lcm_delete] equations) would delete — partial
      availability alone is not enough, insertion must also be safe;
    - [A003] (warning, needs [baseline]): the transformation added
      speculative (not down-safe) evaluations, as judged by the
      conservative register-level must-use proxy;
    - [A004] (warning, needs [baseline]): some path's evaluation count of
      one expression shape increased;
    - [A005] (warning, needs [baseline]): peak register pressure grew;
    - [A006] (warning): an expression temporary stays live across many
      blocks;
    - [A007] (warning): value-redundant evaluation survives. *)

open Epre_ir

type classification = Clean | Full | Partial | Value

val classification_to_string : classification -> string

type site = {
  block : int;
  index : int;  (** instruction index within the block *)
  dst : Instr.reg;
  text : string;  (** the evaluation, printed *)
  cls : classification;
  value_regs : Instr.reg list;
      (** other registers holding the value, for [Value] sites *)
  speculative : bool;  (** result not read on every path from the site *)
}

type finding = {
  rule : string;  (** stable id, ["A001"]..["A007"] *)
  block : int option;
  index : int option;
  message : string;
}

type report = {
  findings : finding list;
  sites : site list;  (** every evaluation site, in block/index order *)
  block_pressure : (int * int) list;  (** (block id, peak live) *)
  max_pressure : int;
  baseline_max_pressure : int option;
  speculative_count : int;
  baseline_speculative_count : int option;
}

(** Audit one routine. [expect_pre] arms the redundancy-residue errors
    (A001/A002) — set it when the routine went through a PRE level.
    [baseline] (the routine before the transformation under audit)
    arms the delta rules A003/A004/A005. The routine must be
    structurally sound and out of SSA; [Epre_verify.Analyze] guards
    that. *)
val run : ?expect_pre:bool -> ?baseline:Routine.t -> Routine.t -> report

(** Sites still classified [Full] or [Partial] — the static
    effectiveness score (0 = nothing left on the table). *)
val residual : report -> int

(** Blocks live-in threshold for the A006 lifetime warning. *)
val lifetime_threshold : int
