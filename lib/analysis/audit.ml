(** The redundancy auditor. See the interface. *)

open Epre_util
open Epre_ir

type classification = Clean | Full | Partial | Value

let classification_to_string = function
  | Clean -> "clean"
  | Full -> "full"
  | Partial -> "partial"
  | Value -> "value"

type site = {
  block : int;
  index : int;
  dst : Instr.reg;
  text : string;
  cls : classification;
  value_regs : Instr.reg list;
  speculative : bool;
}

type finding = {
  rule : string;
  block : int option;
  index : int option;
  message : string;
}

type report = {
  findings : finding list;
  sites : site list;
  block_pressure : (int * int) list;
  max_pressure : int;
  baseline_max_pressure : int option;
  speculative_count : int;
  baseline_speculative_count : int option;
}

let lifetime_threshold = 8

(* ------------------------------------------------------------------ *)
(* Down-safety: the backward must-use system over registers.            *)
(* A register is "anticipated" at a point when every path from it reads *)
(* the register before redefining it — the register-level analog of     *)
(* expression anticipability, and the test for whether an evaluation's  *)
(* result was actually wanted where it was placed.                      *)

let must_use (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let nblocks = Cfg.num_blocks cfg in
  let gen = Array.init nblocks (fun _ -> Bitset.create width) in
  let kill = Array.init nblocks (fun _ -> Bitset.create width) in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      let read u =
        if u >= 0 && u < width && not (Bitset.mem kill.(id) u) then
          Bitset.add gen.(id) u
      in
      List.iter
        (fun i ->
          (match i with
          | Instr.Phi _ -> ()
          | _ -> List.iter read (Instr.uses i));
          match Instr.def i with
          | Some d when d >= 0 && d < width -> Bitset.add kill.(id) d
          | _ -> ())
        b.Block.instrs;
      List.iter read (Instr.term_uses b.Block.term))
    cfg;
  Dataflow.solve_backward cfg
    {
      Dataflow.width;
      gen = (fun id -> gen.(id));
      kill = (fun id -> kill.(id));
      boundary = Bitset.create width;
      meet = Dataflow.Inter;
    }

(* Is the evaluation at [idx] (defining [dst]) speculative? Scan the rest
   of the block: a read settles it, a redefinition wastes it, and past
   the terminator the block-exit must-use fact decides. *)
let speculative_at must (b : Block.t) ~dst ~idx =
  let rec tail n = function
    | [] ->
      if List.mem dst (Instr.term_uses b.Block.term) then false
      else not (Bitset.mem must.Dataflow.outs.(b.Block.id) dst)
    | i :: rest ->
      if n <= idx then tail (n + 1) rest
      else begin
        let reads =
          match i with Instr.Phi _ -> false | _ -> List.mem dst (Instr.uses i)
        in
        if reads then false
        else if Instr.def i = Some dst then true
        else tail (n + 1) rest
      end
  in
  tail 0 b.Block.instrs

(* ------------------------------------------------------------------ *)
(* Path evaluation counts per expression shape (A004).                  *)
(* Shapes expand operands through unique definitions to a bounded       *)
(* depth, naming parameters positionally so the form survives register  *)
(* renaming; any unresolvable operand poisons the shape ("?") and the   *)
(* shape is dropped rather than over-merged.                            *)

let shape_depth = 3

let shapes_of (r : Routine.t) order =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let def_count = Array.make width 0 in
  let def_instr = Array.make width None in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match Instr.def i with
          | Some d when d >= 0 && d < width ->
            def_count.(d) <- def_count.(d) + 1;
            def_instr.(d) <- Some i
          | _ -> ())
        b.Block.instrs)
    cfg;
  let param_index = Array.make width (-1) in
  List.iteri
    (fun i p -> if p >= 0 && p < width && def_count.(p) = 0 then param_index.(p) <- i)
    r.Routine.params;
  let rec operand depth u =
    if u < 0 || u >= width then "?"
    else if param_index.(u) >= 0 then Printf.sprintf "p%d" param_index.(u)
    else if depth = 0 || def_count.(u) <> 1 then "?"
    else
      match def_instr.(u) with
      | Some (Instr.Const { value; _ }) -> Value.to_string value
      | Some (Instr.Copy { src; _ }) -> operand (depth - 1) src
      | Some (Instr.Unop { op; src; _ }) ->
        Printf.sprintf "%s(%s)" (Op.unop_name op) (operand (depth - 1) src)
      | Some (Instr.Binop { op; a; b; _ }) ->
        let sa = operand (depth - 1) a and sb = operand (depth - 1) b in
        let sa, sb = if Op.commutative op && sb < sa then (sb, sa) else (sa, sb) in
        Printf.sprintf "%s(%s,%s)" (Op.binop_name op) sa sb
      | _ -> "?"
  in
  let shape_of_instr i =
    match i with
    | Instr.Const { value; _ } -> Some (Value.to_string value)
    | Instr.Unop { op; src; _ } ->
      Some (Printf.sprintf "%s(%s)" (Op.unop_name op) (operand shape_depth src))
    | Instr.Binop { op; a; b; _ } ->
      let sa = operand shape_depth a and sb = operand shape_depth b in
      let sa, sb = if Op.commutative op && sb < sa then (sb, sa) else (sa, sb) in
      Some (Printf.sprintf "%s(%s,%s)" (Op.binop_name op) sa sb)
    | _ -> None
  in
  (* Per-shape, per-block evaluation counts over the reachable blocks. *)
  let counts : (string, int array) Hashtbl.t = Hashtbl.create 32 in
  let nblocks = Cfg.num_blocks cfg in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then
        List.iter
          (fun i ->
            match shape_of_instr i with
            | Some s when not (String.contains s '?') ->
              let arr =
                match Hashtbl.find_opt counts s with
                | Some a -> a
                | None ->
                  let a = Array.make nblocks 0 in
                  Hashtbl.add counts s a;
                  a
              in
              arr.(id) <- arr.(id) + 1
            | _ -> ())
          b.Block.instrs)
    cfg;
  (* Longest acyclic path: drop retreating edges (RPO does not grow along
     them), leaving a DAG that reverse postorder topologically sorts. *)
  let rpo = Order.reverse_postorder order in
  let preds = Cfg.preds cfg in
  let dag_preds j =
    List.filter
      (fun i ->
        Order.is_reachable order i
        && Order.rpo_number order i < Order.rpo_number order j)
      preds.(j)
  in
  let metric arr =
    let best = Array.make nblocks 0 in
    let result = ref 0 in
    Array.iter
      (fun j ->
        let inherit_ =
          List.fold_left (fun acc i -> max acc best.(i)) 0 (dag_preds j)
        in
        best.(j) <- arr.(j) + inherit_;
        result := max !result best.(j))
      rpo;
    !result
  in
  Hashtbl.fold (fun s arr acc -> (s, metric arr) :: acc) counts []

(* ------------------------------------------------------------------ *)
(* Core measurement of one routine.                                     *)

type core = {
  c_sites : site list;
  c_deletable : (int * int, unit) Hashtbl.t;
      (** (block, index) of sites one LCM round would delete *)
  c_pressure : Pressure.t;
  c_shapes : (string * int) list;
  c_spec : int;
}

let core_of (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let order = Order.compute cfg in
  let fl = Expr_flow.build r in
  let uni = fl.Expr_flow.uni in
  let avail = Expr_flow.availability fl in
  let pav = Expr_flow.partial_availability fl in
  let vn = Valnum.compute r in
  let init = Initialized.compute r in
  let must = must_use r in
  let del = Expr_flow.lcm_delete fl in
  let deletable = Hashtbl.create 16 in
  let width = max 1 r.Routine.next_reg in
  let sites = ref [] in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        (* Walk the block against the availability sets at the exact
           program point, applying each instruction's comp/kill. *)
        let cur_av = Bitset.copy avail.Dataflow.ins.(id) in
        let cur_pav = Bitset.copy pav.Dataflow.ins.(id) in
        let cur_init = Bitset.copy (Initialized.on_entry init id) in
        (* The LCM deletion sweep covers evaluations before the first
           kill of their expression in a DELETE block. *)
        let killed = Bitset.create (max 1 fl.Expr_flow.width) in
        List.iteri
          (fun idx i ->
            (match (Expr_universe.key_of i, Instr.def i) with
            | Some _, Some dst ->
              (match Expr_universe.expr_of_name uni dst with
              | Some e
                when Bitset.mem del.(id) e.Expr_universe.index
                     && not (Bitset.mem killed e.Expr_universe.index) ->
                Hashtbl.replace deletable (id, idx) ()
              | _ -> ());
              let cls, value_regs =
                let named =
                  match Expr_universe.expr_of_name uni dst with
                  | Some e when Bitset.mem cur_av e.Expr_universe.index ->
                    Some Full
                  | Some e when Bitset.mem cur_pav e.Expr_universe.index ->
                    Some Partial
                  | _ -> None
                in
                match named with
                | Some c -> (c, [])
                | None ->
                  let holders =
                    List.filter
                      (fun s -> s <> dst && s < width && Bitset.mem cur_init s)
                      (Valnum.congruent_holders vn i)
                  in
                  if holders <> [] then (Value, holders) else (Clean, [])
              in
              sites :=
                {
                  block = id;
                  index = idx;
                  dst;
                  text = Pp.instr_to_string i;
                  cls;
                  value_regs;
                  speculative = speculative_at must b ~dst ~idx;
                }
                :: !sites
            | _ -> ());
            (* Transfer: the evaluation lands, then the kills. *)
            (match (Expr_universe.key_of i, Instr.def i) with
            | Some _, Some dst -> (
              match Expr_universe.expr_of_name uni dst with
              | Some e ->
                Bitset.add cur_av e.Expr_universe.index;
                Bitset.add cur_pav e.Expr_universe.index
              | None -> ())
            | _ -> ());
            let reg_kills, mem_kills = Expr_universe.kills_of_instr uni i in
            List.iter
              (fun k ->
                Bitset.remove cur_av k;
                Bitset.remove cur_pav k;
                Bitset.add killed k)
              reg_kills;
            List.iter
              (fun k ->
                Bitset.remove cur_av k;
                Bitset.remove cur_pav k;
                Bitset.add killed k)
              mem_kills;
            match Instr.def i with
            | Some d when d >= 0 && d < width -> Bitset.add cur_init d
            | _ -> ())
          b.Block.instrs
      end)
    cfg;
  let sites =
    List.sort
      (fun (a : site) (b : site) ->
        compare (a.block, a.index) (b.block, b.index))
      !sites
  in
  {
    c_sites = sites;
    c_deletable = deletable;
    c_pressure = Pressure.compute r;
    c_shapes = shapes_of r order;
    c_spec = List.length (List.filter (fun s -> s.speculative) sites);
  }

(* ------------------------------------------------------------------ *)
(* Findings                                                             *)

let site_finding rule (s : site) message =
  { rule; block = Some s.block; index = Some s.index; message }

let run ?(expect_pre = false) ?baseline (r : Routine.t) =
  let c = core_of r in
  let base = Option.map core_of baseline in
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* A001/A002: redundancy residue — only meaningful after a PRE level. *)
  if expect_pre then
    List.iter
      (fun s ->
        match s.cls with
        | Full ->
          add
            (site_finding "A001" s
               (Printf.sprintf
                  "%s survives although the expression is available on every \
                   path to this point"
                  s.text))
        | Partial ->
          (* Partial availability alone over-approximates what code
             motion can remove (insertion must also be safe); only flag
             what one more LCM round would actually delete. *)
          if Hashtbl.mem c.c_deletable (s.block, s.index) then
            add
              (site_finding "A002" s
                 (Printf.sprintf
                    "%s survives although it is partially redundant and a \
                     safe lazy placement would delete it"
                    s.text))
        | Value | Clean -> ())
      c.c_sites;
  (* A003: speculative evaluations introduced (vs the baseline). *)
  (match base with
  | Some b when c.c_spec > b.c_spec ->
    let first =
      List.find_opt (fun s -> s.speculative) c.c_sites
    in
    let block = Option.map (fun (s : site) -> s.block) first in
    let index = Option.map (fun (s : site) -> s.index) first in
    add
      {
        rule = "A003";
        block;
        index;
        message =
          Printf.sprintf
            "code motion left %d speculative evaluation(s) whose result is \
             not needed on every path (baseline had %d) — an inserted \
             computation is not down-safe"
            c.c_spec b.c_spec;
      }
  | _ -> ());
  (* A004: a path's evaluation count of some shape grew. *)
  (match base with
  | Some b ->
    List.iter
      (fun (shape, n) ->
        let before =
          match List.assoc_opt shape b.c_shapes with Some m -> m | None -> 0
        in
        if n > before then
          add
            {
              rule = "A004";
              block = None;
              index = None;
              message =
                Printf.sprintf
                  "a path now evaluates %s %d time(s), up from %d — code \
                   motion lengthened an execution path"
                  shape n before;
            })
      c.c_shapes
  | None -> ());
  (* A005: peak pressure grew. *)
  (match base with
  | Some b
    when Pressure.max_pressure c.c_pressure
         > Pressure.max_pressure b.c_pressure ->
    add
      {
        rule = "A005";
        block = None;
        index = None;
        message =
          Printf.sprintf
            "peak register pressure rose from %d to %d simultaneously live \
             registers"
            (Pressure.max_pressure b.c_pressure)
            (Pressure.max_pressure c.c_pressure);
      }
  | _ -> ());
  (* A006: long-lived expression temporaries. *)
  begin
    let live = Liveness.compute r in
    let order = Order.compute r.Routine.cfg in
    let width = Liveness.nregs live in
    let span = Array.make (max 1 width) 0 in
    Cfg.iter_blocks
      (fun b ->
        if Order.is_reachable order b.Block.id then
          Bitset.iter
            (fun reg -> span.(reg) <- span.(reg) + 1)
            (Liveness.live_in live b.Block.id))
      r.Routine.cfg;
    let warned = Hashtbl.create 7 in
    List.iter
      (fun s ->
        if
          s.dst < Array.length span
          && span.(s.dst) >= lifetime_threshold
          && not (Hashtbl.mem warned s.dst)
        then begin
          Hashtbl.add warned s.dst ();
          add
            (site_finding "A006" s
               (Printf.sprintf
                  "%s stays live across %d blocks — a long expression \
                   lifetime PRE placement could shorten"
                  s.text span.(s.dst)))
        end)
      c.c_sites
  end;
  (* A007: value-redundant evaluations. *)
  List.iter
    (fun s ->
      match (s.cls, s.value_regs) with
      | Value, holder :: _ ->
        add
          (site_finding "A007" s
             (Printf.sprintf
                "%s recomputes a value r%d already holds on every path to \
                 this point"
                s.text holder))
      | _ -> ())
    c.c_sites;
  {
    findings = List.rev !findings;
    sites = c.c_sites;
    block_pressure = Pressure.per_block c.c_pressure;
    max_pressure = Pressure.max_pressure c.c_pressure;
    baseline_max_pressure =
      Option.map (fun b -> Pressure.max_pressure b.c_pressure) base;
    speculative_count = c.c_spec;
    baseline_speculative_count = Option.map (fun b -> b.c_spec) base;
  }

let residual report =
  List.length
    (List.filter (fun s -> s.cls = Full || s.cls = Partial) report.sites)
