(** Register-pressure estimation: maximum simultaneously live registers.

    PRE trades evaluations for live ranges — every hoisted expression
    keeps its canonical name live from the insertion point to the last
    use. Lazy placement bounds that cost but does not eliminate it, and
    the speculative/lifetime-aware variants in the literature (lospre)
    exist precisely because the trade can go wrong. This estimator is the
    auditor's measurement: per block, the peak of [|live|] over every
    program point (block entry, between instructions, before the
    terminator), computed by a backward walk from [Liveness.live_out]. *)

open Epre_ir

type t

val compute : Routine.t -> t

(** Peak simultaneous live registers inside block [id]; [0] for removed
    or unreachable blocks. *)
val block_pressure : t -> int -> int

(** [(block id, peak)] for every reachable block, ascending by id. *)
val per_block : t -> (int * int) list

(** Routine-wide maximum over reachable blocks. *)
val max_pressure : t -> int
