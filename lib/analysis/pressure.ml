(** Register-pressure estimation. See the interface. *)

open Epre_util
open Epre_ir

type t = { blocks : (int * int) list; max : int }

let compute (r : Routine.t) =
  let live = Liveness.compute r in
  let order = Order.compute r.Routine.cfg in
  let acc = ref [] in
  let max_p = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        let set = Bitset.copy (Liveness.live_out live id) in
        List.iter (Bitset.add set) (Instr.term_uses b.Block.term);
        let peak = ref (Bitset.count set) in
        List.iter
          (fun i ->
            (match Instr.def i with
            | Some d -> Bitset.remove set d
            | None -> ());
            (* A phi's arguments live at the predecessors' ends, not
               here — the SSA liveness convention. *)
            (match i with
            | Instr.Phi _ -> ()
            | _ -> List.iter (Bitset.add set) (Instr.uses i));
            peak := max !peak (Bitset.count set))
          (List.rev b.Block.instrs);
        acc := (id, !peak) :: !acc;
        max_p := max !max_p !peak
      end)
    r.Routine.cfg;
  { blocks = List.sort compare !acc; max = !max_p }

let block_pressure t id =
  match List.assoc_opt id t.blocks with Some p -> p | None -> 0

let per_block t = t.blocks

let max_pressure t = t.max
