(** Definite assignment as a forward intersection problem. See the
    interface. *)

open Epre_util
open Epre_ir

type t = { res : Dataflow.result; order : Order.t; full : Bitset.t }

let compute (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let n = Cfg.num_blocks cfg in
  let gens =
    Array.init n (fun id ->
        let s = Bitset.create width in
        (match Cfg.find_block cfg id with
        | None -> ()
        | Some b ->
          List.iter
            (fun i ->
              match Instr.def i with
              | Some d when d >= 0 && d < width -> Bitset.add s d
              | _ -> ())
            b.Block.instrs);
        s)
  in
  let empty = Bitset.create width in
  let boundary = Bitset.create width in
  List.iter
    (fun p -> if p >= 0 && p < width then Bitset.add boundary p)
    r.Routine.params;
  let sys =
    { Dataflow.width; gen = (fun id -> gens.(id)); kill = (fun _ -> empty);
      boundary; meet = Dataflow.Inter }
  in
  { res = Dataflow.solve_forward cfg sys;
    order = Order.compute cfg;
    full = Bitset.full width }

(* The solver leaves unreachable blocks empty; report them as full so the
   verifier never flags dead code for uninitialized reads (it has its own
   unreachability rule). *)
let on_entry t id =
  if Order.is_reachable t.order id then t.res.Dataflow.ins.(id) else t.full

let on_exit t id =
  if Order.is_reachable t.order id then t.res.Dataflow.outs.(id) else t.full
