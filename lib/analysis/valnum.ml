(** Conservative non-SSA value numbering. See the interface. *)

open Epre_ir
module Union_find = Epre_util.Union_find

type vkey =
  | VConst of Value.t
  | VUnop of Op.unop * int
  | VBinop of Op.binop * int * int

type t = {
  uf : Union_find.t;
  stable : bool array;
  width : int;
  keys : (vkey, int) Hashtbl.t;  (** final-round value key -> class rep *)
}

let pure_def = function
  | Instr.Const _ | Instr.Copy _ | Instr.Unop _ | Instr.Binop _ -> true
  | Instr.Load _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _ | Instr.Phi _
    ->
    false

let compute (r : Routine.t) =
  let width = max 1 r.Routine.next_reg in
  let def_count = Array.make width 0 in
  let def_instr = Array.make width None in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match Instr.def i with
          | Some d when d >= 0 && d < width ->
            def_count.(d) <- def_count.(d) + 1;
            def_instr.(d) <- Some i
          | _ -> ())
        b.Block.instrs)
    r.Routine.cfg;
  let stable = Array.make width false in
  (* Parameters are stable leaves — unless something also writes them. *)
  List.iter
    (fun p -> if p >= 0 && p < width && def_count.(p) = 0 then stable.(p) <- true)
    r.Routine.params;
  let operand_ok u = u >= 0 && u < width && stable.(u) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun d def ->
        if (not stable.(d)) && def_count.(d) = 1 then
          match def with
          | Some i when pure_def i && List.for_all operand_ok (Instr.uses i) ->
            stable.(d) <- true;
            changed := true
          | _ -> ())
      def_instr
  done;
  (* Optimistic congruence over the stable registers: hash on (operator,
     operand class) and merge equal keys until the partition is stable.
     Classes only ever merge, so this terminates. *)
  let uf = Union_find.create width in
  let keys = Hashtbl.create 64 in
  let key_of_def d =
    match def_instr.(d) with
    | Some (Instr.Const { value; _ }) -> Some (VConst value)
    | Some (Instr.Unop { op; src; _ }) -> Some (VUnop (op, Union_find.find uf src))
    | Some (Instr.Binop { op; a; b; _ }) ->
      let a = Union_find.find uf a and b = Union_find.find uf b in
      let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
      Some (VBinop (op, a, b))
    | _ -> None
  in
  let rounds = ref true in
  while !rounds do
    rounds := false;
    Hashtbl.reset keys;
    for d = 0 to width - 1 do
      if stable.(d) then
        match def_instr.(d) with
        | Some (Instr.Copy { src; _ }) ->
          if not (Union_find.same uf d src) then begin
            ignore (Union_find.union uf d src);
            rounds := true
          end
        | _ -> (
          match key_of_def d with
          | None -> ()
          | Some key -> (
            match Hashtbl.find_opt keys key with
            | Some other ->
              if not (Union_find.same uf d other) then begin
                ignore (Union_find.union uf d other);
                rounds := true
              end
            | None -> Hashtbl.add keys key (Union_find.find uf d)))
    done
  done;
  (* One final pass so [keys] maps every value key to its settled rep. *)
  Hashtbl.reset keys;
  for d = 0 to width - 1 do
    if stable.(d) then
      match key_of_def d with
      | Some key when not (Hashtbl.mem keys key) ->
        Hashtbl.add keys key (Union_find.find uf d)
      | _ -> ()
  done;
  { uf; stable; width; keys }

let stable t reg = reg >= 0 && reg < t.width && t.stable.(reg)

let class_of t reg = if stable t reg then Some (Union_find.find t.uf reg) else None

let same_class t a b = stable t a && stable t b && Union_find.same t.uf a b

let congruent_holders t i =
  let key =
    match i with
    | Instr.Unop { op; src; _ } when stable t src ->
      Some (VUnop (op, Union_find.find t.uf src))
    | Instr.Binop { op; a; b; _ } when stable t a && stable t b ->
      let a = Union_find.find t.uf a and b = Union_find.find t.uf b in
      let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
      Some (VBinop (op, a, b))
    | _ -> None
  in
  match key with
  | None -> []
  | Some key -> (
    match Hashtbl.find_opt t.keys key with
    | None -> []
    | Some rep ->
      let out = ref [] in
      for d = t.width - 1 downto 0 do
        if t.stable.(d) && Union_find.same t.uf d rep then out := d :: !out
      done;
      !out)
