(** The shared expression-level data-flow client.

    [Pre], [Pre_classic], [Cse_avail] and the redundancy auditor all solve
    the same problems over the same universe: build [Expr_universe], take
    the ANTLOC/COMP/KILL local sets, and feed a gen/kill system to the
    generic [Dataflow] solver. This module is that construction, written
    once. The four classic systems:

    - {b availability} (forward, ∩): evaluated on {e every} path from the
      entry with no later kill — full redundancy;
    - {b anticipability} (backward, ∩): evaluated on {e every} path to the
      exit before any kill — down-safety of a placement;
    - {b partial availability} (forward, ∪): evaluated on {e some} path —
      the "partial" in partial redundancy;
    - {b partial anticipability} (backward, ∪): up-safety's counterpart,
      evaluated on some downstream path before a kill. *)

open Epre_util
open Epre_ir

type t = {
  uni : Expr_universe.t;
  local : Expr_universe.local;  (** load bits stripped if [include_loads] was false *)
  width : int;  (** [Expr_universe.size uni] *)
  cfg : Cfg.t;
}

(** Build the universe and local sets for a routine. With
    [~include_loads:false], load expressions are erased from ANTLOC/COMP
    (they stay in KILL vacuously) so they neither move nor count. *)
val build : ?include_loads:bool -> Routine.t -> t

(** Forward ∩ over COMP/KILL; [ins]/[outs] are AVIN/AVOUT. *)
val availability : t -> Dataflow.result

(** Backward ∩ over ANTLOC/KILL; [ins]/[outs] are ANTIN/ANTOUT. *)
val anticipability : t -> Dataflow.result

(** Forward ∪ over COMP/KILL; PAVIN/PAVOUT. *)
val partial_availability : t -> Dataflow.result

(** Backward ∪ over ANTLOC/KILL; PANTIN/PANTOUT. *)
val partial_anticipability : t -> Dataflow.result

(** The lazy-code-motion placement (Drechsler–Stadel earliest/later
    form): where insertions would go and which evaluations they cover.
    [Pre] drives its transformation from this; the redundancy auditor
    reads the same equations to judge what a safe placement {e could}
    remove, so engine and auditor can never disagree. *)
type placement = {
  laterin : Bitset.t array;
  later : int -> int -> Bitset.t;
      (** LATER over the real edge (i, j), from the settled [laterin];
        [INSERT(i,j) = LATER(i,j) ∧ ¬LATERIN(j)] *)
  later_virtual : Bitset.t;
      (** LATER over the virtual entry edge — [ANTIN(entry)], the legal
        insertion point for expressions anticipated at routine entry *)
}

val lcm_placement : t -> placement

(** [DELETE(b) = ANTLOC(b) ∧ ¬LATERIN(b)] per block: the upward-exposed
    evaluations a safe lazy placement covers — exactly what one [Pre]
    round would delete. *)
val lcm_delete : t -> Bitset.t array
