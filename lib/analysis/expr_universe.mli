(** The expression universe shared by PRE and available-expression CSE.

    Under the Section 2.2 naming discipline an expression is identified by
    its canonical destination register; this module collects a routine's
    universe and the block-local ANTLOC/COMP/KILL sets every bit-vector
    pass needs. Registers violating the discipline are conservatively
    excluded — run [Naming.run] first to make the universe total. *)

open Epre_util
open Epre_ir

type key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg
      (** commutative operands in canonical order *)
  | KLoad of Instr.reg

(** The key an instruction evaluates, [None] for non-expressions. *)
val key_of : Instr.t -> key option

val key_operands : key -> Instr.reg list

val is_load : key -> bool

type expr = {
  index : int;  (** dense index into the bit vectors *)
  name : Instr.reg;  (** the canonical destination *)
  key : key;
}

type t

val size : t -> int

val exprs : t -> expr array

val expr_of_name : t -> Instr.reg -> expr option

val build : Routine.t -> t

type local = {
  antloc : Bitset.t array;
      (** evaluated in the block before any kill of the expression *)
  comp : Bitset.t array;  (** evaluated with no kill afterwards *)
  kill : Bitset.t array;
      (** operand redefined; loads also killed by stores/calls *)
}

(** (register kills, memory kills) an instruction causes. *)
val kills_of_instr : t -> Instr.t -> int list * int list

val compute_local : t -> Routine.t -> local
