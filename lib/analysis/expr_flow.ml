(** The shared expression-level data-flow client. See the interface. *)

open Epre_util
open Epre_ir

type t = {
  uni : Expr_universe.t;
  local : Expr_universe.local;
  width : int;
  cfg : Cfg.t;
}

let build ?(include_loads = true) (r : Routine.t) =
  let uni = Expr_universe.build r in
  let width = Expr_universe.size uni in
  let local = Expr_universe.compute_local uni r in
  if not include_loads then
    Array.iter
      (fun (e : Expr_universe.expr) ->
        if Expr_universe.is_load e.Expr_universe.key then begin
          let i = e.Expr_universe.index in
          Array.iter (fun s -> Bitset.remove s i) local.Expr_universe.antloc;
          Array.iter (fun s -> Bitset.remove s i) local.Expr_universe.comp
        end)
      (Expr_universe.exprs uni);
  { uni; local; width; cfg = r.Routine.cfg }

let system t ~gen ~meet =
  {
    Dataflow.width = t.width;
    gen = (fun id -> gen.(id));
    kill = (fun id -> t.local.Expr_universe.kill.(id));
    boundary = Bitset.create t.width;
    meet;
  }

let availability t =
  Dataflow.solve_forward t.cfg
    (system t ~gen:t.local.Expr_universe.comp ~meet:Dataflow.Inter)

let anticipability t =
  Dataflow.solve_backward t.cfg
    (system t ~gen:t.local.Expr_universe.antloc ~meet:Dataflow.Inter)

let partial_availability t =
  Dataflow.solve_forward t.cfg
    (system t ~gen:t.local.Expr_universe.comp ~meet:Dataflow.Union)

let partial_anticipability t =
  Dataflow.solve_backward t.cfg
    (system t ~gen:t.local.Expr_universe.antloc ~meet:Dataflow.Union)

type placement = {
  laterin : Bitset.t array;
  later : int -> int -> Bitset.t;
  later_virtual : Bitset.t;
}

let lcm_placement t =
  let cfg = t.cfg in
  let width = t.width in
  let antloc = t.local.Expr_universe.antloc in
  let kill = t.local.Expr_universe.kill in
  let avail = availability t in
  let ant = anticipability t in
  let antin = ant.Dataflow.ins and antout = ant.Dataflow.outs in
  let avout = avail.Dataflow.outs in
  (* EARLIEST over a real edge (i, j). *)
  let earliest i j =
    let s = Bitset.copy antin.(j) in
    Bitset.diff_into ~dst:s avout.(i);
    let guard = Bitset.copy kill.(i) in
    let not_antout = Bitset.copy antout.(i) in
    (* kill(i) ∨ ¬antout(i): complement via full-universe diff *)
    let all = Bitset.full width in
    Bitset.diff_into ~dst:all not_antout;
    Bitset.union_into ~dst:guard all;
    Bitset.inter_into ~dst:s guard;
    s
  in
  let order = Order.compute cfg in
  let rpo = Order.reverse_postorder order in
  let preds = Cfg.preds cfg in
  let entry = Cfg.entry cfg in
  let nblocks = Cfg.num_blocks cfg in
  let laterin = Array.init nblocks (fun _ -> Bitset.full width) in
  (* LATER over a real edge, given current laterin. *)
  let later i j =
    let s = earliest i j in
    let flow = Bitset.copy laterin.(i) in
    Bitset.diff_into ~dst:flow antloc.(i);
    Bitset.union_into ~dst:s flow;
    s
  in
  (* Virtual entry edge: LATER(V, entry) = ANTIN(entry). *)
  let later_virtual = Bitset.copy antin.(entry) in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun j ->
        let contributions =
          (if j = entry then [ later_virtual ] else [])
          @ List.filter_map
              (fun i ->
                if Order.is_reachable order i then Some (later i j) else None)
              preds.(j)
        in
        let new_in =
          match contributions with
          | [] -> Bitset.create width
          | first :: rest ->
            let acc = Bitset.copy first in
            List.iter (fun s -> Bitset.inter_into ~dst:acc s) rest;
            acc
        in
        if not (Bitset.equal new_in laterin.(j)) then begin
          Bitset.assign ~dst:laterin.(j) new_in;
          changed := true
        end)
      rpo
  done;
  { laterin; later; later_virtual }

let lcm_delete t =
  let p = lcm_placement t in
  Array.mapi
    (fun id li ->
      let d = Bitset.copy t.local.Expr_universe.antloc.(id) in
      Bitset.diff_into ~dst:d li;
      d)
    p.laterin
