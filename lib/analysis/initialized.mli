(** Definite-assignment analysis: which registers are written on {e every}
    path from the entry to a program point.

    The SSA checker proves def-before-use through dominance, but only for
    code in SSA form; outside SSA a register may legitimately have several
    definitions, one per path, and a use is sound as long as each path
    carries one. This is the classic forward "definitely assigned"
    bit-vector problem (intersection meet, parameters at the boundary),
    solved with the same [Dataflow] engine as the availability systems.
    The verifier's def-before-use rule walks blocks against [on_entry]. *)

open Epre_util
open Epre_ir

type t

(** Requires a structurally valid CFG (no dangling edges, registers in
    range); the verifier runs its structural rules first. *)
val compute : Routine.t -> t

(** Registers definitely assigned on entry to block [id]. Unreachable
    blocks report the full set (every fact holds vacuously). *)
val on_entry : t -> int -> Bitset.t

(** Registers definitely assigned when block [id] exits. *)
val on_exit : t -> int -> Bitset.t
