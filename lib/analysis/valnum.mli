(** Conservative value numbering over registers, without SSA.

    GVN proper (the partition refinement of [Epre_gvn]) needs SSA; the
    auditor runs after SSA is torn down. This is the sound non-SSA
    fragment: call a register {e stable} when it has exactly one
    definition, that definition is a pure expression (constant, copy,
    unary or binary operator — no loads, calls or phis), and every
    operand is a parameter or itself stable. A stable register's value is
    a fixed function of the invocation's parameters, so two congruent
    stable registers hold equal values whenever both have been assigned —
    which makes "another register already holds this value" checkable
    with plain definite assignment. Congruence is the usual optimistic
    hashing on (operator, operand classes) to a fixed point, with copies
    merged into their source's class. *)

open Epre_ir

type t

val compute : Routine.t -> t

(** Single pure acyclic definition; parameters are stable leaves. *)
val stable : t -> Instr.reg -> bool

(** Congruence-class representative of a stable register. *)
val class_of : t -> Instr.reg -> Instr.reg option

val same_class : t -> Instr.reg -> Instr.reg -> bool

(** Stable registers congruent to the value [i] computes (the instruction
    need not define a stable register itself — only its operands must be
    stable). The instruction's own destination is included when it
    qualifies; [[]] when the value cannot be placed in a class. Restricted
    to [Unop]/[Binop] evaluations — constant and copy redundancy belongs
    to constant propagation and coalescing, not the auditor. *)
val congruent_holders : t -> Instr.t -> Instr.reg list
