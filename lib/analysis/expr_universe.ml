(** The expression universe shared by PRE and available-expression CSE.

    Under the Section 2.2 naming discipline each expression has exactly one
    name, so an expression is identified by its canonical destination
    register. This module collects the universe for a routine and the
    block-local properties every bit-vector pass needs:

    - [ANTLOC] (locally anticipable): evaluated in the block before any
      operand is (re)defined;
    - [COMP] (locally available): evaluated, and no operand is redefined
      afterwards;
    - [KILL] (transparency's complement): some operand is redefined, or the
      expression is a load and the block contains a store or a call.

    Registers violating the discipline — several keys per name, or a name
    also targeted by a copy/call/phi — are conservatively excluded; running
    [Naming.run] first makes the universe total. *)

open Epre_util
open Epre_ir

type key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg
  | KLoad of Instr.reg

let key_of = function
  | Instr.Const { value; _ } -> Some (KConst value)
  | Instr.Unop { op; src; _ } -> Some (KUnop (op, src))
  | Instr.Binop { op; a; b; _ } ->
    (* Canonical commutative order, consistent with [Naming.key_of]. *)
    let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
    Some (KBinop (op, a, b))
  | Instr.Load { addr; _ } -> Some (KLoad addr)
  | Instr.Copy _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _ | Instr.Phi _ -> None

let key_operands = function
  | KConst _ -> []
  | KUnop (_, a) | KLoad a -> [ a ]
  | KBinop (_, a, b) -> if a = b then [ a ] else [ a; b ]

let is_load = function KLoad _ -> true | KConst _ | KUnop _ | KBinop _ -> false

type expr = {
  index : int;  (** dense index into the bit vectors *)
  name : Instr.reg;  (** the canonical destination *)
  key : key;
}

type t = {
  exprs : expr array;
  of_name : expr option array;  (** indexed by register *)
  (* killed_by.(reg) = indices of expressions with reg as an operand *)
  killed_by : int list array;
  loads : int list;  (** indices of load expressions *)
}

let size t = Array.length t.exprs

let exprs t = t.exprs

let expr_of_name t reg = t.of_name.(reg)

let build (r : Routine.t) =
  let width = max 1 r.Routine.next_reg in
  (* keys_of.(reg): every key evaluated into reg, [None] for non-expression
     defs. *)
  let keys_of : (Instr.reg, key option list) Hashtbl.t = Hashtbl.create 64 in
  let note reg k =
    let prev = Option.value ~default:[] (Hashtbl.find_opt keys_of reg) in
    Hashtbl.replace keys_of reg (k :: prev)
  in
  List.iter (fun p -> note p None) r.Routine.params;
  Cfg.iter_blocks
    (fun b ->
      List.iter (fun i -> Option.iter (fun d -> note d (key_of i)) (Instr.def i)) b.Block.instrs)
    r.Routine.cfg;
  let of_name = Array.make width None in
  let exprs = ref [] in
  let n = ref 0 in
  Hashtbl.iter
    (fun name keys ->
      match keys with
      | Some key :: rest when List.for_all (fun k -> k = Some key) rest ->
        let e = { index = !n; name; key } in
        incr n;
        of_name.(name) <- Some e;
        exprs := e :: !exprs
      | _ -> ())
    keys_of;
  let exprs = Array.of_list (List.rev !exprs) in
  (* Hashtbl.iter order is unspecified; re-index densely and sort by name so
     the universe is deterministic. *)
  Array.sort (fun a b -> compare a.name b.name) exprs;
  Array.iteri
    (fun i e ->
      let e = { e with index = i } in
      exprs.(i) <- e;
      of_name.(e.name) <- Some e)
    exprs;
  let killed_by = Array.make width [] in
  let loads = ref [] in
  Array.iter
    (fun e ->
      List.iter (fun operand -> killed_by.(operand) <- e.index :: killed_by.(operand)) (key_operands e.key);
      if is_load e.key then loads := e.index :: !loads)
    exprs;
  { exprs; of_name; killed_by; loads = !loads }

(* ------------------------------------------------------------------ *)
(* Block-local properties                                              *)

type local = {
  antloc : Bitset.t array;
  comp : Bitset.t array;
  kill : Bitset.t array;
}

(* Indices killed by an instruction's definition/side effect. *)
let kills_of_instr t i =
  let reg_kills =
    match Instr.def i with
    | Some d -> t.killed_by.(d)
    | None -> []
  in
  let mem_kills =
    match i with
    | Instr.Store _ | Instr.Call _ -> t.loads
    | _ -> []
  in
  (reg_kills, mem_kills)

let compute_local t (r : Routine.t) =
  let nblocks = Cfg.num_blocks r.Routine.cfg in
  let width = Array.length t.exprs in
  let antloc = Array.init nblocks (fun _ -> Bitset.create width) in
  let comp = Array.init nblocks (fun _ -> Bitset.create width) in
  let kill = Array.init nblocks (fun _ -> Bitset.create width) in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      let killed_so_far = Bitset.create width in
      List.iter
        (fun i ->
          (* Evaluation first: an instruction that evaluates e and defines
             one of e's operands (impossible under the discipline, but be
             safe) counts the evaluation before the kill. *)
          (match key_of i, Instr.def i with
          | Some _, Some dst -> begin
            match t.of_name.(dst) with
            | Some e ->
              if not (Bitset.mem killed_so_far e.index) then Bitset.add antloc.(id) e.index;
              Bitset.add comp.(id) e.index
            | None -> ()
          end
          | _ -> ());
          let reg_kills, mem_kills = kills_of_instr t i in
          List.iter
            (fun idx ->
              Bitset.add killed_so_far idx;
              Bitset.add kill.(id) idx;
              Bitset.remove comp.(id) idx)
            reg_kills;
          List.iter
            (fun idx ->
              Bitset.add killed_so_far idx;
              Bitset.add kill.(id) idx;
              Bitset.remove comp.(id) idx)
            mem_kills)
        b.Block.instrs)
    r.Routine.cfg;
  { antloc; comp; kill }
