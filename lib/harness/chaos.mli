(** Seeded fault injection — adversarial passes that corrupt IR on purpose.

    Each kind models one failure class a buggy optimizer pass can exhibit,
    chosen so that together they exercise every detection tier of the
    harness:

    - [Drop_instr] deletes a live instruction — IR stays structurally
      well-formed; only translation validation ([Exec]) catches it;
    - [Swap_operands] swaps the operands of a non-commutative binop —
      again structurally valid, caught by translation validation;
    - [Break_phi] plants a phi whose arguments disagree with the CFG
      predecessors — caught by [Routine.validate] ([Ir] tier);
    - [Detach_edge] retargets a terminator at a missing block — caught by
      [Routine.validate] ([Ir] tier).

    Corruption sites are chosen by a deterministic PRNG seeded from
    [(seed, routine name)], so a given seed reproduces the same fault on
    the same input — chaos runs are replayable and bisectable. A kind with
    no applicable site in a routine is a no-op there. *)

open Epre_ir

type kind = Drop_instr | Swap_operands | Break_phi | Detach_edge

val all_kinds : kind list

(** Registry name, e.g. ["chaos:drop-instr"]. *)
val name : kind -> string

val description : kind -> string

val of_name : string -> kind option

(** Seed used by the registry entries and the CLI; settable via
    [--chaos-seed]. *)
val default_seed : int ref

(** Corrupt one site of the routine, deterministically for a given
    [(seed, routine name)] pair. Defaults to [!default_seed]. *)
val run : ?seed:int -> kind -> Routine.t -> unit

(** The four kinds as harness passes (seed read at call time). *)
val named_passes : unit -> Harness.named_pass list

(** {1 Service-layer faults}

    Where {!kind} corrupts IR to exercise the harness's validation tiers,
    a [service_fault] attacks the compile service's infrastructure to
    exercise its fault-tolerance layer ([Epre_service]): retries absorb
    [Worker_raise], per-job deadlines absorb [Slow_job], poison recovery
    absorbs [Cache_corrupt], and lock waiting absorbs [Cache_lock_hold].

    Whether a fault fires for a given job is a pure function of
    [(seed, fault, key)] — chaos traffic is replayable, and a serial and a
    parallel run over the same jobs inject exactly the same faults. *)

type service_fault =
  | Worker_raise
  | Slow_job
  | Cache_corrupt
  | Cache_lock_hold
  | Kill_self  (** abort serve at a journal-consistent batch boundary *)
  | Pass_poison  (** one pass fails deterministically on every job *)

(** The transient exception [Worker_raise] plants inside a job worker —
    the canonical retryable failure ([Epre_service]'s classifier treats it
    like infrastructure flakiness). *)
exception Injected of string

(** The exception [Pass_poison] plants inside the poisoned pass. Unlike
    {!Injected} it is classified as {e permanent}: a deterministic pass
    failure recurs on every attempt, so burning the retry budget on it is
    pointless — the degradation ladder and circuit breakers absorb it
    instead. Carries the poisoned pass name. *)
exception Pass_poisoned of string

val all_service_faults : service_fault list

(** Registry name, e.g. ["chaos:worker-raise"]. *)
val service_name : service_fault -> string

val service_description : service_fault -> string

val service_fault_of_name : string -> service_fault option

(** [fires fault ~key] decides deterministically whether [fault] strikes
    the job identified by [key] (hash of seed, fault and key against a
    per-fault rate). Defaults to [!default_seed]. [Pass_poison] fires for
    every key — a deterministic failure is the point — and which pass it
    poisons comes from {!poison_target}. *)
val fires : ?seed:int -> service_fault -> key:string -> bool

(** [poison_target ~candidates ()] picks the pass [Pass_poison] breaks —
    one deterministic choice per seed from [candidates], [None] when the
    list is empty. The service restricts candidates to passes absent from
    the [-O0] pipeline so the degradation floor always survives. Defaults
    to [!default_seed]. *)
val poison_target : ?seed:int -> candidates:string list -> unit -> string option
