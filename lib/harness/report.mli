(** Structured diagnostics for supervised runs: the [--report=json]
    rendering of harness records, encoded with [Epre_telemetry.Tjson] (one
    encoder for every machine-readable output — reports, metrics JSONL,
    traces, the bench baseline). *)

(** One record: [{"pass": ..., "routine": ..., "outcome": "ok" |
    "rolled-back", "reason": ... (absent when ok), "duration_ms": ...}],
    followed by the record's [meta] pairs verbatim (the fuzzer attaches
    seed / level / repro provenance there). *)
val record_to_json : Harness.record -> string

(** The same record as a [Tjson] value, for embedding in larger documents
    (the fuzz corpus metadata files). *)
val record_to_tjson : Harness.record -> Epre_telemetry.Tjson.t

(** The full report: a JSON array of records, one per line, in execution
    order. *)
val to_json : Harness.record list -> string

(** Human-oriented one-liner, for non-JSON reporting. *)
val record_to_line : Harness.record -> string
