(** Pass-sequence bisection. See the interface for the oracle. *)

open Epre_ir

type failure = {
  index : int;
  pass : string;
  routine : string option;
  reason : Harness.reason;
  delta : (string * string) list;
}

(* Line diff by longest common subsequence; routines are small enough that
   the quadratic table is irrelevant. *)
let diff_lines before after =
  let a = Array.of_list (String.split_on_char '\n' before) in
  let b = Array.of_list (String.split_on_char '\n' after) in
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let buf = Buffer.create 256 in
  let emit tag line = Buffer.add_string buf (tag ^ line ^ "\n") in
  let rec walk i j =
    if i < n && j < m && a.(i) = b.(j) then (
      emit "  " a.(i);
      walk (i + 1) (j + 1))
    else if i < n && (j = m || lcs.(i + 1).(j) >= lcs.(i).(j + 1)) then (
      emit "- " a.(i);
      walk (i + 1) j)
    else if j < m then (
      emit "+ " b.(j);
      walk i (j + 1))
  in
  walk 0 0;
  Buffer.contents buf

let print_routine = Pp.routine_to_string

let check_ir (r : Routine.t) =
  match
    Routine.validate r;
    if r.Routine.in_ssa then Epre_ssa.Ssa_check.check r
  with
  | () -> Ok ()
  | exception Routine.Ill_formed m -> Error m
  | exception Epre_ssa.Ssa_check.Not_ssa m -> Error m

let run ?(fuel = Epre_interp.Interp.default_fuel) ~passes (prog : Program.t) =
  let p = Program.copy prog in
  let obs0, count = Harness.observe_counted ~fuel p in
  let check_fuel =
    match count with Some n -> min fuel ((4 * n) + 10_000) | None -> fuel
  in
  let current_obs = ref obs0 in
  let result = ref None in
  let fail index (np : Harness.named_pass) routine reason ~before_texts =
    let delta =
      List.filter_map
        (fun (r : Routine.t) ->
          let before = List.assoc r.Routine.name before_texts in
          let after = print_routine r in
          if before = after then None
          else Some (r.Routine.name, diff_lines before after))
        (Program.routines p)
    in
    result := Some { index; pass = np.Harness.pass_name; routine; reason; delta }
  in
  let rec go index = function
    | [] -> ()
    | (np : Harness.named_pass) :: rest ->
      let before_texts =
        List.map
          (fun (r : Routine.t) -> (r.Routine.name, print_routine r))
          (Program.routines p)
      in
      let routine_failure =
        List.find_map
          (fun (r : Routine.t) ->
            match np.Harness.run r with
            | exception e ->
              Some (Some r.Routine.name, Harness.Pass_exception (Printexc.to_string e))
            | () -> begin
              match check_ir r with
              | Ok () -> None
              | Error m -> Some (Some r.Routine.name, Harness.Ir_violation m)
            end)
          (Program.routines p)
      in
      (match routine_failure with
      | Some (routine, reason) -> fail index np routine reason ~before_texts
      | None -> begin
        let after = Harness.observe ~fuel:check_fuel p in
        if Harness.obs_equal !current_obs after then begin
          current_obs := after;
          go (index + 1) rest
        end
        else
          fail index np None
            (Harness.Behaviour_mismatch
               (Printf.sprintf "observable behaviour changed after pass %d" index))
            ~before_texts
      end)
  in
  go 0 passes;
  !result

let pp_failure ppf f =
  Format.fprintf ppf "minimal failing prefix: %d pass%s; culprit: #%d %s%s@."
    (f.index + 1)
    (if f.index = 0 then "" else "es")
    f.index f.pass
    (match f.routine with Some r -> " (routine " ^ r ^ ")" | None -> "");
  Format.fprintf ppf "reason: %s@." (Harness.reason_to_string f.reason);
  List.iter
    (fun (name, diff) ->
      Format.fprintf ppf "@.--- %s before %s@.+++ %s after  %s@.%s" name f.pass
        name f.pass diff)
    f.delta
