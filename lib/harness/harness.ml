(** Supervised pass execution: checkpoint, run, validate, roll back.

    See the interface for the model. Execution is pass-major — for each
    pass, every routine is transformed and validated before the next pass
    starts — so translation validation can interpret the whole program
    (calls cross routines) while only one routine differs from the last
    known-good state at any moment. *)

open Epre_ir

type validation = Off | Ir | Exec

let validation_of_string = function
  | "off" -> Some Off
  | "ir" -> Some Ir
  | "exec" -> Some Exec
  | _ -> None

let validation_to_string = function Off -> "off" | Ir -> "ir" | Exec -> "exec"

type reason =
  | Pass_exception of string
  | Ir_violation of string
  | Behaviour_mismatch of string

let reason_to_string = function
  | Pass_exception m -> "pass raised: " ^ m
  | Ir_violation m -> "ill-formed IR: " ^ m
  | Behaviour_mismatch m -> "behaviour mismatch: " ^ m

type outcome = Passed | Rolled_back of reason

type record = {
  pass : string;
  routine : string;
  outcome : outcome;
  duration_ms : float;
  meta : (string * Epre_telemetry.Tjson.t) list;
}

type config = {
  validation : validation;
  fuel : int;
  keep_going : bool;
  audit : bool;
}

let default_config =
  {
    validation = Ir;
    fuel = Epre_interp.Interp.default_fuel;
    keep_going = true;
    audit = false;
  }

exception Supervision_failed of record

type named_pass = { pass_name : string; run : Routine.t -> unit }

type obs = (Value.t option * Value.t list, string) result

(* Observable behaviour plus the dynamic operation count (for fuel
   adaptation); [Error] carries the reason interpretation failed. *)
let observe_counted ~fuel p =
  match Epre_interp.Interp.run ~fuel p ~entry:"main" ~args:[] with
  | r ->
    ( Ok (r.Epre_interp.Interp.return_value, r.Epre_interp.Interp.trace),
      Some (Epre_interp.Counts.total r.Epre_interp.Interp.counts) )
  | exception Epre_interp.Interp.Runtime_error m -> (Error ("runtime error: " ^ m), None)
  | exception Epre_interp.Interp.Out_of_fuel -> (Error "out of fuel", None)
  | exception Invalid_argument m -> (Error m, None)

let observe ~fuel p = fst (observe_counted ~fuel p)

(* The differential test suite's tolerance: values equal up to
   floating-point reassociation noise. *)
let value_close a b =
  match (a, b) with
  | Value.F x, Value.F y ->
    Float.abs (x -. y) <= 1e-9 *. (Float.abs x +. Float.abs y +. 1.0)
  | a, b -> Value.equal a b

let obs_equal a b =
  match (a, b) with
  | Error a, Error b -> a = b
  | Ok (ra, ta), Ok (rb, tb) ->
    (match (ra, rb) with
    | Some a, Some b -> value_close a b
    | None, None -> true
    | Some _, None | None, Some _ -> false)
    && List.length ta = List.length tb
    && List.for_all2 value_close ta tb
  | Ok _, Error _ | Error _, Ok _ -> false

let describe_obs = function
  | Error m -> m
  | Ok (ret, trace) ->
    Printf.sprintf "return %s, %d emits"
      (match ret with Some v -> Value.to_string v | None -> "-")
      (List.length trace)

(* IR validation through the verifier: every structural and type rule
   plus the pass's registered postcondition lints. The first
   error-severity diagnostic rolls the pass back (its rule id lands in
   the record's meta); warnings are only counted. Per-rule telemetry
   counters are bumped either way. *)
let check_ir ~pass ~program (r : Routine.t) =
  let diags = Epre_verify.Verify.check_post_pass ~pass ~program r in
  Epre_verify.Verify.record_metrics diags;
  match Epre_verify.Verify.errors diags with
  | d :: _ -> Error (Epre_verify.Diag.to_string d, d.Epre_verify.Diag.rule)
  | [] -> Ok (List.length (Epre_verify.Verify.warnings diags))

let rolled_back records =
  List.filter (fun r -> match r.outcome with Rolled_back _ -> true | Passed -> false) records

let supervise ?(dump = fun _ _ -> ()) ?only config ~passes (p : Program.t) =
  (* Post-pass interpretation gets a budget derived from the reference run,
     so a pass that introduces an infinite loop burns seconds, not the full
     [config.fuel]. *)
  let check_fuel = ref config.fuel in
  let current_obs =
    if config.validation = Exec then begin
      let obs, count = observe_counted ~fuel:config.fuel p in
      (match count with
      | Some n -> check_fuel := min config.fuel ((4 * n) + 10_000)
      | None -> ());
      Some obs
    end
    else None
  in
  let current_obs = ref current_obs in
  let records = ref [] in
  (* [only] restricts which routines are transformed; validation still
     sees the whole program [p] (call-graph signatures, translation
     validation). The compile-service pool uses this to supervise one
     routine per worker against a shared read-only context. *)
  let transformed =
    match only with
    | None -> Program.routines p
    | Some names ->
      List.filter
        (fun (r : Routine.t) -> List.mem r.Routine.name names)
        (Program.routines p)
  in
  List.iter
    (fun np ->
      List.iter
        (fun (r : Routine.t) ->
          let snapshot = Routine.copy r in
          Epre_telemetry.Telemetry.Span.with_ ~kind:"pass" ~routine:r
            ~name:np.pass_name
          @@ fun () ->
          let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
          let finish ?(meta = []) outcome =
            let duration_ms = Epre_telemetry.Telemetry.Clock.elapsed_ms ~since:t0 in
            Epre_telemetry.Histogram.observe ~name:("pass." ^ np.pass_name)
              (int_of_float (duration_ms *. 1e6));
            let record =
              { pass = np.pass_name; routine = r.Routine.name; outcome;
                duration_ms; meta }
            in
            records := record :: !records;
            dump np.pass_name r;
            match outcome with
            | Rolled_back reason ->
              Epre_telemetry.Log.warn ~event:"harness.rollback"
                ~fields:
                  [ ("pass", Epre_telemetry.Tjson.Str np.pass_name);
                    ("routine", Epre_telemetry.Tjson.Str r.Routine.name) ]
                (reason_to_string reason);
              if not config.keep_going then begin
                ignore
                  (Epre_telemetry.Recorder.dump
                     ~reason:
                       (Printf.sprintf "supervision-failed: %s/%s"
                          np.pass_name r.Routine.name)
                     ());
                raise (Supervision_failed record)
              end
            | Passed -> ()
          in
          let roll_back ?meta reason =
            Routine.restore r ~from:snapshot;
            finish ?meta (Rolled_back reason)
          in
          match np.run r with
          | exception e -> roll_back (Pass_exception (Printexc.to_string e))
          | () -> begin
            match
              if config.validation = Off then Ok 0
              else check_ir ~pass:np.pass_name ~program:p r
            with
            | Error (m, rule) ->
              roll_back
                ~meta:[ ("verify_rule", Epre_telemetry.Tjson.Str rule) ]
                (Ir_violation m)
            | Ok warns -> begin
              (* The audit tier: the redundancy auditor's A rules as
                 post-pass checks against the pre-pass snapshot. Audit
                 findings are effectiveness judgements, not correctness
                 ones — they land in the record's meta and telemetry but
                 NEVER roll the pass back. *)
              let audit_meta =
                if not config.audit then []
                else
                  match
                    Epre_verify.Analyze.check_post_pass ~pass:np.pass_name
                      ~baseline:snapshot r
                  with
                  | [] -> []
                  | diags ->
                    Epre_verify.Analyze.record_metrics diags;
                    let rules =
                      List.sort_uniq compare
                        (List.map
                           (fun (d : Epre_verify.Diag.t) -> d.Epre_verify.Diag.rule)
                           diags)
                    in
                    [
                      ( "audit_findings",
                        Epre_telemetry.Tjson.Int (List.length diags) );
                      ( "audit_rules",
                        Epre_telemetry.Tjson.Arr
                          (List.map (fun id -> Epre_telemetry.Tjson.Str id) rules)
                      );
                    ]
              in
              let meta =
                audit_meta
                @
                if warns > 0 then
                  [ ("verify_warnings", Epre_telemetry.Tjson.Int warns) ]
                else []
              in
              match !current_obs with
              | None -> finish ~meta Passed
              | Some before -> begin
                match observe ~fuel:!check_fuel p with
                | after when obs_equal before after ->
                  current_obs := Some after;
                  finish ~meta Passed
                | after ->
                  roll_back
                    (Behaviour_mismatch
                       (Printf.sprintf "%s, was: %s" (describe_obs after)
                          (describe_obs before)))
              end
            end
          end)
        transformed)
    passes;
  List.rev !records
