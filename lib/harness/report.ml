(** JSON rendering of harness records, over the telemetry JSON encoder
    ([Epre_telemetry.Tjson] — the same encoder the metrics stream and the
    bench baseline use, so every machine-readable output escapes and
    formats identically). *)

module Tjson = Epre_telemetry.Tjson

let record_fields (r : Harness.record) =
  let outcome, reason =
    match r.Harness.outcome with
    | Harness.Passed -> ("ok", None)
    | Harness.Rolled_back why -> ("rolled-back", Some (Harness.reason_to_string why))
  in
  [ ("pass", Tjson.Str r.Harness.pass);
    ("routine", Tjson.Str r.Harness.routine);
    ("outcome", Tjson.Str outcome) ]
  @ (match reason with None -> [] | Some m -> [ ("reason", Tjson.Str m) ])
  @ [ ("duration_ms", Tjson.Float r.Harness.duration_ms) ]
  @ r.Harness.meta

let record_to_tjson r = Tjson.Obj (record_fields r)

let record_to_json r = Tjson.to_string (record_to_tjson r)

let to_json records =
  match records with
  | [] -> "[]"
  | _ ->
    "[\n  " ^ String.concat ",\n  " (List.map record_to_json records) ^ "\n]"

let record_to_line (r : Harness.record) =
  match r.Harness.outcome with
  | Harness.Passed ->
    Printf.sprintf "ok          %-16s %-12s %.2fms" r.Harness.pass r.Harness.routine
      r.Harness.duration_ms
  | Harness.Rolled_back why ->
    Printf.sprintf "rolled-back %-16s %-12s %.2fms (%s)" r.Harness.pass
      r.Harness.routine r.Harness.duration_ms (Harness.reason_to_string why)
