(** JSON rendering of harness records. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record_to_json (r : Harness.record) =
  let outcome, reason =
    match r.Harness.outcome with
    | Harness.Passed -> ("ok", None)
    | Harness.Rolled_back why -> ("rolled-back", Some (Harness.reason_to_string why))
  in
  Printf.sprintf "{\"pass\": \"%s\", \"routine\": \"%s\", \"outcome\": \"%s\"%s, \"duration_ms\": %.3f}"
    (escape r.Harness.pass) (escape r.Harness.routine) outcome
    (match reason with
    | None -> ""
    | Some m -> Printf.sprintf ", \"reason\": \"%s\"" (escape m))
    r.Harness.duration_ms

let to_json records =
  match records with
  | [] -> "[]"
  | _ ->
    "[\n  " ^ String.concat ",\n  " (List.map record_to_json records) ^ "\n]"

let record_to_line (r : Harness.record) =
  match r.Harness.outcome with
  | Harness.Passed ->
    Printf.sprintf "ok          %-16s %-12s %.2fms" r.Harness.pass r.Harness.routine
      r.Harness.duration_ms
  | Harness.Rolled_back why ->
    Printf.sprintf "rolled-back %-16s %-12s %.2fms (%s)" r.Harness.pass
      r.Harness.routine r.Harness.duration_ms (Harness.reason_to_string why)
