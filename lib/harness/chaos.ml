(** Seeded fault injection. See the interface for the taxonomy. *)

open Epre_ir

type kind = Drop_instr | Swap_operands | Break_phi | Detach_edge

let all_kinds = [ Drop_instr; Swap_operands; Break_phi; Detach_edge ]

let name = function
  | Drop_instr -> "chaos:drop-instr"
  | Swap_operands -> "chaos:swap-operands"
  | Break_phi -> "chaos:break-phi"
  | Detach_edge -> "chaos:detach-edge"

let description = function
  | Drop_instr -> "chaos: delete a live instruction (caught by exec validation)"
  | Swap_operands -> "chaos: swap non-commutative operands (caught by exec validation)"
  | Break_phi -> "chaos: break a phi's predecessor arguments (caught by IR validation)"
  | Detach_edge -> "chaos: retarget a terminator at a missing block (caught by IR validation)"

let of_name n = List.find_opt (fun k -> name k = n) all_kinds

let default_seed = ref 0x5eed

(* A self-contained LCG; [Random] would leak global state across runs and
   break replayability. *)
let rng ~seed (r : Routine.t) = ref (Hashtbl.hash (seed, r.Routine.name) lor 1)

let next st =
  st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
  !st

let pick st n = if n <= 0 then 0 else next st mod n

let nth_opt xs i = List.nth_opt xs i

(* Every register read anywhere in the routine: dropping a definition one
   of these depends on is what makes [Drop_instr] observable. *)
let used_regs (r : Routine.t) =
  let used = Hashtbl.create 64 in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i -> List.iter (fun u -> Hashtbl.replace used u ()) (Instr.uses i))
        b.Block.instrs;
      List.iter (fun u -> Hashtbl.replace used u ()) (Instr.term_uses b.Block.term))
    r.Routine.cfg;
  used

(* All (block, index) positions whose instruction satisfies [keep]. *)
let instr_sites (r : Routine.t) keep =
  Cfg.fold_blocks
    (fun acc b ->
      acc
      @ (List.mapi (fun idx i -> ((b, idx), i)) b.Block.instrs
        |> List.filter (fun (_, i) -> keep i)
        |> List.map fst))
    [] r.Routine.cfg

let drop_instr st r =
  let used = used_regs r in
  let live i =
    Instr.has_side_effect i
    || match Instr.def i with Some d -> Hashtbl.mem used d | None -> false
  in
  let sites = instr_sites r live in
  match nth_opt sites (pick st (List.length sites)) with
  | None -> ()
  | Some (b, idx) ->
    b.Block.instrs <- List.filteri (fun i _ -> i <> idx) b.Block.instrs

let swap_operands st r =
  let swappable = function
    | Instr.Binop { op; a; b; _ } -> (not (Op.commutative op)) && a <> b
    | _ -> false
  in
  let sites = instr_sites r swappable in
  match nth_opt sites (pick st (List.length sites)) with
  | None -> ()
  | Some (blk, idx) ->
    blk.Block.instrs <-
      List.mapi
        (fun i instr ->
          match instr with
          | Instr.Binop { op; dst; a; b } when i = idx ->
            Instr.Binop { op; dst; a = b; b = a }
          | _ -> instr)
        blk.Block.instrs

let break_phi st (r : Routine.t) =
  let has_args = function Instr.Phi { args; _ } -> args <> [] | _ -> false in
  let sites = instr_sites r has_args in
  match nth_opt sites (pick st (List.length sites)) with
  | Some (blk, idx) ->
    (* Drop one argument: the phi no longer matches the CFG predecessors. *)
    blk.Block.instrs <-
      List.mapi
        (fun i instr ->
          match instr with
          | Instr.Phi { dst; args } when i = idx -> Instr.Phi { dst; args = List.tl args }
          | _ -> instr)
        blk.Block.instrs
  | None ->
    (* No phis (non-SSA code): plant one whose arguments cannot match. *)
    let blocks = Cfg.blocks r.Routine.cfg in
    (match nth_opt blocks (pick st (List.length blocks)) with
    | None -> ()
    | Some b ->
      let preds = (Cfg.preds r.Routine.cfg).(b.Block.id) in
      let args = if preds = [] then [ (b.Block.id, 0) ] else [] in
      Block.prepend b (Instr.Phi { dst = Routine.fresh_reg r; args }))

let detach_edge st (r : Routine.t) =
  let branching =
    List.filter (fun b -> Block.succs b <> []) (Cfg.blocks r.Routine.cfg)
  in
  match nth_opt branching (pick st (List.length branching)) with
  | None -> ()
  | Some b ->
    let missing = Cfg.num_blocks r.Routine.cfg + 1 + pick st 7 in
    let retargeted = ref false in
    b.Block.term <-
      Instr.map_term_succs
        (fun s ->
          if !retargeted then s
          else begin
            retargeted := true;
            ignore s;
            missing
          end)
        b.Block.term

let run ?seed kind r =
  let seed = match seed with Some s -> s | None -> !default_seed in
  let st = rng ~seed r in
  match kind with
  | Drop_instr -> drop_instr st r
  | Swap_operands -> swap_operands st r
  | Break_phi -> break_phi st r
  | Detach_edge -> detach_edge st r

let named_passes () =
  List.map
    (fun k -> { Harness.pass_name = name k; run = (fun r -> run k r) })
    all_kinds

(* ------------------------------------------------------------------ *)
(* Service-layer faults *)

type service_fault =
  | Worker_raise
  | Slow_job
  | Cache_corrupt
  | Cache_lock_hold
  | Kill_self
  | Pass_poison

exception Injected of string
exception Pass_poisoned of string

let () =
  Printexc.register_printer (function
    | Injected m -> Some ("injected fault: " ^ m)
    | Pass_poisoned p -> Some ("poisoned pass: " ^ p)
    | _ -> None)

let all_service_faults =
  [ Worker_raise; Slow_job; Cache_corrupt; Cache_lock_hold; Kill_self; Pass_poison ]

let service_name = function
  | Worker_raise -> "chaos:worker-raise"
  | Slow_job -> "chaos:slow-job"
  | Cache_corrupt -> "chaos:cache-corrupt"
  | Cache_lock_hold -> "chaos:cache-lock-hold"
  | Kill_self -> "chaos:kill-self"
  | Pass_poison -> "chaos:pass-poison"

let service_description = function
  | Worker_raise ->
    "chaos: raise a transient exception inside the job worker (absorbed by \
     retry)"
  | Slow_job ->
    "chaos: stall the job worker (absorbed by the per-job deadline)"
  | Cache_corrupt ->
    "chaos: overwrite the job's cache entries with garbage (absorbed by \
     poison recovery)"
  | Cache_lock_hold ->
    "chaos: hold the cross-process cache write lock (absorbed by lock \
     waiting)"
  | Kill_self ->
    "chaos: abort the serve process at a journal-consistent batch boundary \
     (absorbed by --resume)"
  | Pass_poison ->
    "chaos: make one optimization pass fail deterministically on every job \
     (absorbed by the degradation ladder and circuit breakers)"

let service_fault_of_name n =
  List.find_opt (fun f -> service_name f = n) all_service_faults

(* Per-fault firing probability, in per-mille. High enough that a small
   soak batch sees every class fire, low enough that unfired jobs exist
   to pin the happy path. [Kill_self] is rarer: one firing job is enough
   to take the whole process down, and the drill wants it mid-stream, not
   on the first batch. [Pass_poison] is unconditional: the point is a
   *deterministic* failure that retries cannot absorb. *)
let fire_rate = function
  | Worker_raise -> 500
  | Slow_job -> 350
  | Cache_corrupt -> 350
  | Cache_lock_hold -> 350
  | Kill_self -> 80
  | Pass_poison -> 1000

let fires ?seed fault ~key =
  let seed = match seed with Some s -> s | None -> !default_seed in
  Hashtbl.hash (seed, service_name fault, key) mod 1000 < fire_rate fault

let poison_target ?seed ~candidates () =
  match candidates with
  | [] -> None
  | _ ->
    let seed = match seed with Some s -> s | None -> !default_seed in
    let i =
      Hashtbl.hash (seed, service_name Pass_poison) mod List.length candidates
    in
    List.nth_opt candidates i
