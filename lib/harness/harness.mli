(** Supervised pass execution — the fault-tolerant replacement for running
    optimizer passes bare.

    The paper's optimizer is a chain of Unix filters: one ill-formed ILOC
    output poisons every downstream pass. The harness runs each pass
    against a checkpoint instead. A pass that raises, breaks IR
    well-formedness, or changes the program's observable behaviour is
    rolled back and recorded; the remaining passes still run — graceful
    degradation in the style of a production compiler's per-pass bailout.

    Validation tiers, each containing the previous:
    - [Off]: trust the pass; only exceptions roll back;
    - [Ir]: the full [Epre_verify] verifier — structural and type rules
      (including [Ssa_check] as rule V007 when the routine is in SSA)
      plus the pass's registered postcondition lints; the first
      error-severity diagnostic rolls back, warnings are counted into the
      record's [meta];
    - [Exec]: translation validation — interpret the program's observable
      behaviour (return value and [emit] trace from [main], under bounded
      fuel) before and after the pass and require them to agree up to
      floating-point reassociation noise. *)

open Epre_ir

type validation = Off | Ir | Exec

val validation_of_string : string -> validation option

val validation_to_string : validation -> string

(** Why a pass application was rolled back. *)
type reason =
  | Pass_exception of string  (** the pass raised *)
  | Ir_violation of string  (** the [Epre_verify] verifier reported an error *)
  | Behaviour_mismatch of string  (** translation validation failed *)

val reason_to_string : reason -> string

type outcome = Passed | Rolled_back of reason

(** One per (pass, routine) application, in execution order. *)
type record = {
  pass : string;
  routine : string;
  outcome : outcome;
  duration_ms : float;
      (** wall clock on the telemetry monotonic clock (pass run plus
          validation and any rollback), not process CPU time *)
  meta : (string * Epre_telemetry.Tjson.t) list;
      (** extra provenance rendered verbatim into the JSON report —
          [supervise] records the verifier rule id behind an IR rollback
          ([verify_rule]) and the verifier warning count on success
          ([verify_warnings]); the fuzzer's differential oracle attaches
          the generator seed, optimization level and reproducer path so
          fuzz verdicts and supervised-run reports share one schema *)
}

type config = {
  validation : validation;
  fuel : int;
      (** interpreter budget for the reference run of translation
          validation; post-pass runs get [4 * reference + 10_000], so a
          pass that introduces an infinite loop is caught quickly *)
  keep_going : bool;
      (** [true] (the [--safe] mode): roll back and continue with the
          remaining passes; [false]: roll back, then raise
          [Supervision_failed] *)
  audit : bool;
      (** run the redundancy auditor ([Epre_verify.Analyze]) after each
          audited pass, against the pre-pass snapshot. Findings are
          recorded in the record's meta ([audit_findings] count,
          [audit_rules] ids) and as [analyze.*] telemetry counters;
          they never roll a pass back *)
}

(** [Ir] validation, [Interp.default_fuel], [keep_going = true], audit
    off. *)
val default_config : config

exception Supervision_failed of record

(** A pass under its registry/pipeline name — the harness's view of a
    pass; [Epre.Passes] and [Epre.Pipeline] both convert into it. *)
type named_pass = { pass_name : string; run : Routine.t -> unit }

(** Observable behaviour of a program's [main]: either a (return value,
    emit trace) pair or the textual reason it could not be obtained. *)
type obs = (Value.t option * Value.t list, string) result

val observe : fuel:int -> Program.t -> obs

(** [observe] plus the run's dynamic operation count when it succeeded —
    the harness and [Bisect] derive a bounded re-check budget from it. *)
val observe_counted : fuel:int -> Program.t -> obs * int option

(** Equality up to floating-point reassociation noise (relative 1e-9), the
    same tolerance the differential test suite uses. *)
val obs_equal : obs -> obs -> bool

(** One-line rendering ("return 42, 13 emits" / the error text) for
    diagnostics and mismatch reasons. *)
val describe_obs : obs -> string

(** Run every pass over every routine of the program, pass-major,
    checkpointing each (pass, routine) application and rolling back on
    failure. [dump name r] fires after each application (after the
    rollback, if one happened). [only] restricts transformation to the
    named routines while validation keeps seeing the whole program —
    the compile-service pool ([Epre_service]) supervises one routine per
    worker against a shared read-only context this way. Returns the
    per-application records in execution order.
    @raise Supervision_failed on the first rollback when
    [config.keep_going] is false (the routine is restored first). *)
val supervise :
  ?dump:(string -> Routine.t -> unit) ->
  ?only:string list ->
  config ->
  passes:named_pass list ->
  Program.t ->
  record list

(** [rolled_back records] keeps only the failures. *)
val rolled_back : record list -> record list
