(** Pass-sequence bisection: shrink a failing pipeline to the minimal
    offending prefix and show what the culprit pass did to the IR.

    The oracle is the harness's strongest tier: each pass application is
    checked structurally ([Routine.validate] / [Ssa_check]) and the whole
    program is translation-validated (observable behaviour of [main])
    after every pass. The first pass that fails any check is the culprit —
    the prefix ending at it is, by construction, the minimal failing
    prefix. The input program is not modified. *)

open Epre_ir

type failure = {
  index : int;  (** 0-based position of the culprit in the sequence *)
  pass : string;
  routine : string option;
      (** the routine the failure was detected in; [None] when translation
          validation implicates the whole program *)
  reason : Harness.reason;
  delta : (string * string) list;
      (** per changed routine, a line diff ([-]/[+] markers) of the IR
          before vs after the culprit pass *)
}

(** [run ~passes p] replays the sequence on a copy of [p].
    Returns [None] when the whole sequence is healthy. *)
val run : ?fuel:int -> passes:Harness.named_pass list -> Program.t -> failure option

(** Render a failure for the terminal: culprit header plus the IR delta. *)
val pp_failure : Format.formatter -> failure -> unit
