(** Seeded program generator. See the interface for the invariants every
    program satisfies by construction. *)

open Epre_frontend.Ast

type config = {
  max_stmts : int;
  stmt_depth : int;
  expr_depth : int;
  helpers : int;
}

let default_config = { max_stmts = 30; stmt_depth = 3; expr_depth = 3; helpers = 2 }

let mk desc = { desc; line = 1 }

(* What a routine body may reference while being generated. *)
type ctx = {
  rng : Rng.t;
  ints : string list;  (** readable int scalars *)
  int_targets : string list;  (** assignable int scalars *)
  flts : string list;
  flt_targets : string list;
  arrays : bool;  (** the fixed arrays [a], [m], [fa] are in scope *)
  int_callees : string list;  (** generated [..(int, int): int] helpers *)
  flt_callee : string option;  (** generated [(float, float): float] helper *)
}

(* 1-based in-bounds subscript: [1 + mod(abs e, dim)]. *)
let guard_index dim e =
  Binary (BAdd, Int_lit 1, Call ("mod", [ Call ("abs", [ e ]); Int_lit dim ]))

(* Non-zero divisor: [1 + abs e]. *)
let guard_divisor e = Binary (BAdd, Int_lit 1, Call ("abs", [ e ]))

(* Keep float magnitudes representable: every float assignment clamps. *)
let clamp_float e = Call ("min", [ e; Float_lit 1000000.0 ])

let rec int_expr ctx depth =
  let g = ctx.rng in
  (* Fall back to a literal when no int scalar is in scope (e.g. inside
     the float helper, whose only variables are floats). *)
  let atom () =
    match ctx.ints with
    | [] -> Int_lit (Rng.int g 21)
    | vs -> Var (Rng.pick g vs)
  in
  if depth <= 0 then
    Rng.weighted g
      [ (2, fun () -> Int_lit (Rng.int g 21)); (3, fun () -> atom ()) ]
      ()
  else begin
    let sub () = int_expr ctx (depth - 1) in
    let choices =
      [ (2, fun () -> Int_lit (Rng.int g 21));
        (3, fun () -> atom ());
        (4, fun () -> Binary (Rng.pick g [ BAdd; BSub; BMul ], sub (), sub ()));
        (1, fun () -> Binary (BDiv, sub (), guard_divisor (sub ())));
        (1, fun () -> Binary (BRem, sub (), guard_divisor (sub ())));
        (1, fun () -> Call (Rng.pick g [ "min"; "max" ], [ sub (); sub () ]));
        (1, fun () -> Call ("abs", [ sub () ])) ]
      @ (if ctx.arrays then
           [ (2, fun () -> Index ("a", [ guard_index 8 (sub ()) ]));
             ( 1,
               fun () ->
                 Index ("m", [ guard_index 4 (sub ()); guard_index 4 (sub ()) ]) ) ]
         else [])
      @
      match ctx.int_callees with
      | [] -> []
      | hs -> [ (1, fun () -> Call (Rng.pick g hs, [ sub (); sub () ])) ]
    in
    (Rng.weighted g choices) ()
  end

(* Float expressions: non-negative atoms under monotone non-negative
   operators only (no subtraction, no negation, no int operands except
   through [float(abs ...)]), so reassociation error stays relative. *)
let rec flt_expr ctx depth =
  let g = ctx.rng in
  let lit () = Float_lit (float_of_int (Rng.int g 33) /. 4.0) in
  if depth <= 0 then
    match ctx.flts with
    | [] -> lit ()
    | vs ->
      Rng.weighted g [ (2, fun () -> lit ()); (3, fun () -> Var (Rng.pick g vs)) ] ()
  else begin
    let sub () = flt_expr ctx (depth - 1) in
    let choices =
      [ (2, fun () -> lit ());
        (3,
         fun () ->
           match ctx.flts with [] -> lit () | vs -> Var (Rng.pick g vs));
        (3, fun () -> Binary (Rng.pick g [ BAdd; BMul ], sub (), sub ()));
        (1, fun () -> Binary (BDiv, sub (), Binary (BAdd, Float_lit 1.0, sub ())));
        (1, fun () -> Call (Rng.pick g [ "min"; "max" ], [ sub (); sub () ]));
        (1, fun () -> Call ("sqrt", [ sub () ]));
        (1, fun () -> Call ("float", [ Call ("abs", [ int_expr ctx (depth - 1) ]) ])) ]
      @ (if ctx.arrays then
           [ (2, fun () -> Index ("fa", [ guard_index 8 (int_expr ctx (depth - 1)) ])) ]
         else [])
      @
      match ctx.flt_callee with
      | None -> []
      | Some h -> [ (1, fun () -> Call (h, [ sub (); sub () ])) ]
    in
    (Rng.weighted g choices) ()
  end

(* Conditions branch on integers only (see the float invariant above). *)
let cond ctx =
  let g = ctx.rng in
  let cmp () =
    Binary
      ( Rng.pick g [ BEq; BNe; BLt; BLe; BGt; BGe ],
        int_expr ctx 2,
        int_expr ctx 2 )
  in
  Rng.weighted g
    [ (4, fun () -> cmp ());
      (1, fun () -> Binary (Rng.pick g [ BAnd; BOr ], cmp (), cmp ()));
      (1, fun () -> Unary (UNot, cmp ())) ]
    ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec stmts config ctx ~budget ~depth ~fors ~whiles =
  let g = ctx.rng in
  let count = Rng.range g 1 4 in
  let rec go i acc =
    if i >= count || !budget <= 0 then List.rev acc
    else begin
      let generated = stmt config ctx ~budget ~depth ~fors ~whiles in
      go (i + 1) (List.rev_append generated acc)
    end
  in
  go 0 []

and stmt config ctx ~budget ~depth ~fors ~whiles =
  let g = ctx.rng in
  decr budget;
  let leaf =
    [ ( 4,
        fun () ->
          [ mk (Assign (Rng.pick g ctx.int_targets, int_expr ctx config.expr_depth)) ] );
      ( 2,
        fun () ->
          match ctx.flt_targets with
          | [] -> [ mk (Expr_stmt (Call ("emit", [ int_expr ctx 2 ]))) ]
          | vs ->
            [ mk (Assign (Rng.pick g vs, clamp_float (flt_expr ctx config.expr_depth))) ]
      );
      ( 2,
        fun () ->
          let e =
            if ctx.flts <> [] && Rng.bool g then flt_expr ctx 2 else int_expr ctx 2
          in
          [ mk (Expr_stmt (Call ("emit", [ e ]))) ] ) ]
    @ (if ctx.arrays then
         [ ( 2,
             fun () ->
               [ mk
                   (Assign_index
                      ("a", [ guard_index 8 (int_expr ctx 1) ], int_expr ctx config.expr_depth))
               ] );
           ( 1,
             fun () ->
               [ mk
                   (Assign_index
                      ( "m",
                        [ guard_index 4 (int_expr ctx 1); guard_index 4 (int_expr ctx 1) ],
                        int_expr ctx config.expr_depth ))
               ] );
           ( 1,
             fun () ->
               [ mk
                   (Assign_index
                      ( "fa",
                        [ guard_index 8 (int_expr ctx 1) ],
                        clamp_float (flt_expr ctx config.expr_depth) ))
               ] ) ]
       else [])
    @
    match ctx.int_callees with
    | [] -> []
    | hs ->
      [ (1, fun () -> [ mk (Expr_stmt (Call (Rng.pick g hs, [ int_expr ctx 1; int_expr ctx 1 ]))) ]) ]
  in
  let nested =
    if depth <= 0 then []
    else
      [ ( 2,
          fun () ->
            let c = cond ctx in
            let then_ = stmts config ctx ~budget ~depth:(depth - 1) ~fors ~whiles in
            let else_ =
              if Rng.bool g then []
              else stmts config ctx ~budget ~depth:(depth - 1) ~fors ~whiles
            in
            [ mk (If (c, then_, else_)) ] ) ]
      @ (match fors with
        | [] -> []
        | counter :: rest ->
          [ ( 2,
              fun () ->
                let hi = Int_lit (Rng.range g 1 6) in
                let step =
                  if Rng.int g 3 = 0 then Some (Int_lit (Rng.range g 1 2)) else None
                in
                let down = Rng.int g 4 = 0 in
                let body =
                  stmts config ctx ~budget ~depth:(depth - 1) ~fors:rest ~whiles
                in
                let start = if down then hi else Int_lit 1 in
                let stop = if down then Int_lit 1 else hi in
                [ mk (For { var = counter; start; stop; step; down; body }) ] ) ])
      @
      match whiles with
      | [] -> []
      | w :: rest ->
        [ ( 1,
            fun () ->
              let trips = Int_lit (Rng.range g 1 4) in
              let body =
                stmts config ctx ~budget ~depth:(depth - 1) ~fors ~whiles:rest
              in
              (* The dedicated counter [w] is not an assignment target
                 anywhere else, so the loop always terminates. *)
              [ mk (Assign (w, Int_lit 0));
                mk
                  (While
                     ( Binary (BLt, Var w, trips),
                       body @ [ mk (Assign (w, Binary (BAdd, Var w, Int_lit 1))) ] ))
              ] ) ]
  in
  (Rng.weighted g (leaf @ nested)) ()

(* ------------------------------------------------------------------ *)
(* Routines                                                            *)

let int_helper config rng ~name ~callees =
  let ctx =
    { rng; ints = [ "x"; "y"; "t0" ]; int_targets = [ "t0" ]; flts = [];
      flt_targets = []; arrays = false; int_callees = callees; flt_callee = None }
  in
  let n = Rng.range rng 1 3 in
  let rec assigns i =
    if i >= n then []
    else mk (Assign ("t0", int_expr ctx config.expr_depth)) :: assigns (i + 1)
  in
  let body =
    mk (Decl ("t0", Scalar TInt, Some (Int_lit (Rng.int rng 21))))
    :: assigns 0
    @ [ mk (Return (Some (int_expr ctx config.expr_depth))) ]
  in
  { name; params = [ ("x", Scalar TInt); ("y", Scalar TInt) ]; ret = Some TInt;
    body; line = 1 }

let flt_helper config rng ~name =
  let ctx =
    { rng; ints = []; int_targets = []; flts = [ "x"; "y"; "t0" ];
      flt_targets = [ "t0" ]; arrays = false; int_callees = []; flt_callee = None }
  in
  let n = Rng.range rng 1 2 in
  let rec assigns i =
    if i >= n then []
    else mk (Assign ("t0", clamp_float (flt_expr ctx config.expr_depth))) :: assigns (i + 1)
  in
  let body =
    mk (Decl ("t0", Scalar TFlt, Some (Float_lit (float_of_int (Rng.int rng 9)))))
    :: assigns 0
    @ [ mk (Return (Some (clamp_float (flt_expr ctx config.expr_depth)))) ]
  in
  { name; params = [ ("x", Scalar TFlt); ("y", Scalar TFlt) ]; ret = Some TFlt;
    body; line = 1 }

let int_vars = [ "v0"; "v1"; "v2"; "v3"; "v4" ]

let flt_vars = [ "f0"; "f1"; "f2" ]

let program ?(config = default_config) seed =
  let master = Rng.create seed in
  (* Helper routines first, each on its own split stream. *)
  let n_helpers = Rng.int master (config.helpers + 1) in
  let with_flt_helper = config.helpers > 0 && Rng.bool master in
  let int_names = List.init n_helpers (fun i -> Printf.sprintf "h%d" i) in
  let helpers =
    List.rev
      (snd
         (List.fold_left
            (fun (i, acc) name ->
              let callees = List.filteri (fun j _ -> j < i) int_names in
              (i + 1, int_helper config (Rng.split master) ~name ~callees :: acc))
            (0, []) int_names))
  in
  let flt_name = if with_flt_helper then Some "g0" else None in
  let helpers =
    helpers
    @ match flt_name with
      | Some name -> [ flt_helper config (Rng.split master) ~name ]
      | None -> []
  in
  (* main: declarations, a deterministic array prelude, the generated
     body, then an observability tail. *)
  let rng = Rng.split master in
  let ctx =
    { rng;
      ints = int_vars @ [ "k0"; "k1"; "k2"; "w0"; "w1" ];
      int_targets = int_vars; flts = flt_vars; flt_targets = flt_vars;
      arrays = true; int_callees = int_names; flt_callee = flt_name }
  in
  let decls =
    List.map
      (fun v -> mk (Decl (v, Scalar TInt, Some (Int_lit (Rng.int rng 10)))))
      int_vars
    @ List.map
        (fun v ->
          mk (Decl (v, Scalar TFlt, Some (Float_lit (float_of_int (Rng.int rng 17) /. 4.0)))))
        flt_vars
    @ List.map (fun v -> mk (Decl (v, Scalar TInt, None))) [ "k0"; "k1"; "k2"; "w0"; "w1" ]
    @ [ mk (Decl ("a", Array { elt = TInt; dims = [ 8 ] }, None));
        mk (Decl ("m", Array { elt = TInt; dims = [ 4; 4 ] }, None));
        mk (Decl ("fa", Array { elt = TFlt; dims = [ 8 ] }, None)) ]
  in
  let c1 = Rng.range rng 1 5 in
  let prelude =
    [ mk
        (For
           { var = "k0"; start = Int_lit 1; stop = Int_lit 8; step = None; down = false;
             body =
               [ mk (Assign_index ("a", [ Var "k0" ], Binary (BMul, Var "k0", Int_lit c1)));
                 mk
                   (Assign_index
                      ( "fa",
                        [ Var "k0" ],
                        Binary (BMul, Call ("float", [ Var "k0" ]), Float_lit 0.5) ))
               ] });
      mk (Assign_index ("m", [ Int_lit 1; Int_lit 2 ], Int_lit (Rng.int rng 21)));
      mk (Assign_index ("m", [ Int_lit 3; Int_lit 3 ], Int_lit (Rng.int rng 21))) ]
  in
  let budget = ref config.max_stmts in
  let body = stmts config ctx ~budget ~depth:config.stmt_depth ~fors:[ "k0"; "k1"; "k2" ] ~whiles:[ "w0"; "w1" ] in
  let emit e = mk (Expr_stmt (Call ("emit", [ e ]))) in
  let tail =
    List.map (fun v -> emit (Var v)) int_vars
    @ [ emit (Index ("a", [ Int_lit 1 ])); emit (Index ("a", [ Int_lit 6 ]));
        emit (Index ("m", [ Int_lit 2; Int_lit 2 ])) ]
    @ List.map (fun v -> emit (Var v)) flt_vars
    @ [ emit (Index ("fa", [ Int_lit 3 ])); emit (Index ("fa", [ Int_lit 7 ])) ]
  in
  let checksum =
    List.fold_left
      (fun acc v -> Binary (BAdd, acc, Var v))
      (Binary (BAdd, Index ("a", [ Int_lit 3 ]), Index ("m", [ Int_lit 3; Int_lit 3 ])))
      int_vars
  in
  let main =
    { name = "main"; params = []; ret = Some TInt;
      body = decls @ prelude @ body @ tail @ [ mk (Return (Some checksum)) ];
      line = 1 }
  in
  helpers @ [ main ]

let source ?config seed = Epre_frontend.Ast_ops.print_program (program ?config seed)
