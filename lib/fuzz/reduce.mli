(** Greedy delta debugging over the mini-language AST.

    Shrinks a failing program while preserving its failure signature —
    [still_fails] is the caller's oracle (typically "compiles, and
    {!Oracle.check} still reports the same (level, class)"); a candidate
    that no longer compiles is simply rejected by it.

    Three moves, swept from the highest preorder index down (so earlier
    indices stay valid within a sweep — see [Ast_ops]):

    - delete a statement;
    - hoist the body of an [if] / [while] / [for] in place of the
      construct;
    - replace a non-literal expression with a literal ([0], [1], [0.0],
      [1.0] — the wrongly-typed candidates fail to compile and are
      rejected by the oracle for free).

    Rounds repeat until a full round accepts nothing or [max_rounds] is
    reached. Greedy and deterministic: no randomness, first accepted
    candidate wins. *)

type stats = {
  original_stmts : int;
  reduced_stmts : int;
  rounds : int;  (** rounds actually run, including the final no-progress one *)
  tried : int;  (** candidates offered to [still_fails] *)
  accepted : int;
}

val stats_to_tjson : stats -> Epre_telemetry.Tjson.t

(** [run ~still_fails prog] — [prog] itself must satisfy [still_fails];
    the result always does. [max_rounds] defaults to 10. *)
val run :
  ?max_rounds:int ->
  still_fails:(Epre_frontend.Ast.program -> bool) ->
  Epre_frontend.Ast.program ->
  Epre_frontend.Ast.program * stats
