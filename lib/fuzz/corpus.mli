(** The persistent repro corpus: one directory per failure under the
    corpus root, holding the reduced reproducer as replayable source plus
    a metadata file.

    {v
    fuzz/corpus/<id>/
      repro.mf      reduced program (replays the failure on its own)
      original.mf   the unreduced generated program
      meta.json     provenance + the failure as a harness record
    v}

    [<id>] is [seed<seed>-<level>-<class>] — deterministic, so re-running
    the same campaign overwrites rather than accumulates duplicates.

    [meta.json] is a [Tjson] object: [schema] (currently 1), [seed],
    [level], [class], [chaos] (the [--chaos] spelling, absent when none),
    [reduction] ({!Reduce.stats}), and [record] — the failure rendered by
    [Epre_harness.Report.record_to_tjson], the same schema supervised-run
    reports use. *)

type entry = {
  id : string;
  seed : int;
  level : Epre.Pipeline.level;
  cls : Oracle.failure_class;
  chaos : string option;  (** the campaign's [--chaos] spelling *)
  reduction : Reduce.stats option;
  record : Epre_harness.Harness.record;
  repro_source : string;
}

val entry_id :
  seed:int -> level:Epre.Pipeline.level -> cls:Oracle.failure_class -> string

(** [save ~dir entry ~original] writes the entry's directory under [dir]
    (both created as needed) and returns the entry directory path. *)
val save : dir:string -> original:string -> entry -> string

(** [load dir] reads one entry directory back ([Error] explains what is
    missing or malformed). The [record]'s meta carries whatever
    [meta.json] stored. *)
val load : string -> (entry, string) result

(** Entry directories under a corpus root, sorted by name; [[]] when the
    root does not exist. *)
val list : dir:string -> string list
