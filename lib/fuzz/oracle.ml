(** Differential oracle. See the interface for the tiering. *)

module Harness = Epre_harness.Harness
module Bisect = Epre_harness.Bisect
module Pipeline = Epre.Pipeline
module Program = Epre_ir.Program
module Tjson = Epre_telemetry.Tjson

type failure_class =
  | Pass_exception
  | Ir_violation
  | Behaviour_mismatch
  | Fuel_divergence

let class_to_string = function
  | Pass_exception -> "pass-exception"
  | Ir_violation -> "ir-violation"
  | Behaviour_mismatch -> "behaviour-mismatch"
  | Fuel_divergence -> "fuel-divergence"

let class_of_string = function
  | "pass-exception" -> Some Pass_exception
  | "ir-violation" -> Some Ir_violation
  | "behaviour-mismatch" -> Some Behaviour_mismatch
  | "fuel-divergence" -> Some Fuel_divergence
  | _ -> None

type failure = {
  level : Pipeline.level;
  cls : failure_class;
  pass : string;
  routine : string;
  detail : string;
  rule : string option;
  culprit : Bisect.failure option;
}

type config = {
  levels : Pipeline.level list;
  chaos : (int * Harness.named_pass) option;
  chaos_name : string option;
  fuel : int;
  pinpoint : bool;
}

let default_config =
  { levels = Pipeline.all_levels; chaos = None; chaos_name = None;
    fuel = Epre_interp.Interp.default_fuel; pinpoint = false }

let passes_for config level =
  let passes = Pipeline.level_passes ~level in
  match config.chaos with
  | None -> passes
  | Some (at, p) -> Pipeline.splice passes ~at p

(* Fast tier for one level: supervise at the [Ir] tier with
   [keep_going = false] (per-pass structural checking, exceptions become
   rollbacks), then one final behaviour comparison against the
   unoptimized reference under a budget derived from the reference run. *)
let check_level config ~reference ~budget prog level =
  let passes = passes_for config level in
  let copy = Program.copy prog in
  let sup =
    {
      Harness.validation = Harness.Ir;
      fuel = config.fuel;
      keep_going = false;
      audit = false;
    }
  in
  match Harness.supervise sup ~passes copy with
  | exception Harness.Supervision_failed r ->
    let cls, detail =
      match r.Harness.outcome with
      | Harness.Rolled_back (Harness.Pass_exception m) -> (Pass_exception, m)
      | Harness.Rolled_back (Harness.Ir_violation m) -> (Ir_violation, m)
      | Harness.Rolled_back (Harness.Behaviour_mismatch m) ->
        (Behaviour_mismatch, m)
      | Harness.Passed -> assert false
    in
    let rule =
      match List.assoc_opt "verify_rule" r.Harness.meta with
      | Some (Tjson.Str id) -> Some id
      | _ -> None
    in
    Some
      { level; cls; pass = r.Harness.pass; routine = r.Harness.routine; detail;
        rule; culprit = None }
  | _records -> (
    let obs = Harness.observe ~fuel:budget copy in
    if Harness.obs_equal reference obs then None
    else
      let cls =
        match obs with
        | Error "out of fuel" -> Fuel_divergence
        | _ -> Behaviour_mismatch
      in
      Some
        { level; cls; pass = Pipeline.level_to_string level;
          routine = "<program>";
          detail =
            Printf.sprintf "optimized: %s; reference: %s"
              (Harness.describe_obs obs)
              (Harness.describe_obs reference);
          rule = None; culprit = None })

let pinpoint config prog level f =
  match Bisect.run ~fuel:config.fuel ~passes:(passes_for config level) prog with
  | None -> f
  | Some c ->
    { f with
      culprit = Some c;
      pass = c.Bisect.pass;
      routine = Option.value c.Bisect.routine ~default:f.routine }

let check config prog =
  match Harness.observe_counted ~fuel:config.fuel prog with
  | Error _, _ -> []
  | (Ok _ as reference), count ->
    let budget =
      match count with Some n -> (4 * n) + 10_000 | None -> config.fuel
    in
    List.filter_map
      (fun level ->
        match check_level config ~reference ~budget prog level with
        | None -> None
        | Some f -> Some (if config.pinpoint then pinpoint config prog level f else f))
      config.levels

let failure_record ~seed ?chaos ?repro f =
  let reason =
    match f.cls with
    | Pass_exception -> Harness.Pass_exception f.detail
    | Ir_violation -> Harness.Ir_violation f.detail
    | Behaviour_mismatch | Fuel_divergence -> Harness.Behaviour_mismatch f.detail
  in
  let meta =
    [ ("fuzz_seed", Tjson.Int seed);
      ("fuzz_level", Tjson.Str (Pipeline.level_to_string f.level));
      ("fuzz_class", Tjson.Str (class_to_string f.cls)) ]
    @ (match f.rule with
      | None -> []
      | Some id -> [ ("fuzz_rule", Tjson.Str id) ])
    @ (match chaos with None -> [] | Some c -> [ ("fuzz_chaos", Tjson.Str c) ])
    @ match repro with None -> [] | Some p -> [ ("fuzz_repro", Tjson.Str p) ]
  in
  { Harness.pass = f.pass; routine = f.routine;
    outcome = Harness.Rolled_back reason; duration_ms = 0.; meta }
