(** Corpus persistence. See the interface for the on-disk layout. *)

module Harness = Epre_harness.Harness
module Report = Epre_harness.Report
module Tjson = Epre_telemetry.Tjson

type entry = {
  id : string;
  seed : int;
  level : Epre.Pipeline.level;
  cls : Oracle.failure_class;
  chaos : string option;
  reduction : Reduce.stats option;
  record : Harness.record;
  repro_source : string;
}

let entry_id ~seed ~level ~cls =
  Printf.sprintf "seed%d-%s-%s" seed
    (Epre.Pipeline.level_to_string level)
    (Oracle.class_to_string cls)

(* ------------------------------------------------------------------ *)
(* Filesystem helpers (no unix dependency — [Sys] suffices)            *)

let rec mkdir_p dir =
  if Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Save                                                                *)

let meta_json entry =
  Tjson.Obj
    ([ ("schema", Tjson.Int 1);
       ("seed", Tjson.Int entry.seed);
       ("level", Tjson.Str (Epre.Pipeline.level_to_string entry.level));
       ("class", Tjson.Str (Oracle.class_to_string entry.cls)) ]
    @ (match entry.chaos with
      | None -> []
      | Some c -> [ ("chaos", Tjson.Str c) ])
    @ (match entry.reduction with
      | None -> []
      | Some s -> [ ("reduction", Reduce.stats_to_tjson s) ])
    @ [ ("record", Report.record_to_tjson entry.record) ])

let save ~dir ~original entry =
  let entry_dir = Filename.concat dir entry.id in
  mkdir_p entry_dir;
  write_file (Filename.concat entry_dir "repro.mf") entry.repro_source;
  write_file (Filename.concat entry_dir "original.mf") original;
  write_file
    (Filename.concat entry_dir "meta.json")
    (Tjson.to_string (meta_json entry) ^ "\n");
  entry_dir

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let ( let* ) = Result.bind

let field name json =
  match Tjson.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "meta.json: missing %S" name)

let as_int name = function
  | Tjson.Int n -> Ok n
  | _ -> Error (Printf.sprintf "meta.json: %S is not an int" name)

let as_str name = function
  | Tjson.Str s -> Ok s
  | _ -> Error (Printf.sprintf "meta.json: %S is not a string" name)

(* Inverse of [Harness.reason_to_string], by prefix. *)
let reason_of_string s =
  let strip prefix =
    let n = String.length prefix in
    if String.length s >= n && String.sub s 0 n = prefix then
      Some (String.sub s n (String.length s - n))
    else None
  in
  match strip "pass raised: " with
  | Some m -> Harness.Pass_exception m
  | None -> (
    match strip "ill-formed IR: " with
    | Some m -> Harness.Ir_violation m
    | None -> (
      match strip "behaviour mismatch: " with
      | Some m -> Harness.Behaviour_mismatch m
      | None -> Harness.Behaviour_mismatch s))

let record_of_tjson json =
  let* pass = Result.bind (field "pass" json) (as_str "pass") in
  let* routine = Result.bind (field "routine" json) (as_str "routine") in
  let* outcome_s = Result.bind (field "outcome" json) (as_str "outcome") in
  let* outcome =
    match outcome_s with
    | "ok" -> Ok Harness.Passed
    | "rolled-back" ->
      let reason =
        match Tjson.member "reason" json with
        | Some (Tjson.Str m) -> reason_of_string m
        | _ -> Harness.Pass_exception "unknown"
      in
      Ok (Harness.Rolled_back reason)
    | other -> Error (Printf.sprintf "meta.json: unknown outcome %S" other)
  in
  let duration_ms =
    match Tjson.member "duration_ms" json with
    | Some (Tjson.Float f) -> f
    | Some (Tjson.Int n) -> float_of_int n
    | _ -> 0.
  in
  let meta =
    match json with
    | Tjson.Obj fields ->
      List.filter
        (fun (k, _) ->
          not
            (List.mem k [ "pass"; "routine"; "outcome"; "reason"; "duration_ms" ]))
        fields
    | _ -> []
  in
  Ok { Harness.pass; routine; outcome; duration_ms; meta }

let reduction_of_tjson json =
  let int name =
    match Tjson.member name json with Some (Tjson.Int n) -> n | _ -> 0
  in
  { Reduce.original_stmts = int "original_stmts";
    reduced_stmts = int "reduced_stmts";
    rounds = int "rounds";
    tried = int "tried";
    accepted = int "accepted" }

let load dir =
  let meta_path = Filename.concat dir "meta.json" in
  let repro_path = Filename.concat dir "repro.mf" in
  if not (Sys.file_exists meta_path) then
    Error (Printf.sprintf "%s: no meta.json" dir)
  else if not (Sys.file_exists repro_path) then
    Error (Printf.sprintf "%s: no repro.mf" dir)
  else
    let* json =
      Result.map_error
        (fun m -> Printf.sprintf "%s: %s" meta_path m)
        (Tjson.parse (read_file meta_path))
    in
    let* seed = Result.bind (field "seed" json) (as_int "seed") in
    let* level_s = Result.bind (field "level" json) (as_str "level") in
    let* level =
      match Epre.Pipeline.level_of_string level_s with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "meta.json: unknown level %S" level_s)
    in
    let* cls_s = Result.bind (field "class" json) (as_str "class") in
    let* cls =
      match Oracle.class_of_string cls_s with
      | Some c -> Ok c
      | None -> Error (Printf.sprintf "meta.json: unknown class %S" cls_s)
    in
    let chaos =
      match Tjson.member "chaos" json with
      | Some (Tjson.Str c) -> Some c
      | _ -> None
    in
    let reduction =
      Option.map reduction_of_tjson (Tjson.member "reduction" json)
    in
    let* record = Result.bind (field "record" json) record_of_tjson in
    Ok
      { id = Filename.basename dir; seed; level; cls; chaos; reduction; record;
        repro_source = read_file repro_path }

let list ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun name -> Sys.is_directory (Filename.concat dir name))
    |> List.sort String.compare
