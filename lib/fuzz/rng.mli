(** Splittable deterministic PRNG (SplitMix64, Steele et al.), the fuzz
    subsystem's only randomness source. [Stdlib.Random] would leak global
    state across runs; this generator is a value, reproducible from a
    single [int] seed, and [split] derives statistically independent
    streams — one per generated routine — so inserting a statement in one
    routine cannot reshuffle every later draw of the campaign. *)

type t

val create : int -> t

(** An independent generator derived from (and advancing) [t]. *)
val split : t -> t

(** Uniform in [\[0, bound)]; [bound <= 0] yields 0. *)
val int : t -> int -> int

(** Uniform in [\[lo, hi]] (inclusive). *)
val range : t -> int -> int -> int

val bool : t -> bool

(** Uniform element of a non-empty list. *)
val pick : t -> 'a list -> 'a

(** Weighted choice: [(3, x); (1, y)] yields [x] three times in four. *)
val weighted : t -> (int * 'a) list -> 'a
