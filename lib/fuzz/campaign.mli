(** Campaign driver — what [eprec fuzz] runs.

    A campaign derives one case seed per run from the master seed (via
    the splittable {!Rng}, so the sequence is a pure function of
    [config.seed]), generates each program, checks it with the
    differential {!Oracle}, optionally reduces each failure with
    {!Reduce}, and persists reproducers through {!Corpus}.

    Everything in the {!summary} is deterministic for a given config —
    no timestamps, no durations — so two invocations of the same
    campaign produce byte-identical JSON (the CI determinism check and
    the acceptance criterion for [eprec fuzz --runs 500 --seed 42]).

    Telemetry: the whole campaign runs in a ["fuzz"] span with one
    ["fuzz-case"] child per generated program, so [--trace-out] /
    [--profile] work on fuzz runs like on any other [eprec] command. *)

type config = {
  runs : int;
  seed : int;  (** master seed; case seeds derive from it *)
  max_size : int;  (** generator statement budget ([--max-size]) *)
  levels : Epre.Pipeline.level list;
  chaos : string option;
      (** [NAME\[@POS\]] fault spliced into every checked level — the
          oracle self-test mode. Must satisfy {!parse_chaos}. *)
  reduce : bool;
  corpus_dir : string option;  (** [None]: don't persist reproducers *)
  fuel : int;
      (** reference-run budget; small (default 1e6) so a reduction
          candidate that loops forever is rejected quickly *)
  pinpoint : bool;  (** bisect each failure to its culprit pass *)
  jobs : int;
      (** worker domains for oracle checking ([--jobs]); case seeds are
          derived up front and failure handling (logging, reduction,
          corpus writes) stays serial in case order, so every output —
          log lines, summary, corpus — is byte-identical at any job
          count *)
}

(** 200 runs, seed 0, size 30, every level, no chaos, reduction on,
    no corpus dir, fuel 1e6, no pinpointing, 1 job. *)
val default_config : config

(** Same spelling as [eprec --chaos]: ["chaos:drop-instr@2"], position
    defaulting to 0. *)
val parse_chaos :
  string -> (int * Epre_harness.Harness.named_pass, string) result

(** The reducer's oracle for one failure signature: the candidate
    prints, compiles, and {!Oracle.check} (restricted to [level], no
    pinpointing) still reports a failure of class [cls]. *)
val still_fails :
  Oracle.config ->
  level:Epre.Pipeline.level ->
  cls:Oracle.failure_class ->
  Epre_frontend.Ast.program ->
  bool

type summary = {
  runs : int;
  seed : int;
  chaos : string option;
  cases_failed : int;  (** generated programs with at least one failure *)
  failures : Epre_harness.Harness.record list;
      (** one per (case, level) failure, via {!Oracle.failure_record} —
          seed / level / class / repro provenance in [record.meta] *)
  reduced : int;  (** failures that went through the reducer *)
  saved : string list;  (** corpus entry directories written *)
}

(** [run config] executes the campaign. [log] receives one progress line
    per failing case (and nothing else).
    @raise Invalid_argument when [config.chaos] does not parse — the CLI
    validates first via {!parse_chaos}. *)
val run : ?log:(string -> unit) -> config -> summary

(** Deterministic verdict document: counts by class plus the failure
    records ([{"runs":..., "seed":..., "chaos":..., "cases_failed":...,
    "reduced":..., "classes":{...}, "failures":[...]}]). *)
val summary_to_json : summary -> string

type replay_result =
  | Still_fails of Oracle.failure_class
  | Class_changed of {
      expected : Oracle.failure_class;
      got : Oracle.failure_class;
    }
  | Fixed  (** the oracle reports nothing — the bug is gone *)
  | Broken of string  (** the reproducer no longer compiles *)

val replay_result_to_string : replay_result -> string

(** Re-run one corpus entry's reduced reproducer against its stored
    (level, chaos) oracle configuration. [fuel] defaults as in
    {!default_config}. [Error] means the entry itself could not be
    loaded. *)
val replay : ?fuel:int -> string -> (Corpus.entry * replay_result, string) result
