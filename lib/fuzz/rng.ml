(** SplitMix64. See the interface for why not [Stdlib.Random]. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Gammas must be odd; mixing keeps the split streams decorrelated. *)
let mix_gamma z =
  let z = Int64.logor (mix64 z) 1L in
  let flips = Int64.logxor z (Int64.shift_right_logical z 1) in
  (* Popcount of the bit transitions; SplitMix64 patches low-entropy gammas. *)
  let rec popcount acc v =
    if Int64.equal v 0L then acc
    else popcount (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  if popcount 0 flips < 24 then Int64.logxor z 0xAAAAAAAAAAAAAAAAL else z

let create seed = { state = mix64 (Int64.of_int seed); gamma = golden_gamma }

let next t =
  t.state <- Int64.add t.state t.gamma;
  mix64 t.state

let split t =
  let state = next t in
  let gamma = mix_gamma (next t) in
  { state; gamma }

let int t bound =
  if bound <= 0 then 0
  else
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod bound

let range t lo hi = lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let pick t xs = List.nth xs (int t (List.length xs))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.weighted: empty choice list"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n choices
