(** Greedy AST delta debugging. See the interface for the move set. *)

open Epre_frontend
module Tjson = Epre_telemetry.Tjson

type stats = {
  original_stmts : int;
  reduced_stmts : int;
  rounds : int;
  tried : int;
  accepted : int;
}

let stats_to_tjson s =
  Tjson.Obj
    [ ("original_stmts", Tjson.Int s.original_stmts);
      ("reduced_stmts", Tjson.Int s.reduced_stmts);
      ("rounds", Tjson.Int s.rounds);
      ("tried", Tjson.Int s.tried);
      ("accepted", Tjson.Int s.accepted) ]

(* One sweep = one move tried at every applicable site, highest index
   first. [attempt] returns the candidate or [None] when the move does
   not apply at that site. *)
let sweep ~still_fails ~tried ~accepted ~count ~attempt prog =
  let prog = ref prog in
  for i = count !prog - 1 downto 0 do
    match attempt !prog i with
    | None -> ()
    | Some candidate ->
      incr tried;
      if still_fails candidate then begin
        incr accepted;
        prog := candidate
      end
  done;
  !prog

let delete_stmt prog i = Ast_ops.transform_stmt prog i (fun _ -> Some [])

let hoist_stmt prog i =
  Ast_ops.transform_stmt prog i (fun s ->
      match s.Ast.desc with
      | Ast.If (_, then_, else_) -> Some (then_ @ else_)
      | Ast.While (_, body) -> Some body
      | Ast.For { body; _ } -> Some body
      | _ -> None)

let literal_candidates =
  [ Ast.Int_lit 0; Ast.Int_lit 1; Ast.Float_lit 0.0; Ast.Float_lit 1.0 ]

(* The literal sweep tries several replacements per site, so it manages
   its own inner loop instead of going through [sweep]'s single
   [attempt]. *)
let literal_sweep ~still_fails ~tried ~accepted prog =
  let prog = ref prog in
  for i = Ast_ops.expr_count !prog - 1 downto 0 do
    let replace lit =
      Ast_ops.transform_expr !prog i (fun e ->
          match e with
          | Ast.Int_lit _ | Ast.Float_lit _ -> None  (* already minimal *)
          | _ -> Some lit)
    in
    let rec try_lits = function
      | [] -> ()
      | lit :: rest -> (
        match replace lit with
        | None -> ()  (* site is a literal (or gone): no point trying others *)
        | Some candidate ->
          incr tried;
          if still_fails candidate then begin
            incr accepted;
            prog := candidate
          end
          else try_lits rest)
    in
    try_lits literal_candidates
  done;
  !prog

let run ?(max_rounds = 10) ~still_fails prog =
  (* A move can build an unprintable AST (e.g. a bare-literal expression
     statement); if the caller's oracle trips on it while printing, that
     candidate is simply rejected. *)
  let still_fails cand =
    try still_fails cand with Invalid_argument _ -> false
  in
  let original_stmts = Ast_ops.stmt_count prog in
  let tried = ref 0 and accepted = ref 0 in
  let rec rounds n prog =
    if n >= max_rounds then (prog, n)
    else begin
      let before = !accepted in
      let prog =
        sweep ~still_fails ~tried ~accepted ~count:Ast_ops.stmt_count
          ~attempt:delete_stmt prog
      in
      let prog =
        sweep ~still_fails ~tried ~accepted ~count:Ast_ops.stmt_count
          ~attempt:hoist_stmt prog
      in
      let prog = literal_sweep ~still_fails ~tried ~accepted prog in
      if !accepted = before then (prog, n + 1) else rounds (n + 1) prog
    end
  in
  let reduced, rounds = rounds 0 prog in
  ( reduced,
    { original_stmts;
      reduced_stmts = Ast_ops.stmt_count reduced;
      rounds;
      tried = !tried;
      accepted = !accepted } )
