(** Campaign driver. See the interface for the determinism contract. *)

module Frontend = Epre_frontend.Frontend
module Ast_ops = Epre_frontend.Ast_ops
module Harness = Epre_harness.Harness
module Chaos = Epre_harness.Chaos
module Report = Epre_harness.Report
module Pipeline = Epre.Pipeline
module Span = Epre_telemetry.Telemetry.Span
module Tjson = Epre_telemetry.Tjson

type config = {
  runs : int;
  seed : int;
  max_size : int;
  levels : Pipeline.level list;
  chaos : string option;
  reduce : bool;
  corpus_dir : string option;
  fuel : int;
  pinpoint : bool;
  jobs : int;
}

let default_config =
  { runs = 200; seed = 0; max_size = 30; levels = Pipeline.all_levels;
    chaos = None; reduce = true; corpus_dir = None; fuel = 1_000_000;
    pinpoint = false; jobs = 1 }

let parse_chaos spec =
  let name, pos =
    match String.index_opt spec '@' with
    | None -> (spec, Ok 0)
    | Some i ->
      ( String.sub spec 0 i,
        match
          int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
        with
        | Some p when p >= 0 -> Ok p
        | _ -> Error (Printf.sprintf "bad chaos position in %S" spec) )
  in
  match pos with
  | Error _ as e -> e
  | Ok pos -> (
    match Chaos.of_name name with
    | Some kind ->
      Ok (pos, { Harness.pass_name = name; run = Chaos.run kind })
    | None -> Error (Printf.sprintf "unknown chaos pass %S" name))

let compile_ast ast =
  match Frontend.compile_string (Ast_ops.print_program ast) with
  | prog -> Some prog
  | exception Frontend.Error _ -> None

let still_fails ocfg ~level ~cls ast =
  match compile_ast ast with
  | None -> false
  | Some prog ->
    let ocfg = { ocfg with Oracle.levels = [ level ]; pinpoint = false } in
    List.exists (fun (f : Oracle.failure) -> f.cls = cls) (Oracle.check ocfg prog)

type summary = {
  runs : int;
  seed : int;
  chaos : string option;
  cases_failed : int;
  failures : Harness.record list;
  reduced : int;
  saved : string list;
}

(* One oracle failure -> (record, corpus entry if a dir is configured). *)
let handle_failure (config : config) ocfg ~case_seed ~ast ~source (f : Oracle.failure) =
  let reduction, repro_ast =
    if config.reduce then begin
      let still = still_fails ocfg ~level:f.level ~cls:f.cls in
      let reduced, stats = Reduce.run ~still_fails:still ast in
      (Some stats, reduced)
    end
    else (None, ast)
  in
  let repro_source = Ast_ops.print_program repro_ast in
  (* Tag the entry with the first redundancy-audit rule the repro trips
     after a clean (chaos-free) optimization at the failing level —
     "clean" when the auditor finds nothing — so corpus triage can group
     entries by what the auditor thinks was left behind. The repro is a
     failure by construction, so every step is allowed to blow up; an
     unanalyzable repro simply carries no tag. *)
  let analyze_rule =
    match Frontend.compile_string repro_source with
    | exception _ -> None
    | reference -> (
      try
        let prog, _stats = Pipeline.optimized_copy ~level:f.level reference in
        let expect_pre = f.level <> Pipeline.Baseline in
        let _, diags =
          Epre_verify.Analyze.check_program ~expect_pre ~baseline:reference
            prog
        in
        match diags with
        | [] -> Some "clean"
        | d :: _ -> Some d.Epre_verify.Diag.rule
      with _ -> None)
  in
  let id = Corpus.entry_id ~seed:case_seed ~level:f.level ~cls:f.cls in
  let repro_path =
    Option.map
      (fun dir -> Filename.concat (Filename.concat dir id) "repro.mf")
      config.corpus_dir
  in
  let record =
    Oracle.failure_record ~seed:case_seed ?chaos:config.chaos ?repro:repro_path f
  in
  let record =
    match reduction with
    | None -> record
    | Some (st : Reduce.stats) ->
      { record with
        Harness.meta =
          record.Harness.meta
          @ [ ("fuzz_original_stmts", Tjson.Int st.original_stmts);
              ("fuzz_reduced_stmts", Tjson.Int st.reduced_stmts) ] }
  in
  let record =
    match analyze_rule with
    | None -> record
    | Some rule ->
      { record with
        Harness.meta = record.Harness.meta @ [ ("analyze_rule", Tjson.Str rule) ] }
  in
  let saved =
    match config.corpus_dir with
    | None -> None
    | Some dir ->
      let entry =
        { Corpus.id; seed = case_seed; level = f.level; cls = f.cls;
          chaos = config.chaos; reduction; record; repro_source }
      in
      Some (Corpus.save ~dir ~original:source entry)
  in
  (record, reduction <> None, saved)

let run ?(log = ignore) (config : config) =
  let chaos =
    match config.chaos with
    | None -> None
    | Some spec -> (
      match parse_chaos spec with
      | Ok c -> Some c
      | Error m -> invalid_arg ("Campaign.run: " ^ m))
  in
  let ocfg =
    { Oracle.levels = config.levels; chaos; chaos_name = config.chaos;
      fuel = config.fuel; pinpoint = config.pinpoint }
  in
  let gen_config = { Gen.default_config with max_stmts = config.max_size } in
  let master = Rng.create config.seed in
  Span.with_ ~kind:"fuzz" ~name:"campaign" @@ fun () ->
  let cases_failed = ref 0 in
  let failures = ref [] in
  let reduced = ref 0 in
  let saved = ref [] in
  (* Case seeds are derived from the master RNG up front, so the set of
     cases is identical however the checking is scheduled. *)
  let seeds = List.init config.runs (fun _ -> Rng.int master 1_000_000_000) in
  (* Generate + compile + oracle-check one case. Oracle checking is the
     campaign's hot path and touches no shared mutable state (the chaos
     RNG is derived per (seed, routine)), so it can run on a pool. *)
  let eval_case case_seed =
    Span.with_ ~kind:"fuzz-case" ~name:(Printf.sprintf "seed%d" case_seed)
    @@ fun () ->
    let ast = Gen.program ~config:gen_config case_seed in
    let source = Ast_ops.print_program ast in
    match Frontend.compile_string source with
    | exception Frontend.Error { line; message } ->
      `No_compile (Printf.sprintf "line %d: %s" line message)
    | prog -> (
      match Oracle.check ocfg prog with
      | [] -> `Clean
      | fs -> `Failing (fs, ast, source))
  in
  let results =
    if config.jobs >= 2 then
      Epre_service.Pool.with_pool ~jobs:config.jobs (fun pool ->
          Epre_service.Pool.map_list pool (fun s -> (s, eval_case s)) seeds)
    else List.map (fun s -> (s, eval_case s)) seeds
  in
  (* Failure handling (logging, reduction, corpus writes) stays serial and
     in case order, so log lines, entry directories and the summary are
     byte-identical at any job count. *)
  List.iter
    (fun (case_seed, result) ->
      match result with
      | `Clean -> ()
      | `No_compile detail ->
        (* The generator promises well-typed programs; a compile failure
           is itself a finding (frontend or generator bug). *)
        incr cases_failed;
        log
          (Printf.sprintf "case seed %d: does not compile (%s)" case_seed
             detail);
        let record =
          { Harness.pass = "<frontend>"; routine = "<program>";
            outcome = Harness.Rolled_back (Harness.Pass_exception detail);
            duration_ms = 0.;
            meta = [ ("fuzz_seed", Tjson.Int case_seed) ] }
        in
        failures := record :: !failures
      | `Failing (fs, ast, source) ->
        incr cases_failed;
        List.iter
          (fun (f : Oracle.failure) ->
            log
              (Printf.sprintf "case seed %d: %s at %s (%s)" case_seed
                 (Oracle.class_to_string f.cls)
                 (Pipeline.level_to_string f.level)
                 f.pass);
            let record, was_reduced, entry_dir =
              handle_failure config ocfg ~case_seed ~ast ~source f
            in
            failures := record :: !failures;
            if was_reduced then incr reduced;
            match entry_dir with
            | Some d -> saved := d :: !saved
            | None -> ())
          fs)
    results;
  { runs = config.runs; seed = config.seed; chaos = config.chaos;
    cases_failed = !cases_failed; failures = List.rev !failures;
    reduced = !reduced; saved = List.rev !saved }

let summary_to_json s =
  let classes =
    List.fold_left
      (fun acc (r : Harness.record) ->
        let cls =
          match List.assoc_opt "fuzz_class" r.meta with
          | Some (Tjson.Str c) -> c
          | _ -> "compile-error"
        in
        let n = match List.assoc_opt cls acc with Some n -> n | None -> 0 in
        (cls, n + 1) :: List.remove_assoc cls acc)
      [] s.failures
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Tjson.to_string
    (Tjson.Obj
       [ ("runs", Tjson.Int s.runs);
         ("seed", Tjson.Int s.seed);
         ( "chaos",
           match s.chaos with None -> Tjson.Null | Some c -> Tjson.Str c );
         ("cases_failed", Tjson.Int s.cases_failed);
         ("failures_found", Tjson.Int (List.length s.failures));
         ("reduced", Tjson.Int s.reduced);
         ("classes", Tjson.Obj (List.map (fun (c, n) -> (c, Tjson.Int n)) classes));
         ("failures", Tjson.Arr (List.map Report.record_to_tjson s.failures)) ])

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

type replay_result =
  | Still_fails of Oracle.failure_class
  | Class_changed of {
      expected : Oracle.failure_class;
      got : Oracle.failure_class;
    }
  | Fixed
  | Broken of string

let replay_result_to_string = function
  | Still_fails c -> "still-fails (" ^ Oracle.class_to_string c ^ ")"
  | Class_changed { expected; got } ->
    Printf.sprintf "class-changed (%s -> %s)"
      (Oracle.class_to_string expected)
      (Oracle.class_to_string got)
  | Fixed -> "fixed"
  | Broken m -> "broken: " ^ m

let replay ?(fuel = default_config.fuel) dir =
  match Corpus.load dir with
  | Error _ as e -> e
  | Ok entry -> (
    let verdict =
      match Frontend.compile_string entry.Corpus.repro_source with
      | exception Frontend.Error { line; message } ->
        Broken (Printf.sprintf "line %d: %s" line message)
      | prog -> (
        let chaos =
          match entry.Corpus.chaos with
          | None -> Ok None
          | Some spec -> Result.map Option.some (parse_chaos spec)
        in
        match chaos with
        | Error m -> Broken m
        | Ok chaos -> (
          let ocfg =
            { Oracle.levels = [ entry.Corpus.level ]; chaos;
              chaos_name = entry.Corpus.chaos; fuel; pinpoint = false }
          in
          match Oracle.check ocfg prog with
          | [] -> Fixed
          | fs ->
            if
              List.exists
                (fun (f : Oracle.failure) -> f.cls = entry.Corpus.cls)
                fs
            then Still_fails entry.Corpus.cls
            else
              Class_changed
                { expected = entry.Corpus.cls; got = (List.hd fs).cls }))
    in
    Ok (entry, verdict))
