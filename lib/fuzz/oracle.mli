(** The differential oracle — the fuzzer's notion of "this program found a
    bug".

    A candidate program is run through every optimization level of
    [Epre.Pipeline] (optionally with a chaos pass spliced in), each level
    supervised by the harness, and the optimized program's observable
    behaviour (return value and [emit] trace of [main], via the
    interpreter) is compared against the unoptimized reference. Failures
    fall into four classes:

    - {!Pass_exception}: a pass raised;
    - {!Ir_violation}: a pass produced IR the [Epre_verify] verifier
      rejects (the violated rule id is carried in [failure.rule]);
    - {!Behaviour_mismatch}: the optimized program terminates but
      disagrees with the reference (beyond the harness's float
      tolerance);
    - {!Fuel_divergence}: the reference terminates but the optimized
      program exhausts a fuel budget derived from the reference run —
      the optimizer manufactured a (near-)infinite loop.

    Two tiers: the fast tier above runs per check; when
    [config.pinpoint] is set, a failing level is replayed through
    [Harness.Bisect] to name the culprit pass and capture its IR delta. *)

type failure_class =
  | Pass_exception
  | Ir_violation
  | Behaviour_mismatch
  | Fuel_divergence

val class_to_string : failure_class -> string

val class_of_string : string -> failure_class option

type failure = {
  level : Epre.Pipeline.level;
  cls : failure_class;
  pass : string;  (** offending pass when known, otherwise the level name *)
  routine : string;  (** routine it was detected in, or ["<program>"] *)
  detail : string;
  rule : string option;
      (** the verifier rule id behind an {!Ir_violation}, when known *)
  culprit : Epre_harness.Bisect.failure option;  (** pinpoint tier *)
}

type config = {
  levels : Epre.Pipeline.level list;
  chaos : (int * Epre_harness.Harness.named_pass) option;
      (** a fault spliced at a 0-based position into every level's
          sequence — the self-test mode: the oracle must catch it *)
  chaos_name : string option;  (** its CLI spelling, for provenance *)
  fuel : int;  (** budget for the reference interpretation *)
  pinpoint : bool;
}

(** Every level, no chaos, [Interp.default_fuel], no pinpointing. *)
val default_config : config

(** Empty list = the program survives every level. The input program is
    not modified (each level runs on a copy). A program whose {e
    reference} run already fails (out of fuel before any optimization)
    yields no failures — the oracle cannot differentiate it. *)
val check : config -> Epre_ir.Program.t -> failure list

(** The failure as a harness record: [outcome = Rolled_back], with the
    oracle's provenance ([fuzz_seed], [fuzz_level], [fuzz_class], the
    verifier rule id as [fuzz_rule] for IR violations, chaos spelling and
    reproducer path when given) in [record.meta] — one Tjson schema for
    supervised-run reports and fuzz verdicts. The meta keys round-trip
    through the corpus's [meta.json]. *)
val failure_record :
  seed:int -> ?chaos:string -> ?repro:string -> failure -> Epre_harness.Harness.record
