(** Seeded program generator for the mini language — the fuzzer's front
    half, generalizing the test suite's original QCheck generator: float
    scalars and a float array, a 2-D array, helper routine calls, [while]
    loops and [downto]/[step] loops, all reproducible from one [int] seed
    via the splittable [Rng].

    Every generated program is well-typed and trap-free by construction:

    - divisions and [mod] take a [1 + abs e] (or [1.0 + e]) divisor;
    - array subscripts go through [1 + mod(abs e, dim)];
    - loops are counted with literal bounds ([while] over a dedicated
      counter the body cannot otherwise assign), so execution is finite;
    - floats never reach control flow, subscripts or [int(...)], and
      float expressions are built only from non-negative atoms under
      monotone operators with clamped assignments — so reassociation
      noise stays relative (no catastrophic cancellation, no NaN/inf) and
      the differential oracle's tolerance-based comparison is sound;
    - observability: the program tail [emit]s every scalar and sample
      array cells, and [main] returns an integer checksum. *)

type config = {
  max_stmts : int;  (** budget for [main]'s generated body (the CLI's [--max-size]) *)
  stmt_depth : int;  (** nesting depth of ifs and loops *)
  expr_depth : int;
  helpers : int;  (** maximum number of generated helper routines *)
}

val default_config : config

(** Deterministic: same config and seed, same program. *)
val program : ?config:config -> int -> Epre_frontend.Ast.program

(** [Ast_ops.print_program (program seed)] — the replayable source text. *)
val source : ?config:config -> int -> string
