(** Durable job journal — the write-ahead log behind [eprec serve --resume].

    An append-only JSONL file (by convention [<cache-dir>/journal.jsonl])
    recording the lifecycle of every job in a serve batch:

    {v {"type":"accepted","seq":3,"id":"job-3","key":"<md5 of raw line>","run":"<run id>","line":7}
       {"type":"started","seq":3,"id":"job-3","key":"...","run":"...","fingerprint":"epre-pipeline-v1|..."}
       {"type":"done","seq":3,"id":"job-3","key":"...","run":"...","outcome":"ok"}
       {"type":"failed","seq":4,"id":"job-4","key":"...","run":"...","outcome":"error"} v}

    [seq] is the job's 1-based position among the non-blank input lines,
    [key] the MD5 of the raw input line (content hash), [fingerprint] the
    pipeline fingerprint the job was dispatched against. [done]/[failed]
    records are appended only {e after} the job's result line has been
    flushed to the output stream, so on resume a [done]/[failed] entry
    proves the line was emitted and the job is skipped; an [accepted] or
    [started] entry without one proves it was not, and the job re-runs
    exactly once. (A crash inside the flush-then-journal window can
    re-emit an already-flushed line — the protocol is at-least-once per
    line, exactly-once per journaled line.)

    [run] stamps every record with the id of the serve incarnation that
    wrote it. A non-resume open mints a fresh run id and — when no live
    process still holds the journal's advisory lock — truncates the file,
    so records from a {e completed} previous batch over the same input
    can never satisfy a later [--resume] (same [(seq, key)], different
    batch) and silently swallow its lines. A resume open continues the
    last run id found in the file, so chained resumes honor every record
    of the same logical batch; {!emitted} filters by run id, keeping
    interleaved records from a concurrent serve (which the lock left
    untruncated) out of the replay set.

    Each {!append} issues a single [write] on an [O_APPEND] descriptor
    followed by [fsync], so records from concurrent serves interleave at
    line granularity and survive the process. {!load} tolerates a torn
    trailing line (a crash mid-append) by skipping undecodable lines. *)

type t

type entry = {
  kind : string;  (** ["accepted"] | ["started"] | ["done"] | ["failed"] *)
  seq : int;
  id : string;
  key : string;
  fields : (string * Epre_telemetry.Tjson.t) list;
      (** extra fields: ["run"], ["line"], ["fingerprint"], ["outcome"], ... *)
}

val entry :
  kind:string ->
  seq:int ->
  id:string ->
  key:string ->
  ?fields:(string * Epre_telemetry.Tjson.t) list ->
  unit ->
  entry

(** Open (creating if absent) for appending. [`Fresh] (default) starts a
    new run: mints a run id and truncates any stale journal no live
    process holds. [`Resume] continues the last run recorded in the file
    (minting a fresh id only if the journal is empty) and never
    truncates. The journal holds an advisory [lockf] lock on the file
    for its lifetime. *)
val open_ : ?mode:[ `Fresh | `Resume ] -> path:string -> unit -> t

val path : t -> string

(** The run id this journal stamps on every appended record. *)
val run : t -> string

(** Append the entries as JSONL in one write, then [fsync]. No-op on []. *)
val append : t -> entry list -> unit

(** Decode the journal's current on-disk contents through its own file
    descriptor (an [open_in] on the path would drop this process's
    advisory lock when closed — POSIX fcntl semantics). Same tolerance
    as {!load}. *)
val entries : t -> entry list

val close : t -> unit

(** Decode the journal at [path]: [[]] when the file does not exist;
    undecodable lines (torn tail, foreign garbage) are skipped. *)
val load : path:string -> entry list

(** The run id a record was stamped with, if any. *)
val run_of : entry -> string option

(** The run id of the last stamped entry — the incarnation a [`Resume]
    open continues. *)
val last_run : entry list -> string option

(** The [(seq, key)] pairs of [done]/[failed] entries in [entries] — the
    jobs whose result lines provably reached the output stream. With
    [?run], only entries stamped with that run id count (records from
    other serve incarnations sharing the file are ignored). *)
val emitted : ?run:string -> entry list -> (int * string) list
