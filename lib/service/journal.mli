(** Durable job journal — the write-ahead log behind [eprec serve --resume].

    An append-only JSONL file (by convention [<cache-dir>/journal.jsonl])
    recording the lifecycle of every job in a serve batch:

    {v {"type":"accepted","seq":3,"id":"job-3","key":"<md5 of raw line>","line":7}
       {"type":"started","seq":3,"id":"job-3","key":"...","fingerprint":"epre-pipeline-v1|..."}
       {"type":"done","seq":3,"id":"job-3","key":"...","outcome":"ok"}
       {"type":"failed","seq":4,"id":"job-4","key":"...","outcome":"error"} v}

    [seq] is the job's 1-based position among the non-blank input lines,
    [key] the MD5 of the raw input line (content hash), [fingerprint] the
    pipeline fingerprint the job was dispatched against. [done]/[failed]
    records are appended only {e after} the job's result line has been
    flushed to the output stream, so on resume a [done]/[failed] entry
    proves the line was emitted and the job is skipped; an [accepted] or
    [started] entry without one proves it was not, and the job re-runs
    exactly once. (A crash inside the flush-then-journal window can
    re-emit an already-flushed line — the protocol is at-least-once per
    line, exactly-once per journaled line.)

    Each {!append} issues a single [write] on an [O_APPEND] descriptor
    followed by [fsync], so records from concurrent serves interleave at
    line granularity and survive the process. {!load} tolerates a torn
    trailing line (a crash mid-append) by skipping undecodable lines. *)

type t

type entry = {
  kind : string;  (** ["accepted"] | ["started"] | ["done"] | ["failed"] *)
  seq : int;
  id : string;
  key : string;
  fields : (string * Epre_telemetry.Tjson.t) list;
      (** extra fields: ["line"], ["fingerprint"], ["outcome"], ... *)
}

val entry :
  kind:string ->
  seq:int ->
  id:string ->
  key:string ->
  ?fields:(string * Epre_telemetry.Tjson.t) list ->
  unit ->
  entry

(** Open (creating if absent) for appending. *)
val open_ : path:string -> t

val path : t -> string

(** Append the entries as JSONL in one write, then [fsync]. No-op on []. *)
val append : t -> entry list -> unit

val close : t -> unit

(** Decode the journal at [path]: [[]] when the file does not exist;
    undecodable lines (torn tail, foreign garbage) are skipped. *)
val load : path:string -> entry list

(** The [(seq, key)] pairs of [done]/[failed] entries in [entries] — the
    jobs whose result lines provably reached the output stream. *)
val emitted : entry list -> (int * string) list
