(** Persistent content-addressed compilation cache. See the interface for
    the on-disk layout and failure semantics; the locking protocol is
    described inline. *)

module J = Epre_telemetry.Tjson

let schema = "epre/cache-entry/v1"

let metrics_routine = "<service>"

let count name = Epre_telemetry.Metrics.incr ~routine:metrics_routine ~name

let now_ns () = Epre_telemetry.Telemetry.Clock.now_ns ()

type t = {
  dir : string;
  max_entries : int;
  max_bytes : int option;
  sweep_age_s : float;
  lock : Mutex.t;
  mutable lock_fd : Unix.file_descr option;
      (** cross-process write lock on [<dir>/.lock]; opened on first use
          and kept open for the cache's lifetime — closing *any* fd on a
          file drops all of the process's [lockf] locks on it *)
  mutable entries : int;  (** in-process estimate; refreshed by eviction *)
  mutable bytes : int;  (** same, in entry-file bytes *)
  mutable scanned : bool;  (** [entries]/[bytes] initialized from disk *)
}

let default_dir () =
  match Sys.getenv_opt "EPREC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "eprec"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some d when d <> "" -> Filename.concat (Filename.concat d ".cache") "eprec"
      | _ -> ".eprec-cache"))

let dir t = t.dir

let key ~iloc ~fingerprint =
  Digest.to_hex (Digest.string (fingerprint ^ "\x00" ^ iloc))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_path t k = Filename.concat (Filename.concat t.dir (String.sub k 0 2)) (k ^ ".json")

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* Fold [f] over every file directly inside a two-hex-char shard of
   [dir]. *)
let iter_shard_files t f =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.iter
      (fun sub ->
        let subdir = Filename.concat t.dir sub in
        if String.length sub = 2 && Sys.is_directory subdir then
          Array.iter (fun file -> f (Filename.concat subdir file)) (Sys.readdir subdir))
      (Sys.readdir t.dir)

(* Every entry file under [dir], as (path, mtime, size). *)
let scan_entries t =
  let acc = ref [] in
  iter_shard_files t (fun p ->
      if Filename.check_suffix p ".json" then
        match Unix.stat p with
        | st -> acc := (p, st.Unix.st_mtime, st.Unix.st_size) :: !acc
        | exception Unix.Unix_error _ -> ());
  !acc

let entry_count t = List.length (scan_entries t)

let byte_count t =
  List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 (scan_entries t)

(* A writer that is still alive holds an [lockf] region lock on its temp
   file (taken in [store]). [F_TEST] from another process reports it as
   held, so the sweeper can spare it even when the file is older than the
   age cutoff (e.g. a writer stalled on a slow disk). EACCES/EAGAIN both
   mean "held" depending on the platform. NB: this must only ever be
   called on files that failed the age check — opening and closing an fd
   on a path this process is itself writing would drop our own locks
   (POSIX lockf semantics), but our own in-flight temp files are
   milliseconds old and never reach the lock test. *)
let locked_elsewhere p =
  match Unix.openfile p [ Unix.O_RDWR; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.lockf fd Unix.F_TEST 0 with
        | () -> false
        | exception Unix.Unix_error ((Unix.EACCES | Unix.EAGAIN), _, _) -> true
        | exception Unix.Unix_error _ -> false)

(* Crash recovery: a writer that died between open_temp_file and rename
   leaves an orphaned entry*.tmp behind. Sweep only files older than
   [max_age_s] (defaulting to the cache's [sweep_age_s]) — in-flight temp
   files of a live concurrent process are milliseconds old and must
   survive the sweep — and even past the cutoff, spare files whose writer
   still holds its [lockf] lock (alive but slow). *)
let sweep_temp ?max_age_s t =
  let max_age_s = match max_age_s with Some a -> a | None -> t.sweep_age_s in
  let cutoff = Unix.gettimeofday () -. max_age_s in
  let swept = ref 0 in
  iter_shard_files t (fun p ->
      if Filename.check_suffix p ".tmp" then
        match Unix.stat p with
        | st when st.Unix.st_mtime <= cutoff ->
          if locked_elsewhere p then count "cache.tmp_spared"
          else begin
            remove_quietly p;
            count "cache.tmp_swept";
            incr swept
          end
        | _ -> ()
        | exception Unix.Unix_error _ -> ());
  !swept

let create ?(max_entries = 65536) ?max_bytes ?(sweep_age_s = 60.0) ~dir () =
  let t =
    { dir; max_entries = max max_entries 1;
      max_bytes = Option.map (fun b -> max b 1) max_bytes;
      sweep_age_s = Float.max 0.0 sweep_age_s;
      lock = Mutex.create (); lock_fd = None; entries = 0; bytes = 0;
      scanned = false }
  in
  ignore (sweep_temp t);
  t

(* Serialize writers across processes. Must be called with [t.lock] held —
   the lock order is fixed (in-process mutex, then file lock) so two
   domains of one process can never deadlock against another process.
   Readers never take either lock: temp-write + rename keeps every entry
   file atomic for them. *)
let with_file_lock t f =
  let fd =
    match t.lock_fd with
    | Some fd -> fd
    | None ->
      mkdir_p t.dir;
      let fd =
        Unix.openfile (Filename.concat t.dir ".lock")
          [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
      in
      t.lock_fd <- Some fd;
      fd
  in
  let wait0 = now_ns () in
  Unix.lockf fd Unix.F_LOCK 0;
  Epre_telemetry.Histogram.observe_since ~name:"cache.lock_wait" wait0;
  Fun.protect
    ~finally:(fun () ->
      try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Decode and fully validate one entry file. Any failure means the entry
   is poisoned. *)
let decode ~key:k text =
  match J.parse text with
  | Error _ -> None
  | Ok j ->
    let str f = match J.member f j with Some (J.Str s) -> Some s | _ -> None in
    let ( let* ) = Option.bind in
    let* () = if str "schema" = Some schema then Some () else None in
    let* () = if str "key" = Some k then Some () else None in
    let* iloc = str "iloc" in
    let* stats =
      match J.member "stats" j with
      | Some s -> Epre.Pipeline.stats_of_json s
      | None -> None
    in
    let* routine =
      match Epre_ir.Ir_text.parse_program iloc with
      | prog -> (
        match Epre_ir.Program.routines prog with [ r ] -> Some r | _ -> None)
      | exception _ -> None
    in
    let* () =
      if routine.Epre_ir.Routine.name = stats.Epre.Pipeline.routine then Some ()
      else None
    in
    Some (routine, iloc, stats)

let find t ~key:k =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Epre_telemetry.Histogram.observe_since ~name:"cache.read" t0)
  @@ fun () ->
  let path = entry_path t k in
  match read_file path with
  | exception Sys_error _ ->
    count "cache.misses";
    None
  | text -> (
    match decode ~key:k text with
    | Some hit ->
      count "cache.hits";
      Some hit
    | None ->
      (* Poisoned: discard and recompile rather than crash or replay
         garbage. *)
      remove_quietly path;
      count "cache.poisoned";
      count "cache.misses";
      None)

let encode ~key:k ~fingerprint ~iloc ~stats =
  J.to_string
    (J.Obj
       [ ("schema", J.Str schema);
         ("key", J.Str k);
         ("fingerprint", J.Str fingerprint);
         ("iloc", J.Str iloc);
         ("stats", Epre.Pipeline.stats_to_json stats) ])

let refresh_from_disk t =
  let entries = scan_entries t in
  t.entries <- List.length entries;
  t.bytes <- List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries;
  t.scanned <- true

(* Drop the oldest entries (by mtime) until both bounds hold, each with
   10% headroom so a hot cache doesn't evict on every store. An eviction
   that the entry-count bound forces counts as [cache.evict_age]; one the
   byte budget forces counts as [cache.evict_size] (both also bump the
   total). Called with [t.lock] and the file lock held; rescans first
   because other processes may have added entries since our estimate. *)
let evict t =
  let entries =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) (scan_entries t)
  in
  t.entries <- List.length entries;
  t.bytes <- List.fold_left (fun acc (_, _, sz) -> acc + sz) 0 entries;
  let count_target =
    if t.entries > t.max_entries then max 1 (t.max_entries * 9 / 10)
    else t.max_entries
  in
  let bytes_target =
    match t.max_bytes with
    | Some b when t.bytes > b -> max 1 (b * 9 / 10)
    | Some b -> b
    | None -> max_int
  in
  List.iter
    (fun (p, _, sz) ->
      if t.entries > count_target || t.bytes > bytes_target then begin
        let reason =
          if t.entries > count_target then "cache.evict_age"
          else "cache.evict_size"
        in
        remove_quietly p;
        count "cache.evictions";
        count reason;
        t.entries <- t.entries - 1;
        t.bytes <- t.bytes - sz
      end)
    entries

let store t ~key:k ~fingerprint ~iloc ~stats =
  let t0 = now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Epre_telemetry.Histogram.observe_since ~name:"cache.write" t0)
  @@ fun () ->
  let path = entry_path t k in
  let text = encode ~key:k ~fingerprint ~iloc ~stats in
  locked t (fun () ->
      mkdir_p (Filename.dirname path);
      with_file_lock t (fun () ->
          if not t.scanned then refresh_from_disk t;
          let fresh = not (Sys.file_exists path) in
          (* Temp-write + rename: readers (other domains or processes) see
             either the old entry or the whole new one, never a torn
             file. *)
          let tmp, oc =
            Filename.open_temp_file ~temp_dir:(Filename.dirname path)
              ~mode:[ Open_binary ] "entry" ".tmp"
          in
          (* Mark the temp file as live for other processes' sweepers
             ([locked_elsewhere]); the lock dies with the channel's fd. *)
          (try Unix.lockf (Unix.descr_of_out_channel oc) Unix.F_TLOCK 0
           with Unix.Unix_error _ -> ());
          (try
             output_string oc text;
             output_char oc '\n';
             close_out oc;
             Sys.rename tmp path
           with e ->
             close_out_noerr oc;
             remove_quietly tmp;
             raise e);
          count "cache.stores";
          if fresh then begin
            t.entries <- t.entries + 1;
            t.bytes <- t.bytes + String.length text + 1;
            let over_bytes =
              match t.max_bytes with Some b -> t.bytes > b | None -> false
            in
            if t.entries > t.max_entries || over_bytes then evict t
          end))

(* ------------------------------------------------------------------ *)
(* Chaos hooks *)

let corrupt t ~key:k =
  let path = entry_path t k in
  if Sys.file_exists path then begin
    (* Deliberately non-atomic in-place overwrite — the torn-file poison
       that [find]'s recovery path must absorb. *)
    (try
       let oc = open_out_bin path in
       output_string oc "chaos:cache-corrupt garbage";
       close_out oc
     with Sys_error _ -> ());
    count "cache.corrupted"
  end

let hold_lock t ~ms =
  locked t (fun () ->
      with_file_lock t (fun () -> Unix.sleepf (ms /. 1000.0)))
