(** Persistent content-addressed compilation cache. See the interface for
    the on-disk layout and failure semantics. *)

module J = Epre_telemetry.Tjson

let schema = "epre/cache-entry/v1"

let metrics_routine = "<service>"

let count name = Epre_telemetry.Metrics.incr ~routine:metrics_routine ~name

type t = {
  dir : string;
  max_entries : int;
  lock : Mutex.t;
  mutable entries : int;  (** in-process estimate; refreshed by eviction *)
  mutable scanned : bool;  (** [entries] initialized from disk *)
}

let default_dir () =
  match Sys.getenv_opt "EPREC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "eprec"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some d when d <> "" -> Filename.concat (Filename.concat d ".cache") "eprec"
      | _ -> ".eprec-cache"))

let create ?(max_entries = 65536) ~dir () =
  { dir; max_entries = max max_entries 1; lock = Mutex.create (); entries = 0;
    scanned = false }

let dir t = t.dir

let key ~iloc ~fingerprint =
  Digest.to_hex (Digest.string (fingerprint ^ "\x00" ^ iloc))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_path t k = Filename.concat (Filename.concat t.dir (String.sub k 0 2)) (k ^ ".json")

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

(* Every entry file under [dir], as (path, mtime). *)
let scan_entries t =
  if Sys.file_exists t.dir && Sys.is_directory t.dir then
    Array.to_list (Sys.readdir t.dir)
    |> List.concat_map (fun sub ->
           let subdir = Filename.concat t.dir sub in
           if String.length sub = 2 && Sys.is_directory subdir then
             Array.to_list (Sys.readdir subdir)
             |> List.filter_map (fun f ->
                    if Filename.check_suffix f ".json" then
                      let p = Filename.concat subdir f in
                      match Unix.stat p with
                      | st -> Some (p, st.Unix.st_mtime)
                      | exception Unix.Unix_error _ -> None
                    else None)
           else [])
  else []

let entry_count t = List.length (scan_entries t)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* Decode and fully validate one entry file. Any failure means the entry
   is poisoned. *)
let decode ~key:k text =
  match J.parse text with
  | Error _ -> None
  | Ok j ->
    let str f = match J.member f j with Some (J.Str s) -> Some s | _ -> None in
    let ( let* ) = Option.bind in
    let* () = if str "schema" = Some schema then Some () else None in
    let* () = if str "key" = Some k then Some () else None in
    let* iloc = str "iloc" in
    let* stats =
      match J.member "stats" j with
      | Some s -> Epre.Pipeline.stats_of_json s
      | None -> None
    in
    let* routine =
      match Epre_ir.Ir_text.parse_program iloc with
      | prog -> (
        match Epre_ir.Program.routines prog with [ r ] -> Some r | _ -> None)
      | exception _ -> None
    in
    let* () =
      if routine.Epre_ir.Routine.name = stats.Epre.Pipeline.routine then Some ()
      else None
    in
    Some (routine, iloc, stats)

let find t ~key:k =
  let path = entry_path t k in
  match read_file path with
  | exception Sys_error _ ->
    count "cache.misses";
    None
  | text -> (
    match decode ~key:k text with
    | Some hit ->
      count "cache.hits";
      Some hit
    | None ->
      (* Poisoned: discard and recompile rather than crash or replay
         garbage. *)
      remove_quietly path;
      count "cache.poisoned";
      count "cache.misses";
      None)

let encode ~key:k ~fingerprint ~iloc ~stats =
  J.to_string
    (J.Obj
       [ ("schema", J.Str schema);
         ("key", J.Str k);
         ("fingerprint", J.Str fingerprint);
         ("iloc", J.Str iloc);
         ("stats", Epre.Pipeline.stats_to_json stats) ])

(* Drop the oldest entries (by mtime) until 90% of the bound. Called with
   [t.lock] held. *)
let evict t =
  let entries =
    List.sort (fun (_, a) (_, b) -> compare a b) (scan_entries t)
  in
  let total = List.length entries in
  t.entries <- total;
  let target = max 1 (t.max_entries * 9 / 10) in
  if total > t.max_entries then begin
    let doomed = total - target in
    List.iteri
      (fun i (p, _) ->
        if i < doomed then begin
          remove_quietly p;
          count "cache.evictions";
          t.entries <- t.entries - 1
        end)
      entries
  end

let store t ~key:k ~fingerprint ~iloc ~stats =
  let path = entry_path t k in
  let text = encode ~key:k ~fingerprint ~iloc ~stats in
  locked t (fun () ->
      if not t.scanned then begin
        t.entries <- List.length (scan_entries t);
        t.scanned <- true
      end;
      mkdir_p (Filename.dirname path);
      let fresh = not (Sys.file_exists path) in
      (* Temp-write + rename: readers (other domains or processes) see
         either the old entry or the whole new one, never a torn file. *)
      let tmp, oc =
        Filename.open_temp_file ~temp_dir:(Filename.dirname path) ~mode:[ Open_binary ]
          "entry" ".tmp"
      in
      (try
         output_string oc text;
         output_char oc '\n';
         close_out oc;
         Sys.rename tmp path
       with e ->
         close_out_noerr oc;
         remove_quietly tmp;
         raise e);
      count "cache.stores";
      if fresh then begin
        t.entries <- t.entries + 1;
        if t.entries > t.max_entries then evict t
      end)
