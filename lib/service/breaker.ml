(** Per-pass circuit breakers. See the interface for the state machine. *)

module Log = Epre_telemetry.Log
module Metrics = Epre_telemetry.Metrics
module Recorder = Epre_telemetry.Recorder
module J = Epre_telemetry.Tjson

type state =
  | Closed of int  (** consecutive failures so far *)
  | Open of int  (** pipeline executions left until the half-open probe *)
  | Half_open

type t = {
  mutex : Mutex.t;
  threshold : int;
  probe_after : int;
  tbl : (string, state) Hashtbl.t;
}

let create ?(threshold = 3) ?(probe_after = 8) () =
  { mutex = Mutex.create (); threshold = max 1 threshold;
    probe_after = max 1 probe_after; tbl = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let state_name = function
  | Closed _ -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

let state t pass =
  Option.value (Hashtbl.find_opt t.tbl pass) ~default:(Closed 0)

(* Called with the mutex held; the log/metrics/recorder sinks are all
   thread-safe and non-blocking, so emitting under the lock is fine and
   keeps transitions totally ordered. *)
let transition t ~pass ~from ~to_ =
  Hashtbl.replace t.tbl pass to_;
  let from_name = state_name from and to_name = state_name to_ in
  Metrics.incr ~routine:"service" ~name:("breaker." ^ to_name);
  Log.warn ~event:"breaker.transition"
    ~fields:[ ("pass", J.Str pass); ("from", J.Str from_name); ("to", J.Str to_name) ]
    (Printf.sprintf "breaker %s: %s -> %s" pass from_name to_name);
  (* An opening breaker is an incident: capture the recent-event ring. *)
  match to_ with
  | Open _ -> ignore (Recorder.dump ~reason:("breaker-open: " ^ pass) ())
  | Closed _ | Half_open -> ()

let failure t ~pass =
  locked t @@ fun () ->
  match state t pass with
  | Closed n when n + 1 >= t.threshold ->
    transition t ~pass ~from:(Closed n) ~to_:(Open t.probe_after)
  | Closed n -> Hashtbl.replace t.tbl pass (Closed (n + 1))
  | Half_open -> transition t ~pass ~from:Half_open ~to_:(Open t.probe_after)
  | Open _ ->
    (* The pass ran despite an open breaker (e.g. a caller that does not
       consult [excluded]); stays open. *)
    ()

let success t ~pass =
  locked t @@ fun () ->
  match state t pass with
  | Closed 0 -> ()
  | Closed _ -> Hashtbl.replace t.tbl pass (Closed 0)
  | Half_open -> transition t ~pass ~from:Half_open ~to_:(Closed 0)
  | Open _ -> ()

let excluded t ~passes =
  locked t @@ fun () ->
  List.filter
    (fun pass ->
      match state t pass with
      | Closed _ | Half_open -> false
      | Open k when k <= 0 ->
        (* Countdown spent — probe_after executions were skipped. Probe
           time: let this pipeline run the pass and report back. *)
        transition t ~pass ~from:(Open k) ~to_:Half_open;
        false
      | Open k ->
        Hashtbl.replace t.tbl pass (Open (k - 1));
        true)
    passes

let snapshot t =
  locked t @@ fun () ->
  Hashtbl.fold (fun pass s acc -> (pass, state_name s) :: acc) t.tbl []
  |> List.sort compare
