(** A fixed-size pool of OCaml 5 domains with a work-stealing scheduler —
    the compile service's parallelism substrate.

    Each worker domain owns a {!Deque}; a batch submitted with [map] is
    dealt round-robin across the deques, workers drain their own deque
    LIFO and steal FIFO from the others when empty, and the submitter
    helps execute pending tasks while it waits (so nested [map] calls
    from inside a task cannot deadlock the pool).

    Ordering: [map] returns results indexed exactly like its input —
    execution order is nondeterministic, result order is not. Combined
    with per-routine independence (the call-graph signature pass made
    routine optimization order-free), this keeps parallel pipeline output
    byte-identical to the serial path.

    A pool of [jobs <= 1] spawns no domains: [map] runs inline on the
    caller, which is the reference serial path that `--jobs 1` and the
    benchmark baselines compare against.

    Safety contract for tasks: they may mutate only state reachable from
    their own input element (distinct routines, distinct jobs) plus the
    domain-safe [Epre_telemetry] registries. Tasks must not submit to a
    *different* pool that is itself waiting on this one. *)

type t

(** [create ~jobs ()]: [jobs >= 2] spawns [jobs] worker domains;
    [jobs <= 1] creates an inline pool with no domains. *)
val create : jobs:int -> unit -> t

(** [Domain.recommended_domain_count ()] — the default for every [--jobs]
    flag. *)
val default_jobs : unit -> int

(** Number of worker domains (0 for an inline pool). *)
val size : t -> int

(** Per-element result of {!map_outcomes}. *)
type 'a outcome =
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace  (** the application raised *)
  | Cancelled  (** skipped after an earlier-indexed failure ([halt]) *)

(** [map_outcomes pool f arr] applies [f] to every element on the pool and
    returns one {!outcome} per element, in input order; the call itself
    never raises and never loses an element. With [halt] (default false),
    a failure at index [i] cancels tasks with index [> i] that have not
    started yet. The guarantee is deterministic where it matters: every
    index below the batch's lowest failure always runs, so the [Done]
    prefix before the first [Failed] is schedule-independent — the same
    prefix a serial fail-fast loop would produce. Above the first failure,
    [Done]/[Failed]/[Cancelled] mix nondeterministically and halting
    callers must treat them uniformly. *)
val map_outcomes : ?halt:bool -> t -> ('a -> 'b) -> 'a array -> 'b outcome array

(** [map pool f arr] applies [f] to every element on the pool and returns
    the results in input order. If one or more applications raise, the
    lowest-indexed exception is re-raised after the whole batch has
    drained (no task of the batch is left running). *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [map] over a list. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_routines pool f prog] fans [f] over the program's routines —
    the per-routine [optimize] fan-out — returning results in routine
    order. *)
val map_routines : t -> (Epre_ir.Routine.t -> 'a) -> Epre_ir.Program.t -> 'a list

(** Cumulative wall-clock busy time. [busy_ns.(i)] is worker [i]'s time
    spent executing tasks since creation (or [reset_stats]);
    [helper_busy_ns] is task time executed by submitters while waiting.
    For an inline pool all time lands in [helper_busy_ns]. *)
type stats = { busy_ns : int64 array; helper_busy_ns : int64 }

val stats : t -> stats

val reset_stats : t -> unit

(** Stop and join every worker domain. Must not be called while a batch
    is outstanding. Idempotent. *)
val shutdown : t -> unit

(** [create], run, [shutdown] (exception-safe). *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
