(** The compile service. See the interface for the protocol; the
    correctness argument for each parallel/cached/fault path is inline. *)

open Epre_ir
module J = Epre_telemetry.Tjson
module Harness = Epre_harness.Harness
module Chaos = Epre_harness.Chaos
module Pipeline = Epre.Pipeline
module Clock = Epre_telemetry.Telemetry.Clock
module Hist = Epre_telemetry.Histogram
module Log = Epre_telemetry.Log
module Recorder = Epre_telemetry.Recorder

let metrics_routine = "<service>"

let count name = Epre_telemetry.Metrics.incr ~routine:metrics_routine ~name

type counts = { hits : int; misses : int }

let no_traffic = { hits = 0; misses = 0 }

let add_counts a b = { hits = a.hits + b.hits; misses = a.misses + b.misses }

(* Optimize one routine through the cache. The cache key is the digest of
   the routine's canonical pre-optimization text plus the level
   fingerprint; because [Ir_text] round-trips exactly, restoring a hit's
   stored text is byte-identical to recompiling. *)
let optimize_routine_cached ?cache ?poll ?wrap ~level ~fingerprint
    (r : Routine.t) =
  match cache with
  | None ->
    (Pipeline.optimize_routine ?poll ?wrap ~level r, { hits = 0; misses = 1 })
  | Some c -> (
    let before = Ir_text.routine_to_string r in
    let k = Cache.key ~iloc:before ~fingerprint in
    match Cache.find c ~key:k with
    | Some (cached, _iloc, stats) when cached.Routine.name = r.Routine.name ->
      Routine.restore r ~from:cached;
      (* A recompile would have bumped the metrics registry; replay the
         stored statistics so cached and cold runs report identically. *)
      Pipeline.record_metrics stats;
      (stats, { hits = 1; misses = 0 })
    | Some _ | None ->
      let stats = Pipeline.optimize_routine ?poll ?wrap ~level r in
      let after = Ir_text.routine_to_string r in
      Cache.store c ~key:k ~fingerprint ~iloc:after ~stats;
      (stats, { hits = 0; misses = 1 }))

let optimize_program ?cache ?pool ?(poll = fun () -> ()) ?wrap ?fingerprint
    ~level (p : Program.t) =
  (* A caller that transforms the pass list ([wrap]) must supply the
     matching fingerprint, or cached results from the standard pipeline
     would replay against a different transformation. *)
  let fingerprint =
    match fingerprint with
    | Some f -> f
    | None -> Pipeline.fingerprint ~level
  in
  let one r =
    poll ();
    optimize_routine_cached ?cache ~poll ?wrap ~level ~fingerprint r
  in
  let results =
    match pool with
    | Some pool -> Pool.map_routines pool one p
    | None -> List.map one (Program.routines p)
  in
  ( List.map fst results,
    List.fold_left (fun acc (_, c) -> add_counts acc c) no_traffic results )

(* ------------------------------------------------------------------ *)
(* Parallel supervised optimization *)

(* One worker per routine, each supervising its own full pass sequence
   against a frozen snapshot of the program with only its own live
   routine swapped in (the Ir tier's [Typecheck.infer] mutates scratch
   state on routines it reads, and the Exec tier interprets the whole
   context — both need a private copy).

   Exec tier: each worker's context starts byte-identical to the input
   program, so its reference observation and adaptive check fuel equal
   the serial run's; the context then evolves only through the worker's
   own routine. The serial pass-major loop validates against a program
   where *other* routines carry already-validated (hence
   observation-preserving) passes, so both sides compare the same
   behaviour — pass/rollback outcomes agree.

   keep_going = false: workers always run internally with
   [keep_going = true], recording every (pass, routine) outcome and a
   per-pass snapshot trail (via the harness dump hook, which fires after
   each application, post-rollback). After the batch drains — no job is
   abandoned mid-flight — we locate the first rollback in serial
   pass-major order, at pass j and routine i, and rewind every routine to
   exactly the state the serial fail-fast loop would have left: passes
   0..j applied at indexes <= i (with pass j rolled back on routine i —
   the trail entry already reflects that), passes 0..j-1 above i. Then
   raise [Supervision_failed] with routine i's record, as serial does.
   The scan order makes the failure choice deterministic regardless of
   schedule. *)
let supervise_parallel ?(inject = []) pool ~config ~level (p : Program.t) =
  let routines = Program.routines p in
  let snapshot = List.map Routine.copy routines in
  let worker_config = { config with Harness.keep_going = true } in
  let one (r : Routine.t) =
    let context =
      Program.create
        (List.map
           (fun (s : Routine.t) ->
             if s.Routine.name = r.Routine.name then r else Routine.copy s)
           snapshot)
    in
    let trail = ref [] in
    let dump _ (tr : Routine.t) = trail := Routine.copy tr :: !trail in
    let stats, records =
      Pipeline.optimize_supervised_routine ~dump ~inject ~record:false
        ~config:worker_config ~level ~context r
    in
    (stats, records, Array.of_list (List.rev !trail))
  in
  let results = Pool.map_routines pool one p in
  let per_routine = List.map (fun (_, rs, _) -> Array.of_list rs) results in
  let first_failure =
    if config.Harness.keep_going then None
    else begin
      let arrs = Array.of_list per_routine in
      let n_routines = Array.length arrs in
      let n_passes =
        Array.fold_left (fun m a -> max m (Array.length a)) 0 arrs
      in
      let found = ref None in
      (try
         for j = 0 to n_passes - 1 do
           for i = 0 to n_routines - 1 do
             if j < Array.length arrs.(i) then
               match arrs.(i).(j).Harness.outcome with
               | Harness.Rolled_back _ -> found := Some (j, i, arrs.(i).(j)); raise Exit
               | Harness.Passed -> ()
           done
         done
       with Exit -> ());
      !found
    end
  in
  match first_failure with
  | Some (j, i, record) ->
    ignore
      (Recorder.dump
         ~reason:
           (Printf.sprintf "supervision-failed: %s/%s" record.Harness.pass
              record.Harness.routine)
         ());
    let trails = Array.of_list (List.map (fun (_, _, t) -> t) results) in
    let originals = Array.of_list snapshot in
    List.iteri
      (fun idx (r : Routine.t) ->
        let upto = if idx <= i then j else j - 1 in
        let from = if upto < 0 then originals.(idx) else trails.(idx).(upto) in
        Routine.restore r ~from)
      routines;
    raise (Harness.Supervision_failed record)
  | None ->
    (* Success (or keep_going): mirror stats into the registry in routine
       order, exactly where the serial path does it. *)
    let stats = List.map (fun (s, _, _) -> s) results in
    List.iter Pipeline.record_metrics stats;
    (* Reassemble the per-routine record lists (each in pass order; exactly
       one record per (pass, routine) under the workers' keep_going) into
       the serial pass-major execution order. *)
    let uniform =
      match per_routine with
      | [] -> true
      | a :: rest -> List.for_all (fun b -> Array.length b = Array.length a) rest
    in
    let records =
      if uniform && per_routine <> [] then
        let n_passes = Array.length (List.hd per_routine) in
        List.concat
          (List.init n_passes (fun j -> List.map (fun a -> a.(j)) per_routine))
      else List.concat_map Array.to_list per_routine
    in
    (stats, records)

let optimize_supervised_program ?pool ?(inject = []) ~config ~level
    (p : Program.t) =
  match pool with
  | Some pool when Pool.size pool > 0 ->
    supervise_parallel ~inject pool ~config ~level p
  | _ -> Pipeline.optimize_supervised ~inject ~config ~level p

(* ------------------------------------------------------------------ *)
(* Failure policy *)

module Policy = struct
  type t = {
    timeout_ms : float option;
    retries : int;
    backoff_ms : float;
    degrade : bool;
  }

  let default =
    { timeout_ms = None; retries = 0; backoff_ms = 50.0; degrade = false }

  exception Deadline_exceeded

  (* Transient failures are worth a retry: injected chaos (the stand-in
     for infrastructure flakiness) and OS-level I/O errors. Everything
     else — pass exceptions, validation failures, malformed inputs — is
     deterministic: a retry would replay the same bug, so it is
     permanent. Deadlines are terminal too: a retry would burn the same
     budget on the same work. *)
  let classify = function
    | Chaos.Injected _ -> `Transient
    | Unix.Unix_error _ -> `Transient
    | Sys_error _ -> `Transient
    | _ -> `Permanent

  (* Exponential backoff with deterministic jitter in [0.5, 1.0): a
     replayable delay schedule, but jobs retrying in lockstep still
     spread out. Returns seconds. *)
  let backoff_delay t ~id ~attempt =
    let h = Hashtbl.hash (id, attempt, "backoff") in
    let jitter = 0.5 +. (float_of_int (h mod 1000) /. 2000.0) in
    t.backoff_ms *. float_of_int (1 lsl min (attempt - 1) 6) *. jitter /. 1000.0
end

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

type job_input =
  | File of string
  | Workload of string
  | Source of string
  | Iloc of string

type job = {
  id : string;
  level : Pipeline.level;
  input : job_input;
  emit : bool;
}

let job_of_line ~default_id line =
  match J.parse line with
  | Error m -> Error ("malformed job line: " ^ m)
  | Ok j -> (
    let str f = match J.member f j with Some (J.Str s) -> Some s | _ -> None in
    let id = Option.value (str "id") ~default:default_id in
    let level =
      match J.member "level" j with
      | None -> Ok Pipeline.Partial
      | Some (J.Str s) -> (
        match Pipeline.level_of_string s with
        | Some l -> Ok l
        | None -> Error (Printf.sprintf "unknown level %S" s))
      | Some _ -> Error "field \"level\" must be a string"
    in
    match level with
    | Error m -> Error m
    | Ok level -> (
      let inputs =
        List.filter_map
          (fun (f, mk) -> Option.map mk (str f))
          [ ("file", fun s -> File s);
            ("workload", fun s -> Workload s);
            ("source", fun s -> Source s);
            ("iloc", fun s -> Iloc s) ]
      in
      match inputs with
      | [ input ] ->
        let emit =
          match J.member "emit" j with Some (J.Bool b) -> b | _ -> true
        in
        Ok { id; level; input; emit }
      | [] -> Error "job needs one of \"file\", \"workload\", \"source\", \"iloc\""
      | _ :: _ :: _ -> Error "job has more than one program input"))

type job_outcome = Succeeded | Failed | Timed_out | Retried | Degraded | Shed

let job_outcome_to_string = function
  | Succeeded -> "ok"
  | Failed -> "error"
  | Timed_out -> "timeout"
  | Retried -> "retried_ok"
  | Degraded -> "degraded"
  | Shed -> "shed"

type result_line = {
  job_id : string;
  ok : bool;
  outcome : job_outcome;
  attempts : int;
  job_level : Pipeline.level;
  requested : Pipeline.level option;
  excised : string list;
  routines : int;
  job_counts : counts;
  latency_ms : float;
  iloc : string option;
  line : int option;
  error : string option;
}

let result_to_json r =
  J.Obj
    ([ ("type", J.Str "result");
       ("id", J.Str r.job_id);
       ("ok", J.Bool r.ok);
       ("outcome", J.Str (job_outcome_to_string r.outcome));
       ("attempts", J.Int r.attempts);
       ("level", J.Str (Pipeline.level_to_string r.job_level)) ]
    @ (match r.requested with
      | Some l -> [ ("requested", J.Str (Pipeline.level_to_string l)) ]
      | None -> [])
    @ (match r.excised with
      | [] -> []
      | ps -> [ ("excised", J.Arr (List.map (fun p -> J.Str p) ps)) ])
    @ [ ("routines", J.Int r.routines);
        ("hits", J.Int r.job_counts.hits);
        ("misses", J.Int r.job_counts.misses);
        ("latency_ms", J.Float r.latency_ms) ]
    @ (match r.line with Some n -> [ ("line", J.Int n) ] | None -> [])
    @ (match r.iloc with Some s -> [ ("iloc", J.Str s) ] | None -> [])
    @ match r.error with Some m -> [ ("error", J.Str m) ] | None -> [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program = function
  | File path -> (
    match read_file path with
    | text -> (
      try Ok (Epre_frontend.Frontend.compile_string text) with
      | Epre_frontend.Frontend.Error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message))
    | exception Sys_error m -> Error m)
  | Workload name -> (
    match Epre_workloads.Workloads.find name with
    | Some w -> Ok (Epre_workloads.Workloads.compile w)
    | None -> Error (Printf.sprintf "unknown workload %S" name))
  | Source text -> (
    try Ok (Epre_frontend.Frontend.compile_string text) with
    | Epre_frontend.Frontend.Error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message))
  | Iloc text -> (
    try Ok (Ir_text.parse_program text) with
    | e -> Error ("ILOC parse failed: " ^ Printexc.to_string e))

let error_result ?(outcome = Failed) ?(attempts = 1) ?line ~id ~level msg =
  { job_id = id; ok = false; outcome; attempts; job_level = level;
    requested = None; excised = []; routines = 0; job_counts = no_traffic;
    latency_ms = 0.0; iloc = None; line; error = Some msg }

(* Sleep [ms] in short slices, calling [poll] between slices, so the
   chaos:slow-job stall stays cancellable by the per-job deadline. *)
let sliced_sleep ~poll ms =
  let slice = 2.0 in
  let rec go remaining =
    poll ();
    if remaining > 0.0 then begin
      Unix.sleepf (Float.min slice remaining /. 1000.0);
      go (remaining -. slice)
    end
  in
  go ms

(* Passes [chaos:pass-poison] may break: present at some level above
   Baseline but absent from Baseline itself, so the degradation floor
   always survives a poisoned pass. *)
let poison_candidates =
  lazy
    (let baseline = Pipeline.level_stages ~level:Pipeline.Baseline in
     List.sort_uniq compare
       (List.filter
          (fun s -> not (List.mem s baseline))
          (Pipeline.level_stages ~level:Pipeline.Partial
          @ Pipeline.level_stages ~level:Pipeline.Distribution)))

let poisoned_pass ?seed () =
  Chaos.poison_target ?seed ~candidates:(Lazy.force poison_candidates) ()

(* One job, serially: parallelism in the server is across jobs, not
   within one. Never raises — a worker exception would poison the whole
   batch.

   Fault protocol per attempt: a fresh deadline is armed, chaos faults
   keyed on the job id fire deterministically, the program is loaded from
   scratch (optimization mutates in place, so a retry must not resume a
   half-transformed program), and any escaping exception is classified.
   Transient failures retry with jittered exponential backoff up to
   [policy.retries] times; permanent failures (including deadline
   overruns) report immediately — unless [policy.degrade] grants the job
   a fresh run one optimization level lower (the degradation ladder,
   down to Baseline). A result served below the requested level — or
   with breaker-opened passes excised — is translation-checked at the
   exec tier against the freshly loaded (unoptimized) program before it
   may report [outcome = "degraded"]; a mismatch keeps descending. *)
let run_job ?cache ?(policy = Policy.default) ?(chaos = []) ?breaker (job : job) =
  (* Every observability event of this job's dynamic extent — log lines,
     span closures, ring entries, flight dumps — carries the job id as
     its correlation id, on whichever domain executes it. *)
  Recorder.with_corr job.id @@ fun () ->
  let t0 = Clock.now_ns () in
  let finish ~attempts ~outcome r =
    count ("serve." ^ job_outcome_to_string outcome);
    let latency_ms = Clock.elapsed_ms ~since:t0 in
    Hist.observe_since ~name:"serve.job" t0;
    (match outcome with
    | Degraded -> Hist.observe_since ~name:"serve.degraded" t0
    | Succeeded | Failed | Timed_out | Retried | Shed -> ());
    Log.info ~event:"serve.job"
      ~fields:
        [ ("outcome", J.Str (job_outcome_to_string outcome));
          ("attempts", J.Int attempts);
          ("latency_ms", J.Float latency_ms);
          ("hits", J.Int r.job_counts.hits);
          ("misses", J.Int r.job_counts.misses) ]
      (Printf.sprintf "job %s: %s" job.id (job_outcome_to_string outcome));
    { r with latency_ms; attempts; outcome }
  in
  let chaos_fire fault_name =
    Log.warn ~event:"chaos.fire"
      ~fields:[ ("fault", J.Str fault_name) ]
      ("injected " ^ fault_name);
    ignore (Recorder.dump ~reason:fault_name ~corr:job.id ())
  in
  let has fault = List.mem fault chaos in
  let poison = if has Chaos.Pass_poison then poisoned_pass () else None in
  let requested = job.level in
  let rec attempt ~level k =
    let deadline =
      Option.map
        (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
        policy.Policy.timeout_ms
    in
    let poll () =
      match deadline with
      | Some d when Clock.now_ns () > d -> raise Policy.Deadline_exceeded
      | _ -> ()
    in
    (* Which passes the breakers currently refuse, at this rung. Prefer
       serving a standard lower level whose sequence avoids every opened
       pass — the result is then a pure level run, cache-coherent under
       the standard fingerprint and byte-identical to a direct run at
       that level. True excision is the fallback when even the requested
       rung's floor contains an opened pass. *)
    let opened =
      match breaker with
      | None -> []
      | Some b -> Breaker.excluded b ~passes:(Pipeline.level_stages ~level)
    in
    let level, excised =
      if opened = [] then (level, [])
      else begin
        let avoids l =
          let stages = Pipeline.level_stages ~level:l in
          List.for_all (fun p -> not (List.mem p stages)) opened
        in
        let rec seek l =
          if avoids l then Some l else Option.bind (Pipeline.lower l) seek
        in
        match seek level with Some l -> (l, []) | None -> (level, opened)
      end
    in
    let degraded_serving = level <> requested || excised <> [] in
    (* The pass-list transform: excise breaker-opened passes, inject the
       poisoned pass's deterministic failure, and report every pass
       outcome back to the breaker registry. Pass names are preserved so
       spans/histograms stay attributable. *)
    let wrap passes =
      let fired = ref false in
      List.filter
        (fun np -> not (List.mem np.Harness.pass_name excised))
        passes
      |> List.map (fun np ->
             let name = np.Harness.pass_name in
             { np with
               Harness.run =
                 (fun r ->
                   try
                     (match poison with
                     | Some p when p = name ->
                       if not !fired then begin
                         fired := true;
                         count "chaos.pass_poison";
                         chaos_fire "chaos:pass-poison"
                       end;
                       raise (Chaos.Pass_poisoned name)
                     | _ -> ());
                     np.Harness.run r;
                     Option.iter (fun b -> Breaker.success b ~pass:name) breaker
                   with e ->
                     Option.iter (fun b -> Breaker.failure b ~pass:name) breaker;
                     raise e) })
    in
    let fingerprint =
      let base = Pipeline.fingerprint ~level in
      match excised with
      | [] -> base
      | ps -> base ^ "|excised:" ^ String.concat "," (List.sort compare ps)
    in
    let step =
      try
        (* Worker-raise fires on the first attempt only: with retries
           enabled, a struck job deterministically lands on retried_ok
           rather than flapping. *)
        if
          k = 1 && has Chaos.Worker_raise
          && Chaos.fires Chaos.Worker_raise ~key:job.id
        then begin
          count "chaos.worker_raise";
          chaos_fire "chaos:worker-raise";
          raise (Chaos.Injected "chaos:worker-raise")
        end;
        if has Chaos.Slow_job && Chaos.fires Chaos.Slow_job ~key:job.id then begin
          count "chaos.slow_job";
          chaos_fire "chaos:slow-job";
          (* Three deadline budgets when one is set: a struck job times
             out deterministically instead of racing the clock. *)
          let ms =
            match policy.Policy.timeout_ms with
            | Some t -> 3.0 *. t
            | None -> 20.0
          in
          sliced_sleep ~poll ms
        end;
        poll ();
        match load_program job.input with
        | Error m -> `Input_error m
        | Ok prog ->
          (match cache with
          | Some c
            when has Chaos.Cache_corrupt
                 && Chaos.fires Chaos.Cache_corrupt ~key:job.id ->
            count "chaos.cache_corrupt";
            chaos_fire "chaos:cache-corrupt";
            (* Corrupt this job's own entries before the lookup: the find
               below must take the poison-recovery path and recompile. *)
            List.iter
              (fun r ->
                let iloc = Ir_text.routine_to_string r in
                Cache.corrupt c ~key:(Cache.key ~iloc ~fingerprint))
              (Program.routines prog)
          | _ -> ());
          (match cache with
          | Some c
            when has Chaos.Cache_lock_hold
                 && Chaos.fires Chaos.Cache_lock_hold ~key:job.id ->
            count "chaos.cache_lock_hold";
            chaos_fire "chaos:cache-lock-hold";
            Cache.hold_lock c ~ms:2.0
          | _ -> ());
          (* A degraded result must prove itself: translation-check the
             optimized program against the freshly loaded reference at
             the exec tier before it may be served. *)
          let reference = if degraded_serving then Some (Program.copy prog) else None in
          let stats, job_counts =
            optimize_program ?cache ~poll ~wrap ~fingerprint ~level prog
          in
          (match reference with
          | None -> `Ok (stats, job_counts, prog)
          | Some before ->
            let fuel = Harness.default_config.Harness.fuel in
            if Harness.obs_equal (Harness.observe ~fuel before)
                 (Harness.observe ~fuel prog)
            then `Ok (stats, job_counts, prog)
            else begin
              count "serve.degraded_invalid";
              `Fail
                (Printf.sprintf
                   "degraded result failed translation validation at %s"
                   (Pipeline.level_to_string level))
            end)
      with
      | Policy.Deadline_exceeded -> `Timeout
      | e -> (
        match Policy.classify e with
        | `Transient when k <= policy.Policy.retries ->
          `Retry (Printexc.to_string e)
        | `Transient | `Permanent ->
          (* A worker raised and no retry budget absorbs it: capture the
             post-mortem before reporting the failure. *)
          Log.error ~event:"serve.worker_raise"
            ~fields:[ ("attempt", J.Int k) ]
            (Printexc.to_string e);
          ignore
            (Recorder.dump
               ~reason:("worker-raise: " ^ Printexc.to_string e)
               ~corr:job.id ());
          `Fail ("optimization failed: " ^ Printexc.to_string e))
    in
    (* The ladder: when this rung fails terminally and [policy.degrade]
       allows it, re-attempt one level lower with a fresh deadline. The
       attempt counter keeps running — [attempts] in the result is the
       total across rungs. *)
    let descend ~why m =
      match (policy.Policy.degrade, Pipeline.lower level) with
      | true, Some next ->
        count "serve.degrade_step";
        Log.warn ~event:"serve.degrade"
          ~fields:
            [ ("from", J.Str (Pipeline.level_to_string level));
              ("to", J.Str (Pipeline.level_to_string next));
              ("cause", J.Str why);
              ("attempt", J.Int k) ]
          (Printf.sprintf "job %s: degrading %s -> %s (%s)" job.id
             (Pipeline.level_to_string level)
             (Pipeline.level_to_string next)
             m);
        Some (attempt ~level:next (k + 1))
      | _ -> None
    in
    match step with
    | `Ok (stats, job_counts, prog) ->
      let outcome =
        if degraded_serving then Degraded
        else if k > 1 then Retried
        else Succeeded
      in
      finish ~attempts:k ~outcome
        { job_id = job.id; ok = true; outcome; attempts = k;
          job_level = level;
          requested = (if level <> requested then Some requested else None);
          excised; routines = List.length stats; job_counts;
          latency_ms = 0.0;
          iloc = (if job.emit then Some (Ir_text.print_program prog) else None);
          line = None; error = None }
    | `Timeout -> (
      count "serve.deadline_exceeded";
      Log.warn ~event:"serve.timeout"
        ~fields:
          [ ("attempt", J.Int k);
            ( "timeout_ms",
              J.Float (Option.value policy.Policy.timeout_ms ~default:0.0) ) ]
        ("job " ^ job.id ^ " blew its deadline");
      match descend ~why:"timeout" "deadline exceeded" with
      | Some r -> r
      | None ->
        ignore (Recorder.dump ~reason:"timeout" ~corr:job.id ());
        finish ~attempts:k ~outcome:Timed_out
          (error_result ~id:job.id ~level
             (Printf.sprintf "deadline exceeded (%.0f ms)"
                (Option.value policy.Policy.timeout_ms ~default:0.0))))
    | `Input_error m ->
      (* The input itself is bad — no optimization level can fix it, so
         the ladder does not apply. *)
      finish ~attempts:k ~outcome:Failed (error_result ~id:job.id ~level m)
    | `Fail m -> (
      match descend ~why:"failure" m with
      | Some r -> r
      | None ->
        finish ~attempts:k ~outcome:Failed (error_result ~id:job.id ~level m))
    | `Retry m ->
      count "serve.retries";
      Log.warn ~event:"serve.retry"
        ~fields:[ ("attempt", J.Int k) ]
        ("transient failure, retrying: " ^ m);
      Unix.sleepf (Policy.backoff_delay policy ~id:job.id ~attempt:k);
      attempt ~level (k + 1)
  in
  attempt ~level:job.level 1

type summary = {
  jobs : int;
  succeeded : int;
  failed : int;
  timeouts : int;
  retried : int;
  degraded : int;
  shed : int;
  replayed : int;
  total : counts;
  wall_ms : float;
}

exception Killed

(* One admitted (or about-to-be-shed) input line, read ahead of dispatch.
   [p_key] is the content hash the journal records; [p_id]/[p_level] come
   from a cheap pre-parse (falling back to the positional default on
   malformed lines, which still flow through [run_one] for their in-order
   error result). *)
type pending_item = {
  p_default : string;
  p_seq : int;
  p_line_no : int;
  p_raw : string;
  p_key : string;
  p_id : string;
  p_level : Pipeline.level;
  p_fp : string option;
}

let serve ?cache ?batch ?(policy = Policy.default) ?(chaos = []) ?stats_every
    ?metrics_out ?(stats_sink = prerr_endline) ?journal ?(resume = false)
    ?breaker ?max_pending ?(shed_policy = `Block) ~pool ~input ~output () =
  let batch_size =
    match batch with
    | Some b -> max b 1
    | None -> max 32 (4 * Pool.size pool)
  in
  (* Admission watermarks: the queue refills to [high] (which also bounds
     stdin read-ahead — backpressure in block mode); in reject mode a
     saturated queue sheds down to [low]'s distance worth of lines. *)
  let high = match max_pending with Some n -> max 1 n | None -> max_int in
  let low = if high = max_int then max_int else max 1 (high / 2) in
  let prefetch_target = if high = max_int then batch_size else high in
  let t0 = Clock.now_ns () in
  let seq = ref 0 and line_no = ref 0 in
  let jobs = ref 0 and succeeded = ref 0 and failed = ref 0 in
  let timeouts = ref 0 and retried = ref 0 in
  let degraded = ref 0 and shed = ref 0 and replayed = ref 0 in
  let total = ref no_traffic in
  let stats_every =
    match stats_every with Some n when n > 0 -> Some n | _ -> None
  in
  let next_stats = ref (Option.value stats_every ~default:max_int) in
  let write_metrics () =
    match metrics_out with
    | Some path -> Epre_telemetry.Exposition.write ~path
    | None -> ()
  in
  (* One line on stderr every [stats_every] completed jobs: enough to
     watch a long batch without tailing the JSONL log. All of it reads
     the registries the jobs already feed — no extra bookkeeping in the
     serving path. *)
  let emit_stats () =
    let wall_ms = Clock.elapsed_ms ~since:t0 in
    let m = Hist.merged (Hist.handle ~name:"serve.job") in
    let q p = float_of_int (Hist.quantile m p) /. 1e6 in
    let hit_rate =
      100.0
      *. float_of_int !total.hits
      /. float_of_int (max 1 (!total.hits + !total.misses))
    in
    let ps = Pool.stats pool in
    let util ns = 100.0 *. Int64.to_float ns /. 1e6 /. Float.max 1e-6 wall_ms in
    let per_domain =
      String.concat "/"
        (Array.to_list
           (Array.map (fun b -> Printf.sprintf "%.0f" (util b)) ps.Pool.busy_ns))
    in
    let per_domain =
      if per_domain = "" then Printf.sprintf "%.0f" (util ps.Pool.helper_busy_ns)
      else per_domain
    in
    stats_sink
      (Printf.sprintf
         "stats: %d jobs, %.1f jobs/s, hit rate %.0f%%, p50 %.2f ms, p99 %.2f \
          ms, util %s%%"
         !jobs
         (float_of_int !jobs /. Float.max 1e-6 (wall_ms /. 1000.0))
         hit_rate (q 0.5) (q 0.99) per_domain);
    write_metrics ()
  in
  (* Result lines a previous incarnation of THIS run provably emitted
     (journal [done]/[failed] records stamped with the run id the resume
     journal continues), keyed (seq, content-hash): on --resume those
     jobs are skipped, everything else re-runs exactly once. Filtering
     by run id keeps a concurrent serve's interleaved records out. *)
  let emitted_before =
    match (resume, journal) with
    | true, Some jr ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun sk -> Hashtbl.replace tbl sk ())
        (Journal.emitted ~run:(Journal.run jr) (Journal.entries jr));
      tbl
    | _ -> Hashtbl.create 1
  in
  let jappend entries =
    match journal with Some j -> Journal.append j entries | None -> ()
  in
  (* [done]/[failed] records may only hit the journal after their result
     line is physically flushed (otherwise a crash in between would lose
     the line on resume); records wait here until the output sequencer
     has passed their seq. *)
  let post_hold = ref [] in
  (* Output sequencer: every seq eventually resolves to a rendered line
     (processed or shed) or a skip (replayed on resume); lines leave in
     strict seq order whatever order they resolve in. *)
  let out_buf = Hashtbl.create 64 in
  let next_out = ref 1 in
  let emit_seq s v =
    Hashtbl.replace out_buf s v;
    while Hashtbl.mem out_buf !next_out do
      (match Hashtbl.find out_buf !next_out with
      | Some l ->
        output_string output l;
        output_char output '\n'
      | None -> ());
      Hashtbl.remove out_buf !next_out;
      incr next_out
    done
  in
  let flush_post () =
    let ready, rest = List.partition (fun (s, _) -> s < !next_out) !post_hold in
    jappend (List.map snd (List.sort compare ready));
    post_hold := rest
  in
  let record r =
    incr jobs;
    (if r.ok then incr succeeded
     else
       match r.outcome with
       | Shed -> incr shed
       | _ -> incr failed);
    (match r.outcome with
    | Timed_out -> incr timeouts
    | Retried -> incr retried
    | Degraded -> incr degraded
    | Succeeded | Failed | Shed -> ());
    total := add_counts !total r.job_counts
  in
  let eof = ref false in
  let rec read_one () =
    if !eof then None
    else
      match input_line input with
      | exception End_of_file ->
        eof := true;
        None
      | line ->
        incr line_no;
        if String.trim line = "" then read_one ()
        else begin
          incr seq;
          let default_id = Printf.sprintf "job-%d" !seq in
          let id, level, fp =
            match job_of_line ~default_id line with
            | Ok j -> (j.id, j.level, Some (Pipeline.fingerprint ~level:j.level))
            | Error _ -> (default_id, Pipeline.Partial, None)
          in
          Some
            { p_default = default_id; p_seq = !seq; p_line_no = !line_no;
              p_raw = line; p_key = Digest.to_hex (Digest.string line);
              p_id = id; p_level = level; p_fp = fp }
        end
  in
  let pending = Queue.create () in
  let replay it =
    incr replayed;
    count "serve.replayed";
    emit_seq it.p_seq None
  in
  let shed_one it =
    count "serve.shed";
    Log.warn ~event:"serve.shed" ~corr:it.p_id
      ~fields:[ ("seq", J.Int it.p_seq); ("max_pending", J.Int high) ]
      (Printf.sprintf "job %s shed: pending queue at capacity" it.p_id);
    let r =
      error_result ~outcome:Shed ~id:it.p_id ~level:it.p_level
        ~line:it.p_line_no
        (Printf.sprintf "shed: pending queue at capacity (max-pending %d)" high)
    in
    record r;
    emit_seq it.p_seq (Some (J.to_string (result_to_json r)));
    post_hold :=
      ( it.p_seq,
        Journal.entry ~kind:"failed" ~seq:it.p_seq ~id:it.p_id ~key:it.p_key
          ~fields:[ ("outcome", J.Str "shed") ] () )
      :: !post_hold
  in
  (* Admit input up to the prefetch target; under reject-mode saturation,
     deterministically shed the next (high - low) lines. Returns the
     [accepted] journal records for the newly admitted jobs. *)
  let refill () =
    let accepted = ref [] in
    while (not !eof) && Queue.length pending < prefetch_target do
      match read_one () with
      | None -> ()
      | Some it ->
        if Hashtbl.mem emitted_before (it.p_seq, it.p_key) then replay it
        else begin
          Queue.add it pending;
          accepted :=
            Journal.entry ~kind:"accepted" ~seq:it.p_seq ~id:it.p_id
              ~key:it.p_key
              ~fields:[ ("line", J.Int it.p_line_no) ]
              ()
            :: !accepted
        end
    done;
    if shed_policy = `Reject && Queue.length pending >= high then begin
      let quota = max 1 (high - low) in
      let rec shed_loop n item =
        match item with
        | None -> ()
        | Some it ->
          if Hashtbl.mem emitted_before (it.p_seq, it.p_key) then begin
            (* Already served by the previous incarnation: a replay skip,
               not a shed, and it does not burn shed quota. *)
            replay it;
            shed_loop n (read_one ())
          end
          else begin
            shed_one it;
            if n > 1 then shed_loop (n - 1) (read_one ())
          end
      in
      match read_one () with
      | None -> ()
      | Some first -> shed_loop quota (Some first)
    end;
    List.rev !accepted
  in
  let run_one it =
    match job_of_line ~default_id:it.p_default it.p_raw with
    | Error m ->
      (* A malformed line is one bad job, never a dead server: report it
         in order, with the offending line number, and keep serving. *)
      count "serve.bad_line";
      error_result ~id:it.p_default ~level:Pipeline.Partial ~line:it.p_line_no
        (Printf.sprintf "line %d: %s" it.p_line_no m)
    | Ok job -> run_job ?cache ~policy ~chaos ?breaker job
  in
  let has_kill = List.mem Chaos.Kill_self chaos in
  let rec loop () =
    let accepted_now = refill () in
    Hist.observe ~name:"queue.depth" (Queue.length pending);
    let n = min batch_size (Queue.length pending) in
    if n = 0 then begin
      jappend accepted_now;
      flush output;
      flush_post ()
    end
    else begin
      let arr = Array.init n (fun _ -> Queue.pop pending) in
      (* WAL barrier: accepted + started records are durable before any
         of the batch dispatches — a crash from here on leaves every
         in-flight job journaled, so --resume re-runs it exactly once. *)
      jappend
        (accepted_now
        @ (Array.to_list arr
          |> List.map (fun it ->
                 Journal.entry ~kind:"started" ~seq:it.p_seq ~id:it.p_id
                   ~key:it.p_key
                   ~fields:
                     (match it.p_fp with
                     | Some fp -> [ ("fingerprint", J.Str fp) ]
                     | None -> [])
                   ())));
      (* chaos:kill-self aborts at exactly this journal-consistent point:
         the batch is journaled [started] but none of its results have
         been emitted, so output ends clean at a batch boundary and the
         resume run recomputes the batch from the same cache state an
         uninterrupted run would have seen. *)
      if
        has_kill
        && Array.exists (fun it -> Chaos.fires Chaos.Kill_self ~key:it.p_id) arr
      then begin
        count "chaos.kill_self";
        Log.warn ~event:"chaos.fire"
          ~fields:[ ("fault", J.Str "chaos:kill-self") ]
          "injected chaos:kill-self";
        ignore (Recorder.dump ~reason:"chaos:kill-self" ());
        flush output;
        raise Killed
      end;
      (* [run_job] never raises; [map_outcomes] is the last-ditch
         containment if the service layer itself crashes on a job — the
         batch still drains and every job still reports in order. *)
      let outcomes = Pool.map_outcomes pool run_one arr in
      Array.iteri
        (fun i outcome ->
          let it = arr.(i) in
          let r =
            match outcome with
            | Pool.Done r -> r
            | Pool.Failed (e, _) ->
              count "serve.worker_crash";
              Log.error ~event:"serve.worker_crash" ~corr:it.p_default
                (Printexc.to_string e);
              ignore
                (Recorder.dump
                   ~reason:("worker-crash: " ^ Printexc.to_string e)
                   ~corr:it.p_default ());
              error_result ~id:it.p_default ~level:Pipeline.Partial
                ~line:it.p_line_no ("worker crashed: " ^ Printexc.to_string e)
            | Pool.Cancelled ->
              error_result ~id:it.p_default ~level:Pipeline.Partial
                ~line:it.p_line_no "cancelled"
          in
          record r;
          emit_seq it.p_seq (Some (J.to_string (result_to_json r)));
          post_hold :=
            ( it.p_seq,
              Journal.entry
                ~kind:(if r.ok then "done" else "failed")
                ~seq:it.p_seq ~id:r.job_id ~key:it.p_key
                ~fields:[ ("outcome", J.Str (job_outcome_to_string r.outcome)) ]
                () )
            :: !post_hold)
        outcomes;
      flush output;
      (* Only now, with the batch's lines flushed, do their done/failed
         records (and those of any shed lines the flush released) become
         journal-eligible. *)
      flush_post ();
      (match stats_every with
      | Some every when !jobs >= !next_stats ->
        emit_stats ();
        (* Catch up past a large batch instead of emitting once per
           crossed threshold. *)
        while !jobs >= !next_stats do
          next_stats := !next_stats + every
        done
      | _ -> ());
      loop ()
    end
  in
  loop ();
  if stats_every <> None then emit_stats () else write_metrics ();
  { jobs = !jobs; succeeded = !succeeded; failed = !failed;
    timeouts = !timeouts; retried = !retried; degraded = !degraded;
    shed = !shed; replayed = !replayed; total = !total;
    wall_ms = Clock.elapsed_ms ~since:t0 }
