(** The compile service. See the interface for the protocol; the
    correctness argument for each parallel/cached path is inline. *)

open Epre_ir
module J = Epre_telemetry.Tjson
module Harness = Epre_harness.Harness
module Pipeline = Epre.Pipeline

type counts = { hits : int; misses : int }

let no_traffic = { hits = 0; misses = 0 }

let add_counts a b = { hits = a.hits + b.hits; misses = a.misses + b.misses }

(* Optimize one routine through the cache. The cache key is the digest of
   the routine's canonical pre-optimization text plus the level
   fingerprint; because [Ir_text] round-trips exactly, restoring a hit's
   stored text is byte-identical to recompiling. *)
let optimize_routine_cached ?cache ~level ~fingerprint (r : Routine.t) =
  match cache with
  | None -> (Pipeline.optimize_routine ~level r, { hits = 0; misses = 1 })
  | Some c -> (
    let before = Ir_text.routine_to_string r in
    let k = Cache.key ~iloc:before ~fingerprint in
    match Cache.find c ~key:k with
    | Some (cached, _iloc, stats) when cached.Routine.name = r.Routine.name ->
      Routine.restore r ~from:cached;
      (* A recompile would have bumped the metrics registry; replay the
         stored statistics so cached and cold runs report identically. *)
      Pipeline.record_metrics stats;
      (stats, { hits = 1; misses = 0 })
    | Some _ | None ->
      let stats = Pipeline.optimize_routine ~level r in
      let after = Ir_text.routine_to_string r in
      Cache.store c ~key:k ~fingerprint ~iloc:after ~stats;
      (stats, { hits = 0; misses = 1 }))

let optimize_program ?cache ?pool ~level (p : Program.t) =
  let fingerprint = Pipeline.fingerprint ~level in
  let one r = optimize_routine_cached ?cache ~level ~fingerprint r in
  let results =
    match pool with
    | Some pool -> Pool.map_routines pool one p
    | None -> List.map one (Program.routines p)
  in
  ( List.map fst results,
    List.fold_left (fun acc (_, c) -> add_counts acc c) no_traffic results )

(* Parallel supervised optimization: one worker per routine, each
   supervising its own full pass sequence. Safe only when

   - validation is [Off] or [Ir]: the verifier reads the context program
     for call-graph signatures, which no pass changes, so a frozen
     snapshot is equivalent to the live serial program. [Exec] validation
     interprets the whole program between passes and must stay serial;
   - [keep_going] is true: with fail-fast semantics the serial path
     defines *which* application raises first, so it must stay serial.

   Each worker gets its own context program — the frozen snapshot with
   only its own live routine swapped in — because [Typecheck.infer]
   mutates scratch state on the routines it reads. *)
let supervise_parallel pool ~config ~level (p : Program.t) =
  let snapshot = List.map Routine.copy (Program.routines p) in
  let one (r : Routine.t) =
    let context =
      Program.create
        (List.map
           (fun (s : Routine.t) ->
             if s.Routine.name = r.Routine.name then r else Routine.copy s)
           snapshot)
    in
    Pipeline.optimize_supervised_routine ~config ~level ~context r
  in
  let results = Pool.map_routines pool one p in
  let stats = List.map fst results in
  (* Reassemble the per-routine record lists (each in pass order; exactly
     one record per (pass, routine) under keep_going) into the serial
     pass-major execution order. *)
  let per_routine = List.map (fun (_, rs) -> Array.of_list rs) results in
  let uniform =
    match per_routine with
    | [] -> true
    | a :: rest -> List.for_all (fun b -> Array.length b = Array.length a) rest
  in
  let records =
    if uniform && per_routine <> [] then
      let n_passes = Array.length (List.hd per_routine) in
      List.concat
        (List.init n_passes (fun j ->
             List.map (fun a -> a.(j)) per_routine))
    else List.concat_map Array.to_list per_routine
  in
  (stats, records)

let optimize_supervised_program ?pool ~config ~level (p : Program.t) =
  match pool with
  | Some pool
    when Pool.size pool > 0
         && config.Harness.validation <> Harness.Exec
         && config.Harness.keep_going ->
    supervise_parallel pool ~config ~level p
  | _ -> Pipeline.optimize_supervised ~config ~level p

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

type job_input =
  | File of string
  | Workload of string
  | Source of string
  | Iloc of string

type job = {
  id : string;
  level : Pipeline.level;
  input : job_input;
  emit : bool;
}

let job_of_line ~default_id line =
  match J.parse line with
  | Error m -> Error ("malformed job line: " ^ m)
  | Ok j -> (
    let str f = match J.member f j with Some (J.Str s) -> Some s | _ -> None in
    let id = Option.value (str "id") ~default:default_id in
    let level =
      match J.member "level" j with
      | None -> Ok Pipeline.Partial
      | Some (J.Str s) -> (
        match Pipeline.level_of_string s with
        | Some l -> Ok l
        | None -> Error (Printf.sprintf "unknown level %S" s))
      | Some _ -> Error "field \"level\" must be a string"
    in
    match level with
    | Error m -> Error m
    | Ok level -> (
      let inputs =
        List.filter_map
          (fun (f, mk) -> Option.map mk (str f))
          [ ("file", fun s -> File s);
            ("workload", fun s -> Workload s);
            ("source", fun s -> Source s);
            ("iloc", fun s -> Iloc s) ]
      in
      match inputs with
      | [ input ] ->
        let emit =
          match J.member "emit" j with Some (J.Bool b) -> b | _ -> true
        in
        Ok { id; level; input; emit }
      | [] -> Error "job needs one of \"file\", \"workload\", \"source\", \"iloc\""
      | _ :: _ :: _ -> Error "job has more than one program input"))

type result_line = {
  job_id : string;
  ok : bool;
  job_level : Pipeline.level;
  routines : int;
  job_counts : counts;
  latency_ms : float;
  iloc : string option;
  error : string option;
}

let result_to_json r =
  J.Obj
    ([ ("type", J.Str "result");
       ("id", J.Str r.job_id);
       ("ok", J.Bool r.ok);
       ("level", J.Str (Pipeline.level_to_string r.job_level));
       ("routines", J.Int r.routines);
       ("hits", J.Int r.job_counts.hits);
       ("misses", J.Int r.job_counts.misses);
       ("latency_ms", J.Float r.latency_ms) ]
    @ (match r.iloc with Some s -> [ ("iloc", J.Str s) ] | None -> [])
    @ match r.error with Some m -> [ ("error", J.Str m) ] | None -> [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program = function
  | File path -> (
    match read_file path with
    | text -> (
      try Ok (Epre_frontend.Frontend.compile_string text) with
      | Epre_frontend.Frontend.Error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message))
    | exception Sys_error m -> Error m)
  | Workload name -> (
    match Epre_workloads.Workloads.find name with
    | Some w -> Ok (Epre_workloads.Workloads.compile w)
    | None -> Error (Printf.sprintf "unknown workload %S" name))
  | Source text -> (
    try Ok (Epre_frontend.Frontend.compile_string text) with
    | Epre_frontend.Frontend.Error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message))
  | Iloc text -> (
    try Ok (Ir_text.parse_program text) with
    | e -> Error ("ILOC parse failed: " ^ Printexc.to_string e))

let error_result ~id ~level msg =
  { job_id = id; ok = false; job_level = level; routines = 0;
    job_counts = no_traffic; latency_ms = 0.0; iloc = None; error = Some msg }

(* One job, serially: parallelism in the server is across jobs, not
   within one. Never raises — a worker exception would poison the whole
   batch. *)
let run_job ?cache (job : job) =
  let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
  let finish r =
    { r with latency_ms = Epre_telemetry.Telemetry.Clock.elapsed_ms ~since:t0 }
  in
  match load_program job.input with
  | Error m -> finish (error_result ~id:job.id ~level:job.level m)
  | exception e ->
    finish
      (error_result ~id:job.id ~level:job.level (Printexc.to_string e))
  | Ok prog -> (
    match optimize_program ?cache ~level:job.level prog with
    | stats, job_counts ->
      finish
        { job_id = job.id; ok = true; job_level = job.level;
          routines = List.length stats; job_counts; latency_ms = 0.0;
          iloc = (if job.emit then Some (Ir_text.print_program prog) else None);
          error = None }
    | exception e ->
      finish
        (error_result ~id:job.id ~level:job.level
           ("optimization failed: " ^ Printexc.to_string e)))

type summary = {
  jobs : int;
  succeeded : int;
  failed : int;
  total : counts;
  wall_ms : float;
}

let serve ?cache ?batch ~pool ~input ~output () =
  let batch_size =
    match batch with
    | Some b -> max b 1
    | None -> max 32 (4 * Pool.size pool)
  in
  let t0 = Epre_telemetry.Telemetry.Clock.now_ns () in
  let seq = ref 0 in
  let jobs = ref 0 and succeeded = ref 0 and failed = ref 0 in
  let total = ref no_traffic in
  (* Next batch of non-blank lines, pre-parsed in input order. *)
  let read_batch () =
    let acc = ref [] and n = ref 0 in
    (try
       while !n < batch_size do
         let line = input_line input in
         if String.trim line <> "" then begin
           incr seq;
           acc := (Printf.sprintf "job-%d" !seq, line) :: !acc;
           incr n
         end
       done
     with End_of_file -> ());
    List.rev !acc
  in
  let run_one (default_id, line) =
    match job_of_line ~default_id line with
    | Error m -> error_result ~id:default_id ~level:Pipeline.Partial m
    | Ok job -> run_job ?cache job
  in
  let rec loop () =
    match read_batch () with
    | [] -> ()
    | lines ->
      let results = Pool.map_list pool run_one lines in
      List.iter
        (fun r ->
          jobs := !jobs + 1;
          if r.ok then incr succeeded else incr failed;
          total := add_counts !total r.job_counts;
          output_string output (J.to_string (result_to_json r));
          output_char output '\n')
        results;
      flush output;
      loop ()
  in
  loop ();
  { jobs = !jobs; succeeded = !succeeded; failed = !failed; total = !total;
    wall_ms = Epre_telemetry.Telemetry.Clock.elapsed_ms ~since:t0 }
