(** The compile service. See the interface for the protocol; the
    correctness argument for each parallel/cached/fault path is inline. *)

open Epre_ir
module J = Epre_telemetry.Tjson
module Harness = Epre_harness.Harness
module Chaos = Epre_harness.Chaos
module Pipeline = Epre.Pipeline
module Clock = Epre_telemetry.Telemetry.Clock
module Hist = Epre_telemetry.Histogram
module Log = Epre_telemetry.Log
module Recorder = Epre_telemetry.Recorder

let metrics_routine = "<service>"

let count name = Epre_telemetry.Metrics.incr ~routine:metrics_routine ~name

type counts = { hits : int; misses : int }

let no_traffic = { hits = 0; misses = 0 }

let add_counts a b = { hits = a.hits + b.hits; misses = a.misses + b.misses }

(* Optimize one routine through the cache. The cache key is the digest of
   the routine's canonical pre-optimization text plus the level
   fingerprint; because [Ir_text] round-trips exactly, restoring a hit's
   stored text is byte-identical to recompiling. *)
let optimize_routine_cached ?cache ?poll ~level ~fingerprint (r : Routine.t) =
  match cache with
  | None -> (Pipeline.optimize_routine ?poll ~level r, { hits = 0; misses = 1 })
  | Some c -> (
    let before = Ir_text.routine_to_string r in
    let k = Cache.key ~iloc:before ~fingerprint in
    match Cache.find c ~key:k with
    | Some (cached, _iloc, stats) when cached.Routine.name = r.Routine.name ->
      Routine.restore r ~from:cached;
      (* A recompile would have bumped the metrics registry; replay the
         stored statistics so cached and cold runs report identically. *)
      Pipeline.record_metrics stats;
      (stats, { hits = 1; misses = 0 })
    | Some _ | None ->
      let stats = Pipeline.optimize_routine ?poll ~level r in
      let after = Ir_text.routine_to_string r in
      Cache.store c ~key:k ~fingerprint ~iloc:after ~stats;
      (stats, { hits = 0; misses = 1 }))

let optimize_program ?cache ?pool ?(poll = fun () -> ()) ~level (p : Program.t) =
  let fingerprint = Pipeline.fingerprint ~level in
  let one r =
    poll ();
    optimize_routine_cached ?cache ~poll ~level ~fingerprint r
  in
  let results =
    match pool with
    | Some pool -> Pool.map_routines pool one p
    | None -> List.map one (Program.routines p)
  in
  ( List.map fst results,
    List.fold_left (fun acc (_, c) -> add_counts acc c) no_traffic results )

(* ------------------------------------------------------------------ *)
(* Parallel supervised optimization *)

(* One worker per routine, each supervising its own full pass sequence
   against a frozen snapshot of the program with only its own live
   routine swapped in (the Ir tier's [Typecheck.infer] mutates scratch
   state on routines it reads, and the Exec tier interprets the whole
   context — both need a private copy).

   Exec tier: each worker's context starts byte-identical to the input
   program, so its reference observation and adaptive check fuel equal
   the serial run's; the context then evolves only through the worker's
   own routine. The serial pass-major loop validates against a program
   where *other* routines carry already-validated (hence
   observation-preserving) passes, so both sides compare the same
   behaviour — pass/rollback outcomes agree.

   keep_going = false: workers always run internally with
   [keep_going = true], recording every (pass, routine) outcome and a
   per-pass snapshot trail (via the harness dump hook, which fires after
   each application, post-rollback). After the batch drains — no job is
   abandoned mid-flight — we locate the first rollback in serial
   pass-major order, at pass j and routine i, and rewind every routine to
   exactly the state the serial fail-fast loop would have left: passes
   0..j applied at indexes <= i (with pass j rolled back on routine i —
   the trail entry already reflects that), passes 0..j-1 above i. Then
   raise [Supervision_failed] with routine i's record, as serial does.
   The scan order makes the failure choice deterministic regardless of
   schedule. *)
let supervise_parallel ?(inject = []) pool ~config ~level (p : Program.t) =
  let routines = Program.routines p in
  let snapshot = List.map Routine.copy routines in
  let worker_config = { config with Harness.keep_going = true } in
  let one (r : Routine.t) =
    let context =
      Program.create
        (List.map
           (fun (s : Routine.t) ->
             if s.Routine.name = r.Routine.name then r else Routine.copy s)
           snapshot)
    in
    let trail = ref [] in
    let dump _ (tr : Routine.t) = trail := Routine.copy tr :: !trail in
    let stats, records =
      Pipeline.optimize_supervised_routine ~dump ~inject ~record:false
        ~config:worker_config ~level ~context r
    in
    (stats, records, Array.of_list (List.rev !trail))
  in
  let results = Pool.map_routines pool one p in
  let per_routine = List.map (fun (_, rs, _) -> Array.of_list rs) results in
  let first_failure =
    if config.Harness.keep_going then None
    else begin
      let arrs = Array.of_list per_routine in
      let n_routines = Array.length arrs in
      let n_passes =
        Array.fold_left (fun m a -> max m (Array.length a)) 0 arrs
      in
      let found = ref None in
      (try
         for j = 0 to n_passes - 1 do
           for i = 0 to n_routines - 1 do
             if j < Array.length arrs.(i) then
               match arrs.(i).(j).Harness.outcome with
               | Harness.Rolled_back _ -> found := Some (j, i, arrs.(i).(j)); raise Exit
               | Harness.Passed -> ()
           done
         done
       with Exit -> ());
      !found
    end
  in
  match first_failure with
  | Some (j, i, record) ->
    ignore
      (Recorder.dump
         ~reason:
           (Printf.sprintf "supervision-failed: %s/%s" record.Harness.pass
              record.Harness.routine)
         ());
    let trails = Array.of_list (List.map (fun (_, _, t) -> t) results) in
    let originals = Array.of_list snapshot in
    List.iteri
      (fun idx (r : Routine.t) ->
        let upto = if idx <= i then j else j - 1 in
        let from = if upto < 0 then originals.(idx) else trails.(idx).(upto) in
        Routine.restore r ~from)
      routines;
    raise (Harness.Supervision_failed record)
  | None ->
    (* Success (or keep_going): mirror stats into the registry in routine
       order, exactly where the serial path does it. *)
    let stats = List.map (fun (s, _, _) -> s) results in
    List.iter Pipeline.record_metrics stats;
    (* Reassemble the per-routine record lists (each in pass order; exactly
       one record per (pass, routine) under the workers' keep_going) into
       the serial pass-major execution order. *)
    let uniform =
      match per_routine with
      | [] -> true
      | a :: rest -> List.for_all (fun b -> Array.length b = Array.length a) rest
    in
    let records =
      if uniform && per_routine <> [] then
        let n_passes = Array.length (List.hd per_routine) in
        List.concat
          (List.init n_passes (fun j -> List.map (fun a -> a.(j)) per_routine))
      else List.concat_map Array.to_list per_routine
    in
    (stats, records)

let optimize_supervised_program ?pool ?(inject = []) ~config ~level
    (p : Program.t) =
  match pool with
  | Some pool when Pool.size pool > 0 ->
    supervise_parallel ~inject pool ~config ~level p
  | _ -> Pipeline.optimize_supervised ~inject ~config ~level p

(* ------------------------------------------------------------------ *)
(* Failure policy *)

module Policy = struct
  type t = { timeout_ms : float option; retries : int; backoff_ms : float }

  let default = { timeout_ms = None; retries = 0; backoff_ms = 50.0 }

  exception Deadline_exceeded

  (* Transient failures are worth a retry: injected chaos (the stand-in
     for infrastructure flakiness) and OS-level I/O errors. Everything
     else — pass exceptions, validation failures, malformed inputs — is
     deterministic: a retry would replay the same bug, so it is
     permanent. Deadlines are terminal too: a retry would burn the same
     budget on the same work. *)
  let classify = function
    | Chaos.Injected _ -> `Transient
    | Unix.Unix_error _ -> `Transient
    | Sys_error _ -> `Transient
    | _ -> `Permanent

  (* Exponential backoff with deterministic jitter in [0.5, 1.0): a
     replayable delay schedule, but jobs retrying in lockstep still
     spread out. Returns seconds. *)
  let backoff_delay t ~id ~attempt =
    let h = Hashtbl.hash (id, attempt, "backoff") in
    let jitter = 0.5 +. (float_of_int (h mod 1000) /. 2000.0) in
    t.backoff_ms *. float_of_int (1 lsl min (attempt - 1) 6) *. jitter /. 1000.0
end

(* ------------------------------------------------------------------ *)
(* Serve protocol *)

type job_input =
  | File of string
  | Workload of string
  | Source of string
  | Iloc of string

type job = {
  id : string;
  level : Pipeline.level;
  input : job_input;
  emit : bool;
}

let job_of_line ~default_id line =
  match J.parse line with
  | Error m -> Error ("malformed job line: " ^ m)
  | Ok j -> (
    let str f = match J.member f j with Some (J.Str s) -> Some s | _ -> None in
    let id = Option.value (str "id") ~default:default_id in
    let level =
      match J.member "level" j with
      | None -> Ok Pipeline.Partial
      | Some (J.Str s) -> (
        match Pipeline.level_of_string s with
        | Some l -> Ok l
        | None -> Error (Printf.sprintf "unknown level %S" s))
      | Some _ -> Error "field \"level\" must be a string"
    in
    match level with
    | Error m -> Error m
    | Ok level -> (
      let inputs =
        List.filter_map
          (fun (f, mk) -> Option.map mk (str f))
          [ ("file", fun s -> File s);
            ("workload", fun s -> Workload s);
            ("source", fun s -> Source s);
            ("iloc", fun s -> Iloc s) ]
      in
      match inputs with
      | [ input ] ->
        let emit =
          match J.member "emit" j with Some (J.Bool b) -> b | _ -> true
        in
        Ok { id; level; input; emit }
      | [] -> Error "job needs one of \"file\", \"workload\", \"source\", \"iloc\""
      | _ :: _ :: _ -> Error "job has more than one program input"))

type job_outcome = Succeeded | Failed | Timed_out | Retried

let job_outcome_to_string = function
  | Succeeded -> "ok"
  | Failed -> "error"
  | Timed_out -> "timeout"
  | Retried -> "retried_ok"

type result_line = {
  job_id : string;
  ok : bool;
  outcome : job_outcome;
  attempts : int;
  job_level : Pipeline.level;
  routines : int;
  job_counts : counts;
  latency_ms : float;
  iloc : string option;
  line : int option;
  error : string option;
}

let result_to_json r =
  J.Obj
    ([ ("type", J.Str "result");
       ("id", J.Str r.job_id);
       ("ok", J.Bool r.ok);
       ("outcome", J.Str (job_outcome_to_string r.outcome));
       ("attempts", J.Int r.attempts);
       ("level", J.Str (Pipeline.level_to_string r.job_level));
       ("routines", J.Int r.routines);
       ("hits", J.Int r.job_counts.hits);
       ("misses", J.Int r.job_counts.misses);
       ("latency_ms", J.Float r.latency_ms) ]
    @ (match r.line with Some n -> [ ("line", J.Int n) ] | None -> [])
    @ (match r.iloc with Some s -> [ ("iloc", J.Str s) ] | None -> [])
    @ match r.error with Some m -> [ ("error", J.Str m) ] | None -> [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_program = function
  | File path -> (
    match read_file path with
    | text -> (
      try Ok (Epre_frontend.Frontend.compile_string text) with
      | Epre_frontend.Frontend.Error { line; message } ->
        Error (Printf.sprintf "%s:%d: %s" path line message))
    | exception Sys_error m -> Error m)
  | Workload name -> (
    match Epre_workloads.Workloads.find name with
    | Some w -> Ok (Epre_workloads.Workloads.compile w)
    | None -> Error (Printf.sprintf "unknown workload %S" name))
  | Source text -> (
    try Ok (Epre_frontend.Frontend.compile_string text) with
    | Epre_frontend.Frontend.Error { line; message } ->
      Error (Printf.sprintf "line %d: %s" line message))
  | Iloc text -> (
    try Ok (Ir_text.parse_program text) with
    | e -> Error ("ILOC parse failed: " ^ Printexc.to_string e))

let error_result ?(outcome = Failed) ?(attempts = 1) ?line ~id ~level msg =
  { job_id = id; ok = false; outcome; attempts; job_level = level; routines = 0;
    job_counts = no_traffic; latency_ms = 0.0; iloc = None; line;
    error = Some msg }

(* Sleep [ms] in short slices, calling [poll] between slices, so the
   chaos:slow-job stall stays cancellable by the per-job deadline. *)
let sliced_sleep ~poll ms =
  let slice = 2.0 in
  let rec go remaining =
    poll ();
    if remaining > 0.0 then begin
      Unix.sleepf (Float.min slice remaining /. 1000.0);
      go (remaining -. slice)
    end
  in
  go ms

(* One job, serially: parallelism in the server is across jobs, not
   within one. Never raises — a worker exception would poison the whole
   batch.

   Fault protocol per attempt: a fresh deadline is armed, chaos faults
   keyed on the job id fire deterministically, the program is loaded from
   scratch (optimization mutates in place, so a retry must not resume a
   half-transformed program), and any escaping exception is classified.
   Transient failures retry with jittered exponential backoff up to
   [policy.retries] times; permanent failures (including deadline
   overruns) report immediately. *)
let run_job ?cache ?(policy = Policy.default) ?(chaos = []) (job : job) =
  (* Every observability event of this job's dynamic extent — log lines,
     span closures, ring entries, flight dumps — carries the job id as
     its correlation id, on whichever domain executes it. *)
  Recorder.with_corr job.id @@ fun () ->
  let t0 = Clock.now_ns () in
  let finish ~attempts ~outcome r =
    count ("serve." ^ job_outcome_to_string outcome);
    let latency_ms = Clock.elapsed_ms ~since:t0 in
    Hist.observe_since ~name:"serve.job" t0;
    Log.info ~event:"serve.job"
      ~fields:
        [ ("outcome", J.Str (job_outcome_to_string outcome));
          ("attempts", J.Int attempts);
          ("latency_ms", J.Float latency_ms);
          ("hits", J.Int r.job_counts.hits);
          ("misses", J.Int r.job_counts.misses) ]
      (Printf.sprintf "job %s: %s" job.id (job_outcome_to_string outcome));
    { r with latency_ms; attempts; outcome }
  in
  let chaos_fire fault_name =
    Log.warn ~event:"chaos.fire"
      ~fields:[ ("fault", J.Str fault_name) ]
      ("injected " ^ fault_name);
    ignore (Recorder.dump ~reason:fault_name ~corr:job.id ())
  in
  let has fault = List.mem fault chaos in
  let rec attempt k =
    let deadline =
      Option.map
        (fun ms -> Int64.add (Clock.now_ns ()) (Int64.of_float (ms *. 1e6)))
        policy.Policy.timeout_ms
    in
    let poll () =
      match deadline with
      | Some d when Clock.now_ns () > d -> raise Policy.Deadline_exceeded
      | _ -> ()
    in
    let step =
      try
        (* Worker-raise fires on the first attempt only: with retries
           enabled, a struck job deterministically lands on retried_ok
           rather than flapping. *)
        if
          k = 1 && has Chaos.Worker_raise
          && Chaos.fires Chaos.Worker_raise ~key:job.id
        then begin
          count "chaos.worker_raise";
          chaos_fire "chaos:worker-raise";
          raise (Chaos.Injected "chaos:worker-raise")
        end;
        if has Chaos.Slow_job && Chaos.fires Chaos.Slow_job ~key:job.id then begin
          count "chaos.slow_job";
          chaos_fire "chaos:slow-job";
          (* Three deadline budgets when one is set: a struck job times
             out deterministically instead of racing the clock. *)
          let ms =
            match policy.Policy.timeout_ms with
            | Some t -> 3.0 *. t
            | None -> 20.0
          in
          sliced_sleep ~poll ms
        end;
        poll ();
        match load_program job.input with
        | Error m -> `Fail m
        | Ok prog ->
          (match cache with
          | Some c
            when has Chaos.Cache_corrupt
                 && Chaos.fires Chaos.Cache_corrupt ~key:job.id ->
            count "chaos.cache_corrupt";
            chaos_fire "chaos:cache-corrupt";
            (* Corrupt this job's own entries before the lookup: the find
               below must take the poison-recovery path and recompile. *)
            let fingerprint = Pipeline.fingerprint ~level:job.level in
            List.iter
              (fun r ->
                let iloc = Ir_text.routine_to_string r in
                Cache.corrupt c ~key:(Cache.key ~iloc ~fingerprint))
              (Program.routines prog)
          | _ -> ());
          (match cache with
          | Some c
            when has Chaos.Cache_lock_hold
                 && Chaos.fires Chaos.Cache_lock_hold ~key:job.id ->
            count "chaos.cache_lock_hold";
            chaos_fire "chaos:cache-lock-hold";
            Cache.hold_lock c ~ms:2.0
          | _ -> ());
          let stats, job_counts = optimize_program ?cache ~poll ~level:job.level prog in
          `Ok (stats, job_counts, prog)
      with
      | Policy.Deadline_exceeded -> `Timeout
      | e -> (
        match Policy.classify e with
        | `Transient when k <= policy.Policy.retries ->
          `Retry (Printexc.to_string e)
        | `Transient | `Permanent ->
          (* A worker raised and no retry budget absorbs it: capture the
             post-mortem before reporting the failure. *)
          Log.error ~event:"serve.worker_raise"
            ~fields:[ ("attempt", J.Int k) ]
            (Printexc.to_string e);
          ignore
            (Recorder.dump
               ~reason:("worker-raise: " ^ Printexc.to_string e)
               ~corr:job.id ());
          `Fail ("optimization failed: " ^ Printexc.to_string e))
    in
    match step with
    | `Ok (stats, job_counts, prog) ->
      finish ~attempts:k ~outcome:(if k > 1 then Retried else Succeeded)
        { job_id = job.id; ok = true; outcome = Succeeded; attempts = k;
          job_level = job.level; routines = List.length stats; job_counts;
          latency_ms = 0.0;
          iloc = (if job.emit then Some (Ir_text.print_program prog) else None);
          line = None; error = None }
    | `Timeout ->
      count "serve.deadline_exceeded";
      Log.warn ~event:"serve.timeout"
        ~fields:
          [ ("attempt", J.Int k);
            ( "timeout_ms",
              J.Float (Option.value policy.Policy.timeout_ms ~default:0.0) ) ]
        ("job " ^ job.id ^ " blew its deadline");
      ignore (Recorder.dump ~reason:"timeout" ~corr:job.id ());
      finish ~attempts:k ~outcome:Timed_out
        (error_result ~id:job.id ~level:job.level
           (Printf.sprintf "deadline exceeded (%.0f ms)"
              (Option.value policy.Policy.timeout_ms ~default:0.0)))
    | `Fail m ->
      finish ~attempts:k ~outcome:Failed
        (error_result ~id:job.id ~level:job.level m)
    | `Retry m ->
      count "serve.retries";
      Log.warn ~event:"serve.retry"
        ~fields:[ ("attempt", J.Int k) ]
        ("transient failure, retrying: " ^ m);
      Unix.sleepf (Policy.backoff_delay policy ~id:job.id ~attempt:k);
      attempt (k + 1)
  in
  attempt 1

type summary = {
  jobs : int;
  succeeded : int;
  failed : int;
  timeouts : int;
  retried : int;
  total : counts;
  wall_ms : float;
}

let serve ?cache ?batch ?(policy = Policy.default) ?(chaos = []) ?stats_every
    ?metrics_out ?(stats_sink = prerr_endline) ~pool ~input ~output () =
  let batch_size =
    match batch with
    | Some b -> max b 1
    | None -> max 32 (4 * Pool.size pool)
  in
  let t0 = Clock.now_ns () in
  let seq = ref 0 and line_no = ref 0 in
  let jobs = ref 0 and succeeded = ref 0 and failed = ref 0 in
  let timeouts = ref 0 and retried = ref 0 in
  let total = ref no_traffic in
  let stats_every =
    match stats_every with Some n when n > 0 -> Some n | _ -> None
  in
  let next_stats = ref (Option.value stats_every ~default:max_int) in
  let write_metrics () =
    match metrics_out with
    | Some path -> Epre_telemetry.Exposition.write ~path
    | None -> ()
  in
  (* One line on stderr every [stats_every] completed jobs: enough to
     watch a long batch without tailing the JSONL log. All of it reads
     the registries the jobs already feed — no extra bookkeeping in the
     serving path. *)
  let emit_stats () =
    let wall_ms = Clock.elapsed_ms ~since:t0 in
    let m = Hist.merged (Hist.handle ~name:"serve.job") in
    let q p = float_of_int (Hist.quantile m p) /. 1e6 in
    let hit_rate =
      100.0
      *. float_of_int !total.hits
      /. float_of_int (max 1 (!total.hits + !total.misses))
    in
    let ps = Pool.stats pool in
    let util ns = 100.0 *. Int64.to_float ns /. 1e6 /. Float.max 1e-6 wall_ms in
    let per_domain =
      String.concat "/"
        (Array.to_list
           (Array.map (fun b -> Printf.sprintf "%.0f" (util b)) ps.Pool.busy_ns))
    in
    let per_domain =
      if per_domain = "" then Printf.sprintf "%.0f" (util ps.Pool.helper_busy_ns)
      else per_domain
    in
    stats_sink
      (Printf.sprintf
         "stats: %d jobs, %.1f jobs/s, hit rate %.0f%%, p50 %.2f ms, p99 %.2f \
          ms, util %s%%"
         !jobs
         (float_of_int !jobs /. Float.max 1e-6 (wall_ms /. 1000.0))
         hit_rate (q 0.5) (q 0.99) per_domain);
    write_metrics ()
  in
  (* Next batch of non-blank lines, pre-parsed in input order, each
     carrying its 1-based physical line number for error reports. *)
  let read_batch () =
    let acc = ref [] and n = ref 0 in
    (try
       while !n < batch_size do
         let line = input_line input in
         incr line_no;
         if String.trim line <> "" then begin
           incr seq;
           acc := (Printf.sprintf "job-%d" !seq, !line_no, line) :: !acc;
           incr n
         end
       done
     with End_of_file -> ());
    List.rev !acc
  in
  let run_one (default_id, lineno, line) =
    match job_of_line ~default_id line with
    | Error m ->
      (* A malformed line is one bad job, never a dead server: report it
         in order, with the offending line number, and keep serving. *)
      count "serve.bad_line";
      error_result ~id:default_id ~level:Pipeline.Partial ~line:lineno
        (Printf.sprintf "line %d: %s" lineno m)
    | Ok job -> run_job ?cache ~policy ~chaos job
  in
  let rec loop () =
    match read_batch () with
    | [] -> ()
    | batch_lines ->
      let arr = Array.of_list batch_lines in
      (* [run_job] never raises; [map_outcomes] is the last-ditch
         containment if the service layer itself crashes on a job — the
         batch still drains and every job still reports in order. *)
      let outcomes = Pool.map_outcomes pool run_one arr in
      let results =
        Array.to_list
          (Array.mapi
             (fun i outcome ->
               let default_id, lineno, _ = arr.(i) in
               match outcome with
               | Pool.Done r -> r
               | Pool.Failed (e, _) ->
                 count "serve.worker_crash";
                 Log.error ~event:"serve.worker_crash" ~corr:default_id
                   (Printexc.to_string e);
                 ignore
                   (Recorder.dump
                      ~reason:("worker-crash: " ^ Printexc.to_string e)
                      ~corr:default_id ());
                 error_result ~id:default_id ~level:Pipeline.Partial
                   ~line:lineno ("worker crashed: " ^ Printexc.to_string e)
               | Pool.Cancelled ->
                 error_result ~id:default_id ~level:Pipeline.Partial
                   ~line:lineno "cancelled")
             outcomes)
      in
      List.iter
        (fun r ->
          incr jobs;
          if r.ok then incr succeeded else incr failed;
          (match r.outcome with
          | Timed_out -> incr timeouts
          | Retried -> incr retried
          | Succeeded | Failed -> ());
          total := add_counts !total r.job_counts;
          output_string output (J.to_string (result_to_json r));
          output_char output '\n')
        results;
      flush output;
      (match stats_every with
      | Some every when !jobs >= !next_stats ->
        emit_stats ();
        (* Catch up past a large batch instead of emitting once per
           crossed threshold. *)
        while !jobs >= !next_stats do
          next_stats := !next_stats + every
        done
      | _ -> ());
      loop ()
  in
  loop ();
  if stats_every <> None then emit_stats () else write_metrics ();
  { jobs = !jobs; succeeded = !succeeded; failed = !failed;
    timeouts = !timeouts; retried = !retried; total = !total;
    wall_ms = Clock.elapsed_ms ~since:t0 }
