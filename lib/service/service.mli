(** The compile service: cached, parallel program optimization, and the
    fault-tolerant batch protocol behind `eprec serve`.

    Composition of the substrates:
    - {!Pool} fans per-routine (or per-job) work across domains while
      preserving input order, so parallel output is byte-identical to the
      serial path;
    - {!Cache} short-circuits routines whose (canonical ILOC, pipeline
      fingerprint) digest was optimized before, replaying the stored text
      and statistics;
    - {!Policy} bounds each job with a deadline and absorbs transient
      failures with retries, so one bad job is one [ok:false] result,
      never a dead server.

    Serve protocol (newline-delimited JSON on stdin/stdout):

    {v
    job:    {"id":"j1","level":"partial","workload":"saxpy"}
            {"id":"j2","file":"kernels/spline.src","emit":false}
            {"id":"j3","source":"fn main() { ... }"}
            {"id":"j4","iloc":"routine main ..."}
    result: {"type":"result","id":"j1","ok":true,"outcome":"ok",
             "attempts":1,"level":"partial","routines":1,"hits":0,
             "misses":1,"latency_ms":1.93,"iloc":"..."}
            {"type":"result","id":"j2","ok":false,"outcome":"error",
             "attempts":1,...,"line":7,"error":"line 7: ..."}
    v}

    [level] defaults to ["partial"], [emit] (include optimized ILOC in
    the result) to [true]. Exactly one of [file] / [workload] / [source]
    / [iloc] names the program. A malformed job line yields an in-order
    [ok:false] result carrying the offending input line number rather
    than killing the server; [outcome] is one of ["ok"], ["error"],
    ["timeout"], ["retried_ok"], ["degraded"] (served below the
    requested optimization level — the result then carries ["requested"]
    and/or ["excised"] fields) and ["shed"] (rejected by admission
    control before optimization).

    Crash safety: with a {!Journal} attached, serve write-ahead-logs
    every job ([accepted]/[started] before dispatch, [done]/[failed]
    after the result line is flushed) so a killed process restarted with
    [resume] completes the batch — journaled jobs are skipped, in-flight
    ones re-run exactly once, and the merged output equals an
    uninterrupted run's.

    Counters (routine key ["<service>"]): [serve.ok], [serve.error],
    [serve.timeout], [serve.retried_ok], [serve.degraded], [serve.shed],
    [serve.replayed], [serve.retries], [serve.degrade_step],
    [serve.degraded_invalid], [serve.deadline_exceeded],
    [serve.bad_line], [serve.worker_crash], [breaker.open] /
    [breaker.half-open] / [breaker.closed] (routine key ["service"]),
    and [chaos.*] per injected fault. Histograms: [serve.degraded]
    (latency of degraded jobs) and [queue.depth] (pending-queue depth at
    each batch dispatch) join the PR 8 set.

    Observability (all off the result path — stdout results are
    byte-identical with every sink enabled or disabled):
    - histograms ({!Epre_telemetry.Histogram}): [serve.job] end-to-end
      latency, [pool.queue_wait], [pool.steal], [pool.idle],
      [cache.read], [cache.write], [cache.lock_wait], and [pass.<name>]
      per optimization pass;
    - structured events ({!Epre_telemetry.Log}): [serve.job],
      [serve.retry], [serve.timeout], [serve.worker_raise],
      [serve.worker_crash], [chaos.fire], [harness.rollback] — every
      [serve.*] / [chaos.*] event carries the job id as its correlation
      id ({!Epre_telemetry.Recorder.with_corr} wraps [run_job]);
    - flight dumps ({!Epre_telemetry.Recorder.dump}): written on worker
      exceptions, job timeouts, escaped supervision failures, worker
      crashes, and chaos fault firings, when a recorder is configured. *)

open Epre_ir

(** Cache traffic of one [optimize_program] / [run_job] call: routines
    served from the cache vs. recompiled (and stored). Without a cache
    every routine is a miss. *)
type counts = { hits : int; misses : int }

(** Optimize every routine of the program in place at [level].
    [pool] fans the routines across domains ({!Pool.map_routines});
    [cache] consults and fills the persistent cache per routine. [poll]
    is called between routines and passes and may raise to abandon the
    job (deadline enforcement). Stats come back in routine order,
    byte-identical to the serial uncached path. [wrap] transforms each
    routine's pass list before it runs
    ({!Epre.Pipeline.optimize_routine}); a caller that changes the
    transformation this way must supply the matching [fingerprint], or
    cached standard-pipeline results would replay against a different
    pipeline (default: the level's standard fingerprint). *)
val optimize_program :
  ?cache:Cache.t ->
  ?pool:Pool.t ->
  ?poll:(unit -> unit) ->
  ?wrap:
    (Epre_harness.Harness.named_pass list -> Epre_harness.Harness.named_pass list) ->
  ?fingerprint:string ->
  level:Epre.Pipeline.level ->
  Program.t ->
  Epre.Pipeline.routine_stats list * counts

(** Supervised variant. With a pool of size >= 1 every configuration runs
    parallel — there is no serial fallback. Each routine is supervised on
    its own worker against a frozen snapshot of the program (its private
    context supplies call-graph signatures to the Ir tier and the whole
    program to the Exec tier's translation validation), and the per-pass
    records are reassembled into the serial pass-major order. Under
    [keep_going = false] the workers run to completion internally,
    recording per-pass snapshot trails; the first rollback in pass-major
    order is then chosen deterministically, every routine is rewound to
    the exact state of the serial fail-fast loop, and
    [Supervision_failed] is raised with that record — byte-identical
    results and reports, whatever the schedule. [inject] splices extra
    passes (chaos faults) into every routine's sequence, as
    [Epre.Pipeline.optimize_supervised] does serially. *)
val optimize_supervised_program :
  ?pool:Pool.t ->
  ?inject:(int * Epre_harness.Harness.named_pass) list ->
  config:Epre_harness.Harness.config ->
  level:Epre.Pipeline.level ->
  Program.t ->
  Epre.Pipeline.routine_stats list * Epre_harness.Harness.record list

(** Per-job failure policy: deadline, retry budget, backoff. *)
module Policy : sig
  type t = {
    timeout_ms : float option;
        (** per-attempt wall-clock budget; overruns are cancelled at the
            next pass boundary and reported as [outcome = "timeout"] *)
    retries : int;  (** extra attempts granted to transient failures *)
    backoff_ms : float;
        (** base delay before attempt [k+1]; grows exponentially with a
            deterministic per-(job, attempt) jitter in [0.5, 1.0) *)
    degrade : bool;
        (** when a job fails terminally (permanent failure, exhausted
            retries, deadline overrun) at a level above Baseline,
            re-attempt it one optimization level lower, down to -O0 —
            each rung gets a fresh deadline; success below the requested
            level reports [outcome = "degraded"] after exec-tier
            translation validation *)
  }

  (** No deadline, no retries, 50 ms base backoff, no degradation. *)
  val default : t

  (** Raised by the poll hook when the attempt's deadline has passed. *)
  exception Deadline_exceeded

  (** Retry classifier. [`Transient] (worth a retry): injected chaos
      ([Epre_harness.Chaos.Injected]) and OS-level I/O errors
      ([Unix.Unix_error], [Sys_error]). [`Permanent] (never retried,
      including when transient budget is exhausted): deterministic
      failures — pass exceptions, validation failures, malformed inputs
      — where a retry would replay the same bug. Deadline overruns are
      terminal and never reach the classifier. *)
  val classify : exn -> [ `Transient | `Permanent ]

  (** Backoff before attempt [attempt + 1], in seconds. *)
  val backoff_delay : t -> id:string -> attempt:int -> float
end

type job_input =
  | File of string  (** mini-language source file path *)
  | Workload of string  (** built-in workload name *)
  | Source of string  (** inline mini-language source text *)
  | Iloc of string  (** inline ILOC text *)

type job = {
  id : string;
  level : Epre.Pipeline.level;
  input : job_input;
  emit : bool;  (** include the optimized ILOC in the result *)
}

(** Decode one job line. [default_id] is used when the object carries no
    ["id"] field; [Error] is the protocol-level complaint that becomes an
    [ok:false] result. *)
val job_of_line : default_id:string -> string -> (job, string) result

(** How a job ended: [Succeeded] ("ok") on the first attempt, [Retried]
    ("retried_ok") after absorbing a transient failure, [Timed_out]
    ("timeout") past its deadline, [Failed] ("error") on a permanent
    failure, [Degraded] ("degraded") when served below the requested
    level (or with breaker-excised passes) by the degradation ladder,
    [Shed] ("shed") when rejected by admission control. *)
type job_outcome = Succeeded | Failed | Timed_out | Retried | Degraded | Shed

(** The wire name: ["ok"] / ["error"] / ["timeout"] / ["retried_ok"] /
    ["degraded"] / ["shed"]. *)
val job_outcome_to_string : job_outcome -> string

type result_line = {
  job_id : string;
  ok : bool;
  outcome : job_outcome;
  attempts : int;  (** total across retries and ladder rungs *)
  job_level : Epre.Pipeline.level;  (** the level actually served *)
  requested : Epre.Pipeline.level option;
      (** the requested level, when it differs (degraded results) *)
  excised : string list;
      (** breaker-opened passes excised from the pipeline (only when no
          standard lower level avoided them) *)
  routines : int;
  job_counts : counts;
  latency_ms : float;  (** total wall, across every attempt and backoff *)
  iloc : string option;  (** optimized program text, when [emit] *)
  line : int option;  (** input line number, on protocol-level errors *)
  error : string option;
}

val result_to_json : result_line -> Epre_telemetry.Tjson.t

(** The pass [chaos:pass-poison] breaks under the current (or given)
    seed: a deterministic pick among the passes that exist above Baseline
    but not in it, so the degradation floor always survives. [None] only
    if that candidate set were empty. *)
val poisoned_pass : ?seed:int -> unit -> string option

(** Execute one job serially (parallelism in the server is across jobs):
    load the program, optimize it at the job's level through [cache],
    measure wall latency. Never raises — failures come back as
    [ok = false] with a classified {!job_outcome}. [policy] arms a fresh
    deadline per attempt and grants retries to transient failures (and,
    with [degrade], walks the ladder down to Baseline on terminal
    failures — every result served below the requested level, or with
    passes excised, is translation-checked at the exec tier against the
    freshly loaded program before reporting [Degraded]; a mismatch keeps
    descending). [breaker] consults/updates the per-pass circuit-breaker
    registry: opened passes are avoided by serving the highest level
    whose sequence lacks them (pure level run, standard fingerprint), or
    excised pass-by-pass when even the floor contains one. [chaos]
    enables service-fault injection keyed deterministically on the job
    id ({!Epre_harness.Chaos.fires}). *)
val run_job :
  ?cache:Cache.t ->
  ?policy:Policy.t ->
  ?chaos:Epre_harness.Chaos.service_fault list ->
  ?breaker:Breaker.t ->
  job ->
  result_line

(** Whole-batch totals, for the closing stderr line and the smoke test.
    [timeouts] breaks down [failed]; [retried] and [degraded] break down
    [succeeded]. [jobs] counts result lines emitted by {e this} run;
    [shed] of them were rejected by admission control. [replayed] counts
    jobs skipped on resume because the journal proved a previous
    incarnation already emitted their lines (not included in [jobs]). *)
type summary = {
  jobs : int;
  succeeded : int;
  failed : int;
  timeouts : int;
  retried : int;
  degraded : int;
  shed : int;
  replayed : int;
  total : counts;
  wall_ms : float;
}

(** Raised (after flushing [output] and fsyncing the journal) when
    [chaos:kill-self] fires: the process is expected to die — the CLI
    converts it into a real SIGKILL. The journal is consistent: the
    doomed batch is recorded [started] but none of its results were
    emitted, so a [resume] run completes the batch exactly. *)
exception Killed

(** Read job lines from [input] until EOF, batching up to [batch] jobs
    (default [max 32 (4 * pool size)]) per {!Pool.map_outcomes} round,
    and stream one JSON result line per job to [output] in input order
    (flushed after every batch). Blank lines are skipped; malformed lines
    produce error results carrying their input line number; a crash in
    the service layer itself is contained to that job's slot. No job is
    ever lost or reordered.

    [journal] write-ahead-logs every job's lifecycle ({!Journal});
    [resume] additionally loads the journal first and skips the jobs
    whose [(seq, content-hash)] it records as emitted. [breaker] is
    threaded to every {!run_job}. [max_pending] bounds the pending-job
    queue (also bounding stdin read-ahead — backpressure); under
    [shed_policy = `Block] (default) the producer simply waits, under
    [`Reject] a saturated queue deterministically sheds the next
    [high - low] input lines as [outcome = "shed"] results (never a
    silent drop; [low = max 1 (max_pending / 2)]).

    [stats_every] emits a one-line progress summary to [stats_sink]
    (default stderr) after every N completed jobs and once at the end:
    job count, throughput, cache hit rate, p50/p99 job latency from the
    [serve.job] histogram, and per-domain pool utilization. [metrics_out]
    writes the full Prometheus-style exposition
    ({!Epre_telemetry.Exposition.write}, atomic temp+rename) on each
    stats tick and once when the input is drained. Neither touches
    [output].

    @raise Killed when [chaos:kill-self] fires (see {!Killed}). *)
val serve :
  ?cache:Cache.t ->
  ?batch:int ->
  ?policy:Policy.t ->
  ?chaos:Epre_harness.Chaos.service_fault list ->
  ?stats_every:int ->
  ?metrics_out:string ->
  ?stats_sink:(string -> unit) ->
  ?journal:Journal.t ->
  ?resume:bool ->
  ?breaker:Breaker.t ->
  ?max_pending:int ->
  ?shed_policy:[ `Block | `Reject ] ->
  pool:Pool.t ->
  input:in_channel ->
  output:out_channel ->
  unit ->
  summary
