(** The compile service: cached, parallel program optimization, and the
    batch protocol behind `eprec serve`.

    Composition of the two substrates:
    - {!Pool} fans per-routine (or per-job) work across domains while
      preserving input order, so parallel output is byte-identical to the
      serial path;
    - {!Cache} short-circuits routines whose (canonical ILOC, pipeline
      fingerprint) digest was optimized before, replaying the stored text
      and statistics.

    Serve protocol (newline-delimited JSON on stdin/stdout):

    {v
    job:    {"id":"j1","level":"partial","workload":"saxpy"}
            {"id":"j2","file":"kernels/spline.src","emit":false}
            {"id":"j3","source":"fn main() { ... }"}
            {"id":"j4","iloc":"routine main ..."}
    result: {"type":"result","id":"j1","ok":true,"level":"partial",
             "routines":1,"hits":0,"misses":1,"latency_ms":1.93,
             "iloc":"..."}
            {"type":"result","id":"j2","ok":false,"error":"..."}
    v}

    [level] defaults to ["partial"], [emit] (include optimized ILOC in
    the result) to [true]. Exactly one of [file] / [workload] / [source]
    / [iloc] names the program. A malformed job line yields an in-order
    [ok:false] result rather than killing the server. *)

open Epre_ir

(** Cache traffic of one [optimize_program] / [run_job] call: routines
    served from the cache vs. recompiled (and stored). Without a cache
    every routine is a miss. *)
type counts = { hits : int; misses : int }

(** Optimize every routine of the program in place at [level].
    [pool] fans the routines across domains ({!Pool.map_routines});
    [cache] consults and fills the persistent cache per routine. Stats
    come back in routine order, byte-identical to the serial uncached
    path. *)
val optimize_program :
  ?cache:Cache.t ->
  ?pool:Pool.t ->
  level:Epre.Pipeline.level ->
  Program.t ->
  Epre.Pipeline.routine_stats list * counts

(** Supervised variant. The parallel path (pool of size >= 1) supervises
    each routine on its own worker against a frozen snapshot of the
    program — validation sees consistent call-graph signatures — and
    reassembles the per-pass records into the serial pass-major order.
    Falls back to the serial [Epre.Pipeline.optimize_supervised] whenever
    parallelism cannot preserve its semantics: no pool, [Exec]-tier
    validation (which interprets the whole program between passes), or
    [keep_going = false] (first-failure abort order is serial). *)
val optimize_supervised_program :
  ?pool:Pool.t ->
  config:Epre_harness.Harness.config ->
  level:Epre.Pipeline.level ->
  Program.t ->
  Epre.Pipeline.routine_stats list * Epre_harness.Harness.record list

type job_input =
  | File of string  (** mini-language source file path *)
  | Workload of string  (** built-in workload name *)
  | Source of string  (** inline mini-language source text *)
  | Iloc of string  (** inline ILOC text *)

type job = {
  id : string;
  level : Epre.Pipeline.level;
  input : job_input;
  emit : bool;  (** include the optimized ILOC in the result *)
}

(** Decode one job line. [default_id] is used when the object carries no
    ["id"] field; [Error] is the protocol-level complaint that becomes an
    [ok:false] result. *)
val job_of_line : default_id:string -> string -> (job, string) result

type result_line = {
  job_id : string;
  ok : bool;
  job_level : Epre.Pipeline.level;
  routines : int;
  job_counts : counts;
  latency_ms : float;
  iloc : string option;  (** optimized program text, when [emit] *)
  error : string option;
}

val result_to_json : result_line -> Epre_telemetry.Tjson.t

(** Execute one job serially: load the program, optimize it at the job's
    level through [cache], measure wall latency. Never raises — failures
    come back as [ok = false]. *)
val run_job : ?cache:Cache.t -> job -> result_line

(** Whole-batch totals, for the closing stderr line and the smoke test. *)
type summary = {
  jobs : int;
  succeeded : int;
  failed : int;
  total : counts;
  wall_ms : float;
}

(** Read job lines from [input] until EOF, batching up to [batch] jobs
    (default [max 32 (4 * pool size)]) per {!Pool.map} round, and stream
    one JSON result line per job to [output] in input order (flushed
    after every batch). Blank lines are skipped; malformed lines produce
    error results. *)
val serve :
  ?cache:Cache.t ->
  ?batch:int ->
  pool:Pool.t ->
  input:in_channel ->
  output:out_channel ->
  unit ->
  summary
