(** Work-stealing deque: mutex-guarded growable ring buffer. See the
    interface for why this is locked rather than lock-free. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a option array;  (** capacity is always a power of two *)
  mutable top : int;  (** steal end; index of the oldest element *)
  mutable bottom : int;  (** owner end; one past the newest element *)
}

(* [top] and [bottom] increase monotonically; the live elements are the
   [top..bottom-1] slice, each at [i land (capacity - 1)]. *)

let create () = { lock = Mutex.create (); buf = Array.make 16 None; top = 0; bottom = 0 }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let size d = d.bottom - d.top

let grow d =
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) None in
  for i = d.top to d.bottom - 1 do
    buf'.(i land ((2 * cap) - 1)) <- d.buf.(i land (cap - 1))
  done;
  d.buf <- buf'

let push d x =
  locked d (fun () ->
      if size d = Array.length d.buf then grow d;
      d.buf.(d.bottom land (Array.length d.buf - 1)) <- Some x;
      d.bottom <- d.bottom + 1)

let take d i =
  let slot = i land (Array.length d.buf - 1) in
  let x = d.buf.(slot) in
  d.buf.(slot) <- None;
  x

let pop d =
  locked d (fun () ->
      if size d = 0 then None
      else begin
        d.bottom <- d.bottom - 1;
        take d d.bottom
      end)

let steal d =
  locked d (fun () ->
      if size d = 0 then None
      else begin
        let x = take d d.top in
        d.top <- d.top + 1;
        x
      end)

let is_empty d = locked d (fun () -> size d = 0)

let length d = locked d (fun () -> size d)
