(** Per-pass circuit breakers.

    A deterministically-failing pass (a miscompiled build, a poisoned
    input class, [chaos:pass-poison]) would otherwise fail every job that
    runs it, on every attempt. The breaker registry turns that into a
    fleet-wide {e degradation}: each pass name carries a tiny state
    machine

    {v closed --(threshold consecutive failures)--> open
       open --(probe_after pipeline executions)--> half-open
       half-open --(success)--> closed
       half-open --(failure)--> open v}

    While a pass's breaker is open, {!excluded} reports it and the service
    serves the job from a pipeline that does not contain it (preferring a
    lower optimization level, whose sequence is a strict subset). After
    [probe_after] skipped executions the breaker goes half-open and lets
    one pipeline run the pass as a probe: success closes the breaker,
    another failure re-opens it.

    Every transition is logged as a structured [breaker.transition] event,
    bumps a [breaker.<state>] counter, and open/re-open transitions dump
    the flight recorder. All operations are thread-safe; under a parallel
    pool several jobs may probe a half-open breaker concurrently, which
    only means a few extra probes. *)

type t

(** [create ()] — fresh registry, all breakers closed. [threshold] is the
    consecutive-failure count that opens a breaker (default 3);
    [probe_after] the number of skipped pipeline executions before a
    half-open probe (default 8). Both are clamped to at least 1. *)
val create : ?threshold:int -> ?probe_after:int -> unit -> t

(** Record one application outcome for [pass]. Failures count
    consecutively; any success resets the count (and closes a half-open
    breaker). *)
val success : t -> pass:string -> unit

val failure : t -> pass:string -> unit

(** [excluded t ~passes] — the subset of [passes] whose breakers are open,
    to be excised from the pipeline about to run. Counts one execution
    against each open breaker's probe timer; a breaker whose timer expires
    flips to half-open and is {e not} excluded (that run is its probe). *)
val excluded : t -> passes:string list -> string list

(** Current state name per known pass (["closed"], ["open"],
    ["half-open"]), sorted by pass name — for stats lines and tests. *)
val snapshot : t -> (string * string) list
