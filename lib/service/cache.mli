(** Persistent content-addressed compilation cache.

    A cache entry maps the digest of (canonical ILOC text of the input
    routine, pipeline fingerprint) to the optimized ILOC text plus the
    recorded [routine_stats]. Because the textual ILOC format round-trips
    exactly and routines are optimized independently, replaying a hit is
    byte-identical to recompiling: restore the routine from the stored
    text, replay the stored statistics into the metrics registry, done.

    On-disk layout (survives restarts, shared between processes):

    {v
    <dir>/<first two hex chars of key>/<key>.json
    v}

    one JSON object per entry ([{"schema":"epre/cache-entry/v1",
    "key":..., "fingerprint":..., "iloc":..., "stats":{...}}]). Writes go
    through a temp file and [Sys.rename], so concurrent writers (pool
    workers, or two eprec processes sharing a cache dir) can never expose
    a torn entry.

    Cross-process safety: writes additionally hold an advisory [lockf]
    lock on [<dir>/.lock], serializing store/evict across every process
    sharing the directory. Lock order is fixed — the in-process mutex
    first, then the file lock — and reads take neither (rename atomicity
    is enough for them). On open, orphaned [entry*.tmp] files older than
    the sweep age (a crashed writer's leftovers) are swept; temp files
    whose writer is still alive — writers hold an advisory [lockf] lock
    on their temp file — are spared even past the age cutoff.

    Failure semantics: a poisoned entry — unreadable file, malformed
    JSON, wrong schema, key mismatch (hash collision or tampering), ILOC
    that no longer parses or names a different routine — is deleted and
    reported as a miss, so the service falls back to recompiling instead
    of crashing or replaying garbage.

    Counters (in [Epre_telemetry.Metrics], routine key ["<service>"]):
    [cache.hits], [cache.misses], [cache.stores], [cache.evictions]
    (split into [cache.evict_age] for the entry-count bound and
    [cache.evict_size] for the byte budget), [cache.poisoned],
    [cache.tmp_swept], [cache.tmp_spared] (a stale-looking temp file kept
    because its writer still holds its lock), [cache.corrupted].

    All operations are domain-safe. *)

type t

(** [$EPREC_CACHE_DIR], else [$XDG_CACHE_HOME/eprec], else
    [$HOME/.cache/eprec], else ["./.eprec-cache"] — never created until
    the first [store]. *)
val default_dir : unit -> string

(** [create ~dir ()] opens (and lazily creates) a cache rooted at [dir],
    sweeping any stale temp files a crashed writer left behind.
    [max_entries] bounds the entry count (default 65536) and [max_bytes]
    the total entry-file bytes (default unbounded): exceeding either
    evicts the oldest entries (by file modification time — insertion
    order, since reads don't touch mtime) down to 90% of the violated
    bound. [sweep_age_s] (default 60 s) is the age a temp file must reach
    before {!sweep_temp} considers it orphaned. *)
val create :
  ?max_entries:int ->
  ?max_bytes:int ->
  ?sweep_age_s:float ->
  dir:string ->
  unit ->
  t

val dir : t -> string

(** Digest (as lowercase hex) of fingerprint and canonical input text —
    the entry's identity and file name. *)
val key : iloc:string -> fingerprint:string -> string

(** Look up an entry. A hit returns the optimized routine (freshly parsed
    from the stored text — the caller owns it and may mutate it or
    [Routine.restore] from it), the stored text itself, and the recorded
    stats. Bumps [cache.hits] / [cache.misses] (and [cache.poisoned] when
    a corrupt entry had to be discarded — a poisoned lookup is a miss). *)
val find :
  t ->
  key:string ->
  (Epre_ir.Routine.t * string * Epre.Pipeline.routine_stats) option

(** Persist an entry (last write wins), under the in-process mutex and
    the cross-process file lock. Bumps [cache.stores], and
    [cache.evictions] plus [cache.evict_age] / [cache.evict_size] per
    entry removed by the respective bound. *)
val store :
  t ->
  key:string ->
  fingerprint:string ->
  iloc:string ->
  stats:Epre.Pipeline.routine_stats ->
  unit

(** Entries currently on disk. *)
val entry_count : t -> int

(** Total entry-file bytes currently on disk. *)
val byte_count : t -> int

(** Remove orphaned [entry*.tmp] files older than [max_age_s] (default:
    the cache's [sweep_age_s]; [create] runs this automatically). Files
    past the cutoff whose writer still holds its advisory temp-file lock
    are spared (bumping [cache.tmp_spared]). Returns the number removed;
    bumps [cache.tmp_swept] per file. *)
val sweep_temp : ?max_age_s:float -> t -> int

(** {1 Chaos hooks} — fault injection for [chaos:cache-*].

    [corrupt t ~key] overwrites the stored entry for [key] in place with
    garbage (a no-op if absent; bumps [cache.corrupted]) — the next
    [find] must take the poison-recovery path. [hold_lock t ~ms] grabs
    the write lock (mutex + file lock) and sleeps, stalling concurrent
    writers. *)

val corrupt : t -> key:string -> unit

val hold_lock : t -> ms:float -> unit
