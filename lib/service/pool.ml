(** Domain pool with work-stealing scheduling. See the interface for the
    model; the synchronization protocol is described inline. *)

let now_ns () = Epre_telemetry.Telemetry.Clock.now_ns ()

type task = unit -> unit

type worker = { deque : task Deque.t; mutable busy_ns : int64 }

type t = {
  size : int;  (** worker domains; 0 = inline pool *)
  workers : worker array;
  mutable domains : unit Domain.t list;
  lock : Mutex.t;
  cv : Condition.t;
      (** one condition variable for every event — new work submitted,
          a batch completed, shutdown — so a waiter can never miss the
          event class it cares about; spurious wakeups just re-scan *)
  mutable stamp : int;  (** bumped under [lock] on every submission *)
  mutable helper_busy_ns : int64;
  mutable stopped : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

let size t = t.size

(* Steal sweep starting after [i], so contention spreads instead of every
   idle worker hammering worker 0. *)
let find_task t i =
  let n = Array.length t.workers in
  match Deque.pop t.workers.(i).deque with
  | Some _ as found -> found
  | None ->
    let t0 = now_ns () in
    let rec sweep k =
      if k >= n then None
      else
        match Deque.steal t.workers.((i + k) mod n).deque with
        | Some _ as found -> found
        | None -> sweep (k + 1)
    in
    let found = sweep 1 in
    (match found with
    | Some _ -> Epre_telemetry.Histogram.observe_since ~name:"pool.steal" t0
    | None -> ());
    found

let steal_any t =
  let n = Array.length t.workers in
  let rec sweep k =
    if k >= n then None
    else
      match Deque.steal t.workers.(k).deque with
      | Some _ as found -> found
      | None -> sweep (k + 1)
  in
  sweep 0

(* Tasks are pre-wrapped by [map] and never raise. *)
let exec_task task = try task () with _ -> ()

let worker_loop t i =
  let w = t.workers.(i) in
  let rec loop () =
    (* Read the submission stamp *before* scanning: if a submission lands
       during the scan, the stamp comparison below forces a re-scan
       instead of a wait — the classic lost-wakeup guard. *)
    Mutex.lock t.lock;
    let seen = t.stamp in
    Mutex.unlock t.lock;
    match find_task t i with
    | Some task ->
      let t0 = now_ns () in
      exec_task task;
      let d = Int64.sub (now_ns ()) t0 in
      Mutex.lock t.lock;
      w.busy_ns <- Int64.add w.busy_ns d;
      Mutex.unlock t.lock;
      loop ()
    | None ->
      Mutex.lock t.lock;
      if t.stopped then Mutex.unlock t.lock
      else if t.stamp <> seen then begin
        Mutex.unlock t.lock;
        loop ()
      end
      else begin
        let t0 = now_ns () in
        Condition.wait t.cv t.lock;
        Mutex.unlock t.lock;
        Epre_telemetry.Histogram.observe_since ~name:"pool.idle" t0;
        loop ()
      end
  in
  loop ()

let create ~jobs () =
  let size = if jobs <= 1 then 0 else jobs in
  let workers =
    Array.init (max 1 size) (fun _ -> { deque = Deque.create (); busy_ns = 0L })
  in
  let t =
    { size; workers; domains = []; lock = Mutex.create ();
      cv = Condition.create (); stamp = 0; helper_busy_ns = 0L;
      stopped = false }
  in
  t.domains <- List.init size (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.lock;
  if not was_stopped then List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type stats = { busy_ns : int64 array; helper_busy_ns : int64 }

let stats t =
  Mutex.lock t.lock;
  let s =
    { busy_ns =
        Array.map (fun (w : worker) -> w.busy_ns) (Array.sub t.workers 0 t.size);
      helper_busy_ns = t.helper_busy_ns }
  in
  Mutex.unlock t.lock;
  s

let reset_stats t =
  Mutex.lock t.lock;
  Array.iter (fun (w : worker) -> w.busy_ns <- 0L) t.workers;
  t.helper_busy_ns <- 0L;
  Mutex.unlock t.lock

(* Help execute pending tasks (of any batch) while waiting on our own —
   this is what makes nested [map] calls from inside a task safe. *)
let help_while t ~unfinished =
  let rec wait () =
    if unfinished () then begin
      Mutex.lock t.lock;
      let seen = t.stamp in
      Mutex.unlock t.lock;
      match steal_any t with
      | Some task ->
        let t0 = now_ns () in
        exec_task task;
        let d = Int64.sub (now_ns ()) t0 in
        Mutex.lock t.lock;
        t.helper_busy_ns <- Int64.add t.helper_busy_ns d;
        Mutex.unlock t.lock;
        wait ()
      | None ->
        Mutex.lock t.lock;
        (* Re-check under the lock: batch completion broadcasts under it,
           so the batch cannot slip to zero between this test and the
           wait. A new submission (stamp change) also wakes us. *)
        if unfinished () && t.stamp = seen then Condition.wait t.cv t.lock;
        Mutex.unlock t.lock;
        wait ()
    end
  in
  wait ()

type 'a outcome =
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace
  | Cancelled

let map_outcomes ?(halt = false) t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 0 then begin
    let t0 = now_ns () in
    let finish () =
      Mutex.lock t.lock;
      t.helper_busy_ns <- Int64.add t.helper_busy_ns (Int64.sub (now_ns ()) t0);
      Mutex.unlock t.lock
    in
    Fun.protect ~finally:finish (fun () ->
        let failed = ref false in
        Array.map
          (fun x ->
            if halt && !failed then Cancelled
            else
              match f x with
              | v -> Done v
              | exception e ->
                failed := true;
                Failed (e, Printexc.get_raw_backtrace ()))
          arr)
  end
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    (* Lowest index that has Failed so far. Cancellation only applies to
       indexes strictly above it, so every index below the batch's lowest
       failure is guaranteed to run — the Done-prefix before the first
       failure is deterministic regardless of schedule, matching the
       serial fail-fast order. Above it, Done/Failed/Cancelled mix
       nondeterministically (callers halting must discard that suffix). *)
    let first_failed = Atomic.make max_int in
    let rec note_failure i =
      let cur = Atomic.get first_failed in
      if i < cur && not (Atomic.compare_and_set first_failed cur i) then
        note_failure i
    in
    let submit_ns = now_ns () in
    let task i () =
      (* Queue wait: submission to first execution, whichever domain
         (worker or helping submitter) picks the task up. *)
      Epre_telemetry.Histogram.observe_since ~name:"pool.queue_wait" submit_ns;
      (if halt && i > Atomic.get first_failed then results.(i) <- Some Cancelled
       else
         match f arr.(i) with
         | v -> results.(i) <- Some (Done v)
         | exception e ->
           note_failure i;
           results.(i) <- Some (Failed (e, Printexc.get_raw_backtrace ())));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.cv;
        Mutex.unlock t.lock
      end
    in
    for i = 0 to n - 1 do
      Deque.push t.workers.(i mod t.size).deque (task i)
    done;
    Mutex.lock t.lock;
    t.stamp <- t.stamp + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.lock;
    help_while t ~unfinished:(fun () -> Atomic.get remaining > 0);
    (* The batch has fully drained: every slot is filled, and the mutex
       hand-offs above order the workers' writes before these reads. *)
    Array.map (function Some o -> o | None -> assert false) results
  end

let map t f arr =
  let out = map_outcomes ~halt:false t f arr in
  (* Without halting no task is ever cancelled; re-raise the
     lowest-indexed failure after the whole batch has drained. *)
  Array.iter
    (function
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Done _ | Cancelled -> ())
    out;
  Array.map (function Done v -> v | Failed _ | Cancelled -> assert false) out

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_routines t f prog = map_list t f (Epre_ir.Program.routines prog)
