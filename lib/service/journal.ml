(** Durable job journal. See the interface for the record format. *)

module J = Epre_telemetry.Tjson

type t = { j_path : string; fd : Unix.file_descr; run : string; mutex : Mutex.t }

type entry = {
  kind : string;
  seq : int;
  id : string;
  key : string;
  fields : (string * J.t) list;
}

let entry ~kind ~seq ~id ~key ?(fields = []) () = { kind; seq; id; key; fields }

let rec mkdir_p p =
  if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
    mkdir_p (Filename.dirname p);
    try Sys.mkdir p 0o755 with Sys_error _ -> ()
  end

let decode line =
  match J.parse line with
  | Error _ -> None
  | Ok j ->
    let str k = match J.member k j with Some (J.Str s) -> Some s | _ -> None in
    let int k = match J.member k j with Some (J.Int n) -> Some n | _ -> None in
    (match (str "type", int "seq", str "id", str "key", j) with
    | Some kind, Some seq, Some id, Some key, J.Obj members ->
      let fields =
        List.filter
          (fun (k, _) -> not (List.mem k [ "type"; "seq"; "id"; "key" ]))
          members
      in
      Some { kind; seq; id; key; fields }
    | _ -> None)

let load ~path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            (match decode line with
            | Some e -> go (e :: acc)
            | None -> go acc)
        in
        go [])

let run_of e =
  match List.assoc_opt "run" e.fields with Some (J.Str r) -> Some r | _ -> None

let last_run entries =
  List.fold_left
    (fun acc e -> match run_of e with Some _ as r -> r | None -> acc)
    None entries

let run_counter = ref 0

let fresh_run_id () =
  incr run_counter;
  Printf.sprintf "%d-%.0f-%d" (Unix.getpid ())
    (Unix.gettimeofday () *. 1e3)
    !run_counter

let open_ ?(mode = `Fresh) ~path () =
  mkdir_p (Filename.dirname path);
  let run =
    match mode with
    | `Fresh -> fresh_run_id ()
    | `Resume -> (
      (* Continue the run the stale records belong to, so chained resumes
         (resume of a crashed resume) still honor every prior record of
         the same logical batch. *)
      match last_run (load ~path) with
      | Some r -> r
      | None -> fresh_run_id ())
  in
  (* O_RDWR, not O_WRONLY: [entries] reads back through this same fd —
     opening (and closing) a second fd on the path would silently drop
     this process's advisory lock (POSIX fcntl semantics). *)
  let fd =
    Unix.openfile path
      [ Unix.O_RDWR; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  let sole_owner =
    try
      Unix.lockf fd Unix.F_TLOCK 0;
      true
    with Unix.Unix_error _ -> false
  in
  (* A fresh (non-resume) serve starts a new logical batch: stale records
     from previous runs must not satisfy a later --resume, so truncate —
     but only when no live process still holds the journal (a concurrent
     serve sharing the cache dir); then run-id stamping alone keeps the
     interleaved records apart. *)
  (match mode with
  | `Fresh when sole_owner -> (
    try Unix.ftruncate fd 0 with Unix.Unix_error _ -> ())
  | `Fresh | `Resume -> ());
  { j_path = path; fd; run; mutex = Mutex.create () }

let path t = t.j_path
let run t = t.run

let encode ~run e =
  J.to_string
    (J.Obj
       ([ ("type", J.Str e.kind); ("seq", J.Int e.seq); ("id", J.Str e.id);
          ("key", J.Str e.key); ("run", J.Str run) ]
       @ e.fields))

let append t = function
  | [] -> ()
  | entries ->
    let buf = Buffer.create 256 in
    List.iter
      (fun e ->
        Buffer.add_string buf (encode ~run:t.run e);
        Buffer.add_char buf '\n')
      entries;
    let s = Buffer.contents buf in
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        (* One write so concurrent appenders interleave at record
           granularity (O_APPEND), then fsync for durability: a record is
           either fully on disk or (torn tail) ignored by [load]. *)
        let n = Unix.write_substring t.fd s 0 (String.length s) in
        if n <> String.length s then
          failwith ("journal: short write to " ^ t.j_path);
        Unix.fsync t.fd)

let entries t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      (* Read back through the journal's own fd: a throwaway read fd on
         the same path would release our lockf lock when closed. The
         offset move is harmless — O_APPEND writes ignore it. *)
      let len = (Unix.fstat t.fd).Unix.st_size in
      ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
      let b = Bytes.create len in
      let rec fill off =
        if off < len then
          match Unix.read t.fd b off (len - off) with
          | 0 -> off
          | n -> fill (off + n)
        else off
      in
      let got = fill 0 in
      Bytes.sub_string b 0 got
      |> String.split_on_char '\n'
      |> List.filter_map decode)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let emitted ?run entries =
  List.filter_map
    (fun e ->
      let in_run =
        match run with None -> true | Some r -> run_of e = Some r
      in
      match e.kind with
      | ("done" | "failed") when in_run -> Some (e.seq, e.key)
      | _ -> None)
    entries
