(** Durable job journal. See the interface for the record format. *)

module J = Epre_telemetry.Tjson

type t = { j_path : string; fd : Unix.file_descr; mutex : Mutex.t }

type entry = {
  kind : string;
  seq : int;
  id : string;
  key : string;
  fields : (string * J.t) list;
}

let entry ~kind ~seq ~id ~key ?(fields = []) () = { kind; seq; id; key; fields }

let rec mkdir_p p =
  if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
    mkdir_p (Filename.dirname p);
    try Sys.mkdir p 0o755 with Sys_error _ -> ()
  end

let open_ ~path =
  mkdir_p (Filename.dirname path);
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
      0o644
  in
  { j_path = path; fd; mutex = Mutex.create () }

let path t = t.j_path

let encode e =
  J.to_string
    (J.Obj
       ([ ("type", J.Str e.kind); ("seq", J.Int e.seq); ("id", J.Str e.id);
          ("key", J.Str e.key) ]
       @ e.fields))

let append t = function
  | [] -> ()
  | entries ->
    let buf = Buffer.create 256 in
    List.iter
      (fun e ->
        Buffer.add_string buf (encode e);
        Buffer.add_char buf '\n')
      entries;
    let s = Buffer.contents buf in
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
        (* One write so concurrent appenders interleave at record
           granularity (O_APPEND), then fsync for durability: a record is
           either fully on disk or (torn tail) ignored by [load]. *)
        let n = Unix.write_substring t.fd s 0 (String.length s) in
        if n <> String.length s then
          failwith ("journal: short write to " ^ t.j_path);
        Unix.fsync t.fd)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let decode line =
  match J.parse line with
  | Error _ -> None
  | Ok j ->
    let str k = match J.member k j with Some (J.Str s) -> Some s | _ -> None in
    let int k = match J.member k j with Some (J.Int n) -> Some n | _ -> None in
    (match (str "type", int "seq", str "id", str "key", j) with
    | Some kind, Some seq, Some id, Some key, J.Obj members ->
      let fields =
        List.filter
          (fun (k, _) -> not (List.mem k [ "type"; "seq"; "id"; "key" ]))
          members
      in
      Some { kind; seq; id; key; fields }
    | _ -> None)

let load ~path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line ->
            (match decode line with
            | Some e -> go (e :: acc)
            | None -> go acc)
        in
        go [])

let emitted entries =
  List.filter_map
    (fun e ->
      match e.kind with
      | "done" | "failed" -> Some (e.seq, e.key)
      | _ -> None)
    entries
