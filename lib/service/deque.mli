(** A work-stealing double-ended queue — one per pool worker.

    The owner pushes and pops at the bottom (LIFO, so a worker drains its
    freshest work first and keeps its caches warm); thieves steal from the
    top (FIFO, so a steal takes the oldest — typically largest-remaining —
    task and minimizes owner/thief contention at the bottom end).

    The implementation is a mutex-guarded growable ring buffer rather than
    a lock-free Chase–Lev deque: the pool's tasks are whole-routine (or
    whole-job) optimizations, milliseconds each, so a sub-microsecond
    critical section per operation is far below measurement noise — and
    the mutex keeps every interleaving trivially correct. All operations
    are safe from any domain. *)

type 'a t

val create : unit -> 'a t

(** Owner end: push at the bottom. *)
val push : 'a t -> 'a -> unit

(** Owner end: pop the most recently pushed element. *)
val pop : 'a t -> 'a option

(** Thief end: steal the oldest element. *)
val steal : 'a t -> 'a option

val is_empty : 'a t -> bool

val length : 'a t -> int
