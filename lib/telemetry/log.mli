(** Leveled structured event log for the compile service.

    Every event carries a monotonic timestamp (nanoseconds since process
    start), its level, a short machine-readable event name (e.g.
    ["serve.job"], ["chaos.fire"]), the emitting domain's id, the
    ambient correlation id ({!Recorder.with_corr} — the job id inside
    [run_job]'s dynamic extent), a human message and optional structured
    fields.

    Three destinations, each independently enabled:
    - a {e text sink} (stderr by default; [--log-level] on the CLI)
      filtered to [set_stderr_level] and above;
    - a {e JSONL file sink} ([open_file]; [--log-out FILE.jsonl]) that
      records every level, one {!Tjson} object per line;
    - the {e flight recorder} ring ({!Recorder}), which sees every event
      whenever the recorder is enabled, regardless of sink state.

    With no sink and no recorder, emission is a two-ref probe no-op, so
    log calls stay unconditionally wired through the service without
    perturbing byte-identity or speed of unobserved runs.

    Warn-and-above events are rate-limited per (event name, 1-second
    window) at the sinks — at most 50 per window; the overflow bumps the
    [log.suppressed] counter. The ring is exempt (it is bounded anyway
    and a post-mortem wants the repetitions). *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)
val level_of_string : string -> level option

(** [Some l]: text-sink events at [l] and above; [None] (the default):
    text sink off. *)
val set_stderr_level : level option -> unit

(** Replace the text sink (default [prerr_endline]); for tests. *)
val set_text_sink : (string -> unit) -> unit

(** Open (truncate) a JSONL file sink; closes any previous one. Every
    level is written and each line is flushed, so a crashed process
    loses at most the event being written. *)
val open_file : string -> unit

val close_file : unit -> unit

(** [emit level ~event msg]: [corr] defaults to the ambient
    {!Recorder.corr}; [fields] are structured payload ([{"fields":...}]
    in JSONL, [k=v] suffixes in text). *)
val emit :
  level ->
  event:string ->
  ?corr:string ->
  ?fields:(string * Tjson.t) list ->
  string ->
  unit

val debug :
  event:string -> ?corr:string -> ?fields:(string * Tjson.t) list -> string -> unit

val info :
  event:string -> ?corr:string -> ?fields:(string * Tjson.t) list -> string -> unit

val warn :
  event:string -> ?corr:string -> ?fields:(string * Tjson.t) list -> string -> unit

val error :
  event:string -> ?corr:string -> ?fields:(string * Tjson.t) list -> string -> unit
