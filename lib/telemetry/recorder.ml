(** Flight recorder: per-domain ring buffers of recent observability
    events, dumped to a JSON post-mortem on failure. See the interface
    for the model. *)

module J = Tjson

let now_ns () = Monotonic_clock.now ()

type entry = {
  ts_ns : int64;
  domain : int;
  kind : string;
  level : string;
  event : string;
  corr : string option;
  fields : (string * J.t) list;
}

let dummy =
  { ts_ns = 0L; domain = 0; kind = ""; level = ""; event = ""; corr = None;
    fields = [] }

type ring = {
  lock : Mutex.t;
  mutable buf : entry array;  (** [[||]] until the ring's first event *)
  mutable n : int;  (** total events ever written to this ring *)
}

type state = { dir : string; capacity : int; rings : ring array }

let ring_slots = 64 (* power of two; domain ids wrap around it *)

let state : state option ref = ref None

(* Mirror of [state <> None], probed on hot paths (every log event and
   span closure) without touching the option. *)
let on = ref false

let config_lock = Mutex.create ()

let dump_lock = Mutex.create ()

let configure ?(capacity = 256) ~dir () =
  Mutex.lock config_lock;
  state :=
    Some
      { dir; capacity = max 8 capacity;
        rings =
          Array.init ring_slots (fun _ ->
              { lock = Mutex.create (); buf = [||]; n = 0 }) };
  on := true;
  Mutex.unlock config_lock

let disable () =
  Mutex.lock config_lock;
  state := None;
  on := false;
  Mutex.unlock config_lock

let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Correlation context *)

(* The job (or routine) id every event in the current dynamic extent
   belongs to. Domain-local, so a pool worker carries the id of the job
   it is executing, not of whatever the submitter is doing. *)
let corr_key : string option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let corr () = Domain.DLS.get corr_key

let with_corr id f =
  let old = Domain.DLS.get corr_key in
  Domain.DLS.set corr_key (Some id);
  Fun.protect ~finally:(fun () -> Domain.DLS.set corr_key old) f

(* ------------------------------------------------------------------ *)
(* Recording *)

let note ?(kind = "log") ?(level = "info") ?corr:c ?(fields = []) event =
  match !state with
  | None -> ()
  | Some st ->
    let domain = (Domain.self () :> int) in
    let corr = match c with Some _ -> c | None -> Domain.DLS.get corr_key in
    let e = { ts_ns = now_ns (); domain; kind; level; event; corr; fields } in
    let r = st.rings.(domain land (ring_slots - 1)) in
    Mutex.lock r.lock;
    (* The ring is the only storage: the entry overwrites the slot it
       wraps onto, so memory stays bounded at [capacity] per domain. *)
    if Array.length r.buf = 0 then r.buf <- Array.make st.capacity dummy;
    r.buf.(r.n mod st.capacity) <- e;
    r.n <- r.n + 1;
    Mutex.unlock r.lock

let snapshot () =
  match !state with
  | None -> []
  | Some st ->
    let acc = ref [] in
    Array.iter
      (fun r ->
        Mutex.lock r.lock;
        let cap = Array.length r.buf in
        if cap > 0 then begin
          let kept = min r.n cap in
          for i = r.n - kept to r.n - 1 do
            acc := r.buf.(i mod cap) :: !acc
          done
        end;
        Mutex.unlock r.lock)
      st.rings;
    List.sort
      (fun a b ->
        match Int64.compare a.ts_ns b.ts_ns with
        | 0 -> compare (a.domain, a.event) (b.domain, b.event)
        | c -> c)
      !acc

let entry_to_json e =
  J.Obj
    ([ ("ts_ns", J.Int (Int64.to_int e.ts_ns));
       ("domain", J.Int e.domain);
       ("kind", J.Str e.kind);
       ("level", J.Str e.level);
       ("event", J.Str e.event) ]
    @ (match e.corr with Some c -> [ ("corr", J.Str c) ] | None -> [])
    @ match e.fields with [] -> [] | fs -> [ ("fields", J.Obj fs) ])

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "." && p <> "/" && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

let schema = "epre/flightrec/v1"

let dump ~reason ?corr:c () =
  match !state with
  | None -> None
  | Some st ->
    Mutex.lock dump_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock dump_lock)
      (fun () ->
        let pid = Unix.getpid () in
        let doc =
          J.Obj
            ([ ("schema", J.Str schema);
               ("pid", J.Int pid);
               ("reason", J.Str reason) ]
            @ (match c with Some id -> [ ("corr", J.Str id) ] | None -> [])
            @ [ ("dumped_at_ns", J.Int (Int64.to_int (now_ns ())));
                ("events", J.Arr (List.map entry_to_json (snapshot ()))) ])
        in
        let path =
          Filename.concat st.dir (Printf.sprintf "flightrec-%d.json" pid)
        in
        try
          mkdir_p st.dir;
          (* Temp-write + rename under [dump_lock]: a reader (CI, a
             human) sees either the previous dump or the whole new one,
             and concurrent failing jobs serialize their dumps. *)
          let tmp = path ^ ".tmp" in
          let oc = open_out_bin tmp in
          (try
             output_string oc (J.to_string doc);
             output_char oc '\n';
             close_out oc
           with e ->
             close_out_noerr oc;
             raise e);
          Sys.rename tmp path;
          Metrics.incr ~routine:"<service>" ~name:"flightrec.dumps";
          Some path
        with Sys_error _ -> None)
