(** Log-scale latency histograms. See the interface for the bucket
    scheme; the sharding protocol is described inline.

    Recording is contention-free in the steady state: each domain lands
    on its own shard (domain id mod [shard_slots]), so the per-shard
    mutex is uncontended unless more than [shard_slots] domains exist.
    Merging sums integer bucket counts, so a merged read is the same
    whatever order the shards filled in. *)

(* HDR-style log-linear buckets: [sub_count] sub-buckets per power of
   two, giving a worst-case relative error of 1/sub_count = 12.5%.
   Values 0..7 get exact unit buckets; a value with highest set bit at
   position m >= 3 lands in group (m - 3 + 1), sub-bucket = the three
   bits below the leading one. *)
let sub_bits = 3

let sub_count = 1 lsl sub_bits

let num_buckets = sub_count * 61 (* covers every non-negative OCaml int *)

let bucket_of_value v =
  if v < 0 then 0
  else if v < sub_count then v
  else begin
    let msb =
      let rec go n i = if n <= 1 then i else go (n lsr 1) (i + 1) in
      go v 0
    in
    let shift = msb - sub_bits in
    let sub = (v lsr shift) land (sub_count - 1) in
    min (((shift + 1) * sub_count) + sub) (num_buckets - 1)
  end

let bucket_bounds i =
  let i = max 0 (min i (num_buckets - 1)) in
  if i < sub_count then (i, i)
  else begin
    let shift = (i / sub_count) - 1 in
    let sub = i mod sub_count in
    let lo = (sub_count + sub) lsl shift in
    (lo, lo + (1 lsl shift) - 1)
  end

type shard = {
  lock : Mutex.t;
  mutable counts : int array;  (** [[||]] until the shard's first record *)
  mutable n : int;
  mutable sum : int;
  mutable max_v : int;
}

let shard_slots = 64 (* power of two; domain ids wrap around it *)

type t = { shards : shard array }

let create () =
  { shards =
      Array.init shard_slots (fun _ ->
          { lock = Mutex.create (); counts = [||]; n = 0; sum = 0; max_v = 0 })
  }

let record t v =
  let v = if v < 0 then 0 else v in
  let s = t.shards.((Domain.self () :> int) land (shard_slots - 1)) in
  Mutex.lock s.lock;
  if Array.length s.counts = 0 then s.counts <- Array.make num_buckets 0;
  let b = bucket_of_value v in
  s.counts.(b) <- s.counts.(b) + 1;
  s.n <- s.n + 1;
  s.sum <- s.sum + v;
  if v > s.max_v then s.max_v <- v;
  Mutex.unlock s.lock

type merged = { counts : int array; count : int; sum : int; max_value : int }

let merged t =
  let counts = Array.make num_buckets 0 in
  let count = ref 0 and sum = ref 0 and max_value = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      if Array.length s.counts > 0 then
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.counts;
      count := !count + s.n;
      sum := !sum + s.sum;
      if s.max_v > !max_value then max_value := s.max_v;
      Mutex.unlock s.lock)
    t.shards;
  { counts; count = !count; sum = !sum; max_value = !max_value }

let quantile m q =
  if m.count = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      max 1 (min m.count (int_of_float (ceil (q *. float_of_int m.count))))
    in
    let acc = ref 0 and result = ref m.max_value in
    (try
       for i = 0 to num_buckets - 1 do
         acc := !acc + m.counts.(i);
         if !acc >= rank then begin
           result := snd (bucket_bounds i);
           raise Exit
         end
       done
     with Exit -> ());
    (* The top bucket's upper edge can overshoot what was actually
       recorded; the exact max is tracked, so clamp to it. *)
    min !result m.max_value
  end

let mean m = if m.count = 0 then 0.0 else float_of_int m.sum /. float_of_int m.count

(* ------------------------------------------------------------------ *)
(* Registry *)

(* Copy-on-write name table: readers probe an immutable assoc list via
   one [Atomic.get] (no lock on the hot path — the per-pass and per-job
   observations from pool workers); writers copy under [registry_lock]
   and publish atomically. *)
let registry : (string * t) list Atomic.t = Atomic.make []

let registry_lock = Mutex.create ()

let handle ~name =
  match List.assoc_opt name (Atomic.get registry) with
  | Some h -> h
  | None ->
    Mutex.lock registry_lock;
    let h =
      match List.assoc_opt name (Atomic.get registry) with
      | Some h -> h
      | None ->
        let h = create () in
        Atomic.set registry ((name, h) :: Atomic.get registry);
        h
    in
    Mutex.unlock registry_lock;
    h

let observe ~name v = record (handle ~name) v

let observe_since ~name t0 =
  let now = Monotonic_clock.now () in
  observe ~name (Int64.to_int (Int64.sub now t0))

let snapshot () =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun (name, h) -> (name, merged h)) (Atomic.get registry))

let reset_for_testing () =
  Mutex.lock registry_lock;
  Atomic.set registry [];
  Mutex.unlock registry_lock

(* ------------------------------------------------------------------ *)
(* Exact percentiles over a sorted sample (the bench helper, shared so
   the service quantiles and the bench reports agree on the maths). *)

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (p *. float_of_int n)) - 1)))
