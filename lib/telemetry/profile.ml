(** Per-pass profile summary. See the interface. *)

type row = {
  name : string;
  calls : int;
  total_ms : float;
  mean_us : float;
  alloc_minor_words : float;
  share : float;
}

let ms_of_ns ns = Int64.to_float ns /. 1e6

let rows ?(kind = "pass") spans =
  let selected = List.filter (fun s -> s.Telemetry.kind = kind) spans in
  let selected = if selected = [] then spans else selected in
  let table : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (s : Telemetry.span) ->
      let calls, ms, words =
        match Hashtbl.find_opt table s.Telemetry.name with
        | Some cells -> cells
        | None ->
          let cells = (ref 0, ref 0.0, ref 0.0) in
          Hashtbl.add table s.Telemetry.name cells;
          cells
      in
      incr calls;
      ms := !ms +. ms_of_ns s.Telemetry.dur_ns;
      words := !words +. s.Telemetry.alloc_minor_words)
    selected;
  let total_ms =
    Hashtbl.fold (fun _ (_, ms, _) acc -> acc +. !ms) table 0.0
  in
  Hashtbl.fold
    (fun name (calls, ms, words) acc ->
      {
        name;
        calls = !calls;
        total_ms = !ms;
        mean_us = 1000.0 *. !ms /. float_of_int (max 1 !calls);
        alloc_minor_words = !words;
        share = (if total_ms <= 0.0 then 0.0 else 100.0 *. !ms /. total_ms);
      }
      :: acc)
    table []
  |> List.sort (fun a b -> compare b.total_ms a.total_ms)

let render ?kind spans =
  match rows ?kind spans with
  | [] -> "profile: no spans recorded\n"
  | rs ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "%-18s %6s %12s %12s %16s %7s\n" "span" "calls" "total ms"
         "mean us" "minor words" "share");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%-18s %6d %12.3f %12.1f %16.0f %6.1f%%\n" r.name
             r.calls r.total_ms r.mean_us r.alloc_minor_words r.share))
      rs;
    let total = List.fold_left (fun acc r -> acc +. r.total_ms) 0.0 rs in
    Buffer.add_string buf
      (Printf.sprintf "%-18s %6s %12.3f %12s %16s %6.1f%%\n" "total" "" total ""
         "" 100.0);
    Buffer.contents buf
