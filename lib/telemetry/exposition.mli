(** Prometheus-style text exposition of the {!Metrics} counters and the
    {!Histogram} registry, written atomically for a file-based scraper
    (`eprec serve --metrics-out FILE`).

    Format (one sample per line, [#] comments):

    {v
    # TYPE epre_counter counter
    epre_counter{routine="<service>",name="serve.ok"} 42
    # TYPE epre_hist_ns summary
    epre_hist_ns{name="serve.job",quantile="0.5"} 1310719
    epre_hist_ns{name="serve.job",quantile="0.9"} 2097151
    epre_hist_ns{name="serve.job",quantile="0.99"} 2621439
    epre_hist_ns_max{name="serve.job"} 2500210
    epre_hist_ns_count{name="serve.job"} 128
    epre_hist_ns_sum{name="serve.job"} 171244032
    v}

    Histogram samples are nanoseconds; quantiles come from
    {!Histogram.quantile} (within one log-scale bucket, 12.5%, of the
    exact order statistic — the same maths `bench traffic` reports). *)

(** The current registries, rendered. *)
val render : unit -> string

(** [render] to [path] via temp-write + rename: readers see either the
    previous exposition or the whole new one, never a torn file. *)
val write : path:string -> unit

type sample = { metric : string; labels : (string * string) list; value : float }

(** Parse an exposition document back into its samples (comments and
    blank lines skipped). Strict: any malformed line is an [Error]. *)
val parse : string -> (sample list, string) result
