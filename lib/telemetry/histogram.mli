(** Fixed log-scale bucket histograms (HDR-style, integer nanoseconds),
    sharded per domain and merged deterministically at read time.

    Bucket scheme: 8 sub-buckets per power of two (values 0..7 get exact
    unit buckets), so every bucket's width is at most 1/8 of its lower
    bound — quantiles are exact to within 12.5%. Buckets cover every
    non-negative OCaml int, so nanosecond latencies up to decades fit.

    Recording takes the recording domain's own shard (domain id mod 64),
    whose mutex is uncontended in the steady state — workers of the
    compile-service pool ([Epre_service.Pool]) record concurrently
    without sharing a cache line or a lock. [merged] sums the shards'
    integer bucket counts, so the merged view is independent of which
    domain recorded what in which order.

    Histograms live in a process-wide registry keyed by name — the
    distribution-valued counterpart of the {!Metrics} counter registry,
    read by the same consumers ([Exposition], `--metrics-out`, the serve
    stats line, `bench traffic`/`bench soak`). *)

(** Total number of buckets. *)
val num_buckets : int

(** Bucket index for a value (negatives clamp to bucket 0). Monotone in
    the value. *)
val bucket_of_value : int -> int

(** Inclusive [(lo, hi)] value range of a bucket index. *)
val bucket_bounds : int -> int * int

type t

(** A standalone histogram (not in the registry). *)
val create : unit -> t

(** Record one value (clamped at 0). Contention-free across domains. *)
val record : t -> int -> unit

(** Deterministic merge of every shard: summed bucket counts, total
    count, sum, and the exact (unbucketed) maximum. *)
type merged = { counts : int array; count : int; sum : int; max_value : int }

val merged : t -> merged

(** [quantile m q] for [q] in [0,1]: the upper edge of the bucket holding
    the rank-[ceil q*n] value, clamped to the exact max — so
    [quantile m 1.0 = m.max_value] and every quantile is within one
    bucket (12.5%) of the exact order statistic. 0 when empty. *)
val quantile : merged -> float -> int

(** Arithmetic mean; 0.0 when empty. *)
val mean : merged -> float

(** {2 Registry} *)

(** Find or create the registered histogram [name]. The lookup is
    lock-free once the name exists. *)
val handle : name:string -> t

(** [record] on [handle ~name]. *)
val observe : name:string -> int -> unit

(** Observe the nanoseconds elapsed since [t0] (a [Clock.now_ns]
    reading) under [name]. *)
val observe_since : name:string -> int64 -> unit

(** Every registered histogram, merged, sorted by name. *)
val snapshot : unit -> (string * merged) list

(** Drop every registered histogram (test isolation; see
    [Metrics.reset_for_testing]). *)
val reset_for_testing : unit -> unit

(** Exact percentile of an ascending-sorted sample: the smallest element
    with at least [ceil p*n] elements at or below it ([0.0] when empty).
    The bench reports and histogram quantiles share this definition. *)
val percentile_of_sorted : float array -> float -> float
