(** Chrome trace-event export of a recorded span list.

    The output is the JSON object format of the Trace Event spec —
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one complete
    ("ph":"X") event per span — and loads directly in Perfetto
    (https://ui.perfetto.dev) or chrome://tracing. Timestamps and
    durations are microseconds (the spec's unit) at nanosecond
    resolution; nesting is carried by the events' time containment on the
    single track, with the routine, allocation and IR size deltas in each
    event's [args]. *)

val to_json : Telemetry.span list -> Tjson.t

val to_string : Telemetry.span list -> string

(** Write [to_string] to a file (truncating). *)
val write : path:string -> Telemetry.span list -> unit
