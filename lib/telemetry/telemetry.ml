(** Span recording over the monotonic clock. See the interface for the
    model; the design constraint is that the disabled path is one ref
    probe, so telemetry can stay linked into every build. *)

module Clock = struct
  let now_ns () = Monotonic_clock.now ()

  let elapsed_ms ~since = Int64.to_float (Int64.sub (now_ns ()) since) /. 1e6
end

type ir_size = { blocks : int; instrs : int }

let measure_routine (r : Epre_ir.Routine.t) =
  {
    blocks = List.length (Epre_ir.Cfg.blocks r.Epre_ir.Routine.cfg);
    instrs = Epre_ir.Routine.instr_count r;
  }

type span = {
  name : string;
  kind : string;
  routine : string option;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  alloc_minor_words : float;
  ir_before : ir_size option;
  ir_after : ir_size option;
  raised : bool;
}

type recorder = {
  epoch : int64;
  lock : Mutex.t;
      (** guards [depth] and [finished]: spans complete from compile-pool
          worker domains as well as the installing domain *)
  mutable depth : int;
  mutable finished : span list;  (** completion order, newest first *)
}

let current : recorder option ref = ref None

let install () =
  let r =
    { epoch = Clock.now_ns (); lock = Mutex.create (); depth = 0; finished = [] }
  in
  current := Some r;
  r

let uninstall () = current := None

let enabled () = !current <> None

let spans r = List.rev r.finished

let with_recorder f =
  let r = install () in
  Fun.protect ~finally:uninstall (fun () -> f r)

module Span = struct
  let with_ ?(kind = "task") ?routine ~name f =
    match (!current, Recorder.enabled ()) with
    | None, false -> f ()
    | rec_opt, flight ->
      let routine_name = Option.map (fun r -> r.Epre_ir.Routine.name) routine in
      let ir_before = Option.map measure_routine routine in
      let depth =
        match rec_opt with
        | None -> 0
        | Some rec_ ->
          Mutex.lock rec_.lock;
          let d = rec_.depth in
          rec_.depth <- d + 1;
          Mutex.unlock rec_.lock;
          d
      in
      let alloc0 = Gc.minor_words () in
      let t0 = Clock.now_ns () in
      let finish raised =
        let dur_ns = Int64.sub (Clock.now_ns ()) t0 in
        let alloc_minor_words = Gc.minor_words () -. alloc0 in
        (match rec_opt with
        | None -> ()
        | Some rec_ ->
          let finished_span =
            {
              name;
              kind;
              routine = routine_name;
              depth;
              start_ns = Int64.sub t0 rec_.epoch;
              dur_ns;
              alloc_minor_words;
              ir_before;
              ir_after = Option.map measure_routine routine;
              raised;
            }
          in
          Mutex.lock rec_.lock;
          (* Restore the open-time depth rather than decrementing: an
             exception that escaped several nested spans still leaves the
             recorder balanced once the outermost one closes. *)
          rec_.depth <- depth;
          rec_.finished <- finished_span :: rec_.finished;
          Mutex.unlock rec_.lock);
        (* Span closures also feed the flight recorder's ring, so a
           post-mortem shows what each domain was computing — not just
           what it logged — in the run-up to the failure. *)
        if flight then
          Recorder.note ~kind:"span" ~level:"span"
            ~fields:
              ([ ("kind", Tjson.Str kind);
                 ("dur_ns", Tjson.Int (Int64.to_int dur_ns)) ]
              @ (match routine_name with
                | Some r -> [ ("routine", Tjson.Str r) ]
                | None -> [])
              @ if raised then [ ("raised", Tjson.Bool true) ] else [])
            name
      in
      (match f () with
      | v ->
        finish false;
        v
      | exception e ->
        finish true;
        raise e)
end
