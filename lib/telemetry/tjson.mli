(** A minimal JSON tree, encoder and parser.

    The container image bakes in no JSON library, so the telemetry
    exporters (Chrome trace, metrics JSONL, the bench baseline) and the
    harness [Report] share this one. The encoder emits compact,
    standards-conforming JSON; the parser is a strict recursive-descent
    reader used by the test suite and CI to validate what the exporters
    wrote. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; encoded as [null] otherwise *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Escape a string for inclusion between double quotes (backslash
    escapes for quote, backslash and control characters). *)
val escape : string -> string

(** Compact one-line encoding. Integral floats print without a fractional
    part; other floats with enough digits to round-trip nanosecond-scale
    timings. *)
val to_string : t -> string

(** Member lookup on an [Obj]; [None] on other constructors. *)
val member : string -> t -> t option

(** Strict parse of a complete JSON document (trailing garbage is an
    error). [Error msg] carries a byte offset. *)
val parse : string -> (t, string) result
