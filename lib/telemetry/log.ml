(** Leveled structured logging. See the interface for the model; sink
    state and rate limiting are described inline. *)

module J = Tjson

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* Event timestamps are monotonic nanoseconds since process start (well,
   module initialization), so they order and subtract exactly like span
   timings and never jump with wall-clock adjustments. *)
let epoch = Monotonic_clock.now ()

(* Sink state, all under [lock]: the text sink (stderr unless a test
   swaps in a buffer), its level filter, and the JSONL file sink. *)
let lock = Mutex.create ()

let stderr_level : level option ref = ref None

let text_sink : (string -> unit) ref = ref prerr_endline

let file_chan : out_channel option ref = ref None

(* One ref probe for the disabled fast path; kept in sync with the sink
   state. The flight recorder's own [enabled] probe is separate, so
   events still reach the ring with every sink off. *)
let sinks_on = ref false

let refresh () = sinks_on := !stderr_level <> None || !file_chan <> None

let set_stderr_level l =
  Mutex.lock lock;
  stderr_level := l;
  refresh ();
  Mutex.unlock lock

let set_text_sink f =
  Mutex.lock lock;
  text_sink := f;
  Mutex.unlock lock

let close_file () =
  Mutex.lock lock;
  (match !file_chan with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  file_chan := None;
  refresh ();
  Mutex.unlock lock

let open_file path =
  close_file ();
  Mutex.lock lock;
  file_chan := Some (open_out_bin path);
  refresh ();
  Mutex.unlock lock

(* ------------------------------------------------------------------ *)
(* Rate limiting *)

(* Warn-and-above events are capped per (event name, 1s window): a fault
   firing on every job of a big batch logs the first [max_per_window]
   occurrences and counts the rest in [log.suppressed], instead of
   flooding stderr. Called under [lock]. *)
let window_ns = 1_000_000_000L

let max_per_window = 50

let rl_windows : (string, int64 * int ref) Hashtbl.t = Hashtbl.create 16

let rate_limited ~now event =
  match Hashtbl.find_opt rl_windows event with
  | Some (start, n) when Int64.sub now start < window_ns ->
    incr n;
    !n > max_per_window
  | _ ->
    Hashtbl.replace rl_windows event (now, ref 1);
    false

(* ------------------------------------------------------------------ *)
(* Emission *)

let field_text (k, v) =
  Printf.sprintf " %s=%s" k
    (match v with J.Str s -> s | other -> J.to_string other)

let render_text ~ts_ns ~level ~domain ~corr ~event ~fields msg =
  Printf.sprintf "[%10.6f] %-5s d%d%s %s: %s%s"
    (Int64.to_float ts_ns /. 1e9)
    (level_to_string level) domain
    (match corr with Some c -> " " ^ c | None -> "")
    event msg
    (String.concat "" (List.map field_text fields))

let to_json ~ts_ns ~level ~domain ~corr ~event ~fields msg =
  J.Obj
    ([ ("ts_ns", J.Int (Int64.to_int ts_ns));
       ("level", J.Str (level_to_string level));
       ("event", J.Str event);
       ("domain", J.Int domain) ]
    @ (match corr with Some c -> [ ("corr", J.Str c) ] | None -> [])
    @ [ ("msg", J.Str msg) ]
    @ match fields with [] -> [] | fs -> [ ("fields", J.Obj fs) ])

let emit level ~event ?corr ?(fields = []) msg =
  if !sinks_on || Recorder.enabled () then begin
    let now = Monotonic_clock.now () in
    let ts_ns = Int64.sub now epoch in
    let domain = (Domain.self () :> int) in
    let corr = match corr with Some _ as c -> c | None -> Recorder.corr () in
    (* The ring sees every event — it is bounded anyway, and a post-
       mortem wants exactly the repetitions the sinks suppressed. *)
    if Recorder.enabled () then
      Recorder.note ~kind:"log" ~level:(level_to_string level) ?corr ~fields
        event;
    if !sinks_on then begin
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          if severity level >= severity Warn && rate_limited ~now event then
            Metrics.incr ~routine:"<service>" ~name:"log.suppressed"
          else begin
            (match !stderr_level with
            | Some min_level when severity level >= severity min_level ->
              !text_sink
                (render_text ~ts_ns ~level ~domain ~corr ~event ~fields msg)
            | Some _ | None -> ());
            match !file_chan with
            | Some oc ->
              output_string oc
                (J.to_string
                   (to_json ~ts_ns ~level ~domain ~corr ~event ~fields msg));
              output_char oc '\n';
              flush oc
            | None -> ()
          end)
    end
  end

let debug ~event ?corr ?fields msg = emit Debug ~event ?corr ?fields msg

let info ~event ?corr ?fields msg = emit Info ~event ?corr ?fields msg

let warn ~event ?corr ?fields msg = emit Warn ~event ?corr ?fields msg

let error ~event ?corr ?fields msg = emit Error ~event ?corr ?fields msg
