(** Structured tracing for the optimizer: nested wall-clock spans with GC
    allocation and IR size deltas.

    The span API is a zero-cost wrapper unless a recorder is installed:
    [Span.with_] probes one ref cell and otherwise just calls its thunk, so
    an untraced `eprec` run pays no measurable telemetry overhead. With a
    recorder installed (CLI [--trace-out] / [--profile], or a test's
    [with_recorder]), every span records

    - wall-clock start and duration from the monotonic clock (the process
      CPU clock [Sys.time] both under-reports blocked time and lies under
      multicore GC — everything here is monotonic wall clock);
    - the minor-heap allocation delta ([Gc.minor_words]);
    - when the span is given the routine it transforms, the IR size
      (blocks, instructions) before and after;
    - whether the wrapped computation raised (the span still closes — the
      recorder's nesting stays balanced under exceptions).

    Exporters consume the finished span list: [Chrome_trace] (Perfetto /
    chrome://tracing), [Profile] (per-pass text summary), and the
    [Metrics] JSONL stream.

    Domain safety: a recorder accepts spans from any domain — the
    compile-service pool's workers ([Epre_service.Pool]) trace through the
    same recorder as the submitting domain. The recorder's state is
    mutex-guarded; the nesting [depth] remains a single process-wide
    counter, so spans completed concurrently by different workers
    interleave at whatever depth was current when each opened (wall-clock
    start/duration, allocation and IR deltas are unaffected). *)

(** Monotonic wall clock (nanoseconds since an arbitrary epoch). *)
module Clock : sig
  val now_ns : unit -> int64

  (** Milliseconds elapsed since an earlier [now_ns] reading. *)
  val elapsed_ms : since:int64 -> float
end

type ir_size = { blocks : int; instrs : int }

(** Block and instruction counts of a routine (holes excluded,
    terminators excluded — the shape a pass changes). *)
val measure_routine : Epre_ir.Routine.t -> ir_size

type span = {
  name : string;
  kind : string;  (** e.g. ["pass"], ["routine"], ["pipeline"], ["experiment"] *)
  routine : string option;  (** the routine being transformed, if any *)
  depth : int;  (** nesting depth at open; top-level spans are 0 *)
  start_ns : int64;  (** relative to the recorder's epoch *)
  dur_ns : int64;
  alloc_minor_words : float;  (** [Gc.minor_words] delta *)
  ir_before : ir_size option;
  ir_after : ir_size option;
  raised : bool;  (** the wrapped computation raised *)
}

type recorder

(** Install a fresh recorder (replacing any current one) and return it.
    Spans complete into it until [uninstall]. *)
val install : unit -> recorder

val uninstall : unit -> unit

(** A recorder is installed. *)
val enabled : unit -> bool

(** Finished spans in completion order (children before parents); empty
    while spans are still open. *)
val spans : recorder -> span list

(** [install], run, [uninstall] (exception-safe); for tests and scoped
    tracing. *)
val with_recorder : (recorder -> 'a) -> 'a

module Span : sig
  (** [with_ ~name f] runs [f ()] inside a span. No-op (beyond two ref
      probes) when no recorder is installed and the flight recorder
      ({!Recorder}) is disabled. [routine] enables the IR size delta and
      stamps the span with the routine's name. The span closes and is
      recorded even when [f] raises. With the flight recorder enabled,
      every span closure is also noted into its ring (kind ["span"],
      with duration and the ambient correlation id) — even when no trace
      recorder is installed. *)
  val with_ :
    ?kind:string -> ?routine:Epre_ir.Routine.t -> name:string -> (unit -> 'a) -> 'a
end
