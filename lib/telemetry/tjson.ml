(** Minimal JSON tree: encoder for the telemetry exporters, parser for
    validating them back. See the interface. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Integral values print as integers; everything else keeps three decimals
   (microsecond timestamps at nanosecond resolution need exactly three). *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_repr f)
    else Buffer.add_string buf "null"
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

exception Fail of string * int

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Fail (msg, c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "bad \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
        let code =
          List.fold_left
            (fun acc i -> (acc * 16) + hex_digit c c.src.[c.pos + i])
            0 [ 0; 1; 2; 3 ]
        in
        c.pos <- c.pos + 4;
        (match Uchar.of_int code with
        | u -> Buffer.add_utf_8_uchar buf u
        | exception Invalid_argument _ -> fail c "bad \\u escape")
      | _ -> fail c "bad escape");
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c "raw control character in string"
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      go ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      (* out of int range: fall back to float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then fail c "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, pos) -> Error (Printf.sprintf "%s at offset %d" msg pos)
