(** Chrome trace-event JSON. See the interface for the format. *)

let us_of_ns ns = Int64.to_float ns /. 1e3

let event (s : Telemetry.span) =
  let args =
    [ ("depth", Tjson.Int s.Telemetry.depth);
      ("alloc_minor_words", Tjson.Float s.Telemetry.alloc_minor_words) ]
    @ (match s.Telemetry.routine with
      | Some r -> [ ("routine", Tjson.Str r) ]
      | None -> [])
    @ (match (s.Telemetry.ir_before, s.Telemetry.ir_after) with
      | Some b, Some a ->
        [ ("blocks_before", Tjson.Int b.Telemetry.blocks);
          ("blocks_after", Tjson.Int a.Telemetry.blocks);
          ("instrs_before", Tjson.Int b.Telemetry.instrs);
          ("instrs_after", Tjson.Int a.Telemetry.instrs) ]
      | _ -> [])
    @ if s.Telemetry.raised then [ ("raised", Tjson.Bool true) ] else []
  in
  Tjson.Obj
    [
      ("name", Tjson.Str s.Telemetry.name);
      ("cat", Tjson.Str s.Telemetry.kind);
      ("ph", Tjson.Str "X");
      ("pid", Tjson.Int 1);
      ("tid", Tjson.Int 1);
      ("ts", Tjson.Float (us_of_ns s.Telemetry.start_ns));
      ("dur", Tjson.Float (us_of_ns s.Telemetry.dur_ns));
      ("args", Tjson.Obj args);
    ]

let to_json spans =
  (* The spec wants stable ordering by timestamp; spans arrive in
     completion order (children first). *)
  let sorted =
    List.stable_sort
      (fun a b -> Int64.compare a.Telemetry.start_ns b.Telemetry.start_ns)
      spans
  in
  Tjson.Obj
    [
      ("traceEvents", Tjson.Arr (List.map event sorted));
      ("displayTimeUnit", Tjson.Str "ms");
    ]

let to_string spans = Tjson.to_string (to_json spans)

let write ~path spans =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string spans);
      output_char oc '\n')
