(** The flight recorder: a per-domain ring buffer of the most recent
    observability events (log events and span closures), dumped
    atomically to a JSON file when something goes wrong — a worker
    raises, a job blows its deadline, [Supervision_failed] escapes, or a
    chaos fault fires. The dump turns a red CI run or a crashed serve
    process into a replayable post-mortem: the last [capacity] events of
    every domain, each stamped with a monotonic timestamp, its domain id
    and the correlation id of the job it belonged to.

    Disabled (the default) every entry point is a cheap no-op — one ref
    probe — so the recording calls stay unconditionally wired through
    the service. [eprec serve] enables it by default (see
    [--flight-dir] / [--no-flight]).

    Memory is bounded: each domain's ring holds at most [capacity]
    entries and new events overwrite the oldest in place.

    This module also owns the ambient {e correlation id} (domain-local
    storage): [Epre_service.Service.run_job] wraps each job in
    [with_corr job_id], so every event logged from that job's dynamic
    extent — through the pool, the pipeline and the harness — carries
    the job id without explicit threading. *)

type entry = {
  ts_ns : int64;  (** monotonic clock reading at [note] time *)
  domain : int;  (** recording domain's id *)
  kind : string;  (** ["log"] or ["span"] *)
  level : string;  (** log level, or ["span"] for span closures *)
  event : string;  (** event name / span name *)
  corr : string option;  (** correlation id (job id), if any *)
  fields : (string * Tjson.t) list;
}

(** Enable the recorder: dumps go to [<dir>/flightrec-<pid>.json];
    each domain keeps its last [capacity] (default 256, min 8) events. *)
val configure : ?capacity:int -> dir:string -> unit -> unit

val disable : unit -> unit

(** One ref probe; [note]/[dump] are no-ops when false. *)
val enabled : unit -> bool

(** {2 Correlation context} *)

(** The current domain's correlation id, if inside [with_corr]. *)
val corr : unit -> string option

(** Run [f] with the correlation id set to [id] on this domain
    (restored on exit, exception-safe). Events noted by [f] — and by
    {!Log} and span closures within it — carry [id] by default. *)
val with_corr : string -> (unit -> 'a) -> 'a

(** {2 Recording and dumping} *)

(** Append an event to the recording domain's ring. [corr] defaults to
    the ambient correlation id; no-op when disabled. *)
val note :
  ?kind:string ->
  ?level:string ->
  ?corr:string ->
  ?fields:(string * Tjson.t) list ->
  string ->
  unit

(** Every live ring entry, merged across domains and sorted by
    timestamp. Empty when disabled. *)
val snapshot : unit -> entry list

val entry_to_json : entry -> Tjson.t

(** Write [<dir>/flightrec-<pid>.json] atomically (temp + rename,
    serialized across domains): schema ["epre/flightrec/v1"], the
    [reason], the triggering [corr] if given, and every ring entry.
    Returns the path written, or [None] when disabled or the write
    failed. Bumps the [flightrec.dumps] counter. *)
val dump : reason:string -> ?corr:string -> unit -> string option
