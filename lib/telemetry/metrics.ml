(** Counters registry. See the interface. *)

let table : (string * string, int ref) Hashtbl.t = Hashtbl.create 64

let add ~routine ~name n =
  match Hashtbl.find_opt table (routine, name) with
  | Some cell -> cell := !cell + n
  | None -> Hashtbl.add table (routine, name) (ref n)

let incr ~routine ~name = add ~routine ~name 1

let get ~routine ~name =
  match Hashtbl.find_opt table (routine, name) with
  | Some cell -> !cell
  | None -> 0

let reset () = Hashtbl.reset table

type entry = { routine : string; name : string; value : int }

let snapshot () =
  Hashtbl.fold
    (fun (routine, name) cell acc -> { routine; name; value = !cell } :: acc)
    table []
  |> List.sort (fun a b ->
         match compare a.routine b.routine with 0 -> compare a.name b.name | c -> c)

let entry_to_json e =
  Tjson.Obj
    [
      ("type", Tjson.Str "counter");
      ("routine", Tjson.Str e.routine);
      ("name", Tjson.Str e.name);
      ("value", Tjson.Int e.value);
    ]

let to_jsonl entries =
  String.concat "\n" (List.map (fun e -> Tjson.to_string (entry_to_json e)) entries)
