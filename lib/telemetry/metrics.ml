(** Counters registry. See the interface.

    The registry is one process-global table shared by every domain: the
    compile-service pool ([Epre_service.Pool]) funnels per-routine pipeline
    counters, verifier rule counters and cache hit/miss counters through
    here from worker domains, so every operation takes [lock]. The
    critical sections are a few words long; contention is negligible next
    to the per-routine optimization work between increments. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let table : (string * string, int ref) Hashtbl.t = Hashtbl.create 64

let add ~routine ~name n =
  locked (fun () ->
      match Hashtbl.find_opt table (routine, name) with
      | Some cell -> cell := !cell + n
      | None -> Hashtbl.add table (routine, name) (ref n))

let incr ~routine ~name = add ~routine ~name 1

let get ~routine ~name =
  locked (fun () ->
      match Hashtbl.find_opt table (routine, name) with
      | Some cell -> !cell
      | None -> 0)

let reset () = locked (fun () -> Hashtbl.reset table)

(* Tests that assert on registry contents call this first instead of
   depending on which suites ran before them; it clears the counters
   *and* the histogram registry, which snapshot consumers treat as one
   registry. *)
let reset_for_testing () =
  reset ();
  Histogram.reset_for_testing ()

type entry = { routine : string; name : string; value : int }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun (routine, name) cell acc -> { routine; name; value = !cell } :: acc)
        table [])
  |> List.sort (fun a b ->
         match compare a.routine b.routine with 0 -> compare a.name b.name | c -> c)

let entry_to_json e =
  Tjson.Obj
    [
      ("type", Tjson.Str "counter");
      ("routine", Tjson.Str e.routine);
      ("name", Tjson.Str e.name);
      ("value", Tjson.Int e.value);
    ]

let to_jsonl entries =
  String.concat "\n" (List.map (fun e -> Tjson.to_string (entry_to_json e)) entries)
