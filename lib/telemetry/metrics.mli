(** A process-wide counters registry, keyed by (routine, counter name).

    This generalizes the pipeline's hand-plumbed [routine_stats] record:
    any pass can bump a named counter ([add] / [incr]) without a new field
    threaded through [Pipeline], and every consumer (the CLI's
    [--metrics=json], CI, the bench baseline) reads one snapshot format.
    Counters accumulate across routines and runs until [reset].

    Domain-safe: every operation is mutex-guarded, so compile-pool worker
    domains ([Epre_service.Pool]) bump counters concurrently without
    racing or losing increments; [snapshot] is an atomic cut. *)

val add : routine:string -> name:string -> int -> unit

val incr : routine:string -> name:string -> unit

(** Current value; 0 when never bumped. *)
val get : routine:string -> name:string -> int

val reset : unit -> unit

(** Test isolation: clear the counters {e and} the {!Histogram}
    registry, so a test's assertions see only its own increments rather
    than depending on global registry state left by earlier suites. *)
val reset_for_testing : unit -> unit

type entry = { routine : string; name : string; value : int }

(** All counters, sorted by routine then name. *)
val snapshot : unit -> entry list

(** [{"type":"counter","routine":...,"name":...,"value":...}] *)
val entry_to_json : entry -> Tjson.t

(** One JSON object per line, in [snapshot] order; [""] when empty. *)
val to_jsonl : entry list -> string
