(** Text profile summary of a recorded span list: one row per span name,
    sorted by total wall-clock time, with the share of the profiled total
    — the `--profile` rendering. *)

type row = {
  name : string;
  calls : int;
  total_ms : float;
  mean_us : float;
  alloc_minor_words : float;
  share : float;  (** of the summed total, in percent *)
}

(** Aggregate spans by name. [kind] keeps only spans of that kind
    (default ["pass"], the per-stage spans); when nothing matches the
    filter, all spans are aggregated instead, so a profile of an
    unoptimized run still shows something. *)
val rows : ?kind:string -> Telemetry.span list -> row list

(** Render [rows] as an aligned table with a totals line; a diagnostic
    one-liner when there are no spans at all. *)
val render : ?kind:string -> Telemetry.span list -> string
