(** Prometheus-style text exposition of the metrics registries. See the
    interface for the format. *)

let escape_label s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quantiles = [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

let render () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "# epre metrics exposition\n";
  (match Metrics.snapshot () with
  | [] -> ()
  | counters ->
    Buffer.add_string b "# TYPE epre_counter counter\n";
    List.iter
      (fun (e : Metrics.entry) ->
        Buffer.add_string b
          (Printf.sprintf "epre_counter{routine=\"%s\",name=\"%s\"} %d\n"
             (escape_label e.routine) (escape_label e.name) e.value))
      counters);
  (match Histogram.snapshot () with
  | [] -> ()
  | hists ->
    Buffer.add_string b "# TYPE epre_hist_ns summary\n";
    List.iter
      (fun (name, m) ->
        let n = escape_label name in
        List.iter
          (fun (label, q) ->
            Buffer.add_string b
              (Printf.sprintf "epre_hist_ns{name=\"%s\",quantile=\"%s\"} %d\n"
                 n label (Histogram.quantile m q)))
          quantiles;
        Buffer.add_string b
          (Printf.sprintf "epre_hist_ns_max{name=\"%s\"} %d\n" n
             m.Histogram.max_value);
        Buffer.add_string b
          (Printf.sprintf "epre_hist_ns_count{name=\"%s\"} %d\n" n
             m.Histogram.count);
        Buffer.add_string b
          (Printf.sprintf "epre_hist_ns_sum{name=\"%s\"} %d\n" n
             m.Histogram.sum))
      hists);
  Buffer.contents b

let write ~path =
  let text = render () in
  (* Temp-write + rename: a scraper reading on interval sees either the
     previous exposition or the whole new one. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc text;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Parsing (tests and CI validate what [write] produced) *)

type sample = { metric : string; labels : (string * string) list; value : float }

exception Bad of string

let parse_labels s =
  (* k="v",k2="v2" with backslash escapes inside the quotes *)
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  while !i < n do
    let eq =
      match String.index_from_opt s !i '=' with
      | Some e -> e
      | None -> raise (Bad "label without '='")
    in
    let key = String.trim (String.sub s !i (eq - !i)) in
    if eq + 1 >= n || s.[eq + 1] <> '"' then raise (Bad "label value not quoted");
    let b = Buffer.create 16 in
    let j = ref (eq + 2) in
    let closed = ref false in
    while not !closed do
      if !j >= n then raise (Bad "unterminated label value");
      (match s.[!j] with
      | '\\' ->
        if !j + 1 >= n then raise (Bad "dangling escape");
        (match s.[!j + 1] with
        | 'n' -> Buffer.add_char b '\n'
        | c -> Buffer.add_char b c);
        j := !j + 1
      | '"' -> closed := true
      | c -> Buffer.add_char b c);
      incr j
    done;
    labels := (key, Buffer.contents b) :: !labels;
    i := if !j < n && s.[!j] = ',' then !j + 1 else !j
  done;
  List.rev !labels

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let metric, rest =
      match String.index_opt line '{' with
      | Some lb ->
        let rb =
          match String.rindex_opt line '}' with
          | Some r when r > lb -> r
          | _ -> raise (Bad "unbalanced '{'")
        in
        ( String.sub line 0 lb,
          ( parse_labels (String.sub line (lb + 1) (rb - lb - 1)),
            String.sub line (rb + 1) (String.length line - rb - 1) ) )
      | None -> (
        match String.index_opt line ' ' with
        | Some sp ->
          ( String.sub line 0 sp,
            ([], String.sub line sp (String.length line - sp)) )
        | None -> raise (Bad "line without value"))
    in
    let labels, value_text = rest in
    match float_of_string_opt (String.trim value_text) with
    | Some value -> Some { metric; labels; value }
    | None -> raise (Bad ("bad sample value: " ^ String.trim value_text))
  end

let parse text =
  try
    Ok
      (List.filter_map parse_line
         (String.split_on_char '\n' text))
  with Bad m -> Error m
