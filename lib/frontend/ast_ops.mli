(** AST utilities shared by the fuzzer, the reducer and the corpus: a
    source printer that re-parses ([Frontend.parse_string]), a statement
    count (the reducer's size metric), and indexed statement/expression
    edits (the primitive moves of delta debugging).

    Statements and expressions are addressed by their preorder index over
    the whole program, entering nested bodies and subexpressions; the
    indices are stable under edits at higher indices, so a reducer sweeps
    from the last site down to the first. *)

open Ast

(** Render a program as mini-language source. The output parses back with
    [Frontend.parse_string]; for programs the fuzz generator produces
    (no negative literals, statement-position calls only) the reparse is
    structurally identical, so printed reproducers replay exactly. *)
val print_program : program -> string

(** Number of statement nodes in the whole program, nested bodies
    included (declarations count — they are statements). *)
val stmt_count : program -> int

(** Number of expression nodes, subexpressions included. *)
val expr_count : program -> int

(** [transform_stmt prog i f] rebuilds [prog] with statement [i] replaced
    by [f stmt] (a splice: [[]] deletes, a body hoists). [None] when [f]
    declines or [i] is out of range. *)
val transform_stmt : program -> int -> (stmt -> stmt list option) -> program option

(** [transform_expr prog i f] rebuilds [prog] with expression [i] replaced
    by [f expr]; the replaced node's subexpressions are not visited.
    [None] when [f] declines or [i] is out of range. *)
val transform_expr : program -> int -> (expr -> expr option) -> program option
