(** AST printing, sizing and indexed edits. See the interface for the
    addressing scheme. *)

open Ast

(* ------------------------------------------------------------------ *)
(* Source printer                                                      *)

(* Precedence, loosest to tightest, mirroring the parser: || < && <
   comparisons < additive < multiplicative < unary < postfix. *)
let binary_prec = function
  | BOr -> 1
  | BAnd -> 2
  | BEq | BNe | BLt | BLe | BGt | BGe -> 3
  | BAdd | BSub -> 4
  | BMul | BDiv | BRem -> 5

let binary_sym = function
  | BOr -> "||"
  | BAnd -> "&&"
  | BEq -> "=="
  | BNe -> "!="
  | BLt -> "<"
  | BLe -> "<="
  | BGt -> ">"
  | BGe -> ">="
  | BAdd -> "+"
  | BSub -> "-"
  | BMul -> "*"
  | BDiv -> "/"
  | BRem -> "%"

(* The lexer's float grammar has no sign and needs a digit before any '.',
   which every [Printf] rendering of a finite non-negative float satisfies;
   negative literals print with a leading '-' and reparse as a (semantically
   identical) unary negation. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec expr_str ctx e =
  match e with
  | Int_lit i -> if i < 0 then "(" ^ string_of_int i ^ ")" else string_of_int i
  | Float_lit f -> float_lit f
  | Var v -> v
  | Index (a, subs) ->
    a ^ "[" ^ String.concat ", " (List.map (expr_str 0) subs) ^ "]"
  | Call (f, args) ->
    f ^ "(" ^ String.concat ", " (List.map (expr_str 0) args) ^ ")"
  | Unary (op, x) ->
    let s = (match op with UNeg -> "-" | UNot -> "!") ^ expr_str 6 x in
    if ctx > 6 then "(" ^ s ^ ")" else s
  | Binary (op, a, b) ->
    let p = binary_prec op in
    (* Comparisons do not chain in the grammar, so both operands must bind
       tighter; the associative levels only need it on the right. *)
    let lhs_ctx = if p = 3 then p + 1 else p in
    let s =
      expr_str lhs_ctx a ^ " " ^ binary_sym op ^ " " ^ expr_str (p + 1) b
    in
    if p < ctx then "(" ^ s ^ ")" else s

let print_program prog =
  let buf = Buffer.create 1024 in
  let line ind s =
    Buffer.add_string buf (String.make (2 * ind) ' ');
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  let rec stmt ind s =
    match s.desc with
    | Decl (n, ty, init) ->
      line ind
        (Printf.sprintf "var %s: %s%s;" n (vtype_to_string ty)
           (match init with Some e -> " = " ^ expr_str 0 e | None -> ""))
    | Assign (v, e) -> line ind (Printf.sprintf "%s = %s;" v (expr_str 0 e))
    | Assign_index (a, subs, e) ->
      line ind
        (Printf.sprintf "%s[%s] = %s;" a
           (String.concat ", " (List.map (expr_str 0) subs))
           (expr_str 0 e))
    | If (c, then_, else_) ->
      line ind (Printf.sprintf "if (%s) {" (expr_str 0 c));
      List.iter (stmt (ind + 1)) then_;
      if else_ = [] then line ind "}"
      else begin
        line ind "} else {";
        List.iter (stmt (ind + 1)) else_;
        line ind "}"
      end
    | While (c, body) ->
      line ind (Printf.sprintf "while (%s) {" (expr_str 0 c));
      List.iter (stmt (ind + 1)) body;
      line ind "}"
    | For { var; start; stop; step; down; body } ->
      line ind
        (Printf.sprintf "for %s = %s %s %s%s {" var (expr_str 0 start)
           (if down then "downto" else "to")
           (expr_str 0 stop)
           (match step with Some e -> " step " ^ expr_str 0 e | None -> ""));
      List.iter (stmt (ind + 1)) body;
      line ind "}"
    | Return None -> line ind "return;"
    | Return (Some e) -> line ind (Printf.sprintf "return %s;" (expr_str 0 e))
    | Expr_stmt (Call (f, args)) ->
      line ind
        (Printf.sprintf "%s(%s);" f (String.concat ", " (List.map (expr_str 0) args)))
    | Expr_stmt _ ->
      invalid_arg "Ast_ops.print_program: bare expression statement"
  in
  List.iteri
    (fun i (f : fndef) ->
      if i > 0 then Buffer.add_char buf '\n';
      let params =
        String.concat ", "
          (List.map (fun (n, ty) -> n ^ ": " ^ vtype_to_string ty) f.params)
      in
      let ret = match f.ret with Some t -> ": " ^ scalar_ty_to_string t | None -> "" in
      line 0 (Printf.sprintf "fn %s(%s)%s {" f.name params ret);
      List.iter (stmt 1) f.body;
      line 0 "}")
    prog;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sizing and indexed edits                                            *)

(* [List.map] with a guaranteed left-to-right application order, so the
   numbering of the counting and transforming traversals always agrees. *)
let map_ordered f xs = List.rev (List.fold_left (fun acc x -> f x :: acc) [] xs)

let stmt_count prog =
  let n = ref 0 in
  let rec go s =
    incr n;
    match s.desc with
    | If (_, t, e) ->
      List.iter go t;
      List.iter go e
    | While (_, b) -> List.iter go b
    | For { body; _ } -> List.iter go body
    | Decl _ | Assign _ | Assign_index _ | Return _ | Expr_stmt _ -> ()
  in
  List.iter (fun (f : fndef) -> List.iter go f.body) prog;
  !n

let transform_stmt prog target f =
  let n = ref (-1) in
  let hit = ref false in
  let rec go_list ss = List.concat (map_ordered go ss)
  and go s =
    incr n;
    if !n = target then
      match f s with
      | Some rep ->
        hit := true;
        rep
      | None -> [ keep s ]
    else [ keep s ]
  and keep s =
    let desc =
      match s.desc with
      | If (c, t, e) ->
        let t = go_list t in
        If (c, t, go_list e)
      | While (c, b) -> While (c, go_list b)
      | For fr -> For { fr with body = go_list fr.body }
      | (Decl _ | Assign _ | Assign_index _ | Return _ | Expr_stmt _) as d -> d
    in
    { s with desc }
  in
  let prog' = map_ordered (fun (fd : fndef) -> { fd with body = go_list fd.body }) prog in
  if !hit then Some prog' else None

(* The two expression traversals below must enumerate identically:
   statements in program order, expressions preorder (node before
   children), children left to right. *)

let expr_count prog =
  let n = ref 0 in
  let rec ge e =
    incr n;
    match e with
    | Int_lit _ | Float_lit _ | Var _ -> ()
    | Index (_, subs) -> List.iter ge subs
    | Binary (_, a, b) ->
      ge a;
      ge b
    | Unary (_, x) -> ge x
    | Call (_, args) -> List.iter ge args
  in
  let rec gs s =
    match s.desc with
    | Decl (_, _, init) -> Option.iter ge init
    | Assign (_, e) -> ge e
    | Assign_index (_, subs, e) ->
      List.iter ge subs;
      ge e
    | If (c, t, e) ->
      ge c;
      List.iter gs t;
      List.iter gs e
    | While (c, b) ->
      ge c;
      List.iter gs b
    | For { start; stop; step; body; _ } ->
      ge start;
      ge stop;
      Option.iter ge step;
      List.iter gs body
    | Return e -> Option.iter ge e
    | Expr_stmt e -> ge e
  in
  List.iter (fun (f : fndef) -> List.iter gs f.body) prog;
  !n

let transform_expr prog target f =
  let n = ref (-1) in
  let hit = ref false in
  let rec ge e =
    incr n;
    if !n = target then
      match f e with
      | Some e' ->
        hit := true;
        e'
      | None -> children e
    else children e
  and children e =
    match e with
    | Int_lit _ | Float_lit _ | Var _ -> e
    | Index (a, subs) -> Index (a, map_ordered ge subs)
    | Binary (op, a, b) ->
      let a = ge a in
      let b = ge b in
      Binary (op, a, b)
    | Unary (op, x) -> Unary (op, ge x)
    | Call (nm, args) -> Call (nm, map_ordered ge args)
  in
  let rec gs s =
    let desc =
      match s.desc with
      | Decl (nm, ty, init) -> Decl (nm, ty, Option.map ge init)
      | Assign (v, e) -> Assign (v, ge e)
      | Assign_index (a, subs, e) ->
        let subs = map_ordered ge subs in
        Assign_index (a, subs, ge e)
      | If (c, t, e) ->
        let c = ge c in
        let t = map_ordered gs t in
        If (c, t, map_ordered gs e)
      | While (c, b) ->
        let c = ge c in
        While (c, map_ordered gs b)
      | For fr ->
        let start = ge fr.start in
        let stop = ge fr.stop in
        let step = Option.map ge fr.step in
        For { fr with start; stop; step; body = map_ordered gs fr.body }
      | Return e -> Return (Option.map ge e)
      | Expr_stmt e -> Expr_stmt (ge e)
    in
    { s with desc }
  in
  let prog' = map_ordered (fun (fd : fndef) -> { fd with body = map_ordered gs fd.body }) prog in
  if !hit then Some prog' else None
