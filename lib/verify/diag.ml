(** Diagnostic values and renderers. See the interface. *)

module Tjson = Epre_telemetry.Tjson

type severity = Error | Warn

let severity_to_string = function Error -> "error" | Warn -> "warn"

type loc = { routine : string; block : int option; instr : int option }

type t = { rule : string; severity : severity; loc : loc; message : string }

let make ~rule ~severity ~routine ?block ?instr message =
  { rule; severity; loc = { routine; block; instr }; message }

let to_string d =
  let where =
    d.loc.routine
    ^ (match d.loc.block with Some b -> Printf.sprintf ":B%d" b | None -> "")
    ^ (match d.loc.instr with Some i -> Printf.sprintf ":%d" i | None -> "")
  in
  Printf.sprintf "%s: %s[%s]: %s" where (severity_to_string d.severity) d.rule
    d.message

let to_tjson d =
  Tjson.Obj
    ([ ("rule", Tjson.Str d.rule);
       ("severity", Tjson.Str (severity_to_string d.severity));
       ("routine", Tjson.Str d.loc.routine) ]
    @ (match d.loc.block with Some b -> [ ("block", Tjson.Int b) ] | None -> [])
    @ (match d.loc.instr with Some i -> [ ("instr", Tjson.Int i) ] | None -> [])
    @ [ ("message", Tjson.Str d.message) ])

let compare a b =
  let opt = Option.value ~default:(-1) in
  match String.compare a.loc.routine b.loc.routine with
  | 0 -> begin
    match Int.compare (opt a.loc.block) (opt b.loc.block) with
    | 0 -> begin
      match Int.compare (opt a.loc.instr) (opt b.loc.instr) with
      | 0 -> String.compare a.rule b.rule
      | c -> c
    end
    | c -> c
  end
  | c -> c
