(** Register-type inference and the [T0xx] rules.

    ILOC registers are untyped at the instruction level; the [Ty.Int] /
    [Ty.Flt] discipline the interpreter enforces dynamically (via
    [Value.Type_error]) is recovered here statically. Inference is a
    whole-program fixpoint over a three-point lattice per register
    (unknown < known < conflict):

    - definitions contribute types downward: constants, operator result
      types, [Alloca] addresses (int), copies and phis propagate, call
      results take the callee's inferred return type; loads stay unknown
      (memory words are untyped);
    - routine signatures flow around the call graph: parameter types join
      the argument types of every call site (plus the callee's own use
      constraints when the parameter is never redefined), return types
      join the types at every [Ret].

    [check] then reports operand/result mismatches, call-signature and
    phi-argument disagreements, and store/allocation inconsistencies
    against the inferred environment. A register whose definitions
    conflict is reported once ([T006]) and otherwise treated as unknown,
    so one bad definition does not cascade into every use. *)

open Epre_ir

type info

(** Fixpoint over the whole program (terminates: the lattice is finite
    and every step is monotone). *)
val infer : Program.t -> info

(** [T0xx] diagnostics for one routine of the inferred program. *)
val check : info -> Routine.t -> Diag.t list

(** The inferred type of a register, for diagnostics and tests. *)
val reg_ty : info -> routine:string -> Instr.reg -> Ty.t option
