(** The rule catalog. See the interface. *)

type t = { id : string; severity : Diag.severity; title : string }

let e id title = { id; severity = Diag.Error; title }

let w id title = { id; severity = Diag.Warn; title }

let all =
  [
    (* Structural / CFG *)
    e "V001" "entry block missing from the CFG";
    e "V002" "terminator targets a missing block";
    e "V003" "register operand out of the routine's register range";
    e "V004" "phi instruction after a non-phi";
    e "V005" "phi arguments disagree with the block's CFG predecessors";
    e "V006" "phi instruction outside SSA form";
    e "V007" "SSA well-formedness (single definitions, dominance; Ssa_check)";
    e "V008" "register read with no definition on some path from the entry";
    w "V009" "block unreachable from the entry";
    w "V010" "no reachable return terminator (infinite loop)";
    (* Types *)
    e "T001" "binary operator applied to operands of the wrong type";
    e "T002" "unary operator applied to an operand of the wrong type";
    e "T003" "load/store address is not an integer";
    e "T004" "cbr condition is not an integer";
    e "T005" "phi arguments carry conflicting types";
    e "T006" "register defined with conflicting types";
    e "T007" "call arity disagrees with the callee's parameter count";
    e "T008" "call to a routine the program does not define";
    e "T009" "call argument type disagrees with the callee's parameter type";
    e "T010" "call result expected from a routine that returns none, or of the wrong type";
    e "T011" "conflicting return types within one routine";
    w "T012" "store into an allocation of a different element type";
    (* Lints *)
    w "L001" "critical edge left unsplit";
    w "L002" "pure instruction whose result is never used";
    w "L003" "dead or self copy";
    w "L004" "empty forwarding block";
    w "L005" "redundant phi (all arguments identical)";
    w "L006" "dead phi (pruned-SSA violation)";
    w "L007" "reassociable operands out of rank order";
    (* Audit: static PRE effectiveness (the redundancy auditor) *)
    e "A001" "fully redundant expression evaluation survives";
    e "A002" "partially redundant evaluation a safe placement could remove";
    w "A003" "code motion added a speculative (not down-safe) evaluation";
    w "A004" "a path's evaluation count of an expression increased";
    w "A005" "peak register pressure increased";
    w "A006" "long-lived expression temporary spans many blocks";
    w "A007" "value-redundant evaluation survives (a congruent register holds it)";
  ]

let find id = List.find_opt (fun r -> r.id = id) all

let mem id = Option.is_some (find id)

let lint_ids =
  List.filter_map
    (fun r -> if String.length r.id > 0 && r.id.[0] = 'L' then Some r.id else None)
    all

let audit_ids =
  List.filter_map
    (fun r -> if String.length r.id > 0 && r.id.[0] = 'A' then Some r.id else None)
    all

let parse_spec spec =
  let ids =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | id :: rest -> if mem id then go (id :: acc) rest else Error id
  in
  go [] ids
