(** Verifier diagnostics: one finding of one rule at one location.

    Every diagnostic carries a stable rule id (see [Rules] for the
    catalog), a severity, and the most precise location the rule could
    establish — routine always, block and instruction index when the
    finding is anchored to one. The text rendering is the CLI's
    human-readable form; [to_tjson] is the machine form the [--json]
    flag, the CI verify-gate and the fuzz corpus consume. *)

type severity = Error | Warn

val severity_to_string : severity -> string

type loc = {
  routine : string;
  block : int option;  (** block id, i.e. the [B<id>] label *)
  instr : int option;  (** 0-based index into the block's instruction list *)
}

type t = { rule : string; severity : severity; loc : loc; message : string }

val make :
  rule:string ->
  severity:severity ->
  routine:string ->
  ?block:int ->
  ?instr:int ->
  string ->
  t

(** ["main:B2:3: error[T001]: ..."] — routine, block label and instruction
    index joined with colons, omitting the parts the rule could not
    anchor. *)
val to_string : t -> string

val to_tjson : t -> Epre_telemetry.Tjson.t

(** Stable ordering for reports: by routine, block, instruction index,
    then rule id. *)
val compare : t -> t -> int
