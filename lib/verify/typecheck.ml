(** Register-type inference and the [T0xx] rules. See the interface. *)

open Epre_ir

type ty = Unknown | Known of Ty.t | Conflict

let join a b =
  match (a, b) with
  | Unknown, x | x, Unknown -> x
  | Conflict, _ | _, Conflict -> Conflict
  | Known x, Known y -> if Ty.equal x y then a else Conflict

let ty_to_string = function
  | Unknown -> "unknown"
  | Conflict -> "conflicting"
  | Known t -> Ty.to_string t

(* Whether a routine ever executes [Ret (Some _)] / [Ret None]; joining
   both yields [Mixed], which [T011] reports. *)
type returns = R_unknown | R_value | R_none | R_mixed

let join_returns a b =
  match (a, b) with
  | R_unknown, x | x, R_unknown -> x
  | R_value, R_value -> R_value
  | R_none, R_none -> R_none
  | _ -> R_mixed

(* [param_req] is the callee's own contract — joined only from use
   constraints inside its body — and is what call-site arguments are
   checked against (T009). [param_tys] additionally joins the argument
   types of every call site and feeds the parameter's binding in the
   body's environment; folding call sites into the contract itself would
   turn every mismatch into [Conflict] and silence the report. *)
type signature = {
  mutable param_req : ty array;
  mutable param_tys : ty array;
  mutable ret_ty : ty;
  mutable returns : returns;
}

type info = {
  sigs : (string, signature) Hashtbl.t;
  envs : (string, ty array) Hashtbl.t;
}

let in_range env r = r >= 0 && r < Array.length env

let env_get env r = if in_range env r then env.(r) else Unknown

(* Merge [t] into [env.(r)]; true when the entry actually rose. *)
let merge_reg changed env r t =
  if in_range env r then begin
    let t' = join env.(r) t in
    if t' <> env.(r) then begin
      env.(r) <- t';
      changed := true
    end
  end

(* Types each instruction requires of its register operands, paired with
   the rule id a mismatch falls under. Calls are handled separately via
   the callee's signature. *)
let use_constraints = function
  | Instr.Unop { op; src; _ } -> [ (src, Op.unop_operand_ty op, "T002") ]
  | Instr.Binop { op; a; b; _ } ->
    let t = Op.binop_operand_ty op in
    [ (a, t, "T001"); (b, t, "T001") ]
  | Instr.Load { addr; _ } -> [ (addr, Ty.Int, "T003") ]
  | Instr.Store { addr; _ } -> [ (addr, Ty.Int, "T003") ]
  | Instr.Const _ | Instr.Copy _ | Instr.Alloca _ | Instr.Call _
  | Instr.Phi _ ->
    []

let term_constraints = function
  | Instr.Cbr { cond; _ } -> [ (cond, Ty.Int, "T004") ]
  | Instr.Jump _ | Instr.Ret _ -> []

(* The type an instruction's definition carries, given the current
   environment and signature table. *)
let def_ty sigs env = function
  | Instr.Const { value; _ } -> Known (Value.ty value)
  | Instr.Copy { src; _ } -> env_get env src
  | Instr.Unop { op; _ } -> Known (Op.unop_result_ty op)
  | Instr.Binop { op; _ } -> Known (Op.binop_result_ty op)
  | Instr.Load _ -> Unknown (* memory words are untyped *)
  | Instr.Alloca _ -> Known Ty.Int (* an address *)
  | Instr.Call { callee; args; _ } -> begin
    match callee with
    | "emit" -> ( match args with [ a ] -> env_get env a | _ -> Unknown)
    | _ -> begin
      match Hashtbl.find_opt sigs callee with
      | Some s -> s.ret_ty
      | None -> Unknown
    end
  end
  | Instr.Phi { args; _ } ->
    List.fold_left (fun acc (_, r) -> join acc (env_get env r)) Unknown args
  | Instr.Store _ -> Unknown (* no definition *)

(* Registers a routine never defines keep their parameter binding for the
   whole body, so use constraints on them refine the signature. *)
let undefined_params (r : Routine.t) =
  let defined = Hashtbl.create 16 in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match Instr.def i with
          | Some d -> Hashtbl.replace defined d ()
          | None -> ())
        b.Block.instrs)
    r.Routine.cfg;
  List.filteri (fun _ p -> not (Hashtbl.mem defined p)) r.Routine.params

let one_round changed (p : Program.t) (info : info) =
  List.iter
    (fun (r : Routine.t) ->
      let name = r.Routine.name in
      let env = Hashtbl.find info.envs name in
      let s = Hashtbl.find info.sigs name in
      (* Parameter bindings flow from the signature into the body. *)
      List.iteri
        (fun i p ->
          if i < Array.length s.param_tys then
            merge_reg changed env p s.param_tys.(i))
        r.Routine.params;
      (* Use constraints on never-redefined parameters refine the
         signature (and the binding itself). *)
      let free_params = undefined_params r in
      let constrain_use u t =
        List.iteri
          (fun i p ->
            if p = u && List.mem p free_params then begin
              if i < Array.length s.param_tys then begin
                let t' = join s.param_tys.(i) (Known t) in
                if t' <> s.param_tys.(i) then begin
                  s.param_tys.(i) <- t';
                  changed := true
                end;
                let q = join s.param_req.(i) (Known t) in
                if q <> s.param_req.(i) then begin
                  s.param_req.(i) <- q;
                  changed := true
                end
              end;
              merge_reg changed env p (Known t)
            end)
          r.Routine.params
      in
      Cfg.iter_blocks
        (fun b ->
          List.iter
            (fun i ->
              List.iter
                (fun (u, t, _) -> constrain_use u t)
                (use_constraints i);
              (* Definitions contribute downward. *)
              (match Instr.def i with
              | Some d -> merge_reg changed env d (def_ty info.sigs env i)
              | None -> ());
              (* Call sites push argument types into callee signatures. *)
              match i with
              | Instr.Call { callee; args; _ } -> begin
                match Hashtbl.find_opt info.sigs callee with
                | None -> ()
                | Some cs ->
                  List.iteri
                    (fun k a ->
                      if k < Array.length cs.param_tys then begin
                        let t' = join cs.param_tys.(k) (env_get env a) in
                        if t' <> cs.param_tys.(k) then begin
                          cs.param_tys.(k) <- t';
                          changed := true
                        end
                      end)
                    args
              end
              | _ -> ())
            b.Block.instrs;
          List.iter
            (fun (u, t, _) -> constrain_use u t)
            (term_constraints b.Block.term);
          (* Return sites contribute to the routine's return type. *)
          match b.Block.term with
          | Instr.Ret (Some v) ->
            let t' = join s.ret_ty (env_get env v) in
            if t' <> s.ret_ty then begin
              s.ret_ty <- t';
              changed := true
            end;
            let rv = join_returns s.returns R_value in
            if rv <> s.returns then begin
              s.returns <- rv;
              changed := true
            end
          | Instr.Ret None ->
            let rv = join_returns s.returns R_none in
            if rv <> s.returns then begin
              s.returns <- rv;
              changed := true
            end
          | _ -> ())
        r.Routine.cfg)
    (Program.routines p)

let infer (p : Program.t) =
  let info = { sigs = Hashtbl.create 8; envs = Hashtbl.create 8 } in
  List.iter
    (fun (r : Routine.t) ->
      Hashtbl.replace info.sigs r.Routine.name
        {
          param_req = Array.make (List.length r.Routine.params) Unknown;
          param_tys = Array.make (List.length r.Routine.params) Unknown;
          ret_ty = Unknown;
          returns = R_unknown;
        };
      Hashtbl.replace info.envs r.Routine.name
        (Array.make (max 1 r.Routine.next_reg) Unknown))
    (Program.routines p);
  let changed = ref true in
  (* Monotone over a finite lattice: terminates. *)
  while !changed do
    changed := false;
    one_round changed p info
  done;
  info

let reg_ty info ~routine r =
  match Hashtbl.find_opt info.envs routine with
  | None -> None
  | Some env -> (
    match env_get env r with Known t -> Some t | Unknown | Conflict -> None)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let check (info : info) (r : Routine.t) =
  let name = r.Routine.name in
  let env =
    match Hashtbl.find_opt info.envs name with
    | Some e -> e
    | None -> [||]
  in
  let diags = ref [] in
  let severity rule =
    match Rules.find rule with
    | Some ru -> ru.Rules.severity
    | None -> Diag.Error
  in
  let report ~rule ?block ?instr fmt =
    Printf.ksprintf
      (fun msg ->
        diags :=
          Diag.make ~rule ~severity:(severity rule) ~routine:name ?block
            ?instr msg
          :: !diags)
      fmt
  in
  (* Only definitely-known wrong types are reported; [Unknown] (e.g. a
     load result) and [Conflict] (already reported once as T006) stay
     silent so one root cause yields one diagnostic. *)
  let check_use ~block ~instr (u, want, rule) =
    match env_get env u with
    | Known got when not (Ty.equal got want) ->
      report ~rule ~block ~instr "r%d has type %s where %s is required" u
        (Ty.to_string got) (Ty.to_string want)
    | _ -> ()
  in
  (* T006: one report per conflicting register, at its first definition. *)
  let conflict_reported = Hashtbl.create 4 in
  let alloca_init = Hashtbl.create 4 in
  Cfg.iter_blocks
    (fun b ->
      let block = b.Block.id in
      List.iteri
        (fun instr i ->
          List.iter
            (fun c -> check_use ~block ~instr c)
            (use_constraints i);
          (match Instr.def i with
          | Some d
            when env_get env d = Conflict
                 && not (Hashtbl.mem conflict_reported d) ->
            Hashtbl.replace conflict_reported d ();
            report ~rule:"T006" ~block ~instr
              "r%d is defined with conflicting types" d
          | _ -> ());
          match i with
          | Instr.Alloca { dst; init; _ } ->
            Hashtbl.replace alloca_init dst (Value.ty init)
          | Instr.Store { addr; src } -> begin
            (* T012: the address is (a copy of) exactly one allocation
               whose element type disagrees with the stored value. *)
            match (Hashtbl.find_opt alloca_init addr, env_get env src) with
            | Some elem, Known got when not (Ty.equal elem got) ->
              report ~rule:"T012" ~block ~instr
                "store of %s into an allocation of %s elements"
                (Ty.to_string got) (Ty.to_string elem)
            | _ -> ()
          end
          | Instr.Phi { dst; args } ->
            let joined =
              List.fold_left
                (fun acc (_, a) -> join acc (env_get env a))
                Unknown args
            in
            if joined = Conflict then
              report ~rule:"T005" ~block ~instr
                "phi for r%d joins arguments of conflicting types (%s)" dst
                (String.concat ", "
                   (List.map
                      (fun (p, a) ->
                        Printf.sprintf "B%d: r%d %s" p a
                          (ty_to_string (env_get env a)))
                      args))
          | Instr.Call { dst; callee; args } -> begin
            match callee with
            | "emit" ->
              if List.length args <> 1 then
                report ~rule:"T007" ~block ~instr
                  "emit expects 1 argument, got %d" (List.length args)
            | _ -> begin
              match Hashtbl.find_opt info.sigs callee with
              | None ->
                report ~rule:"T008" ~block ~instr
                  "call to unknown routine %s" callee
              | Some s ->
                let want = Array.length s.param_tys in
                let got = List.length args in
                if got <> want then
                  report ~rule:"T007" ~block ~instr
                    "%s expects %d argument%s, got %d" callee want
                    (if want = 1 then "" else "s")
                    got;
                List.iteri
                  (fun k a ->
                    if k < want then
                      match (s.param_req.(k), env_get env a) with
                      | Known p, Known g when not (Ty.equal p g) ->
                        report ~rule:"T009" ~block ~instr
                          "argument %d of %s: r%d has type %s where %s is \
                           required"
                          k callee a (Ty.to_string g) (Ty.to_string p)
                      | _ -> ())
                  args;
                match dst with
                | Some d when s.returns = R_none ->
                  report ~rule:"T010" ~block ~instr
                    "r%d takes the result of %s, which returns none" d
                    callee
                | _ -> ()
            end
          end
          | _ -> ())
        b.Block.instrs;
      List.iter
        (fun c -> check_use ~block ~instr:(List.length b.Block.instrs) c)
        (term_constraints b.Block.term))
    r.Routine.cfg;
  (* T011: inconsistent returns across the routine's [Ret] sites. *)
  (match Hashtbl.find_opt info.sigs name with
  | Some s ->
    if s.returns = R_mixed then
      report ~rule:"T011"
        "some return sites yield a value and some do not";
    if s.ret_ty = Conflict then
      report ~rule:"T011" "return sites yield conflicting types"
  | None -> ());
  List.sort Diag.compare !diags
