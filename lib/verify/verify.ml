(** The verifier driver. See the interface. *)

open Epre_ir
module Tjson = Epre_telemetry.Tjson
module Metrics = Epre_telemetry.Metrics
module Order = Epre_analysis.Order
module Initialized = Epre_analysis.Initialized
module Bitset = Epre_util.Bitset
module Ssa_check = Epre_ssa.Ssa_check

type config = { rules : string list option; include_lints : bool }

let default = { rules = None; include_lints = false }

let lint_config = { rules = None; include_lints = true }

let diag ~rule ~routine ?block ?instr fmt =
  let severity =
    match Rules.find rule with
    | Some r -> r.Rules.severity
    | None -> Diag.Error
  in
  Printf.ksprintf
    (fun msg -> Diag.make ~rule ~severity ~routine ?block ?instr msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Structural rules                                                   *)
(* ------------------------------------------------------------------ *)

(* The fatal subset: violations that make the rest of the verifier
   meaningless (or crash-prone) — every later rule indexes arrays by
   block id and register number. *)
let structural_fatal (r : Routine.t) =
  let name = r.Routine.name in
  let cfg = r.Routine.cfg in
  if not (Cfg.mem cfg (Cfg.entry cfg)) then
    [ diag ~rule:"V001" ~routine:name "entry block B%d is missing"
        (Cfg.entry cfg) ]
  else begin
    let out = ref [] in
    let width = r.Routine.next_reg in
    let bad_reg u = u < 0 || u >= width in
    Cfg.iter_blocks
      (fun b ->
        let id = b.Block.id in
        List.iteri
          (fun idx i ->
            List.iter
              (fun u ->
                if bad_reg u then
                  out :=
                    diag ~rule:"V003" ~routine:name ~block:id ~instr:idx
                      "use of r%d is out of range (regs %d)" u width
                    :: !out)
              (Instr.uses i);
            match Instr.def i with
            | Some d when bad_reg d ->
              out :=
                diag ~rule:"V003" ~routine:name ~block:id ~instr:idx
                  "definition of r%d is out of range (regs %d)" d width
                :: !out
            | _ -> ())
          b.Block.instrs;
        let nterm = List.length b.Block.instrs in
        List.iter
          (fun u ->
            if bad_reg u then
              out :=
                diag ~rule:"V003" ~routine:name ~block:id ~instr:nterm
                  "use of r%d is out of range (regs %d)" u width
                :: !out)
          (Instr.term_uses b.Block.term);
        List.iter
          (fun s ->
            if not (Cfg.mem cfg s) then
              out :=
                diag ~rule:"V002" ~routine:name ~block:id
                  "terminator targets missing block B%d" s
                :: !out)
          (Instr.term_succs b.Block.term))
      cfg;
    !out
  end

let structural_rest (r : Routine.t) =
  let name = r.Routine.name in
  let cfg = r.Routine.cfg in
  let order = Order.compute cfg in
  let preds = Cfg.preds cfg in
  let out = ref [] in
  let saw_ret = ref false in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if not (Order.is_reachable order id) then
        out :=
          diag ~rule:"V009" ~routine:name ~block:id
            "block is unreachable from the entry"
          :: !out;
      (match b.Block.term with
      | Instr.Ret _ when Order.is_reachable order id -> saw_ret := true
      | _ -> ());
      let seen_non_phi = ref false in
      List.iteri
        (fun idx i ->
          match i with
          | Instr.Phi { args; _ } ->
            if !seen_non_phi then
              out :=
                diag ~rule:"V004" ~routine:name ~block:id ~instr:idx
                  "phi appears after a non-phi instruction"
                :: !out;
            if not r.Routine.in_ssa then
              out :=
                diag ~rule:"V006" ~routine:name ~block:id ~instr:idx
                  "phi present while the routine is not in SSA form"
                :: !out;
            let got = List.sort_uniq Int.compare (List.map fst args) in
            let want = List.sort_uniq Int.compare preds.(id) in
            if got <> want then
              out :=
                diag ~rule:"V005" ~routine:name ~block:id ~instr:idx
                  "phi arguments name predecessors {%s}, CFG has {%s}"
                  (String.concat ", "
                     (List.map (Printf.sprintf "B%d") got))
                  (String.concat ", "
                     (List.map (Printf.sprintf "B%d") want))
                :: !out
          | _ -> seen_non_phi := true)
        b.Block.instrs)
    cfg;
  if not !saw_ret then
    out :=
      diag ~rule:"V010" ~routine:name
        "no return terminator is reachable from the entry"
      :: !out;
  !out

(* ------------------------------------------------------------------ *)
(* Flow rules: V007 in SSA, V008 outside it                           *)
(* ------------------------------------------------------------------ *)

let flow_ssa (r : Routine.t) =
  try
    Ssa_check.check r;
    []
  with
  | Ssa_check.Not_ssa msg ->
    [ diag ~rule:"V007" ~routine:r.Routine.name "%s" msg ]
  | Routine.Ill_formed msg ->
    [ diag ~rule:"V007" ~routine:r.Routine.name "%s" msg ]

(* Definite assignment: walk each reachable block with the set of
   registers assigned on every path to it, flagging reads outside the
   set. Phis are skipped — they only occur (erroneously) outside SSA
   here and are already reported as V006. *)
let flow_non_ssa (r : Routine.t) =
  let name = r.Routine.name in
  let init = Initialized.compute r in
  let order = Order.compute r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let out = ref [] in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        let live = Bitset.copy (Initialized.on_entry init id) in
        let check_use idx u =
          if u >= 0 && u < width && not (Bitset.mem live u) then
            out :=
              diag ~rule:"V008" ~routine:name ~block:id ~instr:idx
                "r%d may be read before any definition reaches it" u
              :: !out
        in
        List.iteri
          (fun idx i ->
            (match i with
            | Instr.Phi _ -> ()
            | _ -> List.iter (check_use idx) (Instr.uses i));
            match Instr.def i with
            | Some d when d >= 0 && d < width -> Bitset.add live d
            | _ -> ())
          b.Block.instrs;
        List.iter
          (check_use (List.length b.Block.instrs))
          (Instr.term_uses b.Block.term)
      end)
    r.Routine.cfg;
  !out

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let structurally_sound r = structural_fatal r = []

let apply_filter config diags =
  match config.rules with
  | None -> diags
  | Some ids ->
    List.filter (fun (d : Diag.t) -> List.mem d.Diag.rule ids) diags

let check_routine_with ~config ~tc (r : Routine.t) ~lints =
  match structural_fatal r with
  | _ :: _ as fatal -> apply_filter config (List.sort Diag.compare fatal)
  | [] ->
    let flow = if r.Routine.in_ssa then flow_ssa r else flow_non_ssa r in
    let diags =
      structural_rest r @ flow @ Typecheck.check tc r @ lints r
    in
    apply_filter config (List.sort Diag.compare diags)

let lints_of_config config r =
  if config.include_lints then Lints.check r else []

let check_routine ?(config = default) ~program r =
  let tc = Typecheck.infer program in
  check_routine_with ~config ~tc r ~lints:(lints_of_config config)

let check_program ?(config = default) p =
  let tc = Typecheck.infer p in
  List.concat_map
    (fun r -> check_routine_with ~config ~tc r ~lints:(lints_of_config config))
    (Program.routines p)

(* ------------------------------------------------------------------ *)
(* Per-pass postconditions                                            *)
(* ------------------------------------------------------------------ *)

(* Lint rules a pass is expected to have discharged. All postconditions
   are warnings, so a pass that misses one is surfaced, not rolled
   back — the paper's transformations are improvements, not contracts. *)
let postcondition_table =
  [
    ("pre", [ "L001" ]);
    ("pre-classic", [ "L001" ]);
    ("reassociate", [ "L007" ]);
    ("distribute", [ "L007" ]);
    ("reassociation", [ "L007" ]);
    ("dce", [ "L002" ]);
    ("adce", [ "L002" ]);
    ("coalesce", [ "L003" ]);
    ("clean", [ "L004" ]);
    ("dvnt", [ "L005" ]);
  ]

let postconditions pass =
  match List.assoc_opt pass postcondition_table with
  | Some ids -> ids
  | None -> []

let check_post_pass ~pass ~program r =
  let tc = Typecheck.infer program in
  let post = postconditions pass in
  let lints r = if post = [] then [] else Lints.check_only post r in
  check_routine_with ~config:default ~tc r ~lints

(* ------------------------------------------------------------------ *)
(* Report helpers                                                     *)
(* ------------------------------------------------------------------ *)

let errors = List.filter (fun d -> d.Diag.severity = Diag.Error)

let warnings = List.filter (fun d -> d.Diag.severity = Diag.Warn)

let render diags = String.concat "\n" (List.map Diag.to_string diags)

let to_tjson diags =
  Tjson.Obj
    [
      ("diagnostics", Tjson.Arr (List.map Diag.to_tjson diags));
      ("errors", Tjson.Int (List.length (errors diags)));
      ("warnings", Tjson.Int (List.length (warnings diags)));
    ]

let record_metrics diags =
  List.iter
    (fun (d : Diag.t) ->
      Metrics.incr ~routine:d.Diag.loc.Diag.routine
        ~name:("verify." ^ d.Diag.rule))
    diags
