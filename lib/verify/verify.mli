(** The verifier driver: structural ([V0xx]), type ([T0xx]) and lint
    ([L0xx]) rules over a routine or program, plus the per-pass
    postcondition registry the harness's IR validation tier runs.

    Rule ordering inside one routine: the structural scan runs first, and
    its fatal subset (missing entry, dangling terminator target, register
    out of range) short-circuits everything else — the later rules index
    arrays by block id and register and would only crash or cascade.
    SSA routines then go through [Ssa_check] (rule V007); non-SSA
    routines through the definite-assignment analysis (rule V008). Type
    rules run on every structurally sound routine; lints only when the
    configuration asks for them. *)

open Epre_ir

type config = {
  rules : string list option;
      (** restrict output to these rule ids; [None] = all *)
  include_lints : bool;  (** run [L0xx] rules too *)
}

(** V and T rules only, all of them. *)
val default : config

(** Everything, lints included. *)
val lint_config : config

(** No fatal structural defect (missing entry, dangling terminator
    target, register out of range) — the precondition for any analysis
    that indexes arrays by block id or register, including the
    redundancy auditor ([Analyze]). *)
val structurally_sound : Routine.t -> bool

(** Diagnostics for one routine. [program] supplies call-graph context
    for the type rules (signatures of callees). *)
val check_routine : ?config:config -> program:Program.t -> Routine.t -> Diag.t list

(** Diagnostics for every routine, in [Diag.compare] order per routine,
    with one shared type-inference fixpoint. *)
val check_program : ?config:config -> Program.t -> Diag.t list

(** What the harness's IR tier runs after [pass]: all V/T rules plus the
    pass's registered postcondition lints. *)
val check_post_pass : pass:string -> program:Program.t -> Routine.t -> Diag.t list

(** Lint rule ids registered as postconditions of [pass] ([] for passes
    with none). *)
val postconditions : string -> string list

(** Passes with registered postconditions, with their lint ids. *)
val postcondition_table : (string * string list) list

val errors : Diag.t list -> Diag.t list

val warnings : Diag.t list -> Diag.t list

(** One [Diag.to_string] line per diagnostic. *)
val render : Diag.t list -> string

(** [{"diagnostics":[...],"errors":N,"warnings":N}] *)
val to_tjson : Diag.t list -> Epre_telemetry.Tjson.t

(** Bump the [verify.<rule>] telemetry counter (keyed by the diagnostic's
    routine) for each diagnostic. *)
val record_metrics : Diag.t list -> unit
