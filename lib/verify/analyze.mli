(** The redundancy auditor's verifier-side driver: runs
    [Epre_analysis.Audit] over routines and programs, converts its
    findings to [Diag.t] diagnostics under the [A0xx] rule family, and
    registers the per-pass audit postconditions the harness's IR tier
    can opt into.

    Division of labour: [Audit] measures (dataflow, value numbering,
    pressure) and knows nothing about severities or diagnostics;
    this module owns the catalog mapping, the structural-soundness
    guard (a routine with fatal structural defects is skipped — the
    V rules already cover it), and the JSON/telemetry plumbing. *)

open Epre_ir
module Audit = Epre_analysis.Audit

(** Audit one routine. Returns the raw report paired with its findings
    as diagnostics (severities from the [Rules] catalog, sorted by
    [Diag.compare]). [None] when the routine is not structurally sound
    or is still in SSA form (the auditor's systems assume executable
    three-address code). [expect_pre] arms A001/A002; [baseline] arms
    A003/A004/A005 (see [Audit.run]). *)
val check_routine :
  ?expect_pre:bool ->
  ?baseline:Routine.t ->
  Routine.t ->
  (Audit.report * Diag.t list) option

(** Audit every routine of [p]. Baselines are matched by routine name in
    [baseline]; routines without a match are audited without delta
    rules. Returns per-routine reports (skipped routines omitted) and
    all diagnostics. *)
val check_program :
  ?expect_pre:bool ->
  ?baseline:Program.t ->
  Program.t ->
  (string * Audit.report) list * Diag.t list

(** Passes whose effect the auditor can judge, with the [expect_pre]
    arming flag: after a PRE-level pass the redundancy-residue errors
    A001/A002 apply; after the enabling transformations only the delta
    and advisory rules do. Consulted by the harness when its [audit]
    switch is on; deliberately separate from [Verify.postcondition_table]
    (those are lint postconditions and roll into [--strict]; audit
    findings never roll a pass back). *)
val audit_postconditions : (string * bool) list

(** [expect_pre] flag for [pass]; [None] when the pass is not audited. *)
val audited_pass : string -> bool option

(** Audit [r] after [pass] against the pre-pass [baseline]. [] when the
    pass is not in [audit_postconditions] or the routine is skipped. *)
val check_post_pass :
  pass:string -> baseline:Routine.t -> Routine.t -> Diag.t list

(** Machine form of a report for [--json]: classification and
    down-safety per site, per-block pressure, pressure/speculation
    deltas when a baseline was supplied, and the residual score. *)
val report_to_tjson :
  routine:string -> Audit.report -> Epre_telemetry.Tjson.t

(** Bump the [analyze.<rule>] telemetry counter (keyed by the
    diagnostic's routine) for each diagnostic. *)
val record_metrics : Diag.t list -> unit
