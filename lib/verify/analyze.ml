(** Verifier-side driver for the redundancy auditor. See the interface. *)

open Epre_ir
module Audit = Epre_analysis.Audit
module Tjson = Epre_telemetry.Tjson
module Metrics = Epre_telemetry.Metrics

let severity_of rule =
  match Rules.find rule with
  | Some r -> r.Rules.severity
  | None -> Diag.Warn

let diag_of_finding ~routine (f : Audit.finding) =
  {
    Diag.rule = f.Audit.rule;
    severity = severity_of f.Audit.rule;
    loc = { Diag.routine; block = f.Audit.block; instr = f.Audit.index };
    message = f.Audit.message;
  }

let auditable (r : Routine.t) =
  (not r.Routine.in_ssa) && Verify.structurally_sound r

let check_routine ?(expect_pre = false) ?baseline (r : Routine.t) =
  if not (auditable r) then None
  else
    let baseline =
      match baseline with
      | Some b when auditable b -> Some b
      | _ -> None
    in
    let report = Audit.run ~expect_pre ?baseline r in
    let diags =
      List.sort Diag.compare
        (List.map (diag_of_finding ~routine:r.Routine.name) report.Audit.findings)
    in
    Some (report, diags)

let check_program ?(expect_pre = false) ?baseline (p : Program.t) =
  let reports = ref [] in
  let diags = ref [] in
  List.iter
    (fun (r : Routine.t) ->
      let base =
        Option.bind baseline (fun b -> Program.find b r.Routine.name)
      in
      match check_routine ~expect_pre ?baseline:base r with
      | None -> ()
      | Some (report, ds) ->
        reports := (r.Routine.name, report) :: !reports;
        diags := ds :: !diags)
    (Program.routines p);
  (List.rev !reports, List.concat (List.rev !diags))

(* The passes worth auditing: the redundancy eliminators themselves
   (residue is an error after them) and the enabling transformations
   (only deltas and advisories apply — reassociation legitimately
   leaves redundancy for PRE to collect). *)
let audit_postconditions =
  [
    ("pre", true);
    ("pre-classic", true);
    ("gvn", false);
    ("cse-dom", false);
    ("cse-avail", false);
    ("dvnt", false);
    ("reassociate", false);
    ("distribute", false);
  ]

let audited_pass pass = List.assoc_opt pass audit_postconditions

let check_post_pass ~pass ~baseline r =
  match audited_pass pass with
  | None -> []
  | Some expect_pre -> (
    match check_routine ~expect_pre ~baseline r with
    | None -> []
    | Some (_, diags) -> diags)

let site_to_tjson (s : Audit.site) =
  Tjson.Obj
    [
      ("block", Tjson.Int s.Audit.block);
      ("index", Tjson.Int s.Audit.index);
      ("dst", Tjson.Int s.Audit.dst);
      ("text", Tjson.Str s.Audit.text);
      ( "classification",
        Tjson.Str (Audit.classification_to_string s.Audit.cls) );
      ( "value_regs",
        Tjson.Arr (List.map (fun r -> Tjson.Int r) s.Audit.value_regs) );
      ("speculative", Tjson.Bool s.Audit.speculative);
    ]

let report_to_tjson ~routine (rep : Audit.report) =
  let opt_int name = function
    | Some n -> [ (name, Tjson.Int n) ]
    | None -> []
  in
  Tjson.Obj
    ([
       ("routine", Tjson.Str routine);
       ("sites", Tjson.Arr (List.map site_to_tjson rep.Audit.sites));
       ("residual", Tjson.Int (Audit.residual rep));
       ( "block_pressure",
         Tjson.Arr
           (List.map
              (fun (b, p) ->
                Tjson.Obj [ ("block", Tjson.Int b); ("pressure", Tjson.Int p) ])
              rep.Audit.block_pressure) );
       ("max_pressure", Tjson.Int rep.Audit.max_pressure);
       ("speculative_count", Tjson.Int rep.Audit.speculative_count);
     ]
    @ opt_int "baseline_max_pressure" rep.Audit.baseline_max_pressure
    @ opt_int "baseline_speculative_count" rep.Audit.baseline_speculative_count)

let record_metrics diags =
  List.iter
    (fun (d : Diag.t) ->
      Metrics.incr ~routine:d.Diag.loc.Diag.routine
        ~name:("analyze." ^ d.Diag.rule))
    diags
