(** The [L0xx] lints: warnings about IR that is well-formed but that a
    well-behaved optimization pipeline should not leave behind — unsplit
    critical edges after PRE, dead pure code after DCE, forwarding blocks
    after clean, non-pruned or redundant phis after SSA construction, and
    reassociable operands out of rank order after reassociation.

    Lints never fail verification on their own; the harness surfaces them
    as counts, [eprec lint] prints them, and [--strict] callers may
    promote them. [check] runs every lint; [check_only] restricts to a
    subset of rule ids (used by the per-pass postcondition registry). *)

open Epre_ir

val check : Routine.t -> Diag.t list

(** Run only the lints whose rule id is listed. Unknown ids are
    ignored. *)
val check_only : string list -> Routine.t -> Diag.t list
