(** The [L0xx] lints. See the interface. *)

open Epre_ir
module Defuse = Epre_analysis.Defuse
module Order = Epre_analysis.Order
module Ssa = Epre_ssa.Ssa
module Rank = Epre_reassoc.Rank

let warn ~rule ~routine ?block ?instr fmt =
  Printf.ksprintf
    (fun msg ->
      Diag.make ~rule ~severity:Diag.Warn ~routine ?block ?instr msg)
    fmt

(* L001: an edge from a multi-successor block into a multi-predecessor
   block. PRE needs these split to have a legal insertion point. *)
let critical_edges (r : Routine.t) ~order =
  let cfg = r.Routine.cfg in
  let preds = Cfg.preds cfg in
  let out = ref [] in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then
        match Instr.term_succs b.Block.term with
        | [] | [ _ ] -> ()
        | succs ->
          List.iter
            (fun s ->
              if Cfg.mem cfg s && List.length preds.(s) > 1 then
                out :=
                  warn ~rule:"L001" ~routine:r.Routine.name ~block:id
                    "critical edge B%d -> B%d is unsplit" id s
                  :: !out)
            succs)
    cfg;
  !out

(* L002 dead pure instruction, L003 dead/self copy, L004 empty forwarding
   block, L005 redundant phi, L006 dead phi. One Defuse pass serves all
   of them. *)
let dead_and_shape (r : Routine.t) ~order =
  let du = Defuse.compute r in
  let name = r.Routine.name in
  let out = ref [] in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        List.iteri
          (fun idx i ->
            match i with
            | Instr.Copy { dst; src } ->
              if dst = src then
                out :=
                  warn ~rule:"L003" ~routine:name ~block:id ~instr:idx
                    "self copy of r%d" dst
                  :: !out
              else if Defuse.use_count du dst = 0 then
                out :=
                  warn ~rule:"L003" ~routine:name ~block:id ~instr:idx
                    "copy into r%d, which is never used" dst
                  :: !out
            | Instr.Phi { dst; args } ->
              let non_self =
                List.sort_uniq Int.compare
                  (List.filter_map
                     (fun (_, a) -> if a = dst then None else Some a)
                     args)
              in
              if List.length non_self <= 1 then
                out :=
                  warn ~rule:"L005" ~routine:name ~block:id ~instr:idx
                    "phi for r%d is redundant: all arguments are identical"
                    dst
                  :: !out
              else if Defuse.use_count du dst = 0 then
                out :=
                  warn ~rule:"L006" ~routine:name ~block:id ~instr:idx
                    "phi for r%d is never used (pruned SSA would omit it)"
                    dst
                  :: !out
            | _ -> begin
              match Instr.def i with
              | Some d
                when Instr.is_pure i && Defuse.use_count du d = 0 ->
                out :=
                  warn ~rule:"L002" ~routine:name ~block:id ~instr:idx
                    "pure instruction defines r%d, which is never used" d
                  :: !out
              | _ -> ()
            end)
          b.Block.instrs;
        match (b.Block.instrs, b.Block.term) with
        | [], Instr.Jump t
          when id <> Cfg.entry r.Routine.cfg && t <> id ->
          out :=
            warn ~rule:"L004" ~routine:name ~block:id
              "empty block only forwards to B%d" t
            :: !out
        | _ -> ()
      end)
    r.Routine.cfg;
  !out

(* L007: operands of a commutative, associative(-modulo-rounding) binop
   out of rank order. Reassociation sorts n-ary operands by ascending
   rank and left-folds, so rank(a) <= rank(b) afterwards. Ranks need SSA;
   outside SSA the check runs on a throwaway SSA copy, mapping indices
   back past the inserted phis (SSA construction renames registers and
   prepends phis but never reorders a block's instructions). *)
let rank_order (r : Routine.t) =
  try
    let ssa_r, built =
      if r.Routine.in_ssa then (r, false)
      else begin
        let c = Routine.copy r in
        ignore (Ssa.build c);
        (c, true)
      end
    in
    let rank = Rank.compute ssa_r in
    let out = ref [] in
    Cfg.iter_blocks
      (fun b ->
        let id = b.Block.id in
        let nphis =
          List.length
            (List.filter
               (function Instr.Phi _ -> true | _ -> false)
               b.Block.instrs)
        in
        List.iteri
          (fun idx i ->
            match i with
            | Instr.Binop { op; a; b = rb; _ }
              when Op.associative_modulo_rounding op && Op.commutative op
              ->
              let ra = Rank.of_reg rank a and rbk = Rank.of_reg rank rb in
              if ra > rbk then
                let orig_idx = if built then idx - nphis else idx in
                out :=
                  warn ~rule:"L007" ~routine:r.Routine.name ~block:id
                    ~instr:(max 0 orig_idx)
                    "operands of %s are out of rank order (%d > %d)"
                    (Op.binop_name op) ra rbk
                  :: !out
            | _ -> ())
          b.Block.instrs)
      ssa_r.Routine.cfg;
    !out
  with _ ->
    (* A routine the SSA builder rejects is reported by V/T rules; the
       lint stays quiet rather than crashing on it. *)
    []

let all_lints (r : Routine.t) =
  let order = Order.compute r.Routine.cfg in
  critical_edges r ~order @ dead_and_shape r ~order @ rank_order r

let check r = List.sort Diag.compare (all_lints r)

let check_only ids r =
  List.sort Diag.compare
    (List.filter (fun (d : Diag.t) -> List.mem d.Diag.rule ids)
       (all_lints r))
