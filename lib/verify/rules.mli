(** The rule catalog: every diagnostic the verifier can emit, under a
    stable id.

    Id families: [V0xx] structural/CFG rules, [T0xx] type rules, [L0xx]
    lints. Severities are fixed per rule — V/T rules are errors (the
    harness rolls a pass back on them), L rules are warnings (surfaced,
    never fatal unless the caller promotes them with [--strict]). The
    catalog is the source of truth for [--rules] validation, the DESIGN.md
    rule table, and the per-rule telemetry counters. *)

type t = {
  id : string;
  severity : Diag.severity;
  title : string;  (** one line, for listings and the rule table *)
}

val all : t list

val find : string -> t option

(** [mem id] = the id names a registered rule. *)
val mem : string -> bool

(** Ids of every lint ([L0xx]) rule. *)
val lint_ids : string list

(** Validate a comma-separated [--rules] spec; [Error id] on the first
    unknown id. *)
val parse_spec : string -> (string list, string) result
