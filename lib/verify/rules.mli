(** The rule catalog: every diagnostic the verifier can emit, under a
    stable id.

    Id families: [V0xx] structural/CFG rules, [T0xx] type rules, [L0xx]
    lints, [A0xx] audit findings from the redundancy auditor
    ([Analyze]). Severities are fixed per rule — V/T rules are errors
    (the harness rolls a pass back on them), L rules are warnings
    (surfaced, never fatal unless the caller promotes them with
    [--strict]); A rules split: residual redundancy (A001/A002) is an
    error — the auditor checks those against the engine's own LCM
    placement, so they are precise — while the down-safety delta (A003,
    judged through a conservative register-level must-use proxy) and
    the advisory effectiveness findings (A004–A007) are warnings.
    A-rule errors never roll a pass back — the audited code is still
    correct, just not as good as the paper promises. The
    catalog is the source of truth for [--rules] validation, the DESIGN.md
    rule table, and the per-rule telemetry counters. *)

type t = {
  id : string;
  severity : Diag.severity;
  title : string;  (** one line, for listings and the rule table *)
}

val all : t list

val find : string -> t option

(** [mem id] = the id names a registered rule. *)
val mem : string -> bool

(** Ids of every lint ([L0xx]) rule. *)
val lint_ids : string list

(** Ids of every audit ([A0xx]) rule — the redundancy auditor's family. *)
val audit_ids : string list

(** Validate a comma-separated [--rules] spec; [Error id] on the first
    unknown id. *)
val parse_spec : string -> (string list, string) result
