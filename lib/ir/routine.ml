(** A compiled routine: parameters, CFG, and the virtual-register supply. *)

type t = {
  name : string;
  params : Instr.reg list;
  cfg : Cfg.t;
  mutable next_reg : int;
  mutable in_ssa : bool;
      (** True between SSA construction and destruction; passes assert the
          form they expect. *)
}

let create ~name ~params ~cfg ~next_reg =
  { name; params; cfg; next_reg; in_ssa = false }

(** Deep copy: blocks are rebuilt, so mutating the copy leaves the original
    untouched (instruction lists are immutable values). *)
let copy r =
  { name = r.name; params = r.params; cfg = Cfg.copy r.cfg; next_reg = r.next_reg;
    in_ssa = r.in_ssa }

(** Roll [r] back to the state captured in a [copy]. The snapshot survives,
    so one checkpoint can back out several failed attempts. *)
let restore r ~from =
  if r.name <> from.name then
    invalid_arg
      (Printf.sprintf "Routine.restore: %s from snapshot of %s" r.name from.name);
  Cfg.restore r.cfg ~from:from.cfg;
  r.next_reg <- from.next_reg;
  r.in_ssa <- from.in_ssa

let fresh_reg r =
  let v = r.next_reg in
  r.next_reg <- v + 1;
  v

(** Static ILOC operation count (instructions + terminators), the metric of
    the paper's Table 2. *)
let op_count r = Cfg.fold_blocks (fun acc b -> acc + Block.op_count b) 0 r.cfg

let instr_count r =
  Cfg.fold_blocks (fun acc b -> acc + List.length b.Block.instrs) 0 r.cfg

exception Ill_formed of string

(* Structural well-formedness; the SSA checker in [Epre_ssa] does the
   dominance-aware part. *)
let validate r =
  let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed (r.name ^ ": " ^ s))) fmt in
  let cfg = r.cfg in
  if not (Cfg.mem cfg (Cfg.entry cfg)) then fail "entry block missing";
  let preds = Cfg.preds cfg in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      List.iter
        (fun s ->
          if not (Cfg.mem cfg s) then fail "block %d jumps to missing block %d" id s)
        (Block.succs b);
      let seen_non_phi = ref false in
      List.iteri
        (fun idx i ->
          (match i with
          | Instr.Phi { args; _ } ->
            if !seen_non_phi then fail "block %d, instr %d: phi after non-phi" id idx;
            let expect = List.sort compare preds.(id) in
            let got = List.sort compare (List.map fst args) in
            if expect <> got then
              fail "block %d, instr %d: phi preds %s do not match CFG preds %s" id idx
                (String.concat "," (List.map string_of_int got))
                (String.concat "," (List.map string_of_int expect))
          | _ -> seen_non_phi := true);
          List.iter
            (fun u ->
              if u < 0 || u >= r.next_reg then
                fail "block %d, instr %d: use of r%d out of range" id idx u)
            (Instr.uses i);
          match Instr.def i with
          | Some d when d < 0 || d >= r.next_reg ->
            fail "block %d, instr %d: def of r%d out of range" id idx d
          | _ -> ())
        b.Block.instrs;
      List.iter
        (fun u -> if u < 0 || u >= r.next_reg then fail "block %d: terminator uses r%d out of range" id u)
        (Instr.term_uses b.Block.term))
    cfg
