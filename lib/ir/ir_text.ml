(** Unambiguous textual ILOC: a parse/print pair that round-trips.

    [Pp] prints the paper-flavoured human syntax ([r2 <- r0 + r1]) where
    int and float additions look alike; this module prints named opcodes
    and exact (hexadecimal) float literals so that [parse (print p)]
    reconstructs [p] exactly. Used by the CLI's [--format text], by golden
    tests, and wherever a test wants to state a routine concisely.

    Grammar (line oriented; [#] starts a comment):

    {v
      program  := routine*
      routine  := "routine" name "(" regs ")" "entry" label "regs" int "{"
                    block* "}"
      block    := label ":" instr* terminator
      instr    := reg "=" "const" value
                | reg "=" "copy" reg
                | reg "=" unop reg
                | reg "=" binop reg "," reg
                | reg "=" "load" reg
                | "store" reg "," reg            (address, value)
                | reg "=" "alloca" int "," value
                | [reg "="] "call" name "(" regs ")"
                | reg "=" "phi" "(" (label ":" reg),* ")"
      term     := "jump" label
                | "cbr" reg "," label "," label
                | "return" [reg]
    v} *)

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let print_value buf v =
  Buffer.add_string buf (Value.to_string v)

let reg_name r = Printf.sprintf "r%d" r

let print_instr buf i =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match i with
  | Instr.Const { dst; value } ->
    p "  %s = const " (reg_name dst);
    print_value buf value;
    p "\n"
  | Instr.Copy { dst; src } -> p "  %s = copy %s\n" (reg_name dst) (reg_name src)
  | Instr.Unop { op; dst; src } ->
    p "  %s = %s %s\n" (reg_name dst) (Op.unop_name op) (reg_name src)
  | Instr.Binop { op; dst; a; b } ->
    p "  %s = %s %s, %s\n" (reg_name dst) (Op.binop_name op) (reg_name a) (reg_name b)
  | Instr.Load { dst; addr } -> p "  %s = load %s\n" (reg_name dst) (reg_name addr)
  | Instr.Store { addr; src } -> p "  store %s, %s\n" (reg_name addr) (reg_name src)
  | Instr.Alloca { dst; words; init } ->
    p "  %s = alloca %d, " (reg_name dst) words;
    print_value buf init;
    p "\n"
  | Instr.Call { dst; callee; args } ->
    (match dst with Some d -> p "  %s = call %s(" (reg_name d) callee | None -> p "  call %s(" callee);
    p "%s)\n" (String.concat ", " (List.map reg_name args))
  | Instr.Phi { dst; args } ->
    p "  %s = phi(%s)\n" (reg_name dst)
      (String.concat ", " (List.map (fun (l, r) -> Printf.sprintf "B%d: %s" l (reg_name r)) args))

let print_terminator buf t =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match t with
  | Instr.Jump l -> p "  jump B%d\n" l
  | Instr.Cbr { cond; ifso; ifnot } -> p "  cbr %s, B%d, B%d\n" (reg_name cond) ifso ifnot
  | Instr.Ret (Some r) -> p "  return %s\n" (reg_name r)
  | Instr.Ret None -> p "  return\n"

let print_routine buf (r : Routine.t) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "routine %s(%s) entry B%d regs %d {\n" r.Routine.name
    (String.concat ", " (List.map reg_name r.Routine.params))
    (Cfg.entry r.Routine.cfg) r.Routine.next_reg;
  Cfg.iter_blocks
    (fun b ->
      p "B%d:\n" b.Block.id;
      List.iter (print_instr buf) b.Block.instrs;
      print_terminator buf b.Block.term)
    r.Routine.cfg;
  p "}\n"

let print_program (prog : Program.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      print_routine buf r;
      Buffer.add_char buf '\n')
    (Program.routines prog);
  Buffer.contents buf

let routine_to_string r =
  let buf = Buffer.create 1024 in
  print_routine buf r;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)

type pstate = { lines : string array; mutable lno : int }

let fail st fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line = st.lno + 1; message })) fmt

(* Split a line into tokens; punctuation (, ( ) { } :) become their own
   tokens, '=' its own token. *)
let tokenize_line line =
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> flush ()
      | ',' | '(' | ')' | '{' | '}' | ':' | '=' ->
        flush ();
        out := String.make 1 c :: !out
      | '#' -> flush ()  (* comment: handled by caller cutting the line *)
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !out

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let current_tokens st =
  if st.lno >= Array.length st.lines then None
  else Some (tokenize_line (strip_comment st.lines.(st.lno)))

let rec next_nonempty st =
  match current_tokens st with
  | None -> None
  | Some [] ->
    st.lno <- st.lno + 1;
    next_nonempty st
  | Some toks -> Some toks

let advance st = st.lno <- st.lno + 1

let parse_reg st tok =
  if String.length tok >= 2 && tok.[0] = 'r' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n when n >= 0 -> n
    | _ -> fail st "bad register %S" tok
  else fail st "expected a register, got %S" tok

let parse_label st tok =
  if String.length tok >= 2 && tok.[0] = 'B' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some n when n >= 0 -> n
    | _ -> fail st "bad label %S" tok
  else fail st "expected a label, got %S" tok

let parse_value st tok =
  match int_of_string_opt tok with
  | Some i -> Value.I i
  | None -> begin
    match float_of_string_opt tok with
    | Some f -> Value.F f
    | None -> fail st "bad value literal %S" tok
  end

let unop_by_name = List.map (fun op -> (Op.unop_name op, op)) Op.all_unops

let binop_by_name = List.map (fun op -> (Op.binop_name op, op)) Op.all_binops

(* registers of a comma-separated list up to ")" *)
let parse_reg_list st toks =
  let rec go acc = function
    | ")" :: rest -> (List.rev acc, rest)
    | "," :: rest -> go acc rest
    | tok :: rest -> go (parse_reg st tok :: acc) rest
    | [] -> fail st "unterminated register list"
  in
  go [] toks

let parse_instr_line st toks =
  match toks with
  | [ "store"; a; ","; v ] -> Instr.Store { addr = parse_reg st a; src = parse_reg st v }
  | "call" :: callee :: "(" :: rest ->
    let args, _ = parse_reg_list st rest in
    Instr.Call { dst = None; callee; args }
  | dst :: "=" :: rest -> begin
    let dst = parse_reg st dst in
    match rest with
    | [ "const"; v ] -> Instr.Const { dst; value = parse_value st v }
    | [ "copy"; s ] -> Instr.Copy { dst; src = parse_reg st s }
    | [ "load"; a ] -> Instr.Load { dst; addr = parse_reg st a }
    | [ "alloca"; n; ","; v ] -> begin
      match int_of_string_opt n with
      | Some words -> Instr.Alloca { dst; words; init = parse_value st v }
      | None -> fail st "bad alloca size %S" n
    end
    | "call" :: callee :: "(" :: rest ->
      let args, _ = parse_reg_list st rest in
      Instr.Call { dst = Some dst; callee; args }
    | "phi" :: "(" :: rest ->
      let rec go acc = function
        | ")" :: _ -> List.rev acc
        | "," :: rest -> go acc rest
        | l :: ":" :: r :: rest -> go ((parse_label st l, parse_reg st r) :: acc) rest
        | _ -> fail st "malformed phi arguments"
      in
      Instr.Phi { dst; args = go [] rest }
    | [ opname; a ] when List.mem_assoc opname unop_by_name ->
      Instr.Unop { op = List.assoc opname unop_by_name; dst; src = parse_reg st a }
    | [ opname; a; ","; b ] when List.mem_assoc opname binop_by_name ->
      Instr.Binop
        { op = List.assoc opname binop_by_name; dst; a = parse_reg st a; b = parse_reg st b }
    | _ -> fail st "cannot parse instruction %s" (String.concat " " toks)
  end
  | _ -> fail st "cannot parse instruction %s" (String.concat " " toks)

let parse_terminator st toks =
  match toks with
  | [ "jump"; l ] -> Instr.Jump (parse_label st l)
  | [ "cbr"; c; ","; l1; ","; l2 ] ->
    Instr.Cbr { cond = parse_reg st c; ifso = parse_label st l1; ifnot = parse_label st l2 }
  | [ "return" ] -> Instr.Ret None
  | [ "return"; r ] -> Instr.Ret (Some (parse_reg st r))
  | _ -> fail st "cannot parse terminator %s" (String.concat " " toks)

let is_terminator = function
  | ("jump" | "cbr" | "return") :: _ -> true
  | _ -> false

let parse_routine ~validate st header =
  (* routine NAME ( params ) entry Bn regs N { *)
  let name, rest =
    match header with
    | "routine" :: name :: "(" :: rest -> (name, rest)
    | _ -> fail st "expected a routine header"
  in
  let params, rest = parse_reg_list st rest in
  let entry, next_reg =
    match rest with
    | [ "entry"; l; "regs"; n; "{" ] -> begin
      match int_of_string_opt n with
      | Some n -> (parse_label st l, n)
      | None -> fail st "bad register count %S" n
    end
    | _ -> fail st "malformed routine header tail: %s" (String.concat " " rest)
  in
  advance st;
  (* Collect blocks: (id, instrs, term) *)
  let blocks = ref [] in
  let rec parse_blocks () =
    match next_nonempty st with
    | None -> fail st "unterminated routine %s" name
    | Some [ "}" ] -> advance st
    | Some [ label; ":" ] ->
      let id = parse_label st label in
      advance st;
      let instrs = ref [] in
      let rec body () =
        match next_nonempty st with
        | None -> fail st "unterminated block B%d" id
        | Some toks when is_terminator toks ->
          let term = parse_terminator st toks in
          advance st;
          blocks := (id, List.rev !instrs, term) :: !blocks
        | Some toks ->
          instrs := parse_instr_line st toks :: !instrs;
          advance st;
          body ()
      in
      body ();
      parse_blocks ()
    | Some toks -> fail st "expected a block label, got %s" (String.concat " " toks)
  in
  parse_blocks ();
  let blocks = List.rev !blocks in
  if blocks = [] then fail st "routine %s has no blocks" name;
  let max_id = List.fold_left (fun acc (id, _, _) -> max acc id) 0 blocks in
  let cfg = Cfg.create () in
  for _ = 0 to max_id do
    ignore (Cfg.add_block ~term:(Instr.Ret None) cfg)
  done;
  let listed = Array.make (max_id + 1) false in
  List.iter
    (fun (id, instrs, term) ->
      if listed.(id) then fail st "duplicate block B%d" id;
      listed.(id) <- true;
      let b = Cfg.block cfg id in
      b.Block.instrs <- instrs;
      b.Block.term <- term)
    blocks;
  if entry > max_id || not listed.(entry) then fail st "entry B%d is not defined" entry;
  Cfg.set_entry cfg entry;
  (* blocks never listed are holes (removed blocks in the source CFG) *)
  for id = 0 to max_id do
    if (not listed.(id)) && id <> entry then Cfg.remove_block cfg id
  done;
  let r = Routine.create ~name ~params ~cfg ~next_reg in
  if validate then Routine.validate r;
  r

let parse_program ?(validate = true) text =
  let st = { lines = Array.of_list (String.split_on_char '\n' text); lno = 0 } in
  let routines = ref [] in
  let rec go () =
    match next_nonempty st with
    | None -> ()
    | Some header ->
      routines := parse_routine ~validate st header :: !routines;
      go ()
  in
  go ();
  Program.create (List.rev !routines)
