(** A compiled routine: parameters, CFG, and the virtual-register supply. *)

type t = {
  name : string;
  params : Instr.reg list;  (** defined at entry, conventionally [0..n-1] *)
  cfg : Cfg.t;
  mutable next_reg : int;  (** exclusive upper bound on register names *)
  mutable in_ssa : bool;
      (** true between SSA construction and destruction; passes assert the
          form they expect *)
}

val create :
  name:string -> params:Instr.reg list -> cfg:Cfg.t -> next_reg:int -> t

(** Deep copy (blocks rebuilt; instruction lists are immutable values). *)
val copy : t -> t

(** Roll the routine back, in place, to the state captured in a [copy] —
    the rollback half of the harness's checkpoint/restore. The snapshot
    survives, so one checkpoint can back out several failed attempts.
    @raise Invalid_argument when the snapshot is of a different routine. *)
val restore : t -> from:t -> unit

val fresh_reg : t -> Instr.reg

(** Static ILOC operation count — instructions plus terminators, the metric
    of the paper's Table 2. *)
val op_count : t -> int

(** Instructions only, terminators excluded. *)
val instr_count : t -> int

exception Ill_formed of string

(** Structural well-formedness: terminator targets exist, registers in
    range, phis lead their block and match the CFG predecessors. The
    dominance-aware SSA check lives in [Epre_ssa.Ssa_check].
    @raise Ill_formed with a diagnostic on violation. *)
val validate : t -> unit
