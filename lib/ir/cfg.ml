(** Control-flow graphs.

    Blocks live in a dense table indexed by block id; removing a block
    leaves a hole (so ids stay stable across passes) and [Epre_opt.Clean]
    compacts when it matters. Successor edges are implied by terminators;
    predecessor lists are recomputed on demand, which keeps every rewriting
    pass honest about invalidation. *)

open Epre_util

type t = {
  blocks : Block.t option Vec.t;
  mutable entry : int;
}

let create () = { blocks = Vec.create (); entry = 0 }

let add_block ?(instrs = []) ~term cfg =
  let id = Vec.length cfg.blocks in
  let b = Block.create ~id ~instrs ~term () in
  ignore (Vec.push cfg.blocks (Some b));
  b

let num_blocks cfg = Vec.length cfg.blocks

let find_block cfg id =
  if id < 0 || id >= Vec.length cfg.blocks then None else Vec.get cfg.blocks id

let block cfg id =
  match find_block cfg id with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cfg.block: no block %d" id)

let mem cfg id = Option.is_some (find_block cfg id)

let remove_block cfg id =
  if id = cfg.entry then invalid_arg "Cfg.remove_block: cannot remove entry";
  Vec.set cfg.blocks id None

let entry cfg = cfg.entry

let set_entry cfg id =
  if not (mem cfg id) then invalid_arg "Cfg.set_entry: no such block";
  cfg.entry <- id

let iter_blocks f cfg =
  Vec.iteri (fun _ b -> match b with Some b -> f b | None -> ()) cfg.blocks

let fold_blocks f acc cfg =
  Vec.fold_left (fun acc b -> match b with Some b -> f acc b | None -> acc) acc cfg.blocks

let blocks cfg = List.rev (fold_blocks (fun acc b -> b :: acc) [] cfg)

let succs cfg id = Block.succs (block cfg id)

(** Predecessor lists, indexed by block id. Includes only reachable source
    blocks present in the table; duplicate edges (a [Cbr] with equal arms)
    appear once, as [Instr.term_succs] deduplicates them. *)
let preds cfg =
  let n = num_blocks cfg in
  let p = Array.make n [] in
  iter_blocks
    (fun b ->
      (* Dangling targets are diagnosed by [Routine.validate]; ignore them
         here so analyses on ill-formed graphs fail with a proper error. *)
      List.iter
        (fun s -> if s >= 0 && s < n then p.(s) <- b.Block.id :: p.(s))
        (Block.succs b))
    cfg;
  Array.map List.rev p

let exit_blocks cfg =
  List.filter (fun b -> match b.Block.term with Instr.Ret _ -> true | _ -> false)
    (blocks cfg)

(* Retarget every phi argument in [blk] that named predecessor [old_pred] to
   name [new_pred] instead. *)
let retarget_phis blk ~old_pred ~new_pred =
  blk.Block.instrs <-
    List.map
      (function
        | Instr.Phi { dst; args } ->
          let args =
            List.map (fun (l, r) -> if l = old_pred then (new_pred, r) else (l, r)) args
          in
          Instr.Phi { dst; args }
        | i -> i)
      blk.Block.instrs

(** Split the edge [from_ -> to_]: insert a fresh block containing only a
    jump to [to_], retargeting [from_]'s terminator and [to_]'s phis.
    Returns the new block. Used for edge placement in PRE and for phi
    elimination before forward propagation. *)
let split_edge cfg ~from_ ~to_ =
  let src = block cfg from_ in
  let nb = add_block ~term:(Instr.Jump to_) cfg in
  src.Block.term <-
    Instr.map_term_succs (fun s -> if s = to_ then nb.Block.id else s) src.Block.term;
  retarget_phis (block cfg to_) ~old_pred:from_ ~new_pred:nb.Block.id;
  nb

(** Blocks reachable from the entry (DFS over terminator successors). *)
let reachable cfg =
  let seen = Bitset.create (num_blocks cfg) in
  let rec go id =
    if not (Bitset.mem seen id) then begin
      Bitset.add seen id;
      List.iter go (succs cfg id)
    end
  in
  go cfg.entry;
  seen

(** Deep copy (blocks are mutable; passes that want a scratch copy use
    this). *)
let copy cfg =
  let blocks = Vec.create () in
  Vec.iteri
    (fun _ b ->
      let b' =
        Option.map
          (fun b -> Block.create ~id:b.Block.id ~instrs:b.Block.instrs ~term:b.Block.term ())
          b
      in
      ignore (Vec.push blocks b'))
    cfg.blocks;
  { blocks; entry = cfg.entry }

(** Overwrite [cfg] in place with a deep copy of [from]'s blocks and entry.
    [from] stays usable afterwards, so a snapshot can restore a graph more
    than once. *)
let restore cfg ~from =
  Vec.clear cfg.blocks;
  Vec.iteri
    (fun _ b ->
      let b' =
        Option.map
          (fun b -> Block.create ~id:b.Block.id ~instrs:b.Block.instrs ~term:b.Block.term ())
          b
      in
      ignore (Vec.push cfg.blocks b'))
    from.blocks;
  cfg.entry <- from.entry
