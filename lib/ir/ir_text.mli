(** Unambiguous textual ILOC: a parse/print pair that round-trips exactly
    (named opcodes, hexadecimal float literals, explicit entry/register
    headers, CFG holes preserved). Used by the CLI's [--format text], by
    golden tests, and to state routines concisely in tests. [#] starts a
    comment. *)

exception Parse_error of { line : int; message : string }

val print_program : Program.t -> string

val routine_to_string : Routine.t -> string

(** Parses and (by default) validates. [~validate:false] skips
    [Routine.validate], letting tests state deliberately ill-formed
    routines for the verifier's negative corpus.
    @raise Parse_error on malformed input (1-based line). *)
val parse_program : ?validate:bool -> string -> Program.t
