(** Control-flow graphs.

    Blocks live in a dense table indexed by block id; removing a block
    leaves a hole (ids stay stable across passes) and [Epre_opt.Clean]
    compacts when it matters. Successor edges are implied by terminators;
    predecessor lists are recomputed on demand. *)

type t

(** An empty graph; the first block added becomes the entry. *)
val create : unit -> t

(** Append a fresh block; its id is the next free index. *)
val add_block : ?instrs:Instr.t list -> term:Instr.terminator -> t -> Block.t

(** Upper bound on block ids (holes included). *)
val num_blocks : t -> int

val find_block : t -> int -> Block.t option

(** @raise Invalid_argument on a missing block. *)
val block : t -> int -> Block.t

val mem : t -> int -> bool

(** @raise Invalid_argument when removing the entry. *)
val remove_block : t -> int -> unit

val entry : t -> int

val set_entry : t -> int -> unit

(** In id order, skipping holes. *)
val iter_blocks : (Block.t -> unit) -> t -> unit

val fold_blocks : ('a -> Block.t -> 'a) -> 'a -> t -> 'a

val blocks : t -> Block.t list

val succs : t -> int -> int list

(** Predecessor lists indexed by block id; dangling successor ids (only
    possible in ill-formed graphs) are ignored. *)
val preds : t -> int list array

val exit_blocks : t -> Block.t list

(** Split the edge [from_ -> to_]: insert a block containing only a jump,
    retargeting [from_]'s terminator and [to_]'s phis. Returns the new
    block. *)
val split_edge : t -> from_:int -> to_:int -> Block.t

(** Blocks reachable from the entry, as a bitset over block ids. *)
val reachable : t -> Epre_util.Bitset.t

(** Deep copy: mutating the copy leaves the original untouched. *)
val copy : t -> t

(** Overwrite the graph in place with a deep copy of [from] — the rollback
    half of a checkpoint/restore pair. [from] stays usable, so one snapshot
    can restore more than once. *)
val restore : t -> from:t -> unit
