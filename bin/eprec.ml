(* eprec: command-line driver for the Effective PRE optimizer.

   Subcommands:
     compile   compile a source file, optimize at a chosen level, dump ILOC
     run       compile, optimize, interpret; report result and dynamic counts
     bisect    shrink a failing pass sequence to the minimal offending prefix
     fuzz      differentially fuzz the optimizer; reduce and persist failures
     table1    regenerate the paper's Table 1
     table2    regenerate the paper's Table 2 (forward-propagation expansion)
     hierarchy regenerate the Section 5.3 CSE-hierarchy comparison
     verify    run the static verifier (structural + type rules) over a
               program, a workload or the whole suite, at any level
     lint      verify plus the L0xx lint rules
     analyze   audit PRE effectiveness (A0xx rules): residual redundancy,
               down-safety, path lengths and register pressure
     passes    list the pass registry (including the chaos:* fault injectors)
     workloads list or differentially check the built-in workload suite
     serve     batch compile server: JSON jobs on stdin, parallel + cached,
               JSON results on stdout

   Parallelism (serve, workloads --check, fuzz):
     --jobs N          worker domains (default: recommended domain count)

   Supervision flags (compile, run, workloads --check):
     --safe            roll a failing pass back and keep optimizing
     --validate=TIER   off | ir | exec (translation validation)
     --report=json     emit per-pass outcome records
     --chaos NAME[@N]  inject a fault pass at position N of the pipeline

   Telemetry flags (compile, run, workloads --check):
     --trace-out FILE  write a Chrome trace-event JSON of the run's spans
     --profile         per-pass wall-clock profile summary on stderr
     --metrics=json    per-routine pipeline stats + counters, JSONL on stderr *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_source path =
  try Epre_frontend.Frontend.compile_string (read_file path) with
  | Epre_frontend.Frontend.Error { line; message } ->
    Fmt.epr "%s:%d: %s@." path line message;
    exit 1

let level_conv =
  let parse s =
    match Epre.Pipeline.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print ppf l = Fmt.string ppf (Epre.Pipeline.level_to_string l) in
  Arg.conv (parse, print)

let level_arg =
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Optimization level: $(b,baseline), $(b,partial), \
           $(b,reassociation) or $(b,distribution). Omit for unoptimized \
           output.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Dump the IR after every optimizer pass (to stderr).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"P1,P2,..."
        ~doc:
          "Run a custom comma-separated pass sequence instead of a level; \
           see $(b,eprec passes) for the registry.")

(* --- supervision flags ------------------------------------------------- *)

let safe_arg =
  Arg.(
    value & flag
    & info [ "safe" ]
        ~doc:
          "Supervise the pipeline: run every pass against a checkpoint, \
           roll a failing pass back and continue with the rest (see also \
           $(b,--validate)).")

let validate_conv =
  let parse s =
    match Epre_harness.Harness.validation_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown validation tier %S" s))
  in
  let print ppf v = Fmt.string ppf (Epre_harness.Harness.validation_to_string v) in
  Arg.conv (parse, print)

let validate_arg =
  Arg.(
    value
    & opt (some validate_conv) None
    & info [ "validate" ] ~docv:"TIER"
        ~doc:
          "Per-pass validation tier: $(b,off) (exceptions only), $(b,ir) \
           (structural + SSA well-formedness) or $(b,exec) (translation \
           validation of observable behaviour). Implies supervision; \
           without $(b,--safe) the first failure aborts.")

let report_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json) ])) None
    & info [ "report" ] ~docv:"FMT"
        ~doc:
          "Emit per-pass outcome records (pass, routine, ok/rolled-back, \
           reason, timing). Only $(b,json).")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"NAME[@POS]"
        ~doc:
          "Inject a $(b,chaos:*) fault pass at position POS (default 0) of \
           the level's pipeline; requires supervision to survive. See \
           $(b,eprec passes).")

let chaos_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Seed for the chaos fault injectors (replayable corruption).")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Run the redundancy auditor after each audited pass (the \
           $(b,A0xx) rule family: residual redundancy, down-safety, \
           pressure). Findings land in the supervision report's meta and \
           the $(b,analyze.*) telemetry counters; they never roll a pass \
           back. Implies supervision.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-routine pass statistics (renamed expression sites, \
           constants folded, rewrites, ...) to stderr; with \
           $(b,--metrics=json) they come as JSON records instead.")

(* --- parallelism ------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel compilation (default: the \
           machine's recommended domain count; $(b,1) forces the serial \
           reference path).")

let effective_jobs = function
  | Some n -> max 1 n
  | None -> Epre_service.Pool.default_jobs ()

(* --- telemetry flags --------------------------------------------------- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run's telemetry \
           spans (per-stage wall clock, allocation and IR size deltas); \
           open it in Perfetto (ui.perfetto.dev) or chrome://tracing.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a per-pass wall-clock profile (call counts, totals sorted \
           descending, share of pipeline time) to stderr.")

let metrics_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Emit one-line-per-record JSON metrics to stderr: the per-routine \
           pipeline statistics (see $(b,--stats)) followed by the counters \
           registry. Only $(b,json).")

type telemetry_opts = {
  trace_out : string option;
  profile : bool;
  metrics : [ `Json ] option;
}

let telemetry_term =
  let mk trace_out profile metrics = { trace_out; profile; metrics } in
  Term.(const mk $ trace_out_arg $ profile_arg $ metrics_arg)

(* Run [f] under a telemetry recorder when --trace-out/--profile ask for
   one, exporting when [f] finishes; otherwise spans stay no-ops. *)
let with_telemetry tel f =
  if tel.trace_out = None && not tel.profile then f ()
  else begin
    let rc = Epre_telemetry.Telemetry.install () in
    let finish () =
      Epre_telemetry.Telemetry.uninstall ();
      let spans = Epre_telemetry.Telemetry.spans rc in
      (match tel.trace_out with
      | Some path -> Epre_telemetry.Chrome_trace.write ~path spans
      | None -> ());
      if tel.profile then Fmt.epr "%s@?" (Epre_telemetry.Profile.render spans)
    in
    Fun.protect ~finally:finish f
  end

let emit_metrics tel stats =
  match tel.metrics with
  | None -> ()
  | Some `Json ->
    if stats <> [] then Fmt.epr "%s@." (Epre.Pipeline.stats_jsonl stats);
    (match Epre_telemetry.Metrics.snapshot () with
    | [] -> ()
    | entries -> Fmt.epr "%s@." (Epre_telemetry.Metrics.to_jsonl entries))

(* "chaos:drop-instr@2" -> (position, named pass) *)
let parse_chaos spec =
  let name, pos =
    match String.index_opt spec '@' with
    | None -> (spec, 0)
    | Some i ->
      let p =
        match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
        | Some p -> p
        | None ->
          Fmt.epr "bad --chaos position in %S@." spec;
          exit 1
      in
      (String.sub spec 0 i, p)
  in
  match Epre_harness.Chaos.of_name name with
  | Some kind ->
    (pos, { Epre_harness.Harness.pass_name = name; run = Epre_harness.Chaos.run kind })
  | None ->
    Fmt.epr "unknown chaos pass %S (see `eprec passes`)@." name;
    exit 1

type supervision = {
  safe : bool;
  validate : Epre_harness.Harness.validation option;
  report : [ `Json ] option;
  chaos : string option;
  chaos_seed : int option;
  audit : bool;
}

let supervision_term =
  let mk safe validate report chaos chaos_seed audit =
    (match chaos_seed with
    | Some s -> Epre_harness.Chaos.default_seed := s
    | None -> ());
    { safe; validate; report; chaos; chaos_seed; audit }
  in
  Term.(
    const mk $ safe_arg $ validate_arg $ report_arg $ chaos_arg
    $ chaos_seed_arg $ audit_arg)

let supervised sup =
  sup.safe || sup.validate <> None || sup.chaos <> None || sup.audit

let harness_config sup =
  { Epre_harness.Harness.validation =
      Option.value sup.validate ~default:Epre_harness.Harness.Ir;
    fuel = Epre_interp.Interp.default_fuel;
    keep_going = sup.safe;
    audit = sup.audit;
  }

let print_report sup ppf records =
  match sup.report with
  | Some `Json -> Fmt.pf ppf "%s@." (Epre_harness.Report.to_json records)
  | None -> ()

let print_stats stats =
  List.iter
    (fun s ->
      let named_total = function
        | None -> "-"
        | Some (pre : Epre_pre.Pre.stats) ->
          string_of_int (pre.Epre_pre.Pre.inserted + pre.Epre_pre.Pre.deleted)
      in
      Fmt.epr
        "stats %-12s renamed=%d pre(ins+del)=%s constants=%d peephole=%d \
         dce=%d coalesced=%d@."
        s.Epre.Pipeline.routine s.Epre.Pipeline.exprs_renamed
        (named_total s.Epre.Pipeline.pre) s.Epre.Pipeline.constants_folded
        s.Epre.Pipeline.peephole_rewrites s.Epre.Pipeline.dce_removed
        s.Epre.Pipeline.copies_coalesced)
    stats

(* --trace is change-aware: a stage whose output is textually identical to
   the routine's previous dump prints a one-line "unchanged" marker
   instead of the full IR, so the Figures 2-10 walkthroughs aren't buried
   in identical dumps. Seeded from the pre-pipeline program, so even a
   first pass that does nothing is marked. *)
let dump_hooks trace prog =
  if not trace then Epre.Pipeline.no_hooks
  else begin
    let last = Hashtbl.create 7 in
    let render r = Fmt.str "%a" Epre_ir.Pp.routine r in
    List.iter
      (fun (r : Epre_ir.Routine.t) ->
        Hashtbl.replace last r.Epre_ir.Routine.name (render r))
      (Epre_ir.Program.routines prog);
    { Epre.Pipeline.dump =
        (fun pass r ->
          let name = r.Epre_ir.Routine.name in
          let text = render r in
          match Hashtbl.find_opt last name with
          | Some prev when String.equal prev text ->
            Fmt.epr "=== after %s: %s unchanged ===@.@." pass name
          | _ ->
            Hashtbl.replace last name text;
            Fmt.epr "=== after %s ===@.%s@.@." pass text) }
  end

(* Optimize [prog] in place per the CLI flags; returns the pipeline stats
   (empty for custom --passes sequences). The per-pass records go to
   [--report]; supervision failures without --safe abort with a
   diagnostic. *)
let optimize ?level ?passes ~trace ~sup prog =
  let hooks = dump_hooks trace prog in
  (* Parse --chaos eagerly so a typo'd pass name or position always errors,
     even when there is no pipeline to splice it into. *)
  let chaos = Option.map parse_chaos sup.chaos in
  if chaos <> None && passes = None && level = None then begin
    Fmt.epr "--chaos needs a pipeline to inject into (pass -O or --passes)@.";
    exit 1
  end;
  try
    match passes with
    | Some spec -> begin
      match Epre.Passes.parse_sequence spec with
      | Error name ->
        Fmt.epr "unknown pass %S (see `eprec passes`)@." name;
        exit 1
      | Ok ps when supervised sup ->
        let named = List.map Epre.Passes.to_named ps in
        let named =
          match chaos with
          | None -> named
          | Some (pos, np) -> Epre.Pipeline.splice named ~at:pos np
        in
        let records =
          Epre_harness.Harness.supervise ~dump:hooks.Epre.Pipeline.dump
            (harness_config sup) ~passes:named prog
        in
        print_report sup Fmt.stderr records;
        []
      | Ok ps ->
        Epre.Passes.run_sequence ps prog;
        []
    end
    | None -> begin
      match level with
      | None -> []
      | Some level when supervised sup ->
        let inject = Option.to_list chaos in
        let stats, records =
          Epre.Pipeline.optimize_supervised ~hooks ~inject
            ~config:(harness_config sup) ~level prog
        in
        print_report sup Fmt.stderr records;
        stats
      | Some level -> Epre.Pipeline.optimize ~hooks ~level prog
    end
  with Epre_harness.Harness.Supervision_failed record ->
    Fmt.epr "supervision failed: %s@." (Epre_harness.Report.record_to_line record);
    print_report sup Fmt.stderr [ record ];
    exit 1

let format_arg =
  Arg.(
    value
    & opt (enum [ ("pretty", `Pretty); ("text", `Text); ("dot", `Dot) ]) `Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output syntax: $(b,pretty) (the paper-style printer), $(b,text) \
           (the round-tripping Ir_text format) or $(b,dot) (Graphviz).")

let compile_cmd =
  let doc = "compile a source file and print the resulting ILOC" in
  let run file level trace passes format sup tel stats =
    let prog = compile_source file in
    let pipeline_stats =
      with_telemetry tel (fun () -> optimize ?level ?passes ~trace ~sup prog)
    in
    if stats && tel.metrics = None then print_stats pipeline_stats;
    emit_metrics tel pipeline_stats;
    match format with
    | `Pretty -> Fmt.pr "%a@." Epre_ir.Pp.program prog
    | `Text -> print_string (Epre_ir.Ir_text.print_program prog)
    | `Dot -> print_string (Epre_ir.Cfg_dot.program prog)
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ file_arg $ level_arg $ trace_arg $ passes_arg $ format_arg
      $ supervision_term $ telemetry_term $ stats_arg)

let run_cmd =
  let doc = "compile, optimize and interpret a program (entry: main)" in
  let entry_arg =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME" ~doc:"Entry routine.")
  in
  let run file level trace passes entry sup tel stats =
    let prog = compile_source file in
    let interp () =
      Epre_telemetry.Telemetry.Span.with_ ~kind:"interp" ~name:entry (fun () ->
          Epre_interp.Interp.run prog ~entry ~args:[])
    in
    let outcome =
      with_telemetry tel (fun () ->
          let pipeline_stats = optimize ?level ?passes ~trace ~sup prog in
          if stats && tel.metrics = None then print_stats pipeline_stats;
          emit_metrics tel pipeline_stats;
          match interp () with
          | result -> Ok result
          | exception Epre_interp.Interp.Runtime_error msg ->
            Error (2, "runtime error: " ^ msg)
          | exception Epre_interp.Interp.Out_of_fuel ->
            (* Exit codes (see README): 1 compile/supervision failure,
               2 runtime error, 3 fuel exhaustion. *)
            Error
              ( 3,
                Printf.sprintf
                  "out of fuel: interpreter budget (%d operations) exhausted \
                   — the program may not terminate"
                  Epre_interp.Interp.default_fuel ))
    in
    match outcome with
    | Ok result ->
      List.iter
        (fun v -> Fmt.pr "emit %a@." Epre_ir.Value.pp v)
        result.Epre_interp.Interp.trace;
      (match result.Epre_interp.Interp.return_value with
      | Some v -> Fmt.pr "result: %a@." Epre_ir.Value.pp v
      | None -> ());
      Fmt.pr "dynamic operations: %a@." Epre_interp.Counts.pp
        result.Epre_interp.Interp.counts
    | Error (code, msg) ->
      Fmt.epr "%s@." msg;
      exit code
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ file_arg $ level_arg $ trace_arg $ passes_arg $ entry_arg
      $ supervision_term $ telemetry_term $ stats_arg)

let bisect_cmd =
  let doc =
    "find the minimal failing prefix of a pass sequence and print the IR \
     delta of the culprit pass"
  in
  let workload_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Bisect over a built-in workload instead of a source FILE.")
  in
  let bisect_file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run file workload level passes_spec sup =
    let prog =
      match (file, workload) with
      | Some f, None -> compile_source f
      | None, Some name -> begin
        match Epre_workloads.Workloads.find name with
        | Some w -> Epre_workloads.Workloads.compile w
        | None ->
          Fmt.epr "unknown workload %S (see `eprec workloads`)@." name;
          exit 1
      end
      | Some _, Some _ | None, None ->
        Fmt.epr "bisect needs exactly one input: FILE or --workload NAME@.";
        exit 1
    in
    let named =
      match passes_spec with
      | Some spec -> begin
        match Epre.Passes.parse_sequence spec with
        | Ok ps -> List.map Epre.Passes.to_named ps
        | Error name ->
          Fmt.epr "unknown pass %S (see `eprec passes`)@." name;
          exit 1
      end
      | None ->
        let level = Option.value level ~default:Epre.Pipeline.Partial in
        let base = Epre.Pipeline.level_passes ~level in
        (match sup.chaos with
        | None -> base
        | Some spec ->
          let pos, np = parse_chaos spec in
          let rec splice i = function
            | rest when i = pos -> np :: rest
            | [] -> [ np ]
            | x :: rest -> x :: splice (i + 1) rest
          in
          splice 0 base)
    in
    match Epre_harness.Bisect.run ~passes:named prog with
    | Some failure -> Fmt.pr "%a@." Epre_harness.Bisect.pp_failure failure
    | None -> Fmt.pr "sequence is healthy: every pass validated@."
  in
  Cmd.v (Cmd.info "bisect" ~doc)
    Term.(
      const run $ bisect_file_arg $ workload_arg $ level_arg $ passes_arg
      $ supervision_term)

let fuzz_cmd =
  let doc =
    "differentially fuzz the optimizer with seeded random programs; reduce \
     and persist failures"
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Generates seeded random programs (well-typed and trap-free by \
         construction), runs each through every optimization level — or \
         just $(b,-O), or with a $(b,--chaos) fault spliced in — and \
         compares observable behaviour against the unoptimized program. \
         Failures are classified (pass exception, IR violation, behaviour \
         mismatch, fuel divergence), greedily reduced to a minimal \
         reproducer, and saved under $(b,--corpus). The verdict summary on \
         stdout is deterministic for a given seed: no timestamps, no \
         durations.";
      `P
        "$(b,--replay) DIR re-checks saved reproducers (one entry \
         directory, or a whole corpus) against their recorded failure \
         signatures.";
      `P
        "Exit status: 0 when every program survives (or every replayed \
         entry loads), 1 when the campaign found failures or a replayed \
         entry is broken." ]
  in
  let runs_arg =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Master seed; each case's seed derives from it, so the whole \
             campaign is reproducible.")
  in
  let max_size_arg =
    Arg.(
      value & opt int 30
      & info [ "max-size" ] ~docv:"N"
          ~doc:"Statement budget for each generated program's main body.")
  in
  let reduce_arg =
    Arg.(
      value
      & vflag true
          [ ( true,
              info [ "reduce" ]
                ~doc:"Reduce each failure to a minimal reproducer (default)." );
            (false, info [ "no-reduce" ] ~doc:"Keep failures unreduced.") ])
  in
  let corpus_arg =
    Arg.(
      value
      & opt string "fuzz/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Where reproducers are persisted.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"DIR"
          ~doc:
            "Replay saved reproducers instead of fuzzing: DIR is one corpus \
             entry or a corpus root.")
  in
  let pinpoint_arg =
    Arg.(
      value & flag
      & info [ "pinpoint" ]
          ~doc:
            "Bisect each failure to its culprit pass (slower; names the \
             pass in the verdict).")
  in
  let replay_entries dir =
    if Sys.file_exists (Filename.concat dir "meta.json") then [ dir ]
    else
      Epre_fuzz.Corpus.list ~dir |> List.map (Filename.concat dir)
  in
  let run runs seed max_size reduce corpus replay level chaos chaos_seed
      pinpoint jobs tel =
    (match chaos_seed with
    | Some s -> Epre_harness.Chaos.default_seed := s
    | None -> ());
    match replay with
    | Some dir -> begin
      match replay_entries dir with
      | [] ->
        Fmt.epr "no corpus entries under %s@." dir;
        exit 1
      | dirs ->
        let broken = ref 0 in
        List.iter
          (fun d ->
            match Epre_fuzz.Campaign.replay d with
            | Error m ->
              incr broken;
              Fmt.pr "broken       %s: %s@." d m
            | Ok (entry, verdict) ->
              (match verdict with
              | Epre_fuzz.Campaign.Broken _ -> incr broken
              | _ -> ());
              Fmt.pr "%-12s %s@."
                (Epre_fuzz.Campaign.replay_result_to_string verdict)
                entry.Epre_fuzz.Corpus.id)
          dirs;
        if !broken > 0 then exit 1
    end
    | None ->
      (* Validate --chaos before spending any time generating. *)
      (match chaos with
      | None -> ()
      | Some spec -> (
        match Epre_fuzz.Campaign.parse_chaos spec with
        | Ok _ -> ()
        | Error m ->
          Fmt.epr "%s (see `eprec passes`)@." m;
          exit 1));
      let config =
        { Epre_fuzz.Campaign.default_config with
          runs; seed; max_size; reduce; chaos;
          levels =
            (match level with
            | Some l -> [ l ]
            | None -> Epre.Pipeline.all_levels);
          corpus_dir = Some corpus;
          pinpoint;
          jobs = effective_jobs jobs }
      in
      let summary =
        with_telemetry tel (fun () ->
            Epre_fuzz.Campaign.run ~log:(Fmt.epr "%s@.") config)
      in
      print_endline (Epre_fuzz.Campaign.summary_to_json summary);
      Fmt.epr "fuzz: %d runs, %d failing case(s), %d failure(s), %d reduced@."
        summary.Epre_fuzz.Campaign.runs summary.Epre_fuzz.Campaign.cases_failed
        (List.length summary.Epre_fuzz.Campaign.failures)
        summary.Epre_fuzz.Campaign.reduced;
      if summary.Epre_fuzz.Campaign.cases_failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc ~man)
    Term.(
      const run $ runs_arg $ seed_arg $ max_size_arg $ reduce_arg $ corpus_arg
      $ replay_arg $ level_arg $ chaos_arg $ chaos_seed_arg $ pinpoint_arg
      $ jobs_arg $ telemetry_term)

let table1_cmd =
  let doc = "regenerate Table 1 (dynamic counts at all optimization levels)" in
  let run () = print_string (Epre.Experiments.render_table1 (Epre.Experiments.table1 ())) in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ const ())

let table2_cmd =
  let doc = "regenerate Table 2 (code expansion from forward propagation)" in
  let run () = print_string (Epre.Experiments.render_table2 (Epre.Experiments.table2 ())) in
  Cmd.v (Cmd.info "table2" ~doc) Term.(const run $ const ())

let hierarchy_cmd =
  let doc = "regenerate the Section 5.3 redundancy-elimination hierarchy" in
  let run () =
    print_string (Epre.Experiments.render_hierarchy (Epre.Experiments.hierarchy ()))
  in
  Cmd.v (Cmd.info "hierarchy" ~doc) Term.(const run $ const ())

let passes_cmd =
  let doc = "list the optimizer pass registry (for --passes)" in
  let run () =
    List.iter
      (fun p ->
        let post =
          match Epre_verify.Verify.postconditions p.Epre.Passes.name with
          | [] -> ""
          | ids -> Printf.sprintf "  [post: %s]" (String.concat "," ids)
        in
        Printf.printf "%-20s %s%s\n" p.Epre.Passes.name
          p.Epre.Passes.description post)
      Epre.Passes.all;
    (* Service faults are not pipeline passes (they attack the serve
       layer, via `serve --chaos`), but they live in the same chaos
       namespace, so list them here too. *)
    List.iter
      (fun f ->
        Printf.printf "%-20s %s\n"
          (Epre_harness.Chaos.service_name f)
          (Epre_harness.Chaos.service_description f))
      Epre_harness.Chaos.all_service_faults
  in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ const ())

(* --- verify / lint ----------------------------------------------------- *)

let rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"ID1,ID2,..."
        ~doc:
          "Restrict the report to these rule ids (comma-separated; see the \
           DESIGN.md rule catalog). Unknown ids are rejected.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Machine-readable report on stdout: one object per (input, \
           level) with the diagnostics and their counts.")

let all_levels_arg =
  Arg.(
    value & flag
    & info [ "all-levels" ]
        ~doc:
          "Check the unoptimized program and then every optimization \
           level; overrides $(b,-O).")

let verify_workload_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:"Check a built-in workload instead of a source FILE.")

let verify_workloads_arg =
  Arg.(
    value & flag
    & info [ "workloads" ] ~doc:"Check every built-in workload.")

let verify_file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE")

(* Named program sources (compile thunks: each (input, level) pair gets a
   fresh program). *)
let verify_inputs file workload workloads =
  match (file, workload, workloads) with
  | Some f, None, false ->
    [ (Filename.basename f, fun () -> compile_source f) ]
  | None, Some name, false -> begin
    match Epre_workloads.Workloads.find name with
    | Some w -> [ (name, fun () -> Epre_workloads.Workloads.compile w) ]
    | None ->
      Fmt.epr "unknown workload %S (see `eprec workloads`)@." name;
      exit 1
  end
  | None, None, true ->
    List.map
      (fun w ->
        ( w.Epre_workloads.Workloads.name,
          fun () -> Epre_workloads.Workloads.compile w ))
      Epre_workloads.Workloads.all
  | None, None, false ->
    Fmt.epr "verify needs an input: FILE, --workload NAME or --workloads@.";
    exit 1
  | _ ->
    Fmt.epr "verify takes exactly one input: FILE, --workload or --workloads@.";
    exit 1

let level_label = function
  | None -> "unoptimized"
  | Some l -> Epre.Pipeline.level_to_string l

let run_verify ~lints file workload workloads level all_levels rules json tel =
  let config =
    let ids =
      match rules with
      | None -> None
      | Some spec -> begin
        match Epre_verify.Rules.parse_spec spec with
        | Ok ids -> Some ids
        | Error id ->
          Fmt.epr "unknown rule id %S (see DESIGN.md)@." id;
          exit 1
      end
    in
    { Epre_verify.Verify.rules = ids; include_lints = lints }
  in
  let inputs = verify_inputs file workload workloads in
  let levels =
    if all_levels then None :: List.map Option.some Epre.Pipeline.all_levels
    else [ level ]
  in
  let total_errors = ref 0 in
  let total_warnings = ref 0 in
  let reports = ref [] in
  with_telemetry tel (fun () ->
      List.iter
        (fun (name, compile) ->
          List.iter
            (fun lvl ->
              let prog = compile () in
              (match lvl with
              | None -> ()
              | Some level -> ignore (Epre.Pipeline.optimize ~level prog));
              let diags = Epre_verify.Verify.check_program ~config prog in
              Epre_verify.Verify.record_metrics diags;
              let errs = List.length (Epre_verify.Verify.errors diags) in
              let warns = List.length (Epre_verify.Verify.warnings diags) in
              total_errors := !total_errors + errs;
              total_warnings := !total_warnings + warns;
              if json then
                reports :=
                  Epre_telemetry.Tjson.Obj
                    [ ("input", Epre_telemetry.Tjson.Str name);
                      ("level", Epre_telemetry.Tjson.Str (level_label lvl));
                      ("report", Epre_verify.Verify.to_tjson diags) ]
                  :: !reports
              else if diags <> [] then begin
                Fmt.pr "== %s (%s)@." name (level_label lvl);
                Fmt.pr "%s@." (Epre_verify.Verify.render diags)
              end)
            levels)
        inputs);
  if json then
    print_endline
      (Epre_telemetry.Tjson.to_string
         (Epre_telemetry.Tjson.Arr (List.rev !reports)))
  else
    Fmt.pr "%s: %d error(s), %d warning(s) over %d check(s)@."
      (if lints then "lint" else "verify")
      !total_errors !total_warnings
      (List.length inputs * List.length levels);
  emit_metrics tel [];
  if !total_errors > 0 then exit 1

let verify_cmd =
  let doc =
    "statically verify a program: structural (V0xx) and type (T0xx) rules"
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Compiles the input (a source FILE, $(b,--workload) NAME or every \
         built-in workload with $(b,--workloads)), optionally optimizes it \
         at $(b,-O) or at every level with $(b,--all-levels), and runs the \
         $(b,epre_verify) rule set over the result: CFG/structural \
         well-formedness, SSA checks, definite assignment and the \
         register-type rules. The rule catalog lives in DESIGN.md.";
      `P "Exit status: 1 when any error-severity diagnostic is reported." ]
  in
  let run file workload workloads level all_levels rules json tel =
    run_verify ~lints:false file workload workloads level all_levels rules
      json tel
  in
  Cmd.v (Cmd.info "verify" ~doc ~man)
    Term.(
      const run $ verify_file_arg $ verify_workload_arg $ verify_workloads_arg
      $ level_arg $ all_levels_arg $ rules_arg $ json_arg $ telemetry_term)

let lint_cmd =
  let doc = "verify plus the L0xx lint rules (style-of-IR warnings)" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Everything $(b,eprec verify) checks, plus the lint rules: unsplit \
         critical edges, dead pure code, redundant or dead phis, empty \
         forwarding blocks and rank-order violations. Lints are warnings; \
         the exit status still only reflects error-severity diagnostics." ]
  in
  let run file workload workloads level all_levels rules json tel =
    run_verify ~lints:true file workload workloads level all_levels rules
      json tel
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      const run $ verify_file_arg $ verify_workload_arg $ verify_workloads_arg
      $ level_arg $ all_levels_arg $ rules_arg $ json_arg $ telemetry_term)

(* --- analyze ----------------------------------------------------------- *)

(* PRE runs at every level above Baseline, so that's where residual
   redundancy (A001/A002) becomes an error rather than expected input. *)
let expect_pre_at = function
  | Epre.Pipeline.Baseline -> false
  | Epre.Pipeline.Partial | Epre.Pipeline.Reassociation
  | Epre.Pipeline.Distribution ->
    true

let run_analyze file workload workloads level all_levels rules json tel =
  let rule_filter =
    match rules with
    | None -> None
    | Some spec -> begin
      match Epre_verify.Rules.parse_spec spec with
      | Ok ids -> Some ids
      | Error id ->
        Fmt.epr "unknown rule id %S (see DESIGN.md)@." id;
        exit 1
    end
  in
  let inputs = verify_inputs file workload workloads in
  let levels =
    if all_levels then None :: List.map Option.some Epre.Pipeline.all_levels
    else [ level ]
  in
  let total_errors = ref 0 in
  let total_warnings = ref 0 in
  let reports = ref [] in
  with_telemetry tel (fun () ->
      List.iter
        (fun (name, compile) ->
          List.iter
            (fun lvl ->
              let prog, expect_pre, baseline =
                match lvl with
                | None -> (compile (), false, None)
                | Some level ->
                  let reference = compile () in
                  let prog = compile () in
                  ignore (Epre.Pipeline.optimize ~level prog);
                  (prog, expect_pre_at level, Some reference)
              in
              let routine_reports, diags =
                Epre_verify.Analyze.check_program ~expect_pre ?baseline prog
              in
              let diags =
                match rule_filter with
                | None -> diags
                | Some ids ->
                  List.filter
                    (fun (d : Epre_verify.Diag.t) ->
                      List.mem d.Epre_verify.Diag.rule ids)
                    diags
              in
              Epre_verify.Analyze.record_metrics diags;
              let errs = List.length (Epre_verify.Verify.errors diags) in
              let warns = List.length (Epre_verify.Verify.warnings diags) in
              total_errors := !total_errors + errs;
              total_warnings := !total_warnings + warns;
              if json then
                reports :=
                  Epre_telemetry.Tjson.Obj
                    [ ("input", Epre_telemetry.Tjson.Str name);
                      ("level", Epre_telemetry.Tjson.Str (level_label lvl));
                      ( "routines",
                        Epre_telemetry.Tjson.Arr
                          (List.map
                             (fun (rn, rep) ->
                               Epre_verify.Analyze.report_to_tjson ~routine:rn
                                 rep)
                             routine_reports) );
                      ("report", Epre_verify.Verify.to_tjson diags) ]
                  :: !reports
              else begin
                if diags <> [] then begin
                  Fmt.pr "== %s (%s)@." name (level_label lvl);
                  Fmt.pr "%s@." (Epre_verify.Verify.render diags)
                end;
                let residual =
                  List.fold_left
                    (fun acc (_, rep) ->
                      acc + Epre_verify.Analyze.Audit.residual rep)
                    0 routine_reports
                in
                if residual > 0 && lvl <> None then
                  Fmt.pr "%s (%s): %d redundant evaluation(s) left@." name
                    (level_label lvl) residual
              end)
            levels)
        inputs);
  if json then
    print_endline
      (Epre_telemetry.Tjson.to_string
         (Epre_telemetry.Tjson.Arr (List.rev !reports)))
  else
    Fmt.pr "analyze: %d error(s), %d warning(s) over %d check(s)@."
      !total_errors !total_warnings
      (List.length inputs * List.length levels);
  emit_metrics tel [];
  if !total_errors > 0 then exit 1

let analyze_cmd =
  let doc =
    "audit PRE effectiveness: residual redundancy, down-safety and \
     register pressure (A0xx rules)"
  in
  let man =
    [ `S Manpage.s_description;
      `P
        "Compiles the input (a source FILE, $(b,--workload) NAME or every \
         built-in workload with $(b,--workloads)), optimizes it at $(b,-O) \
         (or at every level with $(b,--all-levels)), and runs the \
         redundancy auditor over the result: every expression evaluation \
         site is classified as $(b,full)y redundant (available on every \
         path — rule A001), $(b,partial)ly redundant (a safe placement \
         could remove it — A002), $(b,value)-redundant (a congruent \
         register already holds the value — A007) or clean, and each site \
         gets a down-safety verdict (its result is read on every path \
         from the site).";
      `P
        "When the program was optimized, the unoptimized compile of the \
         same input serves as the baseline for the delta rules: \
         speculative evaluations introduced (A003), a path's evaluation \
         count of one expression increased (A004) and peak register \
         pressure grew (A005). Long expression lifetimes warn under A006 \
         at any level.";
      `P
        "$(b,--json) emits one object per (input, level) with the \
         per-routine site classifications, per-block pressure, deltas and \
         the residual score, plus the diagnostics in the $(b,verify) \
         report schema.";
      `S Manpage.s_exit_status;
      `P
        "0 when the audit reports no error-severity finding (A001–A003); \
         1 when any error-severity finding is reported, or on an unknown \
         workload or rule id; 124 on command-line parse errors." ]
  in
  Cmd.v (Cmd.info "analyze" ~doc ~man)
    Term.(
      const run_analyze $ verify_file_arg $ verify_workload_arg
      $ verify_workloads_arg $ level_arg $ all_levels_arg $ rules_arg
      $ json_arg $ telemetry_term)

let serve_cmd =
  let doc = "batch compile server: JSON jobs in, JSON results out" in
  let man =
    [ `S Manpage.s_description;
      `P
        "Reads newline-delimited JSON compile jobs from stdin (or \
         $(b,--input) FILE), optimizes each program on a pool of worker \
         domains through a persistent content-hash result cache, and \
         streams one JSON result line per job to stdout, in input order.";
      `P
        "A job names its program with exactly one of $(b,file) (source \
         path), $(b,workload) (built-in name), $(b,source) (inline source \
         text) or $(b,iloc) (inline ILOC), plus optional $(b,id), \
         $(b,level) (default $(b,partial)) and $(b,emit) (include the \
         optimized ILOC in the result; default true):";
      `Pre
        "  {\"id\":\"j1\",\"level\":\"partial\",\"workload\":\"saxpy\"}\n\
        \  {\"id\":\"j2\",\"file\":\"kernel.src\",\"emit\":false}";
      `P
        "Results carry per-job cache traffic, wall latency \
         ($(b,latency_ms)), the attempt count and an $(b,outcome) of \
         $(b,ok), $(b,error), $(b,timeout), $(b,retried_ok), \
         $(b,degraded) (served at a lower level than requested — the \
         result also reports $(b,requested) and any $(b,excised) passes) \
         or $(b,shed) (rejected by admission control); a \
         malformed job line yields an in-order $(b,ok:false) result with \
         its input line number instead of killing the server. The cache \
         lives in $(b,--cache-dir) (default $(b,\\$EPREC_CACHE_DIR), else \
         $(b,\\$XDG_CACHE_HOME/eprec), else $(b,~/.cache/eprec)) and \
         survives restarts: a routine whose (ILOC, pipeline fingerprint) \
         digest was optimized before — by any prior job or process — is \
         replayed byte-identically without recompiling. Writes take an \
         advisory file lock, so concurrent serve processes can share one \
         cache directory.";
      `P
        "Fault tolerance: $(b,--timeout-ms) cancels a job attempt at its \
         next pass boundary, $(b,--retries) grants extra attempts to \
         transient failures (with jittered exponential backoff from \
         $(b,--backoff-ms)); deterministic failures are never retried — \
         instead the degradation ladder re-attempts them at successively \
         lower optimization levels down to baseline ($(b,--no-degrade) \
         disables), validating every degraded result against the \
         unoptimized program before serving it. Per-pass circuit \
         breakers ($(b,--breaker-threshold) consecutive failures open \
         one; a half-open probe runs after $(b,--breaker-probe-after) \
         skipped executions) excise a deterministically-failing pass \
         from subsequent pipelines so one poisoned pass degrades service \
         instead of failing every job. $(b,--chaos) injects service \
         faults (repeatable; $(b,chaos:worker-raise), $(b,chaos:slow-job), \
         $(b,chaos:cache-corrupt), $(b,chaos:cache-lock-hold), \
         $(b,chaos:kill-self), $(b,chaos:pass-poison)) keyed \
         deterministically on job ids, for drills and soak tests.";
      `P
        "Crash safety: with a cache directory, every job's lifecycle is \
         journaled to $(b,<cache-dir>/journal.jsonl) — an fsync'd \
         append-only WAL. If the server is killed mid-batch, restarting \
         it with $(b,--resume) on the same input skips jobs whose result \
         lines provably reached the output (they produce no line on the \
         resumed run) and re-runs in-flight ones exactly once, so \
         concatenating the killed run's output with the resumed run's \
         yields the complete batch byte-identically. \
         Overload: $(b,--max-pending) bounds the pending queue; under \
         $(b,--shed-policy=block) (default) the reader simply stops \
         consuming stdin (backpressure), under $(b,reject) a saturated \
         queue deterministically sheds the next jobs as \
         $(b,outcome:shed) result lines.";
      `P
        "Observability: every job carries its id as a correlation id \
         through the structured event log — $(b,--log-level) mirrors \
         events at that level and above to stderr, $(b,--log-out) \
         appends every event as JSONL. $(b,--stats-every) prints a \
         one-line progress summary (throughput, hit rate, p50/p99 \
         latency, pool utilization) every N jobs, and $(b,--metrics-out) \
         writes Prometheus-style counters and latency histograms \
         (atomically) on each stats tick and at exit. A flight recorder \
         is on by default: each domain keeps a ring of recent events, \
         and any worker exception, timeout, crash or chaos firing dumps \
         them to $(b,--flight-dir)/flightrec-<pid>.json for \
         post-mortems ($(b,--no-flight) disables). None of this touches \
         stdout: results are byte-identical with every sink on or off.";
      `S "EXIT STATUS";
      `P
        "$(b,0) every job served at its requested level; $(b,1) at least \
         one job failed; $(b,2) fatal error (bad usage, unknown fault, \
         $(b,--resume) without a cache); $(b,4) all jobs completed but \
         some were degraded or shed. Under $(b,chaos:kill-self) the \
         server kills itself with $(b,SIGKILL) (exit 137) after \
         journaling the in-flight batch." ]
  in
  let input_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "input" ] ~docv:"FILE"
          ~doc:"Read job lines from FILE instead of stdin.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompile every job; touch no cache.")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Jobs dispatched to the pool per round (default \
             $(b,max 32 (4*jobs))). Results still stream in input order.")
  in
  let cache_max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"N"
          ~doc:
            "Byte budget for the cache directory; exceeding it evicts the \
             oldest entries (default unbounded).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-job attempt deadline; an overrunning job is cancelled at \
             its next pass boundary and reported as $(b,outcome:timeout).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts granted to transient failures (deterministic \
             failures and timeouts are never retried).")
  in
  let backoff_arg =
    Arg.(
      value & opt float 50.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base retry backoff; doubles per attempt with deterministic \
             per-job jitter.")
  in
  let serve_chaos_arg =
    Arg.(
      value & opt_all string []
      & info [ "chaos" ] ~docv:"NAME"
          ~doc:
            "Inject a service fault class (repeatable): \
             $(b,chaos:worker-raise), $(b,chaos:slow-job), \
             $(b,chaos:cache-corrupt), $(b,chaos:cache-lock-hold), \
             $(b,chaos:kill-self), $(b,chaos:pass-poison).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume a killed batch: jobs the journal proves were already \
             emitted produce no line, the rest re-run. Requires a cache \
             directory (the journal lives at \
             $(b,<cache-dir>/journal.jsonl)).")
  in
  let max_pending_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Bound the pending-job queue at N (default unbounded): stdin \
             is only consumed while the queue is below the bound.")
  in
  let shed_policy_arg =
    Arg.(
      value
      & opt (enum [ ("block", `Block); ("reject", `Reject) ]) `Block
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:
            "What a saturated queue does to new jobs: $(b,block) \
             (default) simply stops reading input at the bound — pure \
             stdin backpressure; $(b,reject) sheds the overflow \
             deterministically as $(b,outcome:shed) result lines, down \
             to the low watermark (half the bound).")
  in
  let cache_sweep_age_arg =
    Arg.(
      value & opt float 60.0
      & info [ "cache-sweep-age-s" ] ~docv:"S"
          ~doc:
            "Age in seconds before an orphaned cache temp file is swept \
             on startup; files whose writer still holds its advisory \
             lock are spared regardless.")
  in
  let breaker_threshold_arg =
    Arg.(
      value & opt int 3
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Consecutive failures attributed to one pass before its \
             circuit breaker opens and the pass is excised from \
             subsequent pipelines.")
  in
  let breaker_probe_after_arg =
    Arg.(
      value & opt int 8
      & info [ "breaker-probe-after" ] ~docv:"N"
          ~doc:
            "Pipeline executions skipped by an open breaker before a \
             half-open probe re-runs the pass once.")
  in
  let no_degrade_arg =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:
            "Disable the graceful-degradation ladder: terminal failures \
             are reported as-is instead of being re-attempted at lower \
             optimization levels.")
  in
  let log_level_arg =
    let level_conv =
      Arg.conv
        ( (fun s ->
            match Epre_telemetry.Log.level_of_string s with
            | Some l -> Ok l
            | None ->
              Error (`Msg (Printf.sprintf "unknown log level %S" s))),
          fun ppf l ->
            Format.pp_print_string ppf (Epre_telemetry.Log.level_to_string l) )
    in
    Arg.(
      value
      & opt (some level_conv) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Mirror structured events at LEVEL ($(b,debug), $(b,info), \
             $(b,warn), $(b,error)) and above to stderr as one-line text.")
  in
  let log_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-out" ] ~docv:"FILE"
          ~doc:"Append every structured event to FILE as JSON lines.")
  in
  let stats_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "stats-every" ] ~docv:"N"
          ~doc:
            "Print a one-line progress summary to stderr every N completed \
             jobs (throughput, hit rate, p50/p99 latency, pool \
             utilization), and once at the end.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write Prometheus-style text exposition (counters plus latency \
             histogram quantiles) to FILE, atomically, on each stats tick \
             and at exit.")
  in
  let flight_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for flight-recorder dumps \
             ($(b,flightrec-<pid>.json)); written whenever a worker \
             raises, a job times out or crashes, or a chaos fault fires.")
  in
  let no_flight_arg =
    Arg.(value & flag & info [ "no-flight" ] ~doc:"Disable the flight recorder.")
  in
  let run input jobs cache_dir no_cache batch cache_max_bytes timeout_ms
      retries backoff_ms chaos_names chaos_seed resume max_pending shed_policy
      cache_sweep_age_s breaker_threshold breaker_probe_after no_degrade
      log_level log_out stats_every metrics_out flight_dir no_flight tel =
    (match chaos_seed with
    | Some s -> Epre_harness.Chaos.default_seed := s
    | None -> ());
    let chaos =
      List.map
        (fun n ->
          match Epre_harness.Chaos.service_fault_of_name n with
          | Some f -> f
          | None ->
            Fmt.epr "unknown service fault %S (see `eprec passes`)@." n;
            exit 2)
        chaos_names
    in
    let policy =
      { Epre_service.Service.Policy.timeout_ms; retries = max 0 retries;
        backoff_ms = Float.max 0.0 backoff_ms; degrade = not no_degrade }
    in
    let cache =
      if no_cache then None
      else
        Some
          (Epre_service.Cache.create ?max_bytes:cache_max_bytes
             ~sweep_age_s:cache_sweep_age_s
             ~dir:
               (Option.value cache_dir
                  ~default:(Epre_service.Cache.default_dir ()))
             ())
    in
    let journal =
      match cache with
      | Some c ->
        (* A fresh serve truncates any stale journal (unless another live
           serve holds it) and stamps a new run id; --resume continues
           the previous incarnation's run id instead. *)
        Some
          (Epre_service.Journal.open_
             ~mode:(if resume then `Resume else `Fresh)
             ~path:(Filename.concat (Epre_service.Cache.dir c) "journal.jsonl")
             ())
      | None ->
        if resume then begin
          Fmt.epr "serve: --resume needs the journal, which lives in the \
                   cache directory; drop --no-cache@.";
          exit 2
        end;
        None
    in
    let breaker =
      Epre_service.Breaker.create ~threshold:breaker_threshold
        ~probe_after:breaker_probe_after ()
    in
    let ic = match input with None -> stdin | Some f -> open_in f in
    (match log_level with
    | Some l -> Epre_telemetry.Log.set_stderr_level (Some l)
    | None -> ());
    (match log_out with
    | Some f -> Epre_telemetry.Log.open_file f
    | None -> ());
    if not no_flight then Epre_telemetry.Recorder.configure ~dir:flight_dir ();
    let close () =
      if input <> None then close_in_noerr ic;
      Option.iter Epre_service.Journal.close journal;
      Epre_telemetry.Log.close_file ();
      Epre_telemetry.Recorder.disable ()
    in
    let summary =
      match
        Fun.protect ~finally:close (fun () ->
            with_telemetry tel (fun () ->
                Epre_service.Pool.with_pool ~jobs:(effective_jobs jobs)
                  (fun pool ->
                    Epre_service.Service.serve ?cache ?batch ~policy ~chaos
                      ?stats_every ?metrics_out ?journal ~resume ~breaker
                      ?max_pending ~shed_policy ~pool ~input:ic ~output:stdout
                      ())))
      with
      | summary -> summary
      | exception Epre_service.Service.Killed ->
        (* chaos:kill-self — make the drill real: flushed output and the
           journal survive, then the process dies exactly as a crashed
           server would (exit 137). *)
        flush stdout;
        flush stderr;
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
    in
    emit_metrics tel [];
    Fmt.epr
      "serve: %d job(s), %d ok (%d retried, %d degraded), %d failed (%d \
       timeout), %d shed, %d replayed, %d hit(s), %d miss(es), %.1f ms@."
      summary.Epre_service.Service.jobs summary.Epre_service.Service.succeeded
      summary.Epre_service.Service.retried
      summary.Epre_service.Service.degraded
      summary.Epre_service.Service.failed summary.Epre_service.Service.timeouts
      summary.Epre_service.Service.shed summary.Epre_service.Service.replayed
      summary.Epre_service.Service.total.Epre_service.Service.hits
      summary.Epre_service.Service.total.Epre_service.Service.misses
      summary.Epre_service.Service.wall_ms;
    if summary.Epre_service.Service.failed > 0 then exit 1
    else if
      summary.Epre_service.Service.degraded > 0
      || summary.Epre_service.Service.shed > 0
    then exit 4
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ input_arg $ jobs_arg $ cache_dir_arg $ no_cache_arg
      $ batch_arg $ cache_max_bytes_arg $ timeout_arg $ retries_arg
      $ backoff_arg $ serve_chaos_arg $ chaos_seed_arg $ resume_arg
      $ max_pending_arg $ shed_policy_arg $ cache_sweep_age_arg
      $ breaker_threshold_arg $ breaker_probe_after_arg $ no_degrade_arg
      $ log_level_arg $ log_out_arg $ stats_every_arg $ metrics_out_arg
      $ flight_dir_arg $ no_flight_arg $ telemetry_term)

let workloads_cmd =
  let doc = "list the built-in workload suite, or differentially check it" in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Compile every workload, optimize at $(b,-O) (default \
             $(b,partial)), interpret, and compare the observable behaviour \
             against the unoptimized program. Honours the supervision \
             flags; exits non-zero on any mismatch.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "With $(b,--check): treat verifier warnings on the optimized \
             program as failures, not just diagnostics.")
  in
  let run check strict level jobs sup tel =
    if not check then
      List.iter
        (fun w ->
          Printf.printf "%-12s %s\n" w.Epre_workloads.Workloads.name
            w.Epre_workloads.Workloads.description)
        Epre_workloads.Workloads.all
    else begin
      let level = Option.value level ~default:Epre.Pipeline.Partial in
      (* Parse --chaos once, eagerly: a typo must error before any worker
         runs, and workers must not call exit. *)
      let inject =
        match sup.chaos with None -> [] | Some spec -> [ parse_chaos spec ]
      in
      (* Each workload is an independent program, so the whole check —
         optimize (even Exec-validated), verify, interpret — fans across
         the pool. Diagnostics are collected per workload and printed in
         suite order afterwards, byte-identical to a serial run. *)
      let check_workload w =
        let logs = Buffer.create 256 in
        let failed = ref 0 in
        let name = w.Epre_workloads.Workloads.name in
        let reference = Epre_workloads.Workloads.compile w in
        let prog = Epre_workloads.Workloads.compile w in
        let stats = ref [] and records = ref [] in
        (try
           if supervised sup then begin
             let s, r =
               Epre.Pipeline.optimize_supervised ~inject
                 ~config:(harness_config sup) ~level prog
             in
             stats := s;
             records := r
           end
           else stats := Epre.Pipeline.optimize ~level prog
         with
        | Epre_harness.Harness.Supervision_failed record ->
          records := [ record ];
          incr failed;
          Printf.bprintf logs "FAIL %-12s %s\n" name
            (Epre_harness.Report.record_to_line record)
        | e ->
          incr failed;
          Printf.bprintf logs "FAIL %-12s pass raised: %s\n" name
            (Printexc.to_string e));
        (* Static verification of the optimized program (V/T rules; run
           `eprec lint` for the L rules): errors always fail the workload,
           warnings are surfaced (and fail under --strict). *)
        let diags = Epre_verify.Verify.check_program prog in
        Epre_verify.Verify.record_metrics diags;
        let verrs = Epre_verify.Verify.errors diags in
        let vwarns = Epre_verify.Verify.warnings diags in
        List.iter
          (fun d ->
            Printf.bprintf logs "     %s\n" (Epre_verify.Diag.to_string d))
          diags;
        if verrs <> [] then begin
          incr failed;
          Printf.bprintf logs "FAIL %-12s verifier: %d error(s)\n" name
            (List.length verrs)
        end
        else if strict && vwarns <> [] then begin
          incr failed;
          Printf.bprintf logs "FAIL %-12s verifier: %d warning(s) (--strict)\n"
            name (List.length vwarns)
        end;
        (* Redundancy audit of the optimized program against the
           unoptimized reference: residual-redundancy errors (A001/A002)
           fail the workload like verifier errors. The advisory A
           warnings fire on legitimate engine trade-offs (see `eprec
           analyze`), so they never gate the check, strict or not. *)
        let _, adiags =
          Epre_verify.Analyze.check_program ~expect_pre:(expect_pre_at level)
            ~baseline:reference prog
        in
        Epre_verify.Analyze.record_metrics adiags;
        let aerrs = Epre_verify.Verify.errors adiags in
        List.iter
          (fun d ->
            Printf.bprintf logs "     %s\n" (Epre_verify.Diag.to_string d))
          aerrs;
        if aerrs <> [] then begin
          incr failed;
          Printf.bprintf logs "FAIL %-12s auditor: %d error(s)\n" name
            (List.length aerrs)
        end;
        let fuel = Epre_interp.Interp.default_fuel in
        let before = Epre_harness.Harness.observe ~fuel reference in
        let after = Epre_harness.Harness.observe ~fuel prog in
        if Epre_harness.Harness.obs_equal before after then
          Printf.bprintf logs "ok   %-12s\n" name
        else begin
          incr failed;
          Printf.bprintf logs "FAIL %-12s behaviour diverged\n" name
        end;
        (Buffer.contents logs, !failed, !stats, !records)
      in
      let results =
        with_telemetry tel (fun () ->
            Epre_service.Pool.with_pool ~jobs:(effective_jobs jobs) (fun pool ->
                Epre_service.Pool.map_list pool check_workload
                  Epre_workloads.Workloads.all))
      in
      let failures = ref 0 in
      let all_stats = ref [] and all_records = ref [] in
      List.iter
        (fun (logs, failed, stats, records) ->
          Fmt.epr "%s@?" logs;
          failures := !failures + failed;
          all_stats := !all_stats @ stats;
          all_records := !all_records @ records)
        results;
      print_report sup Fmt.stdout !all_records;
      emit_metrics tel !all_stats;
      if !failures > 0 then begin
        Fmt.epr "%d workload(s) failed@." !failures;
        exit 1
      end
    end
  in
  Cmd.v (Cmd.info "workloads" ~doc)
    Term.(
      const run $ check_arg $ strict_arg $ level_arg $ jobs_arg
      $ supervision_term $ telemetry_term)

let main =
  let doc = "effective partial redundancy elimination (Briggs & Cooper, PLDI 1994)" in
  Cmd.group (Cmd.info "eprec" ~doc)
    [ compile_cmd; run_cmd; bisect_cmd; fuzz_cmd; table1_cmd; table2_cmd; hierarchy_cmd;
      verify_cmd; lint_cmd; analyze_cmd; passes_cmd; workloads_cmd; serve_cmd ]

let () = exit (Cmd.eval main)
