(** Tests for [Epre_analysis]: orders, dominators, frontiers, natural
    loops, liveness, and the generic data-flow solver. *)

open Epre_ir
open Epre_analysis
open Epre_util

(* A reusable little graph builder: [make edges] produces a CFG whose block
   0 is the entry; blocks with no listed successors return. *)
let make_cfg nblocks edges =
  let cfg = Cfg.create () in
  for _ = 0 to nblocks - 1 do
    ignore (Cfg.add_block ~term:(Instr.Ret None) cfg)
  done;
  let succs = Array.make nblocks [] in
  List.iter (fun (a, b) -> succs.(a) <- succs.(a) @ [ b ]) edges;
  Array.iteri
    (fun i -> function
      | [] -> ()
      | [ s ] -> (Cfg.block cfg i).Block.term <- Instr.Jump s
      | [ s1; s2 ] ->
        (Cfg.block cfg i).Block.term <- Instr.Cbr { cond = 0; ifso = s1; ifnot = s2 }
      | _ -> invalid_arg "make_cfg: at most two successors")
    succs;
  Cfg.set_entry cfg 0;
  cfg

(* The classic example CFG used in dominator papers:
     0 -> 1 -> 2 -> 3 -> 4
          1 -> 5 -> 6 -> 3
               5 -> 4 ... keep it simpler: a diamond with a loop. *)
let diamond_loop () =
  (* 0 -> 1, 2 ; 1 -> 3 ; 2 -> 3 ; 3 -> 4, 1 ; 4 exit *)
  make_cfg 5 [ (0, 1); (0, 2); (1, 3); (2, 3); (3, 4); (3, 1) ]

(* ------------------------------------------------------------------ *)
(* Order *)

let test_rpo_entry_first () =
  let cfg = diamond_loop () in
  let order = Order.compute cfg in
  let rpo = Order.reverse_postorder order in
  Alcotest.(check int) "entry first" 0 rpo.(0);
  Alcotest.(check int) "all reachable blocks present" 5 (Array.length rpo);
  (* rpo numbers are consistent with positions *)
  Array.iteri
    (fun i id -> Alcotest.(check int) "rpo_number" i (Order.rpo_number order id))
    rpo

let test_unreachable_excluded () =
  let cfg = make_cfg 4 [ (0, 1); (2, 3) ] in
  let order = Order.compute cfg in
  Alcotest.(check bool) "2 unreachable" false (Order.is_reachable order 2);
  Alcotest.(check bool) "3 unreachable" false (Order.is_reachable order 3);
  Alcotest.(check int) "two reachable" 2 (Array.length (Order.postorder order))

(* ------------------------------------------------------------------ *)
(* Dominators *)

let test_dominators_diamond_loop () =
  let cfg = diamond_loop () in
  let dom = Dom.compute cfg in
  Alcotest.(check int) "idom 1" 0 (Dom.idom dom 1);
  Alcotest.(check int) "idom 2" 0 (Dom.idom dom 2);
  Alcotest.(check int) "idom 3 (join)" 0 (Dom.idom dom 3);
  Alcotest.(check int) "idom 4" 3 (Dom.idom dom 4);
  Alcotest.(check bool) "0 dominates all" true
    (List.for_all (fun b -> Dom.dominates dom 0 b) [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check bool) "3 dominates 4" true (Dom.dominates dom 3 4);
  Alcotest.(check bool) "1 does not dominate 3" false (Dom.dominates dom 1 3)

let test_dominance_frontier () =
  let cfg = diamond_loop () in
  let dom = Dom.compute cfg in
  (* 1 and 2 meet at 3; the retreating edge 3 -> 1 makes 1 a join, so 1 is
     in DF(3). Neither branch strictly dominates the join. *)
  Alcotest.(check (list int)) "DF(1)" [ 3 ] (Dom.frontier dom 1);
  Alcotest.(check (list int)) "DF(2)" [ 3 ] (Dom.frontier dom 2);
  Alcotest.(check bool) "DF(3) contains 1" true (List.mem 1 (Dom.frontier dom 3));
  Alcotest.(check (list int)) "DF(0) empty" [] (Dom.frontier dom 0)

let test_linear_chain_dominators () =
  let cfg = make_cfg 4 [ (0, 1); (1, 2); (2, 3) ] in
  let dom = Dom.compute cfg in
  Alcotest.(check int) "idom 3" 2 (Dom.idom dom 3);
  Alcotest.(check (list int)) "children of 1" [ 2 ] (Dom.children dom 1);
  let visited = ref [] in
  Dom.iter_tree dom ~entry:0 (fun id -> visited := id :: !visited);
  Alcotest.(check (list int)) "preorder walk" [ 0; 1; 2; 3 ] (List.rev !visited)

(* Property: on random CFGs, idom(b) dominates b, and dominance is
   consistent with an exhaustive path check on small graphs. *)
let random_cfg_gen =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* edges =
      list_size (int_range 1 16) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    (* Ensure entry has at least one successor and self-loops on entry are
       avoided; duplicate edges collapse in make_cfg's two-successor cap, so
       filter to at most 2 successors per node. *)
    let by_src = Hashtbl.create 8 in
    let edges =
      List.filter
        (fun (a, b) ->
          ignore b;
          let c = Option.value ~default:0 (Hashtbl.find_opt by_src a) in
          if c >= 2 then false
          else begin
            Hashtbl.replace by_src a (c + 1);
            true
          end)
        ((0, 1 mod n) :: edges)
    in
    return (n, edges))

(* Exhaustive dominance: a dominates b iff every entry->b path hits a. *)
let path_dominates cfg a b =
  let n = Cfg.num_blocks cfg in
  if a = b then true
  else begin
    (* DFS from entry avoiding a; if b is reachable, a does not dominate. *)
    let seen = Array.make n false in
    let rec go id =
      if (not seen.(id)) && id <> a then begin
        seen.(id) <- true;
        List.iter go (Cfg.succs cfg id)
      end
    in
    go (Cfg.entry cfg);
    not seen.(b)
  end

let dominators_match_paths =
  Helpers.qcheck_case ~count:200 "Dom" "CHK dominators match path definition"
    random_cfg_gen
    (fun (n, edges) ->
      let cfg = make_cfg n edges in
      let dom = Dom.compute cfg in
      let order = Order.compute cfg in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Order.is_reachable order a && Order.is_reachable order b then
            if Dom.dominates dom a b <> path_dominates cfg a b then ok := false
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Loops *)

let test_natural_loop () =
  (* 0 -> 1; 1 -> 2, 3; 2 -> 1 — a genuine back edge (1 dominates 2). *)
  let cfg = make_cfg 4 [ (0, 1); (1, 2); (1, 3); (2, 1) ] in
  let loops = Loops.compute cfg in
  match Loops.loops loops with
  | [ l ] ->
    Alcotest.(check int) "header" 1 l.Loops.header;
    Alcotest.(check (list int)) "body" [ 1; 2 ] (List.sort compare l.Loops.body);
    Alcotest.(check int) "depth of body" 1 (Loops.depth loops 2);
    Alcotest.(check int) "depth outside" 0 (Loops.depth loops 3)
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let test_retreating_edge_is_not_a_loop () =
  (* diamond_loop's 3 -> 1 edge is retreating but 1 does not dominate 3, so
     no natural loop exists. *)
  let cfg = diamond_loop () in
  let loops = Loops.compute cfg in
  Alcotest.(check int) "no natural loops" 0 (List.length (Loops.loops loops))

let test_nested_loops_depth () =
  (* 0 -> 1; 1 -> 2; 2 -> 2 (self), 2 -> 1 (outer back edge), 1 -> 3 *)
  let cfg = make_cfg 4 [ (0, 1); (1, 2); (1, 3); (2, 2); (2, 1) ] in
  let loops = Loops.compute cfg in
  Alcotest.(check int) "inner depth" 2 (Loops.depth loops 2);
  Alcotest.(check int) "outer depth" 1 (Loops.depth loops 1);
  Alcotest.(check int) "outside" 0 (Loops.depth loops 3)

(* ------------------------------------------------------------------ *)
(* Liveness *)

let test_liveness_straightline () =
  let b = Builder.start ~name:"l" ~nparams:2 in
  let t = Builder.binop b Op.Add 0 1 in
  Builder.ret b (Some t);
  let r = Builder.finish b in
  let live = Liveness.compute r in
  let live_in = Liveness.live_in live 0 in
  Alcotest.(check bool) "param 0 live-in" true (Bitset.mem live_in 0);
  Alcotest.(check bool) "param 1 live-in" true (Bitset.mem live_in 1);
  Alcotest.(check bool) "temp not live-in" false (Bitset.mem live_in t)

let test_liveness_across_blocks () =
  let b = Builder.start ~name:"l" ~nparams:1 in
  let t = Builder.int b 42 in
  let b2 = Builder.new_block b in
  Builder.jump b b2;
  Builder.switch b b2;
  let u = Builder.binop b Op.Add t 0 in
  Builder.ret b (Some u);
  let r = Builder.finish b in
  let live = Liveness.compute r in
  Alcotest.(check bool) "t live-out of entry" true
    (Bitset.mem (Liveness.live_out live 0) t);
  Alcotest.(check bool) "t live-in of b2" true (Bitset.mem (Liveness.live_in live b2) t)

let test_liveness_phi_args_at_pred () =
  (* entry -> b1 / b2 -> join with a phi: each phi argument is live out of
     its own predecessor only. *)
  let b = Builder.start ~name:"l" ~nparams:0 in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let join = Builder.new_block b in
  let c = Builder.int b 1 in
  Builder.cbr b ~cond:c ~ifso:b1 ~ifnot:b2;
  Builder.switch b b1;
  let x1 = Builder.int b 10 in
  Builder.jump b join;
  Builder.switch b b2;
  let x2 = Builder.int b 20 in
  Builder.jump b join;
  Builder.switch b join;
  let d = Builder.fresh_reg b in
  Builder.emit b (Instr.Phi { dst = d; args = [ (b1, x1); (b2, x2) ] });
  Builder.ret b (Some d);
  let r = Builder.finish b in
  let live = Liveness.compute r in
  Alcotest.(check bool) "x1 live-out of b1" true (Bitset.mem (Liveness.live_out live b1) x1);
  Alcotest.(check bool) "x2 not live-out of b1" false
    (Bitset.mem (Liveness.live_out live b1) x2);
  Alcotest.(check bool) "x2 live-out of b2" true (Bitset.mem (Liveness.live_out live b2) x2);
  Alcotest.(check bool) "phi dst not live-in of join" false
    (Bitset.mem (Liveness.live_in live join) d)

(* ------------------------------------------------------------------ *)
(* Data-flow solver *)

let test_forward_union_reaching () =
  (* A two-block chain: gen in block 0 reaches block 1. *)
  let cfg = make_cfg 2 [ (0, 1) ] in
  let gen0 = Bitset.create 4 in
  Bitset.add gen0 0;
  let gen1 = Bitset.create 4 in
  let empty = Bitset.create 4 in
  let sys =
    { Dataflow.width = 4;
      gen = (fun id -> if id = 0 then gen0 else gen1);
      kill = (fun _ -> empty);
      boundary = Bitset.create 4;
      meet = Dataflow.Union }
  in
  let r = Dataflow.solve_forward cfg sys in
  Alcotest.(check bool) "fact flows in" true (Bitset.mem r.Dataflow.ins.(1) 0)

let test_forward_inter_kills () =
  (* diamond: fact generated in entry; killed on one branch; intersection
     at the join must drop it. *)
  let cfg = make_cfg 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let width = 1 in
  let full1 = Bitset.full width in
  let empty = Bitset.create width in
  let sys =
    { Dataflow.width;
      gen = (fun id -> if id = 0 then full1 else empty);
      kill = (fun id -> if id = 1 then full1 else empty);
      boundary = Bitset.create width;
      meet = Dataflow.Inter }
  in
  let r = Dataflow.solve_forward cfg sys in
  Alcotest.(check bool) "available out of 2" true (Bitset.mem r.Dataflow.outs.(2) 0);
  Alcotest.(check bool) "killed out of 1" false (Bitset.mem r.Dataflow.outs.(1) 0);
  Alcotest.(check bool) "join loses the fact" false (Bitset.mem r.Dataflow.ins.(3) 0)

let test_backward_inter_anticipation () =
  (* diamond where both branches generate: anticipated at entry's exit. *)
  let cfg = make_cfg 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let width = 1 in
  let full1 = Bitset.full width in
  let empty = Bitset.create width in
  let sys =
    { Dataflow.width;
      gen = (fun id -> if id = 1 || id = 2 then full1 else empty);
      kill = (fun _ -> empty);
      boundary = Bitset.create width;
      meet = Dataflow.Inter }
  in
  let r = Dataflow.solve_backward cfg sys in
  Alcotest.(check bool) "anticipated at entry exit" true
    (Bitset.mem r.Dataflow.outs.(0) 0);
  Alcotest.(check bool) "not anticipated at exit block" false
    (Bitset.mem r.Dataflow.outs.(3) 0)

let test_loop_avail_fixpoint () =
  (* fact generated before a loop and transparent inside: available
     throughout the loop despite the back edge. *)
  let cfg = diamond_loop () in
  let width = 1 in
  let full1 = Bitset.full width in
  let empty = Bitset.create width in
  let sys =
    { Dataflow.width;
      gen = (fun id -> if id = 0 then full1 else empty);
      kill = (fun _ -> empty);
      boundary = Bitset.create width;
      meet = Dataflow.Inter }
  in
  let r = Dataflow.solve_forward cfg sys in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "available in %d" b)
        true
        (Bitset.mem r.Dataflow.ins.(b) 0))
    [ 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "order: rpo puts entry first" `Quick test_rpo_entry_first;
    Alcotest.test_case "order: unreachable blocks excluded" `Quick test_unreachable_excluded;
    Alcotest.test_case "dom: diamond with loop" `Quick test_dominators_diamond_loop;
    Alcotest.test_case "dom: dominance frontiers" `Quick test_dominance_frontier;
    Alcotest.test_case "dom: linear chain + tree walk" `Quick test_linear_chain_dominators;
    dominators_match_paths;
    Alcotest.test_case "loops: natural loop discovery" `Quick test_natural_loop;
    Alcotest.test_case "loops: retreating edge is not a loop" `Quick test_retreating_edge_is_not_a_loop;
    Alcotest.test_case "loops: nesting depth" `Quick test_nested_loops_depth;
    Alcotest.test_case "liveness: straight line" `Quick test_liveness_straightline;
    Alcotest.test_case "liveness: across blocks" `Quick test_liveness_across_blocks;
    Alcotest.test_case "liveness: phi args at predecessors" `Quick test_liveness_phi_args_at_pred;
    Alcotest.test_case "dataflow: forward union" `Quick test_forward_union_reaching;
    Alcotest.test_case "dataflow: forward intersection kills" `Quick test_forward_inter_kills;
    Alcotest.test_case "dataflow: backward anticipation" `Quick test_backward_inter_anticipation;
    Alcotest.test_case "dataflow: loop fixpoint" `Quick test_loop_avail_fixpoint;
  ]
