(** Robustness fuzzing: the front-end lexer/parser and the [Ir_text] parser
    must reject arbitrary garbage with their declared exceptions — never a
    crash, assertion failure, or unexpected exception. *)

open QCheck2

(* Byte soup biased toward the languages' alphabets. *)
let gen_soup =
  let token_ish =
    Gen.oneofl
      [ "fn"; "var"; "if"; "else"; "while"; "for"; "to"; "downto"; "step";
        "return"; "int"; "float"; "("; ")"; "{"; "}"; "["; "]"; ","; ";"; ":";
        "+"; "-"; "*"; "/"; "%"; "&&"; "||"; "!"; "="; "=="; "!="; "<"; "<=";
        ">"; ">="; "x"; "y"; "arr"; "main"; "1"; "2.5"; "0"; "//c\n"; "/*";
        "*/"; "\n"; " " ]
  in
  Gen.oneof
    [ Gen.map (String.concat " ") (Gen.list_size (Gen.int_range 0 40) token_ish);
      Gen.string_size ~gen:Gen.printable (Gen.int_range 0 120);
      Gen.string_size ~gen:(Gen.char_range '\000' '\255') (Gen.int_range 0 60) ]

let frontend_total =
  Helpers.qcheck_case ~count:1000 "fuzz" "front end rejects garbage gracefully"
    gen_soup
    (fun s ->
      match Epre_frontend.Frontend.compile_string s with
      | _ -> true
      | exception Epre_frontend.Frontend.Error { line; _ } -> line >= 1)

let ir_text_soup =
  let token_ish =
    Gen.oneofl
      [ "routine"; "entry"; "regs"; "{"; "}"; "B0"; "B1"; ":"; "r0"; "r1";
        "="; "const"; "copy"; "add"; "mul"; "load"; "store"; "alloca"; "call";
        "phi"; "jump"; "cbr"; "return"; ","; "("; ")"; "3"; "0x1.8p+1"; "\n";
        "f"; "# c\n" ]
  in
  Gen.map (String.concat " ") (Gen.list_size (Gen.int_range 0 50) token_ish)

let ir_text_total =
  Helpers.qcheck_case ~count:1000 "fuzz" "Ir_text rejects garbage gracefully"
    ir_text_soup
    (fun s ->
      match Epre_ir.Ir_text.parse_program s with
      | _ -> true
      | exception Epre_ir.Ir_text.Parse_error { line; _ } -> line >= 1
      | exception Epre_ir.Routine.Ill_formed _ -> true)

(* Valid programs mutated by one random byte: also no crashes. *)
let seed_program =
  {|fn f(n: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + i * 2;
  }
  return s;
}|}

let gen_mutation =
  Gen.(
    let* pos = int_bound (String.length seed_program - 1) in
    let* c = printable in
    let b = Bytes.of_string seed_program in
    Bytes.set b pos c;
    return (Bytes.to_string b))

let mutation_total =
  Helpers.qcheck_case ~count:1000 "fuzz" "single-byte mutations handled"
    gen_mutation
    (fun s ->
      match Epre_frontend.Frontend.compile_string s with
      | prog -> begin
        (* if it still compiles, it must also still run or fail cleanly *)
        match Epre_interp.Interp.run ~fuel:200_000 prog ~entry:"f"
                ~args:[ Epre_ir.Value.I 5 ]
        with
        | _ -> true
        | exception Epre_interp.Interp.Runtime_error _ -> true
        | exception Epre_interp.Interp.Out_of_fuel -> true
      end
      | exception Epre_frontend.Frontend.Error _ -> true)

let suite = [ frontend_total; ir_text_total; mutation_total ]
