(** Shared helpers for the test suite. *)

open Epre_ir

let compile source =
  try Epre_frontend.Frontend.compile_string source with
  | Epre_frontend.Frontend.Error { line; message } ->
    Alcotest.failf "compilation failed at line %d: %s" line message

let run ?(entry = "main") ?(args = []) prog =
  try Epre_interp.Interp.run prog ~entry ~args with
  | Epre_interp.Interp.Runtime_error msg -> Alcotest.failf "runtime error: %s" msg

let return_value result =
  match result.Epre_interp.Interp.return_value with
  | Some v -> v
  | None -> Alcotest.fail "expected a return value"

let run_int ?entry ?args prog = Value.to_int (return_value (run ?entry ?args prog))

let run_float ?entry ?args prog = Value.to_float (return_value (run ?entry ?args prog))

let dynamic_ops ?entry ?args prog =
  Epre_interp.Counts.total (run ?entry ?args prog).Epre_interp.Interp.counts

(* Values equal up to floating-point reassociation noise. *)
let value_close a b =
  match a, b with
  | Value.F x, Value.F y ->
    Float.abs (x -. y) <= 1e-9 *. (Float.abs x +. Float.abs y +. 1.0)
  | a, b -> Value.equal a b

let check_value_close what a b =
  if not (value_close a b) then
    Alcotest.failf "%s: %s <> %s" what (Value.to_string a) (Value.to_string b)

(* The master correctness check: an optimized copy must produce the same
   return value and the same [emit] trace as the original. *)
let check_same_behaviour ?entry ?args ~what original transformed =
  let r0 = run ?entry ?args original in
  let r1 = run ?entry ?args transformed in
  (match r0.Epre_interp.Interp.return_value, r1.Epre_interp.Interp.return_value with
  | Some a, Some b -> check_value_close (what ^ ": return value") a b
  | None, None -> ()
  | Some _, None | None, Some _ -> Alcotest.failf "%s: return arity changed" what);
  let t0 = r0.Epre_interp.Interp.trace and t1 = r1.Epre_interp.Interp.trace in
  if List.length t0 <> List.length t1 then
    Alcotest.failf "%s: emit trace length %d <> %d" what (List.length t0)
      (List.length t1);
  List.iter2 (fun a b -> check_value_close (what ^ ": emit") a b) t0 t1

let apply_pass pass prog =
  let p = Program.copy prog in
  List.iter (fun r -> pass r) (Program.routines p);
  p

(* Optimize a copy at a level and check behaviour is preserved; returns the
   optimized program. *)
let check_level ?entry ?args ~level prog =
  let p, _ = Epre.Pipeline.optimized_copy ~level prog in
  check_same_behaviour ?entry ?args
    ~what:(Epre.Pipeline.level_to_string level)
    prog p;
  p

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let qcheck_case ?(count = 100) name law gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name:(name ^ ": " ^ law) gen prop)
