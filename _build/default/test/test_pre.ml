(** Tests for [Epre_pre.Pre]: the Section 2 motivating examples, loop
    invariants, load motion, down-safety, and the never-lengthen-a-path
    guarantee. *)

open Epre_ir

let instrs_of r = Cfg.fold_blocks (fun acc b -> acc @ b.Block.instrs) [] r.Routine.cfg

let dynamic entry args prog = Helpers.dynamic_ops ~entry ~args prog

let pre_routine prog name =
  let r = Program.find_exn prog name in
  ignore (Epre_opt.Naming.run r);
  let stats = Epre_pre.Pre.run r in
  Routine.validate r;
  stats

(* ------------------------------------------------------------------ *)
(* Section 2, first example: the one-armed if *)

let partial_source =
  {|
fn f(p: int, x: int, y: int): int {
  var a: int;
  a = 1;
  if (p > 0) {
    a = x + y;
  }
  return a * (x + y);
}
|}

let test_partial_redundancy_insert_and_delete () =
  let prog = Helpers.compile partial_source in
  let before_taken = dynamic "f" [ Value.I 1; Value.I 2; Value.I 3 ] prog in
  let before_nottaken = dynamic "f" [ Value.I 0; Value.I 2; Value.I 3 ] prog in
  let stats = pre_routine prog "f" in
  Alcotest.(check bool) "inserted on the empty path" true (stats.Epre_pre.Pre.inserted >= 1);
  Alcotest.(check bool) "deleted the redundant one" true
    (stats.Epre_pre.Pre.deleted + stats.Epre_pre.Pre.cse_deleted >= 1);
  (* semantics *)
  Alcotest.(check int) "taken" 25
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 2; Value.I 3 ] prog);
  Alcotest.(check int) "not taken" 5
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 0; Value.I 2; Value.I 3 ] prog);
  (* the paper's key property: no path gets longer *)
  let after_taken = dynamic "f" [ Value.I 1; Value.I 2; Value.I 3 ] prog in
  let after_nottaken = dynamic "f" [ Value.I 0; Value.I 2; Value.I 3 ] prog in
  Alcotest.(check bool) "taken path shortened" true (after_taken < before_taken);
  Alcotest.(check bool) "other path not lengthened" true
    (after_nottaken <= before_nottaken)

(* ------------------------------------------------------------------ *)
(* Section 2, second example: the loop invariant *)

let test_loop_invariant_hoisted () =
  let source =
    {|
fn f(n: int, x: int, y: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + (x + y);
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  ignore (pre_routine prog "f");
  List.iter (fun p -> ignore (Epre_opt.Clean.run p)) (Program.routines prog);
  let r = Program.find_exn prog "f" in
  (* find the loop: the block that is its own ancestor; the x+y add must
     not be inside it. Simply check dynamic scaling: doubling n adds ~4 ops
     per extra iteration (phi copies + add + latch), crucially not the
     invariant add; compare slope against an unhoisted version. *)
  let at n = dynamic "f" [ Value.I n; Value.I 2; Value.I 3 ] (Program.create [ r ]) in
  let slope = at 20 - at 10 in
  (* loop body after PRE: s+t, i+1, cmp, cbr = 4 ops + 2 copies; without
     hoisting it would be at least one more. *)
  Alcotest.(check bool) "slope is tight" true (slope <= 10 * 7);
  Alcotest.(check int) "semantics" 50
    (Value.to_int
       (Helpers.return_value (Helpers.run ~entry:"f" ~args:[ Value.I 10; Value.I 2; Value.I 3 ] (Program.create [ r ]))))

let test_invariant_not_hoisted_when_unsafe () =
  (* A while-true-shaped loop where the expression is guarded: PRE must not
     hoist a division that would newly execute on the zero-trip path.
     Down-safety: x / y is only evaluated when the guard holds. *)
  let source =
    {|
fn f(n: int, x: int, y: int): int {
  var s: int;
  var i: int = 1;
  while (i <= n) {
    s = s + x / y;
    i = i + 1;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  ignore (pre_routine prog "f");
  (* n = 0 and y = 0: the division must not execute *)
  Alcotest.(check int) "no spurious division" 0
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 0; Value.I 5; Value.I 0 ] prog)

(* ------------------------------------------------------------------ *)
(* Loads *)

let test_load_hoisted_from_loop () =
  let source =
    {|
fn f(n: int, a: int[4]): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + a[1];      // invariant load
  }
  return s;
}

fn main(): int {
  var a: int[4];
  a[1] = 5;
  return f(10, a);
}
|}
  in
  let prog = Helpers.compile source in
  let before = dynamic "main" [] prog in
  ignore (pre_routine prog "f");
  let after = dynamic "main" [] prog in
  Alcotest.(check int) "semantics" 50 (Helpers.run_int prog);
  (* ten loads become one *)
  Alcotest.(check bool) "load count dropped" true (after <= before - 8)

let test_load_not_moved_past_store () =
  let source =
    {|
fn f(n: int, a: int[4]): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    a[1] = i;          // store kills the load
    s = s + a[1];
  }
  return s;
}

fn main(): int {
  var a: int[4];
  return f(4, a);
}
|}
  in
  let prog = Helpers.compile source in
  ignore (pre_routine prog "f");
  Alcotest.(check int) "reloads happen" 10 (Helpers.run_int prog)

let test_call_kills_loads () =
  let source =
    {|
fn bump(a: int[2]) {
  a[1] = a[1] + 1;
}

fn f(a: int[2]): int {
  var u: int = a[1];
  bump(a);
  var v: int = a[1];   // must reload after the call
  return u * 100 + v;
}

fn main(): int {
  var a: int[2];
  a[1] = 7;
  return f(a);
}
|}
  in
  let prog = Helpers.compile source in
  ignore (pre_routine prog "f");
  Alcotest.(check int) "reload after call" 708 (Helpers.run_int prog)

(* ------------------------------------------------------------------ *)
(* Composite expressions move as chains over rounds *)

let test_composite_chain_hoists () =
  let source =
    {|
fn f(n: int, x: int, y: int, z: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + (x + y + z) * 2;   // three-deep invariant chain
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let stats = pre_routine prog "f" in
  Alcotest.(check bool) "took more than one round" true (stats.Epre_pre.Pre.rounds >= 2);
  List.iter (fun r -> ignore (Epre_opt.Clean.run r)) (Program.routines prog);
  let r = Program.find_exn prog "f" in
  let at n =
    dynamic "f" [ Value.I n; Value.I 1; Value.I 2; Value.I 3 ] (Program.create [ r ])
  in
  let slope = (at 30 - at 10) / 20 in
  (* the whole chain left the loop: per-iteration cost is the accumulator
     add + induction + test + branch + copies *)
  Alcotest.(check bool) (Printf.sprintf "slope %d small" slope) true (slope <= 8);
  Alcotest.(check int) "semantics" 120
    (Value.to_int
       (Helpers.return_value
          (Helpers.run ~entry:"f"
             ~args:[ Value.I 10; Value.I 1; Value.I 2; Value.I 3 ]
             (Program.create [ r ]))))

(* ------------------------------------------------------------------ *)
(* Global property: PRE never lengthens any executed path *)

(* "A key feature of PRE is that it never lengthens an execution path"
   (Section 2) — the guarantee is about computations. Edge splitting adds
   jumps (removed by Clean when empty) and Naming adds copies (removed by
   coalescing), so the comparison counts expression evaluations: arithmetic,
   constants and loads. *)
let evaluation_ops ~entry ~args prog =
  let c = (Helpers.run ~entry ~args prog).Epre_interp.Interp.counts in
  c.Epre_interp.Counts.arith + c.Epre_interp.Counts.consts + c.Epre_interp.Counts.loads

let never_lengthens_on ~entry ~args source =
  let prog = Helpers.compile source in
  let before = evaluation_ops ~entry ~args prog in
  List.iter
    (fun r ->
      ignore (Epre_opt.Naming.run r);
      ignore (Epre_pre.Pre.run r);
      ignore (Epre_opt.Clean.run r))
    (Program.routines prog);
  let after = evaluation_ops ~entry ~args prog in
  Alcotest.(check bool)
    (Printf.sprintf "evaluations %d -> %d" before after)
    true (after <= before)

let test_never_lengthens_workloads () =
  List.iter
    (fun name ->
      let w = Option.get (Epre_workloads.Workloads.find name) in
      never_lengthens_on ~entry:"main" ~args:[] w.Epre_workloads.Workloads.source)
    [ "saxpy"; "fmin"; "zeroin"; "seval"; "urand"; "decomp"; "bilin" ]

let test_pre_is_idempotent () =
  let prog = Helpers.compile partial_source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Naming.run r);
  ignore (Epre_pre.Pre.run r);
  let again = Epre_pre.Pre.run r in
  Alcotest.(check int) "second run inserts nothing" 0 again.Epre_pre.Pre.inserted;
  Alcotest.(check int) "second run deletes nothing" 0
    (again.Epre_pre.Pre.deleted + again.Epre_pre.Pre.cse_deleted)

let test_constants_hoisted_out_of_loop () =
  let source =
    {|
fn f(n: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + 12345;     // the loadI is loop-invariant
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  ignore (pre_routine prog "f");
  List.iter (fun r -> ignore (Epre_opt.Clean.run r)) (Program.routines prog);
  let r = Program.find_exn prog "f" in
  (* no Const should remain in any block that is its own loop: find blocks
     on cycles via the latch heuristic (a block branching to itself after
     Clean merges the body) *)
  let consts_in_cycles = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      if List.mem b.Block.id (Block.succs b) then
        List.iter
          (function Instr.Const _ -> incr consts_in_cycles | _ -> ())
          b.Block.instrs)
    r.Routine.cfg;
  Alcotest.(check int) "no constants in self-loop blocks" 0 !consts_in_cycles;
  Alcotest.(check int) "semantics" (12345 * 7)
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 7 ] prog)

let test_no_candidates_is_fine () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  Builder.ret b None;
  let r = Builder.finish b in
  let stats = Epre_pre.Pre.run r in
  Alcotest.(check int) "nothing to do" 0 stats.Epre_pre.Pre.inserted;
  ignore (instrs_of r)

let suite =
  [
    Alcotest.test_case "section 2: partial redundancy" `Quick test_partial_redundancy_insert_and_delete;
    Alcotest.test_case "section 2: loop invariant" `Quick test_loop_invariant_hoisted;
    Alcotest.test_case "down-safety: guarded division" `Quick test_invariant_not_hoisted_when_unsafe;
    Alcotest.test_case "loads: invariant load hoisted" `Quick test_load_hoisted_from_loop;
    Alcotest.test_case "loads: stores kill" `Quick test_load_not_moved_past_store;
    Alcotest.test_case "loads: calls kill" `Quick test_call_kills_loads;
    Alcotest.test_case "composite chains hoist over rounds" `Quick test_composite_chain_hoists;
    Alcotest.test_case "never lengthens workload paths" `Slow test_never_lengthens_workloads;
    Alcotest.test_case "idempotent" `Quick test_pre_is_idempotent;
    Alcotest.test_case "constants leave loops" `Quick test_constants_hoisted_out_of_loop;
    Alcotest.test_case "empty routine" `Quick test_no_candidates_is_fine;
  ]
