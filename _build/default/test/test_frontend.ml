(** Tests for [Epre_frontend]: lexing, parsing, semantic analysis, and the
    lowering invariants the optimizer relies on. *)

open Epre_ir

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = List.map fst (Epre_frontend.Lexer.tokenize "fn f(x: int) { x = x + 1; }") in
  Alcotest.(check int) "token count" 16 (List.length toks);
  Alcotest.(check bool) "starts with fn" true (List.hd toks = Epre_frontend.Token.FN)

let test_lexer_comments_and_floats () =
  let toks =
    List.map fst
      (Epre_frontend.Lexer.tokenize
         "// line comment\n1.5 /* block \n comment */ 2e3 7")
  in
  Alcotest.(check bool) "floats and ints" true
    (toks
    = [ Epre_frontend.Token.FLOAT 1.5; Epre_frontend.Token.FLOAT 2000.0;
        Epre_frontend.Token.INT 7; Epre_frontend.Token.EOF ])

let test_lexer_line_numbers () =
  let toks = Epre_frontend.Lexer.tokenize "fn\n\nreturn" in
  (match toks with
  | [ (Epre_frontend.Token.FN, l1); (Epre_frontend.Token.RETURN, l3); _ ] ->
    Alcotest.(check int) "fn at line 1" 1 l1;
    Alcotest.(check int) "return at line 3" 3 l3
  | _ -> Alcotest.fail "unexpected tokens")

let test_lexer_bad_char () =
  try
    ignore (Epre_frontend.Lexer.tokenize "fn f() { @ }");
    Alcotest.fail "expected lexer error"
  with Epre_frontend.Lexer.Error { message; _ } ->
    Alcotest.(check string) "message" "unexpected character '@'" message

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse s = Epre_frontend.Parser.parse_string s

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match parse "fn f(): int { return 1 + 2 * 3; }" with
  | [ { Epre_frontend.Ast.body = [ { desc = Return (Some e); _ } ]; _ } ] -> begin
    match e with
    | Epre_frontend.Ast.Binary (BAdd, Int_lit 1, Binary (BMul, Int_lit 2, Int_lit 3)) -> ()
    | _ -> Alcotest.fail "wrong associativity"
  end
  | _ -> Alcotest.fail "unexpected parse"

let test_parser_left_assoc_sub () =
  (* 10 - 3 - 2 = (10 - 3) - 2 *)
  match parse "fn f(): int { return 10 - 3 - 2; }" with
  | [ { Epre_frontend.Ast.body = [ { desc = Return (Some e); _ } ]; _ } ] -> begin
    match e with
    | Epre_frontend.Ast.Binary (BSub, Binary (BSub, Int_lit 10, Int_lit 3), Int_lit 2) -> ()
    | _ -> Alcotest.fail "wrong associativity"
  end
  | _ -> Alcotest.fail "unexpected parse"

let test_parser_else_if () =
  match parse "fn f(p: int): int { if (p > 1) { return 1; } else if (p > 0) { return 2; } return 3; }" with
  | [ { Epre_frontend.Ast.body = [ { desc = If (_, _, [ { desc = If _; _ } ]); _ }; _ ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "else-if chain not parsed"

let test_parser_error_reports_line () =
  try
    ignore (parse "fn f() {\n  var x: int;\n  x = ;\n}");
    Alcotest.fail "expected parse error"
  with Epre_frontend.Parser.Error { line; _ } -> Alcotest.(check int) "line" 3 line

let test_parser_array_type () =
  match parse "fn f(a: float[4,5]) { a[1,2] = 0.0; }" with
  | [ { Epre_frontend.Ast.params = [ (_, Array { elt = TFlt; dims = [ 4; 5 ] }) ]; _ } ] -> ()
  | _ -> Alcotest.fail "array type not parsed"

let test_parser_rejects_rank4 () =
  try
    ignore (parse "fn f(a: float[1,2,3,4]) { }");
    Alcotest.fail "expected error"
  with Epre_frontend.Parser.Error { message; _ } ->
    Alcotest.(check string) "msg" "arrays of rank > 3 are not supported" message

(* ------------------------------------------------------------------ *)
(* Sema *)

let check_sema_error source fragment =
  try
    ignore (Epre_frontend.Frontend.compile_string source);
    Alcotest.failf "expected a type error mentioning %S" fragment
  with Epre_frontend.Frontend.Error { message; _ } ->
    if not (Helpers.contains_substring ~needle:fragment message) then
      Alcotest.failf "error %S does not mention %S" message fragment

let test_sema_undefined_variable () =
  check_sema_error "fn f(): int { return nope; }" "undefined variable"

let test_sema_float_to_int () =
  check_sema_error "fn f(): int { var x: int = 1.5; return x; }" "cannot assign float"

let test_sema_int_widening_ok () =
  (* int -> float widening is implicit and must be accepted. *)
  let prog = Helpers.compile "fn f(): float { var x: float = 3; return x + 1; }" in
  Alcotest.(check (float 1e-9)) "value" 4.0 (Helpers.run_float ~entry:"f" prog)

let test_sema_duplicate_declaration () =
  check_sema_error "fn f() { var x: int; var x: int; }" "duplicate declaration"

let test_sema_wrong_arity () =
  check_sema_error "fn g(x: int): int { return x; } fn f(): int { return g(1, 2); }"
    "expects 1 argument"

let test_sema_array_rank_mismatch () =
  check_sema_error "fn f(a: float[3,3]): float { return a[1]; }" "rank 2 but 1 subscripts"

let test_sema_condition_must_be_int () =
  check_sema_error "fn f(x: float) { if (x) { } }" "condition must be int"

let test_sema_loop_var_must_be_declared () =
  check_sema_error "fn f() { for i = 1 to 3 { } }" "must be declared"

let test_sema_void_in_expression () =
  check_sema_error "fn g() { } fn f(): int { return g(); }" "returns no value"

let test_sema_array_shape_mismatch () =
  check_sema_error
    "fn g(a: float[4]) { } fn f() { var a: float[5]; g(a); }"
    "expected float[4]"

let test_sema_intrinsic_shadowing_rejected () =
  check_sema_error "fn sqrt(x: float): float { return x; }" "reserved intrinsic"

(* ------------------------------------------------------------------ *)
(* Lowering invariants *)

(* The Section 2.2 naming discipline: every expression key maps to exactly
   one destination register, and expression-name registers are never
   targeted by copies. [Naming.run] must therefore be a no-op. *)
let test_lowering_naming_discipline () =
  let source =
    {|
fn f(x: int, y: int): int {
  var a: int = x + y;
  var b: int = x + y;
  var c: int = y + x;
  return a + b + c;
}
|}
  in
  let prog = Helpers.compile source in
  List.iter
    (fun r -> Alcotest.(check int) "naming is a no-op" 0 (Epre_opt.Naming.run r))
    (Program.routines prog)

let test_lowering_commutative_canonicalization () =
  (* x + y and y + x receive the same expression name. *)
  let source = "fn f(x: int, y: int): int { var a: int = x + y; var b: int = y + x; return a + b; }" in
  let r = Program.find_exn (Helpers.compile source) "f" in
  let dsts = Hashtbl.create 4 in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (function
          | Instr.Binop { op = Op.Add; dst; a; b } when a = 0 || b = 0 ->
            Hashtbl.replace dsts dst ()
          | _ -> ())
        b.Block.instrs)
    r.Routine.cfg;
  Alcotest.(check int) "one name for x+y" 1 (Hashtbl.length dsts)

let test_for_loop_semantics () =
  let source =
    {|
fn f(): int {
  var s: int;
  var i: int;
  for i = 1 to 10 step 3 { s = s + i; }   // 1, 4, 7, 10
  for i = 5 downto 1 step 2 { s = s + 100 * i; }  // 5, 3, 1
  return s;
}
|}
  in
  Alcotest.(check int) "loop sum" (22 + 900) (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_for_loop_zero_trip () =
  let source = "fn f(): int { var s: int = 7; var i: int; for i = 5 to 1 { s = 0; } return s; }" in
  Alcotest.(check int) "zero-trip guard" 7 (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_for_bounds_evaluated_once () =
  (* FORTRAN DO semantics: mutating the bound variable inside the loop does
     not change the trip count. *)
  let source =
    {|
fn f(): int {
  var n: int = 5;
  var s: int;
  var i: int;
  for i = 1 to n {
    n = 0;
    s = s + 1;
  }
  return s;
}
|}
  in
  Alcotest.(check int) "five trips" 5 (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_while_loop () =
  let source =
    {|
fn f(): int {
  var i: int = 1;
  var s: int;
  while (i <= 6) {
    s = s + i * i;
    i = i + 1;
  }
  return s;
}
|}
  in
  Alcotest.(check int) "sum of squares" 91 (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_array_addressing_row_major () =
  (* a[i,j] and its 3-D sibling address distinct cells; row-major layout. *)
  let source =
    {|
fn f(): int {
  var a: int[3,4];
  var b: int[2,3,4];
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to 3 {
    for j = 1 to 4 {
      a[i,j] = i * 100 + j;
    }
  }
  for i = 1 to 2 {
    for j = 1 to 3 {
      for k = 1 to 4 {
        b[i,j,k] = i * 10000 + j * 100 + k;
      }
    }
  }
  return a[2,3] * 1000000 + b[2,1,4];
}
|}
  in
  Alcotest.(check int) "cells distinct" (203 * 1000000 + 20104)
    (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_logical_ops_eager () =
  let source =
    {|
fn f(): int {
  var a: int = 3 && 0;
  var b: int = 3 && 5;
  var c: int = 0 || 0;
  var d: int = 0 || 9;
  var e: int = !7;
  var g: int = !0;
  return a * 100000 + b * 10000 + c * 1000 + d * 100 + e * 10 + g;
}
|}
  in
  Alcotest.(check int) "normalized booleans" 10101
    (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_intrinsics () =
  let source =
    {|
fn f(): float {
  var a: float = sqrt(16.0);           // 4
  var b: int = abs(0 - 5);             // 5
  var c: float = abs(0.0 - 2.5);       // 2.5
  var d: int = min(3, 7);              // 3
  var e: float = max(1.5, 2.5);        // 2.5
  var g: int = mod(17, 5);             // 2
  var h: int = int(3.9);               // 3
  return a + float(b) + c + float(d) + e + float(g) + float(h);
}
|}
  in
  Alcotest.(check (float 1e-9)) "intrinsics" 22.0
    (Helpers.run_float ~entry:"f" (Helpers.compile source))

let test_fallthrough_returns_zero () =
  let source = "fn f(p: int): int { if (p > 0) { return 1; } }" in
  let prog = Helpers.compile source in
  Alcotest.(check int) "taken" 1 (Helpers.run_int ~entry:"f" ~args:[ Value.I 1 ] prog);
  Alcotest.(check int) "fallthrough" 0 (Helpers.run_int ~entry:"f" ~args:[ Value.I 0 ] prog)

let test_locals_zero_initialized () =
  let source = "fn f(): float { var x: float; var a: float[3]; return x + a[2]; }" in
  Alcotest.(check (float 1e-9)) "zeros" 0.0 (Helpers.run_float ~entry:"f" (Helpers.compile source))

let test_recursion () =
  let source =
    "fn fact(n: int): int { if (n <= 1) { return 1; } return n * fact(n - 1); }"
  in
  Alcotest.(check int) "6!" 720
    (Helpers.run_int ~entry:"fact" ~args:[ Value.I 6 ] (Helpers.compile source))

let suite =
  [
    Alcotest.test_case "lexer: tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer: comments and floats" `Quick test_lexer_comments_and_floats;
    Alcotest.test_case "lexer: line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "lexer: bad character" `Quick test_lexer_bad_char;
    Alcotest.test_case "parser: precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser: left associativity" `Quick test_parser_left_assoc_sub;
    Alcotest.test_case "parser: else-if" `Quick test_parser_else_if;
    Alcotest.test_case "parser: error line" `Quick test_parser_error_reports_line;
    Alcotest.test_case "parser: array types" `Quick test_parser_array_type;
    Alcotest.test_case "parser: rank limit" `Quick test_parser_rejects_rank4;
    Alcotest.test_case "sema: undefined variable" `Quick test_sema_undefined_variable;
    Alcotest.test_case "sema: float->int rejected" `Quick test_sema_float_to_int;
    Alcotest.test_case "sema: int->float implicit" `Quick test_sema_int_widening_ok;
    Alcotest.test_case "sema: duplicate declaration" `Quick test_sema_duplicate_declaration;
    Alcotest.test_case "sema: arity" `Quick test_sema_wrong_arity;
    Alcotest.test_case "sema: subscript rank" `Quick test_sema_array_rank_mismatch;
    Alcotest.test_case "sema: condition type" `Quick test_sema_condition_must_be_int;
    Alcotest.test_case "sema: loop variable" `Quick test_sema_loop_var_must_be_declared;
    Alcotest.test_case "sema: void call in expression" `Quick test_sema_void_in_expression;
    Alcotest.test_case "sema: array shape" `Quick test_sema_array_shape_mismatch;
    Alcotest.test_case "sema: intrinsic names reserved" `Quick test_sema_intrinsic_shadowing_rejected;
    Alcotest.test_case "lower: naming discipline holds" `Quick test_lowering_naming_discipline;
    Alcotest.test_case "lower: commutative canonical names" `Quick test_lowering_commutative_canonicalization;
    Alcotest.test_case "lower: for loop with steps" `Quick test_for_loop_semantics;
    Alcotest.test_case "lower: zero-trip for loop" `Quick test_for_loop_zero_trip;
    Alcotest.test_case "lower: DO bounds evaluated once" `Quick test_for_bounds_evaluated_once;
    Alcotest.test_case "lower: while loop" `Quick test_while_loop;
    Alcotest.test_case "lower: row-major addressing" `Quick test_array_addressing_row_major;
    Alcotest.test_case "lower: eager logical operators" `Quick test_logical_ops_eager;
    Alcotest.test_case "lower: intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "lower: fall-through return" `Quick test_fallthrough_returns_zero;
    Alcotest.test_case "lower: zero-initialized locals" `Quick test_locals_zero_initialized;
    Alcotest.test_case "lower: recursion" `Quick test_recursion;
  ]
