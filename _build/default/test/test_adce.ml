(** Tests for [Epre_analysis.Postdom] and [Epre_opt.Adce]. *)

open Epre_ir
open Epre_analysis

(* graph helper shared shape with test_analysis *)
let make_cfg nblocks edges =
  let cfg = Cfg.create () in
  for _ = 0 to nblocks - 1 do
    ignore (Cfg.add_block ~term:(Instr.Ret None) cfg)
  done;
  let succs = Array.make nblocks [] in
  List.iter (fun (a, b) -> succs.(a) <- succs.(a) @ [ b ]) edges;
  Array.iteri
    (fun i -> function
      | [] -> ()
      | [ s ] -> (Cfg.block cfg i).Block.term <- Instr.Jump s
      | [ s1; s2 ] ->
        (Cfg.block cfg i).Block.term <- Instr.Cbr { cond = 0; ifso = s1; ifnot = s2 }
      | _ -> invalid_arg "make_cfg")
    succs;
  Cfg.set_entry cfg 0;
  cfg

(* ------------------------------------------------------------------ *)
(* Postdominators *)

let test_postdom_diamond () =
  (* 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 ret *)
  let cfg = make_cfg 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let pd = Postdom.compute cfg in
  Alcotest.(check int) "join postdominates entry" 3 (Postdom.ipostdom pd 0);
  Alcotest.(check int) "arm 1" 3 (Postdom.ipostdom pd 1);
  Alcotest.(check int) "arm 2" 3 (Postdom.ipostdom pd 2);
  Alcotest.(check bool) "3 pdom 0" true (Postdom.postdominates pd 3 0);
  Alcotest.(check bool) "1 does not pdom 0" false (Postdom.postdominates pd 1 0)

let test_control_dependence_diamond () =
  let cfg = make_cfg 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let pd = Postdom.compute cfg in
  Alcotest.(check (list int)) "arm 1 depends on the branch" [ 0 ] (Postdom.control_deps pd 1);
  Alcotest.(check (list int)) "arm 2 depends on the branch" [ 0 ] (Postdom.control_deps pd 2);
  Alcotest.(check (list int)) "join depends on nothing" [] (Postdom.control_deps pd 3)

let test_control_dependence_loop () =
  (* 0 -> 1; 1 -> 2,3; 2 -> 1 (loop body); 3 ret: body and header both
     depend on the loop test *)
  let cfg = make_cfg 4 [ (0, 1); (1, 2); (1, 3); (2, 1) ] in
  let pd = Postdom.compute cfg in
  Alcotest.(check (list int)) "body depends on the test" [ 1 ] (Postdom.control_deps pd 2);
  Alcotest.(check bool) "header depends on itself" true
    (List.mem 1 (Postdom.control_deps pd 1))

let test_postdom_infinite_loop () =
  (* 0 -> 1,3 ; 1 -> 2 ; 2 -> 1 (never exits) ; 3 ret *)
  let cfg = make_cfg 4 [ (0, 1); (0, 3); (1, 2); (2, 1) ] in
  let pd = Postdom.compute cfg in
  Alcotest.(check int) "loop block has no postdominator" (-1) (Postdom.ipostdom pd 1);
  Alcotest.(check bool) "entry reaches exit" true (Postdom.ipostdom pd 0 >= 0)

(* ------------------------------------------------------------------ *)
(* ADCE *)

let test_dead_loop_removed_entirely () =
  let source =
    "fn f(n: int): int { var dead: int; var i: int; for i = 1 to n { dead = dead + i * i; } return 42; }"
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Adce.run r);
  ignore (Epre_opt.Clean.run r);
  Routine.validate r;
  Alcotest.(check bool)
    (Printf.sprintf "loop gone (%d static ops)" (Routine.op_count r))
    true
    (Routine.op_count r <= 3);
  Alcotest.(check int) "value" 42 (Helpers.run_int ~entry:"f" ~args:[ Value.I 10 ] prog)

let test_plain_dce_keeps_what_adce_removes () =
  let source =
    "fn f(n: int): int { var dead: int; var i: int; for i = 1 to n { dead = dead + i; } return 7; }"
  in
  let plain = Program.find_exn (Helpers.compile source) "f" in
  let aggressive = Program.find_exn (Helpers.compile source) "f" in
  ignore (Epre_opt.Dce.run plain);
  ignore (Epre_opt.Clean.run plain);
  ignore (Epre_opt.Adce.run aggressive);
  ignore (Epre_opt.Clean.run aggressive);
  Alcotest.(check bool) "aggressive is strictly smaller" true
    (Routine.op_count aggressive < Routine.op_count plain)

let test_live_branch_kept () =
  let source =
    {|
fn f(p: int): int {
  var x: int;
  if (p > 0) {
    x = 10;
  } else {
    x = 20;
  }
  return x;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Adce.run r);
  ignore (Epre_opt.Clean.run r);
  Alcotest.(check int) "then" 10 (Helpers.run_int ~entry:"f" ~args:[ Value.I 1 ] prog);
  Alcotest.(check int) "else" 20 (Helpers.run_int ~entry:"f" ~args:[ Value.I 0 ] prog)

let test_dead_branch_with_live_join () =
  (* The branch only selects between dead values; code after the join is
     live. The arm constants (3, 4) are distinct from the join's (99, 1)
     because registers are value-numbered names: a constant shared between
     a dead arm and live code keeps the arm's definition alive under the
     conservative per-register marking. *)
  let source =
    {|
fn f(p: int, a: int[3]): int {
  var d: int;
  if (p > 0) {
    d = 3;
  } else {
    d = 4;
  }
  a[1] = 99;       // live store after the join
  return a[1];
}

fn main(): int {
  var a: int[3];
  return f(1, a);
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Adce.run r);
  ignore (Epre_opt.Clean.run r);
  Routine.validate r;
  (* the diamond is gone: no conditional branch remains *)
  let has_cbr = ref false in
  Cfg.iter_blocks
    (fun b -> match b.Block.term with Instr.Cbr _ -> has_cbr := true | _ -> ())
    r.Routine.cfg;
  Alcotest.(check bool) "diamond removed" false !has_cbr;
  Alcotest.(check int) "semantics" 99 (Helpers.run_int prog)

let test_stores_in_loops_keep_loops () =
  let source =
    {|
fn f(n: int, a: int[50]): int {
  var i: int;
  for i = 1 to n {
    a[i] = i;
  }
  return a[n];
}

fn main(): int {
  var a: int[50];
  return f(9, a);
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Adce.run r);
  ignore (Epre_opt.Clean.run r);
  Alcotest.(check int) "loop survives" 9 (Helpers.run_int prog)

let test_all_workloads_preserved () =
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      List.iter
        (fun r ->
          ignore (Epre_opt.Adce.run r);
          ignore (Epre_opt.Clean.run r);
          Routine.validate r)
        (Program.routines p);
      Helpers.check_same_behaviour ~what:(w.Epre_workloads.Workloads.name ^ "+adce") prog p)
    Epre_workloads.Workloads.all

let suite =
  [
    Alcotest.test_case "postdom: diamond" `Quick test_postdom_diamond;
    Alcotest.test_case "control deps: diamond" `Quick test_control_dependence_diamond;
    Alcotest.test_case "control deps: loop" `Quick test_control_dependence_loop;
    Alcotest.test_case "postdom: infinite loop" `Quick test_postdom_infinite_loop;
    Alcotest.test_case "adce: dead loop vanishes" `Quick test_dead_loop_removed_entirely;
    Alcotest.test_case "adce: beats plain dce" `Quick test_plain_dce_keeps_what_adce_removes;
    Alcotest.test_case "adce: live branches kept" `Quick test_live_branch_kept;
    Alcotest.test_case "adce: dead diamond removed" `Quick test_dead_branch_with_live_join;
    Alcotest.test_case "adce: store loops kept" `Quick test_stores_in_loops_keep_loops;
    Alcotest.test_case "adce: all workloads preserved" `Slow test_all_workloads_preserved;
  ]
