(** Property tests for [Epre_reassoc.Expr_tree]: normalization (flattening,
    rank sorting, Frailey's rewrite, distribution) must preserve the value
    of integer trees under every environment, and must be idempotent. *)

open Epre_ir
open Epre_reassoc
open QCheck2

let cfg_plain = { Expr_tree.reassoc_float = true; distribute = false }

let cfg_dist = { Expr_tree.reassoc_float = true; distribute = true }

(* Random integer expression trees over 6 leaf registers with assorted
   ranks. Division is excluded (partiality); Sub/Neg, the associative ops
   and Min/Max are all in. *)
let gen_tree =
  let leaf =
    Gen.oneof
      [ Gen.map (fun (r, k) -> Expr_tree.Leaf { reg = r; rank = k })
          Gen.(pair (int_bound 5) (int_bound 3));
        Gen.map (fun i -> Expr_tree.Cst (Value.I i)) Gen.(int_range (-9) 9) ]
  in
  let rec go depth =
    if depth <= 0 then leaf
    else
      Gen.oneof
        [ leaf;
          Gen.map
            (fun (op, a, b) -> Expr_tree.Nary { op; args = [ a; b ] })
            Gen.(triple (oneofl [ Op.Add; Op.Mul; Op.Min; Op.Max; Op.And; Op.Or; Op.Xor ])
                   (go (depth - 1)) (go (depth - 1)));
          Gen.map
            (fun (a, b) -> Expr_tree.Bin { op = Op.Sub; a; b })
            Gen.(pair (go (depth - 1)) (go (depth - 1)));
          Gen.map (fun a -> Expr_tree.Un { op = Op.Neg; arg = a }) (go (depth - 1));
          Gen.map
            (fun (op, a, b, c) -> Expr_tree.Nary { op; args = [ a; b; c ] })
            Gen.(quad (oneofl [ Op.Add; Op.Mul ]) (go (depth - 1)) (go (depth - 1))
                   (go (depth - 1))) ]
  in
  go 3

let gen_env = Gen.array_size (Gen.return 6) Gen.(int_range (-50) 50)

(* Reference evaluation of a tree: n-ary nodes left to right. *)
let rec eval env (t : Expr_tree.t) =
  match t with
  | Expr_tree.Leaf { reg; _ } -> Value.I env.(reg)
  | Expr_tree.Cst v -> v
  | Expr_tree.Un { op; arg } -> Op.eval_unop op (eval env arg)
  | Expr_tree.Bin { op; a; b } -> Op.eval_binop op (eval env a) (eval env b)
  | Expr_tree.Nary { op; args } -> begin
    match List.map (eval env) args with
    | first :: rest -> List.fold_left (Op.eval_binop op) first rest
    | [] -> invalid_arg "empty n-ary node"
  end

let normalize_preserves cfg label =
  Helpers.qcheck_case ~count:500 "Expr_tree" label
    (Gen.pair gen_tree gen_env)
    (fun (t, env) ->
      Value.equal (eval env t) (eval env (Expr_tree.normalize cfg t)))

let normalize_idempotent =
  Helpers.qcheck_case ~count:300 "Expr_tree" "normalize is idempotent"
    gen_tree
    (fun t ->
      let once = Expr_tree.normalize cfg_dist t in
      Expr_tree.normalize cfg_dist once = once)

let normalize_sorts =
  Helpers.qcheck_case ~count:300 "Expr_tree" "n-ary operands sorted by rank"
    gen_tree
    (fun t ->
      let rec sorted (t : Expr_tree.t) =
        match t with
        | Expr_tree.Leaf _ | Expr_tree.Cst _ -> true
        | Expr_tree.Un { arg; _ } -> sorted arg
        | Expr_tree.Bin { a; b; _ } -> sorted a && sorted b
        | Expr_tree.Nary { args; _ } ->
          let ranks = List.map Expr_tree.rank args in
          List.for_all sorted args
          && List.sort compare ranks = ranks
      in
      sorted (Expr_tree.normalize cfg_plain t))

let normalize_flattens =
  Helpers.qcheck_case ~count:300 "Expr_tree" "no nested same-operator n-ary nodes"
    gen_tree
    (fun t ->
      let rec flat (t : Expr_tree.t) =
        match t with
        | Expr_tree.Leaf _ | Expr_tree.Cst _ -> true
        | Expr_tree.Un { arg; _ } -> flat arg
        | Expr_tree.Bin { a; b; _ } -> flat a && flat b
        | Expr_tree.Nary { op; args } ->
          List.for_all flat args
          && List.for_all
               (function
                 | Expr_tree.Nary { op = op'; _ } -> op' <> op
                 | _ -> true)
               args
      in
      flat (Expr_tree.normalize cfg_plain t))

let suite =
  [
    normalize_preserves cfg_plain "normalize preserves int semantics";
    normalize_preserves cfg_dist "distribution preserves int semantics";
    normalize_idempotent;
    normalize_sorts;
    normalize_flattens;
  ]
