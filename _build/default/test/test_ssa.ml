(** Tests for [Epre_ssa]: pruned construction with copy folding, the SSA
    checker, critical edges, parallel copies, destruction. *)

open Epre_ir
open Epre_ssa

let compile_routine source name =
  Program.find_exn (Helpers.compile source) name

let loop_source =
  {|
fn f(n: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + i;
  }
  return s;
}
|}

let test_build_produces_valid_ssa () =
  let r = compile_routine loop_source "f" in
  let r = Ssa.build r in
  Ssa_check.check r;
  Alcotest.(check bool) "flagged" true r.Routine.in_ssa

let test_copy_folding_removes_copies () =
  let r = compile_routine loop_source "f" in
  let r = Ssa.build r in
  let copies =
    Cfg.fold_blocks
      (fun acc b ->
        acc
        + List.length
            (List.filter (function Instr.Copy _ -> true | _ -> false) b.Block.instrs))
      0 r.Routine.cfg
  in
  Alcotest.(check int) "no copies survive folding" 0 copies

let test_no_fold_keeps_copies () =
  let r = compile_routine loop_source "f" in
  let r = Ssa.build ~config:{ Ssa.fold_copies = false } r in
  Ssa_check.check r;
  let copies =
    Cfg.fold_blocks
      (fun acc b ->
        acc
        + List.length
            (List.filter (function Instr.Copy _ -> true | _ -> false) b.Block.instrs))
      0 r.Routine.cfg
  in
  Alcotest.(check bool) "copies survive" true (copies > 0)

let test_pruned_no_dead_phis () =
  (* x assigned in both branches but never used after: pruned SSA places no
     phi for it. *)
  let source =
    {|
fn f(p: int): int {
  var x: int;
  var live: int;
  if (p > 0) {
    x = 1;
    live = 10;
  } else {
    x = 2;
    live = 20;
  }
  return live;
}
|}
  in
  let r = compile_routine source "f" in
  let r = Ssa.build r in
  Ssa_check.check r;
  let phis =
    Cfg.fold_blocks (fun acc b -> acc + List.length (Block.phis b)) 0 r.Routine.cfg
  in
  (* only [live] merges; [x] is dead at the join *)
  Alcotest.(check int) "one phi" 1 phis

let test_roundtrip_preserves_semantics () =
  let prog = Helpers.compile loop_source in
  let before = Helpers.run_int ~entry:"f" ~args:[ Value.I 10 ] prog in
  let r = Program.find_exn prog "f" in
  let r = Ssa.build r in
  let _ = Ssa.destroy r in
  Routine.validate r;
  let after = Helpers.run_int ~entry:"f" ~args:[ Value.I 10 ] prog in
  Alcotest.(check int) "same result" before after;
  Alcotest.(check int) "value" 55 after

let test_checker_rejects_multiple_defs () =
  let b = Builder.start ~name:"bad" ~nparams:0 in
  let t = Builder.int b 1 in
  Builder.emit b (Instr.Const { dst = t; value = Value.I 2 });
  Builder.ret b (Some t);
  let r = Builder.finish b in
  r.Routine.in_ssa <- true;
  Alcotest.check_raises "multiple defs"
    (Ssa_check.Not_ssa "bad: register r0 has multiple definitions") (fun () ->
      Ssa_check.check r)

let test_checker_rejects_undominated_use () =
  (* use in one branch of a value defined in the other *)
  let b = Builder.start ~name:"bad" ~nparams:1 in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:b1 ~ifnot:b2;
  Builder.switch b b1;
  let x = Builder.int b 5 in
  Builder.ret b (Some x);
  Builder.switch b b2;
  let y = Builder.binop b Op.Add x x in
  Builder.ret b (Some y);
  let r = Builder.finish b in
  r.Routine.in_ssa <- true;
  Alcotest.check_raises "undominated"
    (Ssa_check.Not_ssa "bad: use of r1 in B2 not dominated by its definition in B1")
    (fun () -> Ssa_check.check r)

let test_use_before_def_raises () =
  (* A register read before any write on some path: construction refuses. *)
  let b = Builder.start ~name:"bad" ~nparams:0 in
  let x = Builder.fresh_reg b in
  let y = Builder.fresh_reg b in
  Builder.emit b (Instr.Copy { dst = y; src = x });
  Builder.emit b (Instr.Const { dst = x; value = Value.I 1 });
  Builder.ret b (Some y);
  let r = Builder.finish b in
  (try
     ignore (Ssa.build r);
     Alcotest.fail "expected Use_before_def"
   with Ssa.Use_before_def { routine; reg } ->
     Alcotest.(check string) "routine" "bad" routine;
     Alcotest.(check int) "register" x reg)

(* ------------------------------------------------------------------ *)
(* Critical edges *)

let test_critical_edge_split () =
  (* 0 -> (1, 2); 1 -> 2. Edge 0 -> 2 is critical. *)
  let b = Builder.start ~name:"c" ~nparams:1 in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:b1 ~ifnot:b2;
  Builder.switch b b1;
  Builder.jump b b2;
  Builder.switch b b2;
  Builder.ret b None;
  let r = Builder.finish b in
  let nblocks_before = Cfg.num_blocks r.Routine.cfg in
  let split = Critical_edges.split_all r in
  Alcotest.(check int) "one edge split" 1 split;
  Alcotest.(check int) "one block added" (nblocks_before + 1)
    (Cfg.num_blocks r.Routine.cfg);
  Routine.validate r;
  (* splitting is idempotent *)
  Alcotest.(check int) "second pass splits nothing" 0 (Critical_edges.split_all r)

(* ------------------------------------------------------------------ *)
(* Parallel copies *)

let run_parallel_copy copies env_size =
  (* Simulate the sequentialized copies against the parallel-copy
     semantics over integer environments. *)
  let fresh_counter = ref env_size in
  let fresh () =
    let t = !fresh_counter in
    incr fresh_counter;
    t
  in
  let seq = Parallel_copy.sequentialize ~fresh copies in
  let env = Array.init (env_size + 2 * List.length copies + 4) (fun i -> i) in
  List.iter (fun (d, s) -> env.(d) <- env.(s)) seq;
  env

let test_parallel_copy_swap () =
  (* (r0, r1) <- (r1, r0): the classic swap needs a temp. *)
  let env = run_parallel_copy [ (0, 1); (1, 0) ] 2 in
  Alcotest.(check int) "r0 gets old r1" 1 env.(0);
  Alcotest.(check int) "r1 gets old r0" 0 env.(1)

let test_parallel_copy_chain () =
  (* (r0, r1, r2) <- (r1, r2, 3): a chain needs the right order, no temp. *)
  let env = run_parallel_copy [ (0, 1); (1, 2); (2, 3) ] 4 in
  Alcotest.(check int) "r0" 1 env.(0);
  Alcotest.(check int) "r1" 2 env.(1);
  Alcotest.(check int) "r2" 3 env.(2)

let test_parallel_copy_three_cycle () =
  let env = run_parallel_copy [ (0, 1); (1, 2); (2, 0) ] 3 in
  Alcotest.(check int) "r0" 1 env.(0);
  Alcotest.(check int) "r1" 2 env.(1);
  Alcotest.(check int) "r2" 0 env.(2)

let parallel_copy_model =
  (* Random permutation-ish copy sets: destinations distinct. *)
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 6 in
      let* srcs = list_size (return n) (int_bound 7) in
      let dsts = List.init n Fun.id in
      return (List.combine dsts srcs))
  in
  Helpers.qcheck_case ~count:300 "Parallel_copy" "sequentialization = parallel semantics"
    gen
    (fun copies ->
      let env = run_parallel_copy copies 8 in
      List.for_all (fun (d, s) -> env.(d) = s) copies)

(* Destruction of a swap loop: semantics must survive (lost-copy/swap
   problems). *)
let test_destroy_swap_loop () =
  let source =
    {|
fn f(n: int): int {
  var a: int = 1;
  var b: int = 2;
  var i: int;
  for i = 1 to n {
    var t: int = a;
    a = b;
    b = t;
  }
  return a * 10 + b;
}
|}
  in
  let prog = Helpers.compile source in
  let before = Helpers.run_int ~entry:"f" ~args:[ Value.I 5 ] prog in
  let r = Program.find_exn prog "f" in
  let r = Ssa.build r in
  Ssa_check.check r;
  let _ = Ssa.destroy r in
  Routine.validate r;
  let after = Helpers.run_int ~entry:"f" ~args:[ Value.I 5 ] prog in
  Alcotest.(check int) "swap survives" before after;
  Alcotest.(check int) "odd swaps" 21 after

let suite =
  [
    Alcotest.test_case "build: valid pruned SSA" `Quick test_build_produces_valid_ssa;
    Alcotest.test_case "build: copies folded into phis" `Quick test_copy_folding_removes_copies;
    Alcotest.test_case "build: fold_copies=false keeps copies" `Quick test_no_fold_keeps_copies;
    Alcotest.test_case "build: pruning avoids dead phis" `Quick test_pruned_no_dead_phis;
    Alcotest.test_case "build/destroy: semantics round trip" `Quick test_roundtrip_preserves_semantics;
    Alcotest.test_case "check: multiple defs rejected" `Quick test_checker_rejects_multiple_defs;
    Alcotest.test_case "check: undominated use rejected" `Quick test_checker_rejects_undominated_use;
    Alcotest.test_case "build: use before def rejected" `Quick test_use_before_def_raises;
    Alcotest.test_case "critical edges: split + idempotent" `Quick test_critical_edge_split;
    Alcotest.test_case "parallel copy: swap" `Quick test_parallel_copy_swap;
    Alcotest.test_case "parallel copy: chain" `Quick test_parallel_copy_chain;
    Alcotest.test_case "parallel copy: 3-cycle" `Quick test_parallel_copy_three_cycle;
    parallel_copy_model;
    Alcotest.test_case "destroy: swap loop semantics" `Quick test_destroy_swap_loop;
  ]
