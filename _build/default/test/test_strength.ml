(** Tests for [Epre_opt.Strength], the strength-reduction extension. *)

open Epre_ir

let dynamic_mults ?(entry = "main") ?(args = []) prog =
  (Helpers.run ~entry ~args prog).Epre_interp.Interp.counts.Epre_interp.Counts.mults

let cleanup r =
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Peephole.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Coalesce.run r);
  ignore (Epre_opt.Clean.run r);
  Routine.validate r

let test_basic_iv_multiply_reduced () =
  let source =
    {|
fn f(n: int, m: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + i * m;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let args = [ Value.I 30; Value.I 7 ] in
  let before = dynamic_mults ~entry:"f" ~args prog in
  let reduced = ref 0 in
  List.iter
    (fun r ->
      reduced := !reduced + Epre_opt.Strength.run r;
      cleanup r)
    (Program.routines prog);
  Alcotest.(check bool) "a candidate was reduced" true (!reduced >= 1);
  let after = dynamic_mults ~entry:"f" ~args prog in
  (* 30 loop multiplies collapse to the two preheader setup multiplies *)
  Alcotest.(check bool)
    (Printf.sprintf "multiplies gone (%d -> %d)" before after)
    true (after <= 2);
  Alcotest.(check int) "semantics" (7 * (30 * 31 / 2))
    (Helpers.run_int ~entry:"f" ~args prog)

let test_derived_iv_reduced () =
  (* the addressing pattern: (i - 1) * width *)
  let source =
    {|
fn f(n: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + (i - 1) * 10;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let args = [ Value.I 20 ] in
  let expected = 10 * (19 * 20 / 2) in
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      cleanup r)
    (Program.routines prog);
  Alcotest.(check int) "semantics" expected (Helpers.run_int ~entry:"f" ~args prog);
  Alcotest.(check bool) "loop multiplies gone" true (dynamic_mults ~entry:"f" ~args prog <= 2)

let test_downward_loop () =
  let source =
    {|
fn f(n: int): int {
  var s: int;
  var i: int;
  for i = n downto 1 {
    s = s + i * 3;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let args = [ Value.I 15 ] in
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      cleanup r)
    (Program.routines prog);
  Alcotest.(check int) "semantics" (3 * (15 * 16 / 2))
    (Helpers.run_int ~entry:"f" ~args prog);
  Alcotest.(check bool) "reduced" true (dynamic_mults ~entry:"f" ~args prog <= 2)

let test_zero_trip_loop_safe () =
  (* setup multiplies live in a dedicated preheader: a loop that never runs
     must not pay for them, and the guard path stays correct. *)
  let source =
    {|
fn f(n: int, m: int): int {
  var s: int = 100;
  var i: int;
  for i = 1 to n {
    s = s + i * m;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      cleanup r)
    (Program.routines prog);
  let args = [ Value.I 0; Value.I 9 ] in
  Alcotest.(check int) "zero-trip value" 100 (Helpers.run_int ~entry:"f" ~args prog);
  Alcotest.(check int) "no multiplies on the bypass path" 0
    (dynamic_mults ~entry:"f" ~args prog)

let test_float_multiplies_untouched () =
  (* reducing an FP multiply would change rounding: must be skipped *)
  let source =
    {|
fn f(n: int): float {
  var s: float;
  var i: int;
  for i = 1 to n {
    s = s + float(i) * 0.1;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let before = Helpers.run_float ~entry:"f" ~args:[ Value.I 10 ] prog in
  let reduced = ref 0 in
  List.iter (fun r -> reduced := !reduced + Epre_opt.Strength.run r) (Program.routines prog);
  Alcotest.(check int) "nothing reduced" 0 !reduced;
  Alcotest.(check bool) "bit-identical result" true
    (Float.equal before (Helpers.run_float ~entry:"f" ~args:[ Value.I 10 ] prog))

let test_variant_multiplier_not_reduced () =
  (* i * j with both varying is not a candidate *)
  let source =
    {|
fn f(n: int): int {
  var s: int;
  var i: int;
  var j: int;
  for i = 1 to n {
    j = s + 1;
    s = s + i * j;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let before = Helpers.run_int ~entry:"f" ~args:[ Value.I 8 ] prog in
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      cleanup r)
    (Program.routines prog);
  Alcotest.(check int) "semantics" before (Helpers.run_int ~entry:"f" ~args:[ Value.I 8 ] prog)

let test_all_workloads_preserved () =
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      List.iter
        (fun r ->
          ignore (Epre_opt.Strength.run r);
          cleanup r)
        (Program.routines p);
      Helpers.check_same_behaviour
        ~what:(w.Epre_workloads.Workloads.name ^ "+strength")
        prog p)
    Epre_workloads.Workloads.all

let test_after_distribution_pipeline () =
  (* the paper's predicted composition: reassociation first, then strength
     reduction removes the loop multiplies the address arithmetic needs *)
  let w = Option.get (Epre_workloads.Workloads.find "sgemm") in
  let prog = Epre_workloads.Workloads.compile w in
  let p, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
  let before = dynamic_mults p in
  List.iter
    (fun r ->
      ignore (Epre_opt.Strength.run r);
      cleanup r)
    (Program.routines p);
  let after = dynamic_mults p in
  Helpers.check_same_behaviour ~what:"sgemm distribution+strength" prog p;
  Alcotest.(check bool)
    (Printf.sprintf "multiplies drop substantially (%d -> %d)" before after)
    true
    (float_of_int after < 0.7 *. float_of_int before)

let suite =
  [
    Alcotest.test_case "basic IV multiply" `Quick test_basic_iv_multiply_reduced;
    Alcotest.test_case "derived IV (i-1)*w" `Quick test_derived_iv_reduced;
    Alcotest.test_case "downward loops" `Quick test_downward_loop;
    Alcotest.test_case "zero-trip safety" `Quick test_zero_trip_loop_safe;
    Alcotest.test_case "float multiplies untouched" `Quick test_float_multiplies_untouched;
    Alcotest.test_case "variant multiplier skipped" `Quick test_variant_multiplier_not_reduced;
    Alcotest.test_case "all workloads preserved" `Slow test_all_workloads_preserved;
    Alcotest.test_case "composes with distribution" `Slow test_after_distribution_pipeline;
  ]
