(** Integration tests: every workload at every optimization level must
    preserve behaviour, and the levels must relate the way the paper's
    Table 1 says they do in aggregate. *)


let levels = Epre.Pipeline.all_levels

let test_workload w () =
  let prog = Epre_workloads.Workloads.compile w in
  List.iter
    (fun level -> ignore (Helpers.check_level ~level prog))
    levels

let dynamic_at level prog =
  let p, _ = Epre.Pipeline.optimized_copy ~level prog in
  Helpers.dynamic_ops p

let test_partial_beats_baseline_in_aggregate () =
  (* PRE's wins are the paper's headline: summed over the suite it must
     clearly beat the baseline. *)
  let base = ref 0 and partial = ref 0 in
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      base := !base + dynamic_at Epre.Pipeline.Baseline prog;
      partial := !partial + dynamic_at Epre.Pipeline.Partial prog)
    Epre_workloads.Workloads.all;
  Alcotest.(check bool)
    (Printf.sprintf "partial %d < baseline %d" !partial !base)
    true
    (float_of_int !partial < 0.8 *. float_of_int !base)

let test_reassociation_helps_in_aggregate () =
  (* Section 4's second claim: reassociation + GVN + distribution improve
     further over PRE alone, summed over the suite (individual routines may
     regress — Table 1 shows the same). *)
  let partial = ref 0 and distribution = ref 0 in
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      partial := !partial + dynamic_at Epre.Pipeline.Partial prog;
      distribution := !distribution + dynamic_at Epre.Pipeline.Distribution prog)
    Epre_workloads.Workloads.all;
  Alcotest.(check bool)
    (Printf.sprintf "distribution %d < partial %d" !distribution !partial)
    true
    (!distribution < !partial)

let test_stats_populated () =
  let prog = Epre_workloads.Workloads.compile (List.hd Epre_workloads.Workloads.all) in
  let _, stats = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Distribution prog in
  List.iter
    (fun s ->
      Alcotest.(check bool) "reassoc stats present" true (Option.is_some s.Epre.Pipeline.reassoc);
      Alcotest.(check bool) "gvn stats present" true (Option.is_some s.Epre.Pipeline.gvn);
      Alcotest.(check bool) "pre stats present" true (Option.is_some s.Epre.Pipeline.pre))
    stats;
  let _, stats = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Baseline prog in
  List.iter
    (fun s ->
      Alcotest.(check bool) "no pre at baseline" true (Option.is_none s.Epre.Pipeline.pre))
    stats

let test_dump_hooks_fire () =
  let prog = Helpers.compile "fn main(): int { return 1 + 2; }" in
  let seen = ref [] in
  let hooks = { Epre.Pipeline.dump = (fun name _ -> seen := name :: !seen) } in
  ignore (Epre.Pipeline.optimize ~hooks ~level:Epre.Pipeline.Distribution prog);
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " dumped") true (List.mem stage !seen))
    [ "reassociation"; "gvn"; "pre"; "constprop"; "peephole"; "dce"; "coalesce"; "clean" ]

let test_hierarchy_is_monotone () =
  (* Section 5.3: dominator CSE >= available CSE >= PRE on every workload. *)
  List.iter
    (fun w ->
      let row = Epre.Experiments.hierarchy_row w in
      Alcotest.(check bool)
        (Printf.sprintf "%s: dom %d >= avail %d" row.Epre.Experiments.name
           row.Epre.Experiments.dom_cse row.Epre.Experiments.avail_cse)
        true
        (row.Epre.Experiments.dom_cse >= row.Epre.Experiments.avail_cse);
      Alcotest.(check bool)
        (Printf.sprintf "%s: avail %d >= pre %d" row.Epre.Experiments.name
           row.Epre.Experiments.avail_cse row.Epre.Experiments.pre)
        true
        (row.Epre.Experiments.avail_cse >= row.Epre.Experiments.pre))
    (List.filteri (fun i _ -> i mod 4 = 0) Epre_workloads.Workloads.all)

let test_table2_expansion_sane () =
  (* Forward propagation grows code; the factor stays in a sane band (the
     paper's totals entry is 1.269). *)
  let rows = Epre.Experiments.table2 () in
  let tb = List.fold_left (fun a r -> a + r.Epre.Experiments.before) 0 rows in
  let ta = List.fold_left (fun a r -> a + r.Epre.Experiments.after) 0 rows in
  let factor = float_of_int ta /. float_of_int tb in
  Alcotest.(check bool)
    (Printf.sprintf "total expansion %.3f in [1.0, 2.0]" factor)
    true
    (factor >= 1.0 && factor <= 2.0)

let suite =
  List.map
    (fun w ->
      Alcotest.test_case
        (Printf.sprintf "workload %s at all levels" w.Epre_workloads.Workloads.name)
        `Slow (test_workload w))
    Epre_workloads.Workloads.all
  @ [
      Alcotest.test_case "table1 shape: PRE beats baseline" `Slow
        test_partial_beats_baseline_in_aggregate;
      Alcotest.test_case "table1 shape: reassociation helps" `Slow
        test_reassociation_helps_in_aggregate;
      Alcotest.test_case "per-pass stats populated" `Quick test_stats_populated;
      Alcotest.test_case "dump hooks fire per pass" `Quick test_dump_hooks_fire;
      Alcotest.test_case "5.3 hierarchy monotone" `Slow test_hierarchy_is_monotone;
      Alcotest.test_case "table2 expansion in band" `Slow test_table2_expansion_sane;
    ]
