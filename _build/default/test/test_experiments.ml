(** Tests for [Epre.Experiments] — the harness the tables come from — and
    the [Counts] arithmetic it relies on. *)

let w name = Option.get (Epre_workloads.Workloads.find name)

let test_improvement_math () =
  Alcotest.(check (float 1e-9)) "halving is 50%" 50.0
    (Epre.Experiments.improvement ~prev:200 ~now:100);
  Alcotest.(check (float 1e-9)) "regression is negative" (-10.0)
    (Epre.Experiments.improvement ~prev:100 ~now:110);
  Alcotest.(check (float 1e-9)) "zero baseline guarded" 0.0
    (Epre.Experiments.improvement ~prev:0 ~now:5)

let test_table1_row_ordering () =
  let row = Epre.Experiments.table1_row (w "saxpy") in
  Alcotest.(check bool) "partial <= baseline" true
    (row.Epre.Experiments.partial <= row.Epre.Experiments.baseline);
  Alcotest.(check bool) "reassociation <= partial (saxpy is a winner)" true
    (row.Epre.Experiments.reassociation <= row.Epre.Experiments.partial)

let test_render_table1_contains_percentages () =
  let rows = Epre.Experiments.table1 ~workloads:[ w "saxpy"; w "dot" ] () in
  let text = Epre.Experiments.render_table1 rows in
  Alcotest.(check bool) "has header" true
    (Helpers.contains_substring ~needle:"baseline" text);
  Alcotest.(check bool) "has a percent" true (Helpers.contains_substring ~needle:"%" text);
  Alcotest.(check bool) "both rows present" true
    (Helpers.contains_substring ~needle:"saxpy" text
    && Helpers.contains_substring ~needle:"dot" text)

let test_table2_expansion_at_least_one () =
  let row = Epre.Experiments.table2_row (w "sgemm") in
  Alcotest.(check bool) "forward propagation only grows" true
    (Epre.Experiments.expansion_factor row >= 1.0);
  Alcotest.(check bool) "and not absurdly" true
    (Epre.Experiments.expansion_factor row < 3.0)

let test_hierarchy_row_monotone () =
  let row = Epre.Experiments.hierarchy_row (w "spline") in
  Alcotest.(check bool) "dom >= avail" true
    (row.Epre.Experiments.dom_cse >= row.Epre.Experiments.avail_cse);
  Alcotest.(check bool) "avail >= pre" true
    (row.Epre.Experiments.avail_cse >= row.Epre.Experiments.pre)

let test_counts_add () =
  let a = Epre_interp.Counts.create () in
  a.Epre_interp.Counts.arith <- 3;
  a.Epre_interp.Counts.mults <- 1;
  a.Epre_interp.Counts.branches <- 2;
  let b = Epre_interp.Counts.create () in
  b.Epre_interp.Counts.arith <- 4;
  b.Epre_interp.Counts.loads <- 5;
  Epre_interp.Counts.add ~into:a b;
  Alcotest.(check int) "arith summed" 7 a.Epre_interp.Counts.arith;
  Alcotest.(check int) "loads summed" 5 a.Epre_interp.Counts.loads;
  Alcotest.(check int) "total" 14 (Epre_interp.Counts.total a)

let test_level_string_roundtrip () =
  List.iter
    (fun l ->
      match Epre.Pipeline.level_of_string (Epre.Pipeline.level_to_string l) with
      | Some l' ->
        Alcotest.(check string) "round trip"
          (Epre.Pipeline.level_to_string l)
          (Epre.Pipeline.level_to_string l')
      | None -> Alcotest.fail "level did not parse back")
    Epre.Pipeline.all_levels;
  Alcotest.(check bool) "unknown rejected" true
    (Epre.Pipeline.level_of_string "O3" = None)

let test_workload_names_unique_and_50 () =
  let names = List.map (fun w -> w.Epre_workloads.Workloads.name) Epre_workloads.Workloads.all in
  Alcotest.(check int) "the paper's routine count" 50 (List.length names);
  Alcotest.(check int) "unique names" 50 (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "improvement math" `Quick test_improvement_math;
    Alcotest.test_case "table1 row ordering" `Quick test_table1_row_ordering;
    Alcotest.test_case "table1 rendering" `Quick test_render_table1_contains_percentages;
    Alcotest.test_case "table2 expansion band" `Quick test_table2_expansion_at_least_one;
    Alcotest.test_case "hierarchy row monotone" `Quick test_hierarchy_row_monotone;
    Alcotest.test_case "counts accumulate" `Quick test_counts_add;
    Alcotest.test_case "level names round trip" `Quick test_level_string_roundtrip;
    Alcotest.test_case "50 uniquely named workloads" `Quick test_workload_names_unique_and_50;
  ]
