(** Tests for [Epre_reassoc]: ranks, tree normalization (flattening,
    sorting, Frailey's rewrite, distribution), forward propagation
    (including partial-dead elimination and worst-case expansion), and the
    full enabling effect on PRE. *)

open Epre_ir
open Epre_reassoc

let cfg_no_distribute = { Expr_tree.reassoc_float = true; distribute = false }

let cfg_distribute = { Expr_tree.reassoc_float = true; distribute = true }

(* ------------------------------------------------------------------ *)
(* Ranks: the paper's own example (Figure 4 discussion). *)

let paper_foo_source =
  {|
fn foo(y: int, z: int): int {
  var s: int;
  var x: int = y + z;
  var i: int;
  for i = x to 100 {
    s = 1 + s + x;
  }
  return s;
}
|}

let test_ranks_paper_example () =
  let r = Program.find_exn (Helpers.compile paper_foo_source) "foo" in
  let r = Epre_ssa.Ssa.build r in
  let ranks = Rank.compute r in
  (* params have the entry block's rank 1 *)
  Alcotest.(check int) "param y" 1 (Rank.of_reg ranks 0);
  Alcotest.(check int) "param z" 1 (Rank.of_reg ranks 1);
  (* constants rank 0; x = y + z rank 1; loop phis rank 2 *)
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Const { dst; _ } ->
            Alcotest.(check int) "constant rank" 0 (Rank.of_reg ranks dst)
          | Instr.Binop { op = Op.Add; dst; a = 0; b = 1 } ->
            Alcotest.(check int) "x = y + z is loop-invariant rank 1" 1
              (Rank.of_reg ranks dst)
          | Instr.Phi { dst; _ } ->
            Alcotest.(check bool) "phi takes its block's rank" true
              (Rank.of_reg ranks dst = Rank.of_block ranks b.Block.id)
          | _ -> ())
        b.Block.instrs)
    r.Routine.cfg

let test_ranks_nesting_depth () =
  (* Values varying in the inner loop outrank those varying only in the
     outer loop. *)
  let source =
    {|
fn f(n: int): int {
  var s: int;
  var i: int;
  var j: int;
  for i = 1 to n {
    for j = 1 to n {
      s = s + i + j;
    }
  }
  return s;
}
|}
  in
  let r = Program.find_exn (Helpers.compile source) "f" in
  let r = Epre_ssa.Ssa.build r in
  let ranks = Rank.compute r in
  let du = Epre_analysis.Defuse.compute r in
  (* collect phi ranks; the inner loop's phis must outrank the outer's *)
  let phi_ranks = ref [] in
  for v = 0 to r.Routine.next_reg - 1 do
    match Epre_analysis.Defuse.def_instr du v with
    | Some (Instr.Phi _) -> phi_ranks := Rank.of_reg ranks v :: !phi_ranks
    | _ -> ()
  done;
  let distinct = List.sort_uniq compare !phi_ranks in
  Alcotest.(check bool) "at least two loop levels of ranks" true
    (List.length distinct >= 2)

(* ------------------------------------------------------------------ *)
(* Tree normalization *)

let leaf reg rank = Expr_tree.Leaf { reg; rank }

let test_tree_flatten_and_sort () =
  (* (a + (b + c)) with ranks a=3, b=0(via const), c=1: sorted to
     (cst, c, a). *)
  let t =
    Expr_tree.Nary
      { op = Op.Add;
        args =
          [ leaf 10 3;
            Expr_tree.Nary { op = Op.Add; args = [ Expr_tree.Cst (Value.I 5); leaf 11 1 ] } ] }
  in
  match Expr_tree.normalize cfg_no_distribute t with
  | Expr_tree.Nary { op = Op.Add; args = [ Expr_tree.Cst _; Expr_tree.Leaf { reg = 11; _ }; Expr_tree.Leaf { reg = 10; _ } ] } ->
    ()
  | t' -> Alcotest.failf "unexpected: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_sub_becomes_add_neg () =
  (* x - y joins the enclosing sum: (x - y) + z flattens to one n-ary add
     with a negated leaf. *)
  let t =
    Expr_tree.Nary
      { op = Op.Add;
        args = [ Expr_tree.Bin { op = Op.Sub; a = leaf 1 2; b = leaf 2 1 }; leaf 3 0 ] }
  in
  match Expr_tree.normalize cfg_no_distribute t with
  | Expr_tree.Nary { op = Op.Add; args } ->
    Alcotest.(check int) "three operands" 3 (List.length args);
    Alcotest.(check bool) "contains a negation" true
      (List.exists (function Expr_tree.Un { op = Op.Neg; _ } -> true | _ -> false) args)
  | t' -> Alcotest.failf "unexpected: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_division_not_flattened () =
  let t = Expr_tree.Bin { op = Op.Div; a = leaf 1 1; b = leaf 2 2 } in
  match Expr_tree.normalize cfg_no_distribute t with
  | Expr_tree.Bin { op = Op.Div; _ } -> ()
  | _ -> Alcotest.fail "division must stay binary"

let test_tree_float_reassoc_gated () =
  (* The tracer only builds binary nodes for FP ops when float
     reassociation is off; [normalize] must then keep the shape. *)
  let t =
    Expr_tree.Bin
      { op = Op.FAdd;
        a = leaf 1 2;
        b = Expr_tree.Bin { op = Op.FAdd; a = leaf 2 1; b = leaf 3 0 } }
  in
  (* permissive: rebuilt as one sorted n-ary sum *)
  (match Expr_tree.normalize cfg_no_distribute t with
  | Expr_tree.Nary { args = [ Expr_tree.Leaf { reg = 3; _ }; Expr_tree.Leaf { reg = 2; _ }; Expr_tree.Leaf { reg = 1; _ } ]; _ } ->
    ()
  | t' -> Alcotest.failf "flatten expected: %a" (fun ppf -> Expr_tree.pp ppf) t');
  (* strict: the nested binary structure is preserved *)
  let strict = { cfg_no_distribute with Expr_tree.reassoc_float = false } in
  match Expr_tree.normalize strict t with
  | Expr_tree.Bin { op = Op.FAdd; a = Expr_tree.Leaf { reg = 1; _ }; b = Expr_tree.Bin _ } ->
    ()
  | t' -> Alcotest.failf "no flatten expected: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_distribution_paper_case () =
  (* The paper's example: a + b*((c+d)+e), ranks a=b=c=d=1, e=2
     -> a + b*(c+d) + b*e. *)
  let sum =
    Expr_tree.Nary
      { op = Op.Add;
        args =
          [ Expr_tree.Nary { op = Op.Add; args = [ leaf 3 1; leaf 4 1 ] }; leaf 5 2 ] }
  in
  let t =
    Expr_tree.Nary
      { op = Op.Add;
        args = [ leaf 1 1; Expr_tree.Nary { op = Op.Mul; args = [ leaf 2 1; sum ] } ] }
  in
  match Expr_tree.normalize cfg_distribute t with
  | Expr_tree.Nary { op = Op.Add; args } ->
    (* top-level: a, b*(c+d), b*e (in some rank order) *)
    Alcotest.(check int) "three terms" 3 (List.length args);
    let products =
      List.filter (function Expr_tree.Nary { op = Op.Mul; _ } -> true | _ -> false) args
    in
    Alcotest.(check int) "two multiplies" 2 (List.length products);
    (* one of the products contains the (c+d) subsum *)
    Alcotest.(check bool) "b*(c+d) kept together" true
      (List.exists
         (function
           | Expr_tree.Nary { op = Op.Mul; args } ->
             List.exists
               (function Expr_tree.Nary { op = Op.Add; _ } -> true | _ -> false)
               args
           | _ -> false)
         products)
  | t' -> Alcotest.failf "unexpected: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_distribution_gated_by_rank () =
  (* multiplier outranks the sum: distribution must NOT happen *)
  let sum = Expr_tree.Nary { op = Op.Add; args = [ leaf 3 1; leaf 4 1 ] } in
  let t = Expr_tree.Nary { op = Op.Mul; args = [ leaf 2 5; sum ] } in
  match Expr_tree.normalize cfg_distribute t with
  | Expr_tree.Nary { op = Op.Mul; _ } -> ()
  | t' -> Alcotest.failf "should not distribute: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_distribution_terminates_same_rank () =
  (* all children of the sum share one rank above the multiplier: only one
     group exists, so distribution must bail out rather than recurse. *)
  let sum = Expr_tree.Nary { op = Op.Add; args = [ leaf 3 4; leaf 4 4 ] } in
  let t = Expr_tree.Nary { op = Op.Mul; args = [ leaf 2 1; sum ] } in
  match Expr_tree.normalize cfg_distribute t with
  | Expr_tree.Nary { op = Op.Mul; _ } -> ()
  | t' -> Alcotest.failf "unexpected: %a" (fun ppf -> Expr_tree.pp ppf) t'

let test_tree_size () =
  let t =
    Expr_tree.Nary
      { op = Op.Add; args = [ leaf 1 1; Expr_tree.Un { op = Op.Neg; arg = leaf 2 1 } ] }
  in
  Alcotest.(check int) "size counts ops and leaves" 4 (Expr_tree.size t)

(* ------------------------------------------------------------------ *)
(* Forward propagation *)

let reassociate ?(config = cfg_no_distribute) prog name =
  let r = Program.find_exn prog name in
  let stats = Reassociate.run ~config r in
  Routine.validate r;
  stats

let test_forward_prop_preserves_semantics () =
  let prog = Helpers.compile paper_foo_source in
  let before = Helpers.run_int ~entry:"foo" ~args:[ Value.I 2; Value.I 3 ] prog in
  ignore (reassociate prog "foo");
  let after = Helpers.run_int ~entry:"foo" ~args:[ Value.I 2; Value.I 3 ] prog in
  Alcotest.(check int) "semantics" before after

let test_forward_prop_expands_code () =
  let prog = Helpers.compile paper_foo_source in
  let stats = reassociate prog "foo" in
  Alcotest.(check bool) "expansion >= 1" true (Reassociate.expansion stats >= 0.99)

let test_forward_prop_eliminates_partially_dead () =
  (* t = x*y is computed but used on only one branch; after propagation the
     never-used copy disappears from the not-taken path. *)
  let source =
    {|
fn f(p: int, x: int, y: int): int {
  var t: int = x * y;
  var r: int;
  if (p > 0) {
    r = t + 1;
  } else {
    r = 0;
  }
  return r;
}
|}
  in
  let prog = Helpers.compile source in
  ignore (reassociate prog "f");
  (* after cleanup, the else path must not evaluate the multiply *)
  List.iter
    (fun r ->
      ignore (Epre_opt.Dce.run r);
      ignore (Epre_opt.Coalesce.run r);
      ignore (Epre_opt.Clean.run r))
    (Program.routines prog);
  let count_mul_on_path p =
    let c =
      (Helpers.run ~entry:"f" ~args:[ Value.I p; Value.I 3; Value.I 4 ] prog)
        .Epre_interp.Interp.counts
    in
    c.Epre_interp.Counts.arith
  in
  let taken = count_mul_on_path 1 in
  let not_taken = count_mul_on_path 0 in
  Alcotest.(check bool) "dead path does not pay for the multiply" true
    (not_taken < taken);
  Alcotest.(check int) "semantics taken" 13
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 3; Value.I 4 ] prog);
  Alcotest.(check int) "semantics not taken" 0
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 0; Value.I 3; Value.I 4 ] prog)

let test_forward_prop_worst_case_expansion () =
  (* Section 4.3: sharing chains duplicate; x2 = x1+x1, x3 = x2+x2, ...
     gives exponential growth in the chain depth. Verify growth happens and
     semantics survive on a small instance. *)
  let source =
    {|
fn f(x: int): int {
  var a: int = x + x;
  var b: int = a + a;
  var c: int = b + b;
  var d: int = c + c;
  var e: int = d + d;
  var g: int = e + e;
  return g;
}
|}
  in
  let prog = Helpers.compile source in
  let stats = reassociate prog "f" in
  (* a 6-deep doubling chain becomes a 64-leaf tree at the return *)
  Alcotest.(check bool)
    (Printf.sprintf "superlinear growth (%.2f)" (Reassociate.expansion stats))
    true
    (Reassociate.expansion stats > 1.5);
  Alcotest.(check int) "64x" 192 (Helpers.run_int ~entry:"f" ~args:[ Value.I 3 ] prog)

let test_reassoc_exposes_invariant_to_pre () =
  (* s + (i + inv) where the front end associated (s + i) first: without
     reassociation PRE cannot hoist anything; with it, inv-related work
     leaves the loop. Compare the two pipelines' dynamic counts. *)
  let source =
    {|
fn f(n: int, a: int, b: int, c: int, d: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = i + a + b + c + d + s;    // left-assoc: ((((i+a)+b)+c)+d)+s
  }
  return s;
}
|}
  in
  let partial = Helpers.compile source in
  let with_reassoc = Helpers.compile source in
  let run_pre prog =
    List.iter
      (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r);
        ignore (Epre_opt.Constprop.run r);
        ignore (Epre_opt.Peephole.run r);
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r))
      (Program.routines prog)
  in
  run_pre partial;
  List.iter
    (fun r ->
      ignore (Reassociate.run ~config:cfg_no_distribute r);
      ignore (Epre_gvn.Gvn.run r))
    (Program.routines with_reassoc);
  run_pre with_reassoc;
  let args = [ Value.I 50; Value.I 7; Value.I 9; Value.I 11; Value.I 13 ] in
  let c1 = Helpers.dynamic_ops ~entry:"f" ~args partial in
  let c2 = Helpers.dynamic_ops ~entry:"f" ~args with_reassoc in
  Alcotest.(check bool)
    (Printf.sprintf "reassociation helps PRE (%d vs %d)" c1 c2)
    true (c2 < c1);
  Alcotest.(check int) "same answer"
    (Helpers.run_int ~entry:"f" ~args partial)
    (Helpers.run_int ~entry:"f" ~args with_reassoc)

let test_distribution_exposes_more () =
  (* The paper's case: a + w*(c + d + i) — distributing lets PRE hoist the
     whole a + w*(c+d) group, while w*i stays in the loop. Without
     distribution only c+d can be hoisted. *)
  let source =
    {|
fn f(n: int, a: int, w: int, c: int, d: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + a + w * (c + d + i);
  }
  return s;
}
|}
  in
  let check config =
    let prog = Helpers.compile source in
    List.iter
      (fun r ->
        ignore (Reassociate.run ~config r);
        ignore (Epre_gvn.Gvn.run r);
        ignore (Epre_pre.Pre.run r);
        ignore (Epre_opt.Constprop.run r);
        ignore (Epre_opt.Peephole.run r);
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r))
      (Program.routines prog);
    let args = [ Value.I 100; Value.I 3; Value.I 5; Value.I 7; Value.I 11 ] in
    (Helpers.dynamic_ops ~entry:"f" ~args prog, Helpers.run_int ~entry:"f" ~args prog)
  in
  let without, v1 = check cfg_no_distribute in
  let with_, v2 = check cfg_distribute in
  Alcotest.(check int) "same value" v1 v2;
  Alcotest.(check bool)
    (Printf.sprintf "distribution wins (%d vs %d)" without with_)
    true (with_ < without)

let test_all_workloads_reassociate_safely () =
  (* Reassociation alone (no PRE) must preserve every workload's behaviour
     — it rearranges but never drops computations that matter. *)
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      List.iter
        (fun r -> ignore (Reassociate.run ~config:cfg_distribute r))
        (Program.routines p);
      Helpers.check_same_behaviour ~what:(w.Epre_workloads.Workloads.name ^ "+reassoc")
        prog p)
    Epre_workloads.Workloads.all

let suite =
  [
    Alcotest.test_case "ranks: paper example" `Quick test_ranks_paper_example;
    Alcotest.test_case "ranks: nesting depth" `Quick test_ranks_nesting_depth;
    Alcotest.test_case "tree: flatten and sort by rank" `Quick test_tree_flatten_and_sort;
    Alcotest.test_case "tree: sub -> add of neg" `Quick test_tree_sub_becomes_add_neg;
    Alcotest.test_case "tree: division untouched" `Quick test_tree_division_not_flattened;
    Alcotest.test_case "tree: float reassociation gated" `Quick test_tree_float_reassoc_gated;
    Alcotest.test_case "tree: paper's partial distribution" `Quick test_tree_distribution_paper_case;
    Alcotest.test_case "tree: distribution rank gate" `Quick test_tree_distribution_gated_by_rank;
    Alcotest.test_case "tree: distribution terminates" `Quick test_tree_distribution_terminates_same_rank;
    Alcotest.test_case "tree: size" `Quick test_tree_size;
    Alcotest.test_case "forward prop: semantics" `Quick test_forward_prop_preserves_semantics;
    Alcotest.test_case "forward prop: code expansion" `Quick test_forward_prop_expands_code;
    Alcotest.test_case "forward prop: partially dead removed" `Quick test_forward_prop_eliminates_partially_dead;
    Alcotest.test_case "forward prop: worst-case growth (4.3)" `Quick test_forward_prop_worst_case_expansion;
    Alcotest.test_case "enables PRE on skewed sums" `Quick test_reassoc_exposes_invariant_to_pre;
    Alcotest.test_case "distribution exposes more" `Quick test_distribution_exposes_more;
    Alcotest.test_case "all workloads survive reassociation" `Slow test_all_workloads_reassociate_safely;
  ]
