(** Tests for [Epre_util]: Vec, Bitset, Union_find. *)

open Epre_util

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty length" 0 (Vec.length v);
  let i0 = Vec.push v "a" in
  let i1 = Vec.push v "b" in
  Alcotest.(check int) "first index" 0 i0;
  Alcotest.(check int) "second index" 1 i1;
  Alcotest.(check string) "get" "b" (Vec.get v 1);
  Vec.set v 0 "c";
  Alcotest.(check string) "set" "c" (Vec.get v 0);
  Alcotest.(check (list string)) "to_list" [ "c"; "b" ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec: index 3 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Vec: index -1 out of bounds [0,3)") (fun () ->
      ignore (Vec.get v (-1)))

let test_vec_copy_independent () =
  let v = Vec.of_list [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.set w 0 99;
  Alcotest.(check int) "original unchanged" 1 (Vec.get v 0);
  Alcotest.(check int) "copy changed" 99 (Vec.get w 0)

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "spot check" 567 (Vec.get v 567);
  Alcotest.(check int) "fold" (999 * 1000 / 2) (Vec.fold_left ( + ) 0 v)

let vec_roundtrip =
  Helpers.qcheck_case "Vec" "of_list/to_list roundtrip"
    QCheck2.Gen.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let s = Bitset.create 70 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 69;
  Bitset.add s 31;
  Alcotest.(check bool) "mem 0" true (Bitset.mem s 0);
  Alcotest.(check bool) "mem 69" true (Bitset.mem s 69);
  Alcotest.(check bool) "not mem 1" false (Bitset.mem s 1);
  Alcotest.(check int) "count" 3 (Bitset.count s);
  Bitset.remove s 31;
  Alcotest.(check (list int)) "elements" [ 0; 69 ] (Bitset.elements s)

let test_bitset_ops () =
  let a = Bitset.create 16 and b = Bitset.create 16 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 2; 3; 4 ];
  let u = Bitset.copy a in
  Bitset.union_into ~dst:u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into ~dst:i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements i);
  let d = Bitset.copy a in
  Bitset.diff_into ~dst:d b;
  Alcotest.(check (list int)) "diff" [ 1 ] (Bitset.elements d)

let test_bitset_full () =
  let f = Bitset.full 13 in
  Alcotest.(check int) "count" 13 (Bitset.count f);
  (* The unused high bits of the last byte must be clear so that [equal]
     against an explicitly built full set holds. *)
  let g = Bitset.create 13 in
  for i = 0 to 12 do
    Bitset.add g i
  done;
  Alcotest.(check bool) "equal" true (Bitset.equal f g)

let test_bitset_width_mismatch () =
  let a = Bitset.create 8 and b = Bitset.create 9 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: width mismatch") (fun () ->
      Bitset.union_into ~dst:a b)

let test_bitset_zero_width () =
  let s = Bitset.create 0 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Alcotest.(check bool) "full empty too" true (Bitset.is_empty (Bitset.full 0))

module IntSet = Set.Make (Int)

let bitset_model_gen =
  QCheck2.Gen.(list (int_bound 63))

let bitset_of_list xs =
  let s = Bitset.create 64 in
  List.iter (Bitset.add s) xs;
  s

let bitset_union_model =
  Helpers.qcheck_case "Bitset" "union agrees with Set.union"
    QCheck2.Gen.(pair bitset_model_gen bitset_model_gen)
    (fun (xs, ys) ->
      let s = bitset_of_list xs in
      Bitset.union_into ~dst:s (bitset_of_list ys);
      IntSet.equal
        (IntSet.of_list (Bitset.elements s))
        (IntSet.union (IntSet.of_list xs) (IntSet.of_list ys)))

let bitset_diff_model =
  Helpers.qcheck_case "Bitset" "diff agrees with Set.diff"
    QCheck2.Gen.(pair bitset_model_gen bitset_model_gen)
    (fun (xs, ys) ->
      let s = bitset_of_list xs in
      Bitset.diff_into ~dst:s (bitset_of_list ys);
      IntSet.equal
        (IntSet.of_list (Bitset.elements s))
        (IntSet.diff (IntSet.of_list xs) (IntSet.of_list ys)))

let bitset_count_model =
  Helpers.qcheck_case "Bitset" "count = cardinality" bitset_model_gen (fun xs ->
      Bitset.count (bitset_of_list xs) = IntSet.cardinal (IntSet.of_list xs))

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_uf_basic () =
  let uf = Union_find.create 10 in
  Alcotest.(check bool) "initially apart" false (Union_find.same uf 1 2);
  ignore (Union_find.union uf 1 2);
  Alcotest.(check bool) "joined" true (Union_find.same uf 1 2);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 1 3);
  Alcotest.(check bool) "others untouched" false (Union_find.same uf 1 4)

let test_uf_keep_first () =
  let uf = Union_find.create 10 in
  Union_find.union_keep_first uf 7 3;
  Alcotest.(check int) "representative is first" 7 (Union_find.find uf 3);
  Union_find.union_keep_first uf 7 5;
  Alcotest.(check int) "still first" 7 (Union_find.find uf 5)

let uf_equivalence =
  Helpers.qcheck_case "Union_find" "union builds an equivalence"
    QCheck2.Gen.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) pairs;
      (* reflexive, symmetric, and consistent with find *)
      List.for_all
        (fun (a, b) ->
          Union_find.same uf a b
          && Union_find.find uf a = Union_find.find uf b)
        pairs)

let suite =
  [
    Alcotest.test_case "vec: push/get/set/to_list" `Quick test_vec_basic;
    Alcotest.test_case "vec: bounds checking" `Quick test_vec_bounds;
    Alcotest.test_case "vec: copy independence" `Quick test_vec_copy_independent;
    Alcotest.test_case "vec: growth to 1000" `Quick test_vec_growth;
    vec_roundtrip;
    Alcotest.test_case "bitset: add/remove/mem/count" `Quick test_bitset_basic;
    Alcotest.test_case "bitset: union/inter/diff" `Quick test_bitset_ops;
    Alcotest.test_case "bitset: full masks high bits" `Quick test_bitset_full;
    Alcotest.test_case "bitset: width mismatch rejected" `Quick test_bitset_width_mismatch;
    Alcotest.test_case "bitset: zero width" `Quick test_bitset_zero_width;
    bitset_union_model;
    bitset_diff_model;
    bitset_count_model;
    Alcotest.test_case "union_find: union/same" `Quick test_uf_basic;
    Alcotest.test_case "union_find: keep-first representative" `Quick test_uf_keep_first;
    uf_equivalence;
  ]
