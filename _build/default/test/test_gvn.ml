(** Tests for [Epre_gvn]: AWZ partition refinement and the value-based
    renaming of Section 3.2. *)

open Epre_ir
open Epre_gvn

(* ------------------------------------------------------------------ *)
(* Partitioning *)

let build_ssa source name =
  let r = Program.find_exn (Helpers.compile source) name in
  Epre_ssa.Ssa.build r

(* The paper's Section 2.2 example:
     x = y + z; a = y; b = a + z
   After copy folding, t1 = y + z and t2 = y + z are congruent. *)
let test_paper_naming_example () =
  let source =
    {|
fn f(y: int, z: int): int {
  var x: int = y + z;
  var a: int = y;
  var b: int = a + z;
  return x * b;
}
|}
  in
  let r = build_ssa source "f" in
  let part = Partition.build r in
  (* find the two add destinations *)
  let adds = ref [] in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function
          | Instr.Binop { op = Op.Add; dst; _ } -> adds := dst :: !adds
          | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  match !adds with
  | [ d1; d2 ] ->
    Alcotest.(check bool) "x and b congruent" true (Partition.congruent part d1 d2)
  | ds -> Alcotest.failf "expected two adds, got %d" (List.length ds)

let test_different_ops_not_congruent () =
  let source =
    {|
fn f(y: int, z: int): int {
  var a: int = y + z;
  var b: int = y * z;
  return a + b;
}
|}
  in
  let r = build_ssa source "f" in
  let part = Partition.build r in
  let defs = ref [] in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function
          | Instr.Binop { op = Op.Add; dst; a = 0; b = 1 } -> defs := (`Add, dst) :: !defs
          | Instr.Binop { op = Op.Mul; dst; _ } -> defs := (`Mul, dst) :: !defs
          | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  let add = List.assoc `Add !defs and mul = List.assoc `Mul !defs in
  Alcotest.(check bool) "add !~ mul" false (Partition.congruent part add mul)

let test_optimism_through_loop () =
  (* Two parallel accumulators with identical recurrences: the optimistic
     partition keeps their phis congruent (hash-based value numbering
     cannot see this). *)
  let source =
    {|
fn f(n: int): int {
  var a: int;
  var b: int;
  var i: int;
  for i = 1 to n {
    a = a + 1;
    b = b + 1;
  }
  return a - b;
}
|}
  in
  let r = build_ssa source "f" in
  let part = Partition.build r in
  (* gather the phis of the loop header for a and b: they are the two phis
     merging values with the same structure; find congruent phi pairs. *)
  let phis = ref [] in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function Instr.Phi { dst; _ } -> phis := dst :: !phis | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  let congruent_pairs =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q -> if p < q && Partition.congruent part p q then Some (p, q) else None)
          !phis)
      !phis
  in
  Alcotest.(check bool) "the a/b phis are congruent" true (congruent_pairs <> [])

let test_constants_partition_by_value () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let c1 = Builder.int b 5 in
  let c2 = Builder.int b 5 in
  let c3 = Builder.int b 6 in
  let s = Builder.binop b Op.Add c1 c2 in
  Builder.ret b (Some (Builder.binop b Op.Add s c3));
  let r = Builder.finish b in
  let r = Epre_ssa.Ssa.build r in
  let part = Partition.build r in
  (* after SSA renaming the const regs changed; re-find them *)
  let consts = ref [] in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function
          | Instr.Const { dst; value = Value.I v } -> consts := (v, dst) :: !consts
          | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  let fives = List.filter_map (fun (v, d) -> if v = 5 then Some d else None) !consts in
  let sixes = List.filter_map (fun (v, d) -> if v = 6 then Some d else None) !consts in
  (match fives, sixes with
  | [ f1; f2 ], [ s1 ] ->
    Alcotest.(check bool) "5 ~ 5" true (Partition.congruent part f1 f2);
    Alcotest.(check bool) "5 !~ 6" false (Partition.congruent part f1 s1)
  | _ -> Alcotest.fail "constants not found")

let test_commutative_config () =
  (* x + y vs y + x: congruent only with the commutative extension. The
     front end canonicalizes operand order, so build the routine by hand
     with swapped operands. *)
  let make () =
    let b = Builder.start ~name:"f" ~nparams:2 in
    let t1 = Builder.binop b Op.Add 0 1 in
    let t2 = Builder.binop b Op.Add 1 0 in
    Builder.ret b (Some (Builder.binop b Op.Mul t1 t2));
    Epre_ssa.Ssa.build (Builder.finish b)
  in
  let find_adds r =
    let adds = ref [] in
    Cfg.iter_blocks
      (fun blk ->
        List.iter
          (function
            | Instr.Binop { op = Op.Add; dst; _ } -> adds := dst :: !adds
            | _ -> ())
          blk.Block.instrs)
      r.Routine.cfg;
    match !adds with [ a; b ] -> (a, b) | _ -> Alcotest.fail "two adds expected"
  in
  let r1 = make () in
  let basic = Partition.build ~config:{ Partition.commutative = false } r1 in
  let a1, b1 = find_adds r1 in
  Alcotest.(check bool) "basic AWZ misses it" false (Partition.congruent basic a1 b1);
  let r2 = make () in
  let ext = Partition.build ~config:{ Partition.commutative = true } r2 in
  let a2, b2 = find_adds r2 in
  Alcotest.(check bool) "commutative variant finds it" true (Partition.congruent ext a2 b2)

let test_loads_never_congruent () =
  let source =
    {|
fn f(a: int[4]): int {
  var u: int = a[1];
  var v: int = a[1];
  return u + v;
}
|}
  in
  let r = build_ssa source "f" in
  let part = Partition.build r in
  let loads = ref [] in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function Instr.Load { dst; _ } -> loads := dst :: !loads | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  match !loads with
  | [ l1; l2 ] ->
    Alcotest.(check bool) "loads stay apart" false (Partition.congruent part l1 l2)
  | _ -> Alcotest.fail "two loads expected"

(* ------------------------------------------------------------------ *)
(* Renaming *)

let test_gvn_renames_to_shared_names () =
  let source =
    {|
fn f(y: int, z: int): int {
  var x: int = y + z;
  var a: int = y;
  var b: int = a + z;
  return x * b;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  let stats = Gvn.run r in
  Routine.validate r;
  Alcotest.(check bool) "some class merged" true (stats.Gvn.classes_merged >= 1);
  (* the two y+z evaluations now target one name *)
  let dsts = Hashtbl.create 4 in
  Cfg.iter_blocks
    (fun blk ->
      List.iter
        (function
          | Instr.Binop { op = Op.Add; dst; _ } -> Hashtbl.replace dsts dst ()
          | _ -> ())
        blk.Block.instrs)
    r.Routine.cfg;
  Alcotest.(check int) "one add name" 1 (Hashtbl.length dsts);
  Alcotest.(check int) "semantics" 25
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 2; Value.I 3 ] prog)

let test_gvn_enables_cse () =
  (* After GVN the naming discipline holds and available-expression CSE
     removes the duplicate that value numbering exposed. *)
  let source =
    {|
fn f(y: int, z: int): int {
  var x: int = y + z;
  var a: int = y;
  var b: int = a + z;
  return x * b;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Gvn.run r);
  ignore (Epre_opt.Naming.run r);
  let deleted = Epre_opt.Cse_avail.run r in
  Alcotest.(check bool) "duplicate deleted" true (deleted >= 1);
  Alcotest.(check int) "semantics" 25
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 2; Value.I 3 ] prog)

let test_gvn_preserves_all_workloads () =
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      List.iter (fun r -> ignore (Gvn.run r)) (Epre_ir.Program.routines p);
      Helpers.check_same_behaviour ~what:(w.Epre_workloads.Workloads.name ^ "+gvn") prog p)
    Epre_workloads.Workloads.all

let test_gvn_after_reassoc_preserves_workloads () =
  (* The pipeline order that matters: reassociation then GVN. *)
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      List.iter
        (fun r ->
          ignore
            (Epre_reassoc.Reassociate.run
               ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }
               r);
          ignore (Gvn.run r))
        (Epre_ir.Program.routines p);
      Helpers.check_same_behaviour
        ~what:(w.Epre_workloads.Workloads.name ^ "+reassoc+gvn")
        prog p)
    Epre_workloads.Workloads.all

let suite =
  [
    Alcotest.test_case "partition: paper's naming example" `Quick test_paper_naming_example;
    Alcotest.test_case "partition: operators distinguish" `Quick test_different_ops_not_congruent;
    Alcotest.test_case "partition: optimistic across loop" `Quick test_optimism_through_loop;
    Alcotest.test_case "partition: constants by value" `Quick test_constants_partition_by_value;
    Alcotest.test_case "partition: commutative variant" `Quick test_commutative_config;
    Alcotest.test_case "partition: loads opaque" `Quick test_loads_never_congruent;
    Alcotest.test_case "gvn: renames congruent values" `Quick test_gvn_renames_to_shared_names;
    Alcotest.test_case "gvn: exposes CSE" `Quick test_gvn_enables_cse;
    Alcotest.test_case "gvn: all workloads preserved" `Slow test_gvn_preserves_all_workloads;
    Alcotest.test_case "gvn: after reassociation" `Slow test_gvn_after_reassoc_preserves_workloads;
  ]
