(** Tests for [Epre_pre.Pre_classic], the Morel–Renvoise ablation: it must
    be correct everywhere and never stronger than the edge-placement
    engine. *)

open Epre_ir

let cleanup r =
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Peephole.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Coalesce.run r);
  ignore (Epre_opt.Clean.run r)

let optimize_with pre prog =
  let p = Program.copy prog in
  List.iter
    (fun r ->
      ignore (Epre_opt.Naming.run r);
      pre r;
      cleanup r;
      Routine.validate r)
    (Program.routines p);
  p

let test_partial_redundancy_example () =
  let source =
    {|
fn f(p: int, x: int, y: int): int {
  var a: int;
  a = 1;
  if (p > 0) {
    a = x + y;
  }
  return a * (x + y);
}
|}
  in
  let prog = Helpers.compile source in
  let p = optimize_with (fun r -> ignore (Epre_pre.Pre_classic.run r)) prog in
  Helpers.check_same_behaviour ~entry:"f"
    ~args:[ Value.I 1; Value.I 2; Value.I 3 ]
    ~what:"classic PRE" prog p;
  Helpers.check_same_behaviour ~entry:"f"
    ~args:[ Value.I 0; Value.I 2; Value.I 3 ]
    ~what:"classic PRE (else)" prog p

let test_loop_invariant_still_hoists () =
  (* With the rotated loop shape, the preheader edge is not critical, so
     even block-end placement hoists the invariant. *)
  let source =
    {|
fn f(n: int, x: int, y: int): int {
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + (x + y);
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let before =
    Helpers.dynamic_ops ~entry:"f" ~args:[ Value.I 40; Value.I 2; Value.I 3 ] prog
  in
  let p = optimize_with (fun r -> ignore (Epre_pre.Pre_classic.run r)) prog in
  let after =
    Helpers.dynamic_ops ~entry:"f" ~args:[ Value.I 40; Value.I 2; Value.I 3 ] p
  in
  Alcotest.(check bool)
    (Printf.sprintf "invariant hoisted (%d -> %d)" before after)
    true
    (after < before - 30)

let test_all_workloads_preserved () =
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = optimize_with (fun r -> ignore (Epre_pre.Pre_classic.run r)) prog in
      Helpers.check_same_behaviour
        ~what:(w.Epre_workloads.Workloads.name ^ "+mr-pre")
        prog p)
    Epre_workloads.Workloads.all

let test_edge_placement_dominates () =
  (* The reason the paper uses Drechsler–Stadel: block-end placement is
     blocked by critical edges. On every workload the edge-placement
     engine must do at least as well. *)
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let lcm =
        Helpers.dynamic_ops (optimize_with (fun r -> ignore (Epre_pre.Pre.run r)) prog)
      in
      let mr =
        Helpers.dynamic_ops
          (optimize_with (fun r -> ignore (Epre_pre.Pre_classic.run r)) prog)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: edge %d <= block-end %d" w.Epre_workloads.Workloads.name
           lcm mr)
        true (lcm <= mr))
    (List.filteri (fun i _ -> i mod 3 = 0) Epre_workloads.Workloads.all)

let test_classic_idempotent () =
  let prog =
    Helpers.compile
      "fn f(x: int, y: int): int { return (x + y) * (x + y); }"
  in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Naming.run r);
  ignore (Epre_pre.Pre_classic.run r);
  let again = Epre_pre.Pre_classic.run r in
  Alcotest.(check int) "no further insertions" 0 again.Epre_pre.Pre_classic.inserted;
  Alcotest.(check int) "value" 100
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 4; Value.I 6 ] prog)

let suite =
  [
    Alcotest.test_case "partial redundancy example" `Quick test_partial_redundancy_example;
    Alcotest.test_case "loop invariants hoist" `Quick test_loop_invariant_still_hoists;
    Alcotest.test_case "all workloads preserved" `Slow test_all_workloads_preserved;
    Alcotest.test_case "edge placement dominates" `Slow test_edge_placement_dominates;
    Alcotest.test_case "idempotent" `Quick test_classic_idempotent;
  ]
