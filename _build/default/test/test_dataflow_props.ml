(** Property test: the RPO-driven data-flow solver computes exactly the
    same fixpoint as a naive chaotic iteration, for random graphs and
    random gen/kill systems, in all four (direction x meet) combinations. *)

open Epre_util
open Epre_ir
open Epre_analysis
open QCheck2

let make_cfg nblocks edges =
  let cfg = Cfg.create () in
  for _ = 0 to nblocks - 1 do
    ignore (Cfg.add_block ~term:(Instr.Ret None) cfg)
  done;
  let succs = Array.make nblocks [] in
  List.iter
    (fun (a, b) -> if List.length succs.(a) < 2 then succs.(a) <- succs.(a) @ [ b ])
    edges;
  Array.iteri
    (fun i -> function
      | [] -> ()
      | [ s ] -> (Cfg.block cfg i).Block.term <- Instr.Jump s
      | s1 :: s2 :: _ ->
        (Cfg.block cfg i).Block.term <- Instr.Cbr { cond = 0; ifso = s1; ifnot = s2 })
    succs;
  Cfg.set_entry cfg 0;
  cfg

let gen_instance =
  Gen.(
    let* n = int_range 2 7 in
    let* edges = list_size (int_range 1 12) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    let* width = int_range 1 6 in
    let* gens = list_size (return n) (list_size (int_range 0 3) (int_bound (width - 1))) in
    let* kills = list_size (return n) (list_size (int_range 0 3) (int_bound (width - 1))) in
    let* meet = oneofl [ Dataflow.Union; Dataflow.Inter ] in
    let* forward = bool in
    return (n, (0, 1 mod n) :: edges, width, gens, kills, meet, forward))

(* naive reference: chaotic iteration directly from the equations *)
let naive cfg ~width ~gen ~kill ~meet ~forward =
  let n = Cfg.num_blocks cfg in
  let order = Order.compute cfg in
  let reachable id = Order.is_reachable order id in
  let init () =
    Array.init n (fun id ->
        if not (reachable id) then Bitset.create width
        else match meet with
          | Dataflow.Union -> Bitset.create width
          | Dataflow.Inter -> Bitset.full width)
  in
  let ins = init () and outs = init () in
  let preds = Cfg.preds cfg in
  let boundary = Bitset.create width in
  let meet_list dst contributions =
    match contributions with
    | [] -> Bitset.assign ~dst boundary
    | first :: rest ->
      Bitset.assign ~dst first;
      List.iter
        (fun c ->
          match meet with
          | Dataflow.Union -> Bitset.union_into ~dst c
          | Dataflow.Inter -> Bitset.inter_into ~dst c)
        rest
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* visit blocks in an order unrelated to RPO: plain id order *)
    for id = 0 to n - 1 do
      if reachable id then begin
        let input, output = if forward then (ins.(id), outs.(id)) else (outs.(id), ins.(id)) in
        let contributions =
          if forward then
            if id = Cfg.entry cfg then []
            else List.filter_map (fun p -> if reachable p then Some outs.(p) else None) preds.(id)
          else List.map (fun s -> ins.(s)) (Cfg.succs cfg id)
        in
        let tmp = Bitset.create width in
        meet_list tmp contributions;
        if not (Bitset.equal tmp input) then begin
          Bitset.assign ~dst:input tmp;
          changed := true
        end;
        let t2 = Bitset.copy input in
        Bitset.diff_into ~dst:t2 (kill id);
        Bitset.union_into ~dst:t2 (gen id);
        if not (Bitset.equal t2 output) then begin
          Bitset.assign ~dst:output t2;
          changed := true
        end
      end
    done
  done;
  (ins, outs)

let solver_matches_naive =
  Helpers.qcheck_case ~count:300 "Dataflow" "solver = chaotic-iteration fixpoint"
    gen_instance
    (fun (n, edges, width, gens, kills, meet, forward) ->
      let cfg = make_cfg n edges in
      let mk lists =
        let arr = Array.of_list lists in
        fun id ->
          let s = Bitset.create width in
          List.iter (Bitset.add s) arr.(id);
          s
      in
      let gen = mk gens and kill = mk kills in
      let sys =
        { Dataflow.width; gen; kill; boundary = Bitset.create width; meet }
      in
      let result =
        if forward then Dataflow.solve_forward cfg sys else Dataflow.solve_backward cfg sys
      in
      let nins, nouts = naive cfg ~width ~gen ~kill ~meet ~forward in
      let order = Order.compute cfg in
      let ok = ref true in
      for id = 0 to n - 1 do
        if Order.is_reachable order id then begin
          if not (Bitset.equal result.Dataflow.ins.(id) nins.(id)) then ok := false;
          if not (Bitset.equal result.Dataflow.outs.(id) nouts.(id)) then ok := false
        end
      done;
      !ok)

let suite = [ solver_matches_naive ]
