test/test_strength.ml: Alcotest Epre Epre_interp Epre_ir Epre_opt Epre_workloads Float Helpers List Option Printf Program Routine Value
