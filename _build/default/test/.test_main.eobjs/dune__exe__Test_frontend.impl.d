test/test_frontend.ml: Alcotest Block Cfg Epre_frontend Epre_ir Epre_opt Hashtbl Helpers Instr List Op Program Routine Value
