test/test_opt.ml: Alcotest Block Builder Cfg Epre_ir Epre_opt Helpers Instr List Op Program Routine Value
