test/test_dataflow_props.ml: Array Bitset Block Cfg Dataflow Epre_analysis Epre_ir Epre_util Gen Helpers Instr List Order QCheck2
