test/test_gvn.ml: Alcotest Block Builder Cfg Epre_gvn Epre_ir Epre_opt Epre_reassoc Epre_ssa Epre_workloads Gvn Hashtbl Helpers Instr List Op Partition Program Routine Value
