test/test_pre.ml: Alcotest Block Builder Cfg Epre_interp Epre_ir Epre_opt Epre_pre Epre_workloads Helpers Instr List Option Printf Program Routine Value
