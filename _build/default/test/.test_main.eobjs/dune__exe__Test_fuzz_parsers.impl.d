test/test_fuzz_parsers.ml: Bytes Epre_frontend Epre_interp Epre_ir Gen Helpers QCheck2 String
