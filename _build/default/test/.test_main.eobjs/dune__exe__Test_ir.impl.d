test/test_ir.ml: Alcotest Array Block Builder Cfg Epre_ir Epre_util Helpers Instr List Op QCheck2 Routine Ty Value
