test/test_ssa.ml: Alcotest Array Block Builder Cfg Critical_edges Epre_ir Epre_ssa Fun Helpers Instr List Op Parallel_copy Program QCheck2 Routine Ssa Ssa_check Value
