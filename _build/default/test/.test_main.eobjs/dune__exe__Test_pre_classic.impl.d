test/test_pre_classic.ml: Alcotest Epre_ir Epre_opt Epre_pre Epre_workloads Helpers List Printf Program Routine Value
