test/test_adce.ml: Alcotest Array Block Cfg Epre_analysis Epre_ir Epre_opt Epre_workloads Helpers Instr List Postdom Printf Program Routine Value
