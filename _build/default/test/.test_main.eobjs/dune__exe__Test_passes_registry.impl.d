test/test_passes_registry.ml: Alcotest Epre Epre_ir Epre_opt Epre_workloads Helpers List Program Routine
