test/test_cfg_dot.ml: Alcotest Epre_ir Helpers List String
