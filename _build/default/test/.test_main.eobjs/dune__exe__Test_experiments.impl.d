test/test_experiments.ml: Alcotest Epre Epre_interp Epre_workloads Helpers List Option
