test/test_naming_correctness.ml: Alcotest Block Builder Cfg Epre_gvn Epre_ir Epre_opt Epre_pre Epre_workloads Hashtbl Helpers Instr List Op Program Routine Value
