test/test_util.ml: Alcotest Bitset Epre_util Helpers Int List QCheck2 Set Union_find Vec
