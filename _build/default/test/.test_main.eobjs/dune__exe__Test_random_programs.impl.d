test/test_random_programs.ml: Epre Epre_frontend Epre_gvn Epre_interp Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_ssa Gen Helpers List QCheck2
