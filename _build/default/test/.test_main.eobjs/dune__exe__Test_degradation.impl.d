test/test_degradation.ml: Alcotest Block Cfg Epre Epre_gvn Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_workloads Helpers Instr List Op Program Routine Value
