test/test_expr_tree_props.ml: Array Epre_ir Epre_reassoc Expr_tree Gen Helpers List Op QCheck2 Value
