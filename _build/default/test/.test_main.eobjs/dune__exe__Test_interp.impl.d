test/test_interp.ml: Alcotest Builder Epre_interp Epre_ir Helpers Instr List Op Program Routine Value
