test/test_pipeline.ml: Alcotest Epre Epre_workloads Helpers List Option Printf
