test/test_paper_example.ml: Alcotest Block Cfg Epre Epre_analysis Epre_gvn Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_ssa Hashtbl Helpers Instr List Op Option Printf Program Routine Value
