test/helpers.ml: Alcotest Epre Epre_frontend Epre_interp Epre_ir Float List Program QCheck2 QCheck_alcotest String Value
