test/test_dvnt.ml: Alcotest Block Cfg Epre_interp Epre_ir Epre_opt Epre_workloads Helpers Instr List Program Routine Value
