test/test_analysis.ml: Alcotest Array Bitset Block Builder Cfg Dataflow Dom Epre_analysis Epre_ir Epre_util Hashtbl Helpers Instr List Liveness Loops Op Option Order Printf QCheck2
