test/test_workload_checksums.ml: Alcotest Epre_ir Epre_workloads List Value
