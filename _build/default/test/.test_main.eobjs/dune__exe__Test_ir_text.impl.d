test/test_ir_text.ml: Alcotest Builder Epre Epre_frontend Epre_ir Epre_ssa Epre_workloads Float Helpers Ir_text Option Program Test_random_programs Value
