(** Differential testing on randomly generated programs.

    A QCheck generator produces well-typed ASTs in the mini language —
    scalars, an int array, nested ifs and bounded loops, arithmetic with
    guarded division — and every optimization level must preserve the
    program's return value and [emit] trace. This is the heavy artillery
    that guards the whole pipeline (SSA round trips, PRE insertions, GVN
    renaming, reassociation, coalescing) against miscompilation. *)

open Epre_frontend.Ast
open QCheck2

(* ------------------------------------------------------------------ *)
(* Generator: programs over int scalars v0..v4, one array a[8], loop
   counters k0/k1. Division and mod are generated with a guard idiom
   (x / (1 + abs e)) so runtime errors cannot occur. *)

let var_names = [ "v0"; "v1"; "v2"; "v3"; "v4" ]

let gen_var = Gen.oneofl var_names

let rec gen_expr depth =
  let open Gen in
  if depth <= 0 then
    oneof
      [ map (fun i -> Int_lit i) (int_range (-20) 20);
        map (fun v -> Var v) gen_var ]
  else
    let sub = gen_expr (depth - 1) in
    oneof
      [ map (fun i -> Int_lit i) (int_range (-20) 20);
        map (fun v -> Var v) gen_var;
        map2 (fun a b -> Binary (BAdd, a, b)) sub sub;
        map2 (fun a b -> Binary (BSub, a, b)) sub sub;
        map2 (fun a b -> Binary (BMul, a, b)) sub sub;
        (* guarded division: e1 / (1 + abs e2) *)
        map2
          (fun a b -> Binary (BDiv, a, Binary (BAdd, Int_lit 1, Call ("abs", [ b ]))))
          sub sub;
        map2 (fun a b -> Call ("min", [ a; b ])) sub sub;
        map2 (fun a b -> Call ("max", [ a; b ])) sub sub;
        (* array read with a safe subscript: 1 + mod(abs e, 8) *)
        map
          (fun e ->
            Index ("arr", [ Binary (BAdd, Int_lit 1, Call ("mod", [ Call ("abs", [ e ]); Int_lit 8 ])) ]))
          sub ]

let gen_cond depth =
  let open Gen in
  let* op = oneofl [ BEq; BNe; BLt; BLe; BGt; BGe ] in
  let* a = gen_expr depth in
  let* b = gen_expr depth in
  return (Binary (op, a, b))

let mk desc = { desc; line = 1 }

(* [free_counters] prevents nesting two loops over the same counter, which
   would reset the outer induction variable and never terminate. *)
let rec gen_stmt depth free_counters =
  let open Gen in
  let leaf =
    [ (3, map2 (fun v e -> mk (Assign (v, e))) gen_var (gen_expr 2));
      (1, map (fun e -> mk (Expr_stmt (Call ("emit", [ e ])))) (gen_expr 2));
      ( 2,
        map2
          (fun e v ->
            mk
              (Assign_index
                 ( "arr",
                   [ Binary (BAdd, Int_lit 1, Call ("mod", [ Call ("abs", [ Var v ]); Int_lit 8 ])) ],
                   e )))
          (gen_expr 2) gen_var ) ]
  in
  if depth <= 0 then frequency leaf
  else
    frequency
      (leaf
      @ [ ( 2,
            let* c = gen_cond 1 in
            let* then_ = gen_stmts (depth - 1) free_counters in
            let* else_ = gen_stmts (depth - 1) free_counters in
            return (mk (If (c, then_, else_))) ) ]
      @
      match free_counters with
      | [] -> []
      | counter :: rest ->
        [ ( 2,
            let* hi = int_range 1 6 in
            let* body = gen_stmts (depth - 1) rest in
            return
              (mk (For { var = counter; start = Int_lit 1; stop = Int_lit hi;
                         step = None; down = false; body })) ) ])

and gen_stmts depth free_counters =
  Gen.(list_size (int_range 1 4) (gen_stmt depth free_counters))

let gen_program =
  let open Gen in
  let* body = gen_stmts 3 [ "k0"; "k1" ] in
  let decls =
    List.map (fun v -> mk (Decl (v, Scalar TInt, Some (Int_lit 1)))) var_names
    @ [ mk (Decl ("k0", Scalar TInt, None));
        mk (Decl ("k1", Scalar TInt, None));
        mk (Decl ("arr", Array { elt = TInt; dims = [ 8 ] }, None)) ]
  in
  let result =
    mk
      (Return
         (Some
            (List.fold_left
               (fun acc v -> Binary (BAdd, acc, Var v))
               (Index ("arr", [ Int_lit 3 ]))
               var_names)))
  in
  return
    [ { name = "main"; params = []; ret = Some TInt; body = decls @ body @ [ result ];
        line = 1 } ]

(* ------------------------------------------------------------------ *)

let compile_ast ast =
  let env = Epre_frontend.Sema.check_program ast in
  Epre_frontend.Lower.lower_program env ast

let behaviour prog =
  let result = Epre_interp.Interp.run ~fuel:4_000_000 prog ~entry:"main" ~args:[] in
  (result.Epre_interp.Interp.return_value, result.Epre_interp.Interp.trace)

let level_preserves level =
  Helpers.qcheck_case ~count:150 "random programs"
    (Epre.Pipeline.level_to_string level ^ " preserves behaviour")
    gen_program
    (fun ast ->
      let prog = compile_ast ast in
      let reference = behaviour prog in
      let optimized, _ = Epre.Pipeline.optimized_copy ~level prog in
      behaviour optimized = reference)

let pass_preserves name pass =
  Helpers.qcheck_case ~count:150 "random programs" (name ^ " preserves behaviour")
    gen_program
    (fun ast ->
      let prog = compile_ast ast in
      let reference = behaviour prog in
      let p = Epre_ir.Program.copy prog in
      List.iter (fun r -> pass r) (Epre_ir.Program.routines p);
      behaviour p = reference)

let suite =
  [
    pass_preserves "ssa round trip" (fun r ->
        ignore (Epre_ssa.Ssa.destroy (Epre_ssa.Ssa.build r)));
    pass_preserves "sccp" (fun r -> ignore (Epre_opt.Constprop.run r));
    pass_preserves "peephole" (fun r ->
        ignore (Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r));
    pass_preserves "dce+coalesce+clean" (fun r ->
        ignore (Epre_opt.Dce.run r);
        ignore (Epre_opt.Coalesce.run r);
        ignore (Epre_opt.Clean.run r));
    pass_preserves "naming+pre" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre.run r));
    pass_preserves "cse_dom" (fun r -> ignore (Epre_opt.Cse_dom.run r));
    pass_preserves "dvnt" (fun r -> ignore (Epre_opt.Dvnt.run r));
    pass_preserves "adce+clean" (fun r ->
        ignore (Epre_opt.Adce.run r);
        ignore (Epre_opt.Clean.run r));
    pass_preserves "strength" (fun r -> ignore (Epre_opt.Strength.run r));
    pass_preserves "pre_classic" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_pre.Pre_classic.run r));
    pass_preserves "naming+cse_avail" (fun r ->
        ignore (Epre_opt.Naming.run r);
        ignore (Epre_opt.Cse_avail.run r));
    pass_preserves "reassociate+distribute" (fun r ->
        ignore
          (Epre_reassoc.Reassociate.run
             ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = true }
             r));
    pass_preserves "gvn" (fun r -> ignore (Epre_gvn.Gvn.run r));
    level_preserves Epre.Pipeline.Baseline;
    level_preserves Epre.Pipeline.Partial;
    level_preserves Epre.Pipeline.Reassociation;
    level_preserves Epre.Pipeline.Distribution;
  ]
