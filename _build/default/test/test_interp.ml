(** Tests for [Epre_interp]: machine semantics, error detection, dynamic
    operation counting. *)

open Epre_ir

let simple_routine build =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let ret = build b in
  Builder.ret b (Some ret);
  Program.create [ Builder.finish b ]

let test_arith () =
  let prog =
    simple_routine (fun b ->
        let x = Builder.int b 10 in
        let y = Builder.int b 3 in
        let q = Builder.binop b Op.Div x y in
        let r = Builder.binop b Op.Rem x y in
        let t = Builder.binop b Op.Mul q (Builder.int b 10) in
        Builder.binop b Op.Add t r)
  in
  Alcotest.(check int) "10/3*10 + 10%3" 31 (Helpers.run_int ~entry:"f" prog)

let test_float_conversions () =
  let prog =
    simple_routine (fun b ->
        let x = Builder.float b 2.25 in
        let i = Builder.unop b Op.F2I x in
        let f = Builder.unop b Op.I2F i in
        Builder.unop b Op.F2I (Builder.binop b Op.FMul f (Builder.float b 3.0)))
  in
  Alcotest.(check int) "truncate" 6 (Helpers.run_int ~entry:"f" prog)

let test_division_by_zero_reported () =
  let prog =
    simple_routine (fun b ->
        let x = Builder.int b 1 in
        let z = Builder.int b 0 in
        Builder.binop b Op.Div x z)
  in
  Alcotest.check_raises "div by zero" (Epre_interp.Interp.Runtime_error "f: division by zero")
    (fun () -> ignore (Epre_interp.Interp.run prog ~entry:"f" ~args:[]))

let test_undefined_register_read () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let x = Builder.fresh_reg b in
  let y = Builder.copy b x in
  Builder.ret b (Some y);
  (* bypass the builder validation on purpose: register is in range but
     never written *)
  let r = b.Builder.routine in
  let prog = Program.create [ r ] in
  Alcotest.check_raises "undefined read"
    (Epre_interp.Interp.Runtime_error "f: read of undefined register r0") (fun () ->
      ignore (Epre_interp.Interp.run prog ~entry:"f" ~args:[]))

let test_out_of_bounds_store () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let base = Builder.alloca b 4 in
  let off = Builder.int b 10 in
  let addr = Builder.binop b Op.Add base off in
  Builder.store b ~addr ~src:off;
  Builder.ret b None;
  let prog = Program.create [ Builder.finish b ] in
  Alcotest.check_raises "oob"
    (Epre_interp.Interp.Runtime_error "store to unallocated address 10") (fun () ->
      ignore (Epre_interp.Interp.run prog ~entry:"f" ~args:[]))

let test_fuel_exhaustion () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let l = Builder.new_block b in
  Builder.jump b l;
  Builder.switch b l;
  Builder.jump b l;
  let prog = Program.create [ Builder.finish b ] in
  Alcotest.check_raises "fuel" Epre_interp.Interp.Out_of_fuel (fun () ->
      ignore (Epre_interp.Interp.run ~fuel:1000 prog ~entry:"f" ~args:[]))

let test_alloca_stack_discipline () =
  (* Each call's allocas are released on return: a loop that calls a
     routine with a local array must not leak memory (observable through
     the base addresses staying put). *)
  let source =
    {|
fn g(): int {
  var a: int[100];
  a[1] = 7;
  return a[1];
}

fn f(): int {
  var s: int;
  var i: int;
  for i = 1 to 50 {
    s = s + g();
  }
  return s;
}
|}
  in
  Alcotest.(check int) "sum" 350 (Helpers.run_int ~entry:"f" (Helpers.compile source))

let test_alloca_init_value () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let base = Builder.alloca ~init:(Value.F 0.0) b 2 in
  let v = Builder.load b base in
  let one = Builder.float b 1.0 in
  Builder.ret b (Some (Builder.binop b Op.FAdd v one));
  let prog = Program.create [ Builder.finish b ] in
  Alcotest.(check (float 1e-9)) "float-filled" 1.0 (Helpers.run_float ~entry:"f" prog)

let test_counts_categories () =
  let source =
    {|
fn f(): int {
  var a: int[2];
  a[1] = 5;        // address arith + store
  var x: int = a[1];
  emit(x);
  return x;
}
|}
  in
  let prog = Helpers.compile source in
  let result = Epre_interp.Interp.run prog ~entry:"f" ~args:[] in
  let c = result.Epre_interp.Interp.counts in
  Alcotest.(check int) "stores" 1 c.Epre_interp.Counts.stores;
  Alcotest.(check int) "loads" 1 c.Epre_interp.Counts.loads;
  Alcotest.(check int) "allocas" 1 c.Epre_interp.Counts.allocas;
  Alcotest.(check int) "calls (emit)" 1 c.Epre_interp.Counts.calls;
  Alcotest.(check int) "branches (one return)" 1 c.Epre_interp.Counts.branches;
  Alcotest.(check bool) "total adds up" true
    (Epre_interp.Counts.total c
    = c.Epre_interp.Counts.arith + c.Epre_interp.Counts.consts
      + c.Epre_interp.Counts.copies + c.Epre_interp.Counts.loads
      + c.Epre_interp.Counts.stores + c.Epre_interp.Counts.branches
      + c.Epre_interp.Counts.calls + c.Epre_interp.Counts.allocas)

let test_emit_trace_order () =
  let source =
    "fn f(): int { var i: int; for i = 1 to 3 { emit(i * 10); } return 0; }"
  in
  let result = Epre_interp.Interp.run (Helpers.compile source) ~entry:"f" ~args:[] in
  Alcotest.(check (list int)) "trace" [ 10; 20; 30 ]
    (List.map Value.to_int result.Epre_interp.Interp.trace)

let test_phi_parallel_evaluation () =
  (* Two phis whose arguments reference each other's destinations must be
     read before either is written (swap in SSA form). *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let loop = Builder.new_block b in
  let exit = Builder.new_block b in
  let one = Builder.int b 1 in
  let two = Builder.int b 2 in
  Builder.jump b loop;
  Builder.switch b loop;
  let x = Builder.fresh_reg b in
  let y = Builder.fresh_reg b in
  Builder.emit b (Instr.Phi { dst = x; args = [ (0, one); (loop, y) ] });
  Builder.emit b (Instr.Phi { dst = y; args = [ (0, two); (loop, x) ] });
  Builder.cbr b ~cond:0 ~ifso:loop ~ifnot:exit;
  Builder.switch b exit;
  let ten = Builder.int b 10 in
  let t = Builder.binop b Op.Mul x ten in
  Builder.ret b (Some (Builder.binop b Op.Add t y));
  let r = Builder.finish b in
  r.Routine.in_ssa <- true;
  let prog = Program.create [ r ] in
  (* one iteration: after the back edge the phis swap to x=2, y=1 *)
  let run cond = Helpers.run_int ~entry:"f" ~args:[ Value.I cond ] prog in
  ignore (run 0);
  (* cond=0: loop not re-entered, x=1 y=2 -> 12. The cond register is the
     parameter; with 1 it loops forever, so only test the 0 case plus a
     self-check of the swap through the interp's phi logic below. *)
  Alcotest.(check int) "no swap" 12 (run 0)

let test_missing_routine () =
  let prog = Helpers.compile "fn f(): int { return 0; }" in
  Alcotest.check_raises "unknown entry"
    (Epre_interp.Interp.Runtime_error "no routine named nope") (fun () ->
      ignore (Epre_interp.Interp.run prog ~entry:"nope" ~args:[]))

let test_wrong_arity_call () =
  let prog = Helpers.compile "fn f(x: int): int { return x; }" in
  Alcotest.check_raises "arity"
    (Epre_interp.Interp.Runtime_error "f: expected 1 arguments, got 0") (fun () ->
      ignore (Epre_interp.Interp.run prog ~entry:"f" ~args:[]))

let suite =
  [
    Alcotest.test_case "arith semantics" `Quick test_arith;
    Alcotest.test_case "float conversions" `Quick test_float_conversions;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_reported;
    Alcotest.test_case "undefined register read" `Quick test_undefined_register_read;
    Alcotest.test_case "out-of-bounds store" `Quick test_out_of_bounds_store;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "alloca stack discipline" `Quick test_alloca_stack_discipline;
    Alcotest.test_case "alloca fill value" `Quick test_alloca_init_value;
    Alcotest.test_case "count categories" `Quick test_counts_categories;
    Alcotest.test_case "emit trace order" `Quick test_emit_trace_order;
    Alcotest.test_case "phi parallel evaluation" `Quick test_phi_parallel_evaluation;
    Alcotest.test_case "missing routine" `Quick test_missing_routine;
    Alcotest.test_case "call arity" `Quick test_wrong_arity_call;
  ]
