(** Golden checksums for every workload.

    The differential tests in the suite compare optimized against
    unoptimized behaviour; this file pins the unoptimized behaviour itself,
    so a silent semantic drift anywhere in the stack — lexer, parser,
    lowering, interpreter arithmetic — fails loudly. The values are exact
    (hexadecimal float literals). If a workload's source is deliberately
    changed, regenerate its entry with:

    {v
      dune exec bin/eprec.exe -- run <file> | head -1
    v}
    (or print [Value.to_string] of the return value). *)

open Epre_ir

let golden =
  [
    ("saxpy", "0x1.02p+13");
    ("dot", "0x1.4f5ap+16");
    ("sgemv", "-0x1.ae8p+13");
    ("sgemm", "0x1.76p+18");
    ("fmin", "0x1.00000020ecf9ap+1");
    ("zeroin", "0x1.0c1a4350819ep+1");
    ("spline", "0x1.5555555555556p+3");
    ("seval", "0x1.1aa08p+11");
    ("decomp", "0x1.18a60172cc1fap+48");
    ("solve", "0x1.df32ef9583c3ap+1");
    ("urand", "0x1.a0c319a32p+6");
    ("fehl", "0x1.8bb8d517b7a53p-1");
    ("tomcatv", "-0x1.8efbb0e5e6794p-4");
    ("heat", "0x1.63af7cbp+11");
    ("stencil3", "0x1.75171abb57af6p+10");
    ("iniset", "0x1.52acp+16");
    ("x21y21", "0x1.1194c06f02ed4p+8");
    ("hmoy", "0x1.758aa957e3e0bp+5");
    ("bilin", "0x1.ac6ffffffffffp+10");
    ("series", "0x1.fa11b8ff5008cp+9");
    ("addr_chain", "0x1.ab608p+21");
    ("pdead", "0x1.546ep+18");
    ("integr", "0x1.921fb54442d03p-1");
    ("newton", "0x1.41d0376573ee7p+7");
    ("tridiag", "0x1.218424f30e32bp+9");
    ("cholesky", "0x1.5742789788ac2p+5");
    ("sor", "0x1.124cf635e709bp+1");
    ("conv", "0x1.92627d27d27d4p+8");
    ("histogram", "18900");
    ("horner", "0x1.577998c7e2826p+7");
    ("power", "0x1.81442779994f3p+3");
    ("romberg", "0x1.3058b5e66416bp-1");
    ("mandel", "6044");
    ("gaussj", "0x1.429313063f9ecp-1");
    ("blocked", "-0x1.41cp+11");
    ("givens", "0x1.7bbb9cf035619p+7");
    ("blas1", "0x1.7e0f0079df60ep+10");
    ("wave", "0x1.1244e119207a8p+2");
    ("crout", "0x1.21f843e131fb5p+7");
    ("rk4", "0x1.538cd85e9c3e2p+2");
    ("secant", "0x1.7a695dd83d1acp-1");
    ("lagrange", "0x1.c52p+7");
    ("redblack", "0x1.aade591fb6668p+5");
    ("cumsum", "0x1.1eb851eb851ecp+3");
    ("transpose", "0x1.0e6dbap+18");
    ("stats", "0x1.3fd6e1535eabdp+6");
    ("sieve", "7813887");
    ("euclid", "1313");
    ("collatz", "4073");
    ("smooth3", "0x1.1844b66d902fdp+14");
  ]

let test_every_workload_has_a_golden_entry () =
  List.iter
    (fun w ->
      if not (List.mem_assoc w.Epre_workloads.Workloads.name golden) then
        Alcotest.failf "no golden checksum for %s" w.Epre_workloads.Workloads.name)
    Epre_workloads.Workloads.all;
  Alcotest.(check int) "entry count" (List.length Epre_workloads.Workloads.all)
    (List.length golden)

let check_one (name, expected) () =
  match Epre_workloads.Workloads.find name with
  | None -> Alcotest.failf "golden entry for unknown workload %s" name
  | Some w ->
    let prog = Epre_workloads.Workloads.compile w in
    let v, _, _ = Epre_workloads.Workloads.execute prog in
    (match v with
    | Some value -> Alcotest.(check string) name expected (Value.to_string value)
    | None -> Alcotest.failf "%s returned nothing" name)

let suite =
  Alcotest.test_case "every workload pinned" `Quick test_every_workload_has_a_golden_entry
  :: List.map
       (fun entry ->
         Alcotest.test_case ("checksum " ^ fst entry) `Quick (check_one entry))
       golden
