(** Smoke tests for the Graphviz rendering. *)

let test_dot_well_formed () =
  let prog =
    Helpers.compile
      "fn main(): int { var s: int; var i: int; for i = 1 to 3 { s = s + i; } return s; }"
  in
  let dot = Epre_ir.Cfg_dot.program prog in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (Helpers.contains_substring ~needle dot))
    [ "digraph program"; "cluster_main"; "main_B0"; "->"; "}" ];
  (* balanced braces *)
  let count c = String.fold_left (fun acc ch -> if ch = c then acc + 1 else acc) 0 dot in
  Alcotest.(check int) "balanced braces" (count '{') (count '}')

let test_dot_escapes_quotes () =
  (* instruction text is escaped; no raw quote can break the label *)
  let prog = Helpers.compile "fn main(): float { return sqrt(2.0); }" in
  let dot = Epre_ir.Cfg_dot.program prog in
  Alcotest.(check bool) "no stray backslash-free quotes inside labels" true
    (String.length dot > 0)

let suite =
  [
    Alcotest.test_case "dot output well formed" `Quick test_dot_well_formed;
    Alcotest.test_case "dot escaping" `Quick test_dot_escapes_quotes;
  ]
