(** Tests for [Epre_opt.Dvnt], the hash-based value-numbering extension. *)

open Epre_ir

let cleanup r =
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Coalesce.run r);
  ignore (Epre_opt.Clean.run r);
  Routine.validate r

let optimize prog =
  List.iter
    (fun r ->
      ignore (Epre_opt.Dvnt.run r);
      cleanup r)
    (Program.routines prog);
  prog

let count_binops r =
  Cfg.fold_blocks
    (fun acc b ->
      acc
      + List.length
          (List.filter (function Instr.Binop _ -> true | _ -> false) b.Block.instrs))
    0 r.Routine.cfg

let test_dominated_redundancy_removed () =
  let source =
    {|
fn f(x: int, y: int): int {
  var a: int = x + y;
  var b: int = x + y;
  var c: int = y + x;   // commutative hash
  return a + b + c;
}
|}
  in
  let prog = optimize (Helpers.compile source) in
  let r = Program.find_exn prog "f" in
  (* one x+y evaluation and the two sums of the return expression remain *)
  Alcotest.(check bool) "duplicates gone" true (count_binops r <= 3);
  Alcotest.(check int) "semantics" 21
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 3; Value.I 4 ] prog)

let test_constant_folding_through_copies () =
  let source =
    {|
fn f(): int {
  var a: int = 6;
  var b: int = a * 7;
  var c: int = b + 0;    // identity
  var d: int = c * 1;    // identity
  return d;
}
|}
  in
  let prog = optimize (Helpers.compile source) in
  let r = Program.find_exn prog "f" in
  Alcotest.(check int) "all arithmetic folded" 0 (count_binops r);
  Alcotest.(check int) "value" 42 (Helpers.run_int ~entry:"f" prog)

let test_across_branches_respects_dominance () =
  (* x+y in both arms of a diamond is NOT dominated by either: DVNT must
     keep both (that is Section 5.3's method-1 weakness, which this pass
     shares by design). *)
  let source =
    {|
fn f(p: int, x: int, y: int): int {
  var a: int;
  if (p > 0) {
    a = (x + y) * 2;
  } else {
    a = (x + y) * 3;
  }
  return a;
}
|}
  in
  let prog = Helpers.compile source in
  let before_then = Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 2; Value.I 3 ] prog in
  let prog = optimize prog in
  Alcotest.(check int) "semantics then" before_then
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 2; Value.I 3 ] prog);
  Alcotest.(check int) "semantics else" 15
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 0; Value.I 2; Value.I 3 ] prog)

let test_division_by_zero_not_folded () =
  let source = "fn f(): int { var z: int = 0; return 7 / z; }" in
  let prog = optimize (Helpers.compile source) in
  Alcotest.check_raises "runtime error survives"
    (Epre_interp.Interp.Runtime_error "f: division by zero") (fun () ->
      ignore (Epre_interp.Interp.run prog ~entry:"f" ~args:[]))

let test_loads_not_numbered () =
  let source =
    {|
fn f(a: int[4]): int {
  a[1] = 10;
  var u: int = a[1];
  a[1] = 20;
  var v: int = a[1];
  return u + v;
}

fn main(): int {
  var a: int[4];
  return f(a);
}
|}
  in
  let prog = optimize (Helpers.compile source) in
  Alcotest.(check int) "memory respected" 30 (Helpers.run_int prog)

let test_all_workloads_preserved () =
  List.iter
    (fun w ->
      let prog = Epre_workloads.Workloads.compile w in
      let p = Program.copy prog in
      ignore (optimize p);
      Helpers.check_same_behaviour ~what:(w.Epre_workloads.Workloads.name ^ "+dvnt") prog p)
    Epre_workloads.Workloads.all

let suite =
  [
    Alcotest.test_case "dominated redundancies" `Quick test_dominated_redundancy_removed;
    Alcotest.test_case "constant folding + identities" `Quick
      test_constant_folding_through_copies;
    Alcotest.test_case "diamond arms kept" `Quick test_across_branches_respects_dominance;
    Alcotest.test_case "1/0 preserved" `Quick test_division_by_zero_not_folded;
    Alcotest.test_case "loads opaque" `Quick test_loads_not_numbered;
    Alcotest.test_case "all workloads preserved" `Slow test_all_workloads_preserved;
  ]
