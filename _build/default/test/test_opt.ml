(** Tests for the baseline optimizer passes of [Epre_opt]: peephole, SCCP,
    DCE, coalescing, Clean, naming normalization, and the two CSE
    comparators. *)

open Epre_ir

let instrs_of r =
  Cfg.fold_blocks (fun acc b -> acc @ b.Block.instrs) [] r.Routine.cfg

let count_matching p r = List.length (List.filter p (instrs_of r))

let is_binop op = function Instr.Binop { op = o; _ } -> o = op | _ -> false

(* ------------------------------------------------------------------ *)
(* Peephole *)

let peephole_routine build =
  let b = Builder.start ~name:"f" ~nparams:2 in
  let ret = build b in
  Builder.ret b (Some ret);
  Builder.finish b

let test_peephole_constant_folding () =
  let r =
    peephole_routine (fun b ->
        let x = Builder.int b 6 in
        let y = Builder.int b 7 in
        Builder.binop b Op.Mul x y)
  in
  ignore (Epre_opt.Peephole.run r);
  Alcotest.(check int) "mul folded away" 0 (count_matching (is_binop Op.Mul) r);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "still 42" 42
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 0; Value.I 0 ] prog)

let test_peephole_identities () =
  let r =
    peephole_routine (fun b ->
        let zero = Builder.int b 0 in
        let one = Builder.int b 1 in
        let t1 = Builder.binop b Op.Add 0 zero in (* x + 0 -> x *)
        let t2 = Builder.binop b Op.Mul t1 one in (* x * 1 -> x *)
        let t3 = Builder.binop b Op.Mul t2 zero in (* x * 0 -> 0 *)
        let t4 = Builder.binop b Op.Sub 1 1 in (* y - y -> 0 *)
        Builder.binop b Op.Add t3 t4)
  in
  let rewrites = Epre_opt.Peephole.run r in
  Alcotest.(check bool) "several rewrites" true (rewrites >= 4);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "result is 0" 0
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 11; Value.I 5 ] prog)

let test_peephole_sub_reconstruction () =
  (* x + (-y) is rebuilt into x - y (undoing Frailey's rewrite). *)
  let r =
    peephole_routine (fun b ->
        let n = Builder.unop b Op.Neg 1 in
        Builder.binop b Op.Add 0 n)
  in
  ignore (Epre_opt.Peephole.run r);
  Alcotest.(check int) "a sub appears" 1 (count_matching (is_binop Op.Sub) r);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "semantics" 4
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 9; Value.I 5 ] prog)

let test_peephole_mul_to_shift () =
  let r =
    peephole_routine (fun b ->
        let c = Builder.int b 8 in
        Builder.binop b Op.Mul 0 c)
  in
  ignore (Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r);
  Alcotest.(check int) "shift appears" 1 (count_matching (is_binop Op.Shl) r);
  Alcotest.(check int) "mul gone" 0 (count_matching (is_binop Op.Mul) r);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "5*8" 40
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 5; Value.I 0 ] prog)

let test_peephole_mul_to_shift_off_by_default () =
  let r =
    peephole_routine (fun b ->
        let c = Builder.int b 8 in
        Builder.binop b Op.Mul 0 c)
  in
  ignore (Epre_opt.Peephole.run r);
  Alcotest.(check int) "mul stays" 1 (count_matching (is_binop Op.Mul) r)

let test_peephole_constant_branch () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let b1 = Builder.new_block b in
  let b2 = Builder.new_block b in
  let c = Builder.int b 1 in
  Builder.cbr b ~cond:c ~ifso:b1 ~ifnot:b2;
  Builder.switch b b1;
  Builder.ret b (Some (Builder.int b 10));
  Builder.switch b b2;
  Builder.ret b (Some (Builder.int b 20));
  let r = Builder.finish b in
  ignore (Epre_opt.Peephole.run r);
  (match (Cfg.block r.Routine.cfg 0).Block.term with
  | Instr.Jump l -> Alcotest.(check int) "jumps to then" b1 l
  | _ -> Alcotest.fail "branch not folded")

let test_peephole_no_fold_division_by_zero () =
  (* 1/0 must NOT be folded away: the runtime error is the semantics. *)
  let r =
    peephole_routine (fun b ->
        let x = Builder.int b 1 in
        let z = Builder.int b 0 in
        Builder.binop b Op.Div x z)
  in
  ignore (Epre_opt.Peephole.run r);
  Alcotest.(check int) "div kept" 1 (count_matching (is_binop Op.Div) r)

(* ------------------------------------------------------------------ *)
(* SCCP *)

let test_sccp_folds_through_copies () =
  let source =
    {|
fn f(): int {
  var a: int = 3;
  var b: int = a + 4;
  var c: int = b * 2;
  return c;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Coalesce.run r);
  Alcotest.(check int) "all arithmetic folded" 0
    (count_matching (function Instr.Binop _ -> true | _ -> false) r);
  Alcotest.(check int) "value" 14 (Helpers.run_int ~entry:"f" prog)

let test_sccp_conditional_constants () =
  (* Wegman-Zadeck's signature case: the condition is constant, so only one
     arm executes and x is constant after the join. *)
  let source =
    {|
fn f(): int {
  var p: int = 1;
  var x: int;
  if (p > 0) {
    x = 5;
  } else {
    x = 77;
  }
  return x + 1;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Clean.run r);
  Alcotest.(check int) "add folded through the branch" 0
    (count_matching (is_binop Op.Add) r);
  Alcotest.(check int) "value" 6 (Helpers.run_int ~entry:"f" prog)

let test_sccp_removes_unreachable_code () =
  let source =
    {|
fn f(): int {
  var p: int = 0;
  var s: int = 1;
  if (p > 0) {
    s = 100;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Clean.run r);
  Alcotest.(check int) "value" 1 (Helpers.run_int ~entry:"f" prog);
  (* the then-branch block is gone *)
  let blocks = Cfg.fold_blocks (fun acc _ -> acc + 1) 0 r.Routine.cfg in
  Alcotest.(check int) "single block remains" 1 blocks

let test_sccp_loop_invariant_phi () =
  (* x is 7 around the loop: the phi meets 7 with 7 and stays constant. *)
  let source =
    {|
fn f(n: int): int {
  var x: int = 7;
  var s: int;
  var i: int;
  for i = 1 to n {
    s = s + x;
    x = 7;
  }
  return s + x;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Constprop.run r);
  Alcotest.(check int) "value" 42
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 5 ] prog)

(* ------------------------------------------------------------------ *)
(* DCE *)

let test_dce_removes_dead_arithmetic () =
  let b = Builder.start ~name:"f" ~nparams:1 in
  let dead1 = Builder.binop b Op.Add 0 0 in
  let _dead2 = Builder.binop b Op.Mul dead1 dead1 in
  let live = Builder.binop b Op.Add 0 0 in
  Builder.ret b (Some live);
  let r = Builder.finish b in
  let removed = Epre_opt.Dce.run r in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check int) "one op left" 1
    (count_matching (function Instr.Binop _ -> true | _ -> false) r)

let test_dce_keeps_stores_and_calls () =
  let source =
    {|
fn f(): int {
  var a: int[4];
  a[1] = 9;             // store must stay
  emit(3);              // call must stay
  var dead: int = 5 * 5;
  return a[1];
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Dce.run r);
  Alcotest.(check int) "store kept" 1
    (count_matching (function Instr.Store _ -> true | _ -> false) r);
  Alcotest.(check int) "call kept" 1
    (count_matching (function Instr.Call _ -> true | _ -> false) r);
  Alcotest.(check int) "value preserved" 9 (Helpers.run_int ~entry:"f" prog)

let test_dce_removes_dead_load_chain () =
  let source =
    {|
fn f(): int {
  var a: int[4];
  a[2] = 1;
  var dead: int = a[2] + a[3];   // load feeding nothing
  return 5;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Dce.run r);
  Alcotest.(check int) "loads removed" 0
    (count_matching (function Instr.Load _ -> true | _ -> false) r);
  Alcotest.(check int) "value" 5 (Helpers.run_int ~entry:"f" prog)

(* ------------------------------------------------------------------ *)
(* Coalesce *)

let test_coalesce_removes_copy_chain () =
  let b = Builder.start ~name:"f" ~nparams:1 in
  let t1 = Builder.copy b 0 in
  let t2 = Builder.copy b t1 in
  let t3 = Builder.copy b t2 in
  Builder.ret b (Some t3);
  let r = Builder.finish b in
  let removed = Epre_opt.Coalesce.run r in
  Alcotest.(check int) "all three removed" 3 removed;
  let prog = Program.create [ r ] in
  Alcotest.(check int) "identity" 13 (Helpers.run_int ~entry:"f" ~args:[ Value.I 13 ] prog)

let test_coalesce_respects_interference () =
  (* t <- x; x <- x + 1; use t and x: t interferes with the new x. *)
  let b = Builder.start ~name:"f" ~nparams:1 in
  let t = Builder.copy b 0 in
  let one = Builder.int b 1 in
  let x2 = Builder.binop b Op.Add 0 one in
  Builder.copy_to b ~dst:0 ~src:x2;
  let sum = Builder.binop b Op.Mul t 0 in
  Builder.ret b (Some sum);
  let r = Builder.finish b in
  ignore (Epre_opt.Coalesce.run r);
  let prog = Program.create [ r ] in
  (* old * new = 4 * 5 *)
  Alcotest.(check int) "old value preserved" 20
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 4 ] prog)

(* ------------------------------------------------------------------ *)
(* Clean *)

let test_clean_removes_empty_blocks () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let hop1 = Builder.new_block b in
  let hop2 = Builder.new_block b in
  let final = Builder.new_block b in
  Builder.jump b hop1;
  Builder.switch b hop1;
  Builder.jump b hop2;
  Builder.switch b hop2;
  Builder.jump b final;
  Builder.switch b final;
  Builder.ret b (Some (Builder.int b 3));
  let r = Builder.finish b in
  ignore (Epre_opt.Clean.run r);
  let blocks = Cfg.fold_blocks (fun acc _ -> acc + 1) 0 r.Routine.cfg in
  Alcotest.(check int) "merged to a single block" 1 blocks;
  let prog = Program.create [ r ] in
  Alcotest.(check int) "still 3" 3 (Helpers.run_int ~entry:"f" prog)

let test_clean_folds_same_target_branch () =
  let b = Builder.start ~name:"f" ~nparams:1 in
  let next = Builder.new_block b in
  Builder.cbr b ~cond:0 ~ifso:next ~ifnot:next;
  Builder.switch b next;
  Builder.ret b (Some (Builder.int b 1));
  let r = Builder.finish b in
  ignore (Epre_opt.Clean.run r);
  Cfg.iter_blocks
    (fun blk ->
      match blk.Block.term with
      | Instr.Cbr _ -> Alcotest.fail "cbr should have been folded"
      | _ -> ())
    r.Routine.cfg

let test_clean_removes_unreachable () =
  let b = Builder.start ~name:"f" ~nparams:0 in
  let orphan = Builder.new_block b in
  Builder.ret b None;
  Builder.switch b orphan;
  Builder.ret b None;
  let r = Builder.finish b in
  ignore (Epre_opt.Clean.run r);
  Alcotest.(check bool) "orphan gone" false (Cfg.mem r.Routine.cfg orphan)

(* ------------------------------------------------------------------ *)
(* Naming *)

let test_naming_splits_conflicting_target () =
  (* The same register defined by two different expressions: Naming gives
     each expression its own canonical name. *)
  let b = Builder.start ~name:"f" ~nparams:2 in
  let t = Builder.fresh_reg b in
  Builder.emit b (Instr.Binop { op = Op.Add; dst = t; a = 0; b = 1 });
  Builder.emit b (Instr.Binop { op = Op.Mul; dst = t; a = 0; b = 1 });
  Builder.ret b (Some t);
  let r = Builder.finish b in
  let rewrites = Epre_opt.Naming.run r in
  Alcotest.(check bool) "rewrote" true (rewrites > 0);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "mul wins" 12
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 3; Value.I 4 ] prog);
  (* discipline now holds: running again changes nothing *)
  Alcotest.(check int) "idempotent" 0 (Epre_opt.Naming.run r)

let test_naming_shares_name_across_blocks () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  let t1 = Builder.binop b Op.Add 0 1 in
  let b2 = Builder.new_block b in
  Builder.jump b b2;
  Builder.switch b b2;
  let t2 = Builder.binop b Op.Add 0 1 in
  let s = Builder.binop b Op.Add t1 t2 in
  Builder.ret b (Some s);
  let r = Builder.finish b in
  ignore (Epre_opt.Naming.run r);
  (* both x+y evaluations now target one register *)
  let dsts =
    List.filter_map
      (function
        | Instr.Binop { op = Op.Add; dst; a = 0; b = 1; _ } -> Some dst
        | _ -> None)
      (instrs_of r)
  in
  (match dsts with
  | [ d1; d2 ] -> Alcotest.(check int) "same name" d1 d2
  | _ -> Alcotest.failf "expected two x+y evaluations, got %d" (List.length dsts));
  let prog = Program.create [ r ] in
  Alcotest.(check int) "semantics" 14
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 3; Value.I 4 ] prog)

(* ------------------------------------------------------------------ *)
(* CSE comparators *)

let join_source =
  {|
fn f(p: int, x: int, y: int): int {
  var a: int;
  if (p > 0) {
    a = x + y;
  } else {
    a = (x + y) * 3;
  }
  return a + (x + y);
}
|}

let test_cse_dom_misses_join () =
  (* Section 5.3: method 1 "cannot remove the redundancy ... where x + y
     occurs in each clause of an if-then-else and again in the block that
     follows". *)
  let prog = Helpers.compile join_source in
  let r = Program.find_exn prog "f" in
  let deleted = Epre_opt.Cse_dom.run r in
  Routine.validate r;
  (* the join's x+y is NOT deletable by dominance; only same-branch
     duplicates (here: none beyond constants) are. *)
  let adds = count_matching (is_binop Op.Add) r in
  Alcotest.(check bool) "join add survives" true (adds >= 3);
  ignore deleted;
  Alcotest.(check int) "semantics" 12
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 2; Value.I 4 ] prog)

let test_cse_avail_catches_join () =
  let prog = Helpers.compile join_source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Naming.run r);
  let deleted = Epre_opt.Cse_avail.run r in
  Routine.validate r;
  Alcotest.(check bool) "join x+y deleted" true (deleted >= 1);
  Alcotest.(check int) "semantics" 12
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 1; Value.I 2; Value.I 4 ] prog)

let test_cse_dom_removes_dominated_recomputation () =
  let source =
    {|
fn f(x: int, y: int): int {
  var a: int = x + y;
  var b: int = x + y;    // dominated by the first
  return a * b;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  let deleted = Epre_opt.Cse_dom.run r in
  Alcotest.(check bool) "recomputation deleted" true (deleted >= 1);
  Alcotest.(check int) "semantics" 49
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 3; Value.I 4 ] prog)

let test_cse_avail_store_kills_load () =
  (* A load is not available across a store: deleting it would be wrong. *)
  let source =
    {|
fn f(): int {
  var a: int[4];
  a[1] = 10;
  var u: int = a[1];
  a[1] = 20;
  var v: int = a[1];   // must reload
  return u + v;
}
|}
  in
  let prog = Helpers.compile source in
  let r = Program.find_exn prog "f" in
  ignore (Epre_opt.Naming.run r);
  ignore (Epre_opt.Cse_avail.run r);
  Routine.validate r;
  Alcotest.(check int) "reload observed" 30 (Helpers.run_int ~entry:"f" prog)

let suite =
  [
    Alcotest.test_case "peephole: constant folding" `Quick test_peephole_constant_folding;
    Alcotest.test_case "peephole: identities" `Quick test_peephole_identities;
    Alcotest.test_case "peephole: add+neg -> sub" `Quick test_peephole_sub_reconstruction;
    Alcotest.test_case "peephole: mul -> shift" `Quick test_peephole_mul_to_shift;
    Alcotest.test_case "peephole: shift rewrite gated" `Quick test_peephole_mul_to_shift_off_by_default;
    Alcotest.test_case "peephole: constant branches" `Quick test_peephole_constant_branch;
    Alcotest.test_case "peephole: 1/0 not folded" `Quick test_peephole_no_fold_division_by_zero;
    Alcotest.test_case "sccp: folds chains" `Quick test_sccp_folds_through_copies;
    Alcotest.test_case "sccp: conditional constants" `Quick test_sccp_conditional_constants;
    Alcotest.test_case "sccp: unreachable code" `Quick test_sccp_removes_unreachable_code;
    Alcotest.test_case "sccp: loop-invariant phi" `Quick test_sccp_loop_invariant_phi;
    Alcotest.test_case "dce: dead arithmetic" `Quick test_dce_removes_dead_arithmetic;
    Alcotest.test_case "dce: stores/calls kept" `Quick test_dce_keeps_stores_and_calls;
    Alcotest.test_case "dce: dead loads removed" `Quick test_dce_removes_dead_load_chain;
    Alcotest.test_case "coalesce: copy chains" `Quick test_coalesce_removes_copy_chain;
    Alcotest.test_case "coalesce: interference respected" `Quick test_coalesce_respects_interference;
    Alcotest.test_case "clean: empty blocks" `Quick test_clean_removes_empty_blocks;
    Alcotest.test_case "clean: same-target cbr" `Quick test_clean_folds_same_target_branch;
    Alcotest.test_case "clean: unreachable blocks" `Quick test_clean_removes_unreachable;
    Alcotest.test_case "naming: conflicting targets split" `Quick test_naming_splits_conflicting_target;
    Alcotest.test_case "naming: one name across blocks" `Quick test_naming_shares_name_across_blocks;
    Alcotest.test_case "cse_dom: misses the join case" `Quick test_cse_dom_misses_join;
    Alcotest.test_case "cse_avail: catches the join case" `Quick test_cse_avail_catches_join;
    Alcotest.test_case "cse_dom: dominated recomputation" `Quick test_cse_dom_removes_dominated_recomputation;
    Alcotest.test_case "cse_avail: stores kill loads" `Quick test_cse_avail_store_kills_load;
  ]

(* Regression: sub reconstruction must not use a stale negation — the
   negated operand can be redefined between the neg and the add. *)
let test_peephole_stale_neg_not_reconstructed () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  (* s <- neg r1; r1 <- 100; t <- r0 + s  — must NOT become r0 - r1 *)
  let s = Builder.unop b Op.Neg 1 in
  let hundred = Builder.int b 100 in
  Builder.copy_to b ~dst:1 ~src:hundred;
  let t = Builder.binop b Op.Add 0 s in
  Builder.ret b (Some t);
  let r = Builder.finish b in
  ignore (Epre_opt.Peephole.run r);
  let prog = Program.create [ r ] in
  (* f(10, 3) = 10 + (-3) = 7; the stale rewrite would give 10 - 100 *)
  Alcotest.(check int) "stale neg not used" 7
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 10; Value.I 3 ] prog)

let test_peephole_fresh_neg_still_reconstructed () =
  let b = Builder.start ~name:"f" ~nparams:2 in
  let s = Builder.unop b Op.Neg 1 in
  let t = Builder.binop b Op.Add 0 s in
  Builder.ret b (Some t);
  let r = Builder.finish b in
  ignore (Epre_opt.Peephole.run r);
  Alcotest.(check int) "sub reconstructed" 1 (count_matching (is_binop Op.Sub) r);
  let prog = Program.create [ r ] in
  Alcotest.(check int) "semantics" 7
    (Helpers.run_int ~entry:"f" ~args:[ Value.I 10; Value.I 3 ] prog)

let suite =
  suite
  @ [
      Alcotest.test_case "peephole: stale negation rejected" `Quick
        test_peephole_stale_neg_not_reconstructed;
      Alcotest.test_case "peephole: fresh negation reconstructed" `Quick
        test_peephole_fresh_neg_still_reconstructed;
    ]
