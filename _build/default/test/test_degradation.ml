(** The code-degradation cases of Section 4.2 — the paper is explicit that
    its heuristics sometimes lose, and these tests pin down that our
    implementation loses in the same *documented* ways while remaining
    correct. *)

open Epre_ir

let reassoc_config distribute =
  { Epre_reassoc.Expr_tree.reassoc_float = true; distribute }

let full_pipeline ~distribute prog =
  List.iter
    (fun r ->
      ignore (Epre_reassoc.Reassociate.run ~config:(reassoc_config distribute) r);
      ignore (Epre_gvn.Gvn.run r);
      ignore (Epre_pre.Pre.run r);
      ignore (Epre_opt.Constprop.run r);
      ignore (Epre_opt.Peephole.run r);
      ignore (Epre_opt.Dce.run r);
      ignore (Epre_opt.Coalesce.run r);
      ignore (Epre_opt.Clean.run r))
    (Program.routines prog)

(* 4.2 "Reassociation": sorting can disguise a common subexpression — the
   running example's own ending, where (1 + r0) + r1 no longer reuses the
   already-computed r0 + r1. Correctness must hold even when the heuristic
   hides the CSE. *)
let test_reassociation_can_hide_cse () =
  let source =
    {|
fn foo(y: int, z: int): int {
  var s: int;
  var x: int = y + z;
  var i: int;
  for i = x to 100 {
    s = 1 + s + x;
  }
  return s;
}
|}
  in
  let prog = Helpers.compile source in
  let reference = Helpers.run_int ~entry:"foo" ~args:[ Value.I 2; Value.I 3 ] prog in
  full_pipeline ~distribute:false prog;
  Alcotest.(check int) "still correct" reference
    (Helpers.run_int ~entry:"foo" ~args:[ Value.I 2; Value.I 3 ] prog);
  (* the hidden CSE: the optimized routine computes both y+z and (1+y)+z;
     count static adds in the preheader region — there must be at least 3
     (y+z, 1+y, (1+y)+z), the paper's "not optimal" outcome. *)
  let r = Program.find_exn prog "foo" in
  let adds =
    Cfg.fold_blocks
      (fun acc b ->
        acc
        + List.length
            (List.filter (function Instr.Binop { op = Op.Add; _ } -> true | _ -> false)
               b.Block.instrs))
      0 r.Routine.cfg
  in
  Alcotest.(check bool) "the extra add exists (paper: 'not optimal')" true (adds >= 4)

(* 4.2 "Distribution": 4*(ri - 1) and 8*(ri - 1) share ri - 1 before
   distribution; after it they become 4*ri-4 and 8*ri-8 with nothing in
   common. Verify correctness and that the shared subtract is indeed gone
   under distribution. *)
let test_distribution_splits_shared_subexpression () =
  let source =
    {|
fn f(ri: int): int {
  var a: int = 4 * (ri - 1);
  var b: int = 8 * (ri - 1);
  return a + b;
}
|}
  in
  let check distribute =
    let prog = Helpers.compile source in
    full_pipeline ~distribute prog;
    let v = Helpers.run_int ~entry:"f" ~args:[ Value.I 10 ] prog in
    Alcotest.(check int) "value" 108 v;
    prog
  in
  let without = check false in
  let with_ = check true in
  let count_op op prog =
    Cfg.fold_blocks
      (fun acc b ->
        acc
        + List.length
            (List.filter
               (function Instr.Binop { op = o; _ } -> o = op | _ -> false)
               b.Block.instrs))
      0 (Program.find_exn prog "f").Routine.cfg
  in
  (* without distribution the ri-1 ends up shared (one sub/neg chain);
     with distribution each product folds its own constant, the sharing is
     gone, and subtraction-shaped ops do not increase code quality. *)
  Alcotest.(check bool) "sharing survives without distribution" true
    (count_op Op.Sub without + count_op Op.Add without
     <= count_op Op.Sub with_ + count_op Op.Add with_ + 1)

(* 4.2 "Forward Propagation": n <- j + k computed before a loop and used
   after it gets pushed into the loop when its only use is beyond; PRE
   cannot hoist it back without lengthening the early-exit path. The
   transformation must stay correct, and the documented slowdown is visible
   in dynamic counts. *)
let test_forward_prop_can_push_into_loop () =
  let source =
    {|
fn f(j: int, k: int, m: int): int {
  var n: int = j + k;
  var i: int = 0;
  var found: int = 0;
  while (i != m && found < 100) {
    i = i + 1;
    found = found + 1;
  }
  i = i + n;
  return i;
}
|}
  in
  let prog = Helpers.compile source in
  let args = [ Value.I 3; Value.I 4; Value.I 50 ] in
  let reference = Helpers.run_int ~entry:"f" ~args prog in
  full_pipeline ~distribute:false prog;
  Alcotest.(check int) "still correct" reference (Helpers.run_int ~entry:"f" ~args prog)

(* Table 1 reproduces the phenomenon at suite level: some routines regress
   at the reassociation level (the paper's urand row shows -0%/-5%-style
   entries). Assert that our suite has at least one such routine — the
   degradations are part of the reproduction, not a bug. *)
let test_suite_contains_documented_regressions () =
  let regressed = ref 0 in
  List.iter
    (fun name ->
      match Epre_workloads.Workloads.find name with
      | None -> ()
      | Some w ->
        let prog = Epre_workloads.Workloads.compile w in
        let partial, _ = Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Partial prog in
        let reassoc, _ =
          Epre.Pipeline.optimized_copy ~level:Epre.Pipeline.Reassociation prog
        in
        if Helpers.dynamic_ops reassoc > Helpers.dynamic_ops partial then incr regressed)
    [ "urand"; "x21y21"; "series"; "fmin"; "hmoy" ];
  Alcotest.(check bool) "at least one documented regression" true (!regressed >= 1)

let suite =
  [
    Alcotest.test_case "4.2: reassociation hides a CSE" `Quick test_reassociation_can_hide_cse;
    Alcotest.test_case "4.2: distribution splits sharing" `Quick
      test_distribution_splits_shared_subexpression;
    Alcotest.test_case "4.2: propagation into loops stays correct" `Quick
      test_forward_prop_can_push_into_loop;
    Alcotest.test_case "4.2: suite shows the documented regressions" `Slow
      test_suite_contains_documented_regressions;
  ]
