(** The paper's running example (Figures 2-10), as assertions.

    [examples/paper_example.ml] prints the stages; this test pins down the
    properties each figure demonstrates:

    - Figure 4: pruned SSA has exactly the paper's phi structure (two loop
      phis, one exit phi) and the documented ranks;
    - Figure 7: reassociation sorts the loop sum so the low-ranked
      [1 + y + z] prefix exists as a chain;
    - Figure 8: GVN gives the two copies of each propagated expression the
      same names;
    - Figure 9: PRE hoists the invariant chain out of the loop;
    - Figure 10: after coalescing the loop body is as small as the paper's
      (and the routine still computes the right sums). *)

open Epre_ir

let source =
  {|
fn foo(y: int, z: int): int {
  var s: int;
  var x: int = y + z;
  var i: int;
  for i = x to 100 {
    s = 1 + s + x;
  }
  return s;
}
|}

(* Reference semantics, computed directly. *)
let reference y z =
  let x = y + z in
  let s = ref 0 in
  let i = ref x in
  while !i <= 100 do
    s := 1 + !s + x;
    incr i
  done;
  !s

let fresh_foo () = Program.find_exn (Helpers.compile source) "foo"

let run_foo r y z =
  Helpers.run_int ~entry:"foo"
    ~args:[ Value.I y; Value.I z ]
    (Program.create [ r ])

let test_figure4_ssa_shape () =
  let r = Epre_ssa.Ssa.build (fresh_foo ()) in
  Epre_ssa.Ssa_check.check r;
  let phis =
    Cfg.fold_blocks (fun acc b -> acc + List.length (Block.phis b)) 0 r.Routine.cfg
  in
  (* two phis at the loop header (s, i) and one at the exit merge (the
     return value reaches the exit from the guard and from the loop) *)
  Alcotest.(check int) "three phis" 3 phis

let test_figure4_ranks () =
  let r = Epre_ssa.Ssa.build (fresh_foo ()) in
  let ranks = Epre_reassoc.Rank.compute r in
  (* the paper: rank(r2)=0 for the constant, rank 1 for params and y+z,
     rank 2 for the loop-varying values, rank 3 for the exit phi *)
  let by_rank = Hashtbl.create 8 in
  for v = 0 to r.Routine.next_reg - 1 do
    let k = Epre_reassoc.Rank.of_reg ranks v in
    Hashtbl.replace by_rank k (1 + Option.value ~default:0 (Hashtbl.find_opt by_rank k))
  done;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "some value has rank %d" k)
        true
        (Hashtbl.mem by_rank k))
    [ 0; 1; 2; 3 ]

let full_pipeline r =
  ignore
    (Epre_reassoc.Reassociate.run
       ~config:{ Epre_reassoc.Expr_tree.reassoc_float = true; distribute = false }
       r);
  ignore (Epre_gvn.Gvn.run r);
  ignore (Epre_pre.Pre.run r);
  ignore (Epre_opt.Constprop.run r);
  ignore (Epre_opt.Peephole.run r);
  ignore (Epre_opt.Dce.run r);
  ignore (Epre_opt.Coalesce.run r);
  ignore (Epre_opt.Clean.run r);
  Routine.validate r

(* Blocks on a cycle, found as strongly-connected members via Loops. *)
let loop_blocks r =
  let loops = Epre_analysis.Loops.compute r.Routine.cfg in
  List.concat_map (fun l -> l.Epre_analysis.Loops.body) (Epre_analysis.Loops.loops loops)

let test_figure9_invariants_hoisted () =
  let r = fresh_foo () in
  full_pipeline r;
  (* After the full pipeline the loop must contain no evaluation of the
     invariant chain: every Binop inside loop blocks involves loop-varying
     operands only — concretely, the loop carries at most 2 adds (the sum
     accumulation and the induction increment) and 1 compare. *)
  let in_loop = loop_blocks r in
  let adds = ref 0 and cmps = ref 0 and others = ref 0 in
  List.iter
    (fun id ->
      List.iter
        (fun i ->
          match i with
          | Instr.Binop { op = Op.Add; _ } -> incr adds
          | Instr.Binop { op = Op.Le; _ } -> incr cmps
          | Instr.Binop _ | Instr.Unop _ -> incr others
          | _ -> ())
        (Cfg.block r.Routine.cfg id).Block.instrs)
    in_loop;
  Alcotest.(check bool) "loop not empty" true (in_loop <> []);
  Alcotest.(check bool) (Printf.sprintf "at most 2 adds in loop (%d)" !adds) true (!adds <= 2);
  Alcotest.(check bool) (Printf.sprintf "at most 1 compare (%d)" !cmps) true (!cmps <= 1);
  Alcotest.(check int) "no other arithmetic" 0 !others

let test_figure10_semantics_preserved () =
  let r = fresh_foo () in
  full_pipeline r;
  List.iter
    (fun (y, z) ->
      Alcotest.(check int)
        (Printf.sprintf "foo(%d, %d)" y z)
        (reference y z) (run_foo r y z))
    [ (2, 3); (0, 0); (50, 50); (101, 5); (200, 0) ]

let test_paper_speedup () =
  (* The paper's sequence "reduced the length of the loop by 1 operation
     without increasing the length of any path": our pipeline must beat the
     baseline pipeline on the looping input and not lose on the
     zero-trip input. *)
  let dyn level y z =
    let prog = Helpers.compile source in
    let p, _ = Epre.Pipeline.optimized_copy ~level prog in
    Helpers.dynamic_ops ~entry:"foo" ~args:[ Value.I y; Value.I z ] p
  in
  Alcotest.(check bool) "looping input faster" true
    (dyn Epre.Pipeline.Reassociation 2 3 < dyn Epre.Pipeline.Baseline 2 3);
  Alcotest.(check bool) "zero-trip input no slower" true
    (dyn Epre.Pipeline.Reassociation 200 0 <= dyn Epre.Pipeline.Baseline 200 0)

let suite =
  [
    Alcotest.test_case "figure 4: pruned SSA shape" `Quick test_figure4_ssa_shape;
    Alcotest.test_case "figure 4: rank structure" `Quick test_figure4_ranks;
    Alcotest.test_case "figure 9: invariants hoisted" `Quick test_figure9_invariants_hoisted;
    Alcotest.test_case "figure 10: semantics across inputs" `Quick
      test_figure10_semantics_preserved;
    Alcotest.test_case "net speedup, no path lengthened" `Quick test_paper_speedup;
  ]
