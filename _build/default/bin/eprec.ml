(* eprec: command-line driver for the Effective PRE optimizer.

   Subcommands:
     compile   compile a source file, optimize at a chosen level, dump ILOC
     run       compile, optimize, interpret; report result and dynamic counts
     table1    regenerate the paper's Table 1
     table2    regenerate the paper's Table 2 (forward-propagation expansion)
     hierarchy regenerate the Section 5.3 CSE-hierarchy comparison
     workloads list the built-in workload suite *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_source path =
  try Epre_frontend.Frontend.compile_string (read_file path) with
  | Epre_frontend.Frontend.Error { line; message } ->
    Fmt.epr "%s:%d: %s@." path line message;
    exit 1

let level_conv =
  let parse s =
    match Epre.Pipeline.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown level %S" s))
  in
  let print ppf l = Fmt.string ppf (Epre.Pipeline.level_to_string l) in
  Arg.conv (parse, print)

let level_arg =
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "O"; "level" ] ~docv:"LEVEL"
        ~doc:
          "Optimization level: $(b,baseline), $(b,partial), \
           $(b,reassociation) or $(b,distribution). Omit for unoptimized \
           output.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Dump the IR after every optimizer pass (to stderr).")

let passes_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "passes" ] ~docv:"P1,P2,..."
        ~doc:
          "Run a custom comma-separated pass sequence instead of a level; \
           see $(b,eprec passes) for the registry.")

let optimize ?level ?passes ~trace prog =
  (match passes with
  | Some spec -> begin
    match Epre.Passes.parse_sequence spec with
    | Ok ps -> Epre.Passes.run_sequence ps prog
    | Error name ->
      Fmt.epr "unknown pass %S (see `eprec passes`)@." name;
      exit 1
  end
  | None -> ());
  match level with
  | Some level when passes = None ->
    let hooks =
      if trace then
        { Epre.Pipeline.dump =
            (fun pass r ->
              Fmt.epr "=== after %s ===@.%a@.@." pass Epre_ir.Pp.routine r)
        }
      else Epre.Pipeline.no_hooks
    in
    ignore (Epre.Pipeline.optimize ~hooks ~level prog);
    prog
  | Some _ | None -> prog

let format_arg =
  Arg.(
    value
    & opt (enum [ ("pretty", `Pretty); ("text", `Text); ("dot", `Dot) ]) `Pretty
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output syntax: $(b,pretty) (the paper-style printer), $(b,text) \
           (the round-tripping Ir_text format) or $(b,dot) (Graphviz).")

let compile_cmd =
  let doc = "compile a source file and print the resulting ILOC" in
  let run file level trace passes format =
    let prog = optimize ?level ?passes ~trace (compile_source file) in
    match format with
    | `Pretty -> Fmt.pr "%a@." Epre_ir.Pp.program prog
    | `Text -> print_string (Epre_ir.Ir_text.print_program prog)
    | `Dot -> print_string (Epre_ir.Cfg_dot.program prog)
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ level_arg $ trace_arg $ passes_arg $ format_arg)

let run_cmd =
  let doc = "compile, optimize and interpret a program (entry: main)" in
  let entry_arg =
    Arg.(value & opt string "main" & info [ "entry" ] ~docv:"NAME" ~doc:"Entry routine.")
  in
  let run file level trace passes entry =
    let prog = optimize ?level ?passes ~trace (compile_source file) in
    match Epre_interp.Interp.run prog ~entry ~args:[] with
    | result ->
      List.iter
        (fun v -> Fmt.pr "emit %a@." Epre_ir.Value.pp v)
        result.Epre_interp.Interp.trace;
      (match result.Epre_interp.Interp.return_value with
      | Some v -> Fmt.pr "result: %a@." Epre_ir.Value.pp v
      | None -> ());
      Fmt.pr "dynamic operations: %a@." Epre_interp.Counts.pp
        result.Epre_interp.Interp.counts
    | exception Epre_interp.Interp.Runtime_error msg ->
      Fmt.epr "runtime error: %s@." msg;
      exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ level_arg $ trace_arg $ passes_arg $ entry_arg)

let table1_cmd =
  let doc = "regenerate Table 1 (dynamic counts at all optimization levels)" in
  let run () = print_string (Epre.Experiments.render_table1 (Epre.Experiments.table1 ())) in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ const ())

let table2_cmd =
  let doc = "regenerate Table 2 (code expansion from forward propagation)" in
  let run () = print_string (Epre.Experiments.render_table2 (Epre.Experiments.table2 ())) in
  Cmd.v (Cmd.info "table2" ~doc) Term.(const run $ const ())

let hierarchy_cmd =
  let doc = "regenerate the Section 5.3 redundancy-elimination hierarchy" in
  let run () =
    print_string (Epre.Experiments.render_hierarchy (Epre.Experiments.hierarchy ()))
  in
  Cmd.v (Cmd.info "hierarchy" ~doc) Term.(const run $ const ())

let passes_cmd =
  let doc = "list the optimizer pass registry (for --passes)" in
  let run () =
    List.iter
      (fun p ->
        Printf.printf "%-16s %s\n" p.Epre.Passes.name p.Epre.Passes.description)
      Epre.Passes.all
  in
  Cmd.v (Cmd.info "passes" ~doc) Term.(const run $ const ())

let workloads_cmd =
  let doc = "list the built-in workload suite" in
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-12s %s\n" w.Epre_workloads.Workloads.name
          w.Epre_workloads.Workloads.description)
      Epre_workloads.Workloads.all
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const run $ const ())

let main =
  let doc = "effective partial redundancy elimination (Briggs & Cooper, PLDI 1994)" in
  Cmd.group (Cmd.info "eprec" ~doc)
    [ compile_cmd; run_cmd; table1_cmd; table2_cmd; hierarchy_cmd; passes_cmd;
      workloads_cmd ]

let () = exit (Cmd.eval main)
