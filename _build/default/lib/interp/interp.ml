(** Direct ILOC interpreter.

    Stands in for the paper's instrumented ILOC-to-C back end: it executes a
    program and accumulates dynamic operation counts (see [Counts]). Works
    on both SSA and non-SSA routines — phi nodes are evaluated with
    parallel-copy semantics using the edge the control transfer arrived on —
    so optimized and unoptimized code can be differentially tested at every
    pipeline stage.

    The machine model: an unbounded word-addressed memory of tagged values
    with a bump stack for [Alloca], one register frame per activation, and
    an [emit] intrinsic that appends to an output trace (the observable
    behaviour checked by the test suite, alongside the returned value). *)

open Epre_ir

exception Runtime_error of string

exception Out_of_fuel

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type machine = {
  program : Program.t;
  mutable mem : Value.t array;
  mutable sp : int;  (** next free memory word *)
  counts : Counts.t;
  mutable trace : Value.t list;  (** reversed [emit] output *)
  mutable fuel : int;
}

type result = {
  return_value : Value.t option;
  counts : Counts.t;
  trace : Value.t list;  (** [emit] outputs, in order *)
}

let default_fuel = 200_000_000

let grow_mem m needed =
  if needed > Array.length m.mem then begin
    let cap = max needed (max 1024 (2 * Array.length m.mem)) in
    let mem = Array.make cap (Value.I 0) in
    Array.blit m.mem 0 mem 0 (Array.length m.mem);
    m.mem <- mem
  end

let read_mem m addr =
  if addr < 0 || addr >= m.sp then error "load from unallocated address %d" addr;
  m.mem.(addr)

let write_mem m addr v =
  if addr < 0 || addr >= m.sp then error "store to unallocated address %d" addr;
  m.mem.(addr) <- v

let alloca m words init =
  if words < 0 then error "alloca of negative size %d" words;
  let base = m.sp in
  grow_mem m (m.sp + words);
  (* Fill with the element type's zero so reads before writes are both
     deterministic and well-typed. *)
  Array.fill m.mem base words init;
  m.sp <- m.sp + words;
  base

let burn m =
  m.fuel <- m.fuel - 1;
  if m.fuel < 0 then raise Out_of_fuel

(* One activation: registers are a [Value.t option array]; [None] means
   never written, and reading it is a hard error — exactly the bug an
   optimizer pass would want to hear about. *)
type frame = { regs : Value.t option array; routine : Routine.t }

let get_reg fr r =
  match fr.regs.(r) with
  | Some v -> v
  | None -> error "%s: read of undefined register r%d" fr.routine.Routine.name r

let set_reg fr r v = fr.regs.(r) <- Some v

let rec call (m : machine) name args =
  match name with
  | "emit" -> begin
    match args with
    | [ v ] ->
      m.trace <- v :: m.trace;
      Some v
    | _ -> error "emit expects one argument"
  end
  | _ -> begin
    match Program.find m.program name with
    | None -> error "call to unknown routine %s" name
    | Some r -> run_routine m r args
  end

and run_routine m (r : Routine.t) args =
  if List.length args <> List.length r.Routine.params then
    error "%s: expected %d arguments, got %d" r.Routine.name
      (List.length r.Routine.params) (List.length args);
  let fr = { regs = Array.make (max 1 r.Routine.next_reg) None; routine = r } in
  List.iter2 (fun p v -> set_reg fr p v) r.Routine.params args;
  let saved_sp = m.sp in
  let cfg = r.Routine.cfg in
  let result = run_block m fr cfg ~prev:(-1) (Cfg.entry cfg) in
  (* Pop this activation's allocas. *)
  m.sp <- saved_sp;
  result

and run_block m fr cfg ~prev id =
  let b = Cfg.block cfg id in
  (* Phis first, in parallel: read all inputs before writing any output. *)
  let phis = Block.phis b in
  if phis <> [] then begin
    let values =
      List.map
        (function
          | Instr.Phi { dst; args } -> begin
            match List.assoc_opt prev args with
            | Some src -> (dst, get_reg fr src)
            | None ->
              error "%s: phi in B%d has no entry for predecessor B%d"
                fr.routine.Routine.name id prev
          end
          | _ -> assert false)
        phis
    in
    List.iter
      (fun (dst, v) ->
        m.counts.Counts.phis <- m.counts.Counts.phis + 1;
        burn m;
        set_reg fr dst v)
      values
  end;
  List.iter (fun i -> exec_instr m fr i) (Block.non_phis b);
  m.counts.Counts.branches <- m.counts.Counts.branches + 1;
  burn m;
  match b.Block.term with
  | Instr.Jump l -> run_block m fr cfg ~prev:id l
  | Instr.Cbr { cond; ifso; ifnot } ->
    let c = Value.to_int (get_reg fr cond) in
    run_block m fr cfg ~prev:id (if c <> 0 then ifso else ifnot)
  | Instr.Ret None -> None
  | Instr.Ret (Some r) -> Some (get_reg fr r)

and exec_instr m fr i =
  burn m;
  let c = m.counts in
  match i with
  | Instr.Const { dst; value } ->
    c.Counts.consts <- c.Counts.consts + 1;
    set_reg fr dst value
  | Instr.Copy { dst; src } ->
    c.Counts.copies <- c.Counts.copies + 1;
    set_reg fr dst (get_reg fr src)
  | Instr.Unop { op; dst; src } ->
    c.Counts.arith <- c.Counts.arith + 1;
    set_reg fr dst (eval_unop fr op src)
  | Instr.Binop { op; dst; a; b } ->
    c.Counts.arith <- c.Counts.arith + 1;
    (match op with
    | Op.Mul | Op.FMul | Op.Div | Op.FDiv -> c.Counts.mults <- c.Counts.mults + 1
    | _ -> ());
    set_reg fr dst (eval_binop fr op a b)
  | Instr.Load { dst; addr } ->
    c.Counts.loads <- c.Counts.loads + 1;
    set_reg fr dst (read_mem m (Value.to_int (get_reg fr addr)))
  | Instr.Store { addr; src } ->
    c.Counts.stores <- c.Counts.stores + 1;
    write_mem m (Value.to_int (get_reg fr addr)) (get_reg fr src)
  | Instr.Alloca { dst; words; init } ->
    c.Counts.allocas <- c.Counts.allocas + 1;
    set_reg fr dst (Value.I (alloca m words init))
  | Instr.Call { dst; callee; args } -> begin
    c.Counts.calls <- c.Counts.calls + 1;
    let result = call m callee (List.map (get_reg fr) args) in
    match dst, result with
    | None, _ -> ()
    | Some d, Some v -> set_reg fr d v
    | Some _, None ->
      error "%s: call to %s expected a return value" fr.routine.Routine.name callee
  end
  | Instr.Phi _ ->
    error "%s: phi outside block head" fr.routine.Routine.name

and eval_unop fr op src =
  try Op.eval_unop op (get_reg fr src) with
  | Value.Type_error msg -> error "%s: %s in %s" fr.routine.Routine.name msg (Op.unop_name op)

and eval_binop fr op a b =
  try Op.eval_binop op (get_reg fr a) (get_reg fr b) with
  | Value.Type_error msg -> error "%s: %s in %s" fr.routine.Routine.name msg (Op.binop_name op)
  | Op.Division_by_zero -> error "%s: division by zero" fr.routine.Routine.name

let run ?(fuel = default_fuel) program ~entry ~args =
  let m =
    { program; mem = Array.make 1024 (Value.I 0); sp = 0;
      counts = Counts.create (); trace = []; fuel }
  in
  match Program.find program entry with
  | None -> error "no routine named %s" entry
  | Some r ->
    let return_value = run_routine m r args in
    { return_value; counts = m.counts; trace = List.rev m.trace }
