(** Dynamic ILOC operation counts — the paper's Table 1 metric ("dynamic
    counts of ILOC operations", branches included). Phis are SSA notation,
    tallied separately and excluded from [total]. *)

type t = {
  mutable arith : int;  (** binary and unary computations *)
  mutable mults : int;
      (** multiplies and divides, also included in [arith]: the "expensive"
          operations strength reduction targets *)
  mutable consts : int;  (** loadI *)
  mutable copies : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;  (** jumps, conditional branches, returns *)
  mutable calls : int;
  mutable allocas : int;
  mutable phis : int;  (** not included in [total] *)
}

val create : unit -> t

val total : t -> int

(** Accumulate [t] into [into]. *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
