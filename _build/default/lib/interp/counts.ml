(** Dynamic ILOC operation counts.

    The paper's Table 1 metric: "dynamic counts of ILOC operations",
    including branches. Phis are SSA notation, not operations; they are
    tallied separately and excluded from [total]. *)

type t = {
  mutable arith : int;  (** binary and unary computations *)
  mutable mults : int;
      (** multiplies and divides, also included in [arith]: the
          "expensive" operations strength reduction targets *)
  mutable consts : int;  (** loadI *)
  mutable copies : int;
  mutable loads : int;
  mutable stores : int;
  mutable branches : int;  (** jumps, conditional branches and returns *)
  mutable calls : int;
  mutable allocas : int;
  mutable phis : int;  (** not included in [total] *)
}

let create () =
  { arith = 0; mults = 0; consts = 0; copies = 0; loads = 0; stores = 0;
    branches = 0; calls = 0; allocas = 0; phis = 0 }

let total t =
  t.arith + t.consts + t.copies + t.loads + t.stores + t.branches + t.calls
  + t.allocas

let add ~into t =
  into.arith <- into.arith + t.arith;
  into.mults <- into.mults + t.mults;
  into.consts <- into.consts + t.consts;
  into.copies <- into.copies + t.copies;
  into.loads <- into.loads + t.loads;
  into.stores <- into.stores + t.stores;
  into.branches <- into.branches + t.branches;
  into.calls <- into.calls + t.calls;
  into.allocas <- into.allocas + t.allocas;
  into.phis <- into.phis + t.phis

let pp ppf t =
  Fmt.pf ppf
    "total=%d (arith=%d [mult/div=%d] consts=%d copies=%d loads=%d stores=%d branches=%d calls=%d allocas=%d phis=%d)"
    (total t) t.arith t.mults t.consts t.copies t.loads t.stores t.branches
    t.calls t.allocas t.phis
