lib/interp/interp.mli: Counts Epre_ir Program Value
