lib/interp/counts.mli: Format
