lib/interp/counts.ml: Fmt
