lib/interp/interp.ml: Array Block Cfg Counts Epre_ir Instr List Op Printf Program Routine Value
