(** Direct ILOC interpreter.

    Stands in for the paper's instrumented ILOC-to-C back end: executes a
    program and accumulates dynamic operation counts ([Counts]). Works on
    SSA and non-SSA routines alike (phis are evaluated with parallel-copy
    semantics on the arriving edge), so optimized and unoptimized code can
    be differentially tested at every pipeline stage.

    Machine model: an unbounded word-addressed memory of tagged values with
    a bump stack for [Alloca] (released on routine return), one register
    frame per activation, and an [emit] intrinsic appending to an output
    trace — the observable behaviour, alongside the returned value. *)

open Epre_ir

(** Uninitialized register reads, unallocated memory accesses, division by
    zero, type mismatches, unknown routines and arity errors. *)
exception Runtime_error of string

(** The instruction budget ([fuel]) ran out — the interpreter's
    infinite-loop guard. *)
exception Out_of_fuel

type result = {
  return_value : Value.t option;
  counts : Counts.t;
  trace : Value.t list;  (** [emit] outputs, in order *)
}

val default_fuel : int

val run : ?fuel:int -> Program.t -> entry:string -> args:Value.t list -> result
