(** Natural loops and nesting depth.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of that edge is [h] plus every block that reaches [t] without
    passing through [h]. Nesting depth feeds intuition checks on the
    reassociation ranks ("the rank of a loop-variant expression corresponds
    to the nesting depth of the loop in which it changes", Section 3.1). *)

open Epre_ir

type loop = {
  header : int;
  body : int list;  (** includes the header *)
}

type t = {
  loops : loop list;
  depth : int array;  (** nesting depth per block id; 0 = not in any loop *)
}

let natural_loop cfg ~header ~latch =
  let preds = Cfg.preds cfg in
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec add b =
    if not (Hashtbl.mem in_loop b) then begin
      Hashtbl.replace in_loop b ();
      List.iter add preds.(b)
    end
  in
  add latch;
  { header; body = List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) in_loop []) }

let compute cfg =
  let dom = Dom.compute cfg in
  let order = Dom.order dom in
  let loops = ref [] in
  Cfg.iter_blocks
    (fun b ->
      let t = b.Block.id in
      if Order.is_reachable order t then
        List.iter
          (fun h -> if Dom.dominates dom h t then loops := natural_loop cfg ~header:h ~latch:t :: !loops)
          (Block.succs b))
    cfg;
  (* Merge loops sharing a header (multiple latches -> one loop). *)
  let by_header = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let body =
        match Hashtbl.find_opt by_header l.header with
        | None -> l.body
        | Some prev -> List.sort_uniq compare (prev @ l.body)
      in
      Hashtbl.replace by_header l.header body)
    !loops;
  let loops =
    Hashtbl.fold (fun header body acc -> { header; body } :: acc) by_header []
    |> List.sort (fun a b -> compare a.header b.header)
  in
  let depth = Array.make (Cfg.num_blocks cfg) 0 in
  List.iter (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body) loops;
  { loops; depth }

let loops t = t.loops

let depth t id = if id < Array.length t.depth then t.depth.(id) else 0
