(** Postdominators and control dependence.

    Postdominators are dominators of the reverse CFG rooted at a virtual
    exit collecting every [Ret] block; control dependence is the reverse
    dominance frontier (Cytron et al.). Blocks that cannot reach an exit
    have no postdominator and no control-dependence information — clients
    must treat them conservatively. *)

open Epre_ir

type t

val compute : Cfg.t -> t

(** The virtual exit's id ([Cfg.num_blocks] at computation time). *)
val exit_node : t -> int

(** Immediate postdominator; [-1] when the block cannot reach an exit. *)
val ipostdom : t -> int -> int

(** Blocks whose branch decisions control whether [id] executes. *)
val control_deps : t -> int -> int list

(** [postdominates t a b]: every path from [b] to an exit passes [a]. *)
val postdominates : t -> int -> int -> bool
