(** Depth-first orders over the reachable part of a CFG.

    Reverse postorder is the traversal the paper uses both for the
    Cooper–Harvey–Kennedy dominator iteration and for assigning ranks during
    global reassociation ("we traverse the control-flow graph in reverse
    postorder, assigning ranks", Section 3.1). *)

open Epre_ir

type t = {
  postorder : int array;  (** block ids in postorder *)
  number : int array;
      (** [number.(id)] is the postorder index of block [id], or -1 if the
          block is unreachable or removed. *)
}

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let number = Array.make n (-1) in
  let acc = ref [] in
  let count = ref 0 in
  let visited = Array.make n false in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (Cfg.succs cfg id);
      number.(id) <- !count;
      incr count;
      acc := id :: !acc
    end
  in
  dfs (Cfg.entry cfg);
  { postorder = Array.of_list (List.rev !acc); number }

let postorder t = t.postorder

let reverse_postorder t =
  let n = Array.length t.postorder in
  Array.init n (fun i -> t.postorder.(n - 1 - i))

let postorder_number t id = t.number.(id)

let is_reachable t id = id >= 0 && id < Array.length t.number && t.number.(id) >= 0

(** Reverse-postorder position: entry gets 0. *)
let rpo_number t id =
  let po = t.number.(id) in
  if po < 0 then -1 else Array.length t.postorder - 1 - po
