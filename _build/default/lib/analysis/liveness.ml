(** Per-block register liveness, SSA-aware.

    A phi's arguments are uses at the end of the corresponding predecessor
    (not at the phi's own block), and a phi's destination is born at the top
    of its block — the standard SSA liveness convention. The pruned-SSA
    construction uses [live_in] to avoid placing dead phis; the coalescing
    pass builds its interference relation from [live_out]. *)

open Epre_util
open Epre_ir

type t = {
  live_in : Bitset.t array;
  live_out : Bitset.t array;
  nregs : int;
}

let compute (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let n = Cfg.num_blocks cfg in
  let width = r.Routine.next_reg in
  let upexposed = Array.init n (fun _ -> Bitset.create width) in
  let defs = Array.init n (fun _ -> Bitset.create width) in
  (* phi_in.(p) collects registers consumed by successors' phis along the
     edge leaving block p. *)
  let phi_in = Array.init n (fun _ -> Bitset.create width) in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      List.iter
        (fun i ->
          match i with
          | Instr.Phi { dst; args } ->
            Bitset.add defs.(id) dst;
            List.iter (fun (p, src) -> if Cfg.mem cfg p then Bitset.add phi_in.(p) src) args
          | _ ->
            List.iter
              (fun u -> if not (Bitset.mem defs.(id) u) then Bitset.add upexposed.(id) u)
              (Instr.uses i);
            Option.iter (fun d -> Bitset.add defs.(id) d) (Instr.def i))
        b.Block.instrs;
      List.iter
        (fun u -> if not (Bitset.mem defs.(id) u) then Bitset.add upexposed.(id) u)
        (Instr.term_uses b.Block.term))
    cfg;
  let live_in = Array.init n (fun _ -> Bitset.create width) in
  let live_out = Array.init n (fun _ -> Bitset.create width) in
  let order = Order.compute cfg in
  let po = Order.postorder order in
  let phi_defs = Array.init n (fun _ -> Bitset.create width) in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (function Instr.Phi { dst; _ } -> Bitset.add phi_defs.(b.Block.id) dst | _ -> ())
        b.Block.instrs)
    cfg;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun id ->
        let out = Bitset.create width in
        List.iter
          (fun s ->
            let contrib = Bitset.copy live_in.(s) in
            Bitset.diff_into ~dst:contrib phi_defs.(s);
            Bitset.union_into ~dst:out contrib)
          (Cfg.succs cfg id);
        Bitset.union_into ~dst:out phi_in.(id);
        if not (Bitset.equal out live_out.(id)) then begin
          Bitset.assign ~dst:live_out.(id) out;
          changed := true
        end;
        let inp = Bitset.copy out in
        Bitset.diff_into ~dst:inp defs.(id);
        Bitset.union_into ~dst:inp upexposed.(id);
        (* Phi destinations are live-in in the "needed at block top" sense
           used by pruned SSA?  No: a phi defines its dst, so it is not
           live-in.  Phi argument liveness is handled through phi_in. *)
        if not (Bitset.equal inp live_in.(id)) then begin
          Bitset.assign ~dst:live_in.(id) inp;
          changed := true
        end)
      po
  done;
  { live_in; live_out; nregs = width }

let live_in t id = t.live_in.(id)

let live_out t id = t.live_out.(id)

let nregs t = t.nregs
