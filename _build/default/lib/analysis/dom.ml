(** Dominators and dominance frontiers.

    Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm
    over reverse postorder; dominance frontiers per Cytron et al., which the
    SSA construction pass consumes for phi placement. *)

open Epre_ir

type t = {
  order : Order.t;
  idom : int array;
      (** [idom.(id)] is the immediate dominator of block [id]; the entry is
          its own idom; -1 for unreachable blocks. *)
  children : int list array;  (** dominator-tree children *)
  frontier : int list array;  (** dominance frontier DF(id) *)
}

let intersect ~po_number idom a b =
  (* Walk both fingers up the (partially built) dominator tree; the block
     with the *smaller* postorder number is deeper, so advance it. *)
  let rec go a b =
    if a = b then a
    else if po_number.(a) < po_number.(b) then go idom.(a) b
    else go a idom.(b)
  in
  go a b

let compute cfg =
  let order = Order.compute cfg in
  let n = Cfg.num_blocks cfg in
  let po_number = Array.init n (fun id -> Order.postorder_number order id) in
  let idom = Array.make n (-1) in
  let entry = Cfg.entry cfg in
  idom.(entry) <- entry;
  let preds = Cfg.preds cfg in
  let rpo = Order.reverse_postorder order in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let processed = List.filter (fun p -> idom.(p) >= 0) preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom =
              List.fold_left
                (fun acc p -> intersect ~po_number idom acc p)
                first rest
            in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let children = Array.make n [] in
  Array.iter
    (fun b -> if b <> entry && idom.(b) >= 0 then children.(idom.(b)) <- b :: children.(idom.(b)))
    rpo;
  Array.iteri (fun i cs -> children.(i) <- List.rev cs) children;
  let frontier = Array.make n [] in
  Array.iter
    (fun b ->
      let ps = List.filter (fun p -> idom.(p) >= 0) preds.(b) in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> idom.(b) do
              if not (List.mem b frontier.(!runner)) then
                frontier.(!runner) <- b :: frontier.(!runner);
              runner := idom.(!runner)
            done)
          ps)
    rpo;
  { order; idom; children; frontier }

let idom t id = t.idom.(id)

let children t id = t.children.(id)

let frontier t id = t.frontier.(id)

let order t = t.order

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  let rec climb b = if b = a then true else if t.idom.(b) = b || t.idom.(b) < 0 then false else climb t.idom.(b) in
  if t.idom.(b) < 0 then false else climb b

(** Preorder walk of the dominator tree from the entry. *)
let iter_tree t ~entry f =
  let rec go id =
    f id;
    List.iter go t.children.(id)
  in
  go entry
