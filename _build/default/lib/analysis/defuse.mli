(** Definition and use sites per register.

    In SSA form every register has at most one definition site; [def_site]
    exposes that directly, and GVN's partitioning and forward propagation's
    tree builder walk it. *)

open Epre_ir

type site =
  | Param  (** defined by routine entry *)
  | At of { block : int; index : int }
      (** the [index]th instruction of [block] *)

type t

val compute : Routine.t -> t

(** Last definition site recorded (the unique one in SSA). *)
val def_site : t -> Instr.reg -> site option

(** The defining instruction, when there is one (not a parameter). *)
val def_instr : t -> Instr.reg -> Instr.t option

val use_count : t -> Instr.reg -> int

val has_multiple_defs : t -> Instr.reg -> bool

(** No register has more than one definition. *)
val is_ssa : t -> bool
