(** Postdominators and control dependence.

    Postdominators are dominators of the reverse CFG rooted at a virtual
    exit that collects every [Ret] block. Control dependence is the
    dominance frontier of the reverse graph (Cytron et al.): block [b] is
    control-dependent on branch block [p] when [p] decides whether [b]
    executes. Consumed by aggressive dead code elimination
    ([Epre_opt.Adce]).

    Blocks that cannot reach an exit (infinite loops) have no postdominator
    ([ipostdom] = -1 besides the virtual exit); clients must treat them
    conservatively. *)

open Epre_ir

type t = {
  exit_node : int;  (** the virtual exit's id = [Cfg.num_blocks] *)
  ipostdom : int array;
      (** indexed by block id (plus the virtual exit); [-1] when the block
          cannot reach an exit or does not exist *)
  control_deps : int list array;
      (** [control_deps.(b)]: blocks whose branches [b] is
          control-dependent on *)
}

let compute cfg =
  let n = Cfg.num_blocks cfg in
  let exit_node = n in
  let total = n + 1 in
  (* reverse graph: successors of a node are its CFG predecessors; the
     virtual exit's successors are the Ret blocks. *)
  let preds_fwd = Cfg.preds cfg in
  let rev_succs = Array.make total [] in
  rev_succs.(exit_node) <-
    List.map (fun b -> b.Block.id) (Cfg.exit_blocks cfg);
  Cfg.iter_blocks (fun b -> rev_succs.(b.Block.id) <- preds_fwd.(b.Block.id)) cfg;
  (* reverse-graph predecessors = CFG successors, plus exit edges *)
  let rev_preds = Array.make total [] in
  Cfg.iter_blocks
    (fun b ->
      rev_preds.(b.Block.id) <- Block.succs b;
      match b.Block.term with
      | Instr.Ret _ -> rev_preds.(b.Block.id) <- exit_node :: rev_preds.(b.Block.id)
      | Instr.Jump _ | Instr.Cbr _ -> ())
    cfg;
  (* postorder DFS over the reverse graph from the virtual exit *)
  let po_number = Array.make total (-1) in
  let po_list = ref [] in
  let counter = ref 0 in
  let visited = Array.make total false in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs rev_succs.(id);
      po_number.(id) <- !counter;
      incr counter;
      po_list := id :: !po_list
    end
  in
  dfs exit_node;
  let rpo = Array.of_list !po_list in
  (* Cooper-Harvey-Kennedy on the reverse graph *)
  let ipostdom = Array.make total (-1) in
  ipostdom.(exit_node) <- exit_node;
  let rec intersect a b =
    if a = b then a
    else if po_number.(a) < po_number.(b) then intersect ipostdom.(a) b
    else intersect a ipostdom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> exit_node then begin
          let processed = List.filter (fun p -> ipostdom.(p) >= 0) rev_preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let ni = List.fold_left intersect first rest in
            if ipostdom.(b) <> ni then begin
              ipostdom.(b) <- ni;
              changed := true
            end
        end)
      rpo
  done;
  (* control dependence = reverse dominance frontier *)
  let control_deps = Array.make total [] in
  Array.iter
    (fun b ->
      let ps = List.filter (fun p -> ipostdom.(p) >= 0) rev_preds.(b) in
      if List.length ps >= 2 then
        List.iter
          (fun p ->
            let runner = ref p in
            while !runner <> ipostdom.(b) && !runner >= 0 do
              (* [b] in the reverse graph is the branch point; in CFG terms
                 [runner] is control-dependent on [b]. *)
              if not (List.mem b control_deps.(!runner)) then
                control_deps.(!runner) <- b :: control_deps.(!runner);
              runner := ipostdom.(!runner)
            done)
          ps)
    rpo;
  { exit_node; ipostdom; control_deps }

let exit_node t = t.exit_node

let ipostdom t id = if id >= 0 && id < Array.length t.ipostdom then t.ipostdom.(id) else -1

(** Blocks whose branch decisions control whether [id] executes. *)
let control_deps t id =
  if id >= 0 && id < Array.length t.control_deps then t.control_deps.(id) else []

(** [postdominates t a b]: every path from [b] to an exit passes [a]. *)
let postdominates t a b =
  let rec climb b =
    if b = a then true
    else if b < 0 || t.ipostdom.(b) = b then false
    else climb t.ipostdom.(b)
  in
  if t.ipostdom.(b) < 0 then false else climb b
