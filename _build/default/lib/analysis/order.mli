(** Depth-first orders over the reachable part of a CFG.

    Reverse postorder is the traversal the paper uses both for the
    dominator iteration and for assigning reassociation ranks
    (Section 3.1). *)

open Epre_ir

type t

val compute : Cfg.t -> t

(** Reachable block ids in postorder. *)
val postorder : t -> int array

(** Reachable block ids in reverse postorder; the entry comes first. *)
val reverse_postorder : t -> int array

(** Postorder index of a block, [-1] when unreachable or removed. *)
val postorder_number : t -> int -> int

val is_reachable : t -> int -> bool

(** Reverse-postorder position; the entry gets 0, [-1] when unreachable. *)
val rpo_number : t -> int -> int
