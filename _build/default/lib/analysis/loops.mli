(** Natural loops and nesting depth.

    A back edge is an edge [t -> h] where [h] dominates [t]; the natural
    loop of that edge is [h] plus every block reaching [t] without passing
    through [h]. Loops sharing a header are merged. *)

open Epre_ir

type loop = {
  header : int;
  body : int list;  (** includes the header *)
}

type t

val compute : Cfg.t -> t

val loops : t -> loop list

(** Nesting depth of a block; 0 when outside every natural loop. *)
val depth : t -> int -> int
