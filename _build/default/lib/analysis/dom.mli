(** Dominators and dominance frontiers.

    Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm
    over reverse postorder; dominance frontiers per Cytron et al., consumed
    by SSA phi placement. *)

open Epre_ir

type t

val compute : Cfg.t -> t

(** Immediate dominator; the entry is its own idom; [-1] for unreachable
    blocks. *)
val idom : t -> int -> int

(** Dominator-tree children. *)
val children : t -> int -> int list

(** Dominance frontier DF(id). *)
val frontier : t -> int -> int list

(** The depth-first order the computation used. *)
val order : t -> Order.t

(** [dominates t a b]: does [a] dominate [b] (reflexively)? False when [b]
    is unreachable. *)
val dominates : t -> int -> int -> bool

(** Preorder walk of the dominator tree rooted at [entry]. *)
val iter_tree : t -> entry:int -> (int -> unit) -> unit
