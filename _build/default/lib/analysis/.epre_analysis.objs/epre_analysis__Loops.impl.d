lib/analysis/loops.ml: Array Block Cfg Dom Epre_ir Hashtbl List Order
