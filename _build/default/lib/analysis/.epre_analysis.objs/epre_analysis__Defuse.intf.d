lib/analysis/defuse.mli: Epre_ir Instr Routine
