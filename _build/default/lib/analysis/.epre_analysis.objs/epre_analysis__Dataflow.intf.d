lib/analysis/dataflow.mli: Bitset Cfg Epre_ir Epre_util
