lib/analysis/liveness.ml: Array Bitset Block Cfg Epre_ir Epre_util Instr List Option Order Routine
