lib/analysis/dom.ml: Array Cfg Epre_ir List Order
