lib/analysis/order.mli: Cfg Epre_ir
