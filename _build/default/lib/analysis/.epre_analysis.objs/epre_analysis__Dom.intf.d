lib/analysis/dom.mli: Cfg Epre_ir Order
