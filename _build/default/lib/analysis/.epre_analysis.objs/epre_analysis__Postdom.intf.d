lib/analysis/postdom.mli: Cfg Epre_ir
