lib/analysis/liveness.mli: Bitset Epre_ir Epre_util Routine
