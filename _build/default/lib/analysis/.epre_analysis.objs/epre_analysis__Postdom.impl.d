lib/analysis/postdom.ml: Array Block Cfg Epre_ir Instr List
