lib/analysis/order.ml: Array Cfg Epre_ir List
