lib/analysis/defuse.ml: Array Block Cfg Epre_ir Fun Instr List Routine
