lib/analysis/loops.mli: Cfg Epre_ir
