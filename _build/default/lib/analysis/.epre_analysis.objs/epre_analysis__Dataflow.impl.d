lib/analysis/dataflow.ml: Array Bitset Cfg Epre_ir Epre_util List Order
