(** Definition and use sites per register.

    In SSA form every register has at most one definition site; [def_site]
    exposes that directly and is what the GVN partitioning and the
    forward-propagation tree builder walk. *)

open Epre_ir

type site =
  | Param  (** defined by routine entry *)
  | At of { block : int; index : int }  (** [index]th instruction of [block] *)

type t = {
  def_site : site option array;  (** indexed by register *)
  def_instr : Instr.t option array;
  use_count : int array;
  multiple_defs : bool array;  (** register has >1 definition (non-SSA) *)
}

let compute (r : Routine.t) =
  let width = r.Routine.next_reg in
  let def_site = Array.make width None in
  let def_instr = Array.make width None in
  let use_count = Array.make width 0 in
  let multiple_defs = Array.make width false in
  List.iter
    (fun p ->
      def_site.(p) <- Some Param)
    r.Routine.params;
  Cfg.iter_blocks
    (fun b ->
      List.iteri
        (fun index i ->
          (match Instr.def i with
          | Some d ->
            if def_site.(d) <> None then multiple_defs.(d) <- true;
            def_site.(d) <- Some (At { block = b.Block.id; index });
            def_instr.(d) <- Some i
          | None -> ());
          List.iter (fun u -> use_count.(u) <- use_count.(u) + 1) (Instr.uses i))
        b.Block.instrs;
      List.iter (fun u -> use_count.(u) <- use_count.(u) + 1) (Instr.term_uses b.Block.term))
    r.Routine.cfg;
  { def_site; def_instr; use_count; multiple_defs }

let def_site t reg = t.def_site.(reg)

let def_instr t reg = t.def_instr.(reg)

let use_count t reg = t.use_count.(reg)

let has_multiple_defs t reg = t.multiple_defs.(reg)

let is_ssa t =
  not (Array.exists Fun.id t.multiple_defs)
