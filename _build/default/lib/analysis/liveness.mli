(** Per-block register liveness, SSA-aware.

    A phi's arguments are uses at the end of the matching predecessor and
    its destination is born at the block top — the standard SSA liveness
    convention. Pruned SSA construction consumes [live_in]; the coalescer
    builds interference from [live_out]. *)

open Epre_util
open Epre_ir

type t

val compute : Routine.t -> t

val live_in : t -> int -> Bitset.t

val live_out : t -> int -> Bitset.t

(** Width of the register universe the sets range over. *)
val nregs : t -> int
