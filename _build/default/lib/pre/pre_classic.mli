(** Classic Morel–Renvoise PRE (1979): the bidirectional
    placement-possible system with insertions at block ends, kept as an
    ablation baseline next to [Pre].

    Correct everywhere but weaker wherever a critical edge is the only
    legal insertion point — the reason the paper's implementation uses the
    Drechsler–Stadel variant. Compare with [bench/main.exe ablation]. *)

open Epre_ir

type stats = {
  mutable inserted : int;
  mutable deleted : int;
  mutable cse_deleted : int;
  mutable rounds : int;
}

val run : ?include_loads:bool -> Routine.t -> stats
