lib/pre/pre_classic.ml: Array Bitset Block Cfg Cse_avail Dataflow Epre_analysis Epre_ir Epre_opt Epre_util Expr_universe Instr List Order Pre Routine
