lib/pre/pre_classic.mli: Epre_ir Routine
