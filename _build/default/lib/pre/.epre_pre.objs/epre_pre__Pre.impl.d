lib/pre/pre.ml: Array Bitset Block Cfg Cse_avail Dataflow Epre_analysis Epre_ir Epre_opt Epre_ssa Epre_util Expr_universe Instr List Order Routine
