lib/pre/pre.mli: Epre_ir Epre_opt Instr Routine
