(** SSA well-formedness checker, used pervasively by the test suite.

    Checks, beyond [Routine.validate]:
    - every register has at most one definition site;
    - every non-phi use is dominated by its definition;
    - every phi argument's definition dominates the end of the matching
      predecessor block. *)

open Epre_ir
open Epre_analysis

exception Not_ssa of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_ssa s)) fmt

let check (r : Routine.t) =
  Routine.validate r;
  let cfg = r.Routine.cfg in
  let du = Defuse.compute r in
  if not (Defuse.is_ssa du) then begin
    let offender = ref (-1) in
    for v = 0 to r.Routine.next_reg - 1 do
      if Defuse.has_multiple_defs du v && !offender < 0 then offender := v
    done;
    fail "%s: register r%d has multiple definitions" r.Routine.name !offender
  end;
  let dom = Dom.compute cfg in
  let order = Dom.order dom in
  let entry = Cfg.entry cfg in
  (* Position of a definition for intra-block ordering: params/phis are at
     index -1 (top of block). *)
  let def_pos v =
    match Defuse.def_site du v with
    | None -> None
    | Some Defuse.Param -> Some (entry, -1)
    | Some (Defuse.At { block; index }) -> begin
      match Defuse.def_instr du v with
      | Some (Instr.Phi _) -> Some (block, -1)
      | _ -> Some (block, index)
    end
  in
  let check_use ~use_block ~use_index v =
    match def_pos v with
    | None -> fail "%s: r%d used but never defined" r.Routine.name v
    | Some (db, di) ->
      let ok =
        if db = use_block then di < use_index
        else Dom.dominates dom db use_block
      in
      if not ok then
        fail "%s: use of r%d in B%d not dominated by its definition in B%d"
          r.Routine.name v use_block db
  in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        List.iteri
          (fun index i ->
            match i with
            | Instr.Phi { args; _ } ->
              List.iter
                (fun (p, v) ->
                  match def_pos v with
                  | None -> fail "%s: phi argument r%d never defined" r.Routine.name v
                  | Some (db, _) ->
                    if not (Dom.dominates dom db p) then
                      fail "%s: phi arg r%d (from B%d) not dominated by def in B%d"
                        r.Routine.name v p db)
                args
            | _ -> List.iter (fun v -> check_use ~use_block:id ~use_index:index v) (Instr.uses i))
          b.Block.instrs;
        List.iter
          (fun v -> check_use ~use_block:id ~use_index:max_int v)
          (Instr.term_uses b.Block.term)
      end)
    cfg
