lib/ssa/critical_edges.ml: Array Block Cfg Epre_ir List Routine
