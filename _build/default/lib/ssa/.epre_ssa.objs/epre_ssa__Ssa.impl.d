lib/ssa/ssa.ml: Array Bitset Block Cfg Critical_edges Dom Epre_analysis Epre_ir Epre_util Hashtbl Instr List Liveness Option Parallel_copy Queue Routine
