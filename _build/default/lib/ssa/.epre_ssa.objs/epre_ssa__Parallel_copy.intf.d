lib/ssa/parallel_copy.mli:
