lib/ssa/ssa.mli: Epre_ir Instr Routine
