lib/ssa/ssa_check.ml: Block Cfg Defuse Dom Epre_analysis Epre_ir Instr List Order Printf Routine
