lib/ssa/parallel_copy.ml: Hashtbl List
