lib/ssa/ssa_check.mli: Epre_ir Routine
