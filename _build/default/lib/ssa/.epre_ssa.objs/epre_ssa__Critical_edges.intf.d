lib/ssa/critical_edges.mli: Cfg Epre_ir Routine
