(** Parallel-copy sequentialization.

    A block's phis, viewed from one predecessor, are a single parallel copy
    [(d1,...,dk) <- (s1,...,sk)]. [sequentialize] orders the copies so no
    pending read sees a clobbered register, breaking pure cycles (the
    classic phi swap) with one temporary from [fresh]. *)

val sequentialize :
  fresh:(unit -> int) -> (int * int) list -> (int * int) list
