(** Critical-edge splitting.

    An edge [p -> s] is critical when [p] has several successors and [s]
    several predecessors; nothing can be placed "on" such an edge without a
    landing block. PRE's edge placement and phi lowering both require
    splitting these. *)

open Epre_ir

val is_critical : Cfg.t -> int list array -> from_:int -> to_:int -> bool

(** Split every critical edge; returns how many were split. Idempotent. *)
val split_all : Routine.t -> int
