(** Parallel-copy sequentialization.

    A block's phis, viewed from one predecessor, are a single parallel copy
    [(d1,...,dk) <- (s1,...,sk)]. Emitting them as sequential copies is
    only correct in an order where no pending read sees an already-clobbered
    register; a pure cycle (the classic phi swap) needs one temporary.
    Used by SSA destruction and by forward propagation's phi removal. *)

let sequentialize ~fresh copies =
  let pending = Hashtbl.create 8 in
  List.iter (fun (d, s) -> if d <> s then Hashtbl.replace pending d s) copies;
  let out = ref [] in
  let emit d s = out := (d, s) :: !out in
  let readers_of src =
    Hashtbl.fold (fun d s acc -> if s = src then d :: acc else acc) pending []
  in
  let rec drain () =
    let ready =
      Hashtbl.fold (fun d _ acc -> if readers_of d = [] then d :: acc else acc) pending []
    in
    match List.sort compare ready with
    | d :: _ ->
      emit d (Hashtbl.find pending d);
      Hashtbl.remove pending d;
      drain ()
    | [] ->
      if Hashtbl.length pending > 0 then begin
        (* Pure cycle: save one register in a temporary, redirect its
           readers there, and continue. *)
        let d = Hashtbl.fold (fun d _ acc -> min d acc) pending max_int in
        let t = fresh () in
        emit t d;
        List.iter (fun d' -> Hashtbl.replace pending d' t) (readers_of d);
        drain ()
      end
  in
  drain ();
  List.rev !out
