(** Pruned SSA construction and destruction.

    Construction follows Cytron et al.: phi placement at iterated dominance
    frontiers of each register's definition blocks, *pruned* by liveness so
    only registers live into the join block receive phis, then renaming by a
    preorder walk of the dominator tree. Following Section 3.1 of the
    paper, the renaming step optionally folds copies away: a [Copy] pushes
    the current name of its source onto the destination's stack and
    disappears, "effectively folding them into phi-nodes". This frees the
    optimizer from the programmer's choice of variable names (Section 2.2).

    Destruction isolates each phi with a fresh temporary: [d <- phi(ri@pi)]
    becomes a copy [ti <- ri] at the end of each (critical-edge-split)
    predecessor and [d <- ti] at the block top. The temporaries make the
    inserted copy groups interference-free regardless of what renaming GVN
    performed, and the Chaitin-style coalescer later removes the copies that
    do not matter. *)

open Epre_util
open Epre_ir
open Epre_analysis

exception Use_before_def of { routine : string; reg : Instr.reg }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let phi_placement (r : Routine.t) dom live =
  let cfg = r.Routine.cfg in
  let nblocks = Cfg.num_blocks cfg in
  let width = r.Routine.next_reg in
  (* def_blocks.(v) = blocks containing a definition of v *)
  let def_blocks = Array.make width [] in
  List.iter (fun p -> def_blocks.(p) <- [ Cfg.entry cfg ]) r.Routine.params;
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          Option.iter (fun d -> def_blocks.(d) <- b.Block.id :: def_blocks.(d)) (Instr.def i))
        b.Block.instrs)
    cfg;
  (* needs_phi.(block) = registers to phi at that block *)
  let needs_phi = Array.make nblocks [] in
  for v = 0 to width - 1 do
    match List.sort_uniq compare def_blocks.(v) with
    | [] | [ _ ] ->
      (* At most one defining block: at block exits a single definition
         reaches every use of a strict program, so no phi is needed. *)
      ()
    | defs ->
      let placed = Bitset.create nblocks in
      let in_work = Bitset.create nblocks in
      let work = Queue.create () in
      List.iter
        (fun b ->
          if not (Bitset.mem in_work b) then begin
            Bitset.add in_work b;
            Queue.add b work
          end)
        defs;
      while not (Queue.is_empty work) do
        let b = Queue.take work in
        List.iter
          (fun d ->
            if (not (Bitset.mem placed d)) && Bitset.mem (Liveness.live_in live d) v then begin
              Bitset.add placed d;
              needs_phi.(d) <- v :: needs_phi.(d);
              if not (Bitset.mem in_work d) then begin
                Bitset.add in_work d;
                Queue.add d work
              end
            end)
          (Dom.frontier dom b)
      done
  done;
  needs_phi

type build_config = { fold_copies : bool }

let default_build_config = { fold_copies = true }

let build ?(config = default_build_config) (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Ssa.build: routine already in SSA form";
  let cfg = r.Routine.cfg in
  let dom = Dom.compute cfg in
  let live = Liveness.compute r in
  let needs_phi = phi_placement r dom live in
  let preds = Cfg.preds cfg in
  let orig_width = r.Routine.next_reg in
  (* Insert placeholder phis; arguments are filled during renaming.  Each phi
     remembers which original register it merges via [phi_origin]. *)
  let phi_origin = Hashtbl.create 16 in
  Array.iteri
    (fun bid vs ->
      if vs <> [] then begin
        let b = Cfg.block cfg bid in
        let phis =
          List.map
            (fun v ->
              let dst = Routine.fresh_reg r in
              Hashtbl.replace phi_origin (bid, dst) v;
              Instr.Phi { dst; args = List.map (fun p -> (p, v)) preds.(bid) })
            (List.rev vs)
        in
        b.Block.instrs <- phis @ b.Block.instrs
      end)
    needs_phi;
  (* Renaming: stacks of current names per original register. *)
  let stacks = Array.make orig_width [] in
  let top v =
    if v >= orig_width then v
    else
      match stacks.(v) with
      | n :: _ -> n
      | [] -> raise (Use_before_def { routine = r.Routine.name; reg = v })
  in
  List.iter (fun p -> stacks.(p) <- p :: stacks.(p)) r.Routine.params;
  let rec rename bid =
    let b = Cfg.block cfg bid in
    let pushed = ref [] in
    let push v n =
      stacks.(v) <- n :: stacks.(v);
      pushed := v :: !pushed
    in
    let rewrite acc i =
      match i with
      | Instr.Phi { dst; args } ->
        (* dst is already a fresh name; record it as the current name of the
           register this phi merges. *)
        let v = Hashtbl.find phi_origin (bid, dst) in
        push v dst;
        Instr.Phi { dst; args } :: acc
      | Instr.Copy { dst; src } when config.fold_copies && dst < orig_width ->
        (* Fold the copy: dst's current name becomes src's current name. *)
        let n = top src in
        push dst n;
        acc
      | _ ->
        let i = Instr.map_uses top i in
        (match Instr.def i with
        | Some d when d < orig_width ->
          let n = Routine.fresh_reg r in
          push d n;
          Instr.map_def (fun _ -> n) i :: acc
        | _ -> i :: acc)
    in
    b.Block.instrs <- List.rev (List.fold_left rewrite [] b.Block.instrs);
    b.Block.term <- Instr.map_term_uses top b.Block.term;
    (* Fill our slot in successors' phis. *)
    List.iter
      (fun s ->
        let sb = Cfg.block cfg s in
        sb.Block.instrs <-
          List.map
            (function
              | Instr.Phi { dst; args } ->
                let args =
                  List.map
                    (fun (p, v) ->
                      if p = bid && v < orig_width && Hashtbl.mem phi_origin (s, dst) then
                        (p, top v)
                      else (p, v))
                    args
                in
                Instr.Phi { dst; args }
              | i -> i)
            sb.Block.instrs)
      (Block.succs b);
    List.iter rename (Dom.children dom bid);
    List.iter (fun v -> stacks.(v) <- List.tl stacks.(v)) !pushed
  in
  rename (Cfg.entry cfg);
  r.Routine.in_ssa <- true;
  r

(* ------------------------------------------------------------------ *)
(* Destruction                                                         *)

let destroy (r : Routine.t) =
  if not r.Routine.in_ssa then invalid_arg "Ssa.destroy: routine not in SSA form";
  ignore (Critical_edges.split_all r);
  let cfg = r.Routine.cfg in
  let fresh () = Routine.fresh_reg r in
  Cfg.iter_blocks
    (fun b ->
      let phis = Block.phis b in
      if phis <> [] then begin
        let preds =
          match phis with
          | Instr.Phi { args; _ } :: _ -> List.map fst args
          | _ -> assert false
        in
        let pairs_for p =
          List.map
            (function
              | Instr.Phi { dst; args } -> (dst, List.assoc p args)
              | _ -> assert false)
            phis
        in
        (match preds with
        | [ p ] ->
          (* A single predecessor: the copies may sit at the top of the
             block itself, which is safe even if [p] has several
             successors. *)
          let seq = Parallel_copy.sequentialize ~fresh (pairs_for p) in
          b.Block.instrs <-
            List.map (fun (dst, src) -> Instr.Copy { dst; src }) seq @ Block.non_phis b
        | preds ->
          (* Several predecessors: critical-edge splitting guarantees each
             has this block as its only successor, so copies at their ends
             execute exactly on the right edge. *)
          List.iter
            (fun p ->
              assert (List.length (Cfg.succs cfg p) = 1);
              let seq = Parallel_copy.sequentialize ~fresh (pairs_for p) in
              List.iter
                (fun (dst, src) -> Block.append (Cfg.block cfg p) (Instr.Copy { dst; src }))
                seq)
            preds;
          b.Block.instrs <- Block.non_phis b)
      end)
    cfg;
  r.Routine.in_ssa <- false;
  r
