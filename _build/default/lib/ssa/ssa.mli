(** Pruned SSA construction and destruction.

    Construction follows Cytron et al.: phis at iterated dominance
    frontiers, pruned by liveness, renamed along a dominator-tree walk.
    Following the paper's Section 3.1, the renaming step by default folds
    copies away ("effectively folding them into phi-nodes"), freeing the
    optimizer from the programmer's choice of variable names.

    Destruction splits critical edges and lowers each block's phis to
    sequentialized parallel copies (see [Parallel_copy]), placed at
    predecessor ends — or at the block top for single-predecessor blocks. *)

open Epre_ir

(** A register was read on some path before any write. The front end's
    zero-initialization of locals prevents this for compiled programs. *)
exception Use_before_def of { routine : string; reg : Instr.reg }

type build_config = { fold_copies : bool }

val default_build_config : build_config
(** [{ fold_copies = true }] *)

(** Convert to pruned SSA in place (also returns the routine). Requires
    [not in_ssa].
    @raise Use_before_def on non-strict input. *)
val build : ?config:build_config -> Routine.t -> Routine.t

(** Replace phis by copies; requires [in_ssa]. Safe on value-renamed code
    (GVN output): copy groups keep parallel semantics. *)
val destroy : Routine.t -> Routine.t
