(** Critical-edge splitting.

    An edge [p -> s] is critical when [p] has several successors and [s]
    several predecessors; nothing can be placed "on" such an edge without a
    landing block. Both PRE's edge placement (Drechsler–Stadel) and phi
    elimination before forward propagation require splitting these. *)

open Epre_ir

let is_critical cfg preds ~from_ ~to_ =
  List.length (Cfg.succs cfg from_) > 1 && List.length preds.(to_) > 1

(** Split every critical edge; returns the number of edges split. *)
let split_all (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let preds = Cfg.preds cfg in
  let count = ref 0 in
  (* Snapshot the edges first: splitting mutates the graph. *)
  let edges =
    Cfg.fold_blocks
      (fun acc b ->
        List.fold_left (fun acc s -> (b.Block.id, s) :: acc) acc (Block.succs b))
      [] cfg
  in
  List.iter
    (fun (p, s) ->
      if is_critical cfg preds ~from_:p ~to_:s then begin
        ignore (Cfg.split_edge cfg ~from_:p ~to_:s);
        incr count
      end)
    edges;
  !count
