(** SSA well-formedness checker, used pervasively by the test suite.

    Beyond [Routine.validate]: single definitions, every non-phi use
    dominated by its definition, every phi argument's definition dominating
    the matching predecessor. *)

open Epre_ir

exception Not_ssa of string

(** @raise Not_ssa with a diagnostic on violation. *)
val check : Routine.t -> unit
