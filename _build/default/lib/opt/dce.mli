(** Dead code elimination (a baseline pass): mark/sweep over def-use from
    the side-effecting roots (stores, calls, terminator operands). Control
    flow is conservatively kept. Works on SSA and non-SSA code. Returns
    the number of instructions removed. *)

open Epre_ir

val run : Routine.t -> int
