(** CFG cleanup (the paper's "final pass to eliminate empty basic blocks",
    in the style of Cooper–Torczon's Clean).

    Repeats until stable:
    - removes unreachable blocks;
    - folds conditional branches whose arms coincide into jumps;
    - skips empty blocks (a block containing only a jump is bypassed);
    - merges a block into its unique successor when that successor has no
      other predecessors.

    Runs on non-SSA code only: retargeting edges would otherwise have to
    rewrite phi predecessor labels. *)

open Epre_ir
open Epre_analysis

let has_phis b = Block.phis b <> []

let remove_unreachable (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let order = Order.compute cfg in
  let changed = ref false in
  Cfg.iter_blocks
    (fun b ->
      if (not (Order.is_reachable order b.Block.id)) && b.Block.id <> Cfg.entry cfg then begin
        Cfg.remove_block cfg b.Block.id;
        changed := true
      end)
    cfg;
  !changed

let fold_branches (r : Routine.t) =
  let changed = ref false in
  Cfg.iter_blocks
    (fun b ->
      match b.Block.term with
      | Instr.Cbr { cond = _; ifso; ifnot } when ifso = ifnot ->
        b.Block.term <- Instr.Jump ifso;
        changed := true
      | _ -> ())
    r.Routine.cfg;
  !changed

(* Bypass empty blocks: if [b] is instruction-free and ends in [jump t],
   redirect b's predecessors straight to [t]. *)
let skip_empty (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let changed = ref false in
  Cfg.iter_blocks
    (fun b ->
      match b.Block.instrs, b.Block.term with
      | [], Instr.Jump t when b.Block.id <> Cfg.entry cfg && t <> b.Block.id ->
        let id = b.Block.id in
        if not (has_phis (Cfg.block cfg t)) then begin
          Cfg.iter_blocks
            (fun p ->
              let retargeted =
                Instr.map_term_succs (fun s -> if s = id then t else s) p.Block.term
              in
              if retargeted <> p.Block.term then begin
                p.Block.term <- retargeted;
                changed := true
              end)
            cfg
        end
      | _ -> ())
    cfg;
  !changed

(* Merge [b] with its unique successor [t] when [t]'s only predecessor is
   [b]. *)
let merge_straightline (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let preds = Cfg.preds cfg in
    let merged = ref false in
    Cfg.iter_blocks
      (fun b ->
        if not !merged then
          match b.Block.term with
          | Instr.Jump t
            when t <> b.Block.id
                 && preds.(t) = [ b.Block.id ]
                 && t <> Cfg.entry cfg
                 && not (has_phis (Cfg.block cfg t)) ->
            let tb = Cfg.block cfg t in
            b.Block.instrs <- b.Block.instrs @ tb.Block.instrs;
            b.Block.term <- tb.Block.term;
            Cfg.remove_block cfg t;
            merged := true;
            continue_ := true;
            changed := true
          | _ -> ())
      cfg
  done;
  !changed

let run (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Clean.run: requires non-SSA code";
  let continue_ = ref true in
  while !continue_ do
    let c1 = fold_branches r in
    let c2 = remove_unreachable r in
    let c3 = skip_empty r in
    let c4 = remove_unreachable r in
    let c5 = merge_straightline r in
    continue_ := c1 || c2 || c3 || c4 || c5
  done;
  r
