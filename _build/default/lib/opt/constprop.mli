(** Sparse conditional constant propagation (Wegman–Zadeck), the paper's
    baseline "global constant propagation".

    An ILOC -> ILOC filter: SSA is built internally, the conditional
    lattice fixpoint computed, constant registers rematerialized, decided
    branches turned into jumps, stranded blocks dropped, SSA destroyed.
    Returns how many instructions became constants. *)

open Epre_ir

val run : Routine.t -> int
