(** CFG cleanup (the paper's "final pass to eliminate empty basic blocks"):
    removes unreachable blocks, folds same-target branches, bypasses empty
    blocks, merges straight-line pairs; repeats until stable. Requires
    non-SSA code. *)

open Epre_ir

val run : Routine.t -> Routine.t
