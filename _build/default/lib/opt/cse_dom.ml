(** Dominator-based redundancy elimination — method 1 of the paper's
    Section 5.3 hierarchy (Alpern–Wegman–Zadeck's suggestion: "if a value x
    is computed at two points p and q, and p dominates q, then the
    computation at q is redundant and may be deleted").

    Realized as a preorder dominator-tree walk over SSA with a scoped table
    of expressions: SSA operands are never redefined, so an expression seen
    on the walk is valid throughout the subtree and any re-computation below
    is replaced by a copy. Loads are excluded — memory kills are path
    properties that dominance cannot see. The weakest member of the
    hierarchy: it misses the if-then-else join redundancy of Section 2 that
    available-expression CSE catches. *)

open Epre_ir
open Epre_analysis

type key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg

let key_of = function
  | Instr.Const { value; _ } -> Some (KConst value)
  | Instr.Unop { op; src; _ } -> Some (KUnop (op, src))
  | Instr.Binop { op; a; b; _ } ->
    let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
    Some (KBinop (op, a, b))
  | Instr.Load _ | Instr.Copy _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _
  | Instr.Phi _ -> None

let run (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let cfg = r.Routine.cfg in
  let dom = Dom.compute cfg in
  let table : (key, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  let deleted = ref 0 in
  let rec walk id =
    let b = Cfg.block cfg id in
    let added = ref [] in
    b.Block.instrs <-
      List.map
        (fun i ->
          match key_of i, Instr.def i with
          | Some key, Some dst -> begin
            match Hashtbl.find_opt table key with
            | Some earlier ->
              incr deleted;
              Instr.Copy { dst; src = earlier }
            | None ->
              Hashtbl.add table key dst;
              added := key :: !added;
              i
          end
          | _ -> i)
        b.Block.instrs;
    List.iter walk (Dom.children dom id);
    List.iter (fun key -> Hashtbl.remove table key) !added
  in
  walk (Cfg.entry cfg);
  let r = Epre_ssa.Ssa.destroy r in
  ignore r;
  !deleted
