(** Aggressive dead code elimination — the control-dependence formulation
    of Cytron et al. Section 7.1 (the paper's citation for its DCE),
    provided as an extension next to the conservative [Dce].

    Branches are live only when live code is control-dependent on them;
    dead branches are rewritten into jumps to the nearest live
    postdominator, so whole dead regions (a loop computing only unused
    values, its test and induction variable included) disappear. Degrades
    to conservative branch handling when live code sits in a region that
    cannot reach an exit. Requires non-SSA code; run [Clean] afterwards.
    Returns the number of instructions/branches removed. *)

open Epre_ir

val run : Routine.t -> int
