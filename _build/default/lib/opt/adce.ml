(** Aggressive dead code elimination — the control-dependence formulation
    of Cytron et al. Section 7.1, the paper's citation for its baseline
    DCE, provided as an extension next to the conservative [Dce].

    Where [Dce] keeps every branch, this pass marks branches live only when
    something live is control-dependent on them; a dead branch is rewritten
    into a jump to the block's nearest live postdominator, deleting whole
    dead control-flow regions (classically: a loop computing only unused
    values disappears entirely, induction variable, test and all).

    Runs on non-SSA code, so branch retargeting needs no phi repair; use
    [Clean] afterwards to collect the unreachable carcasses. Marking is
    per-register (all definitions of a used register are live), which is
    exact on code derived from SSA destruction and safely conservative
    otherwise. *)

open Epre_ir
open Epre_analysis

let run (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Adce.run: requires non-SSA code";
  let cfg = r.Routine.cfg in
  let pdom = Postdom.compute cfg in
  let order = Order.compute cfg in
  let width = max 1 r.Routine.next_reg in
  (* defs_of.(v): instructions defining v, with their blocks *)
  let defs_of = Array.make width [] in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          Option.iter (fun d -> defs_of.(d) <- (b.Block.id, i) :: defs_of.(d)) (Instr.def i))
        b.Block.instrs)
    cfg;
  (* live instructions (by identity within their block), live branches (by
     block id), live registers *)
  let live_instr : (int * Instr.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let live_branch : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let live_reg = Array.make width false in
  let work = Queue.create () in
  (* Live content inside a region that cannot reach an exit has no control
     dependence information; in that case branch rewriting is unsafe and
     the pass degrades to conservative behaviour. *)
  let degrade = ref false in
  let mark_reg v = if not live_reg.(v) then begin
      live_reg.(v) <- true;
      Queue.add (`Reg v) work
    end
  in
  let mark_block_live b =
    (* something in b is live: the branches b is control-dependent on
       become live *)
    if Postdom.ipostdom pdom b < 0 then degrade := true;
    List.iter
      (fun dep ->
        if not (Hashtbl.mem live_branch dep) then begin
          Hashtbl.replace live_branch dep ();
          Queue.add (`Branch dep) work
        end)
      (Postdom.control_deps pdom b)
  in
  let mark_instr blk i =
    if not (Hashtbl.mem live_instr (blk, i)) then begin
      Hashtbl.replace live_instr (blk, i) ();
      List.iter mark_reg (Instr.uses i);
      mark_block_live blk
    end
  in
  (* roots: side effects, and every return's operand + its block *)
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        List.iter (fun i -> if Instr.has_side_effect i then mark_instr id i) b.Block.instrs;
        (match b.Block.term with
        | Instr.Ret ro ->
          Option.iter mark_reg ro;
          mark_block_live id
        | Instr.Jump _ -> ()
        | Instr.Cbr _ ->
          (* blocks that cannot reach an exit (infinite loops) keep their
             branches: nothing postdominates them *)
          if Postdom.ipostdom pdom id < 0 then begin
            Hashtbl.replace live_branch id ();
            Queue.add (`Branch id) work
          end)
      end)
    cfg;
  let drain () =
    while not (Queue.is_empty work) do
      match Queue.take work with
      | `Reg v -> List.iter (fun (blk, i) -> mark_instr blk i) defs_of.(v)
      | `Branch blk -> begin
        (* the branch's condition and its own control dependences are live *)
        match (Cfg.block cfg blk).Block.term with
        | Instr.Cbr { cond; _ } ->
          mark_reg cond;
          mark_block_live blk
        | Instr.Jump _ | Instr.Ret _ -> ()
      end
    done
  in
  drain ();
  if !degrade then begin
    (* conservative fallback: every branch (and hence every condition) is
       live, exactly like [Dce] *)
    Cfg.iter_blocks
      (fun b ->
        match b.Block.term with
        | Instr.Cbr _ when not (Hashtbl.mem live_branch b.Block.id) ->
          Hashtbl.replace live_branch b.Block.id ();
          Queue.add (`Branch b.Block.id) work
        | _ -> ())
      cfg;
    drain ()
  end;
  (* sweep *)
  let removed = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      if Order.is_reachable order id then begin
        b.Block.instrs <-
          List.filter
            (fun i ->
              let keep = Hashtbl.mem live_instr (id, i) in
              if not keep then incr removed;
              keep)
            b.Block.instrs;
        match b.Block.term with
        | Instr.Cbr _ when (not (Hashtbl.mem live_branch id)) && not !degrade ->
          (* redirect to the nearest live postdominator *)
          let is_live_block blk =
            blk = Postdom.exit_node pdom
            || Hashtbl.mem live_branch blk
            || (match (Cfg.block cfg blk).Block.term with Instr.Ret _ -> true | _ -> false)
            || List.exists (fun i -> Hashtbl.mem live_instr (blk, i))
                 (Cfg.block cfg blk).Block.instrs
          in
          let rec nearest blk =
            let p = Postdom.ipostdom pdom blk in
            if p < 0 || p = Postdom.exit_node pdom then None
            else if is_live_block p then Some p
            else nearest p
          in
          (match nearest id with
          | Some target ->
            b.Block.term <- Instr.Jump target;
            incr removed
          | None ->
            (* no live postdominator short of the exit: keep the branch *)
            ())
        | Instr.Cbr _ | Instr.Jump _ | Instr.Ret _ -> ()
      end)
    cfg;
  !removed
