(** Expression-name normalization — the Section 2.2 discipline, and the
    Section 5.1 safety net.

    Establishes the invariant PRE and the CSE passes rely on: a bijection
    between expression names and expressions. An existing register is
    reused as a canonical name only when that cannot change what any use
    observes (single evaluation site, or no upward-exposed uses);
    violators — like the paper's sqrt example, where a name is live across
    a block boundary — get a fresh canonical name with per-site copies.

    A no-op on front-end output and (normally) on GVN output. Returns the
    number of rewritten evaluation sites. Requires non-SSA code. *)

open Epre_ir

val run : Routine.t -> int
