(** Dead code elimination (the paper's baseline DCE, cf. Cytron et al. §7.1
    in spirit).

    Mark/sweep over def-use: roots are instructions with side effects
    (stores, calls), terminator operands, and phi arguments feeding live
    phis. Everything transitively feeding a root is live; the rest —
    including dead loads and allocas, which have no side effects here — is
    swept. Branches are conservatively kept, so control flow is untouched.

    Works on SSA and non-SSA code alike: marking is per-register, which is
    exact for SSA and safely conservative for multi-def registers. *)

open Epre_util
open Epre_ir

let run (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let live = Bitset.create width in
  let work = Queue.create () in
  let mark reg =
    if not (Bitset.mem live reg) then begin
      Bitset.add live reg;
      Queue.add reg work
    end
  in
  (* defs_of.(v) = instructions defining v (to propagate through). *)
  let defs_of = Array.make width [] in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          Option.iter (fun d -> defs_of.(d) <- i :: defs_of.(d)) (Instr.def i);
          if Instr.has_side_effect i then List.iter mark (Instr.uses i))
        b.Block.instrs;
      List.iter mark (Instr.term_uses b.Block.term))
    cfg;
  while not (Queue.is_empty work) do
    let v = Queue.take work in
    List.iter (fun i -> List.iter mark (Instr.uses i)) defs_of.(v)
  done;
  let removed = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      b.Block.instrs <-
        List.filter
          (fun i ->
            let keep =
              Instr.has_side_effect i
              ||
              match Instr.def i with
              | Some d -> Bitset.mem live d
              | None -> true
            in
            if not keep then incr removed;
            keep)
          b.Block.instrs)
    cfg;
  !removed
