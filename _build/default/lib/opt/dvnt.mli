(** Dominator-tree value numbering with hashing — the second pass the
    paper's optimizer was missing (Section 4.1), in the style Briggs,
    Cooper and Simpson later published: a scoped-hash dominator walk over
    internally-built SSA with copy propagation through value numbers,
    constant folding, and algebraic simplification. Redundant computations
    become copies to the canonical register; DCE and coalescing clean up.
    Returns the number of instructions simplified or redirected. *)

open Epre_ir

val run : Routine.t -> int
