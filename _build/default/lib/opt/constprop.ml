(** Sparse conditional constant propagation (Wegman–Zadeck), the paper's
    baseline "global constant propagation [26]".

    The analysis runs on SSA built internally (the pass is an ILOC -> ILOC
    filter like every other). Lattice per register: Top (no evidence yet),
    Const v, Bottom. Flow edges become executable as branches are decided;
    phi meets only consider executable incoming edges. After the fixpoint,
    constant registers are rematerialized as [Const], decided branches
    become jumps, newly unreachable blocks are dropped (with phi arguments
    filtered to the surviving predecessors), and SSA is destroyed. *)

open Epre_ir

type lattice = Top | Known of Value.t | Bottom

let meet a b =
  match a, b with
  | Top, x | x, Top -> x
  | Bottom, _ | _, Bottom -> Bottom
  | Known u, Known v -> if Value.equal u v then Known u else Bottom

type state = {
  routine : Routine.t;
  value : lattice array;
  edge_executable : (int * int, unit) Hashtbl.t;
  block_visited : bool array;
  (* uses per register: instructions (with their block) and terminators *)
  use_sites : (int * [ `Instr of Instr.t | `Term ]) list array;
  flow_work : (int * int) Queue.t;  (** edges (pred, succ); pred = -1 for entry *)
  ssa_work : Instr.reg Queue.t;
}

let lattice_equal a b =
  match a, b with
  | Top, Top | Bottom, Bottom -> true
  | Known u, Known v -> Value.equal u v
  | Top, (Known _ | Bottom) | Known _, (Top | Bottom) | Bottom, (Top | Known _) -> false

(* Monotone update: meet with the old value, so registers only ever move
   down the lattice. [Value.equal] treats NaN as equal to itself, keeping
   the fixpoint finite even for float constants. *)
let set_value st reg v =
  let v = meet st.value.(reg) v in
  if not (lattice_equal st.value.(reg) v) then begin
    st.value.(reg) <- v;
    Queue.add reg st.ssa_work
  end

let add_flow_edge st ~from_ ~to_ =
  if not (Hashtbl.mem st.edge_executable (from_, to_)) then begin
    Hashtbl.replace st.edge_executable (from_, to_) ();
    Queue.add (from_, to_) st.flow_work
  end

let eval_phi st ~block dst args =
  let v =
    List.fold_left
      (fun acc (p, src) ->
        if Hashtbl.mem st.edge_executable (p, block) then meet acc st.value.(src)
        else acc)
      Top args
  in
  set_value st dst v

let eval_instr st ~block i =
  match i with
  | Instr.Const { dst; value = v } -> set_value st dst (Known v)
  | Instr.Copy { dst; src } -> set_value st dst st.value.(src)
  | Instr.Unop { op; dst; src } -> begin
    match st.value.(src) with
    | Top -> ()
    | Bottom -> set_value st dst Bottom
    | Known v -> begin
      match Op.eval_unop op v with
      | v' -> set_value st dst (Known v')
      | exception Value.Type_error _ -> set_value st dst Bottom
    end
  end
  | Instr.Binop { op; dst; a; b } -> begin
    match st.value.(a), st.value.(b) with
    | Top, _ | _, Top -> ()
    | Known va, Known vb -> begin
      match Op.eval_binop op va vb with
      | v -> set_value st dst (Known v)
      | exception (Op.Division_by_zero | Value.Type_error _) -> set_value st dst Bottom
    end
    | _, _ -> set_value st dst Bottom
  end
  | Instr.Load { dst; _ } | Instr.Alloca { dst; _ } -> set_value st dst Bottom
  | Instr.Call { dst = Some d; _ } -> set_value st d Bottom
  | Instr.Call { dst = None; _ } | Instr.Store _ -> ()
  | Instr.Phi { dst; args } -> eval_phi st ~block dst args

let eval_term st ~block term =
  match term with
  | Instr.Jump l -> add_flow_edge st ~from_:block ~to_:l
  | Instr.Ret _ -> ()
  | Instr.Cbr { cond; ifso; ifnot } -> begin
    match st.value.(cond) with
    | Top -> ()
    | Known (Value.I c) ->
      add_flow_edge st ~from_:block ~to_:(if c <> 0 then ifso else ifnot)
    | Known (Value.F _) | Bottom ->
      add_flow_edge st ~from_:block ~to_:ifso;
      add_flow_edge st ~from_:block ~to_:ifnot
  end

let visit_block st block =
  let b = Cfg.block st.routine.Routine.cfg block in
  List.iter (fun i -> eval_instr st ~block i) b.Block.instrs;
  eval_term st ~block b.Block.term

let analyze (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let st =
    {
      routine = r;
      value = Array.make width Top;
      edge_executable = Hashtbl.create 64;
      block_visited = Array.make (Cfg.num_blocks cfg) false;
      use_sites = Array.make width [];
      flow_work = Queue.create ();
      ssa_work = Queue.create ();
    }
  in
  List.iter (fun p -> st.value.(p) <- Bottom) r.Routine.params;
  Cfg.iter_blocks
    (fun b ->
      let id = b.Block.id in
      List.iter
        (fun i ->
          List.iter
            (fun u -> st.use_sites.(u) <- (id, `Instr i) :: st.use_sites.(u))
            (Instr.uses i))
        b.Block.instrs;
      List.iter
        (fun u -> st.use_sites.(u) <- (id, `Term) :: st.use_sites.(u))
        (Instr.term_uses b.Block.term))
    cfg;
  add_flow_edge st ~from_:(-1) ~to_:(Cfg.entry cfg);
  while not (Queue.is_empty st.flow_work && Queue.is_empty st.ssa_work) do
    while not (Queue.is_empty st.flow_work) do
      let _, s = Queue.take st.flow_work in
      if not st.block_visited.(s) then begin
        st.block_visited.(s) <- true;
        visit_block st s
      end
      else begin
        (* Re-evaluate only the phis: a new incoming edge can change them. *)
        let b = Cfg.block cfg s in
        List.iter
          (function
            | Instr.Phi { dst; args } -> eval_phi st ~block:s dst args
            | _ -> ())
          b.Block.instrs
      end
    done;
    while not (Queue.is_empty st.ssa_work) do
      let reg = Queue.take st.ssa_work in
      List.iter
        (fun (block, site) ->
          if st.block_visited.(block) then
            match site with
            | `Instr i -> eval_instr st ~block i
            | `Term -> eval_term st ~block (Cfg.block cfg block).Block.term)
        st.use_sites.(reg)
    done
  done;
  st

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)

let rewrite (r : Routine.t) (st : state) =
  let cfg = r.Routine.cfg in
  let replaced = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      (* Phis may become constants; keep block layout legal by splitting
         into (phis, everything else) and putting constants between. *)
      let phis, consts, rest =
        List.fold_left
          (fun (phis, consts, rest) i ->
            match i, Instr.def i with
            | Instr.Phi _, Some d -> begin
              match st.value.(d) with
              | Known v ->
                incr replaced;
                (phis, Instr.Const { dst = d; value = v } :: consts, rest)
              | Top | Bottom -> (i :: phis, consts, rest)
            end
            | (Instr.Call _ | Instr.Store _ | Instr.Alloca _), _ ->
              (phis, consts, i :: rest)
            | Instr.Const _, _ -> (phis, consts, i :: rest)
            | _, Some d -> begin
              match st.value.(d) with
              | Known v ->
                incr replaced;
                (phis, consts, Instr.Const { dst = d; value = v } :: rest)
              | Top | Bottom -> (phis, consts, i :: rest)
            end
            | _, None -> (phis, consts, i :: rest))
          ([], [], []) b.Block.instrs
      in
      b.Block.instrs <- List.rev phis @ List.rev consts @ List.rev rest;
      match b.Block.term with
      | Instr.Cbr { cond; ifso; ifnot } -> begin
        match st.value.(cond) with
        | Known (Value.I c) ->
          b.Block.term <- Instr.Jump (if c <> 0 then ifso else ifnot)
        | Known (Value.F _) | Top | Bottom -> ()
      end
      | Instr.Jump _ | Instr.Ret _ -> ())
    cfg;
  (* Decided branches may strand blocks; drop them and trim phi arguments
     down to the surviving predecessors. *)
  let reachable = Cfg.reachable cfg in
  Cfg.iter_blocks
    (fun b ->
      if (not (Epre_util.Bitset.mem reachable b.Block.id)) && b.Block.id <> Cfg.entry cfg
      then Cfg.remove_block cfg b.Block.id)
    cfg;
  let preds = Cfg.preds cfg in
  Cfg.iter_blocks
    (fun b ->
      b.Block.instrs <-
        List.map
          (function
            | Instr.Phi { dst; args } ->
              let args = List.filter (fun (p, _) -> List.mem p preds.(b.Block.id)) args in
              (match args with
              | [ (_, src) ] -> Instr.Copy { dst; src }
              | _ -> Instr.Phi { dst; args })
            | i -> i)
          b.Block.instrs)
    cfg;
  !replaced

(** The pass: ILOC in, ILOC out. *)
let run (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let st = analyze r in
  let replaced = rewrite r st in
  let r = Epre_ssa.Ssa.destroy r in
  ignore r;
  replaced
