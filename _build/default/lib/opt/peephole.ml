(** Global peephole optimization (one of the paper's baseline passes).

    Block-local rewriting driven by a running map from registers to their
    most recent in-block definition:
    - constant folding of unops/binops whose operands are known constants;
    - algebraic identities ([x+0], [x*1], [x*0], [x-x], [x^x]);
    - reconstruction of subtraction from Frailey's [x + (-y)] form, undoing
      the reassociation pass's normalization where profitable (Section 3.1:
      "we rely on a later pass, a form of global peephole optimization, to
      reconstruct the original operations when profitable");
    - conditional branches on known conditions become jumps;
    - optionally, multiplication by a power of two becomes a shift. The
      flag exists because Section 5.2 warns that shifts are not associative:
      performing this rewrite *before* global reassociation destroys
      reassociation opportunities, so the pipeline enables it only in the
      final peephole run. *)

open Epre_ir

type config = { mul_to_shift : bool }

let default_config = { mul_to_shift = false }

let log2_exact n =
  if n <= 0 then None
  else begin
    let rec go k v = if v = 1 then Some k else if v land 1 = 1 then None else go (k + 1) (v asr 1) in
    go 0 n
  end

(* Most recent in-block definition per register, with a version counter per
   register so a recorded definition can be checked for staleness: a
   [neg b] is only usable for subtraction reconstruction while [b] has not
   been redefined since. Constants carry their value, so they can never go
   stale. *)
type local = {
  defs : (Instr.reg, Instr.t * int list) Hashtbl.t;
      (** definition, with the versions its operands had at the time *)
  version : (Instr.reg, int) Hashtbl.t;
}

let version_of local r = Option.value ~default:0 (Hashtbl.find_opt local.version r)

let record local i =
  match Instr.def i with
  | None -> ()
  | Some d ->
    Hashtbl.replace local.defs d (i, List.map (version_of local) (Instr.uses i));
    Hashtbl.replace local.version d (version_of local d + 1)

(* The recorded definition of [r], only if none of its operands has been
   redefined since. *)
let fresh_def local r =
  match Hashtbl.find_opt local.defs r with
  | Some (i, versions)
    when List.for_all2 (fun u v -> version_of local u = v) (Instr.uses i) versions ->
    Some i
  | Some _ | None -> None

let lookup_const local r =
  match Hashtbl.find_opt local.defs r with
  | Some (Instr.Const { value; _ }, _) -> Some value
  | _ -> None

let lookup_neg local r =
  match fresh_def local r with
  | Some (Instr.Unop { op = Op.Neg; src; _ }) -> Some (Op.Sub, src)
  | Some (Instr.Unop { op = Op.FNeg; src; _ }) -> Some (Op.FSub, src)
  | _ -> None

let simplify_binop local ~dst op a b =
  let const_a = lookup_const local a and const_b = lookup_const local b in
  let konst value = Some (Instr.Const { dst; value }) in
  match const_a, const_b with
  | Some va, Some vb -> begin
    match Op.eval_binop op va vb with
    | v -> konst v
    | exception (Op.Division_by_zero | Value.Type_error _) -> None
  end
  | _ -> begin
    (* Identity on the right operand: x op e = x. *)
    let right_identity () =
      match Op.identity op, const_b with
      | Some e, Some vb when Value.equal e vb -> Some (Instr.Copy { dst; src = a })
      | _ -> None
    in
    let left_identity () =
      match Op.identity op, const_a with
      | Some e, Some va when Op.commutative op && Value.equal e va ->
        Some (Instr.Copy { dst; src = b })
      | _ -> None
    in
    let annihilate () =
      match Op.annihilator op, const_a, const_b with
      | Some z, _, Some vb when Value.equal z vb -> konst z
      | Some z, Some va, _ when Op.commutative op && Value.equal z va -> konst z
      | _ -> None
    in
    let self_cancel () =
      if a = b then
        match op with
        | Op.Sub | Op.Xor -> konst (Value.I 0)
        | Op.Eq | Op.Le | Op.Ge -> konst (Value.I 1)
        | Op.Ne | Op.Lt | Op.Gt -> konst (Value.I 0)
        | Op.And | Op.Or | Op.Min | Op.Max -> Some (Instr.Copy { dst; src = a })
        | _ -> None
      else None
    in
    (* x + (-y) -> x - y (and the float counterpart). *)
    let reconstruct_sub () =
      match op with
      | Op.Add | Op.FAdd -> begin
        match lookup_neg local b with
        | Some (sub, y) -> Some (Instr.Binop { op = sub; dst; a; b = y })
        | None -> begin
          match lookup_neg local a with
          | Some (sub, y) -> Some (Instr.Binop { op = sub; dst; a = b; b = y })
          | None -> None
        end
      end
      | _ -> None
    in
    let rec first = function
      | [] -> None
      | f :: rest -> ( match f () with Some i -> Some i | None -> first rest)
    in
    first [ right_identity; left_identity; annihilate; self_cancel; reconstruct_sub ]
  end

(* [x * 2^k -> x shl k]: needs a register for the shift amount, so it can
   emit a preceding Const and therefore returns a list. Exposed separately
   because running it before reassociation loses grouping opportunities
   (Section 5.2) — the pipeline only enables it in the final peephole. *)
let mul_to_shift_rewrite (r : Routine.t) local ~dst op a b const_a const_b =
  let candidate =
    match op, const_a, const_b with
    | Op.Mul, _, Some (Value.I n) -> Option.map (fun k -> (a, k)) (log2_exact n)
    | Op.Mul, Some (Value.I n), _ -> Option.map (fun k -> (b, k)) (log2_exact n)
    | _ -> None
  in
  match candidate with
  | Some (x, k) when k > 0 ->
    let kreg = Routine.fresh_reg r in
    ignore local;
    Some
      [ Instr.Const { dst = kreg; value = Value.I k };
        Instr.Binop { op = Op.Shl; dst; a = x; b = kreg } ]
  | _ -> None

let simplify_unop local ~dst op src =
  match lookup_const local src with
  | Some v -> begin
    match Op.eval_unop op v with
    | v -> Some (Instr.Const { dst; value = v })
    | exception Value.Type_error _ -> None
  end
  | None -> begin
    (* neg (neg x) = x, not (not x) = x — valid only while x is the value
       the inner negation read *)
    match op, fresh_def local src with
    | Op.Neg, Some (Instr.Unop { op = Op.Neg; src = inner; _ })
    | Op.FNeg, Some (Instr.Unop { op = Op.FNeg; src = inner; _ })
    | Op.Not, Some (Instr.Unop { op = Op.Not; src = inner; _ }) ->
      Some (Instr.Copy { dst; src = inner })
    | _ -> None
  end

let run ?(config = default_config) (r : Routine.t) =
  let rewrites = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      let local = { defs = Hashtbl.create 32; version = Hashtbl.create 32 } in
      let step i =
        let replacement =
          match i with
          | Instr.Binop { op; dst; a; b } -> begin
            match simplify_binop local ~dst op a b with
            | Some better -> Some [ better ]
            | None ->
              if config.mul_to_shift then
                mul_to_shift_rewrite r local ~dst op a b (lookup_const local a)
                  (lookup_const local b)
              else None
          end
          | Instr.Unop { op; dst; src } ->
            Option.map (fun better -> [ better ]) (simplify_unop local ~dst op src)
          | _ -> None
        in
        let out = match replacement with
          | Some instrs ->
            incr rewrites;
            instrs
          | None -> [ i ]
        in
        List.iter (record local) out;
        out
      in
      b.Block.instrs <- List.concat_map step b.Block.instrs;
      (* Constant conditions become jumps. *)
      match b.Block.term with
      | Instr.Cbr { cond; ifso; ifnot } -> begin
        match lookup_const local cond with
        | Some (Value.I c) ->
          b.Block.term <- Instr.Jump (if c <> 0 then ifso else ifnot);
          incr rewrites
        | Some (Value.F _) | None -> ()
      end
      | Instr.Jump _ | Instr.Ret _ -> ())
    r.Routine.cfg;
  !rewrites
