(** Operator strength reduction — the pass the paper's optimizer was
    missing ("we are currently missing passes for strength reduction and
    hash-based value numbering... strength reduction should reduce
    non-essential overhead", Section 4.1/5.2). Provided here as an
    extension so the interaction the paper predicts — reassociation letting
    strength reduction introduce fewer induction variables — can be
    measured ([bench/main.exe strength]).

    The classic transformation, on SSA over natural loops:

    - a {e basic induction variable} is a header phi [p = phi(init@pre,
      next@latch)] whose latch value is [p ± c] for a region constant [c]
      (defined outside the loop, or a constant);
    - a {e derived induction variable} is [x = p ± rc] for a region
      constant [rc]: same step as [p];
    - a {e reduction candidate} is [j = x * m] ([m] a region constant, [x]
      an induction variable, integer multiply only — float reductions would
      change rounding): it is replaced by a new induction variable that
      starts at [x0 * m] in the preheader and steps by [c * m] at the
      latch, turning the loop multiply into an add.

    Linear-function test replacement is deliberately out of scope; dead
    original IVs are left for DCE/coalescing to sweep. *)

open Epre_ir
open Epre_analysis

type iv = {
  phi_reg : Instr.reg;  (** the header phi *)
  init : Instr.reg;  (** value entering from the preheader *)
  step : Instr.reg;  (** region-constant step register *)
  step_op : Op.binop;  (** [Add] or [Sub] *)
  (* for derived IVs: x = phi_reg `adjust_op` adjust (Add/Sub), identity for
     basic ones *)
  self : Instr.reg;  (** the register holding this IV's value *)
  adjust : (Op.binop * Instr.reg * bool) option;
      (** (op, rc, iv_on_left); [None] for a basic IV *)
}

type loop_ctx = {
  header : int;
  preheader : int;
  latch : int;
  in_body : int -> bool;
}

(* A region constant: defined outside the loop (params and entry-defined
   values included), or a literal constant — the front end materializes
   literals next to their uses, i.e. inside the loop, but a [Const] can
   always be cloned into the preheader. *)
let region_constant ctx du reg =
  match Defuse.def_site du reg with
  | Some Defuse.Param | None -> true
  | Some (Defuse.At { block; _ }) ->
    (not (ctx.in_body block))
    || (match Defuse.def_instr du reg with Some (Instr.Const _) -> true | _ -> false)

(* A register usable at the end of the preheader: itself when its
   definition already dominates the preheader, or a clone when it is a
   loop-resident literal. *)
let materialize_rc ctx du (r : Routine.t) pre reg =
  let dominates_pre =
    match Defuse.def_site du reg with
    | Some Defuse.Param | None -> true
    | Some (Defuse.At { block; _ }) -> not (ctx.in_body block)
  in
  if dominates_pre then reg
  else
    match Defuse.def_instr du reg with
    | Some (Instr.Const { value; _ }) ->
      let dst = Routine.fresh_reg r in
      Block.append pre (Instr.Const { dst; value });
      dst
    | _ -> invalid_arg "Strength.materialize_rc: not a region constant"

let find_loop_ctx preds (l : Loops.loop) =
  let body = l.Loops.body in
  let in_body b = List.mem b body in
  let outside, inside = List.partition (fun p -> not (in_body p)) preds.(l.Loops.header) in
  match outside, inside with
  | [ preheader ], [ latch ] -> Some { header = l.Loops.header; preheader; latch; in_body }
  | _ -> None

(* Basic IVs of a loop. *)
let basic_ivs ctx du (r : Routine.t) =
  let header_block = Cfg.block r.Routine.cfg ctx.header in
  List.filter_map
    (fun i ->
      match i with
      | Instr.Phi { dst; args = [ (p1, a1); (p2, a2) ] } ->
        let init, next =
          if p1 = ctx.preheader && p2 = ctx.latch then (a1, a2)
          else if p2 = ctx.preheader && p1 = ctx.latch then (a2, a1)
          else (-1, -1)
        in
        if init < 0 then None
        else begin
          match Defuse.def_instr du next with
          | Some (Instr.Binop { op = Op.Add; a; b; _ })
            when a = dst && region_constant ctx du b ->
            Some { phi_reg = dst; init; step = b; step_op = Op.Add; self = dst; adjust = None }
          | Some (Instr.Binop { op = Op.Add; a; b; _ })
            when b = dst && region_constant ctx du a ->
            Some { phi_reg = dst; init; step = a; step_op = Op.Add; self = dst; adjust = None }
          | Some (Instr.Binop { op = Op.Sub; a; b; _ })
            when a = dst && region_constant ctx du b ->
            Some { phi_reg = dst; init; step = b; step_op = Op.Sub; self = dst; adjust = None }
          | _ -> None
        end
      | _ -> None)
    header_block.Block.instrs

(* One level of derivation: x = iv ± rc anywhere in the loop body. *)
let derived_ivs ctx du (r : Routine.t) basics =
  let by_reg = Hashtbl.create 8 in
  List.iter (fun iv -> Hashtbl.replace by_reg iv.phi_reg iv) basics;
  let out = ref [] in
  Cfg.iter_blocks
    (fun b ->
      if ctx.in_body b.Block.id then
        List.iter
          (fun i ->
            match i with
            | Instr.Binop { op = (Op.Add | Op.Sub) as op; dst; a; b = b' } -> begin
              match Hashtbl.find_opt by_reg a, Hashtbl.find_opt by_reg b' with
              | Some iv, None when region_constant ctx du b' ->
                out := { iv with self = dst; adjust = Some (op, b', true) } :: !out
              | None, Some iv when op = Op.Add && region_constant ctx du a ->
                out := { iv with self = dst; adjust = Some (op, a, false) } :: !out
              | _ -> ()
            end
            | _ -> ())
          b.Block.instrs)
    r.Routine.cfg;
  !out

(* j = x * m with x an IV and m a region constant. *)
let reduction_candidates ctx du (r : Routine.t) ivs =
  let by_reg = Hashtbl.create 8 in
  List.iter (fun iv -> Hashtbl.replace by_reg iv.self iv) ivs;
  let out = ref [] in
  Cfg.iter_blocks
    (fun b ->
      if ctx.in_body b.Block.id then
        List.iter
          (fun i ->
            match i with
            | Instr.Binop { op = Op.Mul; dst; a; b = b' } -> begin
              match Hashtbl.find_opt by_reg a, Hashtbl.find_opt by_reg b' with
              | Some iv, None when region_constant ctx du b' -> out := (dst, iv, b') :: !out
              | None, Some iv when region_constant ctx du a -> out := (dst, iv, a) :: !out
              | _ -> ()
            end
            | _ -> ())
          b.Block.instrs)
    r.Routine.cfg;
  !out

let reduce_candidate (r : Routine.t) ctx du (j, iv, m) =
  let cfg = r.Routine.cfg in
  let pre = Cfg.block cfg ctx.preheader in
  let fresh () = Routine.fresh_reg r in
  let m = materialize_rc ctx du r pre m in
  let step = materialize_rc ctx du r pre iv.step in
  (* preheader: x0 = init (± rc); j0 = x0 * m; stepm = step * m *)
  let x0 =
    match iv.adjust with
    | None -> iv.init
    | Some (op, rc, iv_on_left) ->
      let rc = materialize_rc ctx du r pre rc in
      let t = fresh () in
      let a, b = if iv_on_left then (iv.init, rc) else (rc, iv.init) in
      Block.append pre (Instr.Binop { op; dst = t; a; b });
      t
  in
  let j0 = fresh () in
  Block.append pre (Instr.Binop { op = Op.Mul; dst = j0; a = x0; b = m });
  let stepm = fresh () in
  Block.append pre (Instr.Binop { op = Op.Mul; dst = stepm; a = step; b = m });
  (* latch: jnext = jphi ± stepm *)
  let jphi = fresh () in
  let jnext = fresh () in
  let latch = Cfg.block cfg ctx.latch in
  Block.append latch (Instr.Binop { op = iv.step_op; dst = jnext; a = jphi; b = stepm });
  (* header phi *)
  let header = Cfg.block cfg ctx.header in
  header.Block.instrs <-
    Instr.Phi { dst = jphi; args = [ (ctx.preheader, j0); (ctx.latch, jnext) ] }
    :: header.Block.instrs;
  (* replace the multiply with a copy *)
  Cfg.iter_blocks
    (fun b ->
      if ctx.in_body b.Block.id then
        b.Block.instrs <-
          List.map
            (fun i ->
              match i with
              | Instr.Binop { op = Op.Mul; dst; _ } when dst = j ->
                Instr.Copy { dst = j; src = jphi }
              | i -> i)
            b.Block.instrs)
    cfg

(* Ensure the loop has a dedicated preheader block on the preheader->header
   edge: computations we add must not execute on paths that bypass the
   loop. *)
let ensure_preheader (r : Routine.t) ctx =
  let cfg = r.Routine.cfg in
  if List.length (Cfg.succs cfg ctx.preheader) > 1 then begin
    let nb = Cfg.split_edge cfg ~from_:ctx.preheader ~to_:ctx.header in
    { ctx with preheader = nb.Block.id }
  end
  else ctx

let run (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let cfg = r.Routine.cfg in
  let loops = Loops.compute cfg in
  let preds = Cfg.preds cfg in
  let reduced = ref 0 in
  List.iter
    (fun l ->
      match find_loop_ctx preds l with
      | None -> ()
      | Some ctx ->
        (* recompute def-use per loop: earlier reductions added code *)
        let du = Defuse.compute r in
        let basics = basic_ivs ctx du r in
        if basics <> [] then begin
          let ivs = basics @ derived_ivs ctx du r basics in
          let candidates = reduction_candidates ctx du r ivs in
          if candidates <> [] then begin
            let ctx = ensure_preheader r ctx in
            List.iter
              (fun c ->
                reduce_candidate r ctx du c;
                incr reduced)
              candidates
          end
        end)
    (Loops.loops loops);
  let r = Epre_ssa.Ssa.destroy r in
  ignore r;
  !reduced
