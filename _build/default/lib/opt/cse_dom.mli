(** Dominator-based redundancy elimination — method 1 of the paper's
    Section 5.3 hierarchy (AWZ: a computation dominated by an equal one is
    redundant). A preorder dominator-tree walk over internally-built SSA
    with a scoped expression table; loads are excluded (memory kills are
    path properties dominance cannot see). Returns the number of
    replacements. *)

open Epre_ir

val run : Routine.t -> int
