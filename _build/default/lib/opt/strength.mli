(** Operator strength reduction — the pass the paper's optimizer was
    missing (Section 4.1) and predicted would compose with reassociation
    (Section 5.2). Classic induction-variable reduction on internally-built
    SSA: integer multiplies of (one-level-derived) induction variables by
    region constants become additively-stepped new induction variables,
    with setup in a dedicated preheader. Float multiplies are never reduced
    (rounding). No linear-function test replacement. Returns the number of
    reduced multiplies. *)

open Epre_ir

val run : Routine.t -> int
