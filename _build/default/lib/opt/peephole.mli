(** Global peephole optimization (a baseline pass): block-local constant
    folding, algebraic identities, reconstruction of subtraction from
    Frailey's [x + (-y)] form, branch folding — and, behind [mul_to_shift],
    multiplication-by-power-of-two into shifts. The flag exists because
    Section 5.2 warns that shifts are not associative: rewriting before
    global reassociation destroys grouping opportunities, so the pipeline
    enables it only in the final peephole run. *)

open Epre_ir

type config = { mul_to_shift : bool }

val default_config : config
(** [{ mul_to_shift = false }] *)

(** Returns the number of rewrites performed. *)
val run : ?config:config -> Routine.t -> int
