(** Chaitin-style copy coalescing (the paper's final cleanup: "the
    coalescing phase of a Chaitin-style global register allocator will
    remove unnecessary copy instructions").

    Builds the interference relation from liveness — a definition point
    interferes with everything live across it, except that a copy's
    destination does not interfere with its source — then merges the two
    names of every copy whose classes do not interfere, and rewrites.
    Repeats until a pass removes nothing: merging frees further copies. *)

open Epre_util
open Epre_ir
open Epre_analysis

(* One coalescing round; returns number of copies removed. *)
let round (r : Routine.t) =
  let cfg = r.Routine.cfg in
  let width = max 1 r.Routine.next_reg in
  let live_info = Liveness.compute r in
  (* interference.(v) = original registers v's class interferes with;
     members.(rep) = original registers in rep's class. *)
  let interference = Array.init width (fun _ -> Bitset.create width) in
  let add_edge a b =
    if a <> b then begin
      Bitset.add interference.(a) b;
      Bitset.add interference.(b) a
    end
  in
  Cfg.iter_blocks
    (fun b ->
      let live = Bitset.copy (Liveness.live_out live_info b.Block.id) in
      List.iter (fun u -> Bitset.add live u) (Instr.term_uses b.Block.term);
      List.iter
        (fun i ->
          (match Instr.def i with
          | Some d ->
            let exempt = match i with Instr.Copy { src; _ } -> Some src | _ -> None in
            Bitset.iter
              (fun v -> if Some v <> exempt then add_edge d v)
              live;
            Bitset.remove live d
          | None -> ());
          List.iter (fun u -> Bitset.add live u) (Instr.uses i))
        (List.rev b.Block.instrs))
    cfg;
  let uf = Union_find.create width in
  let members = Array.init width (fun v ->
      let s = Bitset.create width in
      Bitset.add s v;
      s)
  in
  let is_param = Array.make width false in
  List.iter (fun p -> is_param.(p) <- true) r.Routine.params;
  let interferes x y =
    let rx = Union_find.find uf x and ry = Union_find.find uf y in
    let tmp = Bitset.copy interference.(rx) in
    Bitset.inter_into ~dst:tmp members.(ry);
    not (Bitset.is_empty tmp)
  in
  let merge x y =
    (* Keep a parameter as the representative so entry definitions keep
       their register. *)
    let x, y = if is_param.(Union_find.find uf y) then (y, x) else (x, y) in
    let rx = Union_find.find uf x and ry = Union_find.find uf y in
    Union_find.union_keep_first uf rx ry;
    Bitset.union_into ~dst:members.(rx) members.(ry);
    Bitset.union_into ~dst:interference.(rx) interference.(ry)
  in
  let merged = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Copy { dst; src } ->
            let rd = Union_find.find uf dst and rs = Union_find.find uf src in
            if rd <> rs && not (is_param.(rd) && is_param.(rs)) && not (interferes rd rs)
            then begin
              merge rd rs;
              incr merged
            end
          | _ -> ())
        b.Block.instrs)
    cfg;
  let removed = ref 0 in
  if !merged > 0 then begin
    let rename v = Union_find.find uf v in
    Cfg.iter_blocks
      (fun b ->
        b.Block.instrs <-
          List.filter_map
            (fun i ->
              let i = Instr.map_uses rename (Instr.map_def rename i) in
              match i with
              | Instr.Copy { dst; src } when dst = src ->
                incr removed;
                None
              | i -> Some i)
            b.Block.instrs;
        b.Block.term <- Instr.map_term_uses rename b.Block.term)
      cfg
  end
  else begin
    (* Even with no merges, drop degenerate self-copies. *)
    Cfg.iter_blocks
      (fun b ->
        b.Block.instrs <-
          List.filter
            (fun i ->
              match i with
              | Instr.Copy { dst; src } when dst = src ->
                incr removed;
                false
              | _ -> true)
            b.Block.instrs)
      cfg
  end;
  !removed

let max_rounds = 16

let run (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Coalesce.run: requires non-SSA code";
  let total = ref 0 in
  let rec go n =
    if n < max_rounds then begin
      let removed = round r in
      total := !total + removed;
      if removed > 0 then go (n + 1)
    end
  in
  go 0;
  !total
