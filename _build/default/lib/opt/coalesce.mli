(** Chaitin-style copy coalescing — the paper's final cleanup ("the
    coalescing phase of a Chaitin-style global register allocator will
    remove unnecessary copy instructions").

    Interference comes from liveness (a definition interferes with
    everything live across it, except a copy's source); copies whose
    classes do not interfere are merged, to a fixed point. Requires
    non-SSA code. Returns the number of copies removed. *)

open Epre_ir

val run : Routine.t -> int
