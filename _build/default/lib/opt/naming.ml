(** Expression-name normalization (the discipline of Section 2.2).

    Establishes the invariant PRE and the CSE passes rely on: within a
    routine there is a bijection between expression names and expressions —
    every evaluation of the expression [(op, a, b)] targets the same
    register, and that register is targeted by nothing else. Registers that
    fail the property get a fresh canonical name, with the original name
    re-established by a copy (making it a variable name).

    Code straight out of the front end or out of GVN renaming already
    satisfies the discipline, and then this pass changes nothing. It exists
    so PRE is safe on any ILOC whatsoever — Section 5.1's correctness
    discussion is precisely about inputs that violate the discipline. *)

open Epre_ir

type key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg
  | KLoad of Instr.reg

let key_of = function
  | Instr.Const { value; _ } -> Some (KConst value)
  | Instr.Unop { op; src; _ } -> Some (KUnop (op, src))
  | Instr.Binop { op; a; b; _ } ->
    let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
    Some (KBinop (op, a, b))
  | Instr.Load { addr; _ } -> Some (KLoad addr)
  | Instr.Copy _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _ | Instr.Phi _ -> None

(** Rebuild an expression instruction for [key] targeting [dst]. *)
let instr_of key ~dst =
  match key with
  | KConst value -> Instr.Const { dst; value }
  | KUnop (op, src) -> Instr.Unop { op; dst; src }
  | KBinop (op, a, b) -> Instr.Binop { op; dst; a; b }
  | KLoad addr -> Instr.Load { dst; addr }

let run (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Naming.run: requires non-SSA code";
  (* First pass: which registers already qualify as the canonical name of a
     single key? A register qualifies if all of its definitions are
     evaluations of one and the same key, AND reusing it as the canonical
     name cannot change the value any existing use observes. The latter is
     the crux of Section 5.1: giving a *second* evaluation site the same
     destination register redefines it, and a use in another block that
     referred to the first definition silently starts reading the second
     (the paper's sqrt example). Reuse is therefore safe only when the key
     has a single evaluation site, or when every use of the register sits
     below a definition in its own block (no upward-exposed uses), in which
     case each use keeps reading its adjacent evaluation. *)
  let def_keys : (Instr.reg, key option list) Hashtbl.t = Hashtbl.create 64 in
  let note reg k =
    let prev = Option.value ~default:[] (Hashtbl.find_opt def_keys reg) in
    Hashtbl.replace def_keys reg (k :: prev)
  in
  List.iter (fun p -> note p None) r.Routine.params;
  let key_sites : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let upward_exposed = Hashtbl.create 64 in
  Cfg.iter_blocks
    (fun b ->
      let defined_here = Hashtbl.create 16 in
      let see_use u =
        if not (Hashtbl.mem defined_here u) then Hashtbl.replace upward_exposed u ()
      in
      List.iter
        (fun i ->
          List.iter see_use (Instr.uses i);
          Option.iter
            (fun d ->
              note d (key_of i);
              Hashtbl.replace defined_here d ())
            (Instr.def i);
          match key_of i with
          | Some k ->
            Hashtbl.replace key_sites k
              (1 + Option.value ~default:0 (Hashtbl.find_opt key_sites k))
          | None -> ())
        b.Block.instrs;
      List.iter see_use (Instr.term_uses b.Block.term))
    r.Routine.cfg;
  let qualifies reg key =
    (match Hashtbl.find_opt def_keys reg with
    | Some keys -> List.for_all (fun k -> k = Some key) keys
    | None -> false)
    && (Option.value ~default:0 (Hashtbl.find_opt key_sites key) <= 1
       || not (Hashtbl.mem upward_exposed reg))
  in
  (* canonical name per key: reuse the target when it qualifies, otherwise a
     fresh register. *)
  let canonical : (key, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  let claimed : (Instr.reg, key) Hashtbl.t = Hashtbl.create 64 in
  let name_for key ~current =
    match Hashtbl.find_opt canonical key with
    | Some t -> t
    | None ->
      let t =
        if qualifies current key && not (Hashtbl.mem claimed current) then current
        else Routine.fresh_reg r
      in
      Hashtbl.replace canonical key t;
      Hashtbl.replace claimed t key;
      t
  in
  let rewrites = ref 0 in
  Cfg.iter_blocks
    (fun b ->
      b.Block.instrs <-
        List.concat_map
          (fun i ->
            match key_of i, Instr.def i with
            | Some key, Some dst ->
              let t = name_for key ~current:dst in
              if t = dst then [ i ]
              else begin
                incr rewrites;
                [ instr_of key ~dst:t; Instr.Copy { dst; src = t } ]
              end
            | _ -> [ i ])
          b.Block.instrs)
    r.Routine.cfg;
  !rewrites
