(** Global common-subexpression elimination over available expressions —
    method 2 of the paper's Section 5.3 hierarchy. Deletes evaluations
    whose expression is available (intersection-forward) at the evaluation
    point; under the naming discipline the name already holds the value.
    Requires non-SSA code. Returns the number of deletions. *)

open Epre_ir

val run : Routine.t -> int
