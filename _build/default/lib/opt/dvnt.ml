(** Dominator-tree value numbering with hashing — the second pass the
    paper's optimizer was missing ("we are currently missing passes for
    strength reduction and hash-based value numbering", Section 4.1), in
    the style Briggs, Cooper and Simpson later published.

    A preorder dominator-tree walk over internally-built SSA carrying a
    scoped hash table of expressions, with the classic extras that separate
    it from the bare [Cse_dom] comparator:

    - copy propagation through the value-number map (uses are rewritten to
      their value's canonical register);
    - constant folding: an expression over constant value numbers becomes a
      constant, which is itself hashed;
    - algebraic simplification via [Op.identity], [Op.annihilator] and
      self-cancellation;
    - meaningless phis (all arguments carry one value) are replaced.

    Redundant instructions become copies to the canonical register (never
    dropped outright — a back-edge phi argument may still name the original
    destination), which DCE and coalescing then clean. The paper's
    conjecture that "hash-based value numbering should also benefit from
    reassociation" is measurable by running this after [Reassociate]. *)

open Epre_ir
open Epre_analysis

type key =
  | KConst of Value.t
  | KUnop of Op.unop * Instr.reg
  | KBinop of Op.binop * Instr.reg * Instr.reg

let key_of_parts op a b =
  let a, b = if Op.commutative op && b < a then (b, a) else (a, b) in
  KBinop (op, a, b)

let run (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let cfg = r.Routine.cfg in
  let dom = Dom.compute cfg in
  let width = max 1 r.Routine.next_reg in
  (* value number: canonical register per value; identity by default *)
  let vn = Array.init width Fun.id in
  let lookup v = if v < width then vn.(v) else v in
  (* constant value of a canonical register, when known *)
  let const_of : (Instr.reg, Value.t) Hashtbl.t = Hashtbl.create 32 in
  let table : (key, Instr.reg) Hashtbl.t = Hashtbl.create 64 in
  let replaced = ref 0 in
  let rec walk id =
    let b = Cfg.block cfg id in
    let scope = ref [] in
    let bind key dst =
      Hashtbl.add table key dst;
      scope := key :: !scope
    in
    let vn_saves = ref [] in
    let set_vn dst rep =
      vn_saves := (dst, vn.(dst)) :: !vn_saves;
      vn.(dst) <- rep
    in
    let redirect dst rep =
      set_vn dst rep;
      incr replaced;
      Instr.Copy { dst; src = rep }
    in
    let hash_or_bind key dst i =
      match Hashtbl.find_opt table key with
      | Some rep -> redirect dst rep
      | None ->
        bind key dst;
        i
    in
    b.Block.instrs <-
      List.map
        (fun i ->
          (* copy propagation: route every use through its value number;
             phi arguments from not-yet-visited predecessors keep their
             original names (lookup is the identity there). *)
          let i = Instr.map_uses lookup i in
          match i with
          | Instr.Const { dst; value } ->
            (match Hashtbl.find_opt table (KConst value) with
            | Some rep -> redirect dst rep
            | None ->
              bind (KConst value) dst;
              Hashtbl.replace const_of dst value;
              i)
          | Instr.Copy { dst; src } ->
            (* propagate: later uses of dst route to src's value *)
            set_vn dst (lookup src);
            i
          | Instr.Unop { op; dst; src } -> begin
            match Hashtbl.find_opt const_of src with
            | Some v -> begin
              match Op.eval_unop op v with
              | folded -> begin
                match Hashtbl.find_opt table (KConst folded) with
                | Some rep -> redirect dst rep
                | None ->
                  bind (KConst folded) dst;
                  Hashtbl.replace const_of dst folded;
                  Instr.Const { dst; value = folded }
              end
              | exception Value.Type_error _ -> hash_or_bind (KUnop (op, src)) dst i
            end
            | None -> hash_or_bind (KUnop (op, src)) dst i
          end
          | Instr.Binop { op; dst; a; b = b' } -> begin
            let ca = Hashtbl.find_opt const_of a in
            let cb = Hashtbl.find_opt const_of b' in
            match ca, cb with
            | Some va, Some vb -> begin
              match Op.eval_binop op va vb with
              | folded -> begin
                match Hashtbl.find_opt table (KConst folded) with
                | Some rep -> redirect dst rep
                | None ->
                  bind (KConst folded) dst;
                  Hashtbl.replace const_of dst folded;
                  Instr.Const { dst; value = folded }
              end
              | exception (Op.Division_by_zero | Value.Type_error _) ->
                hash_or_bind (key_of_parts op a b') dst i
            end
            | _ ->
              (* algebraic identities over one constant operand *)
              let simplified =
                let ident v other =
                  match Op.identity op with
                  | Some id when Value.equal id v -> Some (`Reg other)
                  | _ -> None
                in
                let annih v =
                  match Op.annihilator op with
                  | Some z when Value.equal z v -> Some (`Const z)
                  | _ -> None
                in
                match ca, cb with
                | _, Some vb -> begin
                  match ident vb a with
                  | Some x -> Some x
                  | None -> annih vb
                end
                | Some va, _ when Op.commutative op -> begin
                  match ident va b' with
                  | Some x -> Some x
                  | None -> annih va
                end
                | _ ->
                  if a = b' && (op = Op.Sub || op = Op.Xor) then
                    Some (`Const (Value.I 0))
                  else None
              in
              (match simplified with
              | Some (`Reg rep) -> redirect dst (lookup rep)
              | Some (`Const z) -> begin
                match Hashtbl.find_opt table (KConst z) with
                | Some rep -> redirect dst rep
                | None ->
                  bind (KConst z) dst;
                  Hashtbl.replace const_of dst z;
                  Instr.Const { dst; value = z }
              end
              | None -> hash_or_bind (key_of_parts op a b') dst i)
          end
          | Instr.Phi _ ->
            (* Phis stay opaque here; GVN's optimistic partitioning is the
               engine for phi equivalence (Section 3.2). *)
            i
          | Instr.Load _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _ -> i)
        b.Block.instrs;
    b.Block.term <- Instr.map_term_uses lookup b.Block.term;
    List.iter walk (Dom.children dom id);
    List.iter (fun key -> Hashtbl.remove table key) !scope;
    List.iter (fun (dst, old) -> vn.(dst) <- old) !vn_saves
  in
  walk (Cfg.entry cfg);
  let r = Epre_ssa.Ssa.destroy r in
  ignore r;
  !replaced
