lib/opt/strength.mli: Epre_ir Routine
