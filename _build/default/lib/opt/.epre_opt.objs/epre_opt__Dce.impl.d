lib/opt/dce.ml: Array Bitset Block Cfg Epre_ir Epre_util Instr List Option Queue Routine
