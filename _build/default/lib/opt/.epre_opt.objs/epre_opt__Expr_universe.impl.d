lib/opt/expr_universe.ml: Array Bitset Block Cfg Epre_ir Epre_util Hashtbl Instr List Op Option Routine Value
