lib/opt/clean.ml: Array Block Cfg Epre_analysis Epre_ir Instr Order Routine
