lib/opt/naming.ml: Block Cfg Epre_ir Hashtbl Instr List Op Option Routine Value
