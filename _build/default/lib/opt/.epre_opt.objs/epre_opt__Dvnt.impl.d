lib/opt/dvnt.ml: Array Block Cfg Dom Epre_analysis Epre_ir Epre_ssa Fun Hashtbl Instr List Op Routine Value
