lib/opt/coalesce.ml: Array Bitset Block Cfg Epre_analysis Epre_ir Epre_util Instr List Liveness Routine Union_find
