lib/opt/adce.mli: Epre_ir Routine
