lib/opt/cse_avail.mli: Epre_ir Routine
