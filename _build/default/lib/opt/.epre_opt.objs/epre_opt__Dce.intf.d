lib/opt/dce.mli: Epre_ir Routine
