lib/opt/peephole.mli: Epre_ir Routine
