lib/opt/cse_dom.ml: Block Cfg Dom Epre_analysis Epre_ir Epre_ssa Hashtbl Instr List Op Routine Value
