lib/opt/constprop.ml: Array Block Cfg Epre_ir Epre_ssa Epre_util Hashtbl Instr List Op Queue Routine Value
