lib/opt/adce.ml: Array Block Cfg Epre_analysis Epre_ir Hashtbl Instr List Option Order Postdom Queue Routine
