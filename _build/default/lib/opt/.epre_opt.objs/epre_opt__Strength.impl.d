lib/opt/strength.ml: Array Block Cfg Defuse Epre_analysis Epre_ir Epre_ssa Hashtbl Instr List Loops Op Routine
