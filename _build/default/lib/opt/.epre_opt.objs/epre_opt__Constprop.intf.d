lib/opt/constprop.mli: Epre_ir Routine
