lib/opt/coalesce.mli: Epre_ir Routine
