lib/opt/naming.mli: Epre_ir Routine
