lib/opt/clean.mli: Epre_ir Routine
