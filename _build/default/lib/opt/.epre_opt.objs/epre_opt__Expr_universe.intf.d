lib/opt/expr_universe.mli: Bitset Epre_ir Epre_util Instr Op Routine Value
