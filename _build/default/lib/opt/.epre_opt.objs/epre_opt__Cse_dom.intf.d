lib/opt/cse_dom.mli: Epre_ir Routine
