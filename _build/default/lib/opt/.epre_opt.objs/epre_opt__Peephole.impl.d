lib/opt/peephole.ml: Block Cfg Epre_ir Hashtbl Instr List Op Option Routine Value
