lib/opt/cse_avail.ml: Array Bitset Block Cfg Dataflow Epre_analysis Epre_ir Epre_util Expr_universe Instr List Routine
