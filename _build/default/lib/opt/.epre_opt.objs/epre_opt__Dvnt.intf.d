lib/opt/dvnt.mli: Epre_ir Routine
