(** The optimizer pipelines of the paper's experimental study (Section 4).

    Four optimization levels, each a strict extension of the previous:

    - [Baseline]: global constant propagation, global peephole optimization,
      global dead code elimination, coalescing, and empty-block removal;
    - [Partial]: PRE first (over the front end's naming discipline,
      re-normalized for safety), then the baseline sequence;
    - [Reassociation]: global reassociation (without distribution) and
      global value numbering before PRE and the rest;
    - [Distribution]: reassociation including distribution of
      multiplication over addition.

    Every pass consumes and produces ILOC, exactly like the Unix-filter
    passes of the paper's optimizer; passes that need SSA build and destroy
    it internally. *)

open Epre_ir

type level = Baseline | Partial | Reassociation | Distribution

let all_levels = [ Baseline; Partial; Reassociation; Distribution ]

let level_to_string = function
  | Baseline -> "baseline"
  | Partial -> "partial"
  | Reassociation -> "reassociation"
  | Distribution -> "distribution"

let level_of_string = function
  | "baseline" -> Some Baseline
  | "partial" -> Some Partial
  | "reassociation" | "reassoc" -> Some Reassociation
  | "distribution" | "distribute" -> Some Distribution
  | _ -> None

type routine_stats = {
  routine : string;
  reassoc : Epre_reassoc.Reassociate.stats option;
  gvn : Epre_gvn.Gvn.stats option;
  pre : Epre_pre.Pre.stats option;
  constants_folded : int;
  peephole_rewrites : int;
  dce_removed : int;
  copies_coalesced : int;
}

(* [dump] observes the routine after each named stage, for IR tracing (the
   running example of Figures 2-10 uses it). *)
type hooks = { dump : string -> Routine.t -> unit }

let no_hooks = { dump = (fun _ _ -> ()) }

let reassoc_config ~distribute =
  { Epre_reassoc.Expr_tree.default_config with Epre_reassoc.Expr_tree.distribute }

let optimize_routine ?(hooks = no_hooks) ~level (r : Routine.t) =
  let dump name = hooks.dump name r in
  let reassoc = ref None and gvn = ref None and pre = ref None in
  (match level with
  | Baseline -> ()
  | Partial ->
    ignore (Epre_opt.Naming.run r);
    dump "naming";
    pre := Some (Epre_pre.Pre.run r);
    dump "pre"
  | Reassociation | Distribution ->
    let distribute = level = Distribution in
    reassoc := Some (Epre_reassoc.Reassociate.run ~config:(reassoc_config ~distribute) r);
    dump "reassociation";
    gvn := Some (Epre_gvn.Gvn.run r);
    dump "gvn";
    pre := Some (Epre_pre.Pre.run r);
    dump "pre");
  let constants_folded = Epre_opt.Constprop.run r in
  dump "constprop";
  let peephole_rewrites =
    Epre_opt.Peephole.run ~config:{ Epre_opt.Peephole.mul_to_shift = true } r
  in
  dump "peephole";
  let dce_removed = Epre_opt.Dce.run r in
  dump "dce";
  let copies_coalesced = Epre_opt.Coalesce.run r in
  dump "coalesce";
  ignore (Epre_opt.Clean.run r);
  dump "clean";
  Routine.validate r;
  { routine = r.Routine.name; reassoc = !reassoc; gvn = !gvn; pre = !pre;
    constants_folded; peephole_rewrites; dce_removed; copies_coalesced }

(** Optimize a whole program in place; returns per-routine statistics. *)
let optimize ?hooks ~level (p : Program.t) =
  List.map (optimize_routine ?hooks ~level) (Program.routines p)

(** Convenience: copy, optimize the copy, return it with the stats. *)
let optimized_copy ?hooks ~level (p : Program.t) =
  let p' = Program.copy p in
  let stats = optimize ?hooks ~level p' in
  (p', stats)
