lib/core/experiments.mli: Epre_workloads
