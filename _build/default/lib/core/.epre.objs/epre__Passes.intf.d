lib/core/passes.mli: Epre_ir Program Routine
