lib/core/passes.ml: Epre_gvn Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_ssa List Pipeline Program Routine String
