lib/core/pipeline.mli: Epre_gvn Epre_ir Epre_pre Epre_reassoc Program Routine
