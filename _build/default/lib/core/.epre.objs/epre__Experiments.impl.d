lib/core/experiments.ml: Buffer Epre_gvn Epre_ir Epre_opt Epre_pre Epre_reassoc Epre_workloads Float List Pipeline Printf Program Routine Workloads
