lib/core/pipeline.ml: Epre_gvn Epre_ir Epre_opt Epre_pre Epre_reassoc List Program Routine
