(** The optimizer pipelines of the paper's experimental study (Section 4).

    Four levels, each a strict extension of the previous:
    - [Baseline]: constant propagation, peephole, DCE, coalescing,
      empty-block removal;
    - [Partial]: naming normalization and PRE, then the baseline sequence;
    - [Reassociation]: global reassociation (no distribution) and GVN
      before PRE and the rest;
    - [Distribution]: reassociation including distribution of [*] over
      [+].

    Every pass consumes and produces ILOC, like the Unix-filter passes of
    the paper's optimizer; passes that need SSA build and destroy it
    internally. *)

open Epre_ir

type level = Baseline | Partial | Reassociation | Distribution

val all_levels : level list

val level_to_string : level -> string

val level_of_string : string -> level option

type routine_stats = {
  routine : string;
  reassoc : Epre_reassoc.Reassociate.stats option;
  gvn : Epre_gvn.Gvn.stats option;
  pre : Epre_pre.Pre.stats option;
  constants_folded : int;
  peephole_rewrites : int;
  dce_removed : int;
  copies_coalesced : int;
}

(** [dump] observes the routine after each named stage (IR tracing; the
    Figures 2-10 walkthrough uses it). Stage names: ["naming"],
    ["reassociation"], ["gvn"], ["pre"], ["constprop"], ["peephole"],
    ["dce"], ["coalesce"], ["clean"]. *)
type hooks = { dump : string -> Routine.t -> unit }

val no_hooks : hooks

val reassoc_config : distribute:bool -> Epre_reassoc.Expr_tree.config

(** Optimize one routine in place. *)
val optimize_routine : ?hooks:hooks -> level:level -> Routine.t -> routine_stats

(** Optimize a whole program in place; per-routine statistics. *)
val optimize : ?hooks:hooks -> level:level -> Program.t -> routine_stats list

(** Copy, optimize the copy, return it with the stats. *)
val optimized_copy :
  ?hooks:hooks -> level:level -> Program.t -> Program.t * routine_stats list
