(** Global renaming by value (Section 3.2).

    Builds SSA (folding copies, so the programmer's variable names vanish),
    computes AWZ congruence classes, and renames every register to its
    class representative. "Renaming encodes the value equivalences into the
    name space; this exposes new opportunities to PRE. It also constructs
    the name space required by PRE": afterwards, lexically-identical
    expressions have identical names, and only copies target the remaining
    variable names. The names are the only thing changed — no instructions
    are added, deleted, or moved (phis whose renamed arguments all equal
    their renamed destination become vacuous and are the one deletion we
    allow ourselves, as SSA destruction would only expand them into
    self-copies).

    Finally SSA is destroyed, leaving ILOC ready for PRE. *)

open Epre_ir

type stats = {
  classes_merged : int;  (** congruence classes with more than one member *)
  renamed : int;  (** registers renamed to another representative *)
}

let run ?(config = Partition.default_config) (r : Routine.t) =
  let r = Epre_ssa.Ssa.build r in
  let part = Partition.build ~config r in
  (* Representative: smallest register of the class (parameters have the
     smallest numbers, so a class containing a parameter keeps its name). *)
  let classes = Partition.classes part in
  let rep = Array.init part.Partition.nregs Fun.id in
  let merged = ref 0 in
  let renamed = ref 0 in
  Hashtbl.iter
    (fun _c members ->
      match members with
      | [] -> ()
      | m :: ms ->
        let leader = List.fold_left min m ms in
        if ms <> [] then incr merged;
        List.iter
          (fun v ->
            if v <> leader then begin
              rep.(v) <- leader;
              incr renamed
            end)
          members)
    classes;
  let rename v = rep.(v) in
  Cfg.iter_blocks
    (fun b ->
      b.Block.instrs <-
        List.filter_map
          (fun i ->
            let i = Instr.map_uses rename (Instr.map_def rename i) in
            match i with
            | Instr.Phi { dst; args } when List.for_all (fun (_, a) -> a = dst) args ->
              (* Vacuous after renaming: every input is already the
                 destination's value. *)
              None
            | i -> Some i)
          b.Block.instrs;
      b.Block.term <- Instr.map_term_uses rename b.Block.term)
    r.Routine.cfg;
  let r = Epre_ssa.Ssa.destroy r in
  ignore r;
  { classes_merged = !merged; renamed = !renamed }
