lib/gvn/gvn.mli: Epre_ir Partition Routine
