lib/gvn/partition.mli: Epre_ir Hashtbl Instr Routine
