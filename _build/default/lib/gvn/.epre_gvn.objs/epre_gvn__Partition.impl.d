lib/gvn/partition.ml: Array Block Cfg Epre_ir Hashtbl Instr List Op Option Routine Value
