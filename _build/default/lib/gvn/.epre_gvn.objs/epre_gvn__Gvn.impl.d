lib/gvn/gvn.ml: Array Block Cfg Epre_ir Epre_ssa Fun Hashtbl Instr List Partition Routine
