(** Partition-based global value numbering — the congruence analysis of
    Alpern, Wegman and Zadeck [2], which Section 3.2 adopts.

    Works on SSA. Instead of building equalities up from facts (as
    hash-based value numbering does), it starts from the optimistic
    assumption that all values defined the same way are equivalent and lets
    the statements of the program disprove equivalences: classes are
    repeatedly split until each class is congruent — same defining operator,
    congruent operands position by position (phis additionally must sit in
    the same block).

    [config.commutative] normalizes the operand order of commutative
    operators before comparison. It is on by default: the Section 2.2
    motivating example ([x = y + z; a = y; b = a + z]) presents the two
    sums with opposite operand orders once SSA copy folding has run, and
    the paper clearly expects value numbering to catch it. Setting it to
    false gives the positional "simplest variation described by Alpern,
    Wegman, and Zadeck". *)

open Epre_ir

type config = { commutative : bool }

let default_config = { commutative = true }

type label =
  | LConst of Value.t
  | LUnop of Op.unop
  | LBinop of Op.binop
  | LPhi of int  (** block id *)
  | LOpaque of int
      (** params, loads, calls, allocas: each its own congruence class *)

type t = {
  class_of : int array;  (** register -> class id *)
  nregs : int;
}

let build ?(config = default_config) (r : Routine.t) =
  if not r.Routine.in_ssa then invalid_arg "Partition.build: requires SSA form";
  let width = max 1 r.Routine.next_reg in
  let label = Array.make width None in
  let operands = Array.make width [| |] in
  let commutative_op = Array.make width false in
  let opaque = ref 0 in
  let fresh_opaque () =
    incr opaque;
    LOpaque !opaque
  in
  List.iter (fun p -> label.(p) <- Some (fresh_opaque ())) r.Routine.params;
  Cfg.iter_blocks
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Instr.Const { dst; value } -> label.(dst) <- Some (LConst value)
          | Instr.Copy { dst; _ } ->
            (* Copies are folded away by the SSA construction this library
               performs; any survivor is treated opaquely, which is merely
               conservative. *)
            label.(dst) <- Some (fresh_opaque ())
          | Instr.Unop { op; dst; src } ->
            label.(dst) <- Some (LUnop op);
            operands.(dst) <- [| src |]
          | Instr.Binop { op; dst; a; b } ->
            label.(dst) <- Some (LBinop op);
            operands.(dst) <- [| a; b |];
            commutative_op.(dst) <- Op.commutative op
          | Instr.Load { dst; _ } | Instr.Alloca { dst; _ } ->
            label.(dst) <- Some (fresh_opaque ())
          | Instr.Call { dst = Some d; _ } -> label.(d) <- Some (fresh_opaque ())
          | Instr.Call { dst = None; _ } | Instr.Store _ -> ()
          | Instr.Phi { dst; args } ->
            let args = List.sort (fun (p, _) (q, _) -> compare p q) args in
            label.(dst) <- Some (LPhi b.Block.id);
            operands.(dst) <- Array.of_list (List.map snd args))
        b.Block.instrs)
    r.Routine.cfg;
  (* Initial optimistic partition: group by label alone. *)
  let class_of = Array.make width (-1) in
  let by_label : (label, int) Hashtbl.t = Hashtbl.create 64 in
  let next_class = ref 0 in
  for v = 0 to width - 1 do
    match label.(v) with
    | None -> ()  (* never defined: unreachable code or gaps *)
    | Some l -> begin
      match Hashtbl.find_opt by_label l with
      | Some c -> class_of.(v) <- c
      | None ->
        let c = !next_class in
        incr next_class;
        Hashtbl.replace by_label l c;
        class_of.(v) <- c
    end
  done;
  (* Refinement: split classes whose members disagree on operand classes. *)
  let signature v =
    let sig_ = Array.map (fun o -> class_of.(o)) operands.(v) in
    if config.commutative && commutative_op.(v) then Array.sort compare sig_;
    sig_
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Gather members per class. *)
    let members = Hashtbl.create 64 in
    for v = 0 to width - 1 do
      if class_of.(v) >= 0 then
        Hashtbl.replace members class_of.(v)
          (v :: Option.value ~default:[] (Hashtbl.find_opt members class_of.(v)))
    done;
    Hashtbl.iter
      (fun _c vs ->
        match vs with
        | [] | [ _ ] -> ()
        | vs ->
          let groups : (int array, int list) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun v ->
              let s = signature v in
              Hashtbl.replace groups s
                (v :: Option.value ~default:[] (Hashtbl.find_opt groups s)))
            vs;
          if Hashtbl.length groups > 1 then begin
            changed := true;
            (* Keep the first group in the old class; new ids for the rest.
               Sort group keys for determinism. *)
            let keys =
              List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
            in
            List.iteri
              (fun idx key ->
                if idx > 0 then begin
                  let c = !next_class in
                  incr next_class;
                  List.iter (fun v -> class_of.(v) <- c) (Hashtbl.find groups key)
                end)
              keys
          end)
      members
  done;
  { class_of; nregs = width }

let class_of t reg = t.class_of.(reg)

let congruent t a b = t.class_of.(a) >= 0 && t.class_of.(a) = t.class_of.(b)

(** Members of each class, keyed by class id. *)
let classes t =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun v c ->
      if c >= 0 then Hashtbl.replace tbl c (v :: Option.value ~default:[] (Hashtbl.find_opt tbl c)))
    t.class_of;
  tbl
