(** Partition-based global value numbering — the congruence analysis of
    Alpern, Wegman and Zadeck, adopted by the paper's Section 3.2.

    Starts from the optimistic assumption that values defined the same way
    are equivalent and splits classes until each is congruent: same
    operator, congruent operands position by position (phis additionally in
    the same block). Loads, calls, allocas and parameters are opaque
    singletons. *)

open Epre_ir

type config = {
  commutative : bool;
      (** normalize commutative operand order before comparison; on by
          default (the Section 2.2 example needs it), off gives AWZ's
          positional "simplest variation" *)
}

val default_config : config

type t = private {
  class_of : int array;  (** register -> class id, [-1] when never defined *)
  nregs : int;
}

(** Requires SSA form. *)
val build : ?config:config -> Routine.t -> t

(** Class id of a register; [-1] for never-defined registers. *)
val class_of : t -> Instr.reg -> int

val congruent : t -> Instr.reg -> Instr.reg -> bool

(** Members of each class, keyed by class id. *)
val classes : t -> (int, Instr.reg list) Hashtbl.t
