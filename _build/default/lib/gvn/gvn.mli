(** Global renaming by value (the paper's Section 3.2).

    Builds SSA (folding copies), computes AWZ congruence classes
    ([Partition]), renames every register to its class representative, and
    destroys SSA. Afterwards lexically-identical expressions have identical
    names and only copies target the remaining variable names — "renaming
    encodes the value equivalences into the name space; this exposes new
    opportunities to PRE". *)

open Epre_ir

type stats = {
  classes_merged : int;  (** congruence classes with more than one member *)
  renamed : int;  (** registers renamed to another representative *)
}

(** Requires non-SSA input; leaves non-SSA output. *)
val run : ?config:Partition.config -> Routine.t -> stats
