(** Numerical-methods workloads modeled on Forsythe, Malcolm & Moler's book
    — the same source the paper draws [fmin], [zeroin], [spline], [seval],
    [decomp], [solve], [urand] and the Runge–Kutta–Fehlberg step from. The
    algorithms are the textbook ones, scaled to run in a few thousand
    operations. *)

let fmin =
  {|
// Golden-section minimization of f(x) = x*x - 4x + 7 on [0, 5].
fn f(x: float): float {
  return x * x - 4.0 * x + 7.0;
}

fn fmin(ax: float, bx: float, steps: int): float {
  var c: float = 0.381966011;
  var a: float = ax;
  var b: float = bx;
  var x: float = a + c * (b - a);
  var y: float = b - c * (b - a);
  var fx: float = f(x);
  var fy: float = f(y);
  var i: int;
  for i = 1 to steps {
    if (fx < fy) {
      b = y;
      y = x;
      fy = fx;
      x = a + c * (b - a);
      fx = f(x);
    } else {
      a = x;
      x = y;
      fx = fy;
      y = b - c * (b - a);
      fy = f(y);
    }
  }
  return (a + b) / 2.0;
}

fn main(): float {
  var m: float = fmin(0.0, 5.0, 40);
  emit(m);
  return m;
}
|}

let zeroin =
  {|
// Bisection root finding for f(x) = x*x*x - 2x - 5 on [2, 3].
fn f(x: float): float {
  return x * x * x - 2.0 * x - 5.0;
}

fn zeroin(ax: float, bx: float, steps: int): float {
  var a: float = ax;
  var b: float = bx;
  var fa: float = f(a);
  var i: int;
  for i = 1 to steps {
    var m: float = (a + b) / 2.0;
    var fm: float = f(m);
    if (fa * fm <= 0.0) {
      b = m;
    } else {
      a = m;
      fa = fm;
    }
  }
  return (a + b) / 2.0;
}

fn main(): float {
  var r: float = zeroin(2.0, 3.0, 45);
  emit(r);
  return r;
}
|}

let spline =
  {|
// Natural cubic spline: compute second derivatives (tridiagonal solve).
fn spline(n: int, x: float[32], y: float[32], b: float[32], c: float[32], d: float[32]) {
  var i: int;
  var nm1: int = n - 1;
  d[1] = x[2] - x[1];
  c[2] = (y[2] - y[1]) / d[1];
  for i = 2 to nm1 {
    d[i] = x[i+1] - x[i];
    b[i] = 2.0 * (d[i-1] + d[i]);
    c[i+1] = (y[i+1] - y[i]) / d[i];
    c[i] = c[i+1] - c[i];
  }
  b[1] = 0.0 - d[1];
  b[n] = 0.0 - d[n-1];
  c[1] = 0.0;
  c[n] = 0.0;
  // forward elimination
  for i = 2 to n {
    var t: float = d[i-1] / b[i-1];
    b[i] = b[i] - t * d[i-1];
    c[i] = c[i] - t * c[i-1];
  }
  // back substitution
  c[n] = c[n] / b[n];
  var ib: int;
  for ib = 1 to nm1 {
    i = n - ib;
    c[i] = (c[i] - d[i] * c[i+1]) / b[i];
  }
}

fn main(): float {
  var x: float[32];
  var y: float[32];
  var b: float[32];
  var c: float[32];
  var d: float[32];
  var i: int;
  for i = 1 to 32 {
    x[i] = float(i) * 0.25;
    y[i] = x[i] * x[i] - 3.0 * x[i];
  }
  spline(32, x, y, b, c, d);
  var s: float;
  for i = 1 to 32 {
    s = s + c[i];
  }
  emit(s);
  return s;
}
|}

let seval =
  {|
// Spline-style piecewise evaluation: locate the interval by linear scan,
// then evaluate the cubic.
fn seval(n: int, u: float, x: float[16], y: float[16], b: float[16], c: float[16], d: float[16]): float {
  var i: int = 1;
  var j: int;
  for j = 1 to n - 1 {
    if (x[j] <= u) {
      i = j;
    }
  }
  var dx: float = u - x[i];
  return y[i] + dx * (b[i] + dx * (c[i] + dx * d[i]));
}

fn main(): float {
  var x: float[16];
  var y: float[16];
  var b: float[16];
  var c: float[16];
  var d: float[16];
  var i: int;
  for i = 1 to 16 {
    x[i] = float(i);
    y[i] = float(i * i);
    b[i] = 0.5;
    c[i] = 0.25;
    d[i] = 0.125;
  }
  var s: float;
  var k: int;
  for k = 0 to 30 {
    s = s + seval(16, float(k) * 0.5, x, y, b, c, d);
  }
  emit(s);
  return s;
}
|}

let decomp =
  {|
// LU decomposition with partial pivoting (FMM's decomp, no condition
// estimate).
fn decomp(n: int, a: float[12,12], ipvt: int[12]): float {
  var i: int;
  var j: int;
  var k: int;
  var det: float = 1.0;
  for k = 1 to n - 1 {
    // find pivot
    var m: int = k;
    for i = k + 1 to n {
      if (abs(a[i,k]) > abs(a[m,k])) {
        m = i;
      }
    }
    ipvt[k] = m;
    if (m != k) {
      det = 0.0 - det;
    }
    var t: float = a[m,k];
    a[m,k] = a[k,k];
    a[k,k] = t;
    det = det * t;
    if (t != 0.0) {
      // compute multipliers
      for i = k + 1 to n {
        a[i,k] = (0.0 - a[i,k]) / t;
      }
      // interchange and eliminate by columns
      for j = k + 1 to n {
        t = a[m,j];
        a[m,j] = a[k,j];
        a[k,j] = t;
        if (t != 0.0) {
          for i = k + 1 to n {
            a[i,j] = a[i,j] + a[i,k] * t;
          }
        }
      }
    }
  }
  ipvt[n] = n;
  det = det * a[n,n];
  return det;
}

fn main(): float {
  var a: float[12,12];
  var ipvt: int[12];
  var i: int;
  var j: int;
  for i = 1 to 12 {
    for j = 1 to 12 {
      if (i == j) {
        a[i,j] = float(10 + i);
      } else {
        a[i,j] = 1.0 / float(i + j);
      }
    }
  }
  var det: float = decomp(12, a, ipvt);
  emit(det);
  return det;
}
|}

let solve =
  {|
// Solve a (pre-decomposed, diagonally dominant) triangular pair L*U*x = b.
fn decomp_nopivot(n: int, a: float[12,12]) {
  var i: int;
  var j: int;
  var k: int;
  for k = 1 to n - 1 {
    for i = k + 1 to n {
      a[i,k] = a[i,k] / a[k,k];
      for j = k + 1 to n {
        a[i,j] = a[i,j] - a[i,k] * a[k,j];
      }
    }
  }
}

fn solve(n: int, a: float[12,12], b: float[12]) {
  var i: int;
  var k: int;
  // forward elimination
  for k = 1 to n - 1 {
    for i = k + 1 to n {
      b[i] = b[i] - a[i,k] * b[k];
    }
  }
  // back substitution
  for k = n downto 1 {
    var s: float = b[k];
    for i = k + 1 to n {
      s = s - a[k,i] * b[i];
    }
    b[k] = s / a[k,k];
  }
}

fn main(): float {
  var a: float[12,12];
  var b: float[12];
  var i: int;
  var j: int;
  for i = 1 to 12 {
    b[i] = float(i);
    for j = 1 to 12 {
      if (i == j) {
        a[i,j] = 20.0;
      } else {
        a[i,j] = 1.0 / float(i + j);
      }
    }
  }
  decomp_nopivot(12, a);
  solve(12, a, b);
  var s: float;
  for i = 1 to 12 {
    s = s + b[i];
  }
  emit(s);
  return s;
}
|}

let urand =
  {|
// Linear congruential generator in the style of FMM's urand.
fn urand(state: int[1]): float {
  var iy: int = state[1] * 1103515245 + 12345;
  iy = mod(iy, 2147483648);
  if (iy < 0) {
    iy = iy + 2147483648;
  }
  state[1] = iy;
  return float(iy) / 2147483648.0;
}

fn main(): float {
  var state: int[1];
  state[1] = 42;
  var s: float;
  var i: int;
  for i = 1 to 200 {
    s = s + urand(state);
  }
  emit(s);
  return s;
}
|}

let fehl =
  {|
// One Runge-Kutta-Fehlberg 4(5) step for y' = -2y + t, repeated along an
// interval (the core arithmetic of FMM's fehl/rkf45).
fn f(t: float, y: float): float {
  return 0.0 - 2.0 * y + t;
}

fn fehl_step(t: float, y: float, h: float): float {
  var k1: float = h * f(t, y);
  var k2: float = h * f(t + h / 4.0, y + k1 / 4.0);
  var k3: float = h * f(t + 3.0 * h / 8.0, y + 3.0 * k1 / 32.0 + 9.0 * k2 / 32.0);
  var k4: float = h * f(t + 12.0 * h / 13.0,
                        y + 1932.0 * k1 / 2197.0 - 7200.0 * k2 / 2197.0 + 7296.0 * k3 / 2197.0);
  var k5: float = h * f(t + h,
                        y + 439.0 * k1 / 216.0 - 8.0 * k2 + 3680.0 * k3 / 513.0 - 845.0 * k4 / 4104.0);
  return y + 25.0 * k1 / 216.0 + 1408.0 * k3 / 2565.0 + 2197.0 * k4 / 4104.0 - k5 / 5.0;
}

fn main(): float {
  var y: float = 1.0;
  var t: float = 0.0;
  var h: float = 0.05;
  var i: int;
  for i = 1 to 40 {
    y = fehl_step(t, y, h);
    t = t + h;
  }
  emit(y);
  return y;
}
|}
