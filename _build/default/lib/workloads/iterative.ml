(** Iterative-method workloads: eigenvalue iteration, Romberg quadrature,
    escape-time iteration, Gauss–Jordan elimination, a cache-blocked matrix
    multiply (the paper cites register/cache blocking as the source of the
    "complex subscripts" reassociation helps with), Givens rotations,
    BLAS-1 reductions, and a leapfrog wave kernel. *)

let power =
  {|
// Power method for the dominant eigenvalue of a small SPD matrix.
fn matvec(n: int, a: float[8,8], x: float[8], y: float[8]) {
  var i: int;
  var j: int;
  for i = 1 to n {
    var s: float;
    s = 0.0;
    for j = 1 to n {
      s = s + a[i,j] * x[j];
    }
    y[i] = s;
  }
}

fn main(): float {
  var a: float[8,8];
  var x: float[8];
  var y: float[8];
  var i: int;
  var j: int;
  for i = 1 to 8 {
    x[i] = 1.0;
    for j = 1 to 8 {
      if (i == j) {
        a[i,j] = float(i + 4);
      } else {
        a[i,j] = 1.0 / float(i + j);
      }
    }
  }
  var lambda: float;
  var t: int;
  for t = 1 to 20 {
    matvec(8, a, x, y);
    // normalize by the max-magnitude entry
    var m: float = 0.0;
    for i = 1 to 8 {
      if (abs(y[i]) > m) {
        m = abs(y[i]);
      }
    }
    for i = 1 to 8 {
      x[i] = y[i] / m;
    }
    lambda = m;
  }
  emit(lambda);
  return lambda;
}
|}

let romberg =
  {|
// Romberg integration of f(x) = x * exp-like series over [0, 2], with the
// triangular extrapolation table stored in a 2-D array.
fn f(x: float): float {
  // truncated series for x * e^(-x)
  var acc: float = 1.0;
  var term: float = 1.0;
  var k: int;
  for k = 1 to 8 {
    term = term * (0.0 - x) / float(k);
    acc = acc + term;
  }
  return x * acc;
}

fn main(): float {
  var rt: float[7,7];
  var a: float = 0.0;
  var b: float = 2.0;
  var n: int = 7;
  var i: int;
  var j: int;
  rt[1,1] = (f(a) + f(b)) * (b - a) / 2.0;
  var h: float = b - a;
  var pts: int = 1;
  for i = 2 to n {
    h = h / 2.0;
    var s: float;
    s = 0.0;
    var k: int;
    for k = 1 to pts {
      s = s + f(a + float(2 * k - 1) * h);
    }
    pts = pts * 2;
    rt[i,1] = rt[i-1,1] / 2.0 + h * s;
    var factor: float = 1.0;
    for j = 2 to i {
      factor = factor * 4.0;
      rt[i,j] = rt[i,j-1] + (rt[i,j-1] - rt[i-1,j-1]) / (factor - 1.0);
    }
  }
  var v: float = rt[n,n];
  emit(v);
  return v;
}
|}

let mandel =
  {|
// Escape-time iteration over a small grid (Mandelbrot-style).
fn escape(cx: float, cy: float, limit: int): int {
  var x: float = 0.0;
  var y: float = 0.0;
  var k: int = 0;
  while (k < limit && x * x + y * y <= 4.0) {
    var nx: float = x * x - y * y + cx;
    y = 2.0 * x * y + cy;
    x = nx;
    k = k + 1;
  }
  return k;
}

fn main(): int {
  var total: int;
  var i: int;
  var j: int;
  for i = 0 to 23 {
    for j = 0 to 23 {
      total = total + escape(float(i) * 0.125 - 2.0, float(j) * 0.1 - 1.2, 30);
    }
  }
  emit(total);
  return total;
}
|}

let gaussj =
  {|
// Gauss-Jordan elimination on a diagonally dominant system (no pivoting).
fn gaussj(n: int, a: float[9,9], b: float[9]) {
  var col: int;
  var row: int;
  var k: int;
  for col = 1 to n {
    var piv: float = a[col,col];
    for k = 1 to n {
      a[col,k] = a[col,k] / piv;
    }
    b[col] = b[col] / piv;
    for row = 1 to n {
      if (row != col) {
        var factor: float = a[row,col];
        for k = 1 to n {
          a[row,k] = a[row,k] - factor * a[col,k];
        }
        b[row] = b[row] - factor * b[col];
      }
    }
  }
}

fn main(): float {
  var a: float[9,9];
  var b: float[9];
  var i: int;
  var j: int;
  for i = 1 to 9 {
    b[i] = float(2 * i - 9);
    for j = 1 to 9 {
      if (i == j) {
        a[i,j] = 15.0;
      } else {
        a[i,j] = 1.0 / float(i + j - 1);
      }
    }
  }
  gaussj(9, a, b);
  var s: float;
  for i = 1 to 9 {
    s = s + b[i];
  }
  emit(s);
  return s;
}
|}

let blocked =
  {|
// Cache-blocked matrix multiply: the blocked loop nest produces the
// "complex subscripts like that produced by cache and register blocking"
// the paper's Section 5.2 points at.
fn bgemm(n: int, nb: int, a: float[12,12], b: float[12,12], c: float[12,12]) {
  var ii: int;
  var jj: int;
  var kk: int;
  var i: int;
  var j: int;
  var k: int;
  for ii = 1 to n step 4 {
    for jj = 1 to n step 4 {
      for kk = 1 to n step 4 {
        for i = ii to min(ii + nb - 1, n) {
          for j = jj to min(jj + nb - 1, n) {
            var s: float = c[i,j];
            for k = kk to min(kk + nb - 1, n) {
              s = s + a[i,k] * b[k,j];
            }
            c[i,j] = s;
          }
        }
      }
    }
  }
}

fn main(): float {
  var a: float[12,12];
  var b: float[12,12];
  var c: float[12,12];
  var i: int;
  var j: int;
  for i = 1 to 12 {
    for j = 1 to 12 {
      a[i,j] = float(i - j) * 0.5;
      b[i,j] = float(i + j) * 0.25;
    }
  }
  bgemm(12, 4, a, b, c);
  var s: float;
  for i = 1 to 12 {
    for j = 1 to 12 {
      s = s + c[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let givens =
  {|
// Givens rotations zeroing the subdiagonal of a small matrix.
fn main(): float {
  var a: float[7,7];
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to 7 {
    for j = 1 to 7 {
      a[i,j] = float(mod(i * 5 + j * 3, 11)) + 1.0;
    }
  }
  for j = 1 to 6 {
    for i = j + 1 to 7 {
      var denom: float = sqrt(a[j,j] * a[j,j] + a[i,j] * a[i,j]);
      if (denom > 0.000001) {
        var cs: float = a[j,j] / denom;
        var sn: float = a[i,j] / denom;
        for k = 1 to 7 {
          var t1: float = cs * a[j,k] + sn * a[i,k];
          var t2: float = 0.0 - sn * a[j,k] + cs * a[i,k];
          a[j,k] = t1;
          a[i,k] = t2;
        }
      }
    }
  }
  // sum of the (upper triangular) result
  var s: float;
  for i = 1 to 7 {
    for j = i to 7 {
      s = s + a[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let blas1 =
  {|
// BLAS-1 reductions over one vector: asum, index of amax, nrm2.
fn main(): float {
  var x: float[150];
  var i: int;
  for i = 1 to 150 {
    x[i] = float(mod(i * 13, 37)) - 18.0;
  }
  var asum: float;
  var nrm2: float;
  var imax: int = 1;
  for i = 1 to 150 {
    asum = asum + abs(x[i]);
    nrm2 = nrm2 + x[i] * x[i];
    if (abs(x[i]) > abs(x[imax])) {
      imax = i;
    }
  }
  nrm2 = sqrt(nrm2);
  emit(asum);
  emit(nrm2);
  emit(float(imax));
  return asum + nrm2 + float(imax);
}
|}

let wave =
  {|
// Leapfrog integration of the 1-D wave equation.
fn main(): float {
  var u_prev: float[60];
  var u_cur: float[60];
  var u_next: float[60];
  var i: int;
  var c2: float = 0.25;
  for i = 1 to 60 {
    var xi: float = float(i - 30) * 0.1;
    u_prev[i] = 1.0 / (1.0 + xi * xi);
    u_cur[i] = u_prev[i];
  }
  var t: int;
  for t = 1 to 40 {
    for i = 2 to 59 {
      u_next[i] = 2.0 * u_cur[i] - u_prev[i]
                + c2 * (u_cur[i+1] - 2.0 * u_cur[i] + u_cur[i-1]);
    }
    u_next[1] = 0.0;
    u_next[60] = 0.0;
    for i = 1 to 60 {
      u_prev[i] = u_cur[i];
      u_cur[i] = u_next[i];
    }
  }
  var s: float;
  for i = 1 to 60 {
    s = s + u_cur[i] * u_cur[i];
  }
  emit(s);
  return s;
}
|}
