(** Iterative-method workloads: eigenvalue iteration, Romberg quadrature,
    escape-time iteration, Gauss–Jordan elimination, a cache-blocked matrix
    multiply (the paper cites register/cache blocking as the source of the
    "complex subscripts" reassociation helps with), Givens rotations,
    BLAS-1 reductions, and a leapfrog wave kernel. *)

val power : string
val romberg : string
val mandel : string
val gaussj : string
val blocked : string
val givens : string
val blas1 : string
val wave : string
