(** The workload suite.

    Stands in for the paper's 50 routines drawn from SPEC and from
    Forsythe, Malcolm & Moler (Section 4.1, footnote on reduced test-case
    sizes applies here too: inputs are sized for fast deterministic runs).
    Every workload is a complete program whose [main] fills its inputs
    deterministically, runs the kernel, and both [emit]s and returns a
    checksum — the observable behaviour the differential tests compare
    across optimization levels. *)

open Epre_ir

type t = {
  name : string;
  description : string;
  source : string;
}

let all =
  [
    { name = "saxpy"; description = "BLAS-1 a*x + y update"; source = Blas.saxpy };
    { name = "dot"; description = "BLAS-1 dot product"; source = Blas.dot };
    { name = "sgemv"; description = "BLAS-2 matrix-vector product"; source = Blas.sgemv };
    { name = "sgemm"; description = "BLAS-3 matrix-matrix product"; source = Blas.sgemm };
    { name = "fmin"; description = "golden-section minimization (FMM)"; source = Fmm.fmin };
    { name = "zeroin"; description = "root finding by bisection (FMM)"; source = Fmm.zeroin };
    { name = "spline"; description = "cubic spline coefficients (FMM)"; source = Fmm.spline };
    { name = "seval"; description = "piecewise cubic evaluation (FMM)"; source = Fmm.seval };
    { name = "decomp"; description = "LU decomposition with pivoting (FMM)"; source = Fmm.decomp };
    { name = "solve"; description = "triangular solve (FMM)"; source = Fmm.solve };
    { name = "urand"; description = "linear congruential generator (FMM)"; source = Fmm.urand };
    { name = "fehl"; description = "Runge-Kutta-Fehlberg 4(5) steps (FMM)"; source = Fmm.fehl };
    { name = "tomcatv"; description = "mesh-relaxation residual kernel"; source = Kernels.tomcatv };
    { name = "heat"; description = "2-D Jacobi heat iteration"; source = Kernels.heat };
    { name = "stencil3"; description = "3-D seven-point stencil"; source = Kernels.stencil3 };
    { name = "iniset"; description = "array initialization sweeps"; source = Kernels.iniset };
    { name = "x21y21"; description = "x^21 + y^21 by repeated multiply"; source = Kernels.x21y21 };
    { name = "hmoy"; description = "arithmetic and harmonic means"; source = Kernels.hmoy };
    { name = "bilin"; description = "bilinear grid interpolation"; source = Kernels.bilin };
    { name = "series"; description = "scaled series recurrence (gamgen-like)"; source = Kernels.series };
    { name = "addr_chain"; description = "3-D addressing with invariant parts"; source = Kernels.addr_chain };
    { name = "pdead"; description = "partially-dead expressions"; source = Kernels.pdead };
    { name = "integr"; description = "composite Simpson quadrature"; source = Numerics.integr };
    { name = "newton"; description = "Newton cube roots"; source = Numerics.newton };
    { name = "tridiag"; description = "Thomas tridiagonal solver"; source = Numerics.tridiag };
    { name = "cholesky"; description = "Cholesky factorization"; source = Numerics.cholesky };
    { name = "sor"; description = "successive over-relaxation sweeps"; source = Numerics.sor };
    { name = "conv"; description = "FIR convolution"; source = Numerics.conv };
    { name = "histogram"; description = "integer histogram + prefix sums"; source = Numerics.histogram };
    { name = "horner"; description = "Horner polynomial sweep"; source = Numerics.horner };
    { name = "power"; description = "power-method eigenvalue iteration"; source = Iterative.power };
    { name = "romberg"; description = "Romberg integration table"; source = Iterative.romberg };
    { name = "mandel"; description = "escape-time iteration grid"; source = Iterative.mandel };
    { name = "gaussj"; description = "Gauss-Jordan elimination"; source = Iterative.gaussj };
    { name = "blocked"; description = "cache-blocked matrix multiply"; source = Iterative.blocked };
    { name = "givens"; description = "Givens rotation sweep"; source = Iterative.givens };
    { name = "blas1"; description = "asum/amax/nrm2 reductions"; source = Iterative.blas1 };
    { name = "wave"; description = "1-D leapfrog wave equation"; source = Iterative.wave };
    { name = "crout"; description = "Crout LU factorization"; source = Classic.crout };
    { name = "rk4"; description = "classic Runge-Kutta 4"; source = Classic.rk4 };
    { name = "secant"; description = "secant root finding"; source = Classic.secant };
    { name = "lagrange"; description = "Lagrange interpolation sweep"; source = Classic.lagrange };
    { name = "redblack"; description = "red-black Gauss-Seidel"; source = Classic.redblack };
    { name = "cumsum"; description = "prefix/suffix sums + window"; source = Classic.cumsum };
    { name = "transpose"; description = "transpose + multiply"; source = Classic.transpose };
    { name = "stats"; description = "single-pass mean/variance"; source = Classic.stats };
    { name = "sieve"; description = "sieve of Eratosthenes"; source = Classic.sieve };
    { name = "euclid"; description = "batched gcd"; source = Classic.euclid };
    { name = "collatz"; description = "Collatz trajectory lengths"; source = Classic.collatz };
    { name = "smooth3"; description = "iterated 3-point smoothing"; source = Classic.smooth3 };
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let compile w = Epre_frontend.Frontend.compile_string w.source

(** Run a compiled workload; returns (return value, emit trace, dynamic
    operation count). *)
let execute (p : Program.t) =
  let r = Epre_interp.Interp.run p ~entry:"main" ~args:[] in
  ( r.Epre_interp.Interp.return_value,
    r.Epre_interp.Interp.trace,
    Epre_interp.Counts.total r.Epre_interp.Interp.counts )
