(** Numerical-methods workloads modeled on Forsythe, Malcolm & Moler's book
    — the same source the paper draws [fmin], [zeroin], [spline], [seval],
    [decomp], [solve], [urand] and the Runge–Kutta–Fehlberg step from. The
    algorithms are the textbook ones, scaled to run in a few thousand
    operations. *)

val fmin : string
val zeroin : string
val spline : string
val seval : string
val decomp : string
val solve : string
val urand : string
val fehl : string
