(** Loop-nest and stencil workloads echoing the rest of the paper's suite:
    a tomcatv-like mesh kernel, stencils, initialization sweeps ([iniset]),
    simple reductions ([hmoy], [x21y21]) and synthetic kernels that stress
    the specific phenomena the paper studies (deep loop-invariant address
    chains, partially-dead expressions). *)

let tomcatv =
  {|
// Mesh-relaxation kernel in the style of tomcatv's inner loops: residual
// computation over a 2-D grid with eight-neighbour addressing.
fn relax(n: int, x: float[18,18], y: float[18,18], rx: float[18,18], ry: float[18,18]) {
  var i: int;
  var j: int;
  for i = 2 to n - 1 {
    for j = 2 to n - 1 {
      var xx: float = x[i,j+1] - x[i,j-1];
      var yx: float = y[i,j+1] - y[i,j-1];
      var xy: float = x[i+1,j] - x[i-1,j];
      var yy: float = y[i+1,j] - y[i-1,j];
      var a: float = 0.25 * (xx * xx + yx * yx);
      var b: float = 0.25 * (xy * xy + yy * yy);
      var c: float = 0.125 * (xx * xy + yx * yy);
      rx[i,j] = a * (x[i+1,j] - 2.0 * x[i,j] + x[i-1,j])
              + b * (x[i,j+1] - 2.0 * x[i,j] + x[i,j-1])
              - c * (x[i+1,j+1] - x[i+1,j-1] - x[i-1,j+1] + x[i-1,j-1]);
      ry[i,j] = a * (y[i+1,j] - 2.0 * y[i,j] + y[i-1,j])
              + b * (y[i,j+1] - 2.0 * y[i,j] + y[i,j-1])
              - c * (y[i+1,j+1] - y[i+1,j-1] - y[i-1,j+1] + y[i-1,j-1]);
    }
  }
}

fn main(): float {
  var x: float[18,18];
  var y: float[18,18];
  var rx: float[18,18];
  var ry: float[18,18];
  var i: int;
  var j: int;
  for i = 1 to 18 {
    for j = 1 to 18 {
      x[i,j] = float(i * j) * 0.01;
      y[i,j] = float(i + j) * 0.1;
    }
  }
  relax(18, x, y, rx, ry);
  var s: float;
  for i = 2 to 17 {
    for j = 2 to 17 {
      s = s + rx[i,j] - ry[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let heat =
  {|
// Jacobi iteration for the 2-D heat equation on a small grid.
fn jacobi(n: int, u: float[14,14], v: float[14,14]) {
  var i: int;
  var j: int;
  for i = 2 to n - 1 {
    for j = 2 to n - 1 {
      v[i,j] = 0.25 * (u[i-1,j] + u[i+1,j] + u[i,j-1] + u[i,j+1]);
    }
  }
  for i = 2 to n - 1 {
    for j = 2 to n - 1 {
      u[i,j] = v[i,j];
    }
  }
}

fn main(): float {
  var u: float[14,14];
  var v: float[14,14];
  var i: int;
  var j: int;
  for i = 1 to 14 {
    for j = 1 to 14 {
      if (i == 1) {
        u[i,j] = 100.0;
      } else {
        u[i,j] = 0.0;
      }
    }
  }
  var t: int;
  for t = 1 to 10 {
    jacobi(14, u, v);
  }
  var s: float;
  for i = 1 to 14 {
    for j = 1 to 14 {
      s = s + u[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let stencil3 =
  {|
// 3-D seven-point stencil: triply-subscripted addressing is where
// reassociation and distribution have the most invariant structure to
// expose.
fn sweep(n: int, u: float[8,8,8], v: float[8,8,8]) {
  var i: int;
  var j: int;
  var k: int;
  for i = 2 to n - 1 {
    for j = 2 to n - 1 {
      for k = 2 to n - 1 {
        v[i,j,k] = u[i,j,k]
                 + 0.1 * (u[i-1,j,k] + u[i+1,j,k]
                        + u[i,j-1,k] + u[i,j+1,k]
                        + u[i,j,k-1] + u[i,j,k+1] - 6.0 * u[i,j,k]);
      }
    }
  }
}

fn main(): float {
  var u: float[8,8,8];
  var v: float[8,8,8];
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to 8 {
    for j = 1 to 8 {
      for k = 1 to 8 {
        u[i,j,k] = float(i * 64 + j * 8 + k) * 0.01;
      }
    }
  }
  var t: int;
  for t = 1 to 4 {
    sweep(8, u, v);
    sweep(8, v, u);
  }
  var s: float;
  for i = 1 to 8 {
    for j = 1 to 8 {
      for k = 1 to 8 {
        s = s + u[i,j,k];
      }
    }
  }
  emit(s);
  return s;
}
|}

let iniset =
  {|
// Array-initialization sweeps (the suite's iniset): constant and
// index-derived fills over several arrays.
fn main(): float {
  var a: float[40,10];
  var b: float[40,10];
  var c: int[40];
  var i: int;
  var j: int;
  for i = 1 to 40 {
    c[i] = i * 3 + 1;
    for j = 1 to 10 {
      a[i,j] = 0.0;
      b[i,j] = float(i * 10 + j);
    }
  }
  var s: float;
  for i = 1 to 40 {
    s = s + float(c[i]);
    for j = 1 to 10 {
      s = s + b[i,j] - a[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let x21y21 =
  {|
// x^21 + y^21 by repeated multiplication (the suite's x21y21).
fn pow21(x: float): float {
  var r: float = 1.0;
  var i: int;
  for i = 1 to 21 {
    r = r * x;
  }
  return r;
}

fn main(): float {
  var s: float;
  var k: int;
  for k = 1 to 20 {
    var x: float = 1.0 + float(k) * 0.01;
    var y: float = 1.0 - float(k) * 0.01;
    s = s + pow21(x) + pow21(y);
  }
  emit(s);
  return s;
}
|}

let hmoy =
  {|
// Means of an array (the suite's hmoy): arithmetic and harmonic.
fn main(): float {
  var a: float[120];
  var i: int;
  for i = 1 to 120 {
    a[i] = 1.0 + float(i) * 0.5;
  }
  var sum: float;
  var hsum: float;
  for i = 1 to 120 {
    sum = sum + a[i];
    hsum = hsum + 1.0 / a[i];
  }
  var am: float = sum / 120.0;
  var hm: float = 120.0 / hsum;
  emit(am);
  emit(hm);
  return am + hm;
}
|}

let bilin =
  {|
// Bilinear interpolation over a coarse grid: repeated mixed-rank address
// and weight expressions.
fn bilin(g: float[10,10], x: float, y: float): float {
  var i: int = int(x);
  var j: int = int(y);
  if (i < 1) { i = 1; }
  if (i > 9) { i = 9; }
  if (j < 1) { j = 1; }
  if (j > 9) { j = 9; }
  var fx: float = x - float(i);
  var fy: float = y - float(j);
  return g[i,j] * (1.0 - fx) * (1.0 - fy)
       + g[i+1,j] * fx * (1.0 - fy)
       + g[i,j+1] * (1.0 - fx) * fy
       + g[i+1,j+1] * fx * fy;
}

fn main(): float {
  var g: float[10,10];
  var i: int;
  var j: int;
  for i = 1 to 10 {
    for j = 1 to 10 {
      g[i,j] = float(i * i + j);
    }
  }
  var s: float;
  var k: int;
  for k = 0 to 50 {
    s = s + bilin(g, 1.0 + float(k) * 0.15, 9.0 - float(k) * 0.12);
  }
  emit(s);
  return s;
}
|}

let series =
  {|
// Recurrence/series generation in the style of gamgen: each term built
// from the previous with loop-invariant scale factors.
fn main(): float {
  var n: int = 60;
  var x: float = 0.37;
  var scale: float = 2.5;
  var shift: float = 0.125;
  var term: float = 1.0;
  var s: float;
  var i: int;
  var j: int;
  for i = 1 to n {
    term = term * x / float(i);
    var inner: float;
    for j = 1 to 8 {
      inner = inner + (scale * x + shift) * term * float(j);
    }
    s = s + inner;
  }
  emit(s);
  return s;
}
|}

let addr_chain =
  {|
// Deeply nested loops over a 3-D array with subscripts built from all
// three induction variables: the multi-level loop-invariant address parts
// are exactly what ranks separate (Section 3.1).
fn main(): float {
  var a: float[6,6,6];
  var i: int;
  var j: int;
  var k: int;
  var base: int = 2;
  for i = 1 to 6 {
    for j = 1 to 6 {
      for k = 1 to 6 {
        a[i,j,k] = float((i - 1) * 36 + (j - 1) * 6 + k + base);
      }
    }
  }
  var s: float;
  for k = 1 to 6 {
    for j = 1 to 6 {
      for i = 1 to 6 {
        s = s + a[i,j,k] * a[i,j,k] + a[i,j,k];
      }
    }
  }
  emit(s);
  return s;
}
|}

let pdead =
  {|
// Partially-dead expressions: computed on both branch paths but used on
// only one. Forward propagation eliminates them as a side effect
// (Section 3.1, "Forward Propagation").
fn choose(p: int, x: int, y: int): int {
  var t: int = x * y + x - y;   // dead when p is even
  var r: int;
  if (mod(p, 2) == 0) {
    r = x + y;
  } else {
    r = t * 2;
  }
  return r;
}

fn main(): float {
  var s: int;
  var i: int;
  for i = 1 to 100 {
    s = s + choose(i, i + 3, i - 1);
  }
  var f: float = float(s);
  emit(f);
  return f;
}
|}
