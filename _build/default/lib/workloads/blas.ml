(** Dense linear-algebra workloads, echoing the BLAS-derived routines of the
    paper's suite ([saxpy], [sgemv], [sgemm]). The doubly/triply subscripted
    array accesses produce exactly the address arithmetic whose invariant
    parts global reassociation exposes (Section 2.1). *)

let saxpy =
  {|
fn saxpy(n: int, a: float, x: float[64], y: float[64]) {
  var i: int;
  for i = 1 to n {
    y[i] = y[i] + a * x[i];
  }
}

fn main(): float {
  var x: float[64];
  var y: float[64];
  var i: int;
  for i = 1 to 64 {
    x[i] = float(i);
    y[i] = float(64 - i);
  }
  saxpy(64, 3.0, x, y);
  var s: float;
  for i = 1 to 64 {
    s = s + y[i];
  }
  emit(s);
  return s;
}
|}

let dot =
  {|
fn dot(n: int, x: float[100], y: float[100]): float {
  var s: float;
  var i: int;
  for i = 1 to n {
    s = s + x[i] * y[i];
  }
  return s;
}

fn main(): float {
  var x: float[100];
  var y: float[100];
  var i: int;
  for i = 1 to 100 {
    x[i] = float(i) * 0.5;
    y[i] = float(101 - i);
  }
  var r: float = dot(100, x, y);
  emit(r);
  return r;
}
|}

let sgemv =
  {|
fn sgemv(m: int, n: int, alpha: float, a: float[24,24], x: float[24], y: float[24]) {
  var i: int;
  var j: int;
  for i = 1 to m {
    var t: float;
    t = 0.0;
    for j = 1 to n {
      t = t + a[i,j] * x[j];
    }
    y[i] = alpha * t + y[i];
  }
}

fn main(): float {
  var a: float[24,24];
  var x: float[24];
  var y: float[24];
  var i: int;
  var j: int;
  for i = 1 to 24 {
    x[i] = float(i);
    y[i] = 1.0;
    for j = 1 to 24 {
      a[i,j] = float(i - j) * 0.25;
    }
  }
  sgemv(24, 24, 2.0, a, x, y);
  var s: float;
  for i = 1 to 24 {
    s = s + y[i];
  }
  emit(s);
  return s;
}
|}

let sgemm =
  {|
fn sgemm(n: int, a: float[16,16], b: float[16,16], c: float[16,16]) {
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to n {
    for j = 1 to n {
      var s: float;
      s = 0.0;
      for k = 1 to n {
        s = s + a[i,k] * b[k,j];
      }
      c[i,j] = s;
    }
  }
}

fn main(): float {
  var a: float[16,16];
  var b: float[16,16];
  var c: float[16,16];
  var i: int;
  var j: int;
  for i = 1 to 16 {
    for j = 1 to 16 {
      a[i,j] = float(i + j);
      b[i,j] = float(i) - 0.5 * float(j);
    }
  }
  sgemm(16, a, b, c);
  var s: float;
  for i = 1 to 16 {
    for j = 1 to 16 {
      s = s + c[i,j];
    }
  }
  emit(s);
  return s;
}
|}
