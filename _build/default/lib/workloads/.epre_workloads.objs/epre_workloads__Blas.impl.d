lib/workloads/blas.ml:
