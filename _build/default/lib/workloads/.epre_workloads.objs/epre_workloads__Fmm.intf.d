lib/workloads/fmm.mli:
