lib/workloads/numerics.ml:
