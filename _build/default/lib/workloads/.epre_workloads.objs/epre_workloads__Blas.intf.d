lib/workloads/blas.mli:
