lib/workloads/workloads.mli: Epre_ir Program Value
