lib/workloads/kernels.ml:
