lib/workloads/classic.ml:
