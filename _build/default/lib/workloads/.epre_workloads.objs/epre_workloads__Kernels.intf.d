lib/workloads/kernels.mli:
