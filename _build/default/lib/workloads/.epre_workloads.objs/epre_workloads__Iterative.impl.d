lib/workloads/iterative.ml:
