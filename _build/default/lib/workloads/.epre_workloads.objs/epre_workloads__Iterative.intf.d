lib/workloads/iterative.mli:
