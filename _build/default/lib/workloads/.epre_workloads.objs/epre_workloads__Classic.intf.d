lib/workloads/classic.mli:
