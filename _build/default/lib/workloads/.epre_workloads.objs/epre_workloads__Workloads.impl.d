lib/workloads/workloads.ml: Blas Classic Epre_frontend Epre_interp Epre_ir Fmm Iterative Kernels List Numerics Program
