lib/workloads/fmm.ml:
