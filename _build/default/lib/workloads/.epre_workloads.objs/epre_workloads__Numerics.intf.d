lib/workloads/numerics.mli:
