(** Additional numerical workloads, filling out the suite toward the
    breadth of the paper's 50 routines: quadrature, Newton iteration,
    tridiagonal and Cholesky solvers, relaxation, convolution and
    integer-histogram kernels. *)

let integr =
  {|
// Composite Simpson quadrature of f(x) = 1 / (1 + x*x) over [0, 1].
fn f(x: float): float {
  return 1.0 / (1.0 + x * x);
}

fn integr(n: int, a: float, b: float): float {
  var h: float = (b - a) / float(2 * n);
  var s: float = f(a) + f(b);
  var i: int;
  for i = 1 to 2 * n - 1 {
    var x: float = a + float(i) * h;
    if (mod(i, 2) == 1) {
      s = s + 4.0 * f(x);
    } else {
      s = s + 2.0 * f(x);
    }
  }
  return s * h / 3.0;
}

fn main(): float {
  var v: float = integr(64, 0.0, 1.0);
  emit(v);
  return v;
}
|}

let newton =
  {|
// Newton's method for cube roots, batched over an array.
fn cbrt(a: float, steps: int): float {
  var x: float = a;
  if (x < 1.0) {
    x = 1.0;
  }
  var k: int;
  for k = 1 to steps {
    x = (2.0 * x + a / (x * x)) / 3.0;
  }
  return x;
}

fn main(): float {
  var s: float;
  var i: int;
  for i = 1 to 40 {
    s = s + cbrt(float(i) * 3.7, 12);
  }
  emit(s);
  return s;
}
|}

let tridiag =
  {|
// Thomas algorithm for a diagonally dominant tridiagonal system.
fn thomas(n: int, a: float[48], b: float[48], c: float[48], d: float[48], x: float[48]) {
  var i: int;
  // forward sweep
  c[1] = c[1] / b[1];
  d[1] = d[1] / b[1];
  for i = 2 to n {
    var m: float = b[i] - a[i] * c[i-1];
    c[i] = c[i] / m;
    d[i] = (d[i] - a[i] * d[i-1]) / m;
  }
  // back substitution
  x[n] = d[n];
  for i = n - 1 downto 1 {
    x[i] = d[i] - c[i] * x[i+1];
  }
}

fn main(): float {
  var a: float[48];
  var b: float[48];
  var c: float[48];
  var d: float[48];
  var x: float[48];
  var i: int;
  for i = 1 to 48 {
    a[i] = 0.0 - 1.0;
    b[i] = 4.0;
    c[i] = 0.0 - 1.0;
    d[i] = float(i);
  }
  thomas(48, a, b, c, d, x);
  var s: float;
  for i = 1 to 48 {
    s = s + x[i];
  }
  emit(s);
  return s;
}
|}

let cholesky =
  {|
// Cholesky factorization of a symmetric positive-definite matrix.
fn chol(n: int, a: float[10,10], l: float[10,10]) {
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to n {
    for j = 1 to i {
      var s: float;
      s = 0.0;
      for k = 1 to j - 1 {
        s = s + l[i,k] * l[j,k];
      }
      if (i == j) {
        l[i,j] = sqrt(a[i,i] - s);
      } else {
        l[i,j] = (a[i,j] - s) / l[j,j];
      }
    }
  }
}

fn main(): float {
  var a: float[10,10];
  var l: float[10,10];
  var i: int;
  var j: int;
  for i = 1 to 10 {
    for j = 1 to 10 {
      if (i == j) {
        a[i,j] = 12.0 + float(i);
      } else {
        a[i,j] = 1.0 / float(i + j);
      }
    }
  }
  chol(10, a, l);
  var s: float;
  for i = 1 to 10 {
    for j = 1 to i {
      s = s + l[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let sor =
  {|
// Successive over-relaxation on a 1-D Poisson-style system.
fn sor_sweep(n: int, u: float[40], f: float[40], omega: float) {
  var i: int;
  for i = 2 to n - 1 {
    var gs: float = 0.5 * (u[i-1] + u[i+1] - f[i]);
    u[i] = u[i] + omega * (gs - u[i]);
  }
}

fn main(): float {
  var u: float[40];
  var f: float[40];
  var i: int;
  for i = 1 to 40 {
    f[i] = 0.01 * float(i - 20);
    u[i] = 0.0;
  }
  u[1] = 1.0;
  u[40] = 0.0 - 1.0;
  var t: int;
  for t = 1 to 25 {
    sor_sweep(40, u, f, 1.25);
  }
  var s: float;
  for i = 1 to 40 {
    s = s + u[i];
  }
  emit(s);
  return s;
}
|}

let conv =
  {|
// FIR convolution: out[i] = sum_k h[k] * x[i + k - 1].
fn fir(n: int, m: int, x: float[80], h: float[8], out: float[80]) {
  var i: int;
  var k: int;
  for i = 1 to n - m + 1 {
    var acc: float;
    acc = 0.0;
    for k = 1 to m {
      acc = acc + h[k] * x[i + k - 1];
    }
    out[i] = acc;
  }
}

fn main(): float {
  var x: float[80];
  var h: float[8];
  var out: float[80];
  var i: int;
  for i = 1 to 80 {
    x[i] = float(mod(i * 7, 13)) * 0.5;
  }
  for i = 1 to 8 {
    h[i] = 1.0 / float(i + 1);
  }
  fir(80, 8, x, h, out);
  var s: float;
  for i = 1 to 73 {
    s = s + out[i];
  }
  emit(s);
  return s;
}
|}

let histogram =
  {|
// Integer histogram with prefix sums (a counting-sort front half).
fn main(): int {
  var data: int[200];
  var hist: int[16];
  var i: int;
  var seed: int = 7;
  for i = 1 to 200 {
    seed = mod(seed * 31 + 17, 4096);
    data[i] = mod(seed, 16) + 1;
  }
  for i = 1 to 200 {
    hist[data[i]] = hist[data[i]] + 1;
  }
  // prefix sums
  for i = 2 to 16 {
    hist[i] = hist[i] + hist[i-1];
  }
  var s: int;
  for i = 1 to 16 {
    s = s + hist[i] * i;
  }
  emit(s);
  return s;
}
|}

let horner =
  {|
// Horner evaluation of a fixed polynomial over a sweep of points.
fn poly(c: float[6], x: float): float {
  var acc: float = c[6];
  var k: int;
  for k = 5 downto 1 {
    acc = acc * x + c[k];
  }
  return acc;
}

fn main(): float {
  var c: float[6];
  var i: int;
  for i = 1 to 6 {
    c[i] = float(7 - i) * 0.25;
  }
  var s: float;
  for i = 0 to 60 {
    s = s + poly(c, float(i) * 0.05 - 1.5);
  }
  emit(s);
  return s;
}
|}
