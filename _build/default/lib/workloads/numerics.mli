(** Additional numerical workloads, filling out the suite toward the
    breadth of the paper's 50 routines: quadrature, Newton iteration,
    tridiagonal and Cholesky solvers, relaxation, convolution and
    integer-histogram kernels. *)

val integr : string
val newton : string
val tridiag : string
val cholesky : string
val sor : string
val conv : string
val histogram : string
val horner : string
