(** Twelve further routines bringing the suite to the paper's 50: classic
    numeric methods (Crout LU, RK4, secant, Lagrange interpolation,
    red-black relaxation), scans and single-pass statistics, and
    integer-heavy kernels (sieve, Euclid, Collatz). *)

let crout =
  {|
// Crout's LU variant (unit upper triangle), diagonally dominant input.
fn crout(n: int, a: float[10,10]) {
  var i: int;
  var j: int;
  var k: int;
  for j = 1 to n {
    for i = j to n {
      var s: float = a[i,j];
      for k = 1 to j - 1 {
        s = s - a[i,k] * a[k,j];
      }
      a[i,j] = s;
    }
    for i = j + 1 to n {
      var t: float = a[j,i];
      for k = 1 to j - 1 {
        t = t - a[j,k] * a[k,i];
      }
      a[j,i] = t / a[j,j];
    }
  }
}

fn main(): float {
  var a: float[10,10];
  var i: int;
  var j: int;
  for i = 1 to 10 {
    for j = 1 to 10 {
      if (i == j) {
        a[i,j] = 14.0;
      } else {
        a[i,j] = 1.0 / float(i + j);
      }
    }
  }
  crout(10, a);
  var s: float;
  for i = 1 to 10 {
    for j = 1 to 10 {
      s = s + a[i,j];
    }
  }
  emit(s);
  return s;
}
|}

let rk4 =
  {|
// Classic fourth-order Runge-Kutta for y' = y - t*t + 1.
fn f(t: float, y: float): float {
  return y - t * t + 1.0;
}

fn main(): float {
  var t: float = 0.0;
  var y: float = 0.5;
  var h: float = 0.05;
  var i: int;
  for i = 1 to 40 {
    var k1: float = f(t, y);
    var k2: float = f(t + h / 2.0, y + h * k1 / 2.0);
    var k3: float = f(t + h / 2.0, y + h * k2 / 2.0);
    var k4: float = f(t + h, y + h * k3);
    y = y + h * (k1 + 2.0 * k2 + 2.0 * k3 + k4) / 6.0;
    t = t + h;
  }
  emit(y);
  return y;
}
|}

let secant =
  {|
// Secant method for cos-like root via a truncated series.
fn f(x: float): float {
  // series for cos(x) - x
  var acc: float = 1.0;
  var term: float = 1.0;
  var k: int;
  for k = 1 to 6 {
    term = (0.0 - term) * x * x / float((2 * k - 1) * (2 * k));
    acc = acc + term;
  }
  return acc - x;
}

fn main(): float {
  var x0: float = 0.0;
  var x1: float = 1.0;
  var i: int;
  for i = 1 to 20 {
    var f0: float = f(x0);
    var f1: float = f(x1);
    var d: float = f1 - f0;
    if (abs(d) > 0.0000000001) {
      var x2: float = x1 - f1 * (x1 - x0) / d;
      x0 = x1;
      x1 = x2;
    }
  }
  emit(x1);
  return x1;
}
|}

let lagrange =
  {|
// Lagrange interpolation through 8 knots, evaluated on a sweep.
fn interp(n: int, xs: float[8], ys: float[8], x: float): float {
  var acc: float;
  var i: int;
  var j: int;
  for i = 1 to n {
    var l: float = 1.0;
    for j = 1 to n {
      if (j != i) {
        l = l * (x - xs[j]) / (xs[i] - xs[j]);
      }
    }
    acc = acc + ys[i] * l;
  }
  return acc;
}

fn main(): float {
  var xs: float[8];
  var ys: float[8];
  var i: int;
  for i = 1 to 8 {
    xs[i] = float(i);
    ys[i] = float(i * i) * 0.5 - float(i);
  }
  var s: float;
  var k: int;
  for k = 0 to 28 {
    s = s + interp(8, xs, ys, 1.0 + float(k) * 0.25);
  }
  emit(s);
  return s;
}
|}

let redblack =
  {|
// Red-black Gauss-Seidel on a 1-D chain: the parity test inside the loop
// exercises mixed control flow and addressing.
fn main(): float {
  var u: float[64];
  var i: int;
  for i = 1 to 64 {
    u[i] = float(mod(i * 11, 17)) * 0.1;
  }
  var sweep: int;
  for sweep = 1 to 30 {
    var parity: int = mod(sweep, 2);
    for i = 2 to 63 {
      if (mod(i, 2) == parity) {
        u[i] = 0.5 * (u[i-1] + u[i+1]);
      }
    }
  }
  var s: float;
  for i = 1 to 64 {
    s = s + u[i];
  }
  emit(s);
  return s;
}
|}

let cumsum =
  {|
// Prefix sums, suffix sums and a windowed average over one array.
fn main(): float {
  var x: float[100];
  var pre: float[100];
  var suf: float[100];
  var i: int;
  for i = 1 to 100 {
    x[i] = float(mod(i * 19, 23)) - 11.0;
  }
  pre[1] = x[1];
  for i = 2 to 100 {
    pre[i] = pre[i-1] + x[i];
  }
  suf[100] = x[100];
  for i = 99 downto 1 {
    suf[i] = suf[i+1] + x[i];
  }
  var s: float;
  for i = 3 to 98 {
    s = s + (pre[i+2] - pre[i-2]) / 5.0 + suf[i] * 0.01;
  }
  emit(s);
  return s;
}
|}

let transpose =
  {|
// B = A^T, then a multiply against the transpose: two different access
// orders over the same data.
fn main(): float {
  var a: float[14,14];
  var b: float[14,14];
  var i: int;
  var j: int;
  var k: int;
  for i = 1 to 14 {
    for j = 1 to 14 {
      a[i,j] = float(i * 3 - j * 2) * 0.125;
    }
  }
  for i = 1 to 14 {
    for j = 1 to 14 {
      b[j,i] = a[i,j];
    }
  }
  var s: float;
  for i = 1 to 14 {
    for j = 1 to 14 {
      var acc: float;
      for k = 1 to 14 {
        acc = acc + a[i,k] * b[k,j];
      }
      s = s + acc;
    }
  }
  emit(s);
  return s;
}
|}

let stats =
  {|
// Single-pass mean/variance/extrema (Welford-style update).
fn main(): float {
  var mean: float;
  var m2: float;
  var lo: float = 1000000.0;
  var hi: float = 0.0 - 1000000.0;
  var i: int;
  for i = 1 to 300 {
    var v: float = float(mod(i * 7 + 3, 31)) - 15.0;
    var delta: float = v - mean;
    mean = mean + delta / float(i);
    m2 = m2 + delta * (v - mean);
    lo = min(lo, v);
    hi = max(hi, v);
  }
  var variance: float = m2 / 299.0;
  emit(mean);
  emit(variance);
  return mean + variance + lo + hi;
}
|}

let sieve =
  {|
// Sieve of Eratosthenes; returns the count and sum of primes below 400.
fn main(): int {
  var composite: int[400];
  var i: int;
  var j: int;
  i = 2;
  while (i * i <= 400) {
    if (composite[i] == 0) {
      j = i * i;
      while (j <= 400) {
        composite[j] = 1;
        j = j + i;
      }
    }
    i = i + 1;
  }
  var count: int;
  var sum: int;
  for i = 2 to 400 {
    if (composite[i] == 0) {
      count = count + 1;
      sum = sum + i;
    }
  }
  emit(count);
  emit(sum);
  return count * 100000 + sum;
}
|}

let euclid =
  {|
// Batched Euclid: gcd over many pairs (remainder-heavy integer loop).
fn gcd(a: int, b: int): int {
  var x: int = abs(a);
  var y: int = abs(b);
  while (y != 0) {
    var t: int = mod(x, y);
    x = y;
    y = t;
  }
  return x;
}

fn main(): int {
  var s: int;
  var i: int;
  var j: int;
  for i = 1 to 25 {
    for j = 1 to 25 {
      s = s + gcd(i * 12 + 7, j * 18 + 5);
    }
  }
  emit(s);
  return s;
}
|}

let collatz =
  {|
// Collatz trajectory lengths (data-dependent while loop).
fn steps(n0: int, cap: int): int {
  var n: int = n0;
  var k: int = 0;
  while (n != 1 && k < cap) {
    if (mod(n, 2) == 0) {
      n = n / 2;
    } else {
      n = 3 * n + 1;
    }
    k = k + 1;
  }
  return k;
}

fn main(): int {
  var total: int;
  var i: int;
  for i = 1 to 120 {
    total = total + steps(i, 300);
  }
  emit(total);
  return total;
}
|}

let smooth3 =
  {|
// Iterated three-point smoothing with boundary handling in the loop.
fn main(): float {
  var a: float[90];
  var b: float[90];
  var i: int;
  for i = 1 to 90 {
    a[i] = float(mod(i * 13, 29));
  }
  var pass: int;
  for pass = 1 to 12 {
    for i = 1 to 90 {
      if (i == 1) {
        b[i] = (2.0 * a[1] + a[2]) / 3.0;
      } else {
        if (i == 90) {
          b[i] = (a[89] + 2.0 * a[90]) / 3.0;
        } else {
          b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0;
        }
      }
    }
    for i = 1 to 90 {
      a[i] = b[i];
    }
  }
  var s: float;
  for i = 1 to 90 {
    s = s + a[i] * a[i];
  }
  emit(s);
  return s;
}
|}
