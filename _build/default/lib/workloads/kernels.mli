(** Loop-nest and stencil workloads echoing the rest of the paper's suite:
    a tomcatv-like mesh kernel, stencils, initialization sweeps ([iniset]),
    simple reductions ([hmoy], [x21y21]) and synthetic kernels that stress
    the specific phenomena the paper studies (deep loop-invariant address
    chains, partially-dead expressions). *)

val tomcatv : string
val heat : string
val stencil3 : string
val iniset : string
val x21y21 : string
val hmoy : string
val bilin : string
val series : string
val addr_chain : string
val pdead : string
