(** Twelve further routines bringing the suite to the paper's 50: classic
    numeric methods (Crout LU, RK4, secant, Lagrange interpolation,
    red-black relaxation), scans and single-pass statistics, and
    integer-heavy kernels (sieve, Euclid, Collatz). *)

val crout : string
val rk4 : string
val secant : string
val lagrange : string
val redblack : string
val cumsum : string
val transpose : string
val stats : string
val sieve : string
val euclid : string
val collatz : string
val smooth3 : string
