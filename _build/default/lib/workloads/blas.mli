(** Dense linear-algebra workloads, echoing the BLAS-derived routines of the
    paper's suite ([saxpy], [sgemv], [sgemm]). The doubly/triply subscripted
    array accesses produce exactly the address arithmetic whose invariant
    parts global reassociation exposes (Section 2.1). *)

val saxpy : string
val dot : string
val sgemv : string
val sgemm : string
