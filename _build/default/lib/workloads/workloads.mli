(** The workload suite — stands in for the paper's 50 routines drawn from
    SPEC and Forsythe/Malcolm/Moler (see DESIGN.md, "Substitutions").

    Every workload is a complete program whose [main] fills its inputs
    deterministically, runs the kernel, and both [emit]s and returns a
    checksum — the observable behaviour differential tests compare across
    optimization levels. *)

open Epre_ir

type t = {
  name : string;
  description : string;
  source : string;  (** mini-language source text *)
}

val all : t list

val find : string -> t option

val compile : t -> Program.t

(** Run a compiled workload's [main]: (return value, emit trace, dynamic
    operation count). *)
val execute : Program.t -> Value.t option * Value.t list * int
