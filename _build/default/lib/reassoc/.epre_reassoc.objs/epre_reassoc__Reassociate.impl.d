lib/reassoc/reassociate.ml: Epre_ir Epre_ssa Expr_tree Forward_prop Routine
