lib/reassoc/reassociate.mli: Epre_ir Expr_tree Routine
