lib/reassoc/rank.mli: Epre_ir Instr Routine
