lib/reassoc/rank.ml: Array Block Cfg Epre_analysis Epre_ir Instr List Order Routine
