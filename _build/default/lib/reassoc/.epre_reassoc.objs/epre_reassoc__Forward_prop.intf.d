lib/reassoc/forward_prop.mli: Epre_ir Expr_tree Routine
