lib/reassoc/forward_prop.ml: Array Block Cfg Defuse Epre_analysis Epre_ir Epre_opt Epre_ssa Expr_tree Instr List Op Rank Routine
