lib/reassoc/expr_tree.mli: Epre_ir Format Instr Op Value
