lib/reassoc/expr_tree.ml: Epre_ir Fmt Hashtbl Instr List Op Option Value
