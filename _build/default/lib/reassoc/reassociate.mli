(** Global reassociation — the paper's new algorithm (Section 3.1).

    Three steps: compute a rank for every expression ([Rank]), propagate
    expressions forward to their uses ([Forward_prop]), and reassociate —
    flatten, sort operands by rank, optionally distribute multiplication
    over addition ([Expr_tree]).

    An {e enabling} transformation: on its own it duplicates expressions
    and moves code into loops; GVN then encodes value equivalence into the
    names and PRE harvests the exposed loop invariants and redundancies. *)

open Epre_ir

type stats = {
  before_ops : int;  (** static ILOC operations entering the pass *)
  after_ops : int;  (** static operations after forward propagation *)
}

(** Code growth factor, the paper's Table 2 metric. *)
val expansion : stats -> float

(** Requires non-SSA input; leaves non-SSA output. *)
val run : ?config:Expr_tree.config -> Routine.t -> stats
