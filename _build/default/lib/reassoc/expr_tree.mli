(** Expression trees and their reassociation (Section 3.1, "Sorting
    Expressions").

    Normalization applies Frailey's rewrite ([x - y -> x + (-y)]), flattens
    associative operators into n-ary nodes, sorts each node's operands by
    rank (constants, rank 0, sort to the front where constant propagation
    folds them), and optionally distributes a low-ranked multiplier over a
    higher-ranked sum — {e partially}, by rank, so that in
    [a + b*((c+d)+e)] with ranks b,c,d = 1 and e = 2 the result is
    [a + b*(c+d) + b*e]. Division is never rewritten as multiplication by
    a reciprocal. *)

open Epre_ir

type t =
  | Leaf of { reg : Instr.reg; rank : int }
      (** an anchor: parameter, phi name, load, call or alloca result *)
  | Cst of Value.t
  | Nary of { op : Op.binop; args : t list }
      (** flattened associative node, at least two operands *)
  | Bin of { op : Op.binop; a : t; b : t }  (** non-reassociable operator *)
  | Un of { op : Op.unop; arg : t }

type config = {
  reassoc_float : bool;
      (** treat FP [+]/[*] as associative, as FORTRAN optimizers (and the
          paper's numeric suite) do *)
  distribute : bool;  (** the paper's "distribution" optimization level *)
}

val default_config : config
(** [{ reassoc_float = true; distribute = false }] *)

val rank : t -> int

(** May an operator be flattened and its operands sorted under [config]? *)
val reassociable : config -> Op.binop -> bool

val normalize : config -> t -> t

(** Number of nodes (operation count once lowered). *)
val size : t -> int

val pp : Format.formatter -> t -> unit
