(** Forward propagation (Section 3.1, "Forward Propagation").

    Splits entering edges where necessary, removes each phi by copies at
    its predecessors (Figure 5), and rebuilds the full — reassociated —
    expression tree of every root use (phi-copy sources, branch conditions,
    call arguments, returns, store operands, load addresses) immediately
    before that use, tracing the SSA graph back through pure instructions
    to anchors (parameters, phi names, loads, calls, allocas).

    Trees duplicate shared subexpressions — the growth of Table 2, worst
    case exponential (Section 4.3) — and DCE sweeps the stranded originals.
    Propagation also eliminates partially-dead expressions as a side
    effect. *)

open Epre_ir

(** Requires SSA form; leaves non-SSA code. *)
val run : config:Expr_tree.config -> Routine.t -> Routine.t
