(** Global reassociation — the paper's new algorithm (Section 3.1).

    The three steps: compute a rank for every expression, propagate
    expressions forward to their uses, and reassociate, sorting operands by
    rank (with optional distribution of multiplication over addition).
    Realized as: build pruned SSA with copies folded, rank over reverse
    postorder, forward-propagate building reassociated trees, DCE the
    stranded originals.

    This pass makes the code *worse* on its own — it duplicates expressions
    and moves them into loops. It is an enabling transformation: GVN then
    encodes value equivalence into the names and PRE harvests the exposed
    loop invariants and redundancies (Section 3). *)

open Epre_ir

type stats = {
  before_ops : int;  (** static ILOC operations entering the pass *)
  after_ops : int;  (** static operations after forward propagation *)
}

(** Expansion factor as reported in Table 2. *)
let expansion s =
  if s.before_ops = 0 then 1.0 else float_of_int s.after_ops /. float_of_int s.before_ops

let run ?(config = Expr_tree.default_config) (r : Routine.t) =
  if r.Routine.in_ssa then invalid_arg "Reassociate.run: requires non-SSA code";
  let before_ops = Routine.op_count r in
  let r = Epre_ssa.Ssa.build r in
  let r = Forward_prop.run ~config r in
  Routine.validate r;
  let after_ops = Routine.op_count r in
  { before_ops; after_ops }
