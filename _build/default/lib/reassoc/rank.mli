(** Ranks (Section 3.1, "Computing Ranks"), computed on pruned SSA during a
    reverse-postorder traversal:

    + constants receive rank zero;
    + phi results, call results, loads (and allocas/parameters) receive
      their block's rank;
    + an expression receives its highest-ranked operand's rank.

    Loop-invariant expressions thus rank below loop-variant ones, and the
    rank of a loop-variant value tracks the nesting depth of the loop that
    varies it. *)

open Epre_ir

type t

(** Requires SSA form. *)
val compute : Routine.t -> t

val of_reg : t -> Instr.reg -> int

(** 1-based reverse-postorder block number. *)
val of_block : t -> int -> int
