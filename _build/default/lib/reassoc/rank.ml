(** Ranks (Section 3.1, "Computing Ranks").

    Computed on the pruned SSA form during a reverse-postorder traversal of
    the CFG. Blocks are numbered 1, 2, ... as visited; then

    1. a constant receives rank zero;
    2. the result of a phi receives the rank of its block, as do values
       "modified by procedure calls" — call results — and the results of
       loads (and, in our IR, allocas and the routine's parameters, which
       behave like values defined at the entry);
    3. an expression receives the rank of its highest-ranked operand.

    The effect: loop-invariant expressions rank lower than loop-variant
    ones, and the rank of a loop-variant expression tracks the nesting
    depth of the loop that varies it — the property the sort step exploits
    to place hoistable operands together. *)

open Epre_ir
open Epre_analysis

type t = {
  of_reg : int array;
  of_block : int array;  (** 1-based reverse-postorder block numbers *)
}

let compute (r : Routine.t) =
  if not r.Routine.in_ssa then invalid_arg "Rank.compute: requires SSA form";
  let cfg = r.Routine.cfg in
  let order = Order.compute cfg in
  let rpo = Order.reverse_postorder order in
  let of_block = Array.make (Cfg.num_blocks cfg) 0 in
  Array.iteri (fun i id -> of_block.(id) <- i + 1) rpo;
  let of_reg = Array.make (max 1 r.Routine.next_reg) 0 in
  let entry_rank = of_block.(Cfg.entry cfg) in
  List.iter (fun p -> of_reg.(p) <- entry_rank) r.Routine.params;
  Array.iter
    (fun id ->
      let b = Cfg.block cfg id in
      let block_rank = of_block.(id) in
      List.iter
        (fun i ->
          match i with
          | Instr.Const { dst; _ } -> of_reg.(dst) <- 0
          | Instr.Copy { dst; src } -> of_reg.(dst) <- of_reg.(src)
          | Instr.Unop { dst; src; _ } -> of_reg.(dst) <- of_reg.(src)
          | Instr.Binop { dst; a; b = b'; _ } -> of_reg.(dst) <- max of_reg.(a) of_reg.(b')
          | Instr.Load { dst; _ } | Instr.Alloca { dst; _ } | Instr.Phi { dst; _ } ->
            of_reg.(dst) <- block_rank
          | Instr.Call { dst = Some d; _ } -> of_reg.(d) <- block_rank
          | Instr.Call { dst = None; _ } | Instr.Store _ -> ())
        b.Block.instrs)
    rpo;
  { of_reg; of_block }

let of_reg t reg = t.of_reg.(reg)

let of_block t id = t.of_block.(id)
