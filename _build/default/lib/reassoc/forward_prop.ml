(** Forward propagation (Section 3.1, "Forward Propagation").

    Starting from pruned SSA with copies folded:

    1. critical edges are split and each phi [x <- phi(y, z)] is removed by
       inserting the copies [x <- y] and [x <- z] at the end of the
       appropriate predecessor blocks (a block's phis form a parallel copy;
       the sequentializer below preserves that semantics);
    2. every *root* use — phi-replacement copy sources, values controlling
       program flow, call arguments and returned values, store operands and
       load addresses — gets its full expression tree rebuilt immediately
       before the use by tracing the SSA def-use graph back through pure
       instructions, stopping at anchors (parameters, phi names, loads,
       calls, allocas);
    3. each tree is reassociated ([Expr_tree.normalize]) before being
       lowered back to three-address code, left to right, so the low-ranked
       prefix of every sorted n-ary node becomes a hoistable subexpression.

    Trees duplicate shared subexpressions — the code growth the paper's
    Table 2 quantifies, "in the worst case ... exponential in the size of
    the routine" (Section 4.3) — and the now-unused originals are swept by
    DCE afterwards. As the paper observes, propagation also eliminates
    partially-dead expressions: every propagated expression is used on every
    path from its (new) definition. *)

open Epre_ir
open Epre_analysis

(* ------------------------------------------------------------------ *)
(* Tree construction and materialization                               *)

type ctx = {
  routine : Routine.t;
  ranks : Rank.t;
  config : Expr_tree.config;
  def_instr : Instr.t option array;  (** captured on SSA, before phi removal *)
  anchor : bool array;
}

let rec trace ctx reg : Expr_tree.t =
  if ctx.anchor.(reg) then Leaf { reg; rank = Rank.of_reg ctx.ranks reg }
  else
    match ctx.def_instr.(reg) with
    | Some (Instr.Const { value; _ }) -> Cst value
    | Some (Instr.Unop { op; src; _ }) -> Un { op; arg = trace ctx src }
    | Some (Instr.Binop { op; a; b; _ }) ->
      if
        (if ctx.config.Expr_tree.reassoc_float then Op.associative_modulo_rounding op
         else Op.associative op)
        && Op.commutative op
      then Nary { op; args = [ trace ctx a; trace ctx b ] }
      else Bin { op; a = trace ctx a; b = trace ctx b }
    | Some (Instr.Copy { src; _ }) -> trace ctx src
    | Some _ | None ->
      (* Defensive: treat anything unexpected as an anchor. *)
      Leaf { reg; rank = Rank.of_reg ctx.ranks reg }

(* Lower a (normalized) tree to three-address code, appending to [acc] in
   execution order; returns the register holding the result. *)
let rec lower ctx acc tree : Instr.reg =
  let fresh () = Routine.fresh_reg ctx.routine in
  match (tree : Expr_tree.t) with
  | Leaf { reg; _ } -> reg
  | Cst value ->
    let dst = fresh () in
    acc := Instr.Const { dst; value } :: !acc;
    dst
  | Un { op; arg } ->
    let src = lower ctx acc arg in
    let dst = fresh () in
    acc := Instr.Unop { op; dst; src } :: !acc;
    dst
  | Bin { op; a; b } ->
    let ra = lower ctx acc a in
    let rb = lower ctx acc b in
    let dst = fresh () in
    acc := Instr.Binop { op; dst; a = ra; b = rb } :: !acc;
    dst
  | Nary { op; args } -> begin
    match args with
    | [] | [ _ ] -> invalid_arg "Forward_prop.lower: malformed n-ary node"
    | first :: rest ->
      (* Left-to-right over the rank-sorted operands: the low-rank prefix
         becomes a chain of hoistable subexpressions. *)
      List.fold_left
        (fun accreg arg ->
          let rarg = lower ctx acc arg in
          let dst = fresh () in
          acc := Instr.Binop { op; dst; a = accreg; b = rarg } :: !acc;
          dst)
        (lower ctx acc first) rest
  end

(* Materialize the reassociated tree for operand [reg] in front of a root
   use; returns the replacement register. *)
let materialize ctx acc reg =
  if ctx.anchor.(reg) then reg
  else begin
    let tree = Expr_tree.normalize ctx.config (trace ctx reg) in
    lower ctx acc tree
  end

let is_root_instr = function
  | Instr.Load _ | Instr.Store _ | Instr.Call _ -> true
  | Instr.Copy _ | Instr.Alloca _ | Instr.Const _ | Instr.Unop _ | Instr.Binop _
  | Instr.Phi _ -> false

(* Replace each phi by copies at the end of its predecessors (Figure 5).
   Edges from a multi-successor predecessor are split first — "if
   necessary, the entering edges are split and appropriate predecessor
   blocks are created" — so the copies (and the argument trees materialized
   just above them) execute only along the right edge. Each predecessor's
   copy group keeps parallel-copy semantics: all argument trees are
   evaluated into place first, then the copies run in an order that never
   clobbers a pending read (cycles broken with a temporary). *)
let remove_phis ctx =
  let r = ctx.routine in
  let cfg = r.Routine.cfg in
  let phi_blocks =
    Cfg.fold_blocks (fun acc b -> if Block.phis b <> [] then b.Block.id :: acc else acc) [] cfg
  in
  List.iter
    (fun bid ->
      let b = Cfg.block cfg bid in
      (* Split entering edges whose source has several successors. *)
      let preds_now =
        match Block.phis b with
        | Instr.Phi { args; _ } :: _ -> List.map fst args
        | _ -> assert false
      in
      List.iter
        (fun p ->
          if List.length (Cfg.succs cfg p) > 1 then ignore (Cfg.split_edge cfg ~from_:p ~to_:bid))
        preds_now;
      let phis = Block.phis b in
      let preds =
        match phis with
        | Instr.Phi { args; _ } :: _ -> List.map fst args
        | _ -> assert false
      in
      List.iter
        (fun p ->
          let pb = Cfg.block cfg p in
          let acc = ref [] in
          (* Trees first: they read the pre-copy values of every anchor. *)
          let pairs =
            List.map
              (function
                | Instr.Phi { dst; args } -> (dst, materialize ctx acc (List.assoc p args))
                | _ -> assert false)
              phis
          in
          List.iter (fun i -> Block.append pb i) (List.rev !acc);
          let seq =
            Epre_ssa.Parallel_copy.sequentialize ~fresh:(fun () -> Routine.fresh_reg r) pairs
          in
          List.iter (fun (dst, src) -> Block.append pb (Instr.Copy { dst; src })) seq)
        preds;
      b.Block.instrs <- Block.non_phis b)
    phi_blocks;
  r.Routine.in_ssa <- false

(** Run forward propagation on a routine in SSA form; leaves non-SSA
    code. *)
let run ~(config : Expr_tree.config) (r : Routine.t) =
  if not r.Routine.in_ssa then invalid_arg "Forward_prop.run: requires SSA form";
  let ranks = Rank.compute r in
  let du = Defuse.compute r in
  let width = max 1 r.Routine.next_reg in
  let anchor = Array.make width false in
  List.iter (fun p -> anchor.(p) <- true) r.Routine.params;
  let def_instr = Array.make width None in
  for v = 0 to width - 1 do
    def_instr.(v) <- Defuse.def_instr du v;
    match def_instr.(v) with
    | Some (Instr.Phi _ | Instr.Load _ | Instr.Call _ | Instr.Alloca _) -> anchor.(v) <- true
    | Some (Instr.Const _ | Instr.Copy _ | Instr.Unop _ | Instr.Binop _ | Instr.Store _)
    | None -> ()
  done;
  let ctx = { routine = r; ranks; config; def_instr; anchor } in
  let cfg = r.Routine.cfg in
  (* In-block roots and terminators first: their trees must evaluate before
     any phi copies appended to the block end. *)
  Cfg.iter_blocks
    (fun b ->
      let out = ref [] in
      List.iter
        (fun i ->
          if is_root_instr i then begin
            let i = Instr.map_uses (fun u -> materialize ctx out u) i in
            out := i :: !out
          end
          else out := i :: !out)
        b.Block.instrs;
      let term = Instr.map_term_uses (fun u -> materialize ctx out u) b.Block.term in
      b.Block.term <- term;
      b.Block.instrs <- List.rev !out)
    cfg;
  remove_phis ctx;
  (* The originals that fed only propagated uses are now dead. *)
  ignore (Epre_opt.Dce.run r);
  r
