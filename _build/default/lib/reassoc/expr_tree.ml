(** Expression trees and their reassociation (Section 3.1, "Sorting
    Expressions").

    Forward propagation builds one tree per root use; this module reshapes
    it:

    - Frailey's rewrite: [x - y] becomes [x + (-y)], "since addition is
      associative and subtraction is not" (reconstruction of subtraction is
      left to the later peephole pass);
    - associative operators are flattened into n-ary nodes;
    - each n-ary node's operands are sorted by rank, so low-ranked
      (loop-invariant) operands group together and constants (rank 0) sort
      to the front where constant propagation can fold them;
    - optionally, a low-ranked multiplier is distributed over a
      higher-ranked sum — *partially*, by rank: in [a + b*((c+d)+e)] with
      ranks b,c,d = 1 and e = 2, the result is [a + b*(c+d) + b*e], so that
      [a + b*(c+d)] can hoist even though [b*e] cannot, while complete
      distribution would only add multiplies. Sums are re-sorted after
      distribution.

    Division is never rewritten as multiplication by a reciprocal, to avoid
    introducing precision problems. *)

open Epre_ir

type t =
  | Leaf of { reg : Instr.reg; rank : int }
  | Cst of Value.t
  | Nary of { op : Op.binop; args : t list }  (** flattened associative node *)
  | Bin of { op : Op.binop; a : t; b : t }  (** non-reassociable operator *)
  | Un of { op : Op.unop; arg : t }

type config = {
  reassoc_float : bool;
      (** treat FP +,* as associative, as FORTRAN optimizers (and the
          paper's numeric suite) do *)
  distribute : bool;  (** the paper's "distribution" optimization level *)
}

let default_config = { reassoc_float = true; distribute = false }

let rec rank = function
  | Leaf { rank = r; _ } -> r
  | Cst _ -> 0
  | Nary { args; _ } -> List.fold_left (fun acc t -> max acc (rank t)) 0 args
  | Bin { a; b; _ } -> max (rank a) (rank b)
  | Un { arg; _ } -> rank arg

let reassociable config op =
  if config.reassoc_float then Op.associative_modulo_rounding op && Op.commutative op
  else Op.associative op && Op.commutative op

(* Stable sort by rank; List.stable_sort keeps the original relative order
   of equal-rank operands, so output is deterministic. *)
let sort_by_rank args = List.stable_sort (fun a b -> compare (rank a) (rank b)) args

let rec flatten_into config op acc = function
  | Nary { op = op'; args } when op' = op -> List.fold_left (flatten_into config op) acc args
  | t -> t :: acc

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)

let is_sum_for op t =
  match Op.distributes_over op, t with
  | Some add, Nary { op = op'; _ } when op' = add -> true
  | Some add, Bin { op = op'; _ } when op' = add -> true
  | _ -> false

(* Group the sum's children for partial distribution: children ranked at or
   below the multiplier stay together (their product hoists as one); the
   higher-ranked children are grouped by rank level so each level keeps its
   own multiply. *)
let group_children ~rank_f children =
  let low, high = List.partition (fun c -> rank c <= rank_f) children in
  let by_rank = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let k = rank c in
      Hashtbl.replace by_rank k (c :: Option.value ~default:[] (Hashtbl.find_opt by_rank k)))
    high;
  let high_groups =
    Hashtbl.fold (fun k cs acc -> (k, List.rev cs) :: acc) by_rank []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  (low, high_groups)

let mk_sum add = function
  | [ c ] -> c
  | cs -> Nary { op = add; args = cs }

let mk_product op = function
  | [ f ] -> f
  | fs -> Nary { op; args = fs }

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)

let rec normalize config t =
  match t with
  | Leaf _ | Cst _ -> t
  | Un { op; arg } -> Un { op; arg = normalize config arg }
  | Bin { op; a; b } -> begin
    let a = normalize config a and b = normalize config b in
    match Op.sub_as_add_neg op with
    | Some (add, neg) when reassociable config add ->
      (* x - y -> x + (-y), then rebuild as an n-ary sum. *)
      rebuild_nary config add [ a; Un { op = neg; arg = b } ]
    | _ ->
      if reassociable config op then rebuild_nary config op [ a; b ]
      else Bin { op; a; b }
  end
  | Nary { op; args } ->
    let args = List.map (normalize config) args in
    rebuild_nary config op args

and rebuild_nary config op args =
  let args = List.rev (List.fold_left (flatten_into config op) [] args) in
  let args = sort_by_rank args in
  let t =
    match args with
    | [] | [ _ ] -> invalid_arg "Expr_tree: n-ary node needs two operands"
    | args -> Nary { op; args }
  in
  if config.distribute then distribute config t else t

and distribute config t =
  match t with
  | Nary { op; args } when Op.distributes_over op <> None -> begin
    let add = Option.get (Op.distributes_over op) in
    let sums, factors = List.partition (is_sum_for op) args in
    match sums with
    | [] -> t
    | _ when factors = [] ->
      (* sum * sum: no low-ranked multiplier to distribute. *)
      t
    | sums ->
      (* Distribute over the highest-ranked sum only, keeping the rest as
         factors. *)
      let sum =
        List.fold_left (fun best s -> if rank s > rank best then s else best)
          (List.hd sums) (List.tl sums)
      in
      let factors = factors @ List.filter (fun s -> s != sum) sums in
      let rank_f = List.fold_left (fun acc f -> max acc (rank f)) 0 factors in
      let children =
        match sum with
        | Nary { args; _ } -> args
        | Bin { a; b; _ } -> [ a; b ]
        | Leaf _ | Cst _ | Un _ -> assert false
      in
      if not (List.exists (fun c -> rank c > rank_f) children) then
        (* The sum does not outrank the multiplier: distribution buys no
           extra code motion, only extra multiplies. *)
        t
      else begin
        let low, high_groups = group_children ~rank_f children in
        let groups = (if low = [] then [] else [ low ]) @ high_groups in
        if List.length groups <= 1 then
          (* One group only: distribution would rebuild the same product and
             recurse forever; there is nothing to separate. *)
          t
        else begin
        let terms =
          List.map
            (fun g -> normalize config (mk_product op (factors @ [ mk_sum add g ])))
            groups
        in
        (* Re-sort the resulting sum (the paper: "it is important to re-sort
           sums after distribution"). *)
        normalize config (mk_sum add terms)
        end
      end
  end
  | t -> t

(* ------------------------------------------------------------------ *)

let rec size = function
  | Leaf _ | Cst _ -> 1
  | Un { arg; _ } -> 1 + size arg
  | Bin { a; b; _ } -> 1 + size a + size b
  | Nary { args; _ } -> List.fold_left (fun acc t -> acc + size t) (List.length args - 1) args

let rec pp ppf = function
  | Leaf { reg; rank } -> Fmt.pf ppf "r%d@@%d" reg rank
  | Cst v -> Value.pp ppf v
  | Un { op; arg } -> Fmt.pf ppf "%s(%a)" (Op.unop_name op) pp arg
  | Bin { op; a; b } -> Fmt.pf ppf "(%a %s %a)" pp a (Op.binop_name op) pp b
  | Nary { op; args } ->
    Fmt.pf ppf "(%s %a)" (Op.binop_name op) Fmt.(list ~sep:(any " ") pp) args
