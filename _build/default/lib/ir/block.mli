(** Basic blocks: a straight-line instruction list plus one terminator.
    Phis, when present (SSA form), lead the instruction list. *)

type t = {
  id : int;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

val create : id:int -> ?instrs:Instr.t list -> term:Instr.terminator -> unit -> t

(** Append before the terminator. *)
val append : t -> Instr.t -> unit

val prepend : t -> Instr.t -> unit

val succs : t -> int list

(** Registers defined anywhere in the block, phis included. *)
val defs : t -> Instr.reg list

val phis : t -> Instr.t list

val non_phis : t -> Instr.t list

(** Instructions plus the terminator — the paper's static count unit. *)
val op_count : t -> int
