(** ILOC instructions.

    Three-address form over virtual registers. The distinction the paper
    draws in Section 2.2 between *variable names* (targets of [Copy]) and
    *expression names* (targets of every other computation) is a property of
    how passes choose registers, not of the instruction type itself; see
    [Epre_opt.Naming] and [Epre_gvn.Gvn].

    [Phi] nodes appear only while a routine is in SSA form; every pass that
    is not SSA-aware may assume their absence ([Routine.in_ssa] tracks
    this). *)

type reg = int

type t =
  | Const of { dst : reg; value : Value.t }
  | Copy of { dst : reg; src : reg }
  | Unop of { op : Op.unop; dst : reg; src : reg }
  | Binop of { op : Op.binop; dst : reg; a : reg; b : reg }
  | Load of { dst : reg; addr : reg }
  | Store of { addr : reg; src : reg }
  | Alloca of { dst : reg; words : int; init : Value.t }
      (** allocates [words] memory words, each filled with [init] *)
  | Call of { dst : reg option; callee : string; args : reg list }
  | Phi of { dst : reg; args : (int * reg) list }
      (** [args] pairs a predecessor block id with the register flowing in
          along that edge. *)

type terminator =
  | Jump of int
  | Cbr of { cond : reg; ifso : int; ifnot : int }
  | Ret of reg option

(* ------------------------------------------------------------------ *)
(* Def/use structure                                                   *)

let def = function
  | Const { dst; _ } | Copy { dst; _ } | Unop { dst; _ } | Binop { dst; _ }
  | Load { dst; _ } | Alloca { dst; _ } | Phi { dst; _ } -> Some dst
  | Call { dst; _ } -> dst
  | Store _ -> None

let uses = function
  | Const _ | Alloca _ -> []
  | Copy { src; _ } | Unop { src; _ } -> [ src ]
  | Binop { a; b; _ } -> [ a; b ]
  | Load { addr; _ } -> [ addr ]
  | Store { addr; src } -> [ addr; src ]
  | Call { args; _ } -> args
  | Phi { args; _ } -> List.map snd args

let term_uses = function
  | Jump _ -> []
  | Cbr { cond; _ } -> [ cond ]
  | Ret (Some r) -> [ r ]
  | Ret None -> []

let term_succs = function
  | Jump l -> [ l ]
  | Cbr { ifso; ifnot; _ } -> if ifso = ifnot then [ ifso ] else [ ifso; ifnot ]
  | Ret _ -> []

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)

let map_uses f = function
  | Const _ as i -> i
  | Alloca _ as i -> i
  | Copy { dst; src } -> Copy { dst; src = f src }
  | Unop { op; dst; src } -> Unop { op; dst; src = f src }
  | Binop { op; dst; a; b } -> Binop { op; dst; a = f a; b = f b }
  | Load { dst; addr } -> Load { dst; addr = f addr }
  | Store { addr; src } -> Store { addr = f addr; src = f src }
  | Call { dst; callee; args } -> Call { dst; callee; args = List.map f args }
  | Phi { dst; args } -> Phi { dst; args = List.map (fun (l, r) -> (l, f r)) args }

let map_def f = function
  | Const { dst; value } -> Const { dst = f dst; value }
  | Copy { dst; src } -> Copy { dst = f dst; src }
  | Unop { op; dst; src } -> Unop { op; dst = f dst; src }
  | Binop { op; dst; a; b } -> Binop { op; dst = f dst; a; b }
  | Load { dst; addr } -> Load { dst = f dst; addr }
  | Alloca { dst; words; init } -> Alloca { dst = f dst; words; init }
  | Call { dst; callee; args } -> Call { dst = Option.map f dst; callee; args }
  | Phi { dst; args } -> Phi { dst = f dst; args }
  | Store _ as i -> i

let map_term_uses f = function
  | Jump _ as t -> t
  | Cbr { cond; ifso; ifnot } -> Cbr { cond = f cond; ifso; ifnot }
  | Ret r -> Ret (Option.map f r)

let map_term_succs f = function
  | Jump l -> Jump (f l)
  | Cbr { cond; ifso; ifnot } -> Cbr { cond; ifso = f ifso; ifnot = f ifnot }
  | Ret _ as t -> t

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

(* Pure computations: value depends only on operands; freely removable when
   dead, and candidates for value numbering. Loads are *not* pure (memory),
   but they are [redundancy_candidate]s killed by stores/calls. *)
let is_pure = function
  | Const _ | Copy _ | Unop _ | Binop _ -> true
  | Load _ | Store _ | Alloca _ | Call _ | Phi _ -> false

(* Instructions PRE may treat as (re)computable expressions. *)
let redundancy_candidate = function
  | Unop _ | Binop _ | Load _ | Const _ -> true
  | Copy _ | Store _ | Alloca _ | Call _ | Phi _ -> false

(* Side effects that make an instruction unremovable even when its result is
   unused. *)
let has_side_effect = function
  | Store _ | Call _ -> true
  | Const _ | Copy _ | Unop _ | Binop _ | Load _ | Alloca _ | Phi _ -> false

let equal (a : t) (b : t) = a = b
