(** Graphviz (dot) rendering of routines, for inspecting CFGs while
    developing passes: [eprec compile --format dot foo.mf | dot -Tpdf]. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let block_label (b : Block.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "B%d\n" b.Block.id);
  List.iter
    (fun i -> Buffer.add_string buf (Pp.instr_to_string i ^ "\n"))
    b.Block.instrs;
  Buffer.add_string buf (Fmt.str "%a" Pp.terminator b.Block.term);
  Buffer.contents buf

let routine buf (r : Routine.t) =
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "subgraph cluster_%s {\n" r.Routine.name;
  p "  label=\"%s\";\n" (escape r.Routine.name);
  p "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  let entry = Cfg.entry r.Routine.cfg in
  Cfg.iter_blocks
    (fun b ->
      p "  \"%s_B%d\" [label=\"%s\\l\"%s];\n" r.Routine.name b.Block.id
        (escape (block_label b))
        (if b.Block.id = entry then ", penwidth=2" else ""))
    r.Routine.cfg;
  Cfg.iter_blocks
    (fun b ->
      match b.Block.term with
      | Instr.Jump t -> p "  \"%s_B%d\" -> \"%s_B%d\";\n" r.Routine.name b.Block.id r.Routine.name t
      | Instr.Cbr { ifso; ifnot; _ } ->
        p "  \"%s_B%d\" -> \"%s_B%d\" [label=\"T\"];\n" r.Routine.name b.Block.id r.Routine.name ifso;
        p "  \"%s_B%d\" -> \"%s_B%d\" [label=\"F\"];\n" r.Routine.name b.Block.id r.Routine.name ifnot
      | Instr.Ret _ -> ())
    r.Routine.cfg;
  p "}\n"

(** The whole program as one digraph, one cluster per routine. *)
let program (prog : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph program {\n";
  List.iter (routine buf) (Program.routines prog);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
