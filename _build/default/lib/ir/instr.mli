(** ILOC instructions: three-address form over virtual registers.

    The distinction the paper draws in Section 2.2 between {e variable
    names} (targets of [Copy]) and {e expression names} (targets of every
    other computation) is a property of how passes choose registers, not of
    the instruction type; see [Epre_opt.Naming] and [Epre_gvn.Gvn].

    [Phi] nodes appear only while a routine is in SSA form
    ([Routine.in_ssa]). *)

type reg = int

type t =
  | Const of { dst : reg; value : Value.t }
  | Copy of { dst : reg; src : reg }
  | Unop of { op : Op.unop; dst : reg; src : reg }
  | Binop of { op : Op.binop; dst : reg; a : reg; b : reg }
  | Load of { dst : reg; addr : reg }
  | Store of { addr : reg; src : reg }
  | Alloca of { dst : reg; words : int; init : Value.t }
      (** allocates [words] memory words, each filled with [init] *)
  | Call of { dst : reg option; callee : string; args : reg list }
  | Phi of { dst : reg; args : (int * reg) list }
      (** [args] pairs a predecessor block id with the register flowing in
          along that edge *)

type terminator =
  | Jump of int
  | Cbr of { cond : reg; ifso : int; ifnot : int }
      (** branches to [ifso] when [cond] is non-zero *)
  | Ret of reg option

(** {1 Def/use structure} *)

val def : t -> reg option

val uses : t -> reg list

val term_uses : terminator -> reg list

(** Successor block ids; a [Cbr] with equal arms yields the target once. *)
val term_succs : terminator -> int list

(** {1 Rewriting} *)

val map_uses : (reg -> reg) -> t -> t

val map_def : (reg -> reg) -> t -> t

val map_term_uses : (reg -> reg) -> terminator -> terminator

val map_term_succs : (int -> int) -> terminator -> terminator

(** {1 Classification} *)

(** Value depends only on operands; freely removable when dead and a
    candidate for value numbering. Loads are not pure (memory). *)
val is_pure : t -> bool

(** Instructions PRE may treat as (re)computable expressions: unops,
    binops, loads and constants. *)
val redundancy_candidate : t -> bool

(** Unremovable even when the result is unused: stores and calls. *)
val has_side_effect : t -> bool

val equal : t -> t -> bool
