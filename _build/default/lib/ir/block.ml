(** Basic blocks: a straight-line instruction list plus one terminator. *)

type t = {
  id : int;
  mutable instrs : Instr.t list;
  mutable term : Instr.terminator;
}

let create ~id ?(instrs = []) ~term () = { id; instrs; term }

let append b i = b.instrs <- b.instrs @ [ i ]

let prepend b i = b.instrs <- i :: b.instrs

let succs b = Instr.term_succs b.term

(** Registers defined anywhere in the block (phis included). *)
let defs b = List.filter_map Instr.def b.instrs

let phis b =
  List.filter (function Instr.Phi _ -> true | _ -> false) b.instrs

let non_phis b =
  List.filter (function Instr.Phi _ -> false | _ -> true) b.instrs

(** Static operation count: instructions plus the terminator, matching the
    paper's "static counts of the number of ILOC operations". *)
let op_count b = List.length b.instrs + 1
