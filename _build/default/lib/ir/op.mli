(** ILOC operators and their algebraic properties.

    The properties exported here drive the peephole simplifier and the
    global reassociation pass of the paper's Section 3.1: only operators
    marked associative may be flattened into n-ary expression trees and
    have their operands sorted by rank. *)

(** Binary operators. Integer and float arithmetic are distinct opcodes;
    comparisons produce an int 0/1. *)
type binop =
  | Add | Sub | Mul | Div | Rem
  | FAdd | FSub | FMul | FDiv
  | And | Or | Xor
  | Shl | Shr
  | Min | Max | FMin | FMax
  | Eq | Ne | Lt | Le | Gt | Ge
  | FEq | FNe | FLt | FLe | FGt | FGe

(** Unary operators, including the pure math intrinsics ([Sqrt], [FAbs],
    [IAbs]) that participate in redundancy elimination. *)
type unop = Neg | FNeg | Not | I2F | F2I | Sqrt | FAbs | IAbs

val binop_name : binop -> string

val unop_name : unop -> string

val all_binops : binop list

val all_unops : unop list

val commutative : binop -> bool

(** Exact associativity: safe to reorder unconditionally. *)
val associative : binop -> bool

(** Associative up to floating-point rounding ([FAdd], [FMul], [FMin],
    [FMax] in addition to the exact ones); whether the optimizer exploits
    this is a configuration choice — FORTRAN permits it, so the paper
    does. *)
val associative_modulo_rounding : binop -> bool

val binop_result_ty : binop -> Ty.t

val binop_operand_ty : binop -> Ty.t

val unop_result_ty : unop -> Ty.t

val unop_operand_ty : unop -> Ty.t

(** Identity element [e] with [x op e = x], when one exists. *)
val identity : binop -> Value.t option

(** Annihilator [a] with [x op a = a]. [FMul 0] is deliberately absent
    (NaN/infinity). *)
val annihilator : binop -> Value.t option

(** The additive operator a multiplication distributes over ([Mul] over
    [Add], [FMul] over [FAdd]) — Section 3.1's distribution step. *)
val distributes_over : binop -> binop option

(** Frailey's rewrite: for [Sub]/[FSub], the (addition, negation) pair such
    that [x - y = x + (neg y)]. *)
val sub_as_add_neg : binop -> (binop * unop) option

exception Division_by_zero

(** Evaluate an operator; raises [Division_by_zero] on integer
    division/remainder by zero and [Value.Type_error] on operand type
    mismatch. *)
val eval_binop : binop -> Value.t -> Value.t -> Value.t

val eval_unop : unop -> Value.t -> Value.t
