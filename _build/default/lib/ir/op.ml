(** ILOC operators and their algebraic properties.

    The properties exported here ([commutative], [associative], identities,
    annihilators) drive the peephole simplifier and, crucially, the global
    reassociation pass of Section 3.1: only operators marked associative may
    be flattened into n-ary expression trees and have their operands sorted
    by rank. Floating-point [FAdd]/[FMul] are associative only up to
    rounding; whether the optimizer exploits that is a configuration choice
    (FORTRAN permits it, so the paper does), hence the separate
    [associative_modulo_rounding] predicate. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | FAdd | FSub | FMul | FDiv
  | And | Or | Xor
  | Shl | Shr
  | Min | Max | FMin | FMax
  | Eq | Ne | Lt | Le | Gt | Ge
  | FEq | FNe | FLt | FLe | FGt | FGe

type unop = Neg | FNeg | Not | I2F | F2I | Sqrt | FAbs | IAbs

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr"
  | Min -> "min" | Max -> "max" | FMin -> "fmin" | FMax -> "fmax"
  | Eq -> "cmp_eq" | Ne -> "cmp_ne" | Lt -> "cmp_lt"
  | Le -> "cmp_le" | Gt -> "cmp_gt" | Ge -> "cmp_ge"
  | FEq -> "fcmp_eq" | FNe -> "fcmp_ne" | FLt -> "fcmp_lt"
  | FLe -> "fcmp_le" | FGt -> "fcmp_gt" | FGe -> "fcmp_ge"

let unop_name = function
  | Neg -> "neg" | FNeg -> "fneg" | Not -> "not"
  | I2F -> "i2f" | F2I -> "f2i"
  | Sqrt -> "sqrt" | FAbs -> "fabs" | IAbs -> "iabs"

let all_binops =
  [ Add; Sub; Mul; Div; Rem; FAdd; FSub; FMul; FDiv; And; Or; Xor; Shl; Shr;
    Min; Max; FMin; FMax; Eq; Ne; Lt; Le; Gt; Ge; FEq; FNe; FLt; FLe; FGt; FGe ]

let all_unops = [ Neg; FNeg; Not; I2F; F2I; Sqrt; FAbs; IAbs ]

let commutative = function
  | Add | Mul | FAdd | FMul | And | Or | Xor
  | Min | Max | FMin | FMax | Eq | Ne | FEq | FNe -> true
  | Sub | Div | Rem | FSub | FDiv | Shl | Shr
  | Lt | Le | Gt | Ge | FLt | FLe | FGt | FGe -> false

(* Exact associativity: safe to reorder unconditionally. *)
let associative = function
  | Add | Mul | And | Or | Xor | Min | Max -> true
  | FAdd | FMul | FMin | FMax
  | Sub | Div | Rem | FSub | FDiv | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe -> false

(* Associative up to floating-point rounding; reassociating changes results
   by at most rounding error. FMin/FMax are exactly associative absent NaN,
   which our [Value] semantics never produces from min/max. *)
let associative_modulo_rounding = function
  | FAdd | FMul | FMin | FMax -> true
  | op -> associative op

(* Result type of each operator: comparisons produce int 0/1. *)
let binop_result_ty = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe -> Ty.Int
  | FAdd | FSub | FMul | FDiv | FMin | FMax -> Ty.Flt

let binop_operand_ty = function
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Min | Max
  | Eq | Ne | Lt | Le | Gt | Ge -> Ty.Int
  | FAdd | FSub | FMul | FDiv | FMin | FMax
  | FEq | FNe | FLt | FLe | FGt | FGe -> Ty.Flt

let unop_result_ty = function
  | Neg | Not | F2I | IAbs -> Ty.Int
  | FNeg | I2F | Sqrt | FAbs -> Ty.Flt

let unop_operand_ty = function
  | Neg | Not | I2F | IAbs -> Ty.Int
  | FNeg | F2I | Sqrt | FAbs -> Ty.Flt

(* Identity element [e] such that [x op e = x], when one exists. *)
let identity = function
  | Add -> Some (Value.I 0)
  | Sub -> Some (Value.I 0)
  | Mul -> Some (Value.I 1)
  | Div -> Some (Value.I 1)
  | FAdd -> Some (Value.F 0.0)
  | FSub -> Some (Value.F 0.0)
  | FMul -> Some (Value.F 1.0)
  | FDiv -> Some (Value.F 1.0)
  | And -> Some (Value.I (-1))
  | Or -> Some (Value.I 0)
  | Xor -> Some (Value.I 0)
  | Shl -> Some (Value.I 0)
  | Shr -> Some (Value.I 0)
  | Min -> Some (Value.I max_int)
  | Max -> Some (Value.I min_int)
  | Rem | FMin | FMax
  | Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe -> None

(* Annihilator [a] such that [x op a = a]. FMul 0 is *not* an annihilator
   (NaN/inf), so it is deliberately absent. *)
let annihilator = function
  | Mul -> Some (Value.I 0)
  | And -> Some (Value.I 0)
  | Or -> Some (Value.I (-1))
  | Min -> Some (Value.I min_int)
  | Max -> Some (Value.I max_int)
  | Add | Sub | Div | Rem | FAdd | FSub | FMul | FDiv | Xor | Shl | Shr
  | FMin | FMax
  | Eq | Ne | Lt | Le | Gt | Ge | FEq | FNe | FLt | FLe | FGt | FGe -> None

(* The additive structure a reassociable multiplication distributes over:
   [Mul] over [Add], [FMul] over [FAdd] (Section 3.1, "Sorting
   Expressions"). *)
let distributes_over = function
  | Mul -> Some Add
  | FMul -> Some FAdd
  | _ -> None

(* Inverse injection for Frailey's rewrite x - y -> x + (-y). *)
let sub_as_add_neg = function
  | Sub -> Some (Add, Neg)
  | FSub -> Some (FAdd, FNeg)
  | _ -> None

exception Division_by_zero

let bool_int b = Value.I (if b then 1 else 0)

let eval_binop op a b =
  let ii f = Value.I (f (Value.to_int a) (Value.to_int b)) in
  let ff f = Value.F (f (Value.to_float a) (Value.to_float b)) in
  let icmp f = bool_int (f (Value.to_int a) (Value.to_int b)) in
  let fcmp f = bool_int (f (Value.to_float a) (Value.to_float b)) in
  match op with
  | Add -> ii ( + )
  | Sub -> ii ( - )
  | Mul -> ii ( * )
  | Div -> if Value.to_int b = 0 then raise Division_by_zero else ii ( / )
  | Rem -> if Value.to_int b = 0 then raise Division_by_zero else ii Stdlib.( mod )
  | FAdd -> ff ( +. )
  | FSub -> ff ( -. )
  | FMul -> ff ( *. )
  | FDiv -> ff ( /. )
  | And -> ii ( land )
  | Or -> ii ( lor )
  | Xor -> ii ( lxor )
  | Shl -> ii ( lsl )
  | Shr -> ii ( asr )
  | Min -> ii Stdlib.min
  | Max -> ii Stdlib.max
  | FMin -> ff Float.min_num
  | FMax -> ff Float.max_num
  | Eq -> icmp ( = )
  | Ne -> icmp ( <> )
  | Lt -> icmp ( < )
  | Le -> icmp ( <= )
  | Gt -> icmp ( > )
  | Ge -> icmp ( >= )
  | FEq -> fcmp ( = )
  | FNe -> fcmp ( <> )
  | FLt -> fcmp ( < )
  | FLe -> fcmp ( <= )
  | FGt -> fcmp ( > )
  | FGe -> fcmp ( >= )

let eval_unop op a =
  match op with
  | Neg -> Value.I (- Value.to_int a)
  | FNeg -> Value.F (-. Value.to_float a)
  | Not -> Value.I (lnot (Value.to_int a))
  | I2F -> Value.F (float_of_int (Value.to_int a))
  | F2I -> Value.I (int_of_float (Value.to_float a))
  | Sqrt -> Value.F (Float.sqrt (Value.to_float a))
  | FAbs -> Value.F (Float.abs (Value.to_float a))
  | IAbs -> Value.I (abs (Value.to_int a))
