(** Textual ILOC, close to the paper's notation: [r2 <- r1 + r0]. *)

let reg ppf r = Fmt.pf ppf "r%d" r

let label ppf l = Fmt.pf ppf "B%d" l

let binop_symbol = function
  | Op.Add | Op.FAdd -> Some "+"
  | Op.Sub | Op.FSub -> Some "-"
  | Op.Mul | Op.FMul -> Some "*"
  | Op.Div | Op.FDiv -> Some "/"
  | _ -> None

let instr ppf = function
  | Instr.Const { dst; value } -> Fmt.pf ppf "%a <- %a" reg dst Value.pp value
  | Instr.Copy { dst; src } -> Fmt.pf ppf "%a <- %a" reg dst reg src
  | Instr.Unop { op; dst; src } ->
    Fmt.pf ppf "%a <- %s %a" reg dst (Op.unop_name op) reg src
  | Instr.Binop { op; dst; a; b } -> begin
    match binop_symbol op with
    | Some s -> Fmt.pf ppf "%a <- %a %s %a" reg dst reg a s reg b
    | None -> Fmt.pf ppf "%a <- %s %a, %a" reg dst (Op.binop_name op) reg a reg b
  end
  | Instr.Load { dst; addr } -> Fmt.pf ppf "%a <- load %a" reg dst reg addr
  | Instr.Store { addr; src } -> Fmt.pf ppf "store %a -> [%a]" reg src reg addr
  | Instr.Alloca { dst; words; init } ->
    Fmt.pf ppf "%a <- alloca %d, %a" reg dst words Value.pp init
  | Instr.Call { dst = Some d; callee; args } ->
    Fmt.pf ppf "%a <- call %s(%a)" reg d callee Fmt.(list ~sep:(any ", ") reg) args
  | Instr.Call { dst = None; callee; args } ->
    Fmt.pf ppf "call %s(%a)" callee Fmt.(list ~sep:(any ", ") reg) args
  | Instr.Phi { dst; args } ->
    let arg ppf (l, r) = Fmt.pf ppf "%a:%a" label l reg r in
    Fmt.pf ppf "%a <- phi(%a)" reg dst Fmt.(list ~sep:(any ", ") arg) args

let terminator ppf = function
  | Instr.Jump l -> Fmt.pf ppf "jump -> %a" label l
  | Instr.Cbr { cond; ifso; ifnot } ->
    Fmt.pf ppf "cbr %a -> %a, %a" reg cond label ifso label ifnot
  | Instr.Ret (Some r) -> Fmt.pf ppf "return %a" reg r
  | Instr.Ret None -> Fmt.pf ppf "return"

let block ppf (b : Block.t) =
  Fmt.pf ppf "@[<v 2>%a:" label b.Block.id;
  List.iter (fun i -> Fmt.pf ppf "@,%a" instr i) b.Block.instrs;
  Fmt.pf ppf "@,%a@]" terminator b.Block.term

let routine ppf (r : Routine.t) =
  Fmt.pf ppf "@[<v>routine %s(%a):" r.Routine.name
    Fmt.(list ~sep:(any ", ") reg)
    r.Routine.params;
  Cfg.iter_blocks (fun b -> Fmt.pf ppf "@,%a" block b) r.Routine.cfg;
  Fmt.pf ppf "@]"

let program ppf (p : Program.t) =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,@,") routine) (Program.routines p)

let routine_to_string r = Fmt.str "%a" routine r

let instr_to_string i = Fmt.str "%a" instr i
