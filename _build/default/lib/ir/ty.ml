(** Value types carried by ILOC registers: machine integers and floats. *)

type t = Int | Flt

let to_string = function Int -> "int" | Flt -> "flt"

let equal (a : t) (b : t) = a = b

let pp ppf t = Fmt.string ppf (to_string t)
