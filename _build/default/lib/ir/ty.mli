(** Value types carried by ILOC registers: machine integers and floats. *)

type t = Int | Flt

val to_string : t -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
