lib/ir/cfg_dot.ml: Block Buffer Cfg Fmt Instr List Pp Printf Program Routine String
