lib/ir/pp.mli: Block Format Instr Program Routine
