lib/ir/builder.ml: Block Cfg Fun Instr List Routine Value
