lib/ir/program.ml: List Printf Routine
