lib/ir/instr.mli: Op Value
