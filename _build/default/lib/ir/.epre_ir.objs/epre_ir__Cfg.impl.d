lib/ir/cfg.ml: Array Bitset Block Epre_util Instr List Option Printf Vec
