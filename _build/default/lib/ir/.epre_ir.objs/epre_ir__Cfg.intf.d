lib/ir/cfg.mli: Block Epre_util Instr
