lib/ir/builder.mli: Cfg Instr Op Routine Value
