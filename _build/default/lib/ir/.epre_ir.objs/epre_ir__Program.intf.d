lib/ir/program.mli: Routine
