lib/ir/value.ml: Float Fmt Hashtbl Int Printf Ty
