lib/ir/op.ml: Float Stdlib Ty Value
