lib/ir/value.mli: Format Ty
