lib/ir/pp.ml: Block Cfg Fmt Instr List Op Program Routine Value
