lib/ir/routine.mli: Cfg Instr
