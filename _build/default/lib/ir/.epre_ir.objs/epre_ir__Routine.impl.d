lib/ir/routine.ml: Array Block Cfg Instr List Printf String
