lib/ir/block.mli: Instr
