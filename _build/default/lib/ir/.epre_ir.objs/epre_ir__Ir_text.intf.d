lib/ir/ir_text.mli: Program Routine
