lib/ir/instr.ml: List Op Option Value
