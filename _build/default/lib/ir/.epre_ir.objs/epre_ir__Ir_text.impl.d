lib/ir/ir_text.ml: Array Block Buffer Cfg Instr List Op Printf Program Routine String Value
