lib/ir/op.mli: Ty Value
