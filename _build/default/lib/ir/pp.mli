(** Paper-flavoured textual ILOC ([r2 <- r0 + r1]) for humans and the
    Figures 2-10 walkthrough. Int and float arithmetic share symbols here;
    use [Ir_text] when output must parse back. *)

val reg : Format.formatter -> Instr.reg -> unit

val label : Format.formatter -> int -> unit

val instr : Format.formatter -> Instr.t -> unit

val terminator : Format.formatter -> Instr.terminator -> unit

val block : Format.formatter -> Block.t -> unit

val routine : Format.formatter -> Routine.t -> unit

val program : Format.formatter -> Program.t -> unit

val routine_to_string : Routine.t -> string

val instr_to_string : Instr.t -> string
