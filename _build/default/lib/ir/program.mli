(** A program unit: several routines; execution conventionally starts at
    ["main"]. *)

type t

val create : Routine.t list -> t

val find : t -> string -> Routine.t option

(** @raise Invalid_argument when absent. *)
val find_exn : t -> string -> Routine.t

val routines : t -> Routine.t list

(** Apply an ILOC -> ILOC routine transformation to every routine, as the
    paper's optimizer passes do. *)
val map_routines : (Routine.t -> Routine.t) -> t -> t

val copy : t -> t

(** Static operation count summed over all routines. *)
val op_count : t -> int
