(** A program unit: several routines; execution starts at [main]. *)

type t = { routines : Routine.t list }

let create routines = { routines }

let find t name = List.find_opt (fun r -> r.Routine.name = name) t.routines

let find_exn t name =
  match find t name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Program.find_exn: no routine %S" name)

let routines t = t.routines

(** Apply an ILOC->ILOC routine transformation to every routine, as the
    paper's optimizer passes do. *)
let map_routines f t = { routines = List.map f t.routines }

let copy t = { routines = List.map Routine.copy t.routines }

let op_count t =
  List.fold_left (fun acc r -> acc + Routine.op_count r) 0 t.routines
