(** Imperative construction of routines, used by the front end's lowering
    and by tests that write CFGs directly.

    Blocks are created with a placeholder [Ret None] terminator and must be
    sealed with a [jump]/[cbr]/[ret] (or left as returns); [finish]
    validates the result. *)

type t = { routine : Routine.t; mutable cur : int }

(** Fresh routine whose entry block is current; parameters occupy registers
    [0 .. nparams-1]. *)
val start : name:string -> nparams:int -> t

val cfg : t -> Cfg.t

val fresh_reg : t -> Instr.reg

(** Create a block (placeholder terminator) and return its id; does not
    switch to it. *)
val new_block : t -> int

(** Make [id] the block receiving subsequent emissions. *)
val switch : t -> int -> unit

val current : t -> int

val emit : t -> Instr.t -> unit

val set_term : t -> Instr.terminator -> unit

(** {1 Convenience emitters} — return the destination register. *)

val const : t -> Value.t -> Instr.reg

val int : t -> int -> Instr.reg

val float : t -> float -> Instr.reg

val copy : t -> Instr.reg -> Instr.reg

val copy_to : t -> dst:Instr.reg -> src:Instr.reg -> unit

val unop : t -> Op.unop -> Instr.reg -> Instr.reg

val binop : t -> Op.binop -> Instr.reg -> Instr.reg -> Instr.reg

val load : t -> Instr.reg -> Instr.reg

val store : t -> addr:Instr.reg -> src:Instr.reg -> unit

val alloca : ?init:Value.t -> t -> int -> Instr.reg

val call : t -> callee:string -> Instr.reg list -> Instr.reg

val call_void : t -> callee:string -> Instr.reg list -> unit

(** {1 Terminators} *)

val jump : t -> int -> unit

val cbr : t -> cond:Instr.reg -> ifso:int -> ifnot:int -> unit

val ret : t -> Instr.reg option -> unit

(** Validate and return the routine.
    @raise Routine.Ill_formed when construction left the CFG broken. *)
val finish : t -> Routine.t
