(** Runtime/constant values: one word, either integer or float. *)

type t = I of int | F of float

exception Type_error of string

let ty = function I _ -> Ty.Int | F _ -> Ty.Flt

let to_int = function
  | I i -> i
  | F _ -> raise (Type_error "expected int value")

let to_float = function
  | F f -> f
  | I _ -> raise (Type_error "expected float value")

let equal a b =
  match a, b with
  | I x, I y -> x = y
  | F x, F y -> Float.equal x y
  | I _, F _ | F _, I _ -> false

let compare a b =
  match a, b with
  | I x, I y -> Int.compare x y
  | F x, F y -> Float.compare x y
  | I _, F _ -> -1
  | F _, I _ -> 1

let hash = function I i -> Hashtbl.hash (0, i) | F f -> Hashtbl.hash (1, f)

let to_string = function
  | I i -> string_of_int i
  | F f -> Printf.sprintf "%h" f

let pp ppf = function
  | I i -> Fmt.int ppf i
  | F f -> Fmt.pf ppf "%g" f
