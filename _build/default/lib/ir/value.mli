(** Runtime/constant values: one word, either integer or float. *)

type t = I of int | F of float

exception Type_error of string

val ty : t -> Ty.t

(** @raise Type_error on a float. *)
val to_int : t -> int

(** @raise Type_error on an int. *)
val to_float : t -> float

(** NaN equals itself (needed for lattice/fixpoint termination). *)
val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** Exact textual form (hexadecimal floats); parseable by [Ir_text]. *)
val to_string : t -> string

(** Human-friendly form ([%g] floats). *)
val pp : Format.formatter -> t -> unit
